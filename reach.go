// Package reach is a reachability-oracle library for directed graphs,
// reproducing Jin & Wang, "Simple, Fast, and Scalable Reachability Oracle"
// (VLDB 2013).
//
// A reachability oracle answers "can vertex u reach vertex v?" in
// microseconds after a one-off indexing pass. The package implements the
// paper's two contributions — Distribution-Labeling (DL) and
// Hierarchical-Labeling (HL) — plus every baseline its evaluation compares
// against (GRAIL, interval and PWAH-8 transitive-closure compression,
// path-tree, K-Reach, set-cover 2-hop, TF-label, pruned landmark, SCARAB
// wrappers, online search).
//
// Quick start:
//
//	g, err := reach.NewGraph(6, [][2]uint32{{0, 1}, {1, 2}, {3, 4}})
//	oracle, err := reach.Build(g, reach.MethodDL, reach.Options{})
//	ok := oracle.Reachable(0, 2) // true
//
// Inputs may contain cycles: NewGraph condenses strongly connected
// components into a DAG first (two vertices in the same component always
// reach each other), which is the standard preprocessing step the paper
// describes in §2.
package reach

import (
	"fmt"
	"io"

	"repro/internal/graph"
)

// Graph is an immutable directed graph prepared for reachability
// indexing: the caller's digraph plus its SCC condensation.
type Graph struct {
	dag *graph.Graph
	// comp maps an original vertex to its DAG vertex.
	comp []graph.Vertex
	// originalN is the caller's vertex count.
	originalN int
	// origIDs, when non-nil, maps dense vertices back to the raw IDs of
	// the edge-list file the graph was parsed from (ReadGraph sets it).
	// Snapshots carry it so a daemon restart can speak the file's IDs
	// without reparsing the file.
	origIDs []int64
}

// NewGraph builds a Graph from n vertices and a directed edge list.
// Self-loops are ignored; duplicate edges are coalesced; cycles are
// condensed.
func NewGraph(n int, edges [][2]uint32) (*Graph, error) {
	if n < 0 {
		return nil, fmt.Errorf("reach: negative vertex count %d", n)
	}
	b := graph.NewBuilder(n)
	for _, e := range edges {
		if int(e[0]) >= n || int(e[1]) >= n {
			return nil, fmt.Errorf("reach: edge (%d,%d) out of range for n=%d", e[0], e[1], n)
		}
		if e[0] == e[1] {
			continue
		}
		b.AddEdge(e[0], e[1])
	}
	raw, err := b.Build()
	if err != nil {
		return nil, err
	}
	return fromRaw(raw), nil
}

// ReadGraph parses a whitespace-separated edge list ("from to" per line,
// '#' comments) with arbitrary non-negative integer IDs, densifies the
// IDs, and condenses cycles. It returns the graph and the original IDs
// indexed by dense vertex number.
func ReadGraph(r io.Reader) (*Graph, []int64, error) {
	raw, orig, err := graph.ReadEdgeList(r)
	if err != nil {
		return nil, nil, err
	}
	g := fromRaw(raw)
	g.origIDs = orig
	return g, orig, nil
}

func fromRaw(raw *graph.Graph) *Graph {
	if graph.IsDAG(raw) {
		// Identity mapping; avoid the condensation copy.
		comp := make([]graph.Vertex, raw.NumVertices())
		for i := range comp {
			comp[i] = graph.Vertex(i)
		}
		return &Graph{dag: raw, comp: comp, originalN: raw.NumVertices()}
	}
	c := graph.Condense(raw)
	return &Graph{dag: c.DAG, comp: c.Comp, originalN: raw.NumVertices()}
}

// NumVertices returns the number of vertices in the caller's graph.
func (g *Graph) NumVertices() int { return g.originalN }

// DAGVertices returns the vertex count after SCC condensation.
func (g *Graph) DAGVertices() int { return g.dag.NumVertices() }

// DAGEdges returns the edge count after SCC condensation.
func (g *Graph) DAGEdges() int { return g.dag.NumEdges() }

// SameComponent reports whether u and v belong to one strongly connected
// component (and hence trivially reach each other).
func (g *Graph) SameComponent(u, v uint32) bool {
	return g.comp[u] == g.comp[v]
}

// Stats returns structural statistics of the condensed DAG.
func (g *Graph) Stats() graph.Stats { return graph.ComputeStats(g.dag) }

// DAG exposes the condensed DAG for advanced use (workload generation,
// custom indexes). The returned graph must not be modified.
func (g *Graph) DAG() *graph.Graph { return g.dag }

// MapVertex returns the DAG vertex for an original vertex.
func (g *Graph) MapVertex(u uint32) uint32 { return uint32(g.comp[u]) }

// OrigIDs returns the raw edge-list IDs indexed by dense vertex, or nil
// when the graph was not built from an ID-carrying source (NewGraph).
// Shared storage; do not modify.
func (g *Graph) OrigIDs() []int64 { return g.origIDs }

// Fingerprint hashes the graph's reachability-relevant structure — the
// original vertex count, the SCC condensation map, and the condensed
// DAG's CSR form. Snapshots record it so a restart can refuse an index
// built from a different graph before decoding any index data.
func (g *Graph) Fingerprint() uint64 {
	const prime = 1099511628211
	h := g.dag.Fingerprint()
	h = (h ^ uint64(g.originalN)) * prime
	for _, c := range g.comp {
		h = (h ^ uint64(c)) * prime
	}
	return h
}
