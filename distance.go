package reach

import (
	"fmt"

	"repro/internal/plandmark"
)

// DistanceOracle answers exact shortest-path distance and k-hop
// reachability queries ("k-reach", the generalization the paper's
// conclusion names as future work) via pruned landmark labeling.
type DistanceOracle struct {
	g  *Graph
	pl *plandmark.PL
}

// BuildDistance constructs a distance oracle. The input graph must be
// acyclic: SCC condensation preserves reachability but not distances, so
// graphs with cycles are rejected rather than silently answering with
// condensed-DAG distances.
func BuildDistance(g *Graph) (*DistanceOracle, error) {
	if g.DAGVertices() != g.NumVertices() {
		return nil, fmt.Errorf("reach: distance oracle requires an acyclic graph (input has cycles)")
	}
	pl, err := plandmark.Build(g.dag)
	if err != nil {
		return nil, err
	}
	return &DistanceOracle{g: g, pl: pl}, nil
}

// Distance returns the shortest-path distance (in edges) from u to v, or
// -1 if v is unreachable from u.
func (d *DistanceOracle) Distance(u, v uint32) int32 {
	return d.pl.Distance(uint32(d.g.comp[u]), uint32(d.g.comp[v]))
}

// WithinK reports whether u reaches v in at most k edges — the k-reach
// query of Cheng et al. (PVLDB 2012), answered from the distance labels.
func (d *DistanceOracle) WithinK(u, v uint32, k int32) bool {
	dist := d.Distance(u, v)
	return dist >= 0 && dist <= k
}

// Reachable reports plain reachability (k = ∞).
func (d *DistanceOracle) Reachable(u, v uint32) bool {
	return d.Distance(u, v) >= 0
}

// IndexSizeInts returns the label size in 32-bit integers.
func (d *DistanceOracle) IndexSizeInts() int64 { return d.pl.SizeInts() }
