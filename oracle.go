package reach

import (
	"fmt"
	"io"

	"repro/internal/core"
	"repro/internal/grail"
	"repro/internal/graph"
	"repro/internal/hoplabel"
	"repro/internal/index"
	"repro/internal/intervalidx"
	"repro/internal/kreach"
	"repro/internal/pathtree"
	"repro/internal/plandmark"
	"repro/internal/pwahidx"
	"repro/internal/scarab"
	"repro/internal/search"
	"repro/internal/tflabel"
	"repro/internal/treecover"
	"repro/internal/twohop"
)

// Method selects a reachability index algorithm.
type Method string

// The paper's contribution methods.
const (
	// MethodDL is Distribution-Labeling (§5) — the recommended default:
	// fastest construction, smallest labels, microsecond queries.
	MethodDL Method = "DL"
	// MethodHL is Hierarchical-Labeling (§4), built on the recursive
	// reachability-backbone hierarchy.
	MethodHL Method = "HL"
)

// Baseline methods from the paper's evaluation.
const (
	// MethodGRAIL is the random-interval online-search index.
	MethodGRAIL Method = "GRAIL"
	// MethodInterval is Nuutila-style interval TC compression.
	MethodInterval Method = "INT"
	// MethodPWAH is PWAH-8 compressed-bitvector TC.
	MethodPWAH Method = "PW8"
	// MethodPathTree is path-decomposition TC compression.
	MethodPathTree Method = "PT"
	// MethodKReach is vertex-cover based K-Reach (k = ∞).
	MethodKReach Method = "KR"
	// Method2Hop is the classic set-cover 2-hop labeling.
	Method2Hop Method = "2HOP"
	// MethodTFLabel is TF-label (HL with ε = 1).
	MethodTFLabel Method = "TF"
	// MethodPrunedLandmark is pruned landmark distance labeling.
	MethodPrunedLandmark Method = "PL"
	// MethodScarabGRAIL is GRAIL built on the ε = 2 backbone (GL*).
	MethodScarabGRAIL Method = "GL*"
	// MethodScarabPathTree is PathTree on the backbone (PT*).
	MethodScarabPathTree Method = "PT*"
	// MethodBFS is index-free online breadth-first search.
	MethodBFS Method = "BFS"
	// MethodBiBFS is index-free bidirectional search.
	MethodBiBFS Method = "BiBFS"
	// MethodTreeCover is Agrawal's optimal tree cover (SIGMOD 1989), the
	// tree-interval ancestor of PathTree — an extension beyond the paper's
	// table columns.
	MethodTreeCover Method = "TCOV"
)

// Options tunes index construction. The zero value is the paper's
// configuration for every method.
type Options struct {
	// Epsilon is HL's backbone locality threshold (default 2).
	Epsilon int
	// CoreLimit is HL/TF's decomposition stop size (default 1024).
	CoreLimit int
	// Seed drives randomized construction (GRAIL) deterministically.
	Seed int64
	// Traversals is GRAIL's interval count k (default 5).
	Traversals int
}

// Oracle answers reachability queries on a Graph through a built index.
//
// Once built, an Oracle is immutable and all query methods (Reachable,
// ReachableBatch) are safe for concurrent use from many goroutines; every
// index implementation keeps any per-query traversal scratch in a
// sync.Pool. This is the contract the reachd serving layer builds on, and
// it is enforced for every method by a race-enabled hammer test.
type Oracle struct {
	g   *Graph
	idx index.Index
}

// Build constructs a reachability oracle over g with the chosen method.
func Build(g *Graph, m Method, opts Options) (*Oracle, error) {
	idx, err := buildIndex(g, m, opts)
	if err != nil {
		return nil, err
	}
	return &Oracle{g: g, idx: idx}, nil
}

func buildIndex(g *Graph, m Method, opts Options) (index.Index, error) {
	dag := g.dag
	switch m {
	case MethodDL:
		return core.BuildDL(dag, core.DLOptions{Seed: opts.Seed})
	case MethodHL:
		return core.BuildHL(dag, core.HLOptions{
			Epsilon: opts.Epsilon, CoreLimit: opts.CoreLimit,
		})
	case MethodGRAIL:
		return grail.Build(dag, grail.Options{Traversals: opts.Traversals, Seed: opts.Seed}), nil
	case MethodInterval:
		return intervalidx.Build(dag), nil
	case MethodPWAH:
		return pwahidx.Build(dag), nil
	case MethodPathTree:
		return pathtree.Build(dag, pathtree.Options{})
	case MethodKReach:
		return kreach.BuildWithOptions(dag, kreach.Options{})
	case Method2Hop:
		return twohop.Build(dag, twohop.Options{})
	case MethodTFLabel:
		return tflabel.Build(dag, tflabel.Options{CoreLimit: opts.CoreLimit})
	case MethodPrunedLandmark:
		return plandmark.Build(dag)
	case MethodScarabGRAIL:
		return scarab.Build(dag, "GL*", func(star *graph.Graph) (index.Index, error) {
			return grail.Build(star, grail.Options{Traversals: opts.Traversals, Seed: opts.Seed}), nil
		})
	case MethodScarabPathTree:
		return scarab.Build(dag, "PT*", func(star *graph.Graph) (index.Index, error) {
			return pathtree.Build(star, pathtree.Options{})
		})
	case MethodBFS:
		return search.NewBFS(dag), nil
	case MethodBiBFS:
		return search.NewBidirectional(dag), nil
	case MethodTreeCover:
		return treecover.Build(dag)
	default:
		return nil, fmt.Errorf("reach: unknown method %q", m)
	}
}

// Methods lists every available method identifier.
func Methods() []Method {
	return []Method{
		MethodDL, MethodHL, MethodGRAIL, MethodInterval, MethodPWAH,
		MethodPathTree, MethodKReach, Method2Hop, MethodTFLabel,
		MethodPrunedLandmark, MethodScarabGRAIL, MethodScarabPathTree,
		MethodBFS, MethodBiBFS, MethodTreeCover,
	}
}

// Reachable reports whether original vertex u reaches original vertex v.
// Out-of-range vertex IDs are never reachable (and never reach anything),
// so they answer false rather than panicking.
func (o *Oracle) Reachable(u, v uint32) bool {
	n := uint32(o.g.originalN)
	if u >= n || v >= n {
		return false
	}
	cu, cv := o.g.comp[u], o.g.comp[v]
	if cu == cv {
		return true // same SCC (or same vertex)
	}
	return o.idx.Reachable(uint32(cu), uint32(cv))
}

// ReachableBatch answers many queries in one call: out[i] reports whether
// pairs[i][0] reaches pairs[i][1]. If out is non-nil and long enough it is
// filled and returned without allocating; otherwise a new slice is
// returned. Like Reachable it is safe for concurrent use, so callers may
// split a large batch across goroutines, each with its own out slice.
func (o *Oracle) ReachableBatch(pairs [][2]uint32, out []bool) []bool {
	if cap(out) < len(pairs) {
		out = make([]bool, len(pairs))
	}
	out = out[:len(pairs)]
	for i, p := range pairs {
		out[i] = o.Reachable(p[0], p[1])
	}
	return out
}

// Method returns the index method tag (e.g. "DL").
func (o *Oracle) Method() string { return o.idx.Name() }

// IndexSizeInts returns the index size in 32-bit integers — the metric of
// the paper's Figures 3 and 4.
func (o *Oracle) IndexSizeInts() int64 { return o.idx.SizeInts() }

// labeled is implemented by the hop-labeling indexes (DL, HL, TF, 2HOP).
type labeled interface {
	Labeling() *hoplabel.Labeling
}

// WriteLabeling serializes the oracle's hop labeling, if the method is a
// labeling method (DL, HL, 2HOP); other methods return an error.
func (o *Oracle) WriteLabeling(w io.Writer) error {
	l, ok := o.idx.(labeled)
	if !ok {
		return fmt.Errorf("reach: method %s has no serializable labeling", o.idx.Name())
	}
	return l.Labeling().Write(w)
}

// LabelStats returns hop-label statistics for labeling methods.
func (o *Oracle) LabelStats() (hoplabel.Stats, error) {
	l, ok := o.idx.(labeled)
	if !ok {
		return hoplabel.Stats{}, fmt.Errorf("reach: method %s has no labeling", o.idx.Name())
	}
	return l.Labeling().ComputeStats(), nil
}

// loadedIndex adapts a deserialized labeling to the index interface.
type loadedIndex struct {
	l    *hoplabel.Labeling
	name string
}

func (x *loadedIndex) Name() string                 { return x.name }
func (x *loadedIndex) Reachable(u, v uint32) bool   { return x.l.Reachable(u, v) }
func (x *loadedIndex) SizeInts() int64              { return x.l.SizeInts() }
func (x *loadedIndex) Labeling() *hoplabel.Labeling { return x.l }

// LoadOracle restores an oracle from a labeling previously serialized with
// WriteLabeling. The graph must be the same one (same vertex count after
// condensation) the labeling was built for; hop labelings carry no graph
// data of their own — callers that need a stronger identity check (or the
// original method tag) should store those alongside, as cmd/reachd's
// snapshot header does. Method() reports "loaded".
func LoadOracle(g *Graph, r io.Reader) (*Oracle, error) {
	return LoadOracleNamed(g, r, "loaded")
}

// LoadOracleNamed is LoadOracle but tags the restored index with the
// method name it was built with (e.g. "DL"), so Method() reports it.
func LoadOracleNamed(g *Graph, r io.Reader, method string) (*Oracle, error) {
	l, err := hoplabel.Read(r)
	if err != nil {
		return nil, err
	}
	if l.NumVertices() != g.DAGVertices() {
		return nil, fmt.Errorf("reach: labeling has %d vertices but graph's DAG has %d",
			l.NumVertices(), g.DAGVertices())
	}
	return &Oracle{g: g, idx: &loadedIndex{l: l, name: method}}, nil
}
