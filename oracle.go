package reach

import (
	"fmt"
	"io"
	"os"
	"sync/atomic"

	"repro/internal/blockio"
	"repro/internal/hoplabel"
	"repro/internal/index"
	"repro/internal/observe"
	"repro/internal/snapshot"

	// Every index method self-registers a descriptor — builder plus
	// snapshot codec — with the internal/index registry from init().
	// Importing the packages is what populates Methods(); adding a method
	// to the system is adding one import here and one Register call there.
	_ "repro/internal/core"
	_ "repro/internal/grail"
	_ "repro/internal/intervalidx"
	_ "repro/internal/kreach"
	_ "repro/internal/pathtree"
	_ "repro/internal/plandmark"
	_ "repro/internal/pwahidx"
	_ "repro/internal/scarab"
	_ "repro/internal/search"
	_ "repro/internal/tflabel"
	_ "repro/internal/treecover"
	_ "repro/internal/twohop"
)

// Method selects a reachability index algorithm.
type Method string

// The paper's contribution methods.
const (
	// MethodDL is Distribution-Labeling (§5) — the recommended default:
	// fastest construction, smallest labels, microsecond queries.
	MethodDL Method = "DL"
	// MethodHL is Hierarchical-Labeling (§4), built on the recursive
	// reachability-backbone hierarchy.
	MethodHL Method = "HL"
)

// Baseline methods from the paper's evaluation.
const (
	// MethodGRAIL is the random-interval online-search index.
	MethodGRAIL Method = "GRAIL"
	// MethodInterval is Nuutila-style interval TC compression.
	MethodInterval Method = "INT"
	// MethodPWAH is PWAH-8 compressed-bitvector TC.
	MethodPWAH Method = "PW8"
	// MethodPathTree is path-decomposition TC compression.
	MethodPathTree Method = "PT"
	// MethodKReach is vertex-cover based K-Reach (k = ∞).
	MethodKReach Method = "KR"
	// Method2Hop is the classic set-cover 2-hop labeling.
	Method2Hop Method = "2HOP"
	// MethodTFLabel is TF-label (HL with ε = 1).
	MethodTFLabel Method = "TF"
	// MethodPrunedLandmark is pruned landmark distance labeling.
	MethodPrunedLandmark Method = "PL"
	// MethodScarabGRAIL is GRAIL built on the ε = 2 backbone (GL*).
	MethodScarabGRAIL Method = "GL*"
	// MethodScarabPathTree is PathTree on the backbone (PT*).
	MethodScarabPathTree Method = "PT*"
	// MethodBFS is index-free online breadth-first search.
	MethodBFS Method = "BFS"
	// MethodBiBFS is index-free bidirectional search.
	MethodBiBFS Method = "BiBFS"
	// MethodTreeCover is Agrawal's optimal tree cover (SIGMOD 1989), the
	// tree-interval ancestor of PathTree — an extension beyond the paper's
	// table columns.
	MethodTreeCover Method = "TCOV"
)

// Options tunes index construction. The zero value is the paper's
// configuration for every method.
type Options struct {
	// Epsilon is HL's backbone locality threshold (default 2).
	Epsilon int
	// CoreLimit is HL/TF's decomposition stop size (default 1024).
	CoreLimit int
	// Seed drives randomized construction (GRAIL) deterministically.
	Seed int64
	// Traversals is GRAIL's interval count k (default 5).
	Traversals int
	// NoObservers disables the observer fast path (internal/observe) in
	// front of the index — every query goes straight to the index, as
	// before the fast path existed. For ablation benchmarks and A/B
	// serving comparisons; unlike the fields above it is not part of the
	// index build options and is not persisted in snapshots.
	NoObservers bool
}

func (o Options) buildOptions() index.BuildOptions {
	return index.BuildOptions{
		Epsilon:    o.Epsilon,
		CoreLimit:  o.CoreLimit,
		Seed:       o.Seed,
		Traversals: o.Traversals,
	}
}

// Oracle answers reachability queries on a Graph through a built index.
//
// Once built, an Oracle is immutable and all query methods (Reachable,
// ReachableBatch) are safe for concurrent use from many goroutines; every
// index implementation keeps any per-query traversal scratch in a
// sync.Pool. This is the contract the reachd serving layer builds on, and
// it is enforced for every method by a race-enabled hammer test.
type Oracle struct {
	g    *Graph
	idx  index.Index
	opts index.BuildOptions
	// obs is the observer fast path consulted before the index, or nil
	// when disabled. Atomic so DisableObservers is safe against
	// in-flight queries.
	obs atomic.Pointer[observe.Stack]
	// loaded records that the index came from a snapshot rather than a
	// build; surfaced by /v1/stats.
	loaded bool
	// closer releases the snapshot file mapping for mmap-loaded oracles.
	closer func() error
}

// Build constructs a reachability oracle over g with the chosen method.
// Methods are resolved through the index registry; Methods() lists them.
func Build(g *Graph, m Method, opts Options) (*Oracle, error) {
	d, ok := index.Get(string(m))
	if !ok {
		return nil, fmt.Errorf("reach: unknown method %q (have %v)", m, Methods())
	}
	bopts := opts.buildOptions()
	idx, err := d.Build(g.dag, bopts)
	if err != nil {
		return nil, err
	}
	o := &Oracle{g: g, idx: idx, opts: bopts}
	if !opts.NoObservers {
		o.obs.Store(observe.Build(g.dag, observe.Config{}))
	}
	return o, nil
}

// Methods lists every registered method identifier, contribution methods
// first (the registry's rank order follows the paper's tables).
func Methods() []Method {
	tags := index.Tags()
	out := make([]Method, len(tags))
	for i, t := range tags {
		out[i] = Method(t)
	}
	return out
}

// Reachable reports whether original vertex u reaches original vertex v.
// Out-of-range vertex IDs are never reachable (and never reach anything),
// so they answer false rather than panicking.
func (o *Oracle) Reachable(u, v uint32) bool {
	n := uint32(o.g.originalN)
	if u >= n || v >= n {
		return false
	}
	cu, cv := o.g.comp[u], o.g.comp[v]
	if cu == cv {
		return true // same SCC (or same vertex)
	}
	if st := o.obs.Load(); st != nil {
		if verdict := st.Query(uint32(cu), uint32(cv)); verdict != observe.Unknown {
			return verdict == observe.Positive
		}
	}
	return o.idx.Reachable(uint32(cu), uint32(cv))
}

// ReachableBatch answers many queries in one call: out[i] reports whether
// pairs[i][0] reaches pairs[i][1]. If out is non-nil and long enough it is
// filled and returned without allocating; otherwise a new slice is
// returned. Like Reachable it is safe for concurrent use, so callers may
// split a large batch across goroutines, each with its own out slice.
func (o *Oracle) ReachableBatch(pairs [][2]uint32, out []bool) []bool {
	if cap(out) < len(pairs) {
		out = make([]bool, len(pairs))
	}
	out = out[:len(pairs)]
	for i, p := range pairs {
		out[i] = o.Reachable(p[0], p[1])
	}
	return out
}

// Method returns the index method tag (e.g. "DL").
func (o *Oracle) Method() string { return o.idx.Name() }

// IndexSizeInts returns the index size in 32-bit integers — the metric of
// the paper's Figures 3 and 4.
func (o *Oracle) IndexSizeInts() int64 { return o.idx.SizeInts() }

// Graph returns the graph the oracle answers queries over. For
// snapshot-loaded oracles this is the graph reconstructed from the
// snapshot's condensation section.
func (o *Oracle) Graph() *Graph { return o.g }

// Loaded reports whether the oracle was restored from a snapshot rather
// than built.
func (o *Oracle) Loaded() bool { return o.loaded }

// Observers returns the observer fast-path stack consulted ahead of the
// index, or nil when observers are disabled. The stack exposes its
// per-observer hit counters and precompute cost for stats surfaces.
func (o *Oracle) Observers() *observe.Stack { return o.obs.Load() }

// DisableObservers removes the observer fast path so every query goes
// straight to the index — the runtime half of the ablation story
// (reachd -observers=off, reachbench -no-observers). Safe to call with
// queries in flight; in-progress queries may still use the old stack.
func (o *Oracle) DisableObservers() { o.obs.Store(nil) }

// Close releases the snapshot file mapping backing an oracle returned by
// Load. It is a no-op for built oracles. The oracle (and its Graph) must
// not be used afterwards.
func (o *Oracle) Close() error {
	if o.closer == nil {
		return nil
	}
	c := o.closer
	o.closer = nil
	return c()
}

// labeled is implemented by the hop-labeling indexes (DL, HL, TF, 2HOP).
type labeled interface {
	Labeling() *hoplabel.Labeling
}

// LabelStats returns hop-label statistics for labeling methods.
func (o *Oracle) LabelStats() (hoplabel.Stats, error) {
	l, ok := o.idx.(labeled)
	if !ok {
		return hoplabel.Stats{}, fmt.Errorf("reach: method %s has no labeling", o.idx.Name())
	}
	return l.Labeling().ComputeStats(), nil
}

// Save serializes the oracle — graph condensation, original vertex IDs
// when known, and index — as one snapshot. Any method in Methods() can be
// saved: methods with persistent state write it; the rest (online search,
// SCARAB wrappers) write a rebuild marker that Load replays
// deterministically from the stored build options.
func (o *Oracle) Save(w io.Writer) error {
	d, ok := index.Get(o.idx.Name())
	if !ok {
		return fmt.Errorf("reach: method %q is not registered", o.idx.Name())
	}
	return snapshot.Write(w, &snapshot.Snapshot{
		Tag:         d.Tag,
		Opts:        o.opts,
		OriginalN:   o.g.originalN,
		Comp:        o.g.comp,
		DAG:         o.g.dag,
		OrigIDs:     o.g.origIDs,
		Observers:   o.obs.Load(),
		Fingerprint: o.g.Fingerprint(),
	}, func(bw *blockio.Writer) error {
		return d.Encode(o.idx, bw)
	})
}

// SaveFile writes the snapshot to path atomically: the bytes go to a
// temporary file that is fsynced and renamed into place, so a crash
// mid-save can never leave a truncated snapshot under the final name.
func (o *Oracle) SaveFile(path string) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if err := o.Save(f); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, path)
}

// Load restores an oracle from a snapshot file by memory-mapping it: the
// graph CSR and any hop-labeling payload become zero-copy views of the
// mapping, so load time is governed by the file open, not the index size.
// Call Close on the returned oracle to release the mapping when done.
func Load(path string) (*Oracle, error) {
	snap, err := snapshot.Open(path)
	if err != nil {
		return nil, err
	}
	o, err := fromSnapshot(snap)
	if err != nil {
		_ = snap.Close() // best-effort unmap; the decode error is the one to report
		return nil, err
	}
	o.closer = snap.Close
	return o, nil
}

// LoadFrom restores an oracle from a snapshot stream — the copying
// fallback for sources that cannot be memory-mapped.
func LoadFrom(r io.Reader) (*Oracle, error) {
	snap, err := snapshot.Read(r)
	if err != nil {
		return nil, err
	}
	return fromSnapshot(snap)
}

// LoadBytes restores an oracle from an in-memory snapshot through the
// same zero-copy decode path Load uses for mapped files; data must
// outlive the oracle.
func LoadBytes(data []byte) (*Oracle, error) {
	snap, err := snapshot.ReadBytes(data)
	if err != nil {
		return nil, err
	}
	return fromSnapshot(snap)
}

func fromSnapshot(snap *snapshot.Snapshot) (*Oracle, error) {
	g := &Graph{
		dag:       snap.DAG,
		comp:      snap.Comp,
		originalN: snap.OriginalN,
		origIDs:   snap.OrigIDs,
	}
	// The header fingerprint was computed from the live graph at save
	// time; recomputing it over the decoded sections catches corruption
	// that is structurally valid (e.g. a flipped adjacency entry) and
	// would otherwise silently change answers.
	if got := g.Fingerprint(); got != snap.Fingerprint {
		return nil, fmt.Errorf("reach: snapshot graph fingerprint %x does not match recorded %x: file corrupt",
			got, snap.Fingerprint)
	}
	idx, err := snap.DecodeIndex()
	if err != nil {
		return nil, err
	}
	o := &Oracle{g: g, idx: idx, opts: snap.Opts, loaded: true}
	if snap.Observers != nil {
		o.obs.Store(snap.Observers)
	} else {
		// Pre-observer snapshot (or one saved with NoObservers): build
		// the fast path on the fly — older snapshots keep working and
		// still get the speedup, they just pay the precompute at load.
		o.obs.Store(observe.Build(g.dag, observe.Config{}))
	}
	return o, nil
}
