#!/usr/bin/env bash
# Cluster E2E: prove that a 3-replica reachd fleet behind reachrouter
# answers a query sweep exactly like single-node reachcli — including
# while one replica is SIGKILLed mid-sweep (the failover path), and on a
# full scatter-gathered batch while the fleet is degraded.
#
# Run from the repo root:  ./scripts/cluster_e2e.sh
# CI runs this as the cluster-e2e job.
set -euo pipefail

WORK="${WORK:-$(mktemp -d /tmp/reachfleet-e2e.XXXXXX)}"
BIN="$WORK/bin"
mkdir -p "$BIN"
ROUTER_ADDR="127.0.0.1:18080"
REPLICA_PORTS=(18081 18082 18083)

echo "== build binaries"
go build -o "$BIN" ./cmd/...

PIDS=()
cleanup() {
  kill -9 "${PIDS[@]}" 2>/dev/null || true
}
trap cleanup EXIT

echo "== generate graph + deterministic 240-pair query sweep"
"$BIN/gengraph" -family citation -n 20000 -m 80000 -seed 7 -out "$WORK/g.txt"
awk 'BEGIN{
  s=42
  for (i = 0; i < 240; i++) {
    s = (s * 1103515245 + 12345) % 2147483648; u = s % 20000
    s = (s * 1103515245 + 12345) % 2147483648; v = s % 20000
    print u, v
  }
}' > "$WORK/pairs.txt"

echo "== single-node ground truth (reachcli builds the index and saves the fleet's snapshot)"
"$BIN/reachcli" -graph "$WORK/g.txt" -method DL -save "$WORK/g.snap" \
  < "$WORK/pairs.txt" > "$WORK/expected.txt"
grep -cq true "$WORK/expected.txt" || { echo "sweep has no reachable pairs — not a meaningful test"; exit 1; }

echo "== start 3 replicas (each mmap-loads the one snapshot) + the router"
# Replica :${REPLICA_PORTS[1]} runs -wire=json (it survives the SIGKILL
# below), so the sweep also proves the router's per-replica encoding
# negotiation: a mixed fleet serves binary and JSON sub-batches side by
# side and still answers exactly like single-node reachcli. Replica
# :${REPLICA_PORTS[0]} additionally gets a -mux-addr stream listener
# (port+100), so one fleet exercises all three replica transports at
# once — mux streams, HTTP binary, HTTP JSON — and the SIGKILL below
# lands on the mux replica, covering stream-leg death too.
for port in "${REPLICA_PORTS[@]}"; do
  WIRE_FLAG=binary
  MUX_FLAGS=()
  if [ "$port" = "${REPLICA_PORTS[0]}" ]; then MUX_FLAGS=(-mux-addr "127.0.0.1:$((port + 100))"); fi
  if [ "$port" = "${REPLICA_PORTS[1]}" ]; then WIRE_FLAG=json; fi
  "$BIN/reachd" -snapshot "$WORK/g.snap" -addr "127.0.0.1:$port" -wire "$WIRE_FLAG" \
    ${MUX_FLAGS[@]+"${MUX_FLAGS[@]}"} \
    > "$WORK/reachd-$port.log" 2>&1 &
  PIDS+=($!)
done
"$BIN/reachrouter" -addr "$ROUTER_ADDR" \
  -replicas "http://127.0.0.1:${REPLICA_PORTS[0]},http://127.0.0.1:${REPLICA_PORTS[1]},http://127.0.0.1:${REPLICA_PORTS[2]}" \
  -probe-interval 100ms > "$WORK/router.log" 2>&1 &
PIDS+=($!)

echo "== wait for the router to enroll all 3 replicas"
for i in $(seq 1 150); do
  if curl -fsS "http://$ROUTER_ADDR/v1/healthz" 2>/dev/null | grep -q '"replicas_healthy":3'; then
    break
  fi
  if [ "$i" -eq 150 ]; then
    echo "fleet never became fully healthy"; cat "$WORK/router.log"; exit 1
  fi
  sleep 0.2
done
curl -fsS "http://$ROUTER_ADDR/v1/healthz"; echo

echo "== wire negotiation: binary to capable replicas, JSON to the -wire=json one"
curl -fsS "http://$ROUTER_ADDR/v1/stats" > "$WORK/stats0.json"
grep -qE "\"base\":\"http://127\.0\.0\.1:${REPLICA_PORTS[1]}\"[^{}]*\"wire\":\"json\"" "$WORK/stats0.json" \
  || { echo "-wire=json replica not negotiated down to JSON"; cat "$WORK/stats0.json"; exit 1; }
for port in "${REPLICA_PORTS[0]}" "${REPLICA_PORTS[2]}"; do
  grep -qE "\"base\":\"http://127\.0\.0\.1:$port\"[^{}]*\"wire\":\"binary\"" "$WORK/stats0.json" \
    || { echo "binary-capable replica :$port not negotiated to binary"; cat "$WORK/stats0.json"; exit 1; }
done
echo "   stats: 2 replicas on binary frames, 1 on JSON"

echo "== transport negotiation: mux streams to the advertising replica, HTTP to the rest"
grep -qE "\"base\":\"http://127\.0\.0\.1:${REPLICA_PORTS[0]}\"[^{}]*\"transport\":\"mux\"" "$WORK/stats0.json" \
  || { echo "mux-advertising replica not negotiated to mux"; cat "$WORK/stats0.json"; exit 1; }
for port in "${REPLICA_PORTS[1]}" "${REPLICA_PORTS[2]}"; do
  grep -qE "\"base\":\"http://127\.0\.0\.1:$port\"[^{}]*\"transport\":\"http\"" "$WORK/stats0.json" \
    || { echo "non-advertising replica :$port not kept on HTTP"; cat "$WORK/stats0.json"; exit 1; }
done
echo "   stats: 1 replica on mux streams, 2 on HTTP"

echo "== full 240-pair batch through the healthy 3/3 fleet: all three transports at once"
{
  printf '{"pairs":['
  awk '{printf "%s[%d,%d]", (NR > 1 ? "," : ""), $1, $2}' "$WORK/pairs.txt"
  printf ']}'
} > "$WORK/batch.json"
awk '{print $3}' "$WORK/expected.txt" > "$WORK/batch_expected.txt"
curl -fsS -X POST --data-binary "@$WORK/batch.json" \
  "http://$ROUTER_ADDR/v1/batch" > "$WORK/batch0.out"
sed -E 's/.*"results":\[([^]]*)\].*/\1/' "$WORK/batch0.out" | tr ',' '\n' > "$WORK/batch0_got.txt"
diff "$WORK/batch_expected.txt" "$WORK/batch0_got.txt" \
  || { echo "healthy-fleet batch diverged from single-node answers"; exit 1; }

echo "== /metrics on the mux replica (pre-kill): stream transport served its sub-batch"
curl -fsS "http://127.0.0.1:${REPLICA_PORTS[0]}/metrics" > "$WORK/mux_replica_metrics.txt"
grep -Eq 'reach_mux_frames_total\{direction="rx"\} [1-9][0-9]*' "$WORK/mux_replica_metrics.txt" \
  || { echo "mux replica received no stream frames"; grep reach_mux "$WORK/mux_replica_metrics.txt"; exit 1; }
grep -Eq 'reach_mux_conns [1-9][0-9]*' "$WORK/mux_replica_metrics.txt" \
  || { echo "mux replica holds no stream connections"; grep reach_mux "$WORK/mux_replica_metrics.txt"; exit 1; }
grep -q 'reach_http_request_seconds_count{endpoint="mux"}' "$WORK/mux_replica_metrics.txt" \
  || { echo "mux replica missing endpoint=mux latency histogram"; exit 1; }
echo "   mux replica metrics: stream frames received over live connections"

echo "== sweep through the router, SIGKILLing replica :${REPLICA_PORTS[0]} at query 120"
: > "$WORK/got.txt"
n=0
while read -r u v; do
  n=$((n + 1))
  if [ "$n" -eq 120 ]; then
    echo "   ... SIGKILL replica ${REPLICA_PORTS[0]} (pid ${PIDS[0]}) mid-sweep"
    kill -9 "${PIDS[0]}"
  fi
  ans=$(curl -fsS "http://$ROUTER_ADDR/v1/reachable?u=$u&v=$v" \
    | sed -E 's/.*"reachable":(true|false).*/\1/')
  echo "$u $v $ans" >> "$WORK/got.txt"
done < "$WORK/pairs.txt"

echo "== diff sweep answers against single-node reachcli"
diff "$WORK/expected.txt" "$WORK/got.txt"
echo "   sweep identical across router failover ($(wc -l < "$WORK/got.txt") queries)"

echo "== full 240-pair batch through the degraded (2/3) fleet, 5 rounds"
# Five rounds so the mixed fleet provably scatters sub-batches over BOTH
# HTTP encodings (the surviving replicas are one binary, one JSON);
# every round must still merge into exactly the single-node answers.
for round in 1 2 3 4 5; do
  curl -fsS -X POST --data-binary "@$WORK/batch.json" \
    "http://$ROUTER_ADDR/v1/batch" > "$WORK/batch.out"
  sed -E 's/.*"results":\[([^]]*)\].*/\1/' "$WORK/batch.out" | tr ',' '\n' > "$WORK/batch_got.txt"
  diff "$WORK/batch_expected.txt" "$WORK/batch_got.txt" \
    || { echo "mixed-wire batch round $round diverged from single-node answers"; exit 1; }
done
echo "   scatter-gathered batch identical while degraded, 5/5 rounds"

echo "== router stats must show the kill (a down replica + failover/retry counters)"
curl -fsS "http://$ROUTER_ADDR/v1/stats" > "$WORK/stats.json"
grep -q '"state":"down"' "$WORK/stats.json" || { echo "no replica marked down"; cat "$WORK/stats.json"; exit 1; }
grep -q '"replicas_healthy":2' "$WORK/stats.json" || { echo "fleet not degraded to 2/3"; cat "$WORK/stats.json"; exit 1; }

echo "== /metrics on the router: histogram counts must match the sweep exactly"
curl -fsS "http://$ROUTER_ADDR/metrics" > "$WORK/router_metrics.txt"
# 240 single queries and 6 batch rounds (1 healthy + 5 degraded) went
# through the router; every one is a histogram sample.
grep -q 'reach_http_request_seconds_count{endpoint="reachable"} 240' "$WORK/router_metrics.txt" \
  || { echo "router reachable histogram count != 240"; grep reach_http_request_seconds_count "$WORK/router_metrics.txt"; exit 1; }
grep -q 'reach_http_request_seconds_count{endpoint="batch"} 6' "$WORK/router_metrics.txt" \
  || { echo "router batch histogram count != 6"; grep reach_http_request_seconds_count "$WORK/router_metrics.txt"; exit 1; }
grep -q 'reach_http_request_seconds_bucket{endpoint="reachable",le=' "$WORK/router_metrics.txt" \
  || { echo "router missing request _bucket series"; exit 1; }
grep -q 'reach_router_upstream_seconds_bucket{' "$WORK/router_metrics.txt" \
  || { echo "router missing per-replica upstream RTT histogram"; exit 1; }
# The kill is detected either by an in-flight request (failovers_total)
# or by the probe loop racing ahead of the sweep — so assert the series
# exists rather than its value.
grep -q 'reach_router_failovers_total' "$WORK/router_metrics.txt" \
  || { echo "router missing failover counter"; exit 1; }
grep -q 'reach_router_replicas_healthy 2' "$WORK/router_metrics.txt" \
  || { echo "router healthy-replica gauge != 2"; exit 1; }
# The mixed fleet must have scattered sub-batches over both encodings.
grep -Eq 'reach_wire_frames_total\{encoding="binary"\} [1-9][0-9]*' "$WORK/router_metrics.txt" \
  || { echo "router sent no binary frames"; grep reach_wire "$WORK/router_metrics.txt"; exit 1; }
grep -Eq 'reach_wire_frames_total\{encoding="json"\} [1-9][0-9]*' "$WORK/router_metrics.txt" \
  || { echo "router sent no JSON sub-batches"; grep reach_wire "$WORK/router_metrics.txt"; exit 1; }
# The healthy-fleet round must have ridden the stream transport to the
# mux replica (frames in both directions), and after that replica's
# death the router must hold no open mux connections — stream-leg
# teardown is part of the failover story.
grep -Eq 'reach_mux_frames_total\{direction="tx"\} [1-9][0-9]*' "$WORK/router_metrics.txt" \
  || { echo "router sent no mux frames"; grep reach_mux "$WORK/router_metrics.txt"; exit 1; }
grep -Eq 'reach_mux_frames_total\{direction="rx"\} [1-9][0-9]*' "$WORK/router_metrics.txt" \
  || { echo "router received no mux frames"; grep reach_mux "$WORK/router_metrics.txt"; exit 1; }
grep -q 'reach_mux_conns 0' "$WORK/router_metrics.txt" \
  || { echo "router still holds mux connections to a dead replica"; grep reach_mux "$WORK/router_metrics.txt"; exit 1; }
echo "   router metrics: 240 reachable + 6 batch samples, both wire encodings + mux streams used"

echo "== /metrics on a surviving replica: per-stage histograms must exist"
REPLICA_METRICS="http://127.0.0.1:${REPLICA_PORTS[1]}/metrics"
curl -fsS "$REPLICA_METRICS" > "$WORK/replica_metrics.txt"
# Per-replica counts are load-balanced and nondeterministic; assert the
# serving-stage series exist and the replica answered a nonzero share.
for series in \
  'reach_http_request_seconds_bucket{endpoint="reachable",le=' \
  'reach_stage_seconds_bucket{stage="cache_lookup",le=' \
  'reach_stage_seconds_bucket{stage="index_probe",le=' \
  'reach_stage_seconds_bucket{stage="chunk_dispatch",le='; do
  grep -q "$series" "$WORK/replica_metrics.txt" \
    || { echo "replica missing series $series"; exit 1; }
done
grep -Eq 'reach_queries_total [1-9][0-9]*' "$WORK/replica_metrics.txt" \
  || { echo "replica served no queries?"; grep reach_queries_total "$WORK/replica_metrics.txt"; exit 1; }
echo "   replica metrics: all serving-stage histograms present"

echo "== trace propagation: a client trace ID must come back from the router"
TRACE_ID="e2e-cluster-trace-$$"
read -r u v < "$WORK/pairs.txt"
curl -fsS -D "$WORK/trace_headers.txt" -H "X-Reach-Trace: $TRACE_ID" \
  "http://$ROUTER_ADDR/v1/reachable?u=$u&v=$v" > /dev/null
grep -qi "x-reach-trace: $TRACE_ID" "$WORK/trace_headers.txt" \
  || { echo "router did not echo the trace ID"; cat "$WORK/trace_headers.txt"; exit 1; }
grep -qi "x-reach-server-timing: .*route;dur=" "$WORK/trace_headers.txt" \
  || { echo "router response missing Server-Timing stages"; cat "$WORK/trace_headers.txt"; exit 1; }
echo "   trace ID echoed with per-stage Server-Timing"

echo "PASS: fleet answers == single-node answers, before and after replica death"
