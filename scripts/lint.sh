#!/usr/bin/env bash
# One-shot local lint: everything the CI lint job runs that needs no
# network. gofmt, go vet, the reachlint analyzer suite, and — when the
# binary is already installed — staticcheck.
set -euo pipefail
cd "$(dirname "$0")/.."

fail=0

echo "== gofmt"
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
  echo "gofmt needed on:" >&2
  echo "$unformatted" >&2
  fail=1
fi

echo "== go vet"
go vet ./... || fail=1

echo "== reachlint"
go run ./cmd/reachlint -vet=false ./... || fail=1

if command -v staticcheck >/dev/null 2>&1; then
  echo "== staticcheck"
  staticcheck ./... || fail=1
else
  echo "== staticcheck (skipped: not installed; CI still runs it)"
fi

exit "$fail"
