package reach

import (
	"math/rand"
	"sync"
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
)

func genFixture(t *testing.T) *Graph {
	t.Helper()
	raw := gen.CitationDAG(400, 3, 0.5, 7)
	edges := make([][2]uint32, 0, raw.NumEdges())
	raw.Edges(func(u, v graph.Vertex) bool {
		edges = append(edges, [2]uint32{uint32(u), uint32(v)})
		return true
	})
	g, err := NewGraph(raw.NumVertices(), edges)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestReachableOutOfRange(t *testing.T) {
	g, err := NewGraph(4, [][2]uint32{{0, 1}, {1, 2}, {2, 3}})
	if err != nil {
		t.Fatal(err)
	}
	o, err := Build(g, MethodDL, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range [][2]uint32{{4, 0}, {0, 4}, {4, 4}, {^uint32(0), 1}, {1, ^uint32(0)}} {
		if o.Reachable(q[0], q[1]) { // must not panic, must answer false
			t.Errorf("Reachable(%d, %d) = true for out-of-range vertex, want false", q[0], q[1])
		}
	}
	if !o.Reachable(0, 3) {
		t.Error("in-range query broken by bounds check")
	}
}

func TestReachableBatch(t *testing.T) {
	g := genFixture(t)
	o, err := Build(g, MethodDL, Options{})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(11))
	pairs := make([][2]uint32, 500)
	n := uint32(g.NumVertices())
	for i := range pairs {
		pairs[i] = [2]uint32{rng.Uint32() % n, rng.Uint32() % n}
	}
	pairs = append(pairs, [2]uint32{n + 5, 0}) // out of range rides along
	got := o.ReachableBatch(pairs, nil)
	if len(got) != len(pairs) {
		t.Fatalf("batch returned %d results for %d pairs", len(got), len(pairs))
	}
	for i, p := range pairs {
		if got[i] != o.Reachable(p[0], p[1]) {
			t.Fatalf("batch result %d disagrees with Reachable(%d, %d)", i, p[0], p[1])
		}
	}
	// Reusing a caller-provided slice must not allocate a new one.
	buf := make([]bool, len(pairs))
	if got2 := o.ReachableBatch(pairs, buf); &got2[0] != &buf[0] {
		t.Error("ReachableBatch did not reuse the provided output slice")
	}
}

// TestOracleConcurrentHammer drives every method's oracle from many
// goroutines with mixed positive/negative queries. Run under -race it
// enforces the package's concurrency guarantee; the answers are also
// checked against a single-threaded pass.
func TestOracleConcurrentHammer(t *testing.T) {
	g := genFixture(t)
	rng := rand.New(rand.NewSource(23))
	const queries = 2000
	pairs := make([][2]uint32, queries)
	n := uint32(g.NumVertices())
	for i := range pairs {
		pairs[i] = [2]uint32{rng.Uint32() % n, rng.Uint32() % n}
	}

	for _, m := range Methods() {
		o, err := Build(g, m, Options{})
		if err != nil {
			t.Fatalf("%s: %v", m, err)
		}
		want := o.ReachableBatch(pairs, nil)

		const workers = 8
		var wg sync.WaitGroup
		errs := make(chan string, workers)
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				// Each worker walks the pairs from a different offset so
				// goroutines overlap on different queries at any instant.
				for i := 0; i < queries; i++ {
					j := (i + w*queries/workers) % queries
					if o.Reachable(pairs[j][0], pairs[j][1]) != want[j] {
						select {
						case errs <- string(m):
						default:
						}
						return
					}
				}
			}(w)
		}
		wg.Wait()
		close(errs)
		if m, bad := <-errs; bad {
			t.Fatalf("%s: concurrent answer disagrees with single-threaded answer", m)
		}
	}
}
