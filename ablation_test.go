// Ablation benchmarks for the design choices DESIGN.md calls out:
//
//   - DL's vertex order: the paper's degree-product rank vs topological,
//     random, and worst-case reverse order (§5.2 argues the rank function
//     drives label compactness).
//   - HL's locality threshold ε ∈ {1, 2, 3} (ε = 1 being TF-label's
//     hierarchy, ε = 2 the paper's default).
//   - Label-set representation: sorted-vector merge intersection vs
//     hash-set probing — the §1 claim that sorted vectors eliminate the
//     reachability oracle's historical query-performance gap.
package reach_test

import (
	"testing"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/order"
	"repro/internal/workload"
)

// BenchmarkAblationDLOrder builds DL under each order strategy and
// reports build time plus resulting label size.
func BenchmarkAblationDLOrder(b *testing.B) {
	g := benchGraph(b, "arxiv", 8000)
	for _, s := range []order.Strategy{
		order.DegreeProduct, order.Topo, order.RandomOrder, order.ReverseDegreeProduct,
	} {
		s := s
		b.Run(string(s), func(b *testing.B) {
			var size int64
			for i := 0; i < b.N; i++ {
				dl, err := core.BuildDL(g, core.DLOptions{Strategy: s, Seed: 7})
				if err != nil {
					b.Fatal(err)
				}
				size = dl.SizeInts()
			}
			b.ReportMetric(float64(size), "label-ints")
		})
	}
}

// TestAblationDLOrderCompactness asserts the paper's qualitative claim:
// the degree-product rank yields smaller labels than a random or reverse
// order on a citation graph.
func TestAblationDLOrderCompactness(t *testing.T) {
	spec, _ := dataset.ByName("arxiv")
	g := spec.BuildAt(4000)
	sizes := map[order.Strategy]int64{}
	for _, s := range []order.Strategy{order.DegreeProduct, order.RandomOrder, order.ReverseDegreeProduct} {
		dl, err := core.BuildDL(g, core.DLOptions{Strategy: s, Seed: 3})
		if err != nil {
			t.Fatal(err)
		}
		sizes[s] = dl.SizeInts()
	}
	if sizes[order.DegreeProduct] >= sizes[order.RandomOrder] {
		t.Errorf("degree-product labels (%d) not smaller than random order (%d)",
			sizes[order.DegreeProduct], sizes[order.RandomOrder])
	}
	if sizes[order.DegreeProduct] >= sizes[order.ReverseDegreeProduct] {
		t.Errorf("degree-product labels (%d) not smaller than reverse order (%d)",
			sizes[order.DegreeProduct], sizes[order.ReverseDegreeProduct])
	}
}

// BenchmarkAblationHLEpsilon builds HL with ε ∈ {1, 2, 3}.
func BenchmarkAblationHLEpsilon(b *testing.B) {
	g := benchGraph(b, "agrocyc", 8000)
	for _, eps := range []int{1, 2, 3} {
		eps := eps
		b.Run(map[int]string{1: "eps1-TF", 2: "eps2-paper", 3: "eps3"}[eps], func(b *testing.B) {
			var size int64
			for i := 0; i < b.N; i++ {
				hl, err := core.BuildHL(g, core.HLOptions{Epsilon: eps, CoreLimit: 256})
				if err != nil {
					b.Fatal(err)
				}
				size = hl.SizeInts()
			}
			b.ReportMetric(float64(size), "label-ints")
		})
	}
}

// mapLabeling is the §1 strawman: hop sets as hash sets.
type mapLabeling struct {
	out []map[uint32]struct{}
	in  []map[uint32]struct{}
}

func (m *mapLabeling) Reachable(u, v uint32) bool {
	if u == v {
		return true
	}
	a, b := m.out[u], m.in[v]
	if len(b) < len(a) {
		a, b = b, a
	}
	for h := range a {
		if _, ok := b[h]; ok {
			return true
		}
	}
	return false
}

// BenchmarkAblationLabelRepresentation compares query cost of the same DL
// labeling stored as sorted vectors (the paper's fix) vs hash sets (the
// historical implementation the paper blames for the oracle's bad
// reputation).
func BenchmarkAblationLabelRepresentation(b *testing.B) {
	g := benchGraph(b, "arxiv", 8000)
	dl, err := core.BuildDL(g, core.DLOptions{})
	if err != nil {
		b.Fatal(err)
	}
	l := dl.Labeling()
	ml := &mapLabeling{
		out: make([]map[uint32]struct{}, g.NumVertices()),
		in:  make([]map[uint32]struct{}, g.NumVertices()),
	}
	for v := 0; v < g.NumVertices(); v++ {
		ml.out[v] = make(map[uint32]struct{}, len(l.Out(uint32(v))))
		for _, h := range l.Out(uint32(v)) {
			ml.out[v][h] = struct{}{}
		}
		ml.in[v] = make(map[uint32]struct{}, len(l.In(uint32(v))))
		for _, h := range l.In(uint32(v)) {
			ml.in[v][h] = struct{}{}
		}
	}
	wl, err := workload.Generate(g, workload.Equal, 10_000, 5)
	if err != nil {
		b.Fatal(err)
	}

	b.Run("sorted-vector", func(b *testing.B) {
		sink := 0
		for i := 0; i < b.N; i++ {
			q := i % wl.Len()
			if dl.Reachable(wl.U[q], wl.V[q]) {
				sink++
			}
		}
		benchSink = sink
	})
	b.Run("hash-set", func(b *testing.B) {
		sink := 0
		for i := 0; i < b.N; i++ {
			q := i % wl.Len()
			if ml.Reachable(wl.U[q], wl.V[q]) {
				sink++
			}
		}
		benchSink = sink
	})

	// Sanity: both representations agree.
	for q := 0; q < 200; q++ {
		if dl.Reachable(wl.U[q], wl.V[q]) != ml.Reachable(wl.U[q], wl.V[q]) {
			b.Fatal("representations disagree")
		}
	}
}
