// BenchmarkObserverStack is the fast-path ablation: every method's
// per-query cost with the observer stack on vs off, same index, same
// workload. CI runs it into the BENCH_PR*.json artifact so the
// per-method observer win is tracked across PRs:
//
//	go test -run '^$' -bench BenchmarkObserverStack -benchtime 100x .
package reach_test

import (
	"testing"

	"repro"
	"repro/internal/dataset"
	"repro/internal/workload"
)

var obsBenchSink int

// BenchmarkObserverStack measures Oracle.Reachable for every registered
// method with the observer fast path enabled and disabled. The index is
// built once per method; only the observer stack differs between the two
// sub-benchmarks, so the delta is purely the fast path.
func BenchmarkObserverStack(b *testing.B) {
	spec, ok := dataset.ByName("wiki")
	if !ok {
		b.Fatal("unknown dataset wiki")
	}
	raw := spec.BuildAt(25_000)
	// A hub-structured web graph with the Equal (50% reachable) workload
	// exercises every observer: topo intervals and degenerate exits
	// certify the negatives, and the supportive hubs catch most of the
	// positives — the regime the fast path is built for. Sparser graphs
	// (Table2's bio family) shift the mix toward interval negatives.
	wl, err := workload.Generate(raw, workload.Equal, 10_000, 7)
	if err != nil {
		b.Fatal(err)
	}
	g, err := reach.NewGraph(raw.NumVertices(), raw.EdgeList())
	if err != nil {
		b.Fatal(err)
	}
	for _, m := range reach.Methods() {
		m := m
		b.Run("method="+string(m), func(b *testing.B) {
			o, err := reach.Build(g, m, reach.Options{})
			if err != nil {
				b.Skipf("%s skipped: %v", m, err)
			}
			run := func(b *testing.B) {
				sink := 0
				for i := 0; i < b.N; i++ {
					q := i % wl.Len()
					if o.Reachable(wl.U[q], wl.V[q]) {
						sink++
					}
				}
				obsBenchSink = sink
			}
			b.Run("observers=on", run)
			// Same oracle, observer stack removed: every query falls
			// through to the index, as before this PR.
			o.DisableObservers()
			b.Run("observers=off", run)
		})
	}
}
