package reach

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
)

// cyclicFixture returns a graph with two 3-cycles bridged by an edge, plus
// a tail: {0,1,2} -> {3,4,5} -> 6.
func cyclicFixture(t *testing.T) *Graph {
	t.Helper()
	g, err := NewGraph(7, [][2]uint32{
		{0, 1}, {1, 2}, {2, 0},
		{3, 4}, {4, 5}, {5, 3},
		{2, 3}, {5, 6},
	})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestNewGraphCondensesCycles(t *testing.T) {
	g := cyclicFixture(t)
	if g.NumVertices() != 7 {
		t.Fatalf("NumVertices = %d", g.NumVertices())
	}
	if g.DAGVertices() != 3 {
		t.Fatalf("DAGVertices = %d, want 3 (two SCCs + tail)", g.DAGVertices())
	}
	if !g.SameComponent(0, 2) || g.SameComponent(0, 3) {
		t.Error("SameComponent wrong")
	}
}

func TestOracleOnCyclicGraphAllMethods(t *testing.T) {
	g := cyclicFixture(t)
	truth := func(u, v uint32) bool {
		// All of 0-6 reach forward: {0,1,2} reach everything; {3,4,5}
		// reach {3,4,5,6}; 6 reaches only itself.
		group := func(x uint32) int {
			switch {
			case x <= 2:
				return 0
			case x <= 5:
				return 1
			default:
				return 2
			}
		}
		return group(u) <= group(v)
	}
	for _, m := range Methods() {
		o, err := Build(g, m, Options{})
		if err != nil {
			t.Fatalf("%s: %v", m, err)
		}
		for u := uint32(0); u < 7; u++ {
			for v := uint32(0); v < 7; v++ {
				if got := o.Reachable(u, v); got != truth(u, v) {
					t.Fatalf("%s: Reachable(%d,%d) = %v, want %v", m, u, v, got, truth(u, v))
				}
			}
		}
	}
}

func TestBuildUnknownMethod(t *testing.T) {
	g := cyclicFixture(t)
	if _, err := Build(g, Method("nope"), Options{}); err == nil {
		t.Fatal("unknown method accepted")
	}
}

func TestNewGraphErrors(t *testing.T) {
	if _, err := NewGraph(-1, nil); err == nil {
		t.Error("negative n accepted")
	}
	if _, err := NewGraph(2, [][2]uint32{{0, 5}}); err == nil {
		t.Error("out-of-range edge accepted")
	}
	// Self loops are dropped, not errors.
	g, err := NewGraph(2, [][2]uint32{{0, 0}, {0, 1}})
	if err != nil || g.DAGEdges() != 1 {
		t.Errorf("self-loop handling: %v, edges=%d", err, g.DAGEdges())
	}
}

func TestReadGraph(t *testing.T) {
	in := strings.NewReader("# comment\n10 20\n20 30\n30 10\n30 40\n")
	g, orig, err := ReadGraph(in)
	if err != nil {
		t.Fatal(err)
	}
	if len(orig) != 4 {
		t.Fatalf("orig = %v", orig)
	}
	if g.DAGVertices() != 2 {
		t.Fatalf("DAGVertices = %d, want 2 (3-cycle + sink)", g.DAGVertices())
	}
	o, err := Build(g, MethodDL, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Vertices 10,20,30 densify to 0,1,2; 40 to 3. All reach 40's vertex.
	if !o.Reachable(0, 3) || !o.Reachable(1, 0) || o.Reachable(3, 0) {
		t.Error("reachability through condensed cycle wrong")
	}
}

func TestOracleAgainstBFSRandomized(t *testing.T) {
	// Random digraph WITH cycles: exercises the full condensation path for
	// the two contribution methods.
	rng := rand.New(rand.NewSource(11))
	n := 150
	var edges [][2]uint32
	for i := 0; i < 450; i++ {
		u, v := uint32(rng.Intn(n)), uint32(rng.Intn(n))
		if u != v {
			edges = append(edges, [2]uint32{u, v})
		}
	}
	g, err := NewGraph(n, edges)
	if err != nil {
		t.Fatal(err)
	}
	// Ground truth on the raw digraph.
	b := graph.NewBuilder(n)
	for _, e := range edges {
		b.AddEdge(e[0], e[1])
	}
	raw := b.MustBuild()
	vst := graph.NewVisitor(n)

	for _, m := range []Method{MethodDL, MethodHL} {
		o, err := Build(g, m, Options{})
		if err != nil {
			t.Fatal(err)
		}
		for q := 0; q < 3000; q++ {
			u, v := uint32(rng.Intn(n)), uint32(rng.Intn(n))
			want := vst.Reachable(raw, u, v)
			if got := o.Reachable(u, v); got != want {
				t.Fatalf("%s: Reachable(%d,%d) = %v, want %v", m, u, v, got, want)
			}
		}
	}
}

func TestOracleMetadata(t *testing.T) {
	g := cyclicFixture(t)
	o, err := Build(g, MethodDL, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if o.Method() != "DL" {
		t.Errorf("Method = %q", o.Method())
	}
	if o.IndexSizeInts() <= 0 {
		t.Errorf("IndexSizeInts = %d", o.IndexSizeInts())
	}
	stats, err := o.LabelStats()
	if err != nil || stats.TotalOut == 0 {
		t.Errorf("LabelStats: %+v, %v", stats, err)
	}
}

func TestSaveAnyMethod(t *testing.T) {
	g := cyclicFixture(t)
	o, err := Build(g, MethodHL, Options{})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := o.Save(&buf); err != nil {
		t.Fatal(err)
	}
	if buf.Len() == 0 {
		t.Fatal("empty serialization")
	}
	// Index-free methods serialize too (the snapshot carries the graph and
	// a rebuild marker), but still have no hop labeling to report on.
	bfs, _ := Build(g, MethodBFS, Options{})
	buf.Reset()
	if err := bfs.Save(&buf); err != nil {
		t.Fatalf("BFS oracle refused to snapshot: %v", err)
	}
	if _, err := bfs.LabelStats(); err == nil {
		t.Fatal("BFS oracle returned label stats")
	}
}

func TestDAGAccessors(t *testing.T) {
	g := cyclicFixture(t)
	if g.DAG() == nil {
		t.Fatal("DAG() nil")
	}
	if s := g.Stats(); s.Vertices != 3 {
		t.Errorf("stats = %+v", s)
	}
	if g.MapVertex(0) != g.MapVertex(1) {
		t.Error("cycle members map to different DAG vertices")
	}
}

func TestPublicAPIOnLargerDAG(t *testing.T) {
	// Acyclic input skips condensation; verify against BFS.
	raw := gen.CitationDAG(800, 3, 0.5, 13)
	edges := make([][2]uint32, 0, raw.NumEdges())
	raw.Edges(func(u, v graph.Vertex) bool {
		edges = append(edges, [2]uint32{uint32(u), uint32(v)})
		return true
	})
	g, err := NewGraph(raw.NumVertices(), edges)
	if err != nil {
		t.Fatal(err)
	}
	if g.DAGVertices() != raw.NumVertices() {
		t.Fatal("acyclic input should not shrink")
	}
	o, err := Build(g, MethodDL, Options{})
	if err != nil {
		t.Fatal(err)
	}
	vst := graph.NewVisitor(raw.NumVertices())
	rng := rand.New(rand.NewSource(5))
	for q := 0; q < 2000; q++ {
		u := uint32(rng.Intn(raw.NumVertices()))
		v := uint32(rng.Intn(raw.NumVertices()))
		if got, want := o.Reachable(u, v), vst.Reachable(raw, graph.Vertex(u), graph.Vertex(v)); got != want {
			t.Fatalf("Reachable(%d,%d) = %v, want %v", u, v, got, want)
		}
	}
}
