package reach_test

import (
	"fmt"

	reach "repro"
)

// ExampleBuild demonstrates the core workflow: build a graph (cycles
// allowed), index it with Distribution-Labeling, query.
func ExampleBuild() {
	g, err := reach.NewGraph(5, [][2]uint32{
		{0, 1}, {1, 2}, {2, 0}, // a 3-cycle
		{2, 3}, // cycle reaches 3
		{4, 3}, // 4 reaches 3 but nothing reaches 4
	})
	if err != nil {
		panic(err)
	}
	oracle, err := reach.Build(g, reach.MethodDL, reach.Options{})
	if err != nil {
		panic(err)
	}
	fmt.Println(oracle.Reachable(0, 3)) // via the cycle
	fmt.Println(oracle.Reachable(1, 0)) // same SCC
	fmt.Println(oracle.Reachable(3, 4)) // wrong direction
	// Output:
	// true
	// true
	// false
}

// ExampleBuildDistance shows k-hop reachability (the paper's future-work
// k-reach generalization) via the pruned-landmark distance oracle.
func ExampleBuildDistance() {
	g, err := reach.NewGraph(4, [][2]uint32{{0, 1}, {1, 2}, {2, 3}, {0, 3}})
	if err != nil {
		panic(err)
	}
	d, err := reach.BuildDistance(g)
	if err != nil {
		panic(err)
	}
	fmt.Println(d.Distance(0, 3)) // shortcut edge wins
	fmt.Println(d.Distance(1, 3))
	fmt.Println(d.WithinK(1, 3, 1)) // needs 2 hops
	// Output:
	// 1
	// 2
	// false
}

// ExampleGraph_SameComponent shows SCC condensation byproducts.
func ExampleGraph_SameComponent() {
	g, _ := reach.NewGraph(4, [][2]uint32{{0, 1}, {1, 0}, {2, 3}})
	fmt.Println(g.SameComponent(0, 1))
	fmt.Println(g.SameComponent(0, 2))
	fmt.Println(g.DAGVertices())
	// Output:
	// true
	// false
	// 3
}
