// Differential correctness for the observer fast path: on any graph, for
// every registered method, an oracle with observers enabled must return
// exactly the answers it returns with observers disabled — and both must
// match a brute-force BFS ground truth. Run with -race this also hammers
// the atomic observer pointer: sweeps run concurrently across goroutines
// while DisableObservers flips the stack between them.
package reach_test

import (
	"math/rand"
	"sync"
	"testing"

	"repro"
)

// diffGraph is one differential-test input: a vertex count and edge list.
type diffGraph struct {
	name  string
	n     int
	edges [][2]uint32
}

// randomDiffDAG generates edges that only point forward in vertex order,
// so the graph is acyclic by construction.
func randomDiffDAG(n, m int, seed int64) diffGraph {
	rng := rand.New(rand.NewSource(seed))
	edges := make([][2]uint32, 0, m)
	for len(edges) < m {
		u := rng.Intn(n - 1)
		v := u + 1 + rng.Intn(n-u-1)
		edges = append(edges, [2]uint32{uint32(u), uint32(v)})
	}
	return diffGraph{name: "dag", n: n, edges: edges}
}

// randomDiffDigraph generates unconstrained edges, so cycles (and hence
// nontrivial SCC condensation) appear; self-loops are filtered by
// NewGraph.
func randomDiffDigraph(n, m int, seed int64) diffGraph {
	rng := rand.New(rand.NewSource(seed))
	edges := make([][2]uint32, 0, m)
	for len(edges) < m {
		edges = append(edges, [2]uint32{uint32(rng.Intn(n)), uint32(rng.Intn(n))})
	}
	return diffGraph{name: "digraph", n: n, edges: edges}
}

// bruteTruth computes full reachability over the original (possibly
// cyclic) graph by BFS from every source. truth[u*n+v] ⇔ u reaches v.
func bruteTruth(dg diffGraph) []bool {
	n := dg.n
	adj := make([][]uint32, n)
	for _, e := range dg.edges {
		if e[0] != e[1] {
			adj[e[0]] = append(adj[e[0]], e[1])
		}
	}
	truth := make([]bool, n*n)
	queue := make([]uint32, 0, n)
	for s := 0; s < n; s++ {
		row := truth[s*n : (s+1)*n]
		row[s] = true
		queue = append(queue[:0], uint32(s))
		for len(queue) > 0 {
			u := queue[len(queue)-1]
			queue = queue[:len(queue)-1]
			for _, v := range adj[u] {
				if !row[v] {
					row[v] = true
					queue = append(queue, v)
				}
			}
		}
	}
	return truth
}

// sweep answers every (u,v) pair concurrently, splitting source rows
// across goroutines so -race exercises the oracle's concurrency contract
// (and, between sweeps, the observer pointer swap).
func sweep(o *reach.Oracle, n int) []bool {
	out := make([]bool, n*n)
	const workers = 4
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for u := w; u < n; u += workers {
				for v := 0; v < n; v++ {
					out[u*n+v] = o.Reachable(uint32(u), uint32(v))
				}
			}
		}(w)
	}
	wg.Wait()
	return out
}

// TestObserverDifferential is the satellite correctness gate: for a
// random DAG and a random digraph, every method's answers are identical
// with and without the observer fast path, and both match brute force.
func TestObserverDifferential(t *testing.T) {
	graphs := []diffGraph{
		randomDiffDAG(80, 200, 42),
		randomDiffDigraph(80, 240, 43),
	}
	for _, dg := range graphs {
		dg := dg
		t.Run(dg.name, func(t *testing.T) {
			truth := bruteTruth(dg)
			g, err := reach.NewGraph(dg.n, dg.edges)
			if err != nil {
				t.Fatal(err)
			}
			for _, m := range reach.Methods() {
				m := m
				t.Run(string(m), func(t *testing.T) {
					o, err := reach.Build(g, m, reach.Options{Seed: 7})
					if err != nil {
						t.Skipf("%s skipped: %v", m, err)
					}
					if o.Observers() == nil {
						t.Fatal("observers absent on a default Build")
					}
					on := sweep(o, dg.n)
					o.DisableObservers()
					if o.Observers() != nil {
						t.Fatal("observers still present after DisableObservers")
					}
					off := sweep(o, dg.n)
					for i := range on {
						u, v := i/dg.n, i%dg.n
						if on[i] != off[i] {
							t.Fatalf("reach(%d,%d): observers-on=%v observers-off=%v", u, v, on[i], off[i])
						}
						if on[i] != truth[i] {
							t.Fatalf("reach(%d,%d) = %v, brute force says %v", u, v, on[i], truth[i])
						}
					}
				})
			}
		})
	}
}

// TestObserverDifferentialBatch covers the batch entry point with the
// same on/off equivalence on the cyclic graph.
func TestObserverDifferentialBatch(t *testing.T) {
	dg := randomDiffDigraph(60, 180, 44)
	g, err := reach.NewGraph(dg.n, dg.edges)
	if err != nil {
		t.Fatal(err)
	}
	pairs := make([][2]uint32, 0, dg.n*dg.n)
	for u := 0; u < dg.n; u++ {
		for v := 0; v < dg.n; v++ {
			pairs = append(pairs, [2]uint32{uint32(u), uint32(v)})
		}
	}
	for _, m := range []reach.Method{reach.MethodDL, reach.MethodGRAIL, reach.MethodBFS} {
		o, err := reach.Build(g, m, reach.Options{})
		if err != nil {
			t.Fatalf("%s: %v", m, err)
		}
		on := o.ReachableBatch(pairs, nil)
		o.DisableObservers()
		off := o.ReachableBatch(pairs, nil)
		for i := range on {
			if on[i] != off[i] {
				t.Fatalf("%s batch pair %v: observers-on=%v observers-off=%v", m, pairs[i], on[i], off[i])
			}
		}
	}
}

// TestObserverHitCountersCount pins the accounting contract: after a
// sweep, the per-observer hit counters sum to at most the query count,
// and a decided query never reaches a poisoned index — verified
// indirectly here by hits being nonzero on a sparse DAG where intervals
// prune most pairs.
func TestObserverHitCountersCount(t *testing.T) {
	dg := randomDiffDAG(120, 180, 45)
	g, err := reach.NewGraph(dg.n, dg.edges)
	if err != nil {
		t.Fatal(err)
	}
	o, err := reach.Build(g, reach.MethodDL, reach.Options{})
	if err != nil {
		t.Fatal(err)
	}
	queries := 0
	for u := 0; u < dg.n; u++ {
		for v := 0; v < dg.n; v++ {
			if u != v {
				o.Reachable(uint32(u), uint32(v))
				queries++
			}
		}
	}
	st := o.Observers()
	total := int64(0)
	for kind, hits := range st.HitsMap() {
		if hits < 0 {
			t.Fatalf("observer %s has negative hits %d", kind, hits)
		}
		total += hits
	}
	if total == 0 {
		t.Fatal("no observer fired across a full sparse-DAG sweep")
	}
	if total > int64(queries) {
		t.Fatalf("observers recorded %d hits for %d queries", total, queries)
	}
	t.Logf("observers decided %d/%d queries (%.1f%%): %v", total, queries,
		100*float64(total)/float64(queries), st.HitsMap())
}
