// Benchmarks mirroring the paper's evaluation artifacts: one benchmark
// family per table/figure. Each family runs every method as a
// sub-benchmark on representative datasets from the catalog, so
//
//	go test -bench=Table2 -benchmem
//
// reproduces the relative query-time ordering of Table 2, and so on. Full
// multi-dataset tables (exact paper layout, all 27 datasets) come from
// cmd/reachbench; these benches are the statistically-stable per-method
// measurements behind them.
package reach_test

import (
	"testing"

	"repro/internal/bench"
	"repro/internal/dataset"
	"repro/internal/graph"
	"repro/internal/index"
	"repro/internal/tc"
	"repro/internal/workload"
)

// benchGraph builds a catalog dataset at a bench-friendly size.
func benchGraph(b *testing.B, name string, n int) *graph.Graph {
	b.Helper()
	spec, ok := dataset.ByName(name)
	if !ok {
		b.Fatalf("unknown dataset %s", name)
	}
	return spec.BuildAt(n)
}

// buildFor constructs one method's index, skipping the benchmark when the
// method's budget rejects the graph (the "—" entries of the paper).
func buildFor(b *testing.B, m bench.Method, g *graph.Graph) index.Index {
	b.Helper()
	est := tc.EstimatePairs(g, 48, 1)
	idx, err := m.Build(g, est, bench.Config{}.WithDefaults())
	if err != nil {
		b.Skipf("%s skipped: %v", m.ID, err)
	}
	return idx
}

// queryBench measures per-query time for every method on one dataset.
func queryBench(b *testing.B, dsName string, n int, kind workload.Kind) {
	g := benchGraph(b, dsName, n)
	wl, err := workload.Generate(g, kind, 10_000, 7)
	if err != nil {
		b.Fatal(err)
	}
	for _, m := range bench.Methods() {
		m := m
		b.Run(m.ID, func(b *testing.B) {
			idx := buildFor(b, m, g)
			b.ResetTimer()
			sink := 0
			for i := 0; i < b.N; i++ {
				q := i % wl.Len()
				if idx.Reachable(wl.U[q], wl.V[q]) {
					sink++
				}
			}
			benchSink = sink
		})
	}
}

// constructionBench measures index build time for every method.
func constructionBench(b *testing.B, dsName string, n int) {
	g := benchGraph(b, dsName, n)
	est := tc.EstimatePairs(g, 48, 1)
	cfg := bench.Config{}.WithDefaults()
	for _, m := range bench.Methods() {
		m := m
		b.Run(m.ID, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				idx, err := m.Build(g, est, cfg)
				if err != nil {
					b.Skipf("%s skipped: %v", m.ID, err)
				}
				benchSizeSink = idx.SizeInts()
			}
		})
	}
}

// sizeBench reports index size (the paper's integer-count metric) for
// every method via ReportMetric.
func sizeBench(b *testing.B, dsName string, n int) {
	g := benchGraph(b, dsName, n)
	est := tc.EstimatePairs(g, 48, 1)
	cfg := bench.Config{}.WithDefaults()
	for _, m := range bench.Methods() {
		m := m
		b.Run(m.ID, func(b *testing.B) {
			var size int64
			for i := 0; i < b.N; i++ {
				idx, err := m.Build(g, est, cfg)
				if err != nil {
					b.Skipf("%s skipped: %v", m.ID, err)
				}
				size = idx.SizeInts()
			}
			b.ReportMetric(float64(size), "ints")
		})
	}
}

var (
	benchSink     int
	benchSizeSink int64
)

// BenchmarkTable1DatasetGen measures catalog generation itself (Table 1).
func BenchmarkTable1DatasetGen(b *testing.B) {
	for _, name := range []string{"agrocyc", "arxiv", "cit-Patents", "uniprotenc_22m"} {
		name := name
		b.Run(name, func(b *testing.B) {
			spec, _ := dataset.ByName(name)
			for i := 0; i < b.N; i++ {
				g := spec.BuildAt(5000)
				benchSink = g.NumEdges()
			}
		})
	}
}

// BenchmarkTable2QueryEqualSmall: per-query cost, equal workload, a
// small-graph representative (bio-tree family, the bulk of Table 2).
func BenchmarkTable2QueryEqualSmall(b *testing.B) {
	queryBench(b, "agrocyc", 12684, workload.Equal)
}

// BenchmarkTable3QueryRandomSmall: per-query cost, random workload.
func BenchmarkTable3QueryRandomSmall(b *testing.B) {
	queryBench(b, "agrocyc", 12684, workload.Random)
}

// BenchmarkTable4ConstructionSmall: construction on a small graph (kegg).
func BenchmarkTable4ConstructionSmall(b *testing.B) {
	constructionBench(b, "kegg", 3617)
}

// BenchmarkTable5QueryEqualLarge: per-query cost on a scaled large
// citation graph — the regime where the reachability oracle wins.
func BenchmarkTable5QueryEqualLarge(b *testing.B) {
	queryBench(b, "citeseerx", 25_000, workload.Equal)
}

// BenchmarkTable6QueryRandomLarge: random workload on the same graph.
func BenchmarkTable6QueryRandomLarge(b *testing.B) {
	queryBench(b, "citeseerx", 25_000, workload.Random)
}

// BenchmarkTable7ConstructionLarge: construction on the scaled large
// citation graph; budget-guarded methods skip, like the paper's "—".
func BenchmarkTable7ConstructionLarge(b *testing.B) {
	constructionBench(b, "citeseerx", 25_000)
}

// BenchmarkFig3IndexSizeSmall: index size metric, small representative.
func BenchmarkFig3IndexSizeSmall(b *testing.B) {
	sizeBench(b, "xmark", 6080)
}

// BenchmarkFig4IndexSizeLarge: index size metric, scaled large graph.
func BenchmarkFig4IndexSizeLarge(b *testing.B) {
	sizeBench(b, "wiki", 25_000)
}
