package reach

import (
	"bytes"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
)

func TestLoadOracleRoundTrip(t *testing.T) {
	raw := gen.CitationDAG(500, 3, 0.5, 17)
	edges := make([][2]uint32, 0, raw.NumEdges())
	raw.Edges(func(u, v graph.Vertex) bool {
		edges = append(edges, [2]uint32{uint32(u), uint32(v)})
		return true
	})
	g, err := NewGraph(raw.NumVertices(), edges)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range []Method{MethodDL, MethodHL, Method2Hop} {
		built, err := Build(g, m, Options{})
		if err != nil {
			t.Fatalf("%s: %v", m, err)
		}
		var buf bytes.Buffer
		if err := built.WriteLabeling(&buf); err != nil {
			t.Fatalf("%s: %v", m, err)
		}
		loaded, err := LoadOracle(g, &buf)
		if err != nil {
			t.Fatalf("%s: %v", m, err)
		}
		if loaded.IndexSizeInts() != built.IndexSizeInts() {
			t.Fatalf("%s: size changed across serialization", m)
		}
		rng := rand.New(rand.NewSource(3))
		for q := 0; q < 2000; q++ {
			u := uint32(rng.Intn(raw.NumVertices()))
			v := uint32(rng.Intn(raw.NumVertices()))
			if built.Reachable(u, v) != loaded.Reachable(u, v) {
				t.Fatalf("%s: loaded oracle disagrees on (%d,%d)", m, u, v)
			}
		}
	}
}

func TestLoadOracleRejectsMismatchedGraph(t *testing.T) {
	gA, _ := NewGraph(4, [][2]uint32{{0, 1}, {1, 2}, {2, 3}})
	gB, _ := NewGraph(9, [][2]uint32{{0, 1}})
	o, err := Build(gA, MethodDL, Options{})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := o.WriteLabeling(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadOracle(gB, &buf); err == nil {
		t.Fatal("labeling accepted for a different graph")
	}
}

// TestConcurrentQueries verifies that labeling-based oracles are safe for
// parallel read-only queries (they hold no mutable query state, unlike the
// online-search methods).
func TestConcurrentQueries(t *testing.T) {
	raw := gen.TreeDAG(2000, 0.1, 0, 23)
	edges := make([][2]uint32, 0, raw.NumEdges())
	raw.Edges(func(u, v graph.Vertex) bool {
		edges = append(edges, [2]uint32{uint32(u), uint32(v)})
		return true
	})
	g, err := NewGraph(raw.NumVertices(), edges)
	if err != nil {
		t.Fatal(err)
	}
	o, err := Build(g, MethodDL, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Ground truth single-threaded first.
	vst := graph.NewVisitor(raw.NumVertices())
	type q struct {
		u, v uint32
		want bool
	}
	rng := rand.New(rand.NewSource(4))
	queries := make([]q, 4000)
	for i := range queries {
		u := uint32(rng.Intn(raw.NumVertices()))
		v := uint32(rng.Intn(raw.NumVertices()))
		queries[i] = q{u, v, vst.Reachable(raw, graph.Vertex(u), graph.Vertex(v))}
	}
	var wg sync.WaitGroup
	errCh := make(chan error, 8)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(shard int) {
			defer wg.Done()
			for i := shard; i < len(queries); i += 8 {
				if o.Reachable(queries[i].u, queries[i].v) != queries[i].want {
					select {
					case errCh <- nil:
					default:
					}
				}
			}
		}(w)
	}
	wg.Wait()
	select {
	case <-errCh:
		t.Fatal("concurrent query returned a wrong answer")
	default:
	}
}
