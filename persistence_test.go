package reach

import (
	"bytes"
	"math/rand"
	"path/filepath"
	"sync"
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
)

func persistenceFixture(t testing.TB) (*Graph, int) {
	t.Helper()
	raw := gen.CitationDAG(500, 3, 0.5, 17)
	edges := make([][2]uint32, 0, raw.NumEdges()+3)
	raw.Edges(func(u, v graph.Vertex) bool {
		edges = append(edges, [2]uint32{uint32(u), uint32(v)})
		return true
	})
	// Add a cycle so the condensation map is non-trivial.
	n := raw.NumVertices()
	edges = append(edges, [2]uint32{uint32(n - 1), 0}, [2]uint32{0, uint32(n - 2)})
	g, err := NewGraph(n, edges)
	if err != nil {
		t.Fatal(err)
	}
	return g, n
}

// TestSnapshotRoundTripAllMethods is the acceptance test for the
// universal snapshot format: every registered method round-trips through
// Save and both load paths (zero-copy slice decode, as mmap uses, and the
// streaming fallback) with identical answers on a randomized query set.
func TestSnapshotRoundTripAllMethods(t *testing.T) {
	g, n := persistenceFixture(t)
	for _, m := range Methods() {
		t.Run(string(m), func(t *testing.T) {
			built, err := Build(g, m, Options{Seed: 7})
			if err != nil {
				t.Fatal(err)
			}
			var buf bytes.Buffer
			if err := built.Save(&buf); err != nil {
				t.Fatal(err)
			}
			zero, err := LoadBytes(buf.Bytes())
			if err != nil {
				t.Fatalf("LoadBytes: %v", err)
			}
			stream, err := LoadFrom(bytes.NewReader(buf.Bytes()))
			if err != nil {
				t.Fatalf("LoadFrom: %v", err)
			}
			for _, loaded := range []*Oracle{zero, stream} {
				if loaded.Method() != string(m) {
					t.Fatalf("loaded method = %q, want %q", loaded.Method(), m)
				}
				if !loaded.Loaded() {
					t.Fatal("Loaded() = false for a snapshot-restored oracle")
				}
				if loaded.IndexSizeInts() != built.IndexSizeInts() {
					t.Fatalf("size changed across serialization: %d -> %d",
						built.IndexSizeInts(), loaded.IndexSizeInts())
				}
				if loaded.Graph().Fingerprint() != g.Fingerprint() {
					t.Fatal("restored graph has a different fingerprint")
				}
			}
			rng := rand.New(rand.NewSource(3))
			for q := 0; q < 2000; q++ {
				u := uint32(rng.Intn(n))
				v := uint32(rng.Intn(n))
				want := built.Reachable(u, v)
				if zero.Reachable(u, v) != want {
					t.Fatalf("zero-copy oracle disagrees on (%d,%d)", u, v)
				}
				if stream.Reachable(u, v) != want {
					t.Fatalf("stream oracle disagrees on (%d,%d)", u, v)
				}
			}
		})
	}
}

// TestSnapshotFileRoundTrip exercises the real file path: SaveFile then
// the mmap-backed Load, including Close.
func TestSnapshotFileRoundTrip(t *testing.T) {
	g, n := persistenceFixture(t)
	built, err := Build(g, MethodDL, Options{})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "dl.snap")
	if err := built.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(11))
	for q := 0; q < 2000; q++ {
		u := uint32(rng.Intn(n))
		v := uint32(rng.Intn(n))
		if built.Reachable(u, v) != loaded.Reachable(u, v) {
			t.Fatalf("mmap-loaded oracle disagrees on (%d,%d)", u, v)
		}
	}
	if err := loaded.Close(); err != nil {
		t.Fatal(err)
	}
	if err := loaded.Close(); err != nil { // double close is safe
		t.Fatal(err)
	}
}

// TestSnapshotCarriesOrigIDs proves a snapshot saved from a parsed
// edge-list graph restores the original vertex IDs, which is what lets
// reachd start from a snapshot alone.
func TestSnapshotCarriesOrigIDs(t *testing.T) {
	src := "100 200\n200 300\n300 100\n400 500\n"
	g, orig, err := ReadGraph(bytes.NewReader([]byte(src)))
	if err != nil {
		t.Fatal(err)
	}
	o, err := Build(g, MethodDL, Options{})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := o.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadBytes(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	got := loaded.Graph().OrigIDs()
	if len(got) != len(orig) {
		t.Fatalf("restored %d IDs, want %d", len(got), len(orig))
	}
	for i := range got {
		if got[i] != orig[i] {
			t.Fatalf("ID %d restored as %d, want %d", i, got[i], orig[i])
		}
	}
}

// TestConcurrentQueries verifies that labeling-based oracles are safe for
// parallel read-only queries (they hold no mutable query state, unlike the
// online-search methods).
func TestConcurrentQueries(t *testing.T) {
	raw := gen.TreeDAG(2000, 0.1, 0, 23)
	edges := make([][2]uint32, 0, raw.NumEdges())
	raw.Edges(func(u, v graph.Vertex) bool {
		edges = append(edges, [2]uint32{uint32(u), uint32(v)})
		return true
	})
	g, err := NewGraph(raw.NumVertices(), edges)
	if err != nil {
		t.Fatal(err)
	}
	o, err := Build(g, MethodDL, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Ground truth single-threaded first.
	vst := graph.NewVisitor(raw.NumVertices())
	type q struct {
		u, v uint32
		want bool
	}
	rng := rand.New(rand.NewSource(4))
	queries := make([]q, 4000)
	for i := range queries {
		u := uint32(rng.Intn(raw.NumVertices()))
		v := uint32(rng.Intn(raw.NumVertices()))
		queries[i] = q{u, v, vst.Reachable(raw, graph.Vertex(u), graph.Vertex(v))}
	}
	var wg sync.WaitGroup
	errCh := make(chan error, 8)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(shard int) {
			defer wg.Done()
			for i := shard; i < len(queries); i += 8 {
				if o.Reachable(queries[i].u, queries[i].v) != queries[i].want {
					select {
					case errCh <- nil:
					default:
					}
				}
			}
		}(w)
	}
	wg.Wait()
	select {
	case <-errCh:
		t.Fatal("concurrent query returned a wrong answer")
	default:
	}
}
