package reach

import (
	"bytes"
	"testing"
)

// corpusSnapshot builds a small snapshot to seed fuzzing and corruption
// sweeps: a cyclic graph (so the condensation section is non-trivial)
// with original IDs and the given method's payload.
func corpusSnapshot(t testing.TB, m Method) []byte {
	return corpusSnapshotOpts(t, m, Options{Seed: 5})
}

// corpusSnapshotOpts is corpusSnapshot with explicit build options, so
// the corpus can carry both observer-bearing and observer-free
// snapshots (Options.NoObservers drops the optional section entirely).
func corpusSnapshotOpts(t testing.TB, m Method, opts Options) []byte {
	t.Helper()
	src := "0 1\n1 2\n2 0\n2 3\n3 4\n5 3\n4 6\n6 5\n"
	g, _, err := ReadGraph(bytes.NewReader([]byte(src)))
	if err != nil {
		t.Fatal(err)
	}
	o, err := Build(g, m, opts)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := o.Save(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// exerciseLoaded runs enough of the query surface over a successfully
// loaded oracle to catch any decoder that accepted memory-unsafe state.
func exerciseLoaded(o *Oracle) {
	n := uint32(o.Graph().NumVertices())
	lim := n
	if lim > 16 {
		lim = 16
	}
	for u := uint32(0); u < lim; u++ {
		for v := uint32(0); v < lim; v++ {
			o.Reachable(u, v)
		}
	}
	o.Reachable(n+100, 0) // out-of-range stays false, never panics
	_ = o.Method()
	_ = o.IndexSizeInts()
	_ = o.Graph().Fingerprint()
}

// FuzzLoadSnapshot is the satellite guarantee of the snapshot format:
// arbitrary bytes — including truncated and bit-flipped real snapshots
// from the checked-in corpus — either load into a queryable oracle or
// return an error. Never a panic, through both the zero-copy (mmap) and
// streaming decode paths.
func FuzzLoadSnapshot(f *testing.F) {
	for _, m := range []Method{MethodDL, MethodGRAIL, MethodKReach, MethodBFS} {
		snap := corpusSnapshot(f, m)
		f.Add(snap)
		f.Add(snap[:len(snap)/2])
		f.Add(snap[:len(snap)-1])
		flipped := bytes.Clone(snap)
		flipped[len(flipped)/3] ^= 0xFF
		f.Add(flipped)
	}
	// Observer-free layout (no observer section, flag bit clear): the
	// loader's rebuild-on-the-fly path, plus mutations of it.
	f.Add(corpusSnapshotOpts(f, MethodDL, Options{Seed: 5, NoObservers: true}))
	f.Add([]byte{})
	f.Add([]byte("RSNAPv2\x00"))
	f.Fuzz(func(t *testing.T, data []byte) {
		if o, err := LoadBytes(data); err == nil {
			exerciseLoaded(o)
		}
		if o, err := LoadFrom(bytes.NewReader(data)); err == nil {
			exerciseLoaded(o)
		}
	})
}

// TestSnapshotCorruptionReturnsErrors is the deterministic companion to
// the fuzz target, run on every plain `go test`: every truncation length
// and a sweep of single-byte corruptions of a real snapshot must yield an
// error or a loadable, queryable oracle — no panics.
func TestSnapshotCorruptionReturnsErrors(t *testing.T) {
	for _, m := range []Method{MethodDL, MethodGRAIL, MethodKReach, MethodPathTree} {
		snap := corpusSnapshot(t, m)
		tryLoad := func(data []byte) {
			if o, err := LoadBytes(data); err == nil {
				exerciseLoaded(o)
			}
			if o, err := LoadFrom(bytes.NewReader(data)); err == nil {
				exerciseLoaded(o)
			}
		}
		for cut := 0; cut < len(snap); cut++ {
			tryLoad(snap[:cut])
		}
		if _, err := LoadBytes(snap[:len(snap)-1]); err == nil {
			t.Fatalf("%s: truncated snapshot loaded without error", m)
		}
		mut := make([]byte, len(snap))
		for off := 0; off < len(snap); off++ {
			for _, bit := range []byte{0x01, 0x80} {
				copy(mut, snap)
				mut[off] ^= bit
				tryLoad(mut)
			}
		}
	}
}

// TestSnapshotObserverFallback pins the compatibility contract of the
// optional observer section: a snapshot that carries one restores it
// (FromSnapshot reports the decode), a snapshot without one — the
// pre-observer format, byte-identical to what older builds wrote — still
// loads and gets a freshly built stack, and both oracles answer every
// query identically.
func TestSnapshotObserverFallback(t *testing.T) {
	withSection := corpusSnapshot(t, MethodDL)
	without := corpusSnapshotOpts(t, MethodDL, Options{Seed: 5, NoObservers: true})
	if len(without) >= len(withSection) {
		t.Fatalf("observer-free snapshot (%d bytes) not smaller than observer-bearing one (%d bytes)",
			len(without), len(withSection))
	}

	restored, err := LoadBytes(withSection)
	if err != nil {
		t.Fatal(err)
	}
	st := restored.Observers()
	if st == nil {
		t.Fatal("observer-bearing snapshot loaded without a stack")
	}
	if !st.FromSnapshot() {
		t.Error("stack decoded from a snapshot section reports FromSnapshot() = false")
	}
	if st.SectionBytes() != int64(len(withSection)-len(without)) {
		t.Errorf("SectionBytes() = %d, but the section occupies %d bytes on disk",
			st.SectionBytes(), len(withSection)-len(without))
	}

	rebuilt, err := LoadBytes(without)
	if err != nil {
		t.Fatal(err)
	}
	st = rebuilt.Observers()
	if st == nil {
		t.Fatal("observer-free snapshot did not rebuild the stack on load")
	}
	if st.FromSnapshot() {
		t.Error("stack rebuilt from the DAG reports FromSnapshot() = true")
	}

	n := uint32(restored.Graph().NumVertices())
	for u := uint32(0); u < n; u++ {
		for v := uint32(0); v < n; v++ {
			if a, b := restored.Reachable(u, v), rebuilt.Reachable(u, v); a != b {
				t.Fatalf("reach(%d,%d): restored section says %v, rebuilt stack says %v", u, v, a, b)
			}
		}
	}
}

// TestSnapshotUnknownFlagRejected pins forward compatibility at the
// container level: a flags word carrying a bit this build does not know
// (a section it cannot skip) must refuse the whole snapshot.
func TestSnapshotUnknownFlagRejected(t *testing.T) {
	snap := corpusSnapshot(t, MethodDL)
	if _, err := LoadBytes(snap); err != nil {
		t.Fatalf("pristine snapshot failed to load: %v", err)
	}
	// Header layout for a "DL" tag: magic block (16 bytes), tag block
	// (16), build-options block (40) — the flags word starts at byte 72.
	const flagsOff = 72
	if snap[flagsOff]&0b11 == 0 {
		t.Fatalf("byte %d does not look like the flags word (no known flag set)", flagsOff)
	}
	mut := bytes.Clone(snap)
	mut[flagsOff] |= 1 << 2 // first bit beyond knownFlags
	if _, err := LoadBytes(mut); err == nil {
		t.Fatal("snapshot with an unknown flag bit loaded without error")
	}
}
