package reach

import (
	"bytes"
	"testing"
)

// corpusSnapshot builds a small snapshot to seed fuzzing and corruption
// sweeps: a cyclic graph (so the condensation section is non-trivial)
// with original IDs and the given method's payload.
func corpusSnapshot(t testing.TB, m Method) []byte {
	t.Helper()
	src := "0 1\n1 2\n2 0\n2 3\n3 4\n5 3\n4 6\n6 5\n"
	g, _, err := ReadGraph(bytes.NewReader([]byte(src)))
	if err != nil {
		t.Fatal(err)
	}
	o, err := Build(g, m, Options{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := o.Save(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// exerciseLoaded runs enough of the query surface over a successfully
// loaded oracle to catch any decoder that accepted memory-unsafe state.
func exerciseLoaded(o *Oracle) {
	n := uint32(o.Graph().NumVertices())
	lim := n
	if lim > 16 {
		lim = 16
	}
	for u := uint32(0); u < lim; u++ {
		for v := uint32(0); v < lim; v++ {
			o.Reachable(u, v)
		}
	}
	o.Reachable(n+100, 0) // out-of-range stays false, never panics
	_ = o.Method()
	_ = o.IndexSizeInts()
	_ = o.Graph().Fingerprint()
}

// FuzzLoadSnapshot is the satellite guarantee of the snapshot format:
// arbitrary bytes — including truncated and bit-flipped real snapshots
// from the checked-in corpus — either load into a queryable oracle or
// return an error. Never a panic, through both the zero-copy (mmap) and
// streaming decode paths.
func FuzzLoadSnapshot(f *testing.F) {
	for _, m := range []Method{MethodDL, MethodGRAIL, MethodKReach, MethodBFS} {
		snap := corpusSnapshot(f, m)
		f.Add(snap)
		f.Add(snap[:len(snap)/2])
		f.Add(snap[:len(snap)-1])
		flipped := bytes.Clone(snap)
		flipped[len(flipped)/3] ^= 0xFF
		f.Add(flipped)
	}
	f.Add([]byte{})
	f.Add([]byte("RSNAPv2\x00"))
	f.Fuzz(func(t *testing.T, data []byte) {
		if o, err := LoadBytes(data); err == nil {
			exerciseLoaded(o)
		}
		if o, err := LoadFrom(bytes.NewReader(data)); err == nil {
			exerciseLoaded(o)
		}
	})
}

// TestSnapshotCorruptionReturnsErrors is the deterministic companion to
// the fuzz target, run on every plain `go test`: every truncation length
// and a sweep of single-byte corruptions of a real snapshot must yield an
// error or a loadable, queryable oracle — no panics.
func TestSnapshotCorruptionReturnsErrors(t *testing.T) {
	for _, m := range []Method{MethodDL, MethodGRAIL, MethodKReach, MethodPathTree} {
		snap := corpusSnapshot(t, m)
		tryLoad := func(data []byte) {
			if o, err := LoadBytes(data); err == nil {
				exerciseLoaded(o)
			}
			if o, err := LoadFrom(bytes.NewReader(data)); err == nil {
				exerciseLoaded(o)
			}
		}
		for cut := 0; cut < len(snap); cut++ {
			tryLoad(snap[:cut])
		}
		if _, err := LoadBytes(snap[:len(snap)-1]); err == nil {
			t.Fatalf("%s: truncated snapshot loaded without error", m)
		}
		mut := make([]byte, len(snap))
		for off := 0; off < len(snap); off++ {
			for _, bit := range []byte{0x01, 0x80} {
				copy(mut, snap)
				mut[off] ^= bit
				tryLoad(mut)
			}
		}
	}
}
