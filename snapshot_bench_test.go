package reach_test

import (
	"path/filepath"
	"testing"

	reach "repro"
	"repro/internal/gen"
	"repro/internal/graph"
)

// snapshotBenchGraph is the largest gengraph-family graph the test suite
// builds: the same citation generator `gengraph -family citation` uses,
// at a size where index construction visibly costs seconds.
func snapshotBenchGraph(b *testing.B) *reach.Graph {
	b.Helper()
	raw := gen.CitationDAG(25000, 4, 0.5, 9)
	edges := make([][2]uint32, 0, raw.NumEdges())
	raw.Edges(func(u, v graph.Vertex) bool {
		edges = append(edges, [2]uint32{uint32(u), uint32(v)})
		return true
	})
	g, err := reach.NewGraph(raw.NumVertices(), edges)
	if err != nil {
		b.Fatal(err)
	}
	return g
}

// BenchmarkSnapshotLoad is the acceptance benchmark for the mmap'd
// snapshot format: for the hop-labeling methods, loading a snapshot must
// be O(file open) — page-cache mapping plus linear offset validation —
// not O(index size), and orders of magnitude faster than rebuilding the
// index from the graph ("rebuild" sub-benchmarks, same graph, same
// method).
func BenchmarkSnapshotLoad(b *testing.B) {
	g := snapshotBenchGraph(b)
	for _, m := range []reach.Method{reach.MethodDL, reach.MethodHL} {
		built, err := reach.Build(g, m, reach.Options{})
		if err != nil {
			b.Fatal(err)
		}
		path := filepath.Join(b.TempDir(), string(m)+".snap")
		if err := built.SaveFile(path); err != nil {
			b.Fatal(err)
		}
		b.Run(string(m)+"/mmap-load", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				o, err := reach.Load(path)
				if err != nil {
					b.Fatal(err)
				}
				if o.IndexSizeInts() != built.IndexSizeInts() {
					b.Fatal("loaded index has a different size")
				}
				o.Close()
			}
			b.ReportMetric(float64(built.IndexSizeInts()), "index-ints")
		})
		b.Run(string(m)+"/rebuild", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := reach.Build(g, m, reach.Options{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
