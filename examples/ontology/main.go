// Ontology: subsumption checking over a GO-style ontology (the
// go-uniprot workload from the paper's Table 1). Terms form a DAG via
// is-a/part-of links with multiple parents; "is term A a kind of term B"
// is exactly a reachability query.
//
//	go run ./examples/ontology
package main

import (
	"fmt"
	"log"
	"math/rand"

	reach "repro"
)

// buildOntology generates a layered is-a DAG: `terms` terms across
// `depth` abstraction levels; each term gets 1-3 parents from the levels
// above (multiple inheritance, like the Gene Ontology).
func buildOntology(terms, depth int, seed int64) (int, [][2]uint32) {
	rng := rand.New(rand.NewSource(seed))
	perLevel := terms / depth
	var edges [][2]uint32
	levelOf := func(t int) int {
		l := t / perLevel
		if l >= depth {
			l = depth - 1
		}
		return l
	}
	for t := perLevel; t < terms; t++ {
		parents := 1 + rng.Intn(3)
		for p := 0; p < parents; p++ {
			// Parent from any strictly higher level (lower index).
			lvl := levelOf(t)
			pl := rng.Intn(lvl)
			parent := pl*perLevel + rng.Intn(perLevel)
			// Edge child -> parent: "t is-a parent".
			edges = append(edges, [2]uint32{uint32(t), uint32(parent)})
		}
	}
	return terms, edges
}

func main() {
	n, edges := buildOntology(30_000, 12, 7)
	g, err := reach.NewGraph(n, edges)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("ontology: %d terms, %d is-a links\n", n, g.DAGEdges())

	// HL mirrors the ontology's own hierarchy; both HL and DL work.
	oracle, err := reach.Build(g, reach.MethodHL, reach.Options{})
	if err != nil {
		log.Fatal(err)
	}
	stats, _ := oracle.LabelStats()
	fmt.Printf("HL oracle: %d label integers (avg |Lout| %.1f, avg |Lin| %.1f)\n\n",
		oracle.IndexSizeInts(), stats.AvgOut, stats.AvgIn)

	// Subsumption: is term A a specialization of term B? Walk a real
	// parent chain from a deep leaf so the positive case is guaranteed,
	// then probe unrelated and reversed pairs.
	firstParent := make(map[uint32]uint32)
	for _, e := range edges {
		if _, ok := firstParent[e[0]]; !ok {
			firstParent[e[0]] = e[1]
		}
	}
	leaf := uint32(29_999)
	ancestor := leaf
	for {
		p, ok := firstParent[ancestor]
		if !ok {
			break
		}
		ancestor = p
	}
	samples := [][2]uint32{
		{leaf, firstParent[leaf]}, // direct parent
		{leaf, ancestor},          // transitive root ancestor
		{leaf, (ancestor + 1) % 2500},
		{ancestor, leaf}, // wrong direction: ancestors are not kinds of leaves
	}
	for _, s := range samples {
		fmt.Printf("isA(term%d, term%d) = %v\n", s[0], s[1], oracle.Reachable(s[0], s[1]))
	}

	// Batch classification: how many of the deepest 1000 terms fall under
	// top-level category 0..9?
	count := 0
	for t := uint32(29_000); t < 30_000; t++ {
		for c := uint32(0); c < 10; c++ {
			if oracle.Reachable(t, c) {
				count++
				break
			}
		}
	}
	fmt.Printf("\n%d of the 1000 deepest terms subsume under the first 10 categories\n", count)
}
