// Quickstart: build a reachability oracle over a small directed graph
// (cycles allowed), answer queries, and round-trip the oracle through a
// snapshot file — the build-once, load-instantly workflow reachd uses.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	reach "repro"
)

func main() {
	// A small task graph: 0→1→2→3, a shortcut 0→4→3, an isolated pair
	// 5→6, and a cycle 7↔8 feeding 3.
	edges := [][2]uint32{
		{0, 1}, {1, 2}, {2, 3},
		{0, 4}, {4, 3},
		{5, 6},
		{7, 8}, {8, 7}, {8, 3},
	}
	g, err := reach.NewGraph(9, edges)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("graph: %d vertices, condensed DAG has %d vertices / %d edges\n",
		g.NumVertices(), g.DAGVertices(), g.DAGEdges())

	// Distribution-Labeling is the paper's recommended method: near-linear
	// construction, tiny labels, microsecond queries.
	oracle, err := reach.Build(g, reach.MethodDL, reach.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("oracle: method=%s, index size=%d integers\n\n",
		oracle.Method(), oracle.IndexSizeInts())

	queries := [][2]uint32{
		{0, 3}, // yes: 0→1→2→3
		{4, 2}, // no: 4 only reaches 3
		{5, 3}, // no: separate component
		{7, 3}, // yes: through the 7↔8 cycle
		{8, 7}, // yes: same strongly connected component
		{3, 0}, // no: wrong direction
	}
	for _, q := range queries {
		fmt.Printf("reach(%d, %d) = %v\n", q[0], q[1], oracle.Reachable(q[0], q[1]))
	}

	// Snapshot round trip: save the oracle (graph condensation + index in
	// one file), then load it back by mmap. Loading skips both graph
	// parsing and index construction, which is what makes daemon restarts
	// instant on huge graphs; every method in reach.Methods() supports it.
	dir, err := os.MkdirTemp("", "reach-quickstart")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	snap := filepath.Join(dir, "quickstart.snap")
	if err := oracle.SaveFile(snap); err != nil {
		log.Fatal(err)
	}
	loaded, err := reach.Load(snap)
	if err != nil {
		log.Fatal(err)
	}
	defer loaded.Close()
	fmt.Printf("\nsnapshot: saved and reloaded %s index (%d integers)\n",
		loaded.Method(), loaded.IndexSizeInts())
	for _, q := range queries {
		if loaded.Reachable(q[0], q[1]) != oracle.Reachable(q[0], q[1]) {
			log.Fatalf("snapshot-loaded oracle disagrees on (%d,%d)", q[0], q[1])
		}
	}
	fmt.Println("snapshot: loaded oracle answers every query identically")
}
