// Deps: dependency analysis over a software package graph — the
// software-engineering use case from the paper's introduction. The input
// contains dependency cycles (mutually recursive modules); the library
// condenses them automatically. Both directions are useful: "does
// building A require B?" (forward) and "what is the blast radius of
// changing B?" (reverse, by counting ancestors).
//
//	go run ./examples/deps
package main

import (
	"fmt"
	"log"
	"math/rand"
	"sort"

	reach "repro"
)

// buildDepGraph synthesizes a package universe: app packages depend on
// lib packages, libs on core utilities, plus a few deliberate cycles.
func buildDepGraph(n int, seed int64) [][2]uint32 {
	rng := rand.New(rand.NewSource(seed))
	var edges [][2]uint32
	// Layers: apps [0, n/4), libs [n/4, 3n/4), core [3n/4, n).
	apps, libs := n/4, 3*n/4
	for p := 0; p < n; p++ {
		var lo, hi int
		switch {
		case p < apps: // apps depend on libs and core
			lo, hi = apps, n
		case p < libs: // libs depend on core
			lo, hi = libs, n
		default: // core depends on nothing (mostly)
			continue
		}
		deps := 1 + rng.Intn(5)
		for d := 0; d < deps; d++ {
			edges = append(edges, [2]uint32{uint32(p), uint32(lo + rng.Intn(hi-lo))})
		}
	}
	// A few mutually recursive module pairs inside the lib layer.
	for c := 0; c < 20; c++ {
		a := uint32(apps + rng.Intn(libs-apps))
		b := uint32(apps + rng.Intn(libs-apps))
		if a != b {
			edges = append(edges, [2]uint32{a, b}, [2]uint32{b, a})
		}
	}
	return edges
}

func main() {
	const n = 20_000
	edges := buildDepGraph(n, 3)
	g, err := reach.NewGraph(n, edges)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("dependency graph: %d packages, %d dependency edges\n", n, len(edges))
	fmt.Printf("after cycle condensation: %d nodes (found %d packages in cycles)\n\n",
		g.DAGVertices(), n-g.DAGVertices())

	oracle, err := reach.Build(g, reach.MethodDL, reach.Options{})
	if err != nil {
		log.Fatal(err)
	}

	// Forward: does building package 0 pull in package n-1 (a core util)?
	fmt.Printf("requires(pkg0, pkg%d) = %v\n", n-1, oracle.Reachable(0, n-1))
	fmt.Printf("requires(pkg%d, pkg0) = %v (core never depends on apps)\n\n",
		n-1, oracle.Reachable(uint32(n-1), 0))

	// Reverse: blast radius = how many packages transitively depend on
	// each of a few core utilities. (Queries run "backwards" by asking
	// reachability INTO the target.)
	type radius struct {
		pkg   uint32
		count int
	}
	var rs []radius
	for _, target := range []uint32{n - 1, n - 2, n - 3, n - 4, n - 5} {
		count := 0
		for p := uint32(0); p < n; p++ {
			if p != target && oracle.Reachable(p, target) {
				count++
			}
		}
		rs = append(rs, radius{pkg: target, count: count})
	}
	sort.Slice(rs, func(i, j int) bool { return rs[i].count > rs[j].count })
	fmt.Println("blast radius of core utilities (dependents):")
	for _, r := range rs {
		fmt.Printf("  pkg%d: %d dependents (%.1f%% of universe)\n",
			r.pkg, r.count, 100*float64(r.count)/float64(n))
	}
}
