// Citations: index a synthetic citation network (the cit-Patents /
// citeseerx workload that motivates the paper) and compare the oracle
// against online BFS on transitive-citation queries.
//
//	go run ./examples/citations
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	reach "repro"
	"repro/internal/dataset"
	"repro/internal/graph"
)

func main() {
	// A citation DAG in the shape of the paper's citeseerx dataset, scaled
	// to run in seconds. Edge (u, v) means "paper u cites paper v".
	spec, _ := dataset.ByName("citeseerx")
	raw := spec.BuildAt(50_000)
	fmt.Printf("citation network: %d papers, %d citations\n", raw.NumVertices(), raw.NumEdges())

	edges := make([][2]uint32, 0, raw.NumEdges())
	raw.Edges(func(u, v graph.Vertex) bool {
		edges = append(edges, [2]uint32{uint32(u), uint32(v)})
		return true
	})
	g, err := reach.NewGraph(raw.NumVertices(), edges)
	if err != nil {
		log.Fatal(err)
	}

	start := time.Now()
	oracle, err := reach.Build(g, reach.MethodDL, reach.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("DL oracle built in %v (%d label integers)\n",
		time.Since(start).Round(time.Millisecond), oracle.IndexSizeInts())

	bfs, err := reach.Build(g, reach.MethodBFS, reach.Options{})
	if err != nil {
		log.Fatal(err)
	}

	// "Does paper u transitively build on paper v?" — run the same query
	// batch through the oracle and through online BFS.
	rng := rand.New(rand.NewSource(42))
	const batch = 20_000
	us := make([]uint32, batch)
	vs := make([]uint32, batch)
	for i := range us {
		us[i] = uint32(rng.Intn(raw.NumVertices()))
		vs[i] = uint32(rng.Intn(raw.NumVertices()))
	}

	start = time.Now()
	oracleHits := 0
	for i := range us {
		if oracle.Reachable(us[i], vs[i]) {
			oracleHits++
		}
	}
	oracleTime := time.Since(start)

	start = time.Now()
	bfsHits := 0
	for i := range us {
		if bfs.Reachable(us[i], vs[i]) {
			bfsHits++
		}
	}
	bfsTime := time.Since(start)

	if oracleHits != bfsHits {
		log.Fatalf("oracle and BFS disagree: %d vs %d", oracleHits, bfsHits)
	}
	fmt.Printf("%d queries, %d positive\n", batch, oracleHits)
	fmt.Printf("  DL oracle: %v total (%.2f µs/query)\n",
		oracleTime.Round(time.Millisecond), float64(oracleTime.Microseconds())/batch)
	fmt.Printf("  online BFS: %v total (%.2f µs/query)\n",
		bfsTime.Round(time.Millisecond), float64(bfsTime.Microseconds())/batch)
	fmt.Printf("  speedup: %.0fx\n", float64(bfsTime)/float64(oracleTime))
}
