package reach

import (
	"math/rand"
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
)

func dagFixture(t *testing.T, seed int64) (*Graph, *graph.Graph) {
	t.Helper()
	raw := gen.XMLDAG(300, 4, 0.2, seed)
	edges := make([][2]uint32, 0, raw.NumEdges())
	raw.Edges(func(u, v graph.Vertex) bool {
		edges = append(edges, [2]uint32{uint32(u), uint32(v)})
		return true
	})
	g, err := NewGraph(raw.NumVertices(), edges)
	if err != nil {
		t.Fatal(err)
	}
	return g, raw
}

func TestDistanceOracleExact(t *testing.T) {
	g, raw := dagFixture(t, 5)
	d, err := BuildDistance(g)
	if err != nil {
		t.Fatal(err)
	}
	vst := graph.NewVisitor(raw.NumVertices())
	rng := rand.New(rand.NewSource(1))
	for q := 0; q < 3000; q++ {
		u := uint32(rng.Intn(raw.NumVertices()))
		v := uint32(rng.Intn(raw.NumVertices()))
		want := vst.Distance(raw, graph.Vertex(u), graph.Vertex(v), graph.Forward)
		if got := d.Distance(u, v); got != want {
			t.Fatalf("Distance(%d,%d) = %d, want %d", u, v, got, want)
		}
	}
}

func TestWithinK(t *testing.T) {
	g, raw := dagFixture(t, 9)
	d, err := BuildDistance(g)
	if err != nil {
		t.Fatal(err)
	}
	vst := graph.NewVisitor(raw.NumVertices())
	rng := rand.New(rand.NewSource(2))
	for q := 0; q < 1500; q++ {
		u := uint32(rng.Intn(raw.NumVertices()))
		v := uint32(rng.Intn(raw.NumVertices()))
		k := int32(rng.Intn(6))
		trueDist := vst.Distance(raw, graph.Vertex(u), graph.Vertex(v), graph.Forward)
		want := trueDist >= 0 && trueDist <= k
		if got := d.WithinK(u, v, k); got != want {
			t.Fatalf("WithinK(%d,%d,%d) = %v, want %v (dist=%d)", u, v, k, got, want, trueDist)
		}
	}
	if !d.Reachable(0, 0) {
		t.Error("self not reachable")
	}
	if d.IndexSizeInts() <= 0 {
		t.Error("empty index")
	}
}

func TestDistanceRejectsCyclicInput(t *testing.T) {
	g, err := NewGraph(2, [][2]uint32{{0, 1}, {1, 0}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := BuildDistance(g); err == nil {
		t.Fatal("cyclic input accepted by distance oracle")
	}
}
