package bench

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/dataset"
	"repro/internal/workload"
)

// tinyConfig keeps harness tests fast: aggressive scale, few queries.
func tinyConfig() Config {
	return Config{Scale: 4096, Queries: 200, Seed: 1}
}

func TestMethodRegistryOrder(t *testing.T) {
	ms := Methods()
	if len(ms) != len(MethodOrder) {
		t.Fatalf("registry has %d methods, order list has %d", len(ms), len(MethodOrder))
	}
	for i, m := range ms {
		if m.ID != MethodOrder[i] {
			t.Errorf("method %d = %s, want %s", i, m.ID, MethodOrder[i])
		}
	}
}

func TestSelectMethods(t *testing.T) {
	cfg := Config{Methods: []string{"DL", "HL"}}
	ms := selectMethods(cfg)
	if len(ms) != 2 || ms[0].ID != "HL" || ms[1].ID != "DL" {
		t.Fatalf("selectMethods = %v", ids(ms))
	}
	if got := len(selectMethods(Config{})); got != len(MethodOrder) {
		t.Fatalf("empty selection returned %d methods", got)
	}
}

func TestTable1Renders(t *testing.T) {
	var buf bytes.Buffer
	if err := Table1(&buf, tinyConfig()); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, name := range []string{"agrocyc", "cit-Patents", "wiki", "uniprotenc_22m"} {
		if !strings.Contains(out, name) {
			t.Errorf("Table 1 output missing %s", name)
		}
	}
	if lines := strings.Count(out, "\n"); lines < 28 {
		t.Errorf("Table 1 has %d lines, want 28+", lines)
	}
}

func TestQueryTableSmallSubset(t *testing.T) {
	// Run two cheap methods over one synthetic dataset at tiny scale by
	// slicing the catalog through the Methods filter; full runs are the
	// job of cmd/reachbench, not unit tests.
	cfg := tinyConfig()
	cfg.Methods = []string{"GL", "DL"}
	var buf bytes.Buffer
	if err := QueryTable(&buf, "test-table", dataset.Large, workload.Equal, cfg); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "GL") || !strings.Contains(out, "DL") {
		t.Fatalf("missing columns:\n%s", out)
	}
	if !strings.Contains(out, "citeseerx") {
		t.Errorf("missing dataset row:\n%s", out)
	}
}

func TestConstructionTableSubset(t *testing.T) {
	cfg := tinyConfig()
	cfg.Methods = []string{"DL", "HL", "PT"}
	var buf bytes.Buffer
	if err := ConstructionTable(&buf, "test-constr", dataset.Large, cfg); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "wiki") {
		t.Errorf("missing dataset row:\n%s", buf.String())
	}
}

func TestIndexSizeTableSubset(t *testing.T) {
	cfg := tinyConfig()
	cfg.Methods = []string{"DL", "GL"}
	var buf bytes.Buffer
	if err := IndexSizeTable(&buf, "test-sizes", dataset.Large, cfg); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) < 14 {
		t.Fatalf("expected 13 dataset rows, got:\n%s", buf.String())
	}
}

func TestBudgetsProduceDashes(t *testing.T) {
	// With absurdly small budgets every closure-based method must be
	// skipped, rendering "—".
	cfg := tinyConfig()
	cfg.Methods = []string{"PT", "INT", "PW8"}
	cfg.MaxPTEntries = 1
	cfg.MaxINTPairs = 1
	cfg.MaxPW8Pairs = 1
	var buf bytes.Buffer
	if err := IndexSizeTable(&buf, "test-dash", dataset.Large, cfg); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "—") {
		t.Fatalf("no dashes under tiny budgets:\n%s", buf.String())
	}
}

func TestReportAlignment(t *testing.T) {
	rep := &Report{
		Title:   "t",
		Columns: []string{"dataset", "A", "BB"},
		Rows:    [][]string{{"x", "1.0", "2.0"}, {"longname", "10.0", "200.0"}},
	}
	var buf bytes.Buffer
	if err := rep.Write(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 4 {
		t.Fatalf("report lines = %d", len(lines))
	}
}
