package bench

import (
	"fmt"
	"io"
	"time"

	"repro/internal/dataset"
	"repro/internal/workload"
)

// RunGroup regenerates an entire table group in one pass — for Small:
// Tables 2, 3, 4 and Figure 3; for Large: Tables 5, 6, 7 and Figure 4.
// Each method's index is built exactly once per dataset and reused for
// construction timing, both query workloads, and the size figure, which is
// how the paper's own harness amortized its measurements.
func RunGroup(w io.Writer, class dataset.Class, cfg Config) error {
	cfg = cfg.WithDefaults()
	methods := selectMethods(cfg)

	var titles [4]string
	if class == dataset.Small {
		titles = [4]string{
			"Table 2: query time (ms), equal workload, small graphs",
			"Table 3: query time (ms), random workload, small graphs",
			"Table 4: construction time (ms), small graphs",
			"Figure 3: index size (number of integers), small graphs",
		}
	} else {
		titles = [4]string{
			"Table 5: query time (ms), equal workload, large graphs",
			"Table 6: query time (ms), random workload, large graphs",
			"Table 7: construction time (ms), large graphs",
			"Figure 4: index size (number of integers), large graphs",
		}
	}
	reports := make([]*Report, 4)
	for i := range reports {
		reports[i] = &Report{Title: titles[i], Columns: append([]string{"dataset"}, ids(methods)...)}
	}

	for _, spec := range specsOf(class) {
		cfg.logf("group(%s): dataset %s", class, spec.Name)
		g := spec.Build(cfg.Scale)
		est := estimatePairs(g, cfg.Seed)
		cfg.logf("  built graph n=%d m=%d estPairs=%d", g.NumVertices(), g.NumEdges(), est)
		wlEqual, err := workload.Generate(g, workload.Equal, cfg.Queries, cfg.Seed)
		if err != nil {
			return fmt.Errorf("equal workload for %s: %w", spec.Name, err)
		}
		wlRandom, err := workload.Generate(g, workload.Random, cfg.Queries, cfg.Seed)
		if err != nil {
			return fmt.Errorf("random workload for %s: %w", spec.Name, err)
		}

		rows := [4][]string{{spec.Name}, {spec.Name}, {spec.Name}, {spec.Name}}
		for _, m := range methods {
			idx, buildTime, err := buildOne(m, g, est, cfg)
			if err != nil {
				cell := cellForError(err, cfg, spec.Name, m.ID)
				for i := range rows {
					rows[i] = append(rows[i], cell)
				}
				continue
			}
			startEq := time.Now()
			wlEqual.Run(idx)
			eq := time.Since(startEq)
			startRnd := time.Now()
			wlRandom.Run(idx)
			rnd := time.Since(startRnd)

			rows[0] = append(rows[0], fmt.Sprintf("%.1f", ms(eq)))
			rows[1] = append(rows[1], fmt.Sprintf("%.1f", ms(rnd)))
			rows[2] = append(rows[2], fmt.Sprintf("%.1f", ms(buildTime)))
			rows[3] = append(rows[3], fmt.Sprintf("%d", idx.SizeInts()))
			cfg.logf("  %-5s build=%.1fms equal=%.1fms random=%.1fms size=%d",
				m.ID, ms(buildTime), ms(eq), ms(rnd), idx.SizeInts())
		}
		for i := range reports {
			reports[i].Rows = append(reports[i].Rows, rows[i])
		}
	}

	for i, rep := range reports {
		if i > 0 {
			if _, err := fmt.Fprintln(w); err != nil {
				return err
			}
		}
		if err := rep.Write(w); err != nil {
			return err
		}
	}
	return nil
}

func ms(d time.Duration) float64 { return float64(d.Microseconds()) / 1000.0 }
