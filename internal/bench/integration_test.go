package bench

import (
	"testing"

	"repro/internal/dataset"
	"repro/internal/index"
	"repro/internal/workload"
)

// TestAllMethodsAgreeOnCatalogDatasets is the cross-method integration
// net: on a mid-size build of one dataset per structural family, every
// method that completes must return identical answers on both workloads.
// This catches disagreements that per-package exhaustive tests (which use
// smaller graphs) could miss, e.g. budget-boundary or renumbering bugs.
func TestAllMethodsAgreeOnCatalogDatasets(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test")
	}
	cfg := Config{Scale: 1, Queries: 1500, Seed: 11}.WithDefaults()
	for _, name := range []string{"kegg", "nasa", "citeseer", "wiki"} {
		spec, ok := dataset.ByName(name)
		if !ok {
			t.Fatalf("missing dataset %s", name)
		}
		g := spec.BuildAt(2500)
		est := estimatePairs(g, cfg.Seed)
		wlE, err := workload.Generate(g, workload.Equal, cfg.Queries, cfg.Seed)
		if err != nil {
			t.Fatal(err)
		}
		wlR, err := workload.Generate(g, workload.Random, cfg.Queries, cfg.Seed)
		if err != nil {
			t.Fatal(err)
		}

		var built []index.Index
		for _, m := range Methods() {
			idx, _, err := buildOne(m, g, est, cfg)
			if err == ErrSkipped {
				continue
			}
			if err != nil {
				t.Fatalf("%s/%s: %v", name, m.ID, err)
			}
			built = append(built, idx)
		}
		if len(built) < 8 {
			t.Fatalf("%s: only %d methods completed", name, len(built))
		}
		ref := built[0]
		for _, wl := range []*workload.Workload{wlE, wlR} {
			for q := 0; q < wl.Len(); q++ {
				want := ref.Reachable(wl.U[q], wl.V[q])
				for _, idx := range built[1:] {
					if got := idx.Reachable(wl.U[q], wl.V[q]); got != want {
						t.Fatalf("%s: %s and %s disagree on (%d,%d): %v vs %v",
							name, ref.Name(), idx.Name(), wl.U[q], wl.V[q], want, got)
					}
				}
			}
		}
	}
}
