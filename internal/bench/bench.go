// Package bench is the experiment harness that regenerates every table
// and figure of the paper's evaluation (§6): query-time tables (2, 3, 5,
// 6), construction-time tables (4, 7) and index-size figures (3, 4), over
// the dataset catalog's synthetic substitutes.
//
// Methods that exceed their resource budget are reported as "—", exactly
// like the paper's tables mark methods that ran out of memory or time.
package bench

import (
	"errors"
	"fmt"
	"io"
	"time"

	"repro/internal/dataset"
	"repro/internal/graph"
	"repro/internal/index"
	"repro/internal/kreach"
	"repro/internal/pathtree"
	"repro/internal/tc"
	"repro/internal/twohop"
	"repro/internal/workload"

	// The harness enumerates methods from the index registry; these
	// imports populate it (kreach/pathtree/twohop above register too, and
	// additionally export the budget sentinels the harness maps to "—").
	_ "repro/internal/core"
	_ "repro/internal/grail"
	_ "repro/internal/intervalidx"
	_ "repro/internal/plandmark"
	_ "repro/internal/pwahidx"
	_ "repro/internal/scarab"
	_ "repro/internal/tflabel"
)

// ErrSkipped marks a method excluded by a resource budget ("—" in tables).
var ErrSkipped = errors.New("bench: method skipped by resource budget")

// Config controls a harness run.
type Config struct {
	// Scale divides large-dataset sizes (default dataset.DefaultScale).
	Scale int
	// Queries per workload (default workload.DefaultQueries).
	Queries int
	// Seed drives workload generation and randomized builds.
	Seed int64
	// Methods restricts the column set (nil = all, in paper order).
	Methods []string
	// Budgets: estimated reachable-pair ceilings for closure-based methods.
	MaxINTPairs  int64 // default 200M
	MaxPW8Pairs  int64 // default 400M
	MaxPTEntries int64 // default 60M
	MaxPLPairs   int64 // default 120M (PL distance labels grow with closure density)
	// MaxLabelPairs skips the hierarchy-based labelings (HL, TF) above this
	// estimated closure size; their label-broadcast cost tracks closure
	// density (the paper's HL also fails on cit-Patents, its densest graph).
	MaxLabelPairs int64 // default 700M
	// TwoHopMaxTime caps set-cover 2HOP construction per graph — the
	// scaled analogue of the paper's 24-hour limit (default 2 minutes).
	TwoHopMaxTime time.Duration
	// Verbose, when non-nil, receives progress lines.
	Verbose io.Writer
}

func (c Config) WithDefaults() Config {
	if c.Scale <= 0 {
		c.Scale = dataset.DefaultScale
	}
	if c.Queries <= 0 {
		c.Queries = workload.DefaultQueries
	}
	if c.MaxINTPairs <= 0 {
		c.MaxINTPairs = 200_000_000
	}
	if c.MaxPW8Pairs <= 0 {
		c.MaxPW8Pairs = 400_000_000
	}
	if c.MaxPTEntries <= 0 {
		c.MaxPTEntries = 60_000_000
	}
	if c.MaxPLPairs <= 0 {
		c.MaxPLPairs = 120_000_000
	}
	if c.MaxLabelPairs <= 0 {
		c.MaxLabelPairs = 700_000_000
	}
	if c.TwoHopMaxTime <= 0 {
		c.TwoHopMaxTime = 2 * time.Minute
	}
	return c
}

func (c Config) logf(format string, args ...interface{}) {
	if c.Verbose != nil {
		fmt.Fprintf(c.Verbose, format+"\n", args...)
	}
}

// MethodOrder is the paper's table column order.
var MethodOrder = []string{"GL", "GL*", "PT", "PT*", "KR", "PW8", "INT", "2HOP", "PL", "TF", "HL", "DL"}

// Method is one index method under benchmark.
type Method struct {
	// ID is the paper's table column name; it differs from the registry
	// tag only for GRAIL, which the tables print as "GL".
	ID string
	// Tag is the index-registry tag backing this column.
	Tag   string
	Build func(g *graph.Graph, estPairs int64, cfg Config) (index.Index, error)
}

// displayID maps registry tags to paper column names where they differ.
var displayID = map[string]string{"GRAIL": "GL"}

// pairGates are the closure-size pre-checks that reproduce the paper's
// "—" entries: methods whose index (or construction intermediate) grows
// with the number of reachable pairs are skipped above their budget.
var pairGates = map[string]func(estPairs int64, cfg Config) bool{
	"PW8": func(est int64, cfg Config) bool { return est > cfg.MaxPW8Pairs },
	"INT": func(est int64, cfg Config) bool { return est > cfg.MaxINTPairs },
	"PL":  func(est int64, cfg Config) bool { return est > cfg.MaxPLPairs },
	"TF":  func(est int64, cfg Config) bool { return est > cfg.MaxLabelPairs },
	"HL":  func(est int64, cfg Config) bool { return est > cfg.MaxLabelPairs },
}

// Methods enumerates the benchmarked methods from the index registry in
// paper column order, wrapping each registered builder with the harness's
// resource budgets. Methods outside the paper's tables (BFS, BiBFS, TCOV)
// are registered but not benchmarked.
func Methods() []Method {
	byID := make(map[string]Method)
	for _, d := range index.Descriptors() {
		id := d.Tag
		if alias, ok := displayID[id]; ok {
			id = alias
		}
		byID[id] = Method{ID: id, Tag: d.Tag, Build: budgetedBuild(d)}
	}
	out := make([]Method, 0, len(MethodOrder))
	for _, id := range MethodOrder {
		if m, ok := byID[id]; ok {
			out = append(out, m)
		}
	}
	return out
}

// budgetedBuild adapts a registry builder to the harness contract:
// closure-size gates first, then the build with the harness budgets
// threaded through, with the packages' own budget errors mapped to
// ErrSkipped ("—").
func budgetedBuild(d index.Descriptor) func(*graph.Graph, int64, Config) (index.Index, error) {
	return func(g *graph.Graph, estPairs int64, cfg Config) (index.Index, error) {
		if gate := pairGates[d.Tag]; gate != nil && gate(estPairs, cfg) {
			return nil, ErrSkipped
		}
		idx, err := d.Build(g, index.BuildOptions{
			Seed:          cfg.Seed,
			MaxPTEntries:  cfg.MaxPTEntries,
			TwoHopMaxTime: cfg.TwoHopMaxTime,
		})
		if err != nil {
			if errors.Is(err, pathtree.ErrTooLarge) || errors.Is(err, kreach.ErrTooLarge) ||
				errors.Is(err, twohop.ErrTooLarge) || errors.Is(err, twohop.ErrTimeout) {
				return nil, ErrSkipped
			}
			return nil, err
		}
		return idx, nil
	}
}

// selectMethods filters the registry by cfg.Methods (nil = all).
func selectMethods(cfg Config) []Method {
	all := Methods()
	if len(cfg.Methods) == 0 {
		return all
	}
	want := map[string]bool{}
	for _, id := range cfg.Methods {
		want[id] = true
	}
	var out []Method
	for _, m := range all {
		if want[m.ID] {
			out = append(out, m)
		}
	}
	return out
}

// Report is a rendered experiment table.
type Report struct {
	Title   string
	Columns []string // first column is the dataset name
	Rows    [][]string
}

// Write renders the report with aligned columns.
func (r *Report) Write(w io.Writer) error {
	widths := make([]int, len(r.Columns))
	for i, c := range r.Columns {
		widths[i] = len(c)
	}
	for _, row := range r.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	if _, err := fmt.Fprintf(w, "%s\n", r.Title); err != nil {
		return err
	}
	writeRow := func(cells []string) error {
		for i, cell := range cells {
			pad := widths[i] - len(cell)
			if i == 0 {
				if _, err := fmt.Fprintf(w, "%-*s", widths[i]+2, cell); err != nil {
					return err
				}
				continue
			}
			if _, err := fmt.Fprintf(w, "%s%s  ", spaces(pad), cell); err != nil {
				return err
			}
		}
		_, err := fmt.Fprintln(w)
		return err
	}
	if err := writeRow(r.Columns); err != nil {
		return err
	}
	for _, row := range r.Rows {
		if err := writeRow(row); err != nil {
			return err
		}
	}
	return nil
}

func spaces(n int) string {
	if n <= 0 {
		return ""
	}
	b := make([]byte, n)
	for i := range b {
		b[i] = ' '
	}
	return string(b)
}

// buildOne constructs one method's index with timing; ErrSkipped and
// budget errors yield (nil, 0, ErrSkipped).
func buildOne(m Method, g *graph.Graph, estPairs int64, cfg Config) (index.Index, time.Duration, error) {
	start := time.Now()
	idx, err := m.Build(g, estPairs, cfg)
	elapsed := time.Since(start)
	if err != nil {
		if errors.Is(err, ErrSkipped) {
			return nil, 0, ErrSkipped
		}
		return nil, 0, err
	}
	return idx, elapsed, nil
}

// estimatePairs samples the graph's reachable-pair count for budgets.
func estimatePairs(g *graph.Graph, seed int64) int64 {
	return tc.EstimatePairs(g, 48, seed)
}

// Table1 renders the dataset inventory (paper Table 1) with both the paper
// sizes and the realized synthetic sizes at the configured scale.
func Table1(w io.Writer, cfg Config) error {
	cfg = cfg.WithDefaults()
	rep := &Report{
		Title:   "Table 1: datasets (paper sizes vs synthetic substitutes)",
		Columns: []string{"dataset", "class", "|V| paper", "|E| paper", "|V| built", "|E| built", "family"},
	}
	for _, spec := range dataset.All() {
		cfg.logf("table1: building %s", spec.Name)
		g := spec.Build(cfg.Scale)
		rep.Rows = append(rep.Rows, []string{
			spec.Name, spec.Class.String(),
			fmt.Sprintf("%d", spec.PaperV), fmt.Sprintf("%d", spec.PaperE),
			fmt.Sprintf("%d", g.NumVertices()), fmt.Sprintf("%d", g.NumEdges()),
			spec.Family,
		})
	}
	return rep.Write(w)
}

// QueryTable renders a query-time table: Table 2 (small, equal), Table 3
// (small, random), Table 5 (large, equal) or Table 6 (large, random).
func QueryTable(w io.Writer, title string, class dataset.Class, kind workload.Kind, cfg Config) error {
	cfg = cfg.WithDefaults()
	methods := selectMethods(cfg)
	rep := &Report{Title: title, Columns: append([]string{"dataset"}, ids(methods)...)}

	for _, spec := range specsOf(class) {
		cfg.logf("%s: dataset %s", title, spec.Name)
		g := spec.Build(cfg.Scale)
		est := estimatePairs(g, cfg.Seed)
		wl, err := workload.Generate(g, kind, cfg.Queries, cfg.Seed)
		if err != nil {
			return fmt.Errorf("workload for %s: %w", spec.Name, err)
		}
		row := []string{spec.Name}
		for _, m := range methods {
			idx, _, err := buildOne(m, g, est, cfg)
			if err != nil {
				row = append(row, cellForError(err, cfg, spec.Name, m.ID))
				continue
			}
			start := time.Now()
			checksum := wl.Run(idx)
			elapsed := time.Since(start)
			_ = checksum
			row = append(row, fmt.Sprintf("%.1f", float64(elapsed.Microseconds())/1000.0))
			cfg.logf("  %-5s built and queried (%.1f ms)", m.ID, float64(elapsed.Microseconds())/1000.0)
		}
		rep.Rows = append(rep.Rows, row)
	}
	return rep.Write(w)
}

// ConstructionTable renders Table 4 (small) or Table 7 (large):
// construction time in milliseconds per method.
func ConstructionTable(w io.Writer, title string, class dataset.Class, cfg Config) error {
	cfg = cfg.WithDefaults()
	methods := selectMethods(cfg)
	rep := &Report{Title: title, Columns: append([]string{"dataset"}, ids(methods)...)}
	for _, spec := range specsOf(class) {
		cfg.logf("%s: dataset %s", title, spec.Name)
		g := spec.Build(cfg.Scale)
		est := estimatePairs(g, cfg.Seed)
		row := []string{spec.Name}
		for _, m := range methods {
			_, elapsed, err := buildOne(m, g, est, cfg)
			if err != nil {
				row = append(row, cellForError(err, cfg, spec.Name, m.ID))
				continue
			}
			row = append(row, fmt.Sprintf("%.1f", float64(elapsed.Microseconds())/1000.0))
			cfg.logf("  %-5s built in %s", m.ID, elapsed)
		}
		rep.Rows = append(rep.Rows, row)
	}
	return rep.Write(w)
}

// IndexSizeTable renders Figure 3 (small) or Figure 4 (large): index size
// in number of 32-bit integers per method.
func IndexSizeTable(w io.Writer, title string, class dataset.Class, cfg Config) error {
	cfg = cfg.WithDefaults()
	methods := selectMethods(cfg)
	rep := &Report{Title: title, Columns: append([]string{"dataset"}, ids(methods)...)}
	for _, spec := range specsOf(class) {
		cfg.logf("%s: dataset %s", title, spec.Name)
		g := spec.Build(cfg.Scale)
		est := estimatePairs(g, cfg.Seed)
		row := []string{spec.Name}
		for _, m := range methods {
			idx, _, err := buildOne(m, g, est, cfg)
			if err != nil {
				row = append(row, cellForError(err, cfg, spec.Name, m.ID))
				continue
			}
			row = append(row, fmt.Sprintf("%d", idx.SizeInts()))
		}
		rep.Rows = append(rep.Rows, row)
	}
	return rep.Write(w)
}

func cellForError(err error, cfg Config, ds, method string) string {
	if errors.Is(err, ErrSkipped) {
		cfg.logf("  %-5s skipped (budget)", method)
		return "—"
	}
	cfg.logf("  %-5s FAILED on %s: %v", method, ds, err)
	return "err"
}

func ids(methods []Method) []string {
	out := make([]string, len(methods))
	for i, m := range methods {
		out[i] = m.ID
	}
	return out
}

func specsOf(class dataset.Class) []dataset.Spec {
	if class == dataset.Small {
		return dataset.SmallSpecs()
	}
	return dataset.LargeSpecs()
}
