package backbone

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/gen"
	"repro/internal/graph"
)

// pathChain is 0 -> 1 -> 2 -> ... -> 9.
func pathChain(t *testing.T) *graph.Graph {
	t.Helper()
	edges := make([][2]graph.Vertex, 0, 9)
	for i := 0; i < 9; i++ {
		edges = append(edges, [2]graph.Vertex{graph.Vertex(i), graph.Vertex(i + 1)})
	}
	return graph.MustFromEdges(10, edges)
}

// coversAllPaths verifies that every directed path with exactly eps edges
// contains a selected vertex (the FastCover invariant).
func coversAllPaths(g *graph.Graph, inStar []bool, eps int) bool {
	ok := true
	var rec func(v graph.Vertex, depth int, hit bool)
	rec = func(v graph.Vertex, depth int, hit bool) {
		hit = hit || inStar[v]
		if depth == eps {
			if !hit {
				ok = false
			}
			return
		}
		if !ok {
			return
		}
		for _, w := range g.Out(v) {
			rec(w, depth+1, hit)
		}
	}
	for v := 0; v < g.NumVertices(); v++ {
		rec(graph.Vertex(v), 0, false)
	}
	return ok
}

func TestExtractCoversChain(t *testing.T) {
	g := pathChain(t)
	bb := Extract(g, Config{Epsilon: 2})
	if !coversAllPaths(g, bb.InStar, 2) {
		t.Fatal("backbone does not cover all 2-paths")
	}
	if len(bb.Vertices) == 0 || len(bb.Vertices) >= g.NumVertices() {
		t.Fatalf("backbone size %d of %d is not a real reduction", len(bb.Vertices), g.NumVertices())
	}
	if err := bb.Star.Validate(); err != nil {
		t.Fatal(err)
	}
	if !graph.IsDAG(bb.Star) {
		t.Fatal("backbone graph has a cycle")
	}
}

func TestExtractLocalIDsConsistent(t *testing.T) {
	g := gen.UniformDAG(200, 500, 1)
	bb := Extract(g, DefaultConfig())
	for li, v := range bb.Vertices {
		if !bb.InStar[v] {
			t.Fatalf("Vertices[%d]=%d not marked InStar", li, v)
		}
		if bb.LocalID[v] != int32(li) {
			t.Fatalf("LocalID[%d] = %d, want %d", v, bb.LocalID[v], li)
		}
	}
	for v := 0; v < g.NumVertices(); v++ {
		if !bb.InStar[v] && bb.LocalID[v] != -1 {
			t.Fatalf("non-member %d has local ID %d", v, bb.LocalID[v])
		}
	}
}

// TestBackbonePreservesReachability checks Lemma 1 claim 1: for backbone
// vertices, reachability in G* equals reachability in G.
func TestBackbonePreservesReachability(t *testing.T) {
	families := map[string]*graph.Graph{
		"uniform":  gen.UniformDAG(150, 400, 3),
		"tree":     gen.TreeDAG(150, 0.2, 0, 3),
		"citation": gen.CitationDAG(150, 3, 0.5, 3),
		"chain":    gen.ChainDAG(150, 6, 0.2, 3),
	}
	for name, g := range families {
		for _, eps := range []int{1, 2, 3} {
			bb := Extract(g, Config{Epsilon: eps})
			vg := graph.NewVisitor(g.NumVertices())
			vs := graph.NewVisitor(bb.Star.NumVertices())
			rng := rand.New(rand.NewSource(9))
			for q := 0; q < 300; q++ {
				if len(bb.Vertices) < 2 {
					break
				}
				a := bb.Vertices[rng.Intn(len(bb.Vertices))]
				b := bb.Vertices[rng.Intn(len(bb.Vertices))]
				want := vg.Reachable(g, a, b)
				got := vs.Reachable(bb.Star, graph.Vertex(bb.LocalID[a]), graph.Vertex(bb.LocalID[b]))
				if got != want {
					t.Fatalf("%s eps=%d: reach(%d,%d) = %v in G*, want %v", name, eps, a, b, got, want)
				}
			}
		}
	}
}

// TestBackboneProperty checks the one-side backbone property: every
// non-local reachable pair has backbone entry/exit vertices within ε that
// are connected in G*.
func TestBackboneProperty(t *testing.T) {
	g := gen.UniformDAG(120, 300, 5)
	eps := int32(2)
	bb := Extract(g, Config{Epsilon: int(eps)})
	vst := graph.NewVisitor(g.NumVertices())
	aux := graph.NewVisitor(g.NumVertices())
	star := graph.NewVisitor(bb.Star.NumVertices())
	rng := rand.New(rand.NewSource(2))

	for q := 0; q < 400; q++ {
		u := graph.Vertex(rng.Intn(g.NumVertices()))
		v := graph.Vertex(rng.Intn(g.NumVertices()))
		if u == v || !vst.Reachable(g, u, v) {
			continue
		}
		if d := vst.Distance(g, u, v, graph.Forward); d <= eps {
			continue // local pair: property does not apply
		}
		// Collect entries (backbone within ε forward of u) and exits
		// (backbone within ε backward of v).
		var entries, exits []int32
		aux.BoundedBFS(g, u, graph.Forward, eps, func(w graph.Vertex, _ int32) {
			if bb.InStar[w] {
				entries = append(entries, bb.LocalID[w])
			}
		})
		aux.BoundedBFS(g, v, graph.Backward, eps, func(w graph.Vertex, _ int32) {
			if bb.InStar[w] {
				exits = append(exits, bb.LocalID[w])
			}
		})
		found := false
		for _, e := range entries {
			for _, x := range exits {
				if e == x || star.Reachable(bb.Star, graph.Vertex(e), graph.Vertex(x)) {
					found = true
					break
				}
			}
			if found {
				break
			}
		}
		if !found {
			t.Fatalf("pair (%d,%d): no connected entry/exit in backbone", u, v)
		}
	}
}

func TestDecomposeShrinks(t *testing.T) {
	g := gen.TreeDAG(3000, 0.1, 0, 7)
	h := Decompose(g, DecomposeConfig{CoreLimit: 100, MaxLevels: 10})
	if len(h.Levels) < 2 {
		t.Fatalf("no decomposition happened: %d levels", len(h.Levels))
	}
	for i := 1; i < len(h.Levels); i++ {
		if h.Levels[i].G.NumVertices() >= h.Levels[i-1].G.NumVertices() {
			t.Fatalf("level %d did not shrink: %d >= %d", i,
				h.Levels[i].G.NumVertices(), h.Levels[i-1].G.NumVertices())
		}
	}
	last := h.Core().G.NumVertices()
	if last > 100 && len(h.Levels) < 11 {
		t.Errorf("core still has %d vertices with only %d levels", last, len(h.Levels))
	}
}

func TestDecomposeLevelOf(t *testing.T) {
	g := gen.UniformDAG(800, 2000, 8)
	h := Decompose(g, DecomposeConfig{CoreLimit: 50, MaxLevels: 6})
	levelOf := h.LevelOf()
	// Every vertex of level i's ToOrig must have levelOf >= i.
	for i, lv := range h.Levels {
		for _, orig := range lv.ToOrig {
			if levelOf[orig] < i {
				t.Fatalf("vertex %d appears at level %d but levelOf=%d", orig, i, levelOf[orig])
			}
		}
	}
	// Counts per level match level sizes.
	count := make([]int, len(h.Levels))
	for _, l := range levelOf {
		count[l]++
	}
	for i := range h.Levels {
		wantHere := h.Levels[i].G.NumVertices()
		if i+1 < len(h.Levels) {
			wantHere -= h.Levels[i+1].G.NumVertices()
		}
		if count[i] != wantHere {
			t.Errorf("level %d: %d vertices, want %d", i, count[i], wantHere)
		}
	}
}

func TestDecomposePreservesReachabilityAcrossLevels(t *testing.T) {
	g := gen.CitationDAG(600, 2.5, 0.4, 4)
	h := Decompose(g, DecomposeConfig{CoreLimit: 40, MaxLevels: 8})
	rng := rand.New(rand.NewSource(6))
	v0 := graph.NewVisitor(g.NumVertices())
	for i := 1; i < len(h.Levels); i++ {
		lv := h.Levels[i]
		vi := graph.NewVisitor(lv.G.NumVertices())
		for q := 0; q < 100; q++ {
			if lv.G.NumVertices() < 2 {
				break
			}
			a := graph.Vertex(rng.Intn(lv.G.NumVertices()))
			b := graph.Vertex(rng.Intn(lv.G.NumVertices()))
			got := vi.Reachable(lv.G, a, b)
			want := v0.Reachable(g, lv.ToOrig[a], lv.ToOrig[b])
			if got != want {
				t.Fatalf("level %d: reach(%d,%d) = %v, original says %v", i, a, b, got, want)
			}
		}
	}
}

func TestSetsMembersAreBackboneWithinEps(t *testing.T) {
	g := gen.UniformDAG(150, 400, 10)
	eps := 2
	bb := Extract(g, Config{Epsilon: eps})
	bout, bin := Sets(g, bb.InStar, eps)
	vst := graph.NewVisitor(g.NumVertices())
	for v := 0; v < g.NumVertices(); v++ {
		for _, w := range bout[v] {
			if !bb.InStar[w] {
				t.Fatalf("Bout(%d) contains non-backbone %d", v, w)
			}
			if d := vst.Distance(g, graph.Vertex(v), w, graph.Forward); d < 0 || d > int32(eps) {
				t.Fatalf("Bout(%d) member %d at distance %d", v, w, d)
			}
		}
		for _, w := range bin[v] {
			if !bb.InStar[w] {
				t.Fatalf("Bin(%d) contains non-backbone %d", v, w)
			}
			if d := vst.Distance(g, w, graph.Vertex(v), graph.Forward); d < 0 || d > int32(eps) {
				t.Fatalf("Bin(%d) member %d at distance %d", v, w, d)
			}
		}
	}
}

// TestSetsDominate checks the property the HL proof relies on: every
// backbone vertex within ε of v is reached from some member of Bεout(v)
// (resp. reaches some member of Bεin(v)).
func TestSetsDominate(t *testing.T) {
	g := gen.CitationDAG(150, 3, 0.5, 11)
	eps := 2
	bb := Extract(g, Config{Epsilon: eps})
	bout, bin := Sets(g, bb.InStar, eps)
	vst := graph.NewVisitor(g.NumVertices())
	aux := graph.NewVisitor(g.NumVertices())
	for v := 0; v < g.NumVertices(); v++ {
		var nearBB []graph.Vertex
		aux.BoundedBFS(g, graph.Vertex(v), graph.Forward, int32(eps), func(w graph.Vertex, _ int32) {
			if bb.InStar[w] && w != graph.Vertex(v) {
				nearBB = append(nearBB, w)
			}
		})
		for _, w := range nearBB {
			ok := false
			for _, x := range bout[v] {
				if x == w || vst.Reachable(g, x, w) {
					ok = true
					break
				}
			}
			if !ok {
				t.Fatalf("backbone %d near %d not dominated by Bout=%v", w, v, bout[v])
			}
		}
		nearBB = nearBB[:0]
		aux.BoundedBFS(g, graph.Vertex(v), graph.Backward, int32(eps), func(w graph.Vertex, _ int32) {
			if bb.InStar[w] && w != graph.Vertex(v) {
				nearBB = append(nearBB, w)
			}
		})
		for _, w := range nearBB {
			ok := false
			for _, x := range bin[v] {
				if x == w || vst.Reachable(g, w, x) {
					ok = true
					break
				}
			}
			if !ok {
				t.Fatalf("backbone %d near %d (backward) not dominated by Bin=%v", w, v, bin[v])
			}
		}
	}
}

// Property: cover invariant holds across random graphs and ε values.
func TestCoverInvariantProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := gen.UniformDAG(40+rng.Intn(60), 100+rng.Intn(150), seed)
		for _, eps := range []int{1, 2} {
			bb := Extract(g, Config{Epsilon: eps})
			if !coversAllPaths(g, bb.InStar, eps) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestExtractHubCap(t *testing.T) {
	// A star hub: 50 sources -> hub -> 50 sinks. With a tiny HubCap the hub
	// must be forced into the backbone.
	b := graph.NewBuilder(101)
	hub := graph.Vertex(100)
	for i := 0; i < 50; i++ {
		b.AddEdge(graph.Vertex(i), hub)
		b.AddEdge(hub, graph.Vertex(50+i))
	}
	g := b.MustBuild()
	bb := Extract(g, Config{Epsilon: 2, HubCap: 10})
	if !bb.InStar[hub] {
		t.Fatal("hub not forced into backbone")
	}
	if len(bb.Vertices) > 10 {
		t.Errorf("backbone unexpectedly large: %d vertices", len(bb.Vertices))
	}
}

func TestDecomposeTinyGraph(t *testing.T) {
	g := graph.MustFromEdges(2, [][2]graph.Vertex{{0, 1}})
	h := Decompose(g, DecomposeConfig{})
	if len(h.Levels) != 1 {
		t.Fatalf("tiny graph decomposed into %d levels", len(h.Levels))
	}
	if h.Core().G.NumVertices() != 2 {
		t.Fatal("core is not the input graph")
	}
}
