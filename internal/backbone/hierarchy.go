package backbone

import "repro/internal/graph"

// Level is one graph Gi of the hierarchical DAG decomposition
// (Definition 2). Vertices are local IDs within the level.
type Level struct {
	// G is the level graph Gi.
	G *graph.Graph
	// ToOrig maps a local vertex to its original (level-0) vertex ID.
	ToOrig []graph.Vertex
	// InNext reports whether a local vertex was selected into level i+1's
	// backbone. Nil for the top (core) level.
	InNext []bool
	// ToNext maps a local vertex to its local ID at level i+1, or -1.
	// Nil for the top level.
	ToNext []int32
}

// Hierarchy is the full decomposition V0 ⊃ V1 ⊃ … ⊃ Vh; Levels[0] wraps the
// input graph and Levels[h] is the core graph.
type Hierarchy struct {
	Eps    int
	Levels []*Level
}

// Core returns the top (smallest) level graph Gh.
func (h *Hierarchy) Core() *Level { return h.Levels[len(h.Levels)-1] }

// LevelOf returns, for every original vertex, the highest level whose
// vertex set still contains it (level(v) in the paper's notation).
func (h *Hierarchy) LevelOf() []int {
	level := make([]int, h.Levels[0].G.NumVertices())
	for i, lv := range h.Levels {
		for _, orig := range lv.ToOrig {
			level[orig] = i
		}
	}
	return level
}

// DecomposeConfig controls hierarchy construction. The stopping rules
// follow the paper's practical guidance (§4.2): bound the number of levels
// and stop once the core is small enough for direct labeling.
type DecomposeConfig struct {
	Backbone Config
	// CoreLimit stops decomposition once |Vi| ≤ CoreLimit. Default 1024.
	CoreLimit int
	// MaxLevels bounds h. Default 10.
	MaxLevels int
}

func (c DecomposeConfig) withDefaults() DecomposeConfig {
	c.Backbone = c.Backbone.withDefaults()
	if c.CoreLimit <= 0 {
		c.CoreLimit = 1024
	}
	if c.MaxLevels <= 0 {
		c.MaxLevels = 10
	}
	return c
}

// Decompose builds the recursive backbone hierarchy of DAG g.
func Decompose(g *graph.Graph, cfg DecomposeConfig) *Hierarchy {
	cfg = cfg.withDefaults()
	h := &Hierarchy{Eps: cfg.Backbone.Epsilon}

	toOrig := make([]graph.Vertex, g.NumVertices())
	for i := range toOrig {
		toOrig[i] = graph.Vertex(i)
	}
	cur := &Level{G: g, ToOrig: toOrig}
	h.Levels = append(h.Levels, cur)

	for len(h.Levels) < cfg.MaxLevels+1 && cur.G.NumVertices() > cfg.CoreLimit {
		bb := Extract(cur.G, cfg.Backbone)
		if len(bb.Vertices) == 0 || len(bb.Vertices) >= cur.G.NumVertices() {
			break // no shrink: recursing further cannot help
		}
		cur.InNext = bb.InStar
		cur.ToNext = bb.LocalID
		nextToOrig := make([]graph.Vertex, len(bb.Vertices))
		for li, parentLocal := range bb.Vertices {
			nextToOrig[li] = cur.ToOrig[parentLocal]
		}
		cur = &Level{G: bb.Star, ToOrig: nextToOrig}
		h.Levels = append(h.Levels, cur)
	}
	return h
}

// Sets computes the outgoing and incoming backbone vertex sets
// Bεout(v|Gi) and Bεin(v|Gi) (Formulas 1 and 2) for every vertex of level
// graph g, as local vertex IDs of g itself (members are vertices with
// inNext true). The exclusion rule fires only with a strictly closer
// witness, mirroring the reduction rule (see the package comment).
func Sets(g *graph.Graph, inNext []bool, eps int) (bout, bin [][]graph.Vertex) {
	n := g.NumVertices()
	e := int32(eps)

	// near[d][a] = backbone vertices within ε steps of backbone vertex a in
	// direction d, with distances, as sorted parallel slices (maps here
	// dominated HL's construction profile on dense graphs).
	near := [2][]nearList{}
	var backboneIDs []graph.Vertex
	for v := 0; v < n; v++ {
		if inNext[v] {
			backboneIDs = append(backboneIDs, graph.Vertex(v))
		}
	}
	vst := graph.NewVisitor(n)
	for dir := 0; dir < 2; dir++ {
		near[dir] = make([]nearList, n)
		for _, a := range backboneIDs {
			var nl nearList
			vst.BoundedBFS(g, a, graph.Direction(dir), e, func(w graph.Vertex, d int32) {
				if inNext[w] && w != a {
					nl.v = append(nl.v, int32(w))
					nl.d = append(nl.d, d)
				}
			})
			sortNearList(&nl)
			near[dir][a] = nl
		}
	}

	bout = make([][]graph.Vertex, n)
	bin = make([][]graph.Vertex, n)
	var cands []candDist
	for v := 0; v < n; v++ {
		for dir := 0; dir < 2; dir++ {
			cands = cands[:0]
			vst.BoundedBFS(g, graph.Vertex(v), graph.Direction(dir), e, func(w graph.Vertex, d int32) {
				if inNext[w] && w != graph.Vertex(v) {
					cands = append(cands, candDist{v: w, d: d})
				}
			})
			var kept []graph.Vertex
			for _, c := range cands {
				if !excluded(near[dir], cands, c, e) {
					kept = append(kept, c.v)
				}
			}
			if dir == int(graph.Forward) {
				bout[v] = kept
			} else {
				bin[v] = kept
			}
		}
	}
	return bout, bin
}

// candDist pairs a backbone vertex with its distance from the vertex whose
// backbone set is being computed.
type candDist struct {
	v graph.Vertex
	d int32
}

// excluded reports whether candidate c (a backbone vertex at distance c.d
// from v) is dominated by a strictly closer backbone vertex x with
// x -> c.v within ε (forward direction; mirrored for backward).
func excluded(near []nearList, cands []candDist, c candDist, eps int32) bool {
	for _, x := range cands {
		if x.v == c.v || x.d >= c.d {
			continue
		}
		if dxc := near[x.v].distTo(int32(c.v)); dxc >= 0 && dxc <= eps {
			return true
		}
	}
	return false
}
