// Package backbone implements the one-side reachability backbone of
// SCARAB (Jin et al., SIGMOD 2012; Definition 1 in Jin & Wang 2013) and the
// recursive hierarchical DAG decomposition built from it (Definition 2).
// It is the structural substrate of Hierarchical-Labeling and of the
// SCARAB query wrappers (GRAIL*, PT*).
//
// Correctness-critical deviations from the paper's informal rules, both
// conservative (they can only enlarge the backbone, never break it):
//
//  1. FastCover covers every directed path with exactly ε edges by one of
//     its ε+1 vertices (greedy max-coverage). Covering all length-ε paths
//     implies Definition 1's condition for all distance-ε pairs, and it
//     yields the provable invariant that consecutive backbone vertices
//     along any path are at most ε+1 apart — which is what makes the
//     ε+1-bounded backbone edges preserve reachability (the paper's
//     Example 4.1 vertex-cover construction is exactly the ε = 1 case).
//  2. The transitive-reduction-like edge rule and the backbone-set
//     (Formula 1/2) exclusion rule only fire with a strictly-closer
//     witness, which makes the removal cascade provably terminating.
package backbone

import (
	"container/heap"
	"sort"

	"repro/internal/graph"
)

// Config controls backbone extraction.
type Config struct {
	// Epsilon is the locality threshold ε (the paper uses 2; TF-label is 1).
	Epsilon int
	// HubCap bounds per-vertex path enumeration: a midpoint whose
	// in-degree×out-degree exceeds HubCap is forced into the backbone
	// directly (covering all paths through it) instead of enumerating them.
	HubCap int
}

// DefaultConfig returns the paper's settings: ε = 2.
func DefaultConfig() Config { return Config{Epsilon: 2, HubCap: 4096} }

func (c Config) withDefaults() Config {
	if c.Epsilon <= 0 {
		c.Epsilon = 2
	}
	if c.HubCap <= 0 {
		c.HubCap = 4096
	}
	return c
}

// Backbone is the one-side reachability backbone G* of a parent graph.
type Backbone struct {
	// InStar[v] reports whether parent vertex v was selected into V*.
	InStar []bool
	// Vertices lists V* in increasing parent-vertex order; local vertex i of
	// Star corresponds to parent vertex Vertices[i].
	Vertices []graph.Vertex
	// Star is G* = (V*, E*) over local IDs.
	Star *graph.Graph
	// LocalID maps parent vertex -> local ID in Star, or -1 if not in V*.
	LocalID []int32
}

// Extract computes the one-side reachability backbone of DAG g.
func Extract(g *graph.Graph, cfg Config) *Backbone {
	cfg = cfg.withDefaults()
	inStar := selectCover(g, cfg)
	return assembleBackbone(g, inStar, cfg)
}

// selectCover chooses V*: a set of vertices covering every length-ε path.
func selectCover(g *graph.Graph, cfg Config) []bool {
	n := g.NumVertices()
	inStar := make([]bool, n)
	eps := cfg.Epsilon

	// Force hub midpoints into V* up front so path enumeration stays linear.
	for v := 0; v < n; v++ {
		if g.InDegree(graph.Vertex(v))*g.OutDegree(graph.Vertex(v)) > cfg.HubCap {
			inStar[v] = true
		}
	}

	units, unitVerts := enumerateUnits(g, eps, inStar)
	greedyCover(g, units, unitVerts, inStar)
	return inStar
}

// enumerateUnits lists every length-eps path not already covered by a
// pre-selected vertex. Each unit is a slice of its eps+1 vertices, all of
// which are candidate coverers. unitVerts[v] indexes the units containing v.
func enumerateUnits(g *graph.Graph, eps int, inStar []bool) (units [][]graph.Vertex, unitVerts [][]int32) {
	n := g.NumVertices()
	unitVerts = make([][]int32, n)
	addUnit := func(path []graph.Vertex) {
		for _, v := range path {
			if inStar[v] {
				return // already covered
			}
		}
		id := int32(len(units))
		cp := make([]graph.Vertex, len(path))
		copy(cp, path)
		units = append(units, cp)
		for _, v := range cp {
			unitVerts[v] = append(unitVerts[v], id)
		}
	}

	switch eps {
	case 1:
		g.Edges(func(u, v graph.Vertex) bool {
			addUnit([]graph.Vertex{u, v})
			return true
		})
	default:
		// DFS enumeration of all paths with exactly eps edges.
		path := make([]graph.Vertex, eps+1)
		var rec func(v graph.Vertex, depth int)
		rec = func(v graph.Vertex, depth int) {
			path[depth] = v
			if depth == eps {
				addUnit(path)
				return
			}
			// Covered-prefix pruning: once the prefix hits a selected
			// vertex, every completion is covered.
			if inStar[v] && depth > 0 {
				return
			}
			for _, w := range g.Out(v) {
				rec(w, depth+1)
			}
		}
		for v := 0; v < n; v++ {
			rec(graph.Vertex(v), 0)
		}
	}
	return units, unitVerts
}

// coverItem is a lazy-heap entry for greedy max-coverage.
type coverItem struct {
	v    graph.Vertex
	gain int32
	rank int64
}

type coverHeap []coverItem

func (h coverHeap) Len() int { return len(h) }
func (h coverHeap) Less(i, j int) bool {
	if h[i].gain != h[j].gain {
		return h[i].gain > h[j].gain
	}
	if h[i].rank != h[j].rank {
		return h[i].rank > h[j].rank
	}
	return h[i].v < h[j].v
}
func (h coverHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *coverHeap) Push(x interface{}) { *h = append(*h, x.(coverItem)) }
func (h *coverHeap) Pop() interface{} {
	old := *h
	it := old[len(old)-1]
	*h = old[:len(old)-1]
	return it
}

// greedyCover runs lazy-evaluation greedy max-coverage, adding vertices to
// inStar until every unit is covered. Ties break toward the paper's
// degree-product rank.
func greedyCover(g *graph.Graph, units [][]graph.Vertex, unitVerts [][]int32, inStar []bool) {
	if len(units) == 0 {
		return
	}
	covered := make([]bool, len(units))
	remaining := len(units)
	gain := make([]int32, g.NumVertices())
	h := make(coverHeap, 0)
	for v, us := range unitVerts {
		if len(us) == 0 || inStar[v] {
			continue
		}
		gain[v] = int32(len(us))
		rank := int64(g.OutDegree(graph.Vertex(v))+1) * int64(g.InDegree(graph.Vertex(v))+1)
		h = append(h, coverItem{v: graph.Vertex(v), gain: gain[v], rank: rank})
	}
	heap.Init(&h)

	for remaining > 0 && h.Len() > 0 {
		top := heap.Pop(&h).(coverItem)
		if inStar[top.v] {
			continue
		}
		if top.gain != gain[top.v] {
			// Stale entry: reinsert with the true gain.
			if gain[top.v] > 0 {
				top.gain = gain[top.v]
				heap.Push(&h, top)
			}
			continue
		}
		if top.gain == 0 {
			break
		}
		inStar[top.v] = true
		for _, uid := range unitVerts[top.v] {
			if covered[uid] {
				continue
			}
			covered[uid] = true
			remaining--
			for _, w := range units[uid] {
				if gain[w] > 0 {
					gain[w]--
				}
			}
		}
	}
	// Defensive sweep: any still-uncovered unit takes its middle vertex.
	// (Cannot happen if the heap logic is right, but completeness of the
	// cover is a hard invariant the labeling proofs rely on.)
	for uid, cov := range covered {
		if !cov {
			inStar[units[uid][len(units[uid])/2]] = true
		}
	}
}

// nearList holds the backbone vertices within ε steps of one backbone
// vertex as parallel slices sorted by vertex ID — a profiling-driven
// replacement for per-vertex maps, whose iteration and hashing dominated
// HL construction on dense graphs.
type nearList struct {
	v []int32 // local backbone IDs, ascending
	d []int32 // distances, parallel to v
}

// distTo returns the recorded distance to local ID b, or -1.
func (nl *nearList) distTo(b int32) int32 {
	i := sort.Search(len(nl.v), func(i int) bool { return nl.v[i] >= b })
	if i < len(nl.v) && nl.v[i] == b {
		return nl.d[i]
	}
	return -1
}

// assembleBackbone builds G* = (V*, E*): edges between backbone vertices at
// distance ≤ ε+1 in g, pruned by the strictly-closer-witness reduction.
func assembleBackbone(g *graph.Graph, inStar []bool, cfg Config) *Backbone {
	n := g.NumVertices()
	eps := int32(cfg.Epsilon)

	bb := &Backbone{InStar: inStar, LocalID: make([]int32, n)}
	for i := range bb.LocalID {
		bb.LocalID[i] = -1
	}
	for v := 0; v < n; v++ {
		if inStar[v] {
			bb.LocalID[v] = int32(len(bb.Vertices))
			bb.Vertices = append(bb.Vertices, graph.Vertex(v))
		}
	}

	// nearOut[a] = backbone vertices within ε forward steps of backbone
	// vertex a (by local ID), with distances; used by the reduction rule.
	nearOut := make([]nearList, len(bb.Vertices))
	vst := graph.NewVisitor(n)
	for li, a := range bb.Vertices {
		var nl nearList
		vst.BoundedBFS(g, a, graph.Forward, eps, func(w graph.Vertex, d int32) {
			if lw := bb.LocalID[w]; lw >= 0 && lw != int32(li) {
				nl.v = append(nl.v, lw)
				nl.d = append(nl.d, d)
			}
		})
		sortNearList(&nl)
		nearOut[li] = nl
	}

	builder := graph.NewBuilder(len(bb.Vertices))
	// minimax[b] (epoch-stamped) = min over witnesses x ∈ nearOut[a] of
	// max(d(a,x), d(x,b)); edge (a,b) is reducible iff minimax[b] < d(a,b).
	// Computing it in one sweep per source replaces the per-edge witness
	// scan, which was quadratic on hub-heavy graphs.
	minimax := make([]int32, len(bb.Vertices))
	stamp := make([]uint32, len(bb.Vertices))
	epoch := uint32(0)
	type cand struct {
		local int32
		dist  int32
	}
	var cands []cand
	for li, a := range bb.Vertices {
		epoch++
		src := nearOut[li]
		for i, x := range src.v {
			dax := src.d[i]
			if dax > eps {
				continue
			}
			wit := nearOut[x]
			for j, b := range wit.v {
				dxb := wit.d[j]
				if dxb > eps {
					continue
				}
				mm := dax
				if dxb > mm {
					mm = dxb
				}
				if stamp[b] != epoch || mm < minimax[b] {
					stamp[b] = epoch
					minimax[b] = mm
				}
			}
		}
		// Candidate targets: backbone vertices within ε+1 steps.
		cands = cands[:0]
		vst.BoundedBFS(g, a, graph.Forward, eps+1, func(w graph.Vertex, d int32) {
			if lw := bb.LocalID[w]; lw >= 0 && lw != int32(li) {
				cands = append(cands, cand{local: lw, dist: d})
			}
		})
		for _, c := range cands {
			if stamp[c.local] == epoch && minimax[c.local] < c.dist {
				continue // strictly closer witness chain exists
			}
			builder.AddEdge(graph.Vertex(li), graph.Vertex(c.local))
		}
	}
	bb.Star = builder.MustBuild()
	return bb
}

// sortNearList sorts a nearList by vertex ID (insertion order is BFS
// order, so nearly arbitrary).
func sortNearList(nl *nearList) {
	idx := make([]int, len(nl.v))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(i, j int) bool { return nl.v[idx[i]] < nl.v[idx[j]] })
	sv := make([]int32, len(nl.v))
	sd := make([]int32, len(nl.d))
	for o, i := range idx {
		sv[o] = nl.v[i]
		sd[o] = nl.d[i]
	}
	nl.v, nl.d = sv, sd
}
