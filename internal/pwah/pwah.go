// Package pwah implements a PWAH-8 style partitioned word-aligned hybrid
// compressed bitvector, following van Schaik & de Moor, "A memory efficient
// reachability data structure through bit vector compression" (SIGMOD 2011).
//
// Layout: each 64-bit word holds an 8-bit header (bits 56..63) and eight
// 7-bit partitions (partition i occupies bits [7i, 7i+7)). Header bit i
// classifies partition i:
//
//   - 0: literal — the partition's 7 bits are a verbatim block of the
//     bitmap (block b covers bit positions [7b, 7b+7)).
//   - 1: fill — bit 6 of the partition is the fill value (0 or 1) and bits
//     0..5 are a 6-bit count limb. Consecutive fill partitions with the same
//     fill value (across word boundaries) concatenate their limbs
//     little-endian into one run length, measured in 7-bit blocks.
//
// Trailing zero blocks are implicit: a vector logically extends with zeros
// forever, so queries past the encoded prefix return false. Membership is a
// sequential scan (no random access), exactly the access pattern whose cost
// the paper measures for the PW8 baseline.
package pwah

import (
	"fmt"
	"math/bits"
)

const (
	blockBits     = 7
	partsPerWord  = 8
	headerShift   = 56
	fillValueBit  = 1 << 6 // bit 6 of a fill partition holds the fill value
	limbMask      = 0x3F   // bits 0..5 of a fill partition hold a count limb
	literalAllOne = 0x7F
)

// Vector is an immutable compressed bitvector.
type Vector struct {
	words []uint64
	parts int // total number of partitions used (may not fill the last word)
}

// Words returns the number of 64-bit words in the encoding (the paper's
// size metric for PW8 counts these as two 32-bit integers each).
func (v *Vector) Words() int { return len(v.words) }

// RawWords exposes the encoded words for serialization. Shared storage;
// do not modify.
func (v *Vector) RawWords() []uint64 { return v.words }

// Parts returns the number of partitions used, the second half of the
// encoding's state (the last word may be partially filled).
func (v *Vector) Parts() int { return v.parts }

// FromEncoded reassembles a Vector from its serialized state. The words
// slice is aliased, not copied. parts must describe the same encoding the
// words came from; a mismatched value degrades answers but cannot read
// out of bounds (Contains iterates min(parts, 8*len(words)) partitions).
func FromEncoded(words []uint64, parts int) *Vector {
	if max := len(words) * partsPerWord; parts > max {
		parts = max
	}
	if parts < 0 {
		parts = 0
	}
	return &Vector{words: words, parts: parts}
}

// SizeInts reports the index-size contribution in 32-bit integer units,
// matching the "number of integers" metric of the paper's Figures 3 and 4.
func (v *Vector) SizeInts() int64 { return int64(len(v.words)) * 2 }

// builder appends partitions to an encoding under construction.
type builder struct {
	words []uint64
	parts int
}

func (b *builder) appendPartition(isFill bool, payload uint64) {
	slot := b.parts % partsPerWord
	if slot == 0 {
		b.words = append(b.words, 0)
	}
	w := &b.words[len(b.words)-1]
	*w |= (payload & literalAllOne) << (uint(slot) * blockBits)
	if isFill {
		*w |= 1 << (headerShift + uint(slot))
	}
	b.parts++
}

// appendFill emits a (possibly multi-limb) fill run of n blocks with the
// given fill value. A zero-length run emits nothing.
func (b *builder) appendFill(value bool, n uint64) {
	if n == 0 {
		return
	}
	var vbit uint64
	if value {
		vbit = fillValueBit
	}
	for n > 0 {
		limb := n & limbMask
		n >>= 6
		b.appendPartition(true, vbit|limb)
	}
}

func (b *builder) vector() *Vector {
	return &Vector{words: b.words, parts: b.parts}
}

// FromSorted builds a Vector from strictly increasing bit positions.
func FromSorted(positions []uint32) *Vector {
	var b builder
	var curBlock uint64 // index of block currently being assembled
	var payload uint64
	var zeroRun uint64 // pending zero-fill blocks before curBlock
	var onesRun uint64 // pending all-ones blocks before curBlock

	flushRuns := func() {
		if zeroRun > 0 {
			b.appendFill(false, zeroRun)
			zeroRun = 0
		}
		if onesRun > 0 {
			b.appendFill(true, onesRun)
			onesRun = 0
		}
	}
	flushBlock := func() {
		switch payload {
		case 0:
			// Nothing set: fold into a zero run (flush a ones run first to
			// preserve ordering).
			if onesRun > 0 {
				b.appendFill(true, onesRun)
				onesRun = 0
			}
			zeroRun++
		case literalAllOne:
			if zeroRun > 0 {
				b.appendFill(false, zeroRun)
				zeroRun = 0
			}
			onesRun++
		default:
			flushRuns()
			b.appendPartition(false, payload)
		}
		payload = 0
	}

	for i, p := range positions {
		if i > 0 && p <= positions[i-1] {
			panic(fmt.Sprintf("pwah: positions not strictly increasing at %d", i))
		}
		blk := uint64(p) / blockBits
		for curBlock < blk {
			flushBlock()
			// Fast-forward across whole-zero gaps without per-block work.
			if payload == 0 && curBlock+1 < blk {
				zeroGap := blk - curBlock - 1
				if onesRun > 0 {
					b.appendFill(true, onesRun)
					onesRun = 0
				}
				zeroRun += zeroGap
				curBlock = blk - 1
			}
			curBlock++
		}
		payload |= 1 << (uint64(p) % blockBits)
	}
	if payload != 0 {
		flushBlock()
	}
	flushRuns()
	return b.vector()
}

// Empty returns the vector with no set bits.
func Empty() *Vector { return &Vector{} }

// run is one decoded segment: count blocks, each with the same 7-bit
// payload shape (0, all-ones, or a single literal block with count == 1).
type run struct {
	count   uint64
	payload uint64 // 0x00, 0x7F for fills; arbitrary for literals
}

// iterator streams the runs of a Vector.
type iterator struct {
	v    *Vector
	part int
}

// next returns the next run, or ok=false at end of stream.
func (it *iterator) next() (run, bool) {
	if it.part >= it.v.parts {
		return run{}, false
	}
	word := it.v.words[it.part/partsPerWord]
	slot := uint(it.part % partsPerWord)
	isFill := word&(1<<(headerShift+slot)) != 0
	payload := (word >> (slot * blockBits)) & literalAllOne
	it.part++
	if !isFill {
		return run{count: 1, payload: payload}, true
	}
	value := payload & fillValueBit
	count := payload & limbMask
	shift := uint(6)
	// Merge consecutive same-value fill limbs (little-endian).
	for it.part < it.v.parts {
		w := it.v.words[it.part/partsPerWord]
		s := uint(it.part % partsPerWord)
		if w&(1<<(headerShift+s)) == 0 {
			break
		}
		p := (w >> (s * blockBits)) & literalAllOne
		if p&fillValueBit != value {
			break
		}
		count |= (p & limbMask) << shift
		shift += 6
		it.part++
	}
	fillPayload := uint64(0)
	if value != 0 {
		fillPayload = literalAllOne
	}
	return run{count: count, payload: fillPayload}, true
}

// Contains reports whether bit position p is set, by sequential scan.
func (v *Vector) Contains(p uint32) bool {
	target := uint64(p) / blockBits
	bit := uint64(p) % blockBits
	var block uint64
	it := iterator{v: v}
	for {
		r, ok := it.next()
		if !ok {
			return false // implicit trailing zeros
		}
		if block+r.count > target {
			return r.payload&(1<<bit) != 0
		}
		block += r.count
	}
}

// Count returns the number of set bits.
func (v *Vector) Count() int {
	total := 0
	it := iterator{v: v}
	for {
		r, ok := it.next()
		if !ok {
			return total
		}
		total += int(r.count) * bits.OnesCount64(r.payload&literalAllOne)
	}
}

// ForEach calls fn with every set bit position in increasing order.
func (v *Vector) ForEach(fn func(p uint32)) {
	var block uint64
	it := iterator{v: v}
	for {
		r, ok := it.next()
		if !ok {
			return
		}
		if r.payload != 0 {
			for c := uint64(0); c < r.count; c++ {
				base := (block + c) * blockBits
				pl := r.payload
				for pl != 0 {
					tz := bits.TrailingZeros64(pl)
					fn(uint32(base + uint64(tz)))
					pl &= pl - 1
				}
			}
		}
		block += r.count
	}
}

// Slice returns all set bits in increasing order.
func (v *Vector) Slice() []uint32 {
	out := make([]uint32, 0, v.Count())
	v.ForEach(func(p uint32) { out = append(out, p) })
	return out
}

// Or returns the compressed union of a and b, computed in the compressed
// domain (runs are merged without materializing a dense bitmap).
func Or(a, b *Vector) *Vector {
	var out builder
	ita, itb := iterator{v: a}, iterator{v: b}
	ra, oka := ita.next()
	rb, okb := itb.next()

	var pendZero, pendOnes uint64
	emitRun := func(payload, count uint64) {
		switch payload {
		case 0:
			if pendOnes > 0 {
				out.appendFill(true, pendOnes)
				pendOnes = 0
			}
			pendZero += count
		case literalAllOne:
			if pendZero > 0 {
				out.appendFill(false, pendZero)
				pendZero = 0
			}
			pendOnes += count
		default:
			if pendZero > 0 {
				out.appendFill(false, pendZero)
				pendZero = 0
			}
			if pendOnes > 0 {
				out.appendFill(true, pendOnes)
				pendOnes = 0
			}
			for ; count > 0; count-- {
				out.appendPartition(false, payload)
			}
		}
	}

	for oka || okb {
		switch {
		case oka && okb:
			n := ra.count
			if rb.count < n {
				n = rb.count
			}
			emitRun(ra.payload|rb.payload, n)
			ra.count -= n
			rb.count -= n
			if ra.count == 0 {
				ra, oka = ita.next()
			}
			if rb.count == 0 {
				rb, okb = itb.next()
			}
		case oka:
			emitRun(ra.payload, ra.count)
			ra, oka = ita.next()
		default:
			emitRun(rb.payload, rb.count)
			rb, okb = itb.next()
		}
	}
	// Trailing zeros are implicit — drop a pending zero run entirely.
	if pendOnes > 0 {
		out.appendFill(true, pendOnes)
	}
	return out.vector()
}
