package pwah

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"testing/quick"
)

// randomPositions returns count strictly increasing positions below max.
func randomPositions(rng *rand.Rand, count, max int) []uint32 {
	if count > max {
		count = max
	}
	seen := map[uint32]bool{}
	for len(seen) < count {
		seen[uint32(rng.Intn(max))] = true
	}
	out := make([]uint32, 0, count)
	for p := range seen {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func TestEmptyVector(t *testing.T) {
	v := Empty()
	if v.Count() != 0 || v.Words() != 0 || v.Contains(0) || v.Contains(1<<20) {
		t.Fatal("empty vector misbehaves")
	}
	if got := FromSorted(nil); got.Count() != 0 {
		t.Fatal("FromSorted(nil) not empty")
	}
}

func TestRoundTripSmall(t *testing.T) {
	cases := [][]uint32{
		{0},
		{6},
		{7},
		{0, 1, 2, 3, 4, 5, 6}, // exactly one all-ones block
		{0, 7, 14, 21},
		{1000000},            // huge leading zero fill (multi-limb)
		{0, 1000000},         // literal then giant gap
		{63, 64, 65, 66, 67}, // straddles word-ish boundaries
	}
	for _, positions := range cases {
		v := FromSorted(positions)
		if got := v.Slice(); !reflect.DeepEqual(got, positions) {
			t.Errorf("FromSorted(%v).Slice() = %v", positions, got)
		}
		if v.Count() != len(positions) {
			t.Errorf("Count(%v) = %d", positions, v.Count())
		}
	}
}

func TestContains(t *testing.T) {
	positions := []uint32{3, 9, 70, 500, 501, 502, 99999}
	v := FromSorted(positions)
	set := map[uint32]bool{}
	for _, p := range positions {
		set[p] = true
	}
	for p := uint32(0); p < 600; p++ {
		if v.Contains(p) != set[p] {
			t.Fatalf("Contains(%d) = %v, want %v", p, v.Contains(p), set[p])
		}
	}
	if !v.Contains(99999) || v.Contains(100000) || v.Contains(1<<25) {
		t.Error("tail membership wrong")
	}
}

func TestDenseRangeCompresses(t *testing.T) {
	// 70,000 consecutive bits = 10,000 all-ones blocks: must compress to a
	// handful of words, not thousands.
	positions := make([]uint32, 70000)
	for i := range positions {
		positions[i] = uint32(i)
	}
	v := FromSorted(positions)
	if v.Words() > 4 {
		t.Errorf("dense run used %d words, want <= 4", v.Words())
	}
	if v.Count() != 70000 {
		t.Errorf("Count = %d", v.Count())
	}
	if !v.Contains(69999) || v.Contains(70000) {
		t.Error("boundary membership wrong")
	}
}

func TestSparseHugeGapCompresses(t *testing.T) {
	v := FromSorted([]uint32{0, 1 << 30})
	if v.Words() > 3 {
		t.Errorf("sparse vector used %d words, want <= 3", v.Words())
	}
	if !v.Contains(0) || !v.Contains(1<<30) || v.Contains(1<<29) {
		t.Error("membership across giant gap wrong")
	}
}

func TestSizeInts(t *testing.T) {
	v := FromSorted([]uint32{0, 1 << 30})
	if v.SizeInts() != int64(v.Words())*2 {
		t.Errorf("SizeInts = %d, words = %d", v.SizeInts(), v.Words())
	}
}

func TestOrBasic(t *testing.T) {
	a := FromSorted([]uint32{1, 5, 100})
	b := FromSorted([]uint32{5, 6, 7, 2000})
	u := Or(a, b)
	want := []uint32{1, 5, 6, 7, 100, 2000}
	if got := u.Slice(); !reflect.DeepEqual(got, want) {
		t.Errorf("Or = %v, want %v", got, want)
	}
}

func TestOrWithEmpty(t *testing.T) {
	a := FromSorted([]uint32{10, 20})
	if got := Or(a, Empty()).Slice(); !reflect.DeepEqual(got, a.Slice()) {
		t.Errorf("Or(a, empty) = %v", got)
	}
	if got := Or(Empty(), a).Slice(); !reflect.DeepEqual(got, a.Slice()) {
		t.Errorf("Or(empty, a) = %v", got)
	}
	if got := Or(Empty(), Empty()); got.Count() != 0 {
		t.Errorf("Or(empty, empty) has %d bits", got.Count())
	}
}

// Property: Slice(FromSorted(p)) == p for random position sets.
func TestRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		positions := randomPositions(rng, rng.Intn(300), 1+rng.Intn(100000))
		v := FromSorted(positions)
		got := v.Slice()
		if len(got) != len(positions) {
			return false
		}
		for i := range got {
			if got[i] != positions[i] {
				return false
			}
		}
		return v.Count() == len(positions)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: Or agrees with set union; also checks commutativity.
func TestOrProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		max := 1 + rng.Intn(50000)
		pa := randomPositions(rng, rng.Intn(200), max)
		pb := randomPositions(rng, rng.Intn(200), max)
		union := map[uint32]bool{}
		for _, p := range pa {
			union[p] = true
		}
		for _, p := range pb {
			union[p] = true
		}
		want := make([]uint32, 0, len(union))
		for p := range union {
			want = append(want, p)
		}
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
		a, b := FromSorted(pa), FromSorted(pb)
		ab, ba := Or(a, b).Slice(), Or(b, a).Slice()
		return reflect.DeepEqual(ab, want) && reflect.DeepEqual(ba, want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: Contains agrees with a map for random queries.
func TestContainsProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		max := 1 + rng.Intn(20000)
		positions := randomPositions(rng, rng.Intn(150), max)
		set := map[uint32]bool{}
		for _, p := range positions {
			set[p] = true
		}
		v := FromSorted(positions)
		for q := 0; q < 200; q++ {
			p := uint32(rng.Intn(max + 100))
			if v.Contains(p) != set[p] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: repeated Or is idempotent (a | a == a as a set).
func TestOrIdempotentProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		positions := randomPositions(rng, rng.Intn(200), 30000)
		a := FromSorted(positions)
		return reflect.DeepEqual(Or(a, a).Slice(), a.Slice())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestFromSortedPanicsOnUnsorted(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic on unsorted input")
		}
	}()
	FromSorted([]uint32{5, 3})
}
