package pwah

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

// Property: Or is associative — (a|b)|c == a|(b|c) as bit sets.
func TestOrAssociativityProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		mk := func() *Vector {
			return FromSorted(randomPositions(rng, rng.Intn(120), 1+rng.Intn(20000)))
		}
		a, b, c := mk(), mk(), mk()
		left := Or(Or(a, b), c)
		right := Or(a, Or(b, c))
		return reflect.DeepEqual(left.Slice(), right.Slice())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: the encoding never wastes words — re-encoding a decoded vector
// yields the same (canonical) word count, i.e. FromSorted is a fixed point.
func TestCanonicalEncodingProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		v := FromSorted(randomPositions(rng, rng.Intn(200), 1+rng.Intn(50000)))
		re := FromSorted(v.Slice())
		return re.Words() == v.Words()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: Or output is canonical too (no less compact than re-encoding
// its own bits). Or may not always hit the minimal form for literals that
// become fills, so allow equality-or-smaller for the re-encoded form.
func TestOrOutputNearCanonicalProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := FromSorted(randomPositions(rng, rng.Intn(150), 1+rng.Intn(30000)))
		b := FromSorted(randomPositions(rng, rng.Intn(150), 1+rng.Intn(30000)))
		u := Or(a, b)
		canonical := FromSorted(u.Slice())
		return canonical.Words() <= u.Words()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// FuzzFromSortedContains cross-checks Contains against the input set for
// fuzz-discovered position patterns.
func FuzzFromSortedContains(f *testing.F) {
	f.Add(uint32(0), uint32(100), uint32(7000))
	f.Add(uint32(6), uint32(7), uint32(8))
	f.Add(uint32(1), uint32(1<<20), uint32(1<<21))
	f.Fuzz(func(t *testing.T, a, b, c uint32) {
		// Build a strictly increasing set from the three seeds.
		set := map[uint32]bool{a: true, b: true, c: true}
		var positions []uint32
		for _, p := range []uint32{a, b, c} {
			positions = append(positions, p)
		}
		// Sort and dedup.
		for i := 0; i < len(positions); i++ {
			for j := i + 1; j < len(positions); j++ {
				if positions[j] < positions[i] {
					positions[i], positions[j] = positions[j], positions[i]
				}
			}
		}
		dedup := positions[:0]
		for i, p := range positions {
			if i == 0 || p != positions[i-1] {
				dedup = append(dedup, p)
			}
		}
		v := FromSorted(dedup)
		for _, p := range []uint32{a, b, c, a + 1, b + 7, c + 63} {
			if v.Contains(p) != set[p] {
				t.Fatalf("Contains(%d) = %v, want %v (set %v)", p, v.Contains(p), set[p], dedup)
			}
		}
	})
}
