package core

import (
	"fmt"

	"repro/internal/blockio"
	"repro/internal/graph"
	"repro/internal/hoplabel"
	"repro/internal/index"
)

// The paper's two contribution methods register first (ranks 0 and 1) so
// every registry-ordered listing leads with them.
func init() {
	index.Register(index.Descriptor{
		Tag:  "DL",
		Rank: 0,
		Doc:  "Distribution-Labeling (§5): fastest construction, smallest labels, microsecond queries",
		Build: func(g *graph.Graph, opts index.BuildOptions) (index.Index, error) {
			return BuildDL(g, DLOptions{Seed: opts.Seed})
		},
		Encode: func(idx index.Index, w *blockio.Writer) error {
			d, ok := idx.(*DL)
			if !ok {
				return fmt.Errorf("core: DL codec got %T", idx)
			}
			d.labeling.Encode(w)
			w.Int32s(d.pos)
			return w.Err()
		},
		Decode: func(g *graph.Graph, r *blockio.Reader, _ index.BuildOptions) (index.Index, error) {
			l, err := hoplabel.Decode(r)
			if err != nil {
				return nil, err
			}
			if l.NumVertices() != g.NumVertices() {
				return nil, fmt.Errorf("core: DL labeling has %d vertices, graph has %d", l.NumVertices(), g.NumVertices())
			}
			pos, err := r.Int32s()
			if err != nil {
				return nil, err
			}
			if len(pos) != g.NumVertices() {
				return nil, fmt.Errorf("core: DL rank array has %d entries for %d vertices", len(pos), g.NumVertices())
			}
			return &DL{labeling: l, pos: pos}, nil
		},
	})
	index.Register(index.Descriptor{
		Tag:  "HL",
		Rank: 1,
		Doc:  "Hierarchical-Labeling (§4) on the recursive reachability-backbone hierarchy",
		Build: func(g *graph.Graph, opts index.BuildOptions) (index.Index, error) {
			return BuildHL(g, HLOptions{Epsilon: opts.Epsilon, CoreLimit: opts.CoreLimit})
		},
		Encode: func(idx index.Index, w *blockio.Writer) error {
			h, ok := idx.(*HL)
			if !ok {
				return fmt.Errorf("core: HL codec got %T", idx)
			}
			return EncodeHL(h, w)
		},
		Decode: func(g *graph.Graph, r *blockio.Reader, _ index.BuildOptions) (index.Index, error) {
			return DecodeHL(g, r)
		},
	})
}

// EncodeHL serializes an HL index; exported because the TF codec reuses
// it (TF is the ε = 1 special case of HL).
func EncodeHL(h *HL, w *blockio.Writer) error {
	h.labeling.Encode(w)
	w.Uint64(uint64(h.levels))
	w.Uint64(uint64(h.coreSize))
	w.Uint64(uint64(h.eps))
	return w.Err()
}

// DecodeHL restores an HL index written by EncodeHL.
func DecodeHL(g *graph.Graph, r *blockio.Reader) (*HL, error) {
	l, err := hoplabel.Decode(r)
	if err != nil {
		return nil, err
	}
	if l.NumVertices() != g.NumVertices() {
		return nil, fmt.Errorf("core: HL labeling has %d vertices, graph has %d", l.NumVertices(), g.NumVertices())
	}
	levels, err := r.Uint64()
	if err != nil {
		return nil, err
	}
	coreSize, err := r.Uint64()
	if err != nil {
		return nil, err
	}
	eps, err := r.Uint64()
	if err != nil {
		return nil, err
	}
	if levels > 1<<20 || coreSize > uint64(g.NumVertices()) || eps > 1<<20 {
		return nil, fmt.Errorf("core: implausible HL metadata (levels=%d core=%d eps=%d)", levels, coreSize, eps)
	}
	return &HL{labeling: l, levels: int(levels), coreSize: int(coreSize), eps: int(eps)}, nil
}
