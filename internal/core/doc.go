// Package core implements the two labeling algorithms that are the
// contribution of Jin & Wang, "Simple, Fast, and Scalable Reachability
// Oracle" (VLDB 2013):
//
//   - Distribution-Labeling (DL, §5): vertices are ranked by
//     (|Nout|+1)·(|Nin|+1); each hop is distributed in rank order to the
//     Lout/Lin sets of exactly the vertices whose coverage it extends,
//     via pruned reverse and forward BFS (Algorithm 2). The labeling is
//     complete (Theorem 3) and non-redundant (Theorem 4).
//
//   - Hierarchical-Labeling (HL, §4): a recursive one-side reachability
//     backbone decomposition assigns every vertex a level; the small core
//     graph is labeled directly, then labels broadcast downward level by
//     level using the ⌈ε/2⌉-neighborhoods and backbone vertex sets of
//     Formulas 4 and 5 (Algorithm 1).
//
// Both produce a hoplabel.Labeling: u reaches v iff Lout(u) ∩ Lin(v) ≠ ∅,
// answered by sorted-merge intersection. Construction never materializes a
// transitive closure — the property that makes these algorithms scale where
// classic set-cover 2-hop labeling does not.
package core
