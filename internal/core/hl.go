package core

import (
	"fmt"
	"slices"
	"sort"

	"repro/internal/backbone"
	"repro/internal/graph"
	"repro/internal/hoplabel"
	"repro/internal/order"
)

// HLOptions configures Hierarchical-Labeling.
type HLOptions struct {
	// Epsilon is the backbone locality threshold; the paper uses 2.
	// Epsilon = 1 yields the TF-label special case (§2.4).
	Epsilon int
	// CoreLimit stops decomposition once the core has at most this many
	// vertices (paper §4.2 suggests ~10K; default 1024 suits our scale).
	CoreLimit int
	// MaxLevels bounds the hierarchy height (default 10, per §4.2).
	MaxLevels int
	// HubCap forwards to backbone extraction.
	HubCap int
}

func (o HLOptions) withDefaults() HLOptions {
	if o.Epsilon <= 0 {
		o.Epsilon = 2
	}
	if o.CoreLimit <= 0 {
		o.CoreLimit = 1024
	}
	if o.MaxLevels <= 0 {
		o.MaxLevels = 10
	}
	return o
}

// HL is the Hierarchical-Labeling reachability oracle. Hops are original
// vertex IDs.
type HL struct {
	labeling *hoplabel.Labeling
	levels   int
	coreSize int
	eps      int
}

// BuildHL constructs the Hierarchical-Labeling oracle for DAG g
// (Algorithm 1 of the paper): decompose, label the core, then broadcast
// labels from level h-1 down to level 0 via Formulas 4 and 5.
func BuildHL(g *graph.Graph, opts HLOptions) (*HL, error) {
	if !graph.IsDAG(g) {
		return nil, fmt.Errorf("core: HL requires a DAG; condense the input first")
	}
	opts = opts.withDefaults()
	hier := backbone.Decompose(g, backbone.DecomposeConfig{
		Backbone:  backbone.Config{Epsilon: opts.Epsilon, HubCap: opts.HubCap},
		CoreLimit: opts.CoreLimit,
		MaxLevels: opts.MaxLevels,
	})

	n := g.NumVertices()
	builder := hoplabel.NewBuilder(n)

	// Label the core graph. The paper permits any complete labeling here
	// (Formula 3 or an existing 2-hop algorithm); we use DL, which is
	// complete by Theorem 3 and keeps the build self-contained. Core label
	// entries are remapped from core-rank positions to original vertex IDs.
	coreLv := hier.Core()
	if coreLv.G.NumVertices() > 0 {
		coreOrder := order.ByDegreeProduct(coreLv.G)
		coreBuilder, _ := distribute(coreLv.G, coreOrder)
		rankToOrig := make([]uint32, len(coreOrder))
		for rank, local := range coreOrder {
			rankToOrig[rank] = uint32(coreLv.ToOrig[local])
		}
		for local := 0; local < coreLv.G.NumVertices(); local++ {
			orig := uint32(coreLv.ToOrig[local])
			builder.SetOut(orig, remapSorted(coreBuilder.Out(uint32(local)), rankToOrig))
			builder.SetIn(orig, remapSorted(coreBuilder.In(uint32(local)), rankToOrig))
		}
	}

	// Level-wise labeling from h-1 down to 0 (Algorithm 1 lines 4-10).
	halfEps := int32((opts.Epsilon + 1) / 2) // ⌈ε/2⌉
	vst := graph.NewVisitor(n)
	for i := len(hier.Levels) - 2; i >= 0; i-- {
		lv := hier.Levels[i]
		bout, bin := backbone.Sets(lv.G, lv.InNext, opts.Epsilon)
		for local := 0; local < lv.G.NumVertices(); local++ {
			if lv.InNext[local] {
				continue // labeled at a higher level
			}
			orig := uint32(lv.ToOrig[local])

			// Formula 4: Lout(v) = N^⌈ε/2⌉out(v|Gi) ∪ ⋃ Lout(Bεout).
			// Backbone labels are already sorted, so union by k-way merge
			// instead of concat-and-sort — this is HL's dominant cost
			// (§4.2: "the last component typically dominates").
			var hood []uint32
			vst.BoundedBFS(lv.G, graph.Vertex(local), graph.Forward, halfEps,
				func(w graph.Vertex, _ int32) {
					hood = append(hood, uint32(lv.ToOrig[w]))
				})
			lists := make([][]uint32, 0, len(bout[local])+1)
			lists = append(lists, sortDedup(hood))
			for _, u := range bout[local] {
				lists = append(lists, builder.Out(uint32(lv.ToOrig[u])))
			}
			builder.SetOut(orig, mergeSortedLists(lists))

			// Formula 5: Lin(v) = N^⌈ε/2⌉in(v|Gi) ∪ ⋃ Lin(Bεin).
			hood = nil
			vst.BoundedBFS(lv.G, graph.Vertex(local), graph.Backward, halfEps,
				func(w graph.Vertex, _ int32) {
					hood = append(hood, uint32(lv.ToOrig[w]))
				})
			lists = lists[:0]
			lists = append(lists, sortDedup(hood))
			for _, u := range bin[local] {
				lists = append(lists, builder.In(uint32(lv.ToOrig[u])))
			}
			builder.SetIn(orig, mergeSortedLists(lists))
		}
	}

	return &HL{
		labeling: builder.Freeze(),
		levels:   len(hier.Levels),
		coreSize: coreLv.G.NumVertices(),
		eps:      opts.Epsilon,
	}, nil
}

// remapSorted maps rank-position label entries to original vertex IDs and
// re-sorts (the mapping is not monotone).
func remapSorted(entries []uint32, rankToOrig []uint32) []uint32 {
	out := make([]uint32, len(entries))
	for i, e := range entries {
		out[i] = rankToOrig[e]
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// sortDedup sorts ascending and removes duplicates in place. Labels are
// deduplicated eagerly because lower levels union them again (Formulas 4
// and 5); letting duplicates accumulate would compound multiplicatively.
func sortDedup(s []uint32) []uint32 {
	if len(s) < 2 {
		return s
	}
	slices.Sort(s)
	w := 1
	for i := 1; i < len(s); i++ {
		if s[i] != s[i-1] {
			s[w] = s[i]
			w++
		}
	}
	return s[:w]
}

// mergeSortedLists unions ascending deduplicated lists into one ascending
// deduplicated list by pairwise merging (shortest-first would be marginal;
// sequential suffices because list counts are small — |Bε| + 1).
func mergeSortedLists(lists [][]uint32) []uint32 {
	switch len(lists) {
	case 0:
		return nil
	case 1:
		out := make([]uint32, len(lists[0]))
		copy(out, lists[0])
		return out
	}
	acc := mergeTwo(lists[0], lists[1])
	for _, l := range lists[2:] {
		acc = mergeTwo(acc, l)
	}
	return acc
}

// mergeTwo merges two ascending deduplicated lists into a fresh slice.
func mergeTwo(a, b []uint32) []uint32 {
	out := make([]uint32, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			out = append(out, a[i])
			i++
		case a[i] > b[j]:
			out = append(out, b[j])
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	out = append(out, a[i:]...)
	out = append(out, b[j:]...)
	return out
}

// Name implements the Index interface.
func (h *HL) Name() string { return "HL" }

// Reachable answers u -> v by label intersection.
func (h *HL) Reachable(u, v uint32) bool { return h.labeling.Reachable(u, v) }

// SizeInts returns Σ(|Lout|+|Lin|) in 32-bit integers.
func (h *HL) SizeInts() int64 { return h.labeling.SizeInts() }

// Labeling exposes the underlying labeling (hops are original vertex IDs).
func (h *HL) Labeling() *hoplabel.Labeling { return h.labeling }

// Levels returns the hierarchy height used (h+1 graphs including G0).
func (h *HL) Levels() int { return h.levels }

// CoreSize returns the vertex count of the core graph Gh.
func (h *HL) CoreSize() int { return h.coreSize }

// Epsilon returns the locality threshold the hierarchy was built with.
func (h *HL) Epsilon() int { return h.eps }
