package core

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/hoplabel"
	"repro/internal/order"
)

// DLOptions configures Distribution-Labeling.
type DLOptions struct {
	// Order overrides the hop distribution order (highest importance
	// first). Nil selects the paper's degree-product rank.
	Order []graph.Vertex
	// Strategy selects a built-in order when Order is nil. Empty means
	// order.DegreeProduct.
	Strategy order.Strategy
	// Seed feeds the random order strategy (ablation only).
	Seed int64
}

// DL is the Distribution-Labeling reachability oracle.
type DL struct {
	labeling *hoplabel.Labeling
	// pos maps a vertex to its rank position; label entries are rank
	// positions, which keeps per-vertex labels sorted for free during
	// construction (hops arrive in increasing rank).
	pos []int32
}

// BuildDL constructs the Distribution-Labeling oracle for DAG g
// (Algorithm 2 of the paper).
func BuildDL(g *graph.Graph, opts DLOptions) (*DL, error) {
	if !graph.IsDAG(g) {
		return nil, fmt.Errorf("core: DL requires a DAG; condense the input first")
	}
	ord := opts.Order
	if ord == nil {
		strategy := opts.Strategy
		if strategy == "" {
			strategy = order.DegreeProduct
		}
		ord = order.ByStrategy(g, strategy, opts.Seed)
	}
	if len(ord) != g.NumVertices() {
		return nil, fmt.Errorf("core: order has %d entries for %d vertices", len(ord), g.NumVertices())
	}
	builder, pos := distribute(g, ord)
	return &DL{labeling: builder.Freeze(), pos: pos}, nil
}

// distribute runs the hop-distribution loop and returns the label builder
// (entries are rank positions) plus the vertex→rank mapping.
func distribute(g *graph.Graph, ord []graph.Vertex) (*hoplabel.Builder, []int32) {
	n := g.NumVertices()
	builder := hoplabel.NewBuilder(n)
	pos := order.PositionOf(ord)
	vst := graph.NewVisitor(n)

	for i, vi := range ord {
		hop := uint32(i)
		liIn := builder.In(uint32(vi))
		// Reverse BFS: add hop to Lout(u) for u ∈ TC⁻¹(vi) \ TC⁻¹(X)
		// (Theorem 2); prune u — and its ancestors — once the existing
		// labels already connect u to vi.
		vst.BFS(g, vi, graph.Backward, func(u graph.Vertex, _ int32) bool {
			if u != vi && hoplabel.IntersectsSorted(builder.Out(uint32(u)), liIn) {
				return false
			}
			builder.AddOut(uint32(u), hop)
			return true
		})
		liOut := builder.Out(uint32(vi))
		// Forward BFS: add hop to Lin(w) for w ∈ TC(vi) \ TC(Y).
		vst.BFS(g, vi, graph.Forward, func(w graph.Vertex, _ int32) bool {
			if w != vi && hoplabel.IntersectsSorted(builder.In(uint32(w)), liOut) {
				return false
			}
			builder.AddIn(uint32(w), hop)
			return true
		})
	}
	return builder, pos
}

// Name implements the Index interface.
func (d *DL) Name() string { return "DL" }

// Reachable answers u -> v by label intersection.
func (d *DL) Reachable(u, v uint32) bool { return d.labeling.Reachable(u, v) }

// SizeInts returns Σ(|Lout|+|Lin|) in 32-bit integers.
func (d *DL) SizeInts() int64 { return d.labeling.SizeInts() }

// Labeling exposes the underlying labeling (hops are rank positions).
func (d *DL) Labeling() *hoplabel.Labeling { return d.labeling }

// RankOf returns the rank position of vertex v in the distribution order.
func (d *DL) RankOf(v uint32) int32 { return d.pos[v] }
