package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/hoplabel"
	"repro/internal/order"
	"repro/internal/tc"
)

// families returns a representative small DAG per structural family.
func families(seed int64) map[string]*graph.Graph {
	return map[string]*graph.Graph{
		"uniform":  gen.UniformDAG(120, 320, seed),
		"tree":     gen.TreeDAG(120, 0.15, 0, seed),
		"citation": gen.CitationDAG(120, 3, 0.5, seed),
		"chain":    gen.ChainDAG(120, 5, 0.2, seed),
		"xml":      gen.XMLDAG(120, 4, 0.2, seed),
		"forest":   gen.ForestDAG(120, 2, seed),
		"powerlaw": gen.PowerLawDAG(120, 320, 1.4, seed),
	}
}

// oracle abstracts HL/DL for shared exhaustive checking.
type oracle interface {
	Reachable(u, v uint32) bool
	Name() string
	SizeInts() int64
}

// checkExhaustive compares an oracle against full-BFS ground truth on every
// ordered pair.
func checkExhaustive(t *testing.T, tag string, g *graph.Graph, o oracle) {
	t.Helper()
	closure := tc.Closure(g)
	n := g.NumVertices()
	for u := 0; u < n; u++ {
		for v := 0; v < n; v++ {
			want := closure[u].Get(v)
			if got := o.Reachable(uint32(u), uint32(v)); got != want {
				t.Fatalf("%s/%s: Reachable(%d,%d) = %v, want %v", tag, o.Name(), u, v, got, want)
			}
		}
	}
}

func TestDLCompleteAcrossFamilies(t *testing.T) {
	for name, g := range families(17) {
		dl, err := BuildDL(g, DLOptions{})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		checkExhaustive(t, name, g, dl)
	}
}

func TestHLCompleteAcrossFamilies(t *testing.T) {
	for name, g := range families(23) {
		hl, err := BuildHL(g, HLOptions{Epsilon: 2, CoreLimit: 16})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		checkExhaustive(t, name, g, hl)
	}
}

func TestHLEpsilonVariants(t *testing.T) {
	g := gen.CitationDAG(150, 3, 0.5, 31)
	for _, eps := range []int{1, 2, 3} {
		hl, err := BuildHL(g, HLOptions{Epsilon: eps, CoreLimit: 20})
		if err != nil {
			t.Fatalf("eps=%d: %v", eps, err)
		}
		checkExhaustive(t, "citation", g, hl)
		if hl.Levels() < 2 {
			t.Errorf("eps=%d: no decomposition (%d levels)", eps, hl.Levels())
		}
	}
}

func TestDLOrderStrategiesStillComplete(t *testing.T) {
	g := gen.UniformDAG(100, 260, 41)
	for _, s := range []order.Strategy{order.DegreeProduct, order.Topo, order.RandomOrder, order.ReverseDegreeProduct} {
		dl, err := BuildDL(g, DLOptions{Strategy: s, Seed: 5})
		if err != nil {
			t.Fatalf("%s: %v", s, err)
		}
		checkExhaustive(t, string(s), g, dl)
	}
}

func TestDLRejectsCycle(t *testing.T) {
	g := graph.MustFromEdges(2, [][2]graph.Vertex{{0, 1}, {1, 0}})
	if _, err := BuildDL(g, DLOptions{}); err == nil {
		t.Fatal("DL accepted a cyclic graph")
	}
	if _, err := BuildHL(g, HLOptions{}); err == nil {
		t.Fatal("HL accepted a cyclic graph")
	}
}

func TestDLRejectsBadOrder(t *testing.T) {
	g := gen.UniformDAG(10, 20, 1)
	if _, err := BuildDL(g, DLOptions{Order: []graph.Vertex{0, 1}}); err == nil {
		t.Fatal("short order accepted")
	}
}

func TestEmptyAndSingletonGraphs(t *testing.T) {
	empty := graph.NewBuilder(0).MustBuild()
	if dl, err := BuildDL(empty, DLOptions{}); err != nil || dl.SizeInts() != 0 {
		t.Fatalf("empty DL: %v", err)
	}
	if hl, err := BuildHL(empty, HLOptions{}); err != nil || hl.SizeInts() != 0 {
		t.Fatalf("empty HL: %v", err)
	}
	single := graph.NewBuilder(1).MustBuild()
	dl, err := BuildDL(single, DLOptions{})
	if err != nil || !dl.Reachable(0, 0) {
		t.Fatal("singleton DL broken")
	}
	hl, err := BuildHL(single, HLOptions{})
	if err != nil || !hl.Reachable(0, 0) {
		t.Fatal("singleton HL broken")
	}
}

// TestDLNonRedundant verifies Theorem 4: removing any single hop from any
// label breaks completeness.
func TestDLNonRedundant(t *testing.T) {
	g := gen.UniformDAG(40, 90, 53)
	dl, err := BuildDL(g, DLOptions{})
	if err != nil {
		t.Fatal(err)
	}
	l := dl.Labeling()
	closure := tc.Closure(g)
	n := g.NumVertices()

	// isCompleteWithout checks completeness when hop `hop` is hidden from
	// Lout(skipV) (dir=0) or Lin(skipV) (dir=1).
	filtered := func(s []uint32, hop uint32) []uint32 {
		out := make([]uint32, 0, len(s)-1)
		for _, x := range s {
			if x != hop {
				out = append(out, x)
			}
		}
		return out
	}
	// Completeness here includes self pairs (u == v): the labeling covers
	// them via each vertex's own hop (Reachable's u == v shortcut is just an
	// optimization), and Theorem 4's uniquely-covered pair for a vertex's
	// own hop in its own label IS the self pair.
	completeWithout := func(skipV uint32, hop uint32, dir int) bool {
		for u := 0; u < n; u++ {
			for v := 0; v < n; v++ {
				if !closure[u].Get(v) {
					continue
				}
				lo, li := l.Out(uint32(u)), l.In(uint32(v))
				if dir == 0 && uint32(u) == skipV {
					lo = filtered(lo, hop)
				}
				if dir == 1 && uint32(v) == skipV {
					li = filtered(li, hop)
				}
				if !hoplabel.IntersectsSorted(lo, li) {
					return false
				}
			}
		}
		return true
	}

	// Check a sample of (vertex, hop) removals in both directions; each must
	// break completeness. (Exhaustive removal is O(n^4); sampling keeps the
	// test fast while still exercising Theorem 4 broadly.)
	rng := rand.New(rand.NewSource(3))
	checked := 0
	for checked < 60 {
		v := uint32(rng.Intn(n))
		dir := rng.Intn(2)
		var lab []uint32
		if dir == 0 {
			lab = l.Out(v)
		} else {
			lab = l.In(v)
		}
		if len(lab) == 0 {
			continue
		}
		hop := lab[rng.Intn(len(lab))]
		if completeWithout(v, hop, dir) {
			t.Fatalf("hop %d in label(dir=%d) of vertex %d is redundant", hop, dir, v)
		}
		checked++
	}
}

// TestDLSmallerThanHL reflects the paper's finding that DL labels are
// consistently compact — allow slack, but DL should never be drastically
// larger than HL on these families.
func TestDLCompactness(t *testing.T) {
	for name, g := range families(71) {
		dl, err := BuildDL(g, DLOptions{})
		if err != nil {
			t.Fatal(err)
		}
		hl, err := BuildHL(g, HLOptions{CoreLimit: 16})
		if err != nil {
			t.Fatal(err)
		}
		if dl.SizeInts() > 2*hl.SizeInts()+int64(4*g.NumVertices()) {
			t.Errorf("%s: DL size %d far exceeds HL size %d", name, dl.SizeInts(), hl.SizeInts())
		}
	}
}

func TestDLDeterministic(t *testing.T) {
	g := gen.CitationDAG(200, 3, 0.5, 13)
	a, _ := BuildDL(g, DLOptions{})
	b, _ := BuildDL(g, DLOptions{})
	if a.SizeInts() != b.SizeInts() {
		t.Fatal("DL not deterministic")
	}
	la, lb := a.Labeling(), b.Labeling()
	for v := 0; v < g.NumVertices(); v++ {
		ao, bo := la.Out(uint32(v)), lb.Out(uint32(v))
		if len(ao) != len(bo) {
			t.Fatal("label sizes differ between runs")
		}
		for i := range ao {
			if ao[i] != bo[i] {
				t.Fatal("labels differ between runs")
			}
		}
	}
}

func TestDLRankOf(t *testing.T) {
	g := gen.UniformDAG(50, 120, 3)
	dl, _ := BuildDL(g, DLOptions{})
	seen := make([]bool, g.NumVertices())
	for v := 0; v < g.NumVertices(); v++ {
		r := dl.RankOf(uint32(v))
		if r < 0 || int(r) >= g.NumVertices() || seen[r] {
			t.Fatalf("RankOf(%d) = %d invalid", v, r)
		}
		seen[r] = true
	}
}

func TestHLReportsStructure(t *testing.T) {
	g := gen.TreeDAG(2000, 0.1, 0, 5)
	hl, err := BuildHL(g, HLOptions{CoreLimit: 64})
	if err != nil {
		t.Fatal(err)
	}
	if hl.Levels() < 2 {
		t.Errorf("expected a real hierarchy, got %d levels", hl.Levels())
	}
	if hl.CoreSize() >= g.NumVertices() {
		t.Errorf("core size %d did not shrink", hl.CoreSize())
	}
	if hl.Name() != "HL" {
		t.Errorf("Name = %q", hl.Name())
	}
}

// Property: both oracles agree with BFS on random pairs over random DAGs.
func TestOraclesAgreeWithBFSProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 30 + rng.Intn(80)
		g := gen.UniformDAG(n, n*3, seed)
		dl, err := BuildDL(g, DLOptions{})
		if err != nil {
			return false
		}
		hl, err := BuildHL(g, HLOptions{CoreLimit: 10})
		if err != nil {
			return false
		}
		vst := graph.NewVisitor(n)
		for q := 0; q < 150; q++ {
			u := graph.Vertex(rng.Intn(n))
			v := graph.Vertex(rng.Intn(n))
			want := vst.Reachable(g, u, v)
			if dl.Reachable(uint32(u), uint32(v)) != want {
				return false
			}
			if hl.Reachable(uint32(u), uint32(v)) != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// TestSelfHopInvariant: every vertex can answer reachability to itself via
// its own labels (the paper's "each vertex records itself" convention holds
// for HL; DL guarantees it via the distribution of the vertex's own hop).
func TestSelfHopInvariant(t *testing.T) {
	g := gen.XMLDAG(200, 5, 0.2, 2)
	dl, _ := BuildDL(g, DLOptions{})
	hl, _ := BuildHL(g, HLOptions{CoreLimit: 16})
	for v := uint32(0); int(v) < g.NumVertices(); v++ {
		if !dl.Reachable(v, v) || !hl.Reachable(v, v) {
			t.Fatalf("self reachability broken at %d", v)
		}
	}
	// HL labels each vertex with itself explicitly.
	l := hl.Labeling()
	for v := uint32(0); int(v) < g.NumVertices(); v++ {
		found := false
		for _, h := range l.Out(v) {
			if h == v {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("HL Lout(%d) missing self hop: %v", v, l.Out(v))
		}
	}
}
