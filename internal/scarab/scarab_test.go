package scarab

import (
	"testing"

	"repro/internal/gen"
	"repro/internal/grail"
	"repro/internal/graph"
	"repro/internal/index"
	"repro/internal/pathtree"
	"repro/internal/testutil"
)

func grailInner(star *graph.Graph) (index.Index, error) {
	return grail.Build(star, grail.Options{Seed: 1}), nil
}

func pathTreeInner(star *graph.Graph) (index.Index, error) {
	return pathtree.Build(star, pathtree.Options{})
}

func TestScarabGrailExhaustive(t *testing.T) {
	for name, g := range testutil.Families(59) {
		s, err := Build(g, "GL*", grailInner)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		testutil.CheckExhaustive(t, name, g, s)
	}
}

func TestScarabPathTreeExhaustive(t *testing.T) {
	for name, g := range testutil.Families(61) {
		s, err := Build(g, "PT*", pathTreeInner)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		testutil.CheckExhaustive(t, name, g, s)
	}
}

func TestScarabShrinksInnerProblem(t *testing.T) {
	g := gen.TreeDAG(5000, 0.1, 0, 4)
	s, err := Build(g, "GL*", grailInner)
	if err != nil {
		t.Fatal(err)
	}
	if s.BackboneSize() >= g.NumVertices()/2 {
		t.Errorf("backbone %d of %d vertices: no real reduction", s.BackboneSize(), g.NumVertices())
	}
	testutil.CheckRandom(t, "tree5k", g, s, 500, 3)
}

func TestScarabEps1(t *testing.T) {
	g := gen.UniformDAG(300, 800, 9)
	s, err := BuildEps(g, "GL*", 1, grailInner)
	if err != nil {
		t.Fatal(err)
	}
	testutil.CheckExhaustive(t, "uniform-eps1", g, s)
}

func TestScarabRejectsCycle(t *testing.T) {
	g := graph.MustFromEdges(2, [][2]graph.Vertex{{0, 1}, {1, 0}})
	if _, err := Build(g, "GL*", grailInner); err == nil {
		t.Fatal("cycle accepted")
	}
}
