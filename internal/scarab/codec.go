package scarab

import (
	"repro/internal/blockio"
	"repro/internal/grail"
	"repro/internal/graph"
	"repro/internal/index"
	"repro/internal/pathtree"
)

// The SCARAB wrappers use rebuild codecs: their state is a backbone
// subgraph plus an inner index over it, and both are cheap, deterministic
// functions of the graph and the build options the snapshot header
// already records — re-extracting the backbone on load is far simpler
// than a second level of nested index serialization, and the backbone is
// a small fraction of the graph by construction.
func init() {
	index.Register(index.Descriptor{
		Tag:     "GL*",
		Rank:    10,
		Doc:     "SCARAB: GRAIL on the ε = 2 reachability backbone",
		Rebuild: true,
		Build:   buildGL,
		Encode:  func(_ index.Index, _ *blockio.Writer) error { return nil },
		Decode: func(g *graph.Graph, _ *blockio.Reader, opts index.BuildOptions) (index.Index, error) {
			return buildGL(g, opts)
		},
	})
	index.Register(index.Descriptor{
		Tag:     "PT*",
		Rank:    11,
		Doc:     "SCARAB: PathTree on the ε = 2 reachability backbone",
		Rebuild: true,
		Build:   buildPT,
		Encode:  func(_ index.Index, _ *blockio.Writer) error { return nil },
		Decode: func(g *graph.Graph, _ *blockio.Reader, opts index.BuildOptions) (index.Index, error) {
			return buildPT(g, opts)
		},
	})
}

func buildGL(g *graph.Graph, opts index.BuildOptions) (index.Index, error) {
	return Build(g, "GL*", func(star *graph.Graph) (index.Index, error) {
		return grail.Build(star, grail.Options{Traversals: opts.Traversals, Seed: opts.Seed}), nil
	})
}

func buildPT(g *graph.Graph, opts index.BuildOptions) (index.Index, error) {
	return Build(g, "PT*", func(star *graph.Graph) (index.Index, error) {
		return pathtree.Build(star, pathtree.Options{MaxEntries: opts.MaxPTEntries})
	})
}
