// Package scarab implements the SCARAB framework (Jin, Ruan, Dey & Yu,
// SIGMOD 2012): scale an existing reachability index by building it only
// on the ε = 2 one-side reachability backbone and answering queries
// through local entry/exit backbone vertices. The paper's evaluation
// includes two instances — GRAIL* (GL*) and PATH-TREE* (PT*) — and shows
// the characteristic trade: smaller inner index, but queries two to three
// times slower than the raw inner method because of the local ε-step BFS
// on both sides.
package scarab

import (
	"fmt"
	"sync"

	"repro/internal/backbone"
	"repro/internal/graph"
	"repro/internal/index"
)

// Scarab wraps an inner index built on the reachability backbone.
type Scarab struct {
	g     *graph.Graph
	bb    *backbone.Backbone
	inner index.Index
	name  string
	eps   int32
	// pool holds per-query traversal scratch so Reachable is safe for
	// concurrent use (the inner index must be too; all in-repo ones are).
	pool sync.Pool // *scarabScratch
}

// scarabScratch is the per-query local-BFS state.
type scarabScratch struct {
	fwd, bwd       *graph.Visitor
	entries, exits []int32
}

// InnerBuilder constructs an index for the backbone graph.
type InnerBuilder func(star *graph.Graph) (index.Index, error)

// Build extracts the ε = 2 backbone of g, builds inner on it, and returns
// the SCARAB-wrapped index. name should follow the paper's convention
// (inner name + "*").
func Build(g *graph.Graph, name string, inner InnerBuilder) (*Scarab, error) {
	return BuildEps(g, name, 2, inner)
}

// BuildEps is Build with an explicit locality threshold.
func BuildEps(g *graph.Graph, name string, eps int, inner InnerBuilder) (*Scarab, error) {
	if !graph.IsDAG(g) {
		return nil, fmt.Errorf("scarab: input must be a DAG")
	}
	bb := backbone.Extract(g, backbone.Config{Epsilon: eps})
	in, err := inner(bb.Star)
	if err != nil {
		return nil, fmt.Errorf("scarab: building inner index: %w", err)
	}
	s := &Scarab{g: g, bb: bb, inner: in, name: name, eps: int32(eps)}
	n := g.NumVertices()
	s.pool.New = func() any {
		return &scarabScratch{fwd: graph.NewVisitor(n), bwd: graph.NewVisitor(n)}
	}
	return s, nil
}

// Name implements index.Index.
func (s *Scarab) Name() string { return s.name }

// Reachable answers u -> v: collect u's local outgoing backbone entries
// and v's local incoming exits with ε-step BFS (answering directly if v or
// u is seen locally), then probe the inner index for any entry→exit pair.
// Safe for concurrent use.
func (s *Scarab) Reachable(u, v uint32) bool {
	if u == v {
		return true
	}
	sc := s.pool.Get().(*scarabScratch)
	defer s.pool.Put(sc)
	found := false
	sc.entries = sc.entries[:0]
	sc.fwd.BoundedBFS(s.g, graph.Vertex(u), graph.Forward, s.eps, func(w graph.Vertex, _ int32) {
		if uint32(w) == v {
			found = true
		}
		if id := s.bb.LocalID[w]; id >= 0 {
			sc.entries = append(sc.entries, id)
		}
	})
	if found {
		return true // v is local to u
	}
	if len(sc.entries) == 0 {
		return false // no backbone entry within ε: all of TC(u) is local
	}
	sc.exits = sc.exits[:0]
	sc.bwd.BoundedBFS(s.g, graph.Vertex(v), graph.Backward, s.eps, func(w graph.Vertex, _ int32) {
		if id := s.bb.LocalID[w]; id >= 0 {
			sc.exits = append(sc.exits, id)
		}
	})
	if len(sc.exits) == 0 {
		return false
	}
	for _, e := range sc.entries {
		for _, x := range sc.exits {
			if e == x || s.inner.Reachable(uint32(e), uint32(x)) {
				return true
			}
		}
	}
	return false
}

// SizeInts is the inner index size plus the backbone membership arrays.
func (s *Scarab) SizeInts() int64 {
	return s.inner.SizeInts() + int64(len(s.bb.LocalID))
}

// BackboneSize returns |V*|, for reporting.
func (s *Scarab) BackboneSize() int { return len(s.bb.Vertices) }
