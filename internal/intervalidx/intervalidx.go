// Package intervalidx implements the interval-compressed transitive
// closure in the style of Nuutila (1995) — the "INT" baseline, which the
// paper calls one of the fastest reachability methods on small graphs.
//
// Vertices are renumbered by DFS post-order, which makes the reachable set
// of a vertex in tree-like DAGs a handful of contiguous runs; TC(u) is
// stored as a sorted interval set over that numbering and built by merging
// successor sets in reverse topological order. Query is a binary search.
// On graphs whose closures do not compress (dense citation networks), the
// index blows up — exactly the scalability failure Table 7 reports.
package intervalidx

import (
	"repro/internal/graph"
	"repro/internal/tc"
)

// Interval is the INT reachability index.
type Interval struct {
	// po[v] is v's DFS post-order number.
	po []uint32
	// reach[v] is TC(v) (v included) as intervals over post-order numbers.
	reach []tc.IntervalSet
}

// Build constructs the interval index for DAG g.
func Build(g *graph.Graph) *Interval {
	n := g.NumVertices()
	idx := &Interval{po: graph.PostOrder(g), reach: make([]tc.IntervalSet, n)}
	order, ok := graph.TopoOrder(g)
	if !ok {
		panic("intervalidx: input must be a DAG")
	}
	for i := len(order) - 1; i >= 0; i-- {
		v := order[i]
		sets := make([]tc.IntervalSet, 0, g.OutDegree(v)+1)
		sets = append(sets, tc.IntervalSet{{Lo: idx.po[v], Hi: idx.po[v]}})
		for _, w := range g.Out(v) {
			sets = append(sets, idx.reach[w])
		}
		idx.reach[v] = tc.MergeIntervalSets(sets...)
	}
	return idx
}

// Name implements index.Index.
func (idx *Interval) Name() string { return "INT" }

// Reachable reports u -> v by binary search of po[v] in TC(u)'s intervals.
func (idx *Interval) Reachable(u, v uint32) bool {
	if u == v {
		return true
	}
	return idx.reach[u].Contains(idx.po[v])
}

// SizeInts counts two integers per stored interval plus the renumbering
// array.
func (idx *Interval) SizeInts() int64 {
	total := int64(len(idx.po))
	for _, s := range idx.reach {
		total += s.SizeInts()
	}
	return total
}
