package intervalidx

import (
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/testutil"
)

func TestIntervalExhaustive(t *testing.T) {
	for name, g := range testutil.Families(13) {
		testutil.CheckExhaustive(t, name, g, Build(g))
	}
}

func TestIntervalCompressesTrees(t *testing.T) {
	// On a pure tree the postorder numbering makes every closure a single
	// interval: size must be linear, roughly 3 ints per vertex.
	g := gen.ForestDAG(4000, 1, 3)
	idx := Build(g)
	if idx.SizeInts() > int64(4*g.NumVertices()) {
		t.Errorf("tree index size %d not linear (n=%d)", idx.SizeInts(), g.NumVertices())
	}
	testutil.CheckRandom(t, "forest", g, idx, 600, 2)
}

func TestIntervalDenseGrowth(t *testing.T) {
	// Citation-style graphs should need noticeably more intervals per
	// vertex than trees — the scalability cliff the paper reports.
	tree := Build(gen.ForestDAG(2000, 1, 5))
	dense := Build(gen.CitationDAG(2000, 4, 0.5, 5))
	if dense.SizeInts() <= tree.SizeInts() {
		t.Errorf("dense index (%d ints) not larger than tree index (%d ints)",
			dense.SizeInts(), tree.SizeInts())
	}
}

func TestIntervalPanicsOnCycle(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic on cyclic input")
		}
	}()
	Build(graph.MustFromEdges(2, [][2]graph.Vertex{{0, 1}, {1, 0}}))
}
