package intervalidx

import (
	"fmt"

	"repro/internal/blockio"
	"repro/internal/graph"
	"repro/internal/index"
	"repro/internal/tc"
)

func init() {
	index.Register(index.Descriptor{
		Tag:  "INT",
		Rank: 3,
		Doc:  "Nuutila-style interval-compressed transitive closure",
		Build: func(g *graph.Graph, _ index.BuildOptions) (index.Index, error) {
			return Build(g), nil
		},
		Encode: func(idx index.Index, w *blockio.Writer) error {
			in, ok := idx.(*Interval)
			if !ok {
				return fmt.Errorf("intervalidx: codec got %T", idx)
			}
			tc.EncodeSets(w, in.po, in.reach)
			return w.Err()
		},
		Decode: func(g *graph.Graph, r *blockio.Reader, _ index.BuildOptions) (index.Index, error) {
			po, reach, err := tc.DecodeSets(r, g.NumVertices())
			if err != nil {
				return nil, fmt.Errorf("intervalidx: %w", err)
			}
			return &Interval{po: po, reach: reach}, nil
		},
	})
}
