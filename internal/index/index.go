// Package index defines the interface every reachability index in this
// repository implements, so the benchmark harness and the SCARAB wrapper
// can treat HL, DL and all baselines uniformly.
package index

// Index answers reachability queries over a fixed DAG.
//
// Implementations are NOT required to be safe for concurrent queries:
// online-search style indexes (GRAIL, BFS) keep per-index traversal
// scratch, mirroring the single-threaded query loops of the paper's
// evaluation. Wrap with per-goroutine instances for concurrent use.
type Index interface {
	// Name is the short method tag used in the paper's tables (e.g. "DL").
	Name() string
	// Reachable reports whether vertex u reaches vertex v.
	Reachable(u, v uint32) bool
	// SizeInts is the index size in 32-bit integers, the metric of the
	// paper's Figures 3 and 4.
	SizeInts() int64
}

// Builder constructs an index for a DAG; registered by the harness under
// the method's table tag.
type Builder func() (Index, error)
