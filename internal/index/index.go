// Package index defines the interface every reachability index in this
// repository implements, plus the method registry: each method package
// self-registers a Descriptor (tag, builder, snapshot codec) from init(),
// so the oracle, the benchmark harness, the CLI tools and the serving
// daemon all enumerate methods from one place instead of keeping parallel
// switch statements.
package index

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/blockio"
	"repro/internal/graph"
)

// Index answers reachability queries over a fixed DAG.
//
// Implementations MUST answer Reachable safely from many goroutines at
// once: once built, an index is immutable, and any per-query traversal
// scratch (GRAIL, BFS/DFS/BiBFS, SCARAB) lives in a sync.Pool rather
// than on the index itself. The serving layer (internal/server, cmd/
// reachd) relies on this guarantee, and the root package's race-enabled
// hammer test enforces it for every method.
type Index interface {
	// Name is the short method tag used in the paper's tables (e.g. "DL").
	// It must equal the tag the method registered its Descriptor under.
	Name() string
	// Reachable reports whether vertex u reaches vertex v.
	Reachable(u, v uint32) bool
	// SizeInts is the index size in 32-bit integers, the metric of the
	// paper's Figures 3 and 4.
	SizeInts() int64
}

// BuildOptions tunes index construction; the zero value is the paper's
// configuration for every method. The first four fields are the
// algorithmic knobs (persisted in snapshots so rebuild codecs reproduce
// the same index); the Max* fields are resource budgets the benchmark
// harness uses to reproduce the paper's "—" table entries (zero means the
// method package's own default budget).
type BuildOptions struct {
	// Epsilon is HL's backbone locality threshold (default 2).
	Epsilon int
	// CoreLimit is HL/TF's decomposition stop size (default 1024).
	CoreLimit int
	// Seed drives randomized construction (GRAIL) deterministically.
	Seed int64
	// Traversals is GRAIL's interval count k (default 5).
	Traversals int

	// MaxPTEntries bounds PathTree's compressed-closure entries.
	MaxPTEntries int64
	// MaxCoverBits bounds K-Reach's cover-closure bitset bits.
	MaxCoverBits int64
	// TwoHopMaxVertices refuses 2HOP on larger graphs.
	TwoHopMaxVertices int
	// TwoHopMaxTCPairs refuses 2HOP above this estimated closure size.
	TwoHopMaxTCPairs int64
	// TwoHopMaxTime aborts 2HOP's greedy loop after this wall-clock budget.
	TwoHopMaxTime time.Duration
}

// Builder constructs an index for a DAG.
type Builder func(g *graph.Graph, opts BuildOptions) (Index, error)

// Descriptor is one method's registry entry. Build constructs the index
// from a DAG; Encode/Decode serialize it into / out of a snapshot payload.
// A method whose in-memory form is not worth persisting (online search,
// the SCARAB wrappers) sets Rebuild and provides an Encode that writes
// nothing and a Decode that reconstructs from the graph — deterministic
// because the snapshot header carries the original BuildOptions.
type Descriptor struct {
	// Tag is the method identifier; it must equal the Index's Name().
	Tag string
	// Rank orders method listings (paper order); ties break by Tag.
	Rank int
	// Doc is a one-line description for CLI usage text.
	Doc string
	// Rebuild marks a decode that reconstructs from the graph rather than
	// decoding persisted state.
	Rebuild bool
	// Build constructs the index for a DAG.
	Build Builder
	// Encode writes the index's persistent state as blockio blocks.
	Encode func(idx Index, w *blockio.Writer) error
	// Decode restores an index from blocks written by Encode. The graph is
	// the same condensed DAG the index was built on; decoders must
	// validate any structure they will later trust (offsets, ID ranges) so
	// a corrupt snapshot yields an error, never a query-time panic.
	Decode func(g *graph.Graph, r *blockio.Reader, opts BuildOptions) (Index, error)
}

var registry = map[string]Descriptor{}

// Register adds a method descriptor; method packages call it from init().
// It panics on duplicate tags or incomplete descriptors — both are
// programming errors, not runtime conditions.
func Register(d Descriptor) {
	if d.Tag == "" || d.Build == nil || d.Encode == nil || d.Decode == nil {
		panic(fmt.Sprintf("index: incomplete descriptor for %q", d.Tag))
	}
	if _, dup := registry[d.Tag]; dup {
		panic(fmt.Sprintf("index: duplicate registration of %q", d.Tag))
	}
	registry[d.Tag] = d
}

// Get returns the descriptor registered under tag.
func Get(tag string) (Descriptor, bool) {
	d, ok := registry[tag]
	return d, ok
}

// Descriptors returns every registered method, ordered by Rank then Tag.
func Descriptors() []Descriptor {
	out := make([]Descriptor, 0, len(registry))
	for _, d := range registry {
		out = append(out, d)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Rank != out[j].Rank {
			return out[i].Rank < out[j].Rank
		}
		return out[i].Tag < out[j].Tag
	})
	return out
}

// Tags returns every registered method tag in Descriptors() order.
func Tags() []string {
	ds := Descriptors()
	out := make([]string, len(ds))
	for i, d := range ds {
		out[i] = d.Tag
	}
	return out
}
