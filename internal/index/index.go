// Package index defines the interface every reachability index in this
// repository implements, so the benchmark harness and the SCARAB wrapper
// can treat HL, DL and all baselines uniformly.
package index

// Index answers reachability queries over a fixed DAG.
//
// Implementations MUST answer Reachable safely from many goroutines at
// once: once built, an index is immutable, and any per-query traversal
// scratch (GRAIL, BFS/DFS/BiBFS, SCARAB) lives in a sync.Pool rather
// than on the index itself. The serving layer (internal/server, cmd/
// reachd) relies on this guarantee, and the root package's race-enabled
// hammer test enforces it for every method.
type Index interface {
	// Name is the short method tag used in the paper's tables (e.g. "DL").
	Name() string
	// Reachable reports whether vertex u reaches vertex v.
	Reachable(u, v uint32) bool
	// SizeInts is the index size in 32-bit integers, the metric of the
	// paper's Figures 3 and 4.
	SizeInts() int64
}

// Builder constructs an index for a DAG; registered by the harness under
// the method's table tag.
type Builder func() (Index, error)
