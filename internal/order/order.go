// Package order provides the vertex-ranking strategies used by the labeling
// algorithms. The paper's Distribution-Labeling processes hops from the
// "most important" vertex down, with importance measured by the rank
// function (|Nout(v)|+1)·(|Nin(v)|+1) — the number of vertex pairs within
// distance 2 that v covers (§5.2). Alternative orders are provided for the
// ablation benchmarks.
package order

import (
	"math/rand"
	"sort"

	"repro/internal/graph"
)

// Strategy names an order for the ablation harness.
type Strategy string

const (
	// DegreeProduct is the paper's rank: (|Nout|+1)(|Nin|+1), descending.
	DegreeProduct Strategy = "degree-product"
	// Topo orders vertices topologically (roots first).
	Topo Strategy = "topological"
	// RandomOrder is a uniformly random permutation.
	RandomOrder Strategy = "random"
	// ReverseDegreeProduct is the worst-case control: ascending rank.
	ReverseDegreeProduct Strategy = "reverse-degree-product"
)

// ByDegreeProduct returns vertices sorted by (|Nout(v)|+1)·(|Nin(v)|+1)
// descending, ties broken by vertex ID for determinism.
func ByDegreeProduct(g *graph.Graph) []graph.Vertex {
	n := g.NumVertices()
	rank := make([]int64, n)
	for v := 0; v < n; v++ {
		rank[v] = int64(g.OutDegree(graph.Vertex(v))+1) * int64(g.InDegree(graph.Vertex(v))+1)
	}
	out := identity(n)
	sort.SliceStable(out, func(i, j int) bool {
		if rank[out[i]] != rank[out[j]] {
			return rank[out[i]] > rank[out[j]]
		}
		return out[i] < out[j]
	})
	return out
}

// ByStrategy returns the vertex order for the named strategy. seed is used
// only by RandomOrder.
func ByStrategy(g *graph.Graph, s Strategy, seed int64) []graph.Vertex {
	switch s {
	case DegreeProduct:
		return ByDegreeProduct(g)
	case Topo:
		order, ok := graph.TopoOrder(g)
		if !ok {
			panic("order: topological strategy requires a DAG")
		}
		return order
	case RandomOrder:
		out := identity(g.NumVertices())
		rand.New(rand.NewSource(seed)).Shuffle(len(out), func(i, j int) {
			out[i], out[j] = out[j], out[i]
		})
		return out
	case ReverseDegreeProduct:
		out := ByDegreeProduct(g)
		for i, j := 0, len(out)-1; i < j; i, j = i+1, j-1 {
			out[i], out[j] = out[j], out[i]
		}
		return out
	default:
		panic("order: unknown strategy " + string(s))
	}
}

// PositionOf inverts an order: pos[v] = index of v in the order.
func PositionOf(order []graph.Vertex) []int32 {
	pos := make([]int32, len(order))
	for i, v := range order {
		pos[v] = int32(i)
	}
	return pos
}

func identity(n int) []graph.Vertex {
	out := make([]graph.Vertex, n)
	for i := range out {
		out[i] = graph.Vertex(i)
	}
	return out
}
