package order

import (
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
)

func star(t *testing.T) *graph.Graph {
	t.Helper()
	// Vertex 0 is a hub: 1->0, 2->0, 0->3, 0->4, plus a stray edge 1->2.
	return graph.MustFromEdges(5, [][2]graph.Vertex{{1, 0}, {2, 0}, {0, 3}, {0, 4}, {1, 2}})
}

func TestDegreeProductRanksHubFirst(t *testing.T) {
	g := star(t)
	ord := ByDegreeProduct(g)
	if ord[0] != 0 {
		t.Fatalf("hub not first: order = %v", ord)
	}
	if len(ord) != 5 {
		t.Fatalf("order has %d entries", len(ord))
	}
}

func TestDegreeProductDeterministic(t *testing.T) {
	g := gen.UniformDAG(200, 600, 4)
	a := ByDegreeProduct(g)
	b := ByDegreeProduct(g)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("order not deterministic")
		}
	}
}

func TestAllStrategiesArePermutations(t *testing.T) {
	g := gen.CitationDAG(100, 3, 0.5, 1)
	for _, s := range []Strategy{DegreeProduct, Topo, RandomOrder, ReverseDegreeProduct} {
		ord := ByStrategy(g, s, 7)
		if len(ord) != g.NumVertices() {
			t.Fatalf("%s: wrong length %d", s, len(ord))
		}
		seen := make([]bool, g.NumVertices())
		for _, v := range ord {
			if seen[v] {
				t.Fatalf("%s: duplicate vertex %d", s, v)
			}
			seen[v] = true
		}
	}
}

func TestTopoStrategyRespectsEdges(t *testing.T) {
	g := gen.UniformDAG(80, 200, 2)
	ord := ByStrategy(g, Topo, 0)
	pos := PositionOf(ord)
	g.Edges(func(u, v graph.Vertex) bool {
		if pos[u] >= pos[v] {
			t.Errorf("topo order violated for (%d,%d)", u, v)
		}
		return true
	})
}

func TestReverseIsReverse(t *testing.T) {
	g := star(t)
	fwd := ByStrategy(g, DegreeProduct, 0)
	rev := ByStrategy(g, ReverseDegreeProduct, 0)
	for i := range fwd {
		if fwd[i] != rev[len(rev)-1-i] {
			t.Fatal("reverse strategy is not the reverse of forward")
		}
	}
}

func TestPositionOf(t *testing.T) {
	ord := []graph.Vertex{2, 0, 1}
	pos := PositionOf(ord)
	if pos[2] != 0 || pos[0] != 1 || pos[1] != 2 {
		t.Errorf("pos = %v", pos)
	}
}

func TestUnknownStrategyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic for unknown strategy")
		}
	}()
	ByStrategy(star(t), Strategy("nope"), 0)
}
