package treecover

import (
	"fmt"

	"repro/internal/blockio"
	"repro/internal/graph"
	"repro/internal/index"
	"repro/internal/tc"
)

func init() {
	index.Register(index.Descriptor{
		Tag:  "TCOV",
		Rank: 14,
		Doc:  "Agrawal optimal tree cover (SIGMOD 1989), tree-interval TC compression",
		Build: func(g *graph.Graph, _ index.BuildOptions) (index.Index, error) {
			return Build(g)
		},
		Encode: func(idx index.Index, w *blockio.Writer) error {
			t, ok := idx.(*TreeCover)
			if !ok {
				return fmt.Errorf("treecover: codec got %T", idx)
			}
			tc.EncodeSets(w, t.post, t.reach)
			return w.Err()
		},
		Decode: func(g *graph.Graph, r *blockio.Reader, _ index.BuildOptions) (index.Index, error) {
			post, reach, err := tc.DecodeSets(r, g.NumVertices())
			if err != nil {
				return nil, fmt.Errorf("treecover: %w", err)
			}
			return &TreeCover{post: post, reach: reach}, nil
		},
	})
}
