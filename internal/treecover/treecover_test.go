package treecover

import (
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/intervalidx"
	"repro/internal/testutil"
)

func TestTreeCoverExhaustive(t *testing.T) {
	for name, g := range testutil.Families(67) {
		tcov, err := Build(g)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		testutil.CheckExhaustive(t, name, g, tcov)
	}
}

func TestTreeCoverLinearOnTrees(t *testing.T) {
	g := gen.ForestDAG(5000, 2, 9)
	tcov, err := Build(g)
	if err != nil {
		t.Fatal(err)
	}
	// On a forest the tree cover is exactly one interval per vertex.
	if tcov.SizeInts() > int64(3*g.NumVertices()) {
		t.Errorf("forest tree cover %d ints, want <= 3n", tcov.SizeInts())
	}
	testutil.CheckRandom(t, "forest5k", g, tcov, 600, 3)
}

func TestTreeCoverAtMostIntervalIndexOnTreeLike(t *testing.T) {
	// With a real spanning tree the cover should be no worse than the
	// plain postorder interval index on tree-like graphs.
	g := gen.TreeDAG(3000, 0.1, 0, 4)
	tcov, err := Build(g)
	if err != nil {
		t.Fatal(err)
	}
	iv := intervalidx.Build(g)
	if tcov.SizeInts() > 2*iv.SizeInts() {
		t.Errorf("tree cover (%d) much larger than INT (%d)", tcov.SizeInts(), iv.SizeInts())
	}
}

func TestTreeCoverRejectsCycle(t *testing.T) {
	g := graph.MustFromEdges(2, [][2]graph.Vertex{{0, 1}, {1, 0}})
	if _, err := Build(g); err == nil {
		t.Fatal("cycle accepted")
	}
}
