// Package treecover implements Agrawal, Borgida & Jagadish's optimal tree
// cover (SIGMOD 1989) — the tree-interval compression that PathTree [21]
// improves on and that the paper's related work cites as "interval or tree
// compression [2]". Included as a documented extension beyond the paper's
// table columns: it completes the transitive-closure-compression lineage
// (chain cover → tree cover → path-tree) and serves as an alternative
// SCARAB inner index.
//
// Construction: pick a spanning forest of the DAG (each vertex keeps its
// first in-neighbor as tree parent), number vertices by tree post-order so
// every subtree is one contiguous interval, then propagate interval sets
// bottom-up in reverse topological order:
//
//	I(v) = {subtreeInterval(v)} ∪ ⋃_{(v,w)∈E} I(w)
//
// merged and deduplicated. u reaches v iff post(v) lies in some interval
// of I(u). Tree-heavy DAGs compress to almost one interval per vertex;
// dense DAGs degrade the same way INT does.
package treecover

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/tc"
)

// TreeCover is the tree-interval reachability index.
type TreeCover struct {
	post  []uint32
	reach []tc.IntervalSet
}

// Build constructs the tree cover for DAG g.
func Build(g *graph.Graph) (*TreeCover, error) {
	order, ok := graph.TopoOrder(g)
	if !ok {
		return nil, fmt.Errorf("treecover: input must be a DAG")
	}
	n := g.NumVertices()

	// Spanning forest: parent = first in-neighbor in topological order
	// (any in-neighbor works; first keeps it deterministic).
	parent := make([]int32, n)
	for i := range parent {
		parent[i] = -1
	}
	children := make([][]graph.Vertex, n)
	for _, v := range order {
		if in := g.In(v); len(in) > 0 {
			parent[v] = int32(in[0])
			children[in[0]] = append(children[in[0]], v)
		}
	}

	// Tree post-order numbering (iterative DFS over forest roots).
	post := make([]uint32, n)
	low := make([]uint32, n) // smallest post number in v's subtree
	next := uint32(0)
	type frame struct {
		v  graph.Vertex
		ci int
	}
	var stack []frame
	for r := 0; r < n; r++ {
		if parent[r] != -1 {
			continue
		}
		stack = append(stack[:0], frame{v: graph.Vertex(r)})
		for len(stack) > 0 {
			f := &stack[len(stack)-1]
			if f.ci < len(children[f.v]) {
				c := children[f.v][f.ci]
				f.ci++
				stack = append(stack, frame{v: c})
				continue
			}
			// Post-visit: low = own number if leaf, else low of first child.
			if len(children[f.v]) == 0 {
				low[f.v] = next
			} else {
				low[f.v] = low[children[f.v][0]]
			}
			post[f.v] = next
			next++
			stack = stack[:len(stack)-1]
		}
	}

	// Reverse-topological interval propagation.
	idx := &TreeCover{post: post, reach: make([]tc.IntervalSet, n)}
	for i := len(order) - 1; i >= 0; i-- {
		v := order[i]
		sets := make([]tc.IntervalSet, 0, g.OutDegree(v)+1)
		sets = append(sets, tc.IntervalSet{{Lo: low[v], Hi: post[v]}})
		for _, w := range g.Out(v) {
			sets = append(sets, idx.reach[w])
		}
		idx.reach[v] = tc.MergeIntervalSets(sets...)
	}
	return idx, nil
}

// Name implements index.Index.
func (t *TreeCover) Name() string { return "TCOV" }

// Reachable reports u -> v by binary search of post(v) in I(u).
func (t *TreeCover) Reachable(u, v uint32) bool {
	if u == v {
		return true
	}
	return t.reach[u].Contains(t.post[v])
}

// SizeInts counts two integers per interval plus the numbering array.
func (t *TreeCover) SizeInts() int64 {
	total := int64(len(t.post))
	for _, s := range t.reach {
		total += s.SizeInts()
	}
	return total
}
