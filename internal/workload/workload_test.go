package workload

import (
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/search"
)

func TestEqualWorkloadBalance(t *testing.T) {
	g := gen.CitationDAG(2000, 3, 0.5, 7)
	w, err := Generate(g, Equal, 2000, 1)
	if err != nil {
		t.Fatal(err)
	}
	if w.Len() != 2000 {
		t.Fatalf("Len = %d", w.Len())
	}
	// Verify the claimed positive count against ground truth.
	bfs := search.NewBFS(g)
	positives := w.Run(bfs)
	if positives < w.Len()*35/100 || positives > w.Len()*65/100 {
		t.Errorf("equal workload has %d/%d positives; want near half", positives, w.Len())
	}
	if w.Positive < 0 {
		t.Error("equal workload should know its positive count")
	}
}

func TestEqualWorkloadPositivesAreReachable(t *testing.T) {
	g := gen.TreeDAG(500, 0.1, 0, 3)
	w, err := Generate(g, Equal, 400, 2)
	if err != nil {
		t.Fatal(err)
	}
	// All pairs the generator counted as positive must actually be
	// reachable; recount via BFS and compare totals.
	bfs := search.NewBFS(g)
	got := w.Run(bfs)
	if got < w.Positive*9/10 {
		t.Errorf("ground-truth positives %d far below generator count %d", got, w.Positive)
	}
}

func TestRandomWorkload(t *testing.T) {
	g := gen.UniformDAG(300, 800, 4)
	w, err := Generate(g, Random, 1000, 3)
	if err != nil {
		t.Fatal(err)
	}
	if w.Len() != 1000 || w.Positive != -1 {
		t.Fatalf("random workload: len=%d positive=%d", w.Len(), w.Positive)
	}
	for i := range w.U {
		if int(w.U[i]) >= g.NumVertices() || int(w.V[i]) >= g.NumVertices() {
			t.Fatal("query vertex out of range")
		}
	}
}

func TestWorkloadDeterministic(t *testing.T) {
	g := gen.UniformDAG(200, 500, 5)
	a, _ := Generate(g, Equal, 500, 9)
	b, _ := Generate(g, Equal, 500, 9)
	for i := range a.U {
		if a.U[i] != b.U[i] || a.V[i] != b.V[i] {
			t.Fatal("same seed produced different workloads")
		}
	}
	c, _ := Generate(g, Equal, 500, 10)
	same := true
	for i := range a.U {
		if a.U[i] != c.U[i] || a.V[i] != c.V[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical workloads")
	}
}

func TestWorkloadDefaultSize(t *testing.T) {
	g := gen.UniformDAG(100, 300, 6)
	w, err := Generate(g, Random, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if w.Len() != DefaultQueries {
		t.Fatalf("default size = %d, want %d", w.Len(), DefaultQueries)
	}
}

func TestWorkloadErrors(t *testing.T) {
	tiny := graph.NewBuilder(1).MustBuild()
	if _, err := Generate(tiny, Equal, 10, 1); err == nil {
		t.Error("1-vertex graph accepted")
	}
	g := gen.UniformDAG(50, 100, 1)
	if _, err := Generate(g, Kind("bogus"), 10, 1); err == nil {
		t.Error("bogus kind accepted")
	}
}

func TestEqualWorkloadOnEdgelessGraph(t *testing.T) {
	g := graph.NewBuilder(50).MustBuild()
	w, err := Generate(g, Equal, 100, 1)
	if err != nil {
		t.Fatal(err)
	}
	if w.Len() != 100 {
		t.Fatalf("padded workload len = %d", w.Len())
	}
	if w.Positive != 0 {
		t.Errorf("edgeless graph claims %d positives", w.Positive)
	}
}
