// Package workload generates the query workloads of the paper's
// evaluation (§6.1): the *equal* workload with about 50% positive
// (reachable) and 50% negative pairs, and the *random* workload of
// uniformly sampled pairs. Query batches default to the paper's 100,000
// queries.
package workload

import (
	"fmt"
	"math/rand"

	"repro/internal/graph"
	"repro/internal/tc"
)

// DefaultQueries is the paper's batch size.
const DefaultQueries = 100_000

// Kind selects a workload flavour.
type Kind string

const (
	// Equal is ~50% positive / ~50% negative pairs.
	Equal Kind = "equal"
	// Random is uniformly random pairs.
	Random Kind = "random"
)

// Workload is a fixed batch of reachability queries with ground truth.
type Workload struct {
	Kind Kind
	U, V []uint32
	// Positive counts the queries known to be reachable at generation time
	// (exact for Equal; unknown (-1) for Random unless verified).
	Positive int
}

// Len returns the number of queries.
func (w *Workload) Len() int { return len(w.U) }

// Generate builds a workload of n queries over DAG g.
//
// Equal generation samples positives from the transitive closure via
// random-source BFS (no closure materialization) and negatives by
// rejection sampling against a BFS check; on graphs that are almost fully
// connected or almost edgeless the 50/50 balance degrades gracefully
// rather than looping forever.
func Generate(g *graph.Graph, kind Kind, n int, seed int64) (*Workload, error) {
	if n <= 0 {
		n = DefaultQueries
	}
	nv := g.NumVertices()
	if nv < 2 {
		return nil, fmt.Errorf("workload: graph has %d vertices; need at least 2", nv)
	}
	rng := rand.New(rand.NewSource(seed))
	w := &Workload{Kind: kind, U: make([]uint32, 0, n), V: make([]uint32, 0, n)}

	switch kind {
	case Random:
		for i := 0; i < n; i++ {
			w.U = append(w.U, uint32(rng.Intn(nv)))
			w.V = append(w.V, uint32(rng.Intn(nv)))
		}
		w.Positive = -1
		return w, nil

	case Equal:
		vst := graph.NewVisitor(nv)
		half := n / 2
		// Positives: sample reachable pairs.
		for i := 0; i < half; i++ {
			u, v, ok := tc.SamplePositivePair(g, rng, vst)
			if !ok {
				break // graph has (almost) no reachable pairs; fall through
			}
			w.U = append(w.U, uint32(u))
			w.V = append(w.V, uint32(v))
		}
		w.Positive = len(w.U)
		// Negatives: rejection-sample unreachable pairs (bounded attempts
		// per query so near-complete DAGs cannot stall generation).
		for len(w.U) < n {
			placed := false
			for attempt := 0; attempt < 32; attempt++ {
				u := graph.Vertex(rng.Intn(nv))
				v := graph.Vertex(rng.Intn(nv))
				if u == v || vst.Reachable(g, u, v) {
					continue
				}
				w.U = append(w.U, uint32(u))
				w.V = append(w.V, uint32(v))
				placed = true
				break
			}
			if !placed {
				// Could not find a negative: pad with a random pair.
				w.U = append(w.U, uint32(rng.Intn(nv)))
				w.V = append(w.V, uint32(rng.Intn(nv)))
			}
		}
		// Shuffle so positives and negatives interleave (query loops in the
		// paper's harness do not sort by answer).
		rng.Shuffle(len(w.U), func(i, j int) {
			w.U[i], w.U[j] = w.U[j], w.U[i]
			w.V[i], w.V[j] = w.V[j], w.V[i]
		})
		return w, nil

	default:
		return nil, fmt.Errorf("workload: unknown kind %q", kind)
	}
}

// Run executes every query against q and returns the number answered true
// (a cheap checksum for harness sanity and a defense against dead-code
// elimination in benchmarks).
func (w *Workload) Run(q interface{ Reachable(u, v uint32) bool }) int {
	positives := 0
	for i := range w.U {
		if q.Reachable(w.U[i], w.V[i]) {
			positives++
		}
	}
	return positives
}
