// Package hoplabel holds the shared reachability-oracle representation: per
// vertex, two sorted hop sets Lout(v) and Lin(v) such that u reaches v iff
// Lout(u) ∩ Lin(v) ≠ ∅. Every labeling algorithm in this repository (HL,
// DL, TF, 2HOP) produces one of these.
//
// The paper observes (§1) that implementing the label sets as sorted
// vectors rather than hash sets eliminates the reachability oracle's
// historical query-performance gap; labels here are flat sorted []uint32
// CSR arrays and the query is a merge intersection with early exit.
package hoplabel

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"slices"
)

// Labeling is an immutable, complete 2-hop reachability labeling.
type Labeling struct {
	n      int
	outOff []uint32
	out    []uint32
	inOff  []uint32
	in     []uint32
}

// NumVertices returns the number of labeled vertices.
func (l *Labeling) NumVertices() int { return l.n }

// Out returns Lout(v), sorted ascending. Shared storage; do not modify.
func (l *Labeling) Out(v uint32) []uint32 { return l.out[l.outOff[v]:l.outOff[v+1]] }

// In returns Lin(v), sorted ascending. Shared storage; do not modify.
func (l *Labeling) In(v uint32) []uint32 { return l.in[l.inOff[v]:l.inOff[v+1]] }

// Reachable answers u -> v via sorted-merge intersection of Lout(u) and
// Lin(v); O(|Lout(u)| + |Lin(v)|).
func (l *Labeling) Reachable(u, v uint32) bool {
	if u == v {
		return true
	}
	return IntersectsSorted(l.Out(u), l.In(v))
}

// IntersectsSorted reports whether two ascending slices share an element.
//
//reach:hotpath
func IntersectsSorted(a, b []uint32) bool {
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			return true
		}
	}
	return false
}

// SizeInts returns the total label size Σ(|Lout(v)| + |Lin(v)|) in 32-bit
// integers — the metric minimized by 2-hop labeling and reported in the
// paper's Figures 3 and 4.
func (l *Labeling) SizeInts() int64 { return int64(len(l.out) + len(l.in)) }

// Stats summarizes label-size distribution.
type Stats struct {
	TotalOut, TotalIn int64
	MaxOut, MaxIn     int
	AvgOut, AvgIn     float64
}

// ComputeStats gathers label statistics.
func (l *Labeling) ComputeStats() Stats {
	var s Stats
	s.TotalOut = int64(len(l.out))
	s.TotalIn = int64(len(l.in))
	for v := 0; v < l.n; v++ {
		if o := len(l.Out(uint32(v))); o > s.MaxOut {
			s.MaxOut = o
		}
		if i := len(l.In(uint32(v))); i > s.MaxIn {
			s.MaxIn = i
		}
	}
	if l.n > 0 {
		s.AvgOut = float64(s.TotalOut) / float64(l.n)
		s.AvgIn = float64(s.TotalIn) / float64(l.n)
	}
	return s
}

// Builder accumulates per-vertex hop sets and freezes them into a Labeling.
type Builder struct {
	out [][]uint32
	in  [][]uint32
}

// NewBuilder returns a Builder for n vertices.
func NewBuilder(n int) *Builder {
	return &Builder{out: make([][]uint32, n), in: make([][]uint32, n)}
}

// NumVertices returns the builder's vertex count.
func (b *Builder) NumVertices() int { return len(b.out) }

// AddOut appends hop to Lout(v). Duplicates are removed at Freeze.
func (b *Builder) AddOut(v, hop uint32) { b.out[v] = append(b.out[v], hop) }

// AddIn appends hop to Lin(v). Duplicates are removed at Freeze.
func (b *Builder) AddIn(v, hop uint32) { b.in[v] = append(b.in[v], hop) }

// SetOut replaces Lout(v) wholesale (used by HL's label unioning).
func (b *Builder) SetOut(v uint32, hops []uint32) { b.out[v] = hops }

// SetIn replaces Lin(v) wholesale.
func (b *Builder) SetIn(v uint32, hops []uint32) { b.in[v] = hops }

// Out returns the current (unsorted, possibly duplicated) Lout(v).
func (b *Builder) Out(v uint32) []uint32 { return b.out[v] }

// In returns the current (unsorted, possibly duplicated) Lin(v).
func (b *Builder) In(v uint32) []uint32 { return b.in[v] }

// Freeze sorts and deduplicates every label and produces the flat Labeling.
// The builder must not be used afterwards.
func (b *Builder) Freeze() *Labeling {
	n := len(b.out)
	l := &Labeling{n: n, outOff: make([]uint32, n+1), inOff: make([]uint32, n+1)}
	var totalOut, totalIn int
	for v := 0; v < n; v++ {
		b.out[v] = sortDedup(b.out[v])
		b.in[v] = sortDedup(b.in[v])
		totalOut += len(b.out[v])
		totalIn += len(b.in[v])
	}
	l.out = make([]uint32, 0, totalOut)
	l.in = make([]uint32, 0, totalIn)
	for v := 0; v < n; v++ {
		l.out = append(l.out, b.out[v]...)
		l.outOff[v+1] = uint32(len(l.out))
		l.in = append(l.in, b.in[v]...)
		l.inOff[v+1] = uint32(len(l.in))
		b.out[v], b.in[v] = nil, nil // release during freeze to cap peak memory
	}
	return l
}

func sortDedup(s []uint32) []uint32 {
	if len(s) < 2 {
		return s
	}
	slices.Sort(s)
	w := 1
	for i := 1; i < len(s); i++ {
		if s[i] != s[i-1] {
			s[w] = s[i]
			w++
		}
	}
	return s[:w]
}

// labelMagic identifies the serialized labeling format.
const labelMagic = "RHL1"

// Write serializes the labeling (little-endian: magic, n, out CSR, in CSR).
func (l *Labeling) Write(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(labelMagic); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, uint64(l.n)); err != nil {
		return err
	}
	for _, arr := range [][]uint32{l.outOff, l.out, l.inOff, l.in} {
		if err := binary.Write(bw, binary.LittleEndian, uint64(len(arr))); err != nil {
			return err
		}
		if err := binary.Write(bw, binary.LittleEndian, arr); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Read deserializes a labeling written by Write.
func Read(r io.Reader) (*Labeling, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, len(labelMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("hoplabel: reading magic: %w", err)
	}
	if string(magic) != labelMagic {
		return nil, fmt.Errorf("hoplabel: bad magic %q", magic)
	}
	var n uint64
	if err := binary.Read(br, binary.LittleEndian, &n); err != nil {
		return nil, err
	}
	if n > 1<<31 {
		return nil, fmt.Errorf("hoplabel: implausible vertex count %d", n)
	}
	l := &Labeling{n: int(n)}
	arrays := []*[]uint32{&l.outOff, &l.out, &l.inOff, &l.in}
	for _, dst := range arrays {
		var ln uint64
		if err := binary.Read(br, binary.LittleEndian, &ln); err != nil {
			return nil, err
		}
		if ln > 1<<33 {
			return nil, fmt.Errorf("hoplabel: implausible array length %d", ln)
		}
		*dst = make([]uint32, ln)
		if err := binary.Read(br, binary.LittleEndian, *dst); err != nil {
			return nil, err
		}
	}
	if len(l.outOff) != int(n)+1 || len(l.inOff) != int(n)+1 {
		return nil, fmt.Errorf("hoplabel: offset arrays inconsistent with n=%d", n)
	}
	for v := 0; v < l.n; v++ {
		if l.outOff[v] > l.outOff[v+1] || l.inOff[v] > l.inOff[v+1] {
			return nil, fmt.Errorf("hoplabel: offsets not monotone at %d", v)
		}
	}
	if int(l.outOff[l.n]) != len(l.out) || int(l.inOff[l.n]) != len(l.in) {
		return nil, fmt.Errorf("hoplabel: offsets do not cover label arrays")
	}
	return l, nil
}
