package hoplabel

import (
	"bytes"
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func TestIntersectsSorted(t *testing.T) {
	cases := []struct {
		a, b []uint32
		want bool
	}{
		{nil, nil, false},
		{[]uint32{1}, nil, false},
		{[]uint32{1, 3, 5}, []uint32{2, 4, 6}, false},
		{[]uint32{1, 3, 5}, []uint32{5}, true},
		{[]uint32{7}, []uint32{1, 2, 7, 9}, true},
		{[]uint32{1, 2, 3}, []uint32{3, 4, 5}, true},
		{[]uint32{10, 20}, []uint32{1, 2, 3, 4, 5}, false},
	}
	for _, c := range cases {
		if got := IntersectsSorted(c.a, c.b); got != c.want {
			t.Errorf("IntersectsSorted(%v, %v) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestBuilderFreezeSortsAndDedups(t *testing.T) {
	b := NewBuilder(2)
	b.AddOut(0, 5)
	b.AddOut(0, 1)
	b.AddOut(0, 5)
	b.AddIn(1, 9)
	b.AddIn(1, 9)
	l := b.Freeze()
	if got := l.Out(0); !reflect.DeepEqual(got, []uint32{1, 5}) {
		t.Errorf("Out(0) = %v", got)
	}
	if got := l.In(1); !reflect.DeepEqual(got, []uint32{9}) {
		t.Errorf("In(1) = %v", got)
	}
	if got := l.Out(1); len(got) != 0 {
		t.Errorf("Out(1) = %v, want empty", got)
	}
	if l.SizeInts() != 3 {
		t.Errorf("SizeInts = %d, want 3", l.SizeInts())
	}
}

func TestReachableSelf(t *testing.T) {
	l := NewBuilder(3).Freeze()
	if !l.Reachable(1, 1) {
		t.Error("self reachability must hold even with empty labels")
	}
	if l.Reachable(0, 1) {
		t.Error("empty labels imply unreachable")
	}
}

func TestReachableViaCommonHop(t *testing.T) {
	b := NewBuilder(3)
	// 0 -> 2 via hop 7... hops are arbitrary vertex IDs; use 2 itself.
	b.AddOut(0, 2)
	b.AddIn(2, 2)
	l := b.Freeze()
	if !l.Reachable(0, 2) {
		t.Error("Reachable(0,2) = false")
	}
	if l.Reachable(2, 0) {
		t.Error("Reachable(2,0) = true")
	}
}

func TestComputeStats(t *testing.T) {
	b := NewBuilder(2)
	b.AddOut(0, 1)
	b.AddOut(0, 2)
	b.AddIn(1, 3)
	l := b.Freeze()
	s := l.ComputeStats()
	if s.TotalOut != 2 || s.TotalIn != 1 || s.MaxOut != 2 || s.MaxIn != 1 {
		t.Errorf("stats = %+v", s)
	}
	if s.AvgOut != 1.0 || s.AvgIn != 0.5 {
		t.Errorf("avg = %+v", s)
	}
}

func TestSetOutSetIn(t *testing.T) {
	b := NewBuilder(1)
	b.SetOut(0, []uint32{4, 2, 2})
	b.SetIn(0, []uint32{8})
	l := b.Freeze()
	if got := l.Out(0); !reflect.DeepEqual(got, []uint32{2, 4}) {
		t.Errorf("Out = %v", got)
	}
	if got := l.In(0); !reflect.DeepEqual(got, []uint32{8}) {
		t.Errorf("In = %v", got)
	}
}

func TestSerializationRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	b := NewBuilder(50)
	for v := uint32(0); v < 50; v++ {
		for k := 0; k < rng.Intn(8); k++ {
			b.AddOut(v, uint32(rng.Intn(50)))
		}
		for k := 0; k < rng.Intn(8); k++ {
			b.AddIn(v, uint32(rng.Intn(50)))
		}
	}
	l := b.Freeze()
	var buf bytes.Buffer
	if err := l.Write(&buf); err != nil {
		t.Fatal(err)
	}
	l2, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if l2.NumVertices() != l.NumVertices() || l2.SizeInts() != l.SizeInts() {
		t.Fatal("round trip changed sizes")
	}
	for v := uint32(0); v < 50; v++ {
		if !reflect.DeepEqual(l.Out(v), l2.Out(v)) || !reflect.DeepEqual(l.In(v), l2.In(v)) {
			t.Fatalf("labels differ at vertex %d", v)
		}
	}
}

func TestReadRejectsGarbage(t *testing.T) {
	if _, err := Read(strings.NewReader("garbage everywhere")); err == nil {
		t.Fatal("garbage accepted")
	}
	if _, err := Read(strings.NewReader("")); err == nil {
		t.Fatal("empty input accepted")
	}
}

// Property: IntersectsSorted agrees with a map-based intersection test.
func TestIntersectsProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		mk := func() []uint32 {
			m := map[uint32]bool{}
			for i := 0; i < rng.Intn(30); i++ {
				m[uint32(rng.Intn(60))] = true
			}
			var out []uint32
			for x := uint32(0); x < 60; x++ {
				if m[x] {
					out = append(out, x)
				}
			}
			return out
		}
		a, b := mk(), mk()
		want := false
		bm := map[uint32]bool{}
		for _, x := range b {
			bm[x] = true
		}
		for _, x := range a {
			if bm[x] {
				want = true
				break
			}
		}
		return IntersectsSorted(a, b) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestIntersectsSortedZeroAlloc pins the //reach:hotpath contract
// reachlint enforces statically: the label intersection runs per query
// pair and must not allocate.
func TestIntersectsSortedZeroAlloc(t *testing.T) {
	a := []uint32{1, 5, 9, 40, 77, 120}
	b := []uint32{2, 6, 10, 41, 78, 121}
	c := []uint32{3, 9, 200}
	allocs := testing.AllocsPerRun(1000, func() {
		IntersectsSorted(a, b)
		IntersectsSorted(a, c)
		IntersectsSorted(nil, a)
	})
	if allocs != 0 {
		t.Fatalf("IntersectsSorted allocated %v times per run; the hot path must be allocation-free", allocs)
	}
}
