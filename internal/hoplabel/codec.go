package hoplabel

import (
	"fmt"

	"repro/internal/blockio"
)

// FromParts assembles a Labeling directly from its four CSR arrays,
// validating the offset structure so every later Out/In slice operation is
// in bounds. The arrays are aliased, not copied — this is the zero-copy
// entry point used when decoding an mmap'd snapshot. Label values are NOT
// range-checked: hops are only ever compared in merge intersections, so
// arbitrary values are memory-safe, and skipping the scan keeps load time
// proportional to the offset arrays, not the labels.
func FromParts(outOff, out, inOff, in []uint32) (*Labeling, error) {
	if len(outOff) == 0 || len(inOff) != len(outOff) {
		return nil, fmt.Errorf("hoplabel: offset arrays have lengths %d and %d", len(outOff), len(inOff))
	}
	n := len(outOff) - 1
	if outOff[0] != 0 || inOff[0] != 0 {
		return nil, fmt.Errorf("hoplabel: offsets must start at 0")
	}
	for v := 0; v < n; v++ {
		if outOff[v] > outOff[v+1] || inOff[v] > inOff[v+1] {
			return nil, fmt.Errorf("hoplabel: offsets not monotone at %d", v)
		}
	}
	if int(outOff[n]) != len(out) || int(inOff[n]) != len(in) {
		return nil, fmt.Errorf("hoplabel: offsets do not cover label arrays (%d/%d out, %d/%d in)",
			outOff[n], len(out), inOff[n], len(in))
	}
	return &Labeling{n: n, outOff: outOff, out: out, inOff: inOff, in: in}, nil
}

// Encode writes the labeling's four CSR arrays as snapshot blocks.
func (l *Labeling) Encode(w *blockio.Writer) {
	w.Uint32s(l.outOff)
	w.Uint32s(l.out)
	w.Uint32s(l.inOff)
	w.Uint32s(l.in)
}

// Decode restores a labeling written by Encode. From a slice-backed
// (mmap'd) reader the label arrays alias the mapping.
func Decode(r *blockio.Reader) (*Labeling, error) {
	outOff, err := r.Uint32s()
	if err != nil {
		return nil, err
	}
	out, err := r.Uint32s()
	if err != nil {
		return nil, err
	}
	inOff, err := r.Uint32s()
	if err != nil {
		return nil, err
	}
	in, err := r.Uint32s()
	if err != nil {
		return nil, err
	}
	return FromParts(outOff, out, inOff, in)
}
