package twohop

import (
	"fmt"

	"repro/internal/blockio"
	"repro/internal/graph"
	"repro/internal/hoplabel"
	"repro/internal/index"
)

func init() {
	index.Register(index.Descriptor{
		Tag:  "2HOP",
		Rank: 7,
		Doc:  "set-cover 2-hop labeling (Cohen et al.); Θ(TC) construction",
		Build: func(g *graph.Graph, opts index.BuildOptions) (index.Index, error) {
			return Build(g, Options{
				MaxVertices: opts.TwoHopMaxVertices,
				MaxTCPairs:  opts.TwoHopMaxTCPairs,
				MaxTime:     opts.TwoHopMaxTime,
			})
		},
		Encode: func(idx index.Index, w *blockio.Writer) error {
			th, ok := idx.(*TwoHop)
			if !ok {
				return fmt.Errorf("twohop: codec got %T", idx)
			}
			th.labeling.Encode(w)
			return w.Err()
		},
		Decode: func(g *graph.Graph, r *blockio.Reader, _ index.BuildOptions) (index.Index, error) {
			l, err := hoplabel.Decode(r)
			if err != nil {
				return nil, err
			}
			if l.NumVertices() != g.NumVertices() {
				return nil, fmt.Errorf("twohop: labeling has %d vertices, graph has %d", l.NumVertices(), g.NumVertices())
			}
			return &TwoHop{labeling: l}, nil
		},
	})
}
