// Package twohop implements the classic set-cover based 2-hop labeling of
// Cohen, Halperin, Kaplan & Zwick (SIAM J. Comput. 2003) — the "2HOP"
// baseline whose construction cost motivates the paper. The algorithm:
//
//  1. materialize the full transitive closure (forward and reverse);
//  2. repeatedly pick the hop vertex whose bipartite coverage
//     (ancestors × descendants restricted to uncovered pairs) has the best
//     covered-pairs-per-label-entry ratio, add it to the labels of exactly
//     those ancestors/descendants, and mark the pairs covered.
//
// The candidate scoring follows the fast-heuristic variants (HOPI;
// Schenkel et al., EDBT 2004) the paper says its 2HOP implementation uses:
// per candidate hop the full useful bipartite block is taken at once
// (rows/columns with at least one uncovered pair) rather than re-running
// densest-subgraph peeling, with lazy re-evaluation in a priority queue —
// scores only decrease as pairs get covered, so the lazy-heap greedy is
// exact with respect to this scoring.
//
// Construction deliberately remains Θ(TC): the point of this baseline in
// the evaluation is precisely that transitive-closure materialization and
// set-cover selection dominate and prevent scaling (Table 4/7).
package twohop

import (
	"container/heap"
	"fmt"

	"repro/internal/bitset"
	"repro/internal/graph"
	"repro/internal/hoplabel"
	"repro/internal/tc"
	"time"
)

// Options bounds construction so the harness can reproduce the paper's
// "—" entries instead of thrashing.
type Options struct {
	// MaxVertices refuses graphs larger than this (0 = 100_000).
	MaxVertices int
	// MaxTCPairs refuses closures larger than this many pairs
	// (0 = 200 million), estimated before materialization.
	MaxTCPairs int64
	// MaxTime aborts the greedy loop after this wall-clock budget — the
	// scaled-down analogue of the paper's 24-hour construction limit
	// (0 = unlimited).
	MaxTime time.Duration
}

func (o Options) withDefaults() Options {
	if o.MaxVertices == 0 {
		o.MaxVertices = 100_000
	}
	if o.MaxTCPairs == 0 {
		o.MaxTCPairs = 200_000_000
	}
	return o
}

// ErrTimeout reports that greedy selection exceeded Options.MaxTime.
var ErrTimeout = fmt.Errorf("twohop: construction exceeded time budget")

// TwoHop is the set-cover 2-hop labeling index.
type TwoHop struct {
	labeling *hoplabel.Labeling
}

// ErrTooLarge reports that the input exceeded the construction budget —
// the equivalent of the paper's 24-hour/32GB "—" table entries.
var ErrTooLarge = fmt.Errorf("twohop: input exceeds construction budget")

// Build constructs the 2HOP index for DAG g.
func Build(g *graph.Graph, opts Options) (*TwoHop, error) {
	opts = opts.withDefaults()
	n := g.NumVertices()
	if n > opts.MaxVertices {
		return nil, ErrTooLarge
	}
	if n > 2048 { // only estimate when the graph is big enough to matter
		if est := tc.EstimatePairs(g, 64, 1); est > opts.MaxTCPairs {
			return nil, ErrTooLarge
		}
	}
	if !graph.IsDAG(g) {
		return nil, fmt.Errorf("twohop: input must be a DAG")
	}

	closure := tc.Closure(g)         // closure[u] ∋ v iff u→v (incl. self)
	rclosure := tc.ReverseClosure(g) // rclosure[v] ∋ u iff u→v (incl. self)

	// uncov[u] = descendants w (u≠w) with pair (u,w) not yet covered.
	uncov := make([]*bitset.Bitset, n)
	var remaining int64
	for u := 0; u < n; u++ {
		b := closure[u].Clone()
		b.Clear(u)
		uncov[u] = b
		remaining += int64(b.Count())
	}

	builder := hoplabel.NewBuilder(n)
	// Every vertex records itself (covers the self pairs; distinct pairs
	// remain for the greedy below).
	for v := 0; v < n; v++ {
		builder.AddOut(uint32(v), uint32(v))
		builder.AddIn(uint32(v), uint32(v))
	}

	scratch := bitset.New(n)
	h := make(scoreHeap, 0, n)
	// Seed the heap with cheap optimistic scores (ancestors × descendants
	// count products) instead of exact coverage — the lazy loop below
	// recomputes the exact score on pop, so the seed only orders the first
	// evaluations. This keeps heap initialization O(n) instead of
	// O(n · |TC|/64).
	for v := 0; v < n; v++ {
		anc := int64(rclosure[v].Count())
		desc := int64(closure[v].Count())
		if anc == 0 || desc == 0 {
			continue
		}
		heap.Push(&h, hopScore{v: v, benefit: anc * desc, cost: anc + desc})
	}

	start := time.Now()
	iter := 0
	for remaining > 0 && h.Len() > 0 {
		iter++
		if opts.MaxTime > 0 && iter%64 == 0 && time.Since(start) > opts.MaxTime {
			return nil, ErrTimeout
		}
		top := heap.Pop(&h).(hopScore)
		cur := score(top.v, closure, rclosure, uncov, scratch)
		if cur.benefit <= 0 {
			continue
		}
		if h.Len() > 0 && cur.ratio() < h[0].ratio() {
			heap.Push(&h, cur) // stale: re-queue with the fresh score
			continue
		}
		remaining -= apply(top.v, closure, rclosure, uncov, builder)
	}
	if remaining != 0 {
		// Cannot happen: every pair (u,w) is coverable by hop w. Guard the
		// invariant loudly rather than returning an incomplete labeling.
		return nil, fmt.Errorf("twohop: greedy terminated with %d uncovered pairs", remaining)
	}
	return &TwoHop{labeling: builder.Freeze()}, nil
}

// hopScore is a lazy-heap entry: candidate hop v covering benefit uncovered
// pairs at a label cost of cost entries.
type hopScore struct {
	v       int
	benefit int64
	cost    int64
}

func (s hopScore) ratio() float64 {
	if s.cost == 0 {
		return 0
	}
	return float64(s.benefit) / float64(s.cost)
}

type scoreHeap []hopScore

func (h scoreHeap) Len() int            { return len(h) }
func (h scoreHeap) Less(i, j int) bool  { return h[i].ratio() > h[j].ratio() }
func (h scoreHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *scoreHeap) Push(x interface{}) { *h = append(*h, x.(hopScore)) }
func (h *scoreHeap) Pop() interface{} {
	old := *h
	it := old[len(old)-1]
	*h = old[:len(old)-1]
	return it
}

// score evaluates candidate hop v: benefit = uncovered pairs routable
// through v; cost = label entries needed (rows A' = ancestors of v with ≥1
// uncovered pair through v, plus columns B' = union of their uncovered
// descendants through v). scratch must be an n-capacity bitset; it is
// reset here.
func score(v int, closure, rclosure, uncov []*bitset.Bitset, scratch *bitset.Bitset) hopScore {
	scratch.Reset()
	var rows, benefit int64
	rclosure[v].ForEach(func(a int) {
		if c := bitset.CountAnd(uncov[a], closure[v]); c > 0 {
			rows++
			benefit += int64(c)
			scratch.OrAnd(uncov[a], closure[v])
		}
	})
	cols := int64(scratch.Count())
	return hopScore{v: v, benefit: benefit, cost: rows + cols}
}

// apply commits hop v: adds v to Lout of every useful ancestor and Lin of
// every useful descendant, marks the pairs covered, and returns how many
// pairs were newly covered.
func apply(v int, closure, rclosure, uncov []*bitset.Bitset, builder *hoplabel.Builder) int64 {
	colSet := bitset.New(closure[v].Len())
	var covered int64
	rclosure[v].ForEach(func(a int) {
		if c := bitset.CountAnd(uncov[a], closure[v]); c > 0 {
			covered += int64(c)
			colSet.OrAnd(uncov[a], closure[v])
			builder.AddOut(uint32(a), uint32(v))
			// The pairs (a, w) for w ∈ uncov[a] ∩ TC(v) now have common
			// hop v (v joins Lin(w) below for exactly those w).
			uncov[a].AndNot(closure[v])
		}
	})
	colSet.ForEach(func(w int) { builder.AddIn(uint32(w), uint32(v)) })
	return covered
}

// Name implements index.Index.
func (t *TwoHop) Name() string { return "2HOP" }

// Reachable answers u -> v by label intersection.
func (t *TwoHop) Reachable(u, v uint32) bool { return t.labeling.Reachable(u, v) }

// SizeInts returns the total label size in 32-bit integers.
func (t *TwoHop) SizeInts() int64 { return t.labeling.SizeInts() }

// Labeling exposes the underlying labeling (hops are vertex IDs).
func (t *TwoHop) Labeling() *hoplabel.Labeling { return t.labeling }
