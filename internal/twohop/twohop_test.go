package twohop

import (
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/testutil"
)

func TestTwoHopExhaustive(t *testing.T) {
	for name, g := range testutil.Families(47) {
		th, err := Build(g, Options{})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		testutil.CheckExhaustive(t, name, g, th)
	}
}

func TestTwoHopBudgetGuards(t *testing.T) {
	g := gen.UniformDAG(100, 250, 1)
	if _, err := Build(g, Options{MaxVertices: 50}); err != ErrTooLarge {
		t.Fatalf("vertex budget not enforced: %v", err)
	}
	// A dense-enough closure on a >2048-vertex graph must trip the pair
	// estimate guard.
	big := gen.CitationDAG(3000, 5, 0.6, 2)
	if _, err := Build(big, Options{MaxTCPairs: 1000}); err != ErrTooLarge {
		t.Fatalf("pair budget not enforced: %v", err)
	}
}

func TestTwoHopRejectsCycle(t *testing.T) {
	g := graph.MustFromEdges(2, [][2]graph.Vertex{{0, 1}, {1, 0}})
	if _, err := Build(g, Options{}); err == nil {
		t.Fatal("cycle accepted")
	}
}

func TestTwoHopLabelSizeSane(t *testing.T) {
	// The greedy should produce labels far smaller than the closure itself
	// on tree-like graphs.
	g := gen.TreeDAG(800, 0.1, 0, 4)
	th, err := Build(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if th.SizeInts() > int64(40*g.NumVertices()) {
		t.Errorf("2HOP labels implausibly large: %d ints for n=%d", th.SizeInts(), g.NumVertices())
	}
	testutil.CheckRandom(t, "tree800", g, th, 500, 5)
}
