// Package snapshot defines the universal oracle snapshot container: one
// versioned binary file holding everything needed to serve reachability
// queries without reparsing the input graph or rebuilding the index —
// the SCC condensation (comp[] plus the DAG in CSR form), the original
// vertex IDs when known, the method tag and build options, and the
// method's encoded index payload.
//
// The layout (see FORMAT in the README) is blockio blocks throughout:
// flat little-endian integer arrays, 8-byte aligned, so the hop-labeling
// and CSR sections of an mmap'd snapshot decode as zero-copy views of the
// mapping. Open memory-maps; Read is the io.Reader fallback that copies.
// Every decode path is bounds-checked — truncated or corrupted snapshots
// return errors, never panic.
//
// Which methods can be encoded is not this package's concern: the payload
// is produced and consumed through the internal/index registry, so a new
// method that registers a codec persists through this container with no
// changes here.
package snapshot

import (
	"fmt"
	"io"

	"repro/internal/blockio"
	"repro/internal/graph"
	"repro/internal/index"
	"repro/internal/observe"
)

// magic identifies the container format; the trailing byte is the
// version.
const magic = "RSNAPv2\x00"

// trailer terminates the payload; a decode that does not land exactly on
// it read a snapshot whose payload section was truncated or padded.
const trailer = "RSNAPend"

// flag bits in the header's flags word.
const (
	flagOrigIDs   = 1 << 0 // the container carries original vertex IDs
	flagObservers = 1 << 1 // the container carries an observer fast-path section

	knownFlags = flagOrigIDs | flagObservers
)

// Snapshot is the decoded container, minus the index payload (which is
// decoded separately through the method registry so the caller controls
// when — and against which graph — that happens).
type Snapshot struct {
	// Tag is the index method identifier (registry tag, e.g. "DL").
	Tag string
	// Opts are the build options the index was constructed with; rebuild
	// codecs replay them for deterministic reconstruction.
	Opts index.BuildOptions
	// OriginalN is the pre-condensation vertex count.
	OriginalN int
	// Comp maps each original vertex to its DAG vertex.
	Comp []uint32
	// DAG is the condensed graph.
	DAG *graph.Graph
	// OrigIDs, when non-nil, maps dense original vertices to the caller's
	// raw edge-list IDs (as reach.ReadGraph produces).
	OrigIDs []int64
	// Observers, when non-nil, is the precomputed observer fast-path
	// stack (internal/observe). Optional: snapshots written without it —
	// including every pre-observer snapshot — load fine, and the loader
	// rebuilds the stack from the DAG instead.
	Observers *observe.Stack
	// Fingerprint is the DAG's structural hash as recorded at save time;
	// it lets a daemon refuse a snapshot built from a different graph
	// without decoding the whole payload.
	Fingerprint uint64

	payload *blockio.Reader
	closer  func() error
}

// Write serializes a snapshot: header, condensation, then the index
// payload produced by encodePayload (normally the registered method
// codec's Encode).
func Write(w io.Writer, s *Snapshot, encodePayload func(*blockio.Writer) error) error {
	bw := blockio.NewWriter(w)
	bw.String(magic)
	bw.String(s.Tag)
	bw.Int64s([]int64{
		int64(s.Opts.Epsilon), int64(s.Opts.CoreLimit), s.Opts.Seed, int64(s.Opts.Traversals),
	})
	var flags uint64
	if s.OrigIDs != nil {
		flags |= flagOrigIDs
	}
	if s.Observers != nil {
		flags |= flagObservers
	}
	bw.Uint64(flags)
	bw.Uint64(uint64(s.OriginalN))
	bw.Uint64(s.Fingerprint)
	bw.Uint32s(s.Comp)
	graph.EncodeCSR(bw, s.DAG)
	if s.OrigIDs != nil {
		bw.Int64s(s.OrigIDs)
	}
	if s.Observers != nil {
		if err := observe.EncodeSection(s.Observers, bw); err != nil {
			return fmt.Errorf("snapshot: encoding observer section: %w", err)
		}
	}
	if err := bw.Err(); err != nil {
		return fmt.Errorf("snapshot: %w", err)
	}
	if err := encodePayload(bw); err != nil {
		return fmt.Errorf("snapshot: encoding %s payload: %w", s.Tag, err)
	}
	bw.String(trailer)
	if err := bw.Err(); err != nil {
		return fmt.Errorf("snapshot: %w", err)
	}
	return nil
}

// Open memory-maps a snapshot file and decodes its header and
// condensation. The returned Snapshot's slices and DAG alias the mapping:
// call Close only once nothing decoded from it is in use.
func Open(path string) (*Snapshot, error) {
	f, err := blockio.Open(path)
	if err != nil {
		return nil, err
	}
	s, err := decode(f.Reader)
	if err != nil {
		_ = f.Close() // best-effort unmap; the decode error is the one to report
		return nil, err
	}
	s.closer = f.Close
	return s, nil
}

// Read decodes a snapshot from a stream — the copying fallback for
// sources that cannot be mapped. The result is heap-backed; Close is a
// no-op.
func Read(r io.Reader) (*Snapshot, error) {
	return decode(blockio.NewStreamReader(r))
}

// ReadBytes decodes a snapshot from an in-memory buffer through the same
// zero-copy path Open uses for mappings. The buffer must outlive the
// snapshot and everything decoded from it.
func ReadBytes(data []byte) (*Snapshot, error) {
	return decode(blockio.NewSliceReader(data))
}

func decode(r *blockio.Reader) (*Snapshot, error) {
	got, err := r.String()
	if err != nil {
		return nil, fmt.Errorf("snapshot: reading magic: %w", err)
	}
	if got != magic {
		return nil, fmt.Errorf("snapshot: not a snapshot file (magic %q)", got)
	}
	s := &Snapshot{}
	if s.Tag, err = r.String(); err != nil {
		return nil, fmt.Errorf("snapshot: reading method tag: %w", err)
	}
	opts, err := r.Int64s()
	if err != nil {
		return nil, fmt.Errorf("snapshot: reading build options: %w", err)
	}
	if len(opts) != 4 {
		return nil, fmt.Errorf("snapshot: build options block has %d entries, want 4", len(opts))
	}
	s.Opts = index.BuildOptions{
		Epsilon: int(opts[0]), CoreLimit: int(opts[1]), Seed: opts[2], Traversals: int(opts[3]),
	}
	flags, err := r.Uint64()
	if err != nil {
		return nil, fmt.Errorf("snapshot: reading flags: %w", err)
	}
	if unknown := flags &^ uint64(knownFlags); unknown != 0 {
		// Unknown bits mean sections this build cannot even skip (the
		// layout is sequential); refuse rather than misparse.
		return nil, fmt.Errorf("snapshot: unknown flag bits %#x: written by a newer build", unknown)
	}
	origN, err := r.Uint64()
	if err != nil {
		return nil, fmt.Errorf("snapshot: reading vertex count: %w", err)
	}
	if origN > 1<<31 {
		return nil, fmt.Errorf("snapshot: implausible vertex count %d", origN)
	}
	s.OriginalN = int(origN)
	if s.Fingerprint, err = r.Uint64(); err != nil {
		return nil, fmt.Errorf("snapshot: reading fingerprint: %w", err)
	}
	if s.Comp, err = r.Uint32s(); err != nil {
		return nil, fmt.Errorf("snapshot: reading condensation map: %w", err)
	}
	if s.DAG, err = graph.DecodeCSR(r); err != nil {
		return nil, fmt.Errorf("snapshot: reading DAG: %w", err)
	}
	if len(s.Comp) != s.OriginalN {
		return nil, fmt.Errorf("snapshot: condensation map has %d entries for %d vertices", len(s.Comp), s.OriginalN)
	}
	dagN := uint32(s.DAG.NumVertices())
	for v, c := range s.Comp {
		if c >= dagN {
			return nil, fmt.Errorf("snapshot: vertex %d maps to DAG vertex %d of %d", v, c, dagN)
		}
	}
	if flags&flagOrigIDs != 0 {
		if s.OrigIDs, err = r.Int64s(); err != nil {
			return nil, fmt.Errorf("snapshot: reading original IDs: %w", err)
		}
		if len(s.OrigIDs) != s.OriginalN {
			return nil, fmt.Errorf("snapshot: %d original IDs for %d vertices", len(s.OrigIDs), s.OriginalN)
		}
	}
	if flags&flagObservers != 0 {
		// The section is self-validating (lengths, bounds, checksum); a
		// corrupt section fails the whole load, same as a corrupt DAG —
		// callers with the original graph rebuild, exactly as for any
		// other snapshot damage.
		if s.Observers, err = observe.DecodeSection(s.DAG, r); err != nil {
			return nil, fmt.Errorf("snapshot: %w", err)
		}
	}
	s.payload = r
	return s, nil
}

// DecodeIndex decodes the index payload through the method registry and
// verifies the container's trailer. It must be called exactly once, after
// which the payload reader is exhausted.
func (s *Snapshot) DecodeIndex() (index.Index, error) {
	d, ok := index.Get(s.Tag)
	if !ok {
		return nil, fmt.Errorf("snapshot: holds unknown index method %q", s.Tag)
	}
	idx, err := d.Decode(s.DAG, s.payload, s.Opts)
	if err != nil {
		return nil, fmt.Errorf("snapshot: decoding %s payload: %w", s.Tag, err)
	}
	end, err := s.payload.String()
	if err != nil {
		return nil, fmt.Errorf("snapshot: reading trailer: %w", err)
	}
	if end != trailer {
		return nil, fmt.Errorf("snapshot: payload not followed by trailer (got %q): file truncated or corrupt", end)
	}
	if rem := s.payload.Remaining(); rem > 0 {
		return nil, fmt.Errorf("snapshot: %d unexpected bytes after trailer", rem)
	}
	return idx, nil
}

// Close releases the file mapping backing an Open'd snapshot. It must not
// be called while the snapshot's graph or decoded index are still in use.
func (s *Snapshot) Close() error {
	if s.closer == nil {
		return nil
	}
	c := s.closer
	s.closer = nil
	return c()
}
