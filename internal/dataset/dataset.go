// Package dataset catalogs synthetic substitutes for the 27 benchmark
// graphs of the paper's Table 1. The original datasets (BioCyc pathway
// DAGs, citeseer/cit-Patents citation dumps, uniprot encodings, web/wiki
// crawls) are not redistributable, so each entry pairs the paper's
// vertex/edge budget with the structural family that drives the compared
// algorithms' behaviour:
//
//   - bio pathway graphs (agrocyc, ecoo, human, ...): sparse near-trees,
//     m/n ≈ 1.05 — generated as random trees plus a few percent extra edges;
//   - metabolic graphs (kegg, amaze, reactome): long chains with merges;
//   - citation networks (arxiv, citeseerx, cit-Patents): layered DAGs with
//     preferential attachment and m/n between 2 and 5;
//   - XML/document data (nasa, xmark): shallow wide trees plus idrefs;
//   - web/social crawls (web, wiki, email, lj): power-law degree DAGs;
//   - uniprot encodings (uniprotenc_*, mapped_*): gigantic near-forests
//     with m ≈ n - 2, trivial closures but scale-stress construction.
//
// Large graphs build at 1/scale of the paper's size (default scale 16) so
// the full Table 5-7 sweep fits a laptop-class machine; the paper-scale
// numbers stay in the Spec for reporting.
package dataset

import (
	"fmt"
	"sort"

	"repro/internal/gen"
	"repro/internal/graph"
)

// Class separates the paper's small-graph and large-graph table groups.
type Class int

const (
	// Small graphs are built at full paper scale.
	Small Class = iota
	// Large graphs are scaled down by the harness scale divisor.
	Large
)

func (c Class) String() string {
	if c == Small {
		return "small"
	}
	return "large"
}

// DefaultScale is the default divisor applied to large datasets.
const DefaultScale = 16

// Spec describes one dataset substitute.
type Spec struct {
	// Name matches the paper's Table 1 row.
	Name string
	// Class is Small (built at paper scale) or Large (scaled down).
	Class Class
	// PaperV, PaperE are the |V|, |E| of the coalesced DAG in Table 1.
	PaperV, PaperE int64
	// Family is a human-readable tag of the generator family used.
	Family string
	// build constructs the graph with n target vertices.
	build func(n int, seed int64) *graph.Graph
}

// Build generates the substitute. Small specs ignore scale; large specs
// build at PaperV/scale vertices (scale <= 0 selects DefaultScale).
func (s Spec) Build(scale int) *graph.Graph {
	n := int(s.PaperV)
	if s.Class == Large {
		if scale <= 0 {
			scale = DefaultScale
		}
		n = int(s.PaperV / int64(scale))
		if n < 64 {
			n = 64
		}
	}
	return s.build(n, seedFor(s.Name))
}

// BuildAt generates the substitute with an explicit vertex budget (used by
// unit tests to keep graphs tiny).
func (s Spec) BuildAt(n int) *graph.Graph {
	if n < 8 {
		n = 8
	}
	return s.build(n, seedFor(s.Name))
}

// seedFor derives a stable per-dataset seed (FNV-1a).
func seedFor(name string) int64 {
	h := uint64(1469598103934665603)
	for i := 0; i < len(name); i++ {
		h ^= uint64(name[i])
		h *= 1099511628211
	}
	return int64(h & 0x7FFFFFFFFFFFFFFF)
}

// ratio returns PaperE/PaperV as float for the generators.
func (s Spec) ratio() float64 { return float64(s.PaperE) / float64(s.PaperV) }

// treeSpec builds a bio-style near-tree with the spec's edge surplus.
func treeSpec(name string, v, e int64) Spec {
	s := Spec{Name: name, Class: Small, PaperV: v, PaperE: e, Family: "bio-tree"}
	s.build = func(n int, seed int64) *graph.Graph {
		extra := s.ratio() - 1
		if extra < 0 {
			extra = 0
		}
		return gen.TreeDAG(n, extra, 0, seed)
	}
	return s
}

// chainSpec builds a metabolic-style chain graph.
func chainSpec(name string, v, e int64, chains int, cross float64) Spec {
	return Spec{Name: name, Class: Small, PaperV: v, PaperE: e, Family: "metabolic-chain",
		build: func(n int, seed int64) *graph.Graph {
			c := chains * n / int(v)
			if c < 1 {
				c = 1
			}
			return gen.ChainDAG(n, c, cross, seed)
		}}
}

// xmlSpec builds an XML/document-style graph.
func xmlSpec(name string, v, e int64, fanout int) Spec {
	s := Spec{Name: name, Class: Small, PaperV: v, PaperE: e, Family: "xml"}
	s.build = func(n int, seed int64) *graph.Graph {
		idref := s.ratio() - 1
		if idref < 0 {
			idref = 0
		}
		return gen.XMLDAG(n, fanout, idref, seed)
	}
	return s
}

// citationSpec builds a citation-network substitute.
func citationSpec(name string, class Class, v, e int64, pref float64) Spec {
	s := Spec{Name: name, Class: class, PaperV: v, PaperE: e, Family: "citation"}
	s.build = func(n int, seed int64) *graph.Graph {
		return gen.CitationDAG(n, s.ratio(), pref, seed)
	}
	return s
}

// powerSpec builds a web/social power-law substitute.
func powerSpec(name string, v, e int64, skew float64) Spec {
	s := Spec{Name: name, Class: Large, PaperV: v, PaperE: e, Family: "power-law"}
	s.build = func(n int, seed int64) *graph.Graph {
		m := int(float64(n) * s.ratio())
		return gen.PowerLawDAG(n, m, skew, seed)
	}
	return s
}

// forestSpec builds a uniprot-style near-forest.
func forestSpec(name string, class Class, v, e int64) Spec {
	trees := int(v - e)
	if trees < 1 {
		trees = 1
	}
	s := Spec{Name: name, Class: class, PaperV: v, PaperE: e, Family: "forest"}
	s.build = func(n int, seed int64) *graph.Graph {
		t := int(int64(trees) * int64(n) / v)
		if t < 1 {
			t = 1
		}
		return gen.ForestDAG(n, t, seed)
	}
	return s
}

// uniformSpec builds an unstructured sparse substitute.
func uniformSpec(name string, v, e int64) Spec {
	s := Spec{Name: name, Class: Small, PaperV: v, PaperE: e, Family: "uniform"}
	s.build = func(n int, seed int64) *graph.Graph {
		m := int(float64(n) * s.ratio())
		return gen.UniformDAG(n, m, seed)
	}
	return s
}

// catalog is every Table 1 row in paper order.
var catalog = []Spec{
	// Small real graphs (Table 1, left column).
	treeSpec("agrocyc", 12684, 13408),
	chainSpec("amaze", 3710, 3600, 110, 0),
	treeSpec("anthra", 12499, 13104),
	citationSpec("arxiv", Small, 21608, 116805, 0.4),
	treeSpec("ecoo", 12620, 13350),
	treeSpec("hpycyc", 4771, 5859),
	treeSpec("human", 38811, 39576),
	chainSpec("kegg", 3617, 3908, 60, 0.08),
	treeSpec("mtbrv", 9602, 10245),
	xmlSpec("nasa", 5605, 7735, 4),
	uniformSpec("p2p", 48438, 55349),
	chainSpec("reactome", 901, 846, 55, 0),
	treeSpec("vchocyc", 9491, 10143),
	xmlSpec("xmark", 6080, 7028, 5),
	// Large real graphs (Table 1, right column).
	forestSpec("citeseer", Large, 693947, 312282),
	citationSpec("citeseerx", Large, 6540399, 15011259, 0.3),
	citationSpec("cit-Patents", Large, 3774768, 16518947, 0.4),
	powerSpec("email", 231000, 223004, 1.6),
	powerSpec("go_uniprot", 6967956, 34770235, 1.4),
	powerSpec("lj", 971232, 1024140, 1.5),
	func() Spec {
		s := treeSpec("mapped_100K", 2658702, 2660628)
		s.Class = Large
		return s
	}(),
	func() Spec {
		s := treeSpec("mapped_1M", 9387448, 9440404)
		s.Class = Large
		return s
	}(),
	forestSpec("uniprotenc_100m", Large, 16087295, 16087293),
	forestSpec("uniprotenc_150m", Large, 25037600, 25037598),
	forestSpec("uniprotenc_22m", Large, 1595444, 1595442),
	powerSpec("web", 371764, 517805, 1.3),
	powerSpec("wiki", 2281879, 2311570, 1.4),
}

// All returns every dataset spec in paper order.
func All() []Spec {
	out := make([]Spec, len(catalog))
	copy(out, catalog)
	return out
}

// SmallSpecs returns the small-graph group.
func SmallSpecs() []Spec { return filter(Small) }

// LargeSpecs returns the large-graph group.
func LargeSpecs() []Spec { return filter(Large) }

func filter(c Class) []Spec {
	var out []Spec
	for _, s := range catalog {
		if s.Class == c {
			out = append(out, s)
		}
	}
	return out
}

// ByName looks up a spec by its Table 1 name.
func ByName(name string) (Spec, bool) {
	for _, s := range catalog {
		if s.Name == name {
			return s, true
		}
	}
	return Spec{}, false
}

// Names returns all dataset names, sorted.
func Names() []string {
	out := make([]string, 0, len(catalog))
	for _, s := range catalog {
		out = append(out, s.Name)
	}
	sort.Strings(out)
	return out
}

// String renders a spec as a Table 1-style row.
func (s Spec) String() string {
	return fmt.Sprintf("%-16s %8s |V|=%d |E|=%d family=%s", s.Name, s.Class, s.PaperV, s.PaperE, s.Family)
}
