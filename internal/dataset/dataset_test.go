package dataset

import (
	"testing"

	"repro/internal/graph"
)

func TestCatalogCoversTable1(t *testing.T) {
	if got := len(All()); got != 27 {
		t.Fatalf("catalog has %d entries, Table 1 has 27", got)
	}
	if got := len(SmallSpecs()); got != 14 {
		t.Errorf("small group has %d entries, want 14", got)
	}
	if got := len(LargeSpecs()); got != 13 {
		t.Errorf("large group has %d entries, want 13", got)
	}
	seen := map[string]bool{}
	for _, s := range All() {
		if seen[s.Name] {
			t.Errorf("duplicate dataset %q", s.Name)
		}
		seen[s.Name] = true
		if s.PaperV <= 0 || s.PaperE < 0 {
			t.Errorf("%s: bad paper sizes", s.Name)
		}
		if s.String() == "" {
			t.Errorf("%s: empty String()", s.Name)
		}
	}
}

func TestByName(t *testing.T) {
	s, ok := ByName("cit-Patents")
	if !ok || s.PaperV != 3774768 {
		t.Fatalf("cit-Patents lookup: %v %v", s, ok)
	}
	if _, ok := ByName("nope"); ok {
		t.Fatal("bogus name found")
	}
	if len(Names()) != 27 {
		t.Fatalf("Names() has %d entries", len(Names()))
	}
}

// TestSmallSpecsMatchPaperSizes builds every small dataset at full scale
// and checks the realized |V| and that |E| is within 25% of Table 1.
func TestSmallSpecsMatchPaperSizes(t *testing.T) {
	for _, s := range SmallSpecs() {
		g := s.Build(0)
		if err := g.Validate(); err != nil {
			t.Fatalf("%s: %v", s.Name, err)
		}
		if !graph.IsDAG(g) {
			t.Fatalf("%s: not a DAG", s.Name)
		}
		if g.NumVertices() != int(s.PaperV) {
			t.Errorf("%s: |V| = %d, want %d", s.Name, g.NumVertices(), s.PaperV)
		}
		lo := float64(s.PaperE) * 0.75
		hi := float64(s.PaperE) * 1.25
		if m := float64(g.NumEdges()); m < lo || m > hi {
			t.Errorf("%s: |E| = %d, want within 25%% of %d", s.Name, g.NumEdges(), s.PaperE)
		}
	}
}

// TestLargeSpecsScaled builds every large dataset at an aggressive scale
// divisor and checks structure plus edge-density fidelity.
func TestLargeSpecsScaled(t *testing.T) {
	for _, s := range LargeSpecs() {
		g := s.BuildAt(3000)
		if err := g.Validate(); err != nil {
			t.Fatalf("%s: %v", s.Name, err)
		}
		if !graph.IsDAG(g) {
			t.Fatalf("%s: not a DAG", s.Name)
		}
		wantDensity := float64(s.PaperE) / float64(s.PaperV)
		gotDensity := float64(g.NumEdges()) / float64(g.NumVertices())
		if gotDensity < wantDensity*0.6-0.05 || gotDensity > wantDensity*1.4+0.05 {
			t.Errorf("%s: density %.3f, paper %.3f", s.Name, gotDensity, wantDensity)
		}
	}
}

func TestBuildScalesLargeOnly(t *testing.T) {
	small, _ := ByName("kegg")
	if small.Build(4).NumVertices() != int(small.PaperV) {
		t.Error("scale must not shrink small datasets")
	}
	large, _ := ByName("wiki")
	g := large.Build(64)
	want := int(large.PaperV) / 64
	if g.NumVertices() != want {
		t.Errorf("wiki at scale 64: |V| = %d, want %d", g.NumVertices(), want)
	}
}

func TestBuildDeterministic(t *testing.T) {
	s, _ := ByName("arxiv")
	a, b := s.BuildAt(500), s.BuildAt(500)
	if a.NumEdges() != b.NumEdges() {
		t.Fatal("same spec produced different graphs")
	}
}
