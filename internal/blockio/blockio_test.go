package blockio

import (
	"bytes"
	"os"
	"path/filepath"
	"slices"
	"testing"
)

func writeAll(t *testing.T) []byte {
	t.Helper()
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.Uint64(42)
	w.String("hello")
	w.Uint32s([]uint32{1, 2, 3, 4, 5})
	w.Int32s([]int32{-1, 0, 7})
	w.Uint64s([]uint64{1 << 40, 2})
	w.Int64s([]int64{-9, 9})
	w.Uint32s(nil)
	w.Uint64(7)
	if err := w.Err(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func checkAll(t *testing.T, r *Reader) {
	t.Helper()
	if v, err := r.Uint64(); err != nil || v != 42 {
		t.Fatalf("Uint64 = %d, %v", v, err)
	}
	if s, err := r.String(); err != nil || s != "hello" {
		t.Fatalf("String = %q, %v", s, err)
	}
	if a, err := r.Uint32s(); err != nil || !slices.Equal(a, []uint32{1, 2, 3, 4, 5}) {
		t.Fatalf("Uint32s = %v, %v", a, err)
	}
	if a, err := r.Int32s(); err != nil || !slices.Equal(a, []int32{-1, 0, 7}) {
		t.Fatalf("Int32s = %v, %v", a, err)
	}
	if a, err := r.Uint64s(); err != nil || !slices.Equal(a, []uint64{1 << 40, 2}) {
		t.Fatalf("Uint64s = %v, %v", a, err)
	}
	if a, err := r.Int64s(); err != nil || !slices.Equal(a, []int64{-9, 9}) {
		t.Fatalf("Int64s = %v, %v", a, err)
	}
	if a, err := r.Uint32s(); err != nil || len(a) != 0 {
		t.Fatalf("empty Uint32s = %v, %v", a, err)
	}
	if v, err := r.Uint64(); err != nil || v != 7 {
		t.Fatalf("trailing Uint64 = %d, %v", v, err)
	}
}

func TestRoundTripSlice(t *testing.T) {
	checkAll(t, NewSliceReader(writeAll(t)))
}

func TestRoundTripStream(t *testing.T) {
	checkAll(t, NewStreamReader(bytes.NewReader(writeAll(t))))
}

func TestRoundTripMmap(t *testing.T) {
	path := filepath.Join(t.TempDir(), "blocks.bin")
	if err := os.WriteFile(path, writeAll(t), 0o644); err != nil {
		t.Fatal(err)
	}
	f, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	checkAll(t, f.Reader)
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil { // double close is safe
		t.Fatal(err)
	}
}

// TestZeroCopyAliasing proves the mmap promise: a slice-backed read of a
// uint32 block returns a view into the backing buffer, not a copy.
func TestZeroCopyAliasing(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.Uint32s([]uint32{10, 20, 30})
	data := buf.Bytes()
	r := NewSliceReader(data)
	if !r.ZeroCopy() {
		t.Skip("host is not little-endian; zero-copy disabled by design")
	}
	a, err := r.Uint32s()
	if err != nil {
		t.Fatal(err)
	}
	data[8] = 99 // first payload byte (after the 8-byte length prefix)
	if a[0] != 99 {
		t.Fatalf("expected aliased view, got copy (a[0]=%d)", a[0])
	}
}

// TestTruncationEverywhere chops the valid stream at every byte offset and
// requires an error (never a panic) from both backends.
func TestTruncationEverywhere(t *testing.T) {
	full := writeAll(t)
	for cut := 0; cut < len(full); cut++ {
		for _, mk := range []func([]byte) *Reader{
			func(b []byte) *Reader { return NewSliceReader(b) },
			func(b []byte) *Reader { return NewStreamReader(bytes.NewReader(b)) },
		} {
			r := mk(full[:cut])
			sawErr := false
			steps := []func() error{
				func() error { _, err := r.Uint64(); return err },
				func() error { _, err := r.String(); return err },
				func() error { _, err := r.Uint32s(); return err },
				func() error { _, err := r.Int32s(); return err },
				func() error { _, err := r.Uint64s(); return err },
				func() error { _, err := r.Int64s(); return err },
				func() error { _, err := r.Uint32s(); return err },
				func() error { _, err := r.Uint64(); return err },
			}
			for _, step := range steps {
				if err := step(); err != nil {
					sawErr = true
					break
				}
			}
			if !sawErr {
				t.Fatalf("cut=%d decoded fully without error", cut)
			}
		}
	}
}

func TestImplausibleLengthRejected(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.Uint64(1 << 60) // absurd block length prefix
	r := NewSliceReader(buf.Bytes())
	if _, err := r.Uint32s(); err == nil {
		t.Fatal("accepted absurd block length")
	}
	r2 := NewStreamReader(bytes.NewReader(buf.Bytes()))
	if _, err := r2.Uint32s(); err == nil {
		t.Fatal("stream accepted absurd block length")
	}
}
