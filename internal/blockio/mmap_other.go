//go:build !unix

package blockio

import "os"

// mmapFile on platforms without a memory-map syscall wrapper reads the
// whole file; the Reader still gets a slice backend (and hence zero-copy
// views of that buffer), only the page-cache sharing is lost.
func mmapFile(path string) ([]byte, func() error, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, nil, err
	}
	return data, func() error { return nil }, nil
}
