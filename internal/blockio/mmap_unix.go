//go:build unix

package blockio

import (
	"fmt"
	"os"
	"syscall"
)

// mmapFile maps path read-only. The returned closer unmaps; it must not be
// called while views of the mapping are still in use.
func mmapFile(path string) ([]byte, func() error, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return nil, nil, err
	}
	size := st.Size()
	if size == 0 {
		return nil, func() error { return nil }, nil
	}
	if size > int64(^uint(0)>>1) {
		return nil, nil, fmt.Errorf("blockio: %s: file too large to map (%d bytes)", path, size)
	}
	data, err := syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		return nil, nil, fmt.Errorf("blockio: mmap %s: %w", path, err)
	}
	return data, func() error { return syscall.Munmap(data) }, nil
}
