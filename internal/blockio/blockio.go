// Package blockio is the low-level serialization substrate of the
// snapshot format: length-prefixed, 8-byte-aligned, little-endian blocks
// of flat integer data. The layout is designed so a snapshot file can be
// mmap'd and its []uint32 / []uint64 sections handed out as zero-copy
// views of the mapping — loading a multi-gigabyte hop labeling then costs
// one mmap call plus O(#blocks) header reads, not a pass over the data.
//
// A Reader has two backends: slice-backed (an mmap'd file or any in-memory
// buffer), which aliases block payloads when the host is little-endian and
// the payload is suitably aligned, and stream-backed (any io.Reader),
// which copies. Both are fully bounds-checked: truncated or corrupted
// input yields errors, never panics or unbounded allocations.
package blockio

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"unsafe"
)

// hostLittleEndian reports whether the running machine stores integers
// little-endian; zero-copy views are only safe then (the file format is
// little-endian regardless).
var hostLittleEndian = func() bool {
	var x uint16 = 1
	return *(*byte)(unsafe.Pointer(&x)) == 1
}()

// maxBlockElems bounds any single block's element count; it exists so a
// corrupted length prefix on a stream (whose true size is unknowable)
// cannot demand an absurd allocation in one step.
const maxBlockElems = 1 << 34

// Writer emits aligned little-endian blocks to an io.Writer, tracking the
// first error so call sites can write a whole section unconditionally and
// check once.
type Writer struct {
	w       io.Writer
	off     int64
	err     error
	scratch [64 * 1024]byte
}

// NewWriter returns a Writer over w.
func NewWriter(w io.Writer) *Writer { return &Writer{w: w} }

// Err returns the first write error, or nil.
func (w *Writer) Err() error { return w.err }

// Offset returns the number of bytes written so far.
func (w *Writer) Offset() int64 { return w.off }

func (w *Writer) writeRaw(p []byte) {
	if w.err != nil {
		return
	}
	n, err := w.w.Write(p)
	w.off += int64(n)
	w.err = err
}

var padding [8]byte

// pad aligns the stream to an 8-byte boundary.
func (w *Writer) pad() {
	if rem := int(w.off & 7); rem != 0 {
		w.writeRaw(padding[:8-rem])
	}
}

// Uint64 writes one raw 8-byte value.
func (w *Writer) Uint64(v uint64) {
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], v)
	w.writeRaw(buf[:])
}

// Bytes writes a length-prefixed byte block, padded to alignment.
func (w *Writer) Bytes(p []byte) {
	w.Uint64(uint64(len(p)))
	w.writeRaw(p)
	w.pad()
}

// String writes a length-prefixed string block.
func (w *Writer) String(s string) { w.Bytes([]byte(s)) }

// Uint32s writes a length-prefixed []uint32 block.
func (w *Writer) Uint32s(a []uint32) {
	w.Uint64(uint64(len(a)))
	for len(a) > 0 && w.err == nil {
		chunk := len(w.scratch) / 4
		if chunk > len(a) {
			chunk = len(a)
		}
		for i := 0; i < chunk; i++ {
			binary.LittleEndian.PutUint32(w.scratch[i*4:], a[i])
		}
		w.writeRaw(w.scratch[:chunk*4])
		a = a[chunk:]
	}
	w.pad()
}

// Int32s writes a length-prefixed []int32 block.
func (w *Writer) Int32s(a []int32) {
	w.Uint64(uint64(len(a)))
	for len(a) > 0 && w.err == nil {
		chunk := len(w.scratch) / 4
		if chunk > len(a) {
			chunk = len(a)
		}
		for i := 0; i < chunk; i++ {
			binary.LittleEndian.PutUint32(w.scratch[i*4:], uint32(a[i]))
		}
		w.writeRaw(w.scratch[:chunk*4])
		a = a[chunk:]
	}
	w.pad()
}

// Uint64s writes a length-prefixed []uint64 block.
func (w *Writer) Uint64s(a []uint64) {
	w.Uint64(uint64(len(a)))
	for len(a) > 0 && w.err == nil {
		chunk := len(w.scratch) / 8
		if chunk > len(a) {
			chunk = len(a)
		}
		for i := 0; i < chunk; i++ {
			binary.LittleEndian.PutUint64(w.scratch[i*8:], a[i])
		}
		w.writeRaw(w.scratch[:chunk*8])
		a = a[chunk:]
	}
}

// Int64s writes a length-prefixed []int64 block.
func (w *Writer) Int64s(a []int64) {
	w.Uint64(uint64(len(a)))
	for len(a) > 0 && w.err == nil {
		chunk := len(w.scratch) / 8
		if chunk > len(a) {
			chunk = len(a)
		}
		for i := 0; i < chunk; i++ {
			binary.LittleEndian.PutUint64(w.scratch[i*8:], uint64(a[i]))
		}
		w.writeRaw(w.scratch[:chunk*8])
		a = a[chunk:]
	}
}

// Reader decodes blocks written by Writer. Exactly one of data / r is the
// backend. Slice-backed readers return zero-copy views of the backing
// array where safe; stream-backed readers copy.
type Reader struct {
	data []byte
	off  int
	r    io.Reader
	read int64 // bytes consumed from r, for alignment tracking
}

// NewSliceReader returns a Reader over an in-memory (or mmap'd) buffer.
// Blocks handed out may alias data; the buffer must outlive all views.
func NewSliceReader(data []byte) *Reader { return &Reader{data: data} }

// NewStreamReader returns a copying Reader over r.
func NewStreamReader(r io.Reader) *Reader { return &Reader{r: r} }

// ZeroCopy reports whether this reader can alias its backing buffer.
func (r *Reader) ZeroCopy() bool { return r.data != nil && hostLittleEndian }

// Remaining returns the unread byte count for slice-backed readers, -1 for
// streams.
func (r *Reader) Remaining() int {
	if r.data == nil {
		return -1
	}
	return len(r.data) - r.off
}

// take consumes n raw bytes and returns them (aliased in slice mode).
func (r *Reader) take(n int) ([]byte, error) {
	if r.data != nil {
		if n > len(r.data)-r.off {
			return nil, fmt.Errorf("blockio: truncated input: need %d bytes at offset %d of %d", n, r.off, len(r.data))
		}
		p := r.data[r.off : r.off+n]
		r.off += n
		return p, nil
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r.r, buf); err != nil {
		return nil, fmt.Errorf("blockio: truncated input: %w", err)
	}
	r.read += int64(n)
	return buf, nil
}

// skipPad consumes alignment padding after a block body.
func (r *Reader) skipPad() error {
	pos := int64(r.off)
	if r.data == nil {
		pos = r.read
	}
	if rem := int(pos & 7); rem != 0 {
		_, err := r.take(8 - rem)
		return err
	}
	return nil
}

// Uint64 reads one raw 8-byte value.
func (r *Reader) Uint64() (uint64, error) {
	p, err := r.take(8)
	if err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint64(p), nil
}

// blockLen reads and sanity-checks a block's element count against the
// element width and, in slice mode, the bytes actually present.
func (r *Reader) blockLen(elemSize int) (int, error) {
	n, err := r.Uint64()
	if err != nil {
		return 0, err
	}
	if n > maxBlockElems {
		return 0, fmt.Errorf("blockio: implausible block length %d", n)
	}
	byteLen := n * uint64(elemSize)
	if byteLen > math.MaxInt {
		return 0, fmt.Errorf("blockio: block length %d overflows", n)
	}
	if r.data != nil && int(byteLen) > len(r.data)-r.off {
		return 0, fmt.Errorf("blockio: truncated input: block of %d bytes at offset %d of %d", byteLen, r.off, len(r.data))
	}
	return int(n), nil
}

// Bytes reads a byte block. Slice-backed readers alias the backing array.
func (r *Reader) Bytes() ([]byte, error) {
	n, err := r.blockLen(1)
	if err != nil {
		return nil, err
	}
	p, err := r.takeStream(n, 1)
	if err != nil {
		return nil, err
	}
	return p, r.skipPad()
}

// takeStream consumes n*elemSize bytes, growing incrementally in stream
// mode so a corrupt length cannot force one huge allocation up front.
func (r *Reader) takeStream(n, elemSize int) ([]byte, error) {
	if r.data != nil {
		return r.take(n * elemSize)
	}
	total := n * elemSize
	const step = 1 << 20
	buf := make([]byte, 0, min(total, step))
	for len(buf) < total {
		chunk := min(total-len(buf), step)
		part, err := r.take(chunk)
		if err != nil {
			return nil, err
		}
		buf = append(buf, part...)
	}
	return buf, nil
}

// String reads a string block (always copied — strings are immutable).
func (r *Reader) String() (string, error) {
	p, err := r.Bytes()
	if err != nil {
		return "", err
	}
	return string(p), nil
}

// aligned4 reports whether p's base is 4-byte aligned.
func aligned4(p []byte) bool { return uintptr(unsafe.Pointer(&p[0]))&3 == 0 }

// aligned8 reports whether p's base is 8-byte aligned.
func aligned8(p []byte) bool { return uintptr(unsafe.Pointer(&p[0]))&7 == 0 }

// Uint32s reads a []uint32 block. Slice-backed little-endian readers
// return a zero-copy view of the backing buffer.
func (r *Reader) Uint32s() ([]uint32, error) {
	n, err := r.blockLen(4)
	if err != nil {
		return nil, err
	}
	if n == 0 {
		return nil, r.skipPad()
	}
	p, err := r.takeStream(n, 4)
	if err != nil {
		return nil, err
	}
	if err := r.skipPad(); err != nil {
		return nil, err
	}
	if r.ZeroCopy() && aligned4(p) {
		return unsafe.Slice((*uint32)(unsafe.Pointer(&p[0])), n), nil
	}
	out := make([]uint32, n)
	for i := range out {
		out[i] = binary.LittleEndian.Uint32(p[i*4:])
	}
	return out, nil
}

// Int32s reads an []int32 block (zero-copy under the same conditions as
// Uint32s).
func (r *Reader) Int32s() ([]int32, error) {
	u, err := r.Uint32s()
	if err != nil {
		return nil, err
	}
	if len(u) == 0 {
		return nil, nil
	}
	// []uint32 and []int32 share representation; reinterpret rather than copy.
	return unsafe.Slice((*int32)(unsafe.Pointer(&u[0])), len(u)), nil
}

// Uint64s reads a []uint64 block. Slice-backed little-endian readers
// return a zero-copy view when the payload is 8-byte aligned.
func (r *Reader) Uint64s() ([]uint64, error) {
	n, err := r.blockLen(8)
	if err != nil {
		return nil, err
	}
	if n == 0 {
		return nil, nil
	}
	p, err := r.takeStream(n, 8)
	if err != nil {
		return nil, err
	}
	if r.ZeroCopy() && aligned8(p) {
		return unsafe.Slice((*uint64)(unsafe.Pointer(&p[0])), n), nil
	}
	out := make([]uint64, n)
	for i := range out {
		out[i] = binary.LittleEndian.Uint64(p[i*8:])
	}
	return out, nil
}

// Int64s reads an []int64 block.
func (r *Reader) Int64s() ([]int64, error) {
	u, err := r.Uint64s()
	if err != nil {
		return nil, err
	}
	if len(u) == 0 {
		return nil, nil
	}
	return unsafe.Slice((*int64)(unsafe.Pointer(&u[0])), len(u)), nil
}
