package blockio

// File is a slice-backed Reader over a memory-mapped file.
type File struct {
	*Reader
	close func() error
}

// Open memory-maps path (or reads it fully on platforms without mmap) and
// returns a zero-copy-capable Reader over its contents.
//
// Close unmaps the file; any slices previously returned by the Reader
// alias the mapping and must not be touched afterwards. Holding the File
// open for the life of the decoded structures is the intended usage.
func Open(path string) (*File, error) {
	data, closer, err := mmapFile(path)
	if err != nil {
		return nil, err
	}
	return &File{Reader: NewSliceReader(data), close: closer}, nil
}

// Close releases the mapping. Safe to call more than once.
func (f *File) Close() error {
	if f.close == nil {
		return nil
	}
	c := f.close
	f.close = nil
	return c()
}
