package grail

import (
	"fmt"
	"sync"

	"repro/internal/blockio"
	"repro/internal/graph"
	"repro/internal/index"
)

func init() {
	index.Register(index.Descriptor{
		Tag:  "GRAIL",
		Rank: 2,
		Doc:  "random-interval labels + pruned online search (Yildirim et al., PVLDB 2010)",
		Build: func(g *graph.Graph, opts index.BuildOptions) (index.Index, error) {
			return Build(g, Options{Traversals: opts.Traversals, Seed: opts.Seed}), nil
		},
		Encode: func(idx index.Index, w *blockio.Writer) error {
			gr, ok := idx.(*Grail)
			if !ok {
				return fmt.Errorf("grail: codec got %T", idx)
			}
			w.Uint64(uint64(gr.k))
			for i := 0; i < gr.k; i++ {
				w.Uint32s(gr.lo[i])
				w.Uint32s(gr.hi[i])
			}
			w.Int32s(gr.level)
			return w.Err()
		},
		Decode: func(g *graph.Graph, r *blockio.Reader, _ index.BuildOptions) (index.Index, error) {
			k64, err := r.Uint64()
			if err != nil {
				return nil, err
			}
			if k64 == 0 || k64 > 1024 {
				return nil, fmt.Errorf("grail: implausible traversal count %d", k64)
			}
			k := int(k64)
			n := g.NumVertices()
			gr := &Grail{g: g, k: k, lo: make([][]uint32, k), hi: make([][]uint32, k)}
			for i := 0; i < k; i++ {
				if gr.lo[i], err = r.Uint32s(); err != nil {
					return nil, err
				}
				if gr.hi[i], err = r.Uint32s(); err != nil {
					return nil, err
				}
				if len(gr.lo[i]) != n || len(gr.hi[i]) != n {
					return nil, fmt.Errorf("grail: labeling %d has %d/%d entries for %d vertices", i, len(gr.lo[i]), len(gr.hi[i]), n)
				}
			}
			if gr.level, err = r.Int32s(); err != nil {
				return nil, err
			}
			if len(gr.level) != n {
				return nil, fmt.Errorf("grail: level array has %d entries for %d vertices", len(gr.level), n)
			}
			gr.pool = sync.Pool{New: func() any {
				return &grailScratch{vst: graph.NewVisitor(n), stack: make([]graph.Vertex, 0, 64)}
			}}
			return gr, nil
		},
	})
}
