// Package grail implements GRAIL (Yildirim, Chaoji & Zaki, PVLDB 2010),
// the scalable online-search baseline of the paper's evaluation: each
// vertex carries k interval labels from k randomized post-order DFS
// traversals. Interval non-containment in any labeling proves
// non-reachability; otherwise a pruned online DFS decides. Construction is
// light (k passes) and the index is small (2k integers per vertex), but
// positive queries can cost a graph traversal — the one-to-two orders of
// magnitude query gap the paper reports.
package grail

import (
	"math/rand"
	"sync"

	"repro/internal/graph"
)

// DefaultTraversals is the paper's setting: 5 random interval labelings.
const DefaultTraversals = 5

// Options configures GRAIL construction.
type Options struct {
	// Traversals is k, the number of random DFS labelings (default 5).
	Traversals int
	// Seed drives the randomized traversal orders.
	Seed int64
}

// Grail is the GRAIL reachability index.
type Grail struct {
	g *graph.Graph
	k int
	// lo[i][v], hi[i][v]: interval of v in labeling i; u→v implies
	// lo[i][u] <= lo[i][v] && hi[i][v] <= hi[i][u] for every i.
	lo, hi [][]uint32
	// level is the longest-path topological level, used as an extra
	// negative filter: u→v implies level[u] < level[v].
	level []int32
	// pool holds per-query DFS scratch so Reachable is safe for
	// concurrent use from many goroutines.
	pool sync.Pool // *grailScratch
}

type grailScratch struct {
	vst   *graph.Visitor
	stack []graph.Vertex
}

// Build constructs the GRAIL index for DAG g.
func Build(g *graph.Graph, opts Options) *Grail {
	k := opts.Traversals
	if k <= 0 {
		k = DefaultTraversals
	}
	n := g.NumVertices()
	gr := &Grail{
		g: g, k: k,
		lo: make([][]uint32, k), hi: make([][]uint32, k),
	}
	gr.pool.New = func() any {
		return &grailScratch{vst: graph.NewVisitor(n), stack: make([]graph.Vertex, 0, 64)}
	}
	gr.level, _ = graph.TopoLevels(g)
	rng := rand.New(rand.NewSource(opts.Seed))
	for i := 0; i < k; i++ {
		gr.lo[i], gr.hi[i] = randomIntervalLabeling(g, rng)
	}
	return gr
}

// randomIntervalLabeling runs one randomized post-order DFS and returns
// per-vertex intervals [lo, hi]: hi is the post-order rank, lo the minimum
// rank over all (not just tree) descendants.
func randomIntervalLabeling(g *graph.Graph, rng *rand.Rand) (lo, hi []uint32) {
	n := g.NumVertices()
	lo = make([]uint32, n)
	hi = make([]uint32, n)
	visited := make([]bool, n)
	next := uint32(1) // post-order counter; 0 stays "unranked"

	roots := g.Roots()
	rng.Shuffle(len(roots), func(i, j int) { roots[i], roots[j] = roots[j], roots[i] })

	// Iterative randomized DFS assigning post-order ranks.
	type frame struct {
		v    graph.Vertex
		kids []graph.Vertex
		next int
	}
	var stack []frame
	shuffledOut := func(v graph.Vertex) []graph.Vertex {
		out := g.Out(v)
		kids := make([]graph.Vertex, len(out))
		for i, w := range out {
			kids[i] = w
		}
		rng.Shuffle(len(kids), func(i, j int) { kids[i], kids[j] = kids[j], kids[i] })
		return kids
	}
	dfs := func(start graph.Vertex) {
		if visited[start] {
			return
		}
		visited[start] = true
		stack = append(stack[:0], frame{v: start, kids: shuffledOut(start)})
		for len(stack) > 0 {
			f := &stack[len(stack)-1]
			if f.next < len(f.kids) {
				w := f.kids[f.next]
				f.next++
				if !visited[w] {
					visited[w] = true
					stack = append(stack, frame{v: w, kids: shuffledOut(w)})
				}
				continue
			}
			hi[f.v] = next
			next++
			stack = stack[:len(stack)-1]
		}
	}
	for _, r := range roots {
		dfs(r)
	}
	// Vertices unreachable from any root exist only in cyclic graphs; DAG
	// roots cover everything, but guard anyway.
	for v := 0; v < n; v++ {
		if !visited[v] {
			dfs(graph.Vertex(v))
		}
	}

	// lo[v] = min(hi[v], min over all children lo[c]), in reverse
	// topological order so children are final first.
	order, _ := graph.TopoOrder(g)
	for i := len(order) - 1; i >= 0; i-- {
		v := order[i]
		m := hi[v]
		for _, w := range g.Out(v) {
			if lo[w] < m {
				m = lo[w]
			}
		}
		lo[v] = m
	}
	return lo, hi
}

// contains reports whether u's intervals subsume v's in every labeling —
// the necessary condition for u→v.
func (gr *Grail) contains(u, v uint32) bool {
	for i := 0; i < gr.k; i++ {
		if gr.lo[i][u] > gr.lo[i][v] || gr.hi[i][v] > gr.hi[i][u] {
			return false
		}
	}
	return true
}

// Name implements index.Index.
func (gr *Grail) Name() string { return "GRAIL" }

// Reachable answers u -> v with interval pruning plus online DFS. Safe
// for concurrent use.
func (gr *Grail) Reachable(u, v uint32) bool {
	if u == v {
		return true
	}
	if gr.level[u] >= gr.level[v] {
		return false
	}
	if !gr.contains(u, v) {
		return false
	}
	// Pruned DFS: only descend into children whose intervals still contain
	// v's (and which pass the level filter).
	s := gr.pool.Get().(*grailScratch)
	defer gr.pool.Put(s)
	s.vst.Reset()
	s.vst.Visit(graph.Vertex(u))
	s.stack = append(s.stack[:0], graph.Vertex(u))
	for len(s.stack) > 0 {
		x := s.stack[len(s.stack)-1]
		s.stack = s.stack[:len(s.stack)-1]
		for _, w := range gr.g.Out(x) {
			if uint32(w) == v {
				return true
			}
			if !s.vst.Visit(w) {
				continue
			}
			if gr.level[w] >= gr.level[v] {
				continue
			}
			if gr.contains(uint32(w), v) {
				s.stack = append(s.stack, w)
			}
		}
	}
	return false
}

// SizeInts reports 2k interval integers plus one level integer per vertex.
func (gr *Grail) SizeInts() int64 {
	return int64(gr.g.NumVertices()) * int64(2*gr.k+1)
}
