package grail

import (
	"testing"

	"repro/internal/gen"
	"repro/internal/testutil"
)

func TestGrailExhaustive(t *testing.T) {
	for name, g := range testutil.Families(7) {
		gr := Build(g, Options{Seed: 42})
		testutil.CheckExhaustive(t, name, g, gr)
	}
}

func TestGrailTraversalCounts(t *testing.T) {
	g := gen.CitationDAG(300, 3, 0.5, 5)
	for _, k := range []int{1, 2, 5, 8} {
		gr := Build(g, Options{Traversals: k, Seed: 1})
		testutil.CheckRandom(t, "citation", g, gr, 400, 9)
		want := int64(g.NumVertices()) * int64(2*k+1)
		if gr.SizeInts() != want {
			t.Errorf("k=%d: SizeInts = %d, want %d", k, gr.SizeInts(), want)
		}
	}
}

func TestGrailIntervalInvariant(t *testing.T) {
	// u→v implies containment in every labeling; verify on edges (the
	// base case that extends transitively).
	g := gen.UniformDAG(200, 600, 11)
	gr := Build(g, Options{Seed: 3})
	g.Edges(func(u, v uint32) bool {
		if !gr.contains(u, v) {
			t.Errorf("edge (%d,%d): intervals do not contain", u, v)
		}
		return true
	})
}

func TestGrailLargerScaleRandom(t *testing.T) {
	g := gen.TreeDAG(5000, 0.1, 0, 8)
	gr := Build(g, Options{Seed: 4})
	testutil.CheckRandom(t, "tree5k", g, gr, 800, 6)
}
