package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"repro/internal/lint/analysis"
)

// CtxFlow keeps request deadlines intact through the serving stack.
//
// PR 3 threaded context deadlines from the HTTP edge down to the
// router probes; one context.Background() in the middle silently
// detaches everything below it from the caller's deadline and from
// shutdown. Inside the serving packages (internal/server and
// internal/fleet) this analyzer enforces:
//
//   - no calls to context.Background or context.TODO — base contexts
//     are injected by main, not minted mid-stack
//   - an exported function or method that takes a context.Context
//     takes it as the first parameter (after the receiver)
//   - an exported function or method whose body talks to the network
//     (calls into net or net/http) must take a context.Context, so the
//     caller's deadline reaches the dial. ServeHTTP (the interface
//     pins its signature; the request carries the context) and
//     Close/Shutdown-style teardown (which must run after contexts
//     are cancelled) are exempt.
var CtxFlow = &analysis.Analyzer{
	Name: "ctxflow",
	Doc:  "serving-stack I/O takes context.Context first; no context.Background mid-stack",
	Run:  runCtxFlow,
}

// ctxFlowPackages is the scope: the packages between the HTTP edge and
// the sockets.
var ctxFlowPackages = []string{"internal/server", "internal/fleet"}

func runCtxFlow(pass *analysis.Pass) error {
	inScope := false
	for _, p := range ctxFlowPackages {
		if pkgIs(pass.Pkg.Path(), p) {
			inScope = true
			break
		}
	}
	if !inScope {
		return nil
	}

	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := callee(pass.TypesInfo, call)
			if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "context" {
				return true
			}
			if fn.Name() == "Background" || fn.Name() == "TODO" {
				pass.Reportf(call.Pos(),
					"context.%s() detaches this call tree from the caller's deadline and from shutdown; accept a context instead", fn.Name())
			}
			return true
		})
	}

	funcDecls(pass, func(decl *ast.FuncDecl) {
		if !decl.Name.IsExported() || decl.Body == nil {
			return
		}
		obj, ok := pass.TypesInfo.Defs[decl.Name].(*types.Func)
		if !ok {
			return
		}
		sig, ok := obj.Type().(*types.Signature)
		if !ok {
			return
		}
		ctxAt := -1
		for i := 0; i < sig.Params().Len(); i++ {
			if isContextType(sig.Params().At(i).Type()) {
				ctxAt = i
				break
			}
		}
		if ctxAt > 0 {
			pass.Reportf(decl.Name.Pos(),
				"%s takes context.Context as parameter %d; context goes first", decl.Name.Name, ctxAt+1)
		}
		if ctxAt == -1 && !ctxFlowExempt(decl, sig) {
			if pos, pkg := firstNetCall(pass, decl.Body); pos.IsValid() {
				pass.Reportf(decl.Name.Pos(),
					"exported %s calls into %s (line %d) but takes no context.Context; the caller's deadline cannot reach the I/O",
					decl.Name.Name, pkg, pass.Fset.Position(pos).Line)
			}
		}
	})
	return nil
}

// ctxFlowExempt lists the exported shapes that legitimately do network
// work without a caller context.
func ctxFlowExempt(decl *ast.FuncDecl, sig *types.Signature) bool {
	name := decl.Name.Name
	if name == "ServeHTTP" {
		return true // signature pinned by http.Handler; ctx rides the request
	}
	if name == "Close" || name == "Shutdown" || strings.HasPrefix(name, "Close") {
		return true // teardown runs after contexts are cancelled
	}
	// Constructors returning an http.Handler register routes; the
	// per-request context arrives later.
	for i := 0; i < sig.Results().Len(); i++ {
		t := sig.Results().At(i).Type()
		if named, ok := t.(*types.Named); ok {
			obj := named.Obj()
			if obj.Pkg() != nil && obj.Pkg().Path() == "net/http" && obj.Name() == "Handler" {
				return true
			}
		}
	}
	return false
}

// firstNetCall returns the position and package of the first direct
// call into net or net/http in body (excluding nested function
// literals, which run on their own schedule).
func firstNetCall(pass *analysis.Pass, body *ast.BlockStmt) (pos token.Pos, pkg string) {
	ast.Inspect(body, func(n ast.Node) bool {
		if pos.IsValid() {
			return false
		}
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		switch path := calleePath(pass.TypesInfo, call); path {
		case "net", "net/http":
			if fn := callee(pass.TypesInfo, call); fn != nil && netCallDoesIO(fn.Name()) {
				pos, pkg = call.Pos(), path
				return false
			}
		}
		return true
	})
	return pos, pkg
}

// netCallDoesIO filters the net/http surface down to calls that hit
// the wire (or block on it); pure constructors and parsers are fine
// without a context.
func netCallDoesIO(name string) bool {
	switch name {
	case "Get", "Post", "PostForm", "Head", "Do", "Dial", "DialTimeout",
		"Listen", "ListenPacket", "ListenAndServe", "ListenAndServeTLS",
		"Serve", "ServeTLS", "LookupHost", "LookupIP", "LookupAddr":
		return true
	}
	return false
}

func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}
