package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"

	"repro/internal/lint/analysis"
)

// AtomicField reports struct fields that are accessed through
// sync/atomic somewhere and plainly somewhere else.
//
// The observer fast path's hit counters, the admission gate and the
// replica lifecycle all rely on the rule "once a field is atomic, every
// access is atomic": a single plain `f++` or `x := s.f` next to
// atomic.AddInt64(&s.f, 1) is a data race that -race only catches when a
// test happens to schedule it. Fields declared with the sync/atomic
// types (atomic.Int64 etc.) are immune by construction — the methods are
// the only access path — so this analyzer watches the older pattern:
// plain-typed fields passed by address to sync/atomic functions. Any
// other read or write of such a field, in any package of the run, is an
// error. (Struct-literal initialization before the value escapes is
// still flagged: initialize atomically-used fields by zero value or via
// the atomic API.)
var AtomicField = &analysis.Analyzer{
	Name:   "atomicfield",
	Doc:    "fields accessed via sync/atomic must never be read or written plainly",
	Run:    runAtomicField,
	Finish: finishAtomicField,
}

// atomicFieldFacts accumulates the two sides of the check across every
// package of the run.
type atomicFieldFacts struct {
	// atomicUse maps a field's cross-package key to one position where
	// it is used atomically.
	atomicUse map[string]token.Position
	// plain records every plain access of any struct field; Finish
	// intersects it with atomicUse.
	plain []plainAccess
}

type plainAccess struct {
	key   string
	pos   token.Position
	write bool
}

const atomicFieldFactsKey = "atomicfield/facts"

func atomicFacts(g *analysis.Global) *atomicFieldFacts {
	f, ok := g.Facts[atomicFieldFactsKey].(*atomicFieldFacts)
	if !ok {
		f = &atomicFieldFacts{atomicUse: make(map[string]token.Position)}
		g.Facts[atomicFieldFactsKey] = f
	}
	return f
}

func runAtomicField(pass *analysis.Pass) error {
	facts := atomicFacts(pass.Global)

	// Selector expressions consumed by &x.f arguments of sync/atomic
	// calls: these are the sanctioned accesses, excluded from the plain
	// scan below.
	sanctioned := make(map[*ast.SelectorExpr]bool)

	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || calleePath(pass.TypesInfo, call) != "sync/atomic" {
				return true
			}
			for _, arg := range call.Args {
				unary, ok := ast.Unparen(arg).(*ast.UnaryExpr)
				if !ok || unary.Op != token.AND {
					continue
				}
				sel, ok := ast.Unparen(unary.X).(*ast.SelectorExpr)
				if !ok {
					continue
				}
				if field := selectionField(pass.TypesInfo, sel); field != nil {
					facts.atomicUse[fieldKey(field)] = pass.Fset.Position(sel.Pos())
					sanctioned[sel] = true
				}
			}
			return true
		})
	}

	for _, file := range pass.Files {
		// writes tracks selector expressions in store position
		// (assignment LHS, ++/--) so the plain scan can say write vs read.
		writes := make(map[ast.Expr]bool)
		ast.Inspect(file, func(n ast.Node) bool {
			switch stmt := n.(type) {
			case *ast.AssignStmt:
				for _, lhs := range stmt.Lhs {
					writes[ast.Unparen(lhs)] = true
				}
			case *ast.IncDecStmt:
				writes[ast.Unparen(stmt.X)] = true
			}
			return true
		})
		ast.Inspect(file, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok || sanctioned[sel] {
				return true
			}
			field := selectionField(pass.TypesInfo, sel)
			if field == nil || !plainAccessible(field.Type()) {
				return true
			}
			facts.plain = append(facts.plain, plainAccess{
				key:   fieldKey(field),
				pos:   pass.Fset.Position(sel.Pos()),
				write: writes[sel],
			})
			return true
		})

		// Composite literals initialize fields without a selector:
		// S{count: 1} (or positional) seeds an atomically-used field
		// behind the atomic API's back.
		ast.Inspect(file, func(n ast.Node) bool {
			lit, ok := n.(*ast.CompositeLit)
			if !ok {
				return true
			}
			tv, ok := pass.TypesInfo.Types[lit]
			if !ok {
				return true
			}
			st, ok := tv.Type.Underlying().(*types.Struct)
			if !ok {
				return true
			}
			for i, elt := range lit.Elts {
				var field *types.Var
				pos := elt.Pos()
				if kv, ok := elt.(*ast.KeyValueExpr); ok {
					if id, ok := kv.Key.(*ast.Ident); ok {
						if obj, ok := pass.TypesInfo.Uses[id].(*types.Var); ok {
							field = obj
						}
					}
				} else if i < st.NumFields() {
					field = st.Field(i)
				}
				if field != nil {
					facts.plain = append(facts.plain, plainAccess{
						key: fieldKey(field), pos: pass.Fset.Position(pos), write: true,
					})
				}
			}
			return true
		})
	}
	return nil
}

// plainAccessible keeps the plain-access scan to field types the
// sync/atomic functions operate on (fixed-width integers, uintptr,
// pointers). Struct-typed fields — including the sync/atomic types
// themselves, whose methods are the only way in — are path steps, not
// word accesses, and the type system and copylocks already police them.
func plainAccessible(t types.Type) bool {
	switch u := t.Underlying().(type) {
	case *types.Basic:
		return u.Info()&types.IsInteger != 0
	case *types.Pointer:
		return true
	}
	return false
}

func finishAtomicField(g *analysis.Global) {
	facts := atomicFacts(g)
	sort.Slice(facts.plain, func(i, j int) bool {
		return facts.plain[i].pos.Offset < facts.plain[j].pos.Offset
	})
	for _, p := range facts.plain {
		use, ok := facts.atomicUse[p.key]
		if !ok {
			continue
		}
		verb := "read"
		if p.write {
			verb = "write"
		}
		g.Reportf("atomicfield", p.pos,
			"plain %s of field %s, which is accessed with sync/atomic at %s:%d — a torn or racy access",
			verb, p.key, use.Filename, use.Line)
	}
}
