package lint

import "repro/internal/lint/analysis"

// Analyzers returns the full reachlint suite in stable order. The
// order is the order diagnostics group under -list and has no effect
// on results.
func Analyzers() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		AtomicField,
		CtxFlow,
		HotPathAlloc,
		MetricName,
		SnapErr,
		WireWidth,
	}
}
