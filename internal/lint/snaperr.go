package lint

import (
	"go/ast"
	"go/types"
	"strings"

	"repro/internal/lint/analysis"
)

// SnapErr rejects silently discarded errors on the snapshot write and
// read paths.
//
// The blockio Writer latches its first error internally, so dropping an
// intermediate Uint64's result is fine — but dropping the error of a
// top-level Encode/Decode/Write call means a truncated snapshot is
// reported as a success and only discovered when a replica fails to
// load it. Any statement that calls a function from internal/blockio
// or internal/snapshot, or an Encode*/Decode* function from the codec
// owners (internal/graph, internal/observe, internal/hoplabel), and
// throws away a returned error is an error here. Assigning to _ stays
// legal: it is a visible, greppable opt-out; a bare call is invisible.
var SnapErr = &analysis.Analyzer{
	Name: "snaperr",
	Doc:  "snapshot/blockio errors must be handled, not silently discarded",
	Run:  runSnapErr,
}

// snapErrPackages are the packages whose every error matters on the
// persistence path.
var snapErrPackages = []string{"internal/blockio", "internal/snapshot"}

func runSnapErr(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			stmt, ok := n.(*ast.ExprStmt)
			if !ok {
				return true
			}
			call, ok := stmt.X.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := callee(pass.TypesInfo, call)
			if fn == nil || fn.Pkg() == nil || !snapErrScope(fn) {
				return true
			}
			sig, ok := fn.Type().(*types.Signature)
			if !ok {
				return true
			}
			for i := 0; i < sig.Results().Len(); i++ {
				if isErrorType(sig.Results().At(i).Type()) {
					pass.Reportf(call.Pos(),
						"error result of %s.%s is discarded; a failed snapshot write/read must surface (assign to _ to opt out explicitly)",
						fn.Pkg().Name(), fn.Name())
					break
				}
			}
			return true
		})
	}
	return nil
}

// snapErrScope reports whether fn is on the persistence path: anything
// in blockio/snapshot, or a codec entry point elsewhere in the repo.
func snapErrScope(fn *types.Func) bool {
	path := fn.Pkg().Path()
	for _, p := range snapErrPackages {
		if pkgIs(path, p) {
			return true
		}
	}
	if strings.HasPrefix(fn.Name(), "Encode") || strings.HasPrefix(fn.Name(), "Decode") {
		for _, p := range []string{"internal/graph", "internal/observe", "internal/hoplabel"} {
			if pkgIs(path, p) {
				return true
			}
		}
	}
	return false
}

func isErrorType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() == nil && obj.Name() == "error"
}
