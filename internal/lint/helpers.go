// Package lint is the reachlint analyzer suite: custom static checks
// that machine-enforce the invariants this repository's serving stack
// depends on but the compiler cannot see — atomic fields never touched
// plainly, hot paths that never allocate, codecs that only marshal
// fixed-width integers, metric names that match the README catalog, and
// context plumbing that keeps request deadlines intact.
//
// Each analyzer documents its rules in its Doc string; run
// `go run ./cmd/reachlint -list` for the overview, and see the README's
// "Static analysis" section for the annotation conventions
// (//reach:hotpath, //reach:wire).
package lint

import (
	"go/ast"
	"go/constant"
	"go/types"
	"strings"

	"repro/internal/lint/analysis"
)

// callee resolves the function or method a call expression invokes,
// or nil for calls through function values, builtins and conversions.
func callee(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := info.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := info.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}

// calleePath returns the import path of the package a call's callee is
// declared in ("" for builtins, conversions and indirect calls).
func calleePath(info *types.Info, call *ast.CallExpr) string {
	fn := callee(info, call)
	if fn == nil || fn.Pkg() == nil {
		return ""
	}
	return fn.Pkg().Path()
}

// pkgIs reports whether path is the named repo package, matching by
// suffix so both the real module path (repro/internal/obs) and
// analysistest fixture paths resolve. want is the path tail starting at
// "internal/" (e.g. "internal/obs").
func pkgIs(path, want string) bool {
	return path == want || strings.HasSuffix(path, "/"+want)
}

// hasDirective reports whether a comment group contains the given
// //-directive (exact line match up to trailing explanation, e.g.
// "//reach:hotpath" or "//reach:hotpath -- why").
func hasDirective(doc *ast.CommentGroup, directive string) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		text := strings.TrimSpace(c.Text)
		if text == directive || strings.HasPrefix(text, directive+" ") {
			return true
		}
	}
	return false
}

// funcDecls calls fn for every function declaration in the pass,
// giving analyzers one place to iterate files.
func funcDecls(pass *analysis.Pass, fn func(decl *ast.FuncDecl)) {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok {
				fn(fd)
			}
		}
	}
}

// recvNamed returns the named type of a method's receiver (through one
// pointer), or nil for plain functions.
func recvNamed(fn *types.Func) *types.Named {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return nil
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, _ := t.(*types.Named)
	return named
}

// fieldKey is the cross-package identity of a struct field: import
// path, type name and field name. Cross-package analyses key on it
// because each package's type-check materializes its own types.Var for
// the same imported field.
func fieldKey(field *types.Var) string {
	pkg := ""
	if field.Pkg() != nil {
		pkg = field.Pkg().Path()
	}
	return pkg + "." + field.Name()
}

// selectionField resolves a selector expression to the struct field it
// names, or nil when it names a method or package member.
func selectionField(info *types.Info, sel *ast.SelectorExpr) *types.Var {
	s, ok := info.Selections[sel]
	if !ok || s.Kind() != types.FieldVal {
		return nil
	}
	v, _ := s.Obj().(*types.Var)
	return v
}

// stringConst returns the compile-time string value of expr and
// whether it has one.
func stringConst(info *types.Info, expr ast.Expr) (string, bool) {
	tv, ok := info.Types[expr]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return "", false
	}
	return constant.StringVal(tv.Value), true
}
