package lint

import (
	"go/ast"
	"go/types"
	"path/filepath"
	"strings"

	"repro/internal/lint/analysis"
)

// WireWidth keeps platform-width integers out of the snapshot format.
//
// The snapshot container is portable because every encoded field is a
// fixed-width little-endian integer; a bare int or uint in a codec
// writes 8 bytes on one machine and would decode differently on a
// 32-bit one (and encoding/binary.Write refuses it only at runtime,
// deep inside a save path). Inside codec scope — the internal/snapshot
// and internal/blockio packages, any file named codec.go (the
// per-method index codecs), and structs marked //reach:wire anywhere —
// this analyzer rejects:
//
//   - encoding/binary Read/Write calls whose data contains int, uint or
//     uintptr (directly, or inside a struct/slice/array/pointer)
//   - the encoding/binary varint family (variable-width encoding has no
//     place in a fixed-width, mmap-aligned format)
//   - //reach:wire struct fields that are not fixed-width: only
//     (u)int{8,16,32,64}, float32/64, and arrays/slices/nested structs
//     of those survive an mmap on another architecture
var WireWidth = &analysis.Analyzer{
	Name: "wirewidth",
	Doc:  "codec scope must only marshal fixed-width types (no bare int/uint)",
	Run:  runWireWidth,
}

// WireDirective marks a struct type whose layout is (or mirrors) an
// encoded wire record.
const WireDirective = "//reach:wire"

// varintFuncs is the encoding/binary variable-width family.
var varintFuncs = map[string]bool{
	"PutVarint": true, "PutUvarint": true, "AppendVarint": true, "AppendUvarint": true,
	"Varint": true, "Uvarint": true, "ReadVarint": true, "ReadUvarint": true,
}

func runWireWidth(pass *analysis.Pass) error {
	// internal/wireproto is in scope for the same reason the snapshot
	// codecs are: its frames are fixed-width little-endian on the network,
	// where a platform-width field would be a silent protocol fork.
	pkgScope := pkgIs(pass.Pkg.Path(), "internal/snapshot") ||
		pkgIs(pass.Pkg.Path(), "internal/blockio") ||
		pkgIs(pass.Pkg.Path(), "internal/wireproto")
	for _, file := range pass.Files {
		fileScope := pkgScope || filepath.Base(pass.Fset.Position(file.Pos()).Filename) == "codec.go"

		// //reach:wire structs are checked wherever they are declared.
		for _, decl := range file.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				doc := ts.Doc
				if doc == nil && len(gd.Specs) == 1 {
					doc = gd.Doc
				}
				if !hasDirective(doc, WireDirective) {
					continue
				}
				st, ok := ts.Type.(*ast.StructType)
				if !ok {
					pass.Reportf(ts.Pos(), "%s is marked %s but is not a struct", ts.Name.Name, WireDirective)
					continue
				}
				checkWireStruct(pass, ts.Name.Name, st)
			}
		}

		if !fileScope {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := callee(pass.TypesInfo, call)
			if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "encoding/binary" {
				return true
			}
			if varintFuncs[fn.Name()] {
				pass.Reportf(call.Pos(),
					"binary.%s is variable-width; the snapshot format is fixed-width little-endian blocks", fn.Name())
				return true
			}
			if (fn.Name() == "Write" || fn.Name() == "Read") && len(call.Args) == 3 {
				t := pass.TypesInfo.Types[call.Args[2]].Type
				if bad := findPlatformInt(t, nil); bad != "" {
					pass.Reportf(call.Args[2].Pos(),
						"binary.%s data contains platform-width %s; marshal a fixed-width type instead", fn.Name(), bad)
				}
			}
			return true
		})
	}
	return nil
}

// checkWireStruct validates every field of a //reach:wire struct.
func checkWireStruct(pass *analysis.Pass, name string, st *ast.StructType) {
	for _, field := range st.Fields.List {
		t := pass.TypesInfo.Types[field.Type].Type
		if t == nil {
			continue
		}
		if bad := nonWireType(t, nil); bad != "" {
			pass.Reportf(field.Pos(), "wire struct %s: field type contains %s; wire structs may only hold fixed-width integers and floats", name, bad)
		}
	}
}

// findPlatformInt walks t and returns the first platform-width integer
// type it contains ("" when none). seen breaks recursive types.
func findPlatformInt(t types.Type, seen map[types.Type]bool) string {
	if t == nil || seen[t] {
		return ""
	}
	if seen == nil {
		seen = make(map[types.Type]bool)
	}
	seen[t] = true
	switch u := t.Underlying().(type) {
	case *types.Basic:
		switch u.Kind() {
		case types.Int, types.Uint, types.Uintptr:
			return u.Name()
		}
	case *types.Pointer:
		return findPlatformInt(u.Elem(), seen)
	case *types.Slice:
		return findPlatformInt(u.Elem(), seen)
	case *types.Array:
		return findPlatformInt(u.Elem(), seen)
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if bad := findPlatformInt(u.Field(i).Type(), seen); bad != "" {
				return bad
			}
		}
	}
	return ""
}

// nonWireType returns a description of the first non-fixed-width
// component of t ("" when t is wire-safe).
func nonWireType(t types.Type, seen map[types.Type]bool) string {
	if t == nil || seen[t] {
		return ""
	}
	if seen == nil {
		seen = make(map[types.Type]bool)
	}
	seen[t] = true
	switch u := t.Underlying().(type) {
	case *types.Basic:
		switch u.Kind() {
		case types.Int8, types.Int16, types.Int32, types.Int64,
			types.Uint8, types.Uint16, types.Uint32, types.Uint64,
			types.Float32, types.Float64:
			return ""
		}
		return u.Name()
	case *types.Slice:
		return nonWireType(u.Elem(), seen)
	case *types.Array:
		return nonWireType(u.Elem(), seen)
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if bad := nonWireType(u.Field(i).Type(), seen); bad != "" {
				return bad
			}
		}
		return ""
	}
	return strings.TrimPrefix(t.String(), "untyped ")
}
