package lint

import (
	"go/ast"
	"go/token"
	"os"
	"regexp"
	"sort"
	"strings"

	"repro/internal/lint/analysis"
)

// MetricName validates every metric registered through internal/obs and
// keeps the README metrics catalog honest.
//
// Rules for a name passed to Registry.Histogram / Counter / CounterFunc
// / GaugeFunc:
//
//   - it must be a compile-time string constant (the catalog check is
//     static; a computed name can't be checked, so it can't be used)
//   - it must match ^[a-z][a-z0-9_]*$ and carry the reach_ prefix
//   - counters end in _total, histograms in _seconds (values are
//     recorded in nanoseconds and exposed in seconds; the suffix is the
//     contract that conversion happened)
//   - literal label keys must match ^[a-z][a-z0-9_]*$
//   - within one package: the same (name, literal label set) must not be
//     registered twice, and one name must not appear with two different
//     help strings (the registry silently keeps the first)
//
// Run over the whole tree, the Finish pass compares the set of
// registered names against the README metrics catalog — every
// registered metric must be documented, and every reach_* metric the
// README mentions must still exist in code. Drift fails the build in
// either direction. The catalog may use one brace expansion per name
// (reach_cache_{hits,misses}_total); a trailing {...} group is read as
// a label list, not an expansion.
var MetricName = &analysis.Analyzer{
	Name:   "metricname",
	Doc:    "obs metric names must be valid, unique and catalogued in the README",
	Run:    runMetricName,
	Finish: finishMetricName,
}

// ReadmePath points Finish at the metrics catalog. The reachlint driver
// sets it to <module root>/README.md; empty skips the catalog check
// (analysistest fixtures opt in by setting it).
var ReadmePath string

// registryConstructors maps obs.Registry method names to the metric
// type they register.
var registryConstructors = map[string]string{
	"Histogram": "histogram", "Counter": "counter", "CounterFunc": "counter", "GaugeFunc": "gauge",
}

var metricNameRE = regexp.MustCompile(`^[a-z][a-z0-9_]*$`)

type metricFact struct {
	name string
	pos  token.Position
}

const metricFactsKey = "metricname/registered"

func metricFacts(g *analysis.Global) *[]metricFact {
	f, ok := g.Facts[metricFactsKey].(*[]metricFact)
	if !ok {
		f = &[]metricFact{}
		g.Facts[metricFactsKey] = f
	}
	return f
}

func runMetricName(pass *analysis.Pass) error {
	// The defining package forwards names between its own constructors
	// (Counter wraps CounterFunc); those are plumbing, not registrations.
	if pkgIs(pass.Pkg.Path(), "internal/obs") {
		return nil
	}
	facts := metricFacts(pass.Global)
	type seenKey struct{ name, labels string }
	seen := make(map[seenKey]token.Position)
	helps := make(map[string]string)
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := callee(pass.TypesInfo, call)
			if fn == nil {
				return true
			}
			typ, isCtor := registryConstructors[fn.Name()]
			if !isCtor || len(call.Args) < 3 {
				return true
			}
			recv := recvNamed(fn)
			if recv == nil || recv.Obj().Name() != "Registry" || recv.Obj().Pkg() == nil ||
				!pkgIs(recv.Obj().Pkg().Path(), "internal/obs") {
				return true
			}
			name, ok := stringConst(pass.TypesInfo, call.Args[0])
			if !ok {
				pass.Reportf(call.Args[0].Pos(),
					"metric name must be a compile-time string constant so the catalog check can see it")
				return true
			}
			*facts = append(*facts, metricFact{name: name, pos: pass.Fset.Position(call.Args[0].Pos())})

			if !metricNameRE.MatchString(name) {
				pass.Reportf(call.Args[0].Pos(),
					"metric name %q violates the naming rule %s", name, metricNameRE)
			} else if !strings.HasPrefix(name, "reach_") {
				pass.Reportf(call.Args[0].Pos(),
					"metric name %q lacks the reach_ namespace prefix", name)
			}
			switch typ {
			case "counter":
				if !strings.HasSuffix(name, "_total") {
					pass.Reportf(call.Args[0].Pos(), "counter %q must end in _total", name)
				}
			case "histogram":
				if !strings.HasSuffix(name, "_seconds") {
					pass.Reportf(call.Args[0].Pos(),
						"histogram %q must end in _seconds (recorded in ns, exposed in s)", name)
				}
			}

			help, helpConst := stringConst(pass.TypesInfo, call.Args[1])
			if helpConst && metricNameRE.MatchString(name) {
				if prev, ok := helps[name]; ok && prev != help {
					pass.Reportf(call.Args[1].Pos(),
						"metric %q registered with a second help string; the registry keeps the first, so exposition and code disagree", name)
				} else if !ok {
					helps[name] = help
				}
			}

			labels, literal := literalLabels(pass, call.Args[2])
			if literal {
				key := seenKey{name: name, labels: labels}
				if prev, dup := seen[key]; dup {
					pass.Reportf(call.Args[0].Pos(),
						"metric %q with labels %s already registered at %s:%d", name, labelsForMsg(labels), prev.Filename, prev.Line)
				} else {
					seen[key] = pass.Fset.Position(call.Args[0].Pos())
				}
			}
			return true
		})
	}
	return nil
}

func labelsForMsg(labels string) string {
	if labels == "" {
		return "{}"
	}
	return labels
}

// literalLabels renders a labels argument when it is nil or a composite
// literal with constant keys and values; ok is false for dynamic label
// sets (which then skip the duplicate check). Label keys are validated
// here as a side effect.
func literalLabels(pass *analysis.Pass, arg ast.Expr) (rendered string, ok bool) {
	arg = ast.Unparen(arg)
	if tv, isTyped := pass.TypesInfo.Types[arg]; isTyped && tv.IsNil() {
		return "", true
	}
	lit, isLit := arg.(*ast.CompositeLit)
	if !isLit {
		return "", false
	}
	var pairs []string
	allConst := true
	for _, elt := range lit.Elts {
		kv, isKV := elt.(*ast.KeyValueExpr)
		if !isKV {
			continue
		}
		k, kConst := stringConst(pass.TypesInfo, kv.Key)
		if kConst && !metricNameRE.MatchString(k) {
			pass.Reportf(kv.Key.Pos(), "label key %q violates the naming rule %s", k, metricNameRE)
		}
		v, vConst := stringConst(pass.TypesInfo, kv.Value)
		if !kConst || !vConst {
			allConst = false
			continue
		}
		pairs = append(pairs, k+"="+v)
	}
	if !allConst {
		return "", false
	}
	sort.Strings(pairs)
	return "{" + strings.Join(pairs, ",") + "}", true
}

func finishMetricName(g *analysis.Global) {
	if ReadmePath == "" {
		return
	}
	facts := *metricFacts(g)
	if len(facts) == 0 {
		return
	}
	data, err := os.ReadFile(ReadmePath)
	if err != nil {
		g.Reportf("metricname", token.Position{Filename: ReadmePath},
			"cannot read metrics catalog: %v", err)
		return
	}
	documented := catalogNames(string(data))
	registered := make(map[string]token.Position)
	for _, f := range facts {
		if _, ok := registered[f.name]; !ok {
			registered[f.name] = f.pos
		}
	}
	names := make([]string, 0, len(registered))
	for name := range registered {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		if _, ok := documented[name]; !ok {
			g.Reportf("metricname", registered[name],
				"metric %q is not documented in the README metrics catalog (%s)", name, ReadmePath)
		}
	}
	docNames := make([]string, 0, len(documented))
	for name := range documented {
		docNames = append(docNames, name)
	}
	sort.Strings(docNames)
	for _, name := range docNames {
		if _, ok := registered[name]; !ok {
			g.Reportf("metricname", token.Position{Filename: ReadmePath, Line: documented[name]},
				"README documents metric %q, which no code registers", name)
		}
	}
}

// catalogNames extracts the reach_* metric names a README mentions,
// mapped to their line number. It expands one infix brace group per
// mention — reach_cache_{hits,misses}_total names two metrics — while a
// trailing {...} group (labels, e.g. reach_build_info{go_version,...})
// is dropped. Mentions that are bare prefixes (e.g. the text "reach_"
// in prose) are ignored.
func catalogNames(readme string) map[string]int {
	names := make(map[string]int)
	for lineno, line := range strings.Split(readme, "\n") {
		for _, name := range lineMetricNames(line) {
			if _, ok := names[name]; !ok {
				names[name] = lineno + 1
			}
		}
	}
	return names
}

var (
	namePartRE  = regexp.MustCompile(`^[a-z0-9_]+`)
	braceBodyRE = regexp.MustCompile(`^\{([a-z0-9_,]+)\}`)
)

func lineMetricNames(line string) []string {
	var out []string
	for i := 0; i+6 <= len(line); i++ {
		if line[i:i+6] != "reach_" {
			continue
		}
		if i > 0 && isNameByte(line[i-1]) {
			continue // mid-word, e.g. foo_reach_bar
		}
		rest := line[i:]
		prefix := namePartRE.FindString(rest)
		rest = rest[len(prefix):]
		var expansions []string
		if m := braceBodyRE.FindStringSubmatch(rest); m != nil {
			after := rest[len(m[0]):]
			if after != "" && isNameByte(after[0]) {
				// Infix group: expand each alternative and consume the
				// suffix that follows the brace.
				suffix := namePartRE.FindString(after)
				for _, alt := range strings.Split(m[1], ",") {
					expansions = append(expansions, prefix+alt+suffix)
				}
				rest = after[len(suffix):]
			}
			// Trailing group: label list, not an expansion — prefix
			// alone is the name.
		}
		if expansions == nil {
			expansions = []string{prefix}
		}
		for _, name := range expansions {
			// Require a real metric-shaped name, not the bare prefix
			// "reach_" prose can mention.
			if len(name) > len("reach_") && !strings.HasSuffix(name, "_") {
				out = append(out, name)
			}
		}
		i += len(prefix) - 1
	}
	return out
}

func isNameByte(b byte) bool {
	return b == '_' || (b >= 'a' && b <= 'z') || (b >= '0' && b <= '9')
}
