// Package analysis is the minimal in-tree counterpart of
// golang.org/x/tools/go/analysis: just enough framework to write typed,
// package-at-a-time static checks and drive them from cmd/reachlint and
// the analysistest golden runner. The vendored x/tools stack is not a
// dependency this module carries (the repo is deliberately stdlib-only),
// and the subset an invariant checker needs — an Analyzer with a Run
// hook over parsed+type-checked files, positioned diagnostics, and a
// whole-program finish pass for cross-package facts — fits in one small
// package.
//
// Deviations from x/tools worth knowing about:
//
//   - Analyzers report through (*Pass).Reportf; there is no Diagnostic
//     suggested-fix machinery.
//   - Cross-package analyses (metric-name uniqueness, README drift)
//     don't use serialized facts: every package of one run shares a
//     *Global scratch space, and an optional Finish hook runs once after
//     the last package to turn accumulated facts into diagnostics.
//   - There is no pass dependency graph (Requires); every analyzer is
//     independent.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer is one named invariant check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and -only filters.
	Name string
	// Doc is a short one-paragraph description (first line is the
	// summary shown by `reachlint -list`).
	Doc string
	// Run analyzes one package. It reports findings via pass.Reportf
	// and may stash cross-package facts in pass.Global for Finish.
	Run func(pass *Pass) error
	// Finish, if non-nil, runs once per reachlint invocation after every
	// package's Run, for checks that only make sense over the whole
	// program (uniqueness, catalog drift). May be nil.
	Finish func(g *Global)
}

// Pass carries one package's worth of material to an analyzer.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	// Files are the package's parsed non-test sources, comments included.
	Files []*ast.File
	// Pkg and TypesInfo are the go/types results for Files.
	Pkg       *types.Package
	TypesInfo *types.Info
	// Global is the run-wide shared state (never nil).
	Global *Global
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Global.report(p.Analyzer.Name, p.Fset.Position(pos), fmt.Sprintf(format, args...))
}

// Diagnostic is one reported finding.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s [%s]", d.Pos, d.Message, d.Analyzer)
}

// Global is the state shared by every pass of one reachlint run: the
// diagnostics sink plus a scratch map where analyzers accumulate
// cross-package facts for their Finish hook.
type Global struct {
	Fset *token.FileSet
	// Facts maps "<analyzer>/<key>" to whatever the analyzer stored.
	Facts map[string]any

	diags []Diagnostic
}

// NewGlobal returns an empty run state over fset.
func NewGlobal(fset *token.FileSet) *Global {
	return &Global{Fset: fset, Facts: make(map[string]any)}
}

func (g *Global) report(analyzer string, pos token.Position, msg string) {
	g.diags = append(g.diags, Diagnostic{Analyzer: analyzer, Pos: pos, Message: msg})
}

// Reportf records a Finish-time diagnostic (pos may be token.NoPos's
// zero Position for program-level findings like a missing catalog row).
func (g *Global) Reportf(analyzer string, pos token.Position, format string, args ...any) {
	g.report(analyzer, pos, fmt.Sprintf(format, args...))
}

// Diagnostics returns every reported finding, sorted by position then
// message so output is deterministic across runs and map iteration.
func (g *Global) Diagnostics() []Diagnostic {
	sort.Slice(g.diags, func(i, j int) bool {
		a, b := g.diags[i], g.diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Message < b.Message
	})
	return g.diags
}

// Run executes every analyzer over every package, then the Finish hooks,
// and returns the combined diagnostics. Packages are analyzed in the
// order given; analyzers see them one at a time (reachlint is a
// single-process batch tool — parallelism would buy little against the
// go list + typecheck cost and would force locking on Global).
func Run(g *Global, pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer: a, Fset: g.Fset, Files: pkg.Syntax,
				Pkg: pkg.Types, TypesInfo: pkg.TypesInfo, Global: g,
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("%s: %s: %w", a.Name, pkg.Types.Path(), err)
			}
		}
	}
	for _, a := range analyzers {
		if a.Finish != nil {
			a.Finish(g)
		}
	}
	return g.Diagnostics(), nil
}

// Package is one loaded, type-checked package (produced by
// internal/lint/loader; defined here so analyzers and drivers share one
// vocabulary without importing the loader).
type Package struct {
	PkgPath   string
	Dir       string
	Syntax    []*ast.File
	Types     *types.Package
	TypesInfo *types.Info
}

// Summary returns the first line of an analyzer's Doc.
func (a *Analyzer) Summary() string {
	doc := strings.TrimSpace(a.Doc)
	if i := strings.IndexByte(doc, '\n'); i >= 0 {
		doc = doc[:i]
	}
	return doc
}
