package lint

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/lint/analysis"
)

// HotPathAlloc enforces the zero-allocation contract of functions marked
// //reach:hotpath.
//
// The observer Query, the cache shard lookup, histogram Record and the
// hop-label merge intersection are on every request; their benchmarks
// pin 0 allocs/op, and the CI perf gate fails on ns/op growth — but
// neither names the line that regressed. This analyzer rejects the
// constructs that put allocation (or fmt's reflection) on an annotated
// function's source lines:
//
//   - calls into fmt or log (formatting allocates, always)
//   - non-constant string concatenation
//   - slice and map composite literals, make, new, append
//   - address-of composite literal (&T{...} escapes)
//   - string<->[]byte/[]rune conversions
//   - function literals (closure headers allocate when they capture),
//     defer, and go statements
//   - interface boxing: passing, assigning or returning a concrete
//     value where an interface is expected
//
// Calls to ordinary functions are allowed — callees with their own
// allocations are the AllocsPerRun tests' job — so annotate the leaf
// helpers a hot path relies on (e.g. bump) as well.
var HotPathAlloc = &analysis.Analyzer{
	Name: "hotpathalloc",
	Doc:  "functions marked //reach:hotpath must not allocate",
	Run:  runHotPathAlloc,
}

// HotPathDirective is the annotation that opts a function into the
// zero-allocation contract.
const HotPathDirective = "//reach:hotpath"

func runHotPathAlloc(pass *analysis.Pass) error {
	funcDecls(pass, func(decl *ast.FuncDecl) {
		if !hasDirective(decl.Doc, HotPathDirective) || decl.Body == nil {
			return
		}
		h := &hotPathChecker{pass: pass, fn: decl}
		ast.Inspect(decl.Body, h.check)
	})
	return nil
}

type hotPathChecker struct {
	pass *analysis.Pass
	fn   *ast.FuncDecl
}

func (h *hotPathChecker) reportf(pos token.Pos, format string, args ...any) {
	h.pass.Reportf(pos, "hot path %s: "+format, append([]any{h.fn.Name.Name}, args...)...)
}

// check is the ast.Inspect callback; returning false stops descent (used
// for function literals, which are flagged once, not scanned inside).
func (h *hotPathChecker) check(n ast.Node) bool {
	info := h.pass.TypesInfo
	switch n := n.(type) {
	case *ast.FuncLit:
		h.reportf(n.Pos(), "function literal — closures allocate when they capture")
		return false
	case *ast.DeferStmt:
		h.reportf(n.Pos(), "defer — the deferred frame is heap-allocated in loops and costs even when stack-allocated")
	case *ast.GoStmt:
		h.reportf(n.Pos(), "goroutine launch allocates a stack")
	case *ast.CompositeLit:
		switch info.Types[n].Type.Underlying().(type) {
		case *types.Slice:
			h.reportf(n.Pos(), "slice literal allocates")
		case *types.Map:
			h.reportf(n.Pos(), "map literal allocates")
		}
	case *ast.UnaryExpr:
		if n.Op == token.AND {
			if _, ok := ast.Unparen(n.X).(*ast.CompositeLit); ok {
				h.reportf(n.Pos(), "&composite literal escapes to the heap")
			}
		}
	case *ast.BinaryExpr:
		if n.Op == token.ADD {
			if tv, ok := info.Types[n]; ok && tv.Value == nil {
				if b, ok := tv.Type.Underlying().(*types.Basic); ok && b.Info()&types.IsString != 0 {
					h.reportf(n.Pos(), "non-constant string concatenation allocates")
				}
			}
		}
	case *ast.CallExpr:
		h.checkCall(n)
	case *ast.AssignStmt:
		for i, rhs := range n.Rhs {
			if len(n.Lhs) != len(n.Rhs) {
				break // multi-value unpacking; destination types match by construction
			}
			if lhsType, ok := info.Types[n.Lhs[i]]; ok {
				h.checkBoxing(rhs, lhsType.Type, "assignment")
			}
		}
	case *ast.ValueSpec:
		// var x InterfaceType = concrete boxes just like an assignment.
		if n.Type != nil {
			if tv, ok := info.Types[n.Type]; ok {
				for _, v := range n.Values {
					h.checkBoxing(v, tv.Type, "assignment")
				}
			}
		}
	case *ast.ReturnStmt:
		sig := h.fnSignature()
		if sig != nil && len(n.Results) == sig.Results().Len() {
			for i, res := range n.Results {
				h.checkBoxing(res, sig.Results().At(i).Type(), "return")
			}
		}
	}
	return true
}

func (h *hotPathChecker) fnSignature() *types.Signature {
	obj, ok := h.pass.TypesInfo.Defs[h.fn.Name].(*types.Func)
	if !ok {
		return nil
	}
	sig, _ := obj.Type().(*types.Signature)
	return sig
}

func (h *hotPathChecker) checkCall(call *ast.CallExpr) {
	info := h.pass.TypesInfo

	// Type conversions: string<->[]byte/[]rune copy through the heap.
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		dst, src := tv.Type, info.Types[call.Args[0]].Type
		if src == nil {
			return
		}
		if conversionAllocates(dst, src) {
			h.reportf(call.Pos(), "conversion %s -> %s allocates", src, dst)
		}
		if isInterface(dst) && src != nil && !isInterface(src) {
			h.reportf(call.Pos(), "conversion to interface %s boxes the operand", dst)
		}
		return
	}

	// Builtins that allocate.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if _, isBuiltin := info.Uses[id].(*types.Builtin); isBuiltin {
			switch id.Name {
			case "make":
				h.reportf(call.Pos(), "make allocates")
			case "new":
				h.reportf(call.Pos(), "new allocates")
			case "append":
				h.reportf(call.Pos(), "append may grow and allocate")
			}
			return
		}
	}

	switch path := calleePath(info, call); path {
	case "fmt":
		h.reportf(call.Pos(), "fmt call — formatting reflects and allocates")
		return
	case "log":
		h.reportf(call.Pos(), "log call — logging formats and allocates")
		return
	}

	// Interface boxing at the call boundary: a concrete argument for an
	// interface parameter allocates unless the callee is inlined and the
	// value proven not to escape — a bet hot paths don't get to make.
	fn := callee(info, call)
	if fn == nil {
		return
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var paramType types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis.IsValid() {
				paramType = params.At(params.Len() - 1).Type()
			} else if s, ok := params.At(params.Len() - 1).Type().(*types.Slice); ok {
				paramType = s.Elem()
			}
		case i < params.Len():
			paramType = params.At(i).Type()
		}
		if paramType != nil {
			h.checkBoxing(arg, paramType, "argument to "+fn.Name())
		}
	}
}

// checkBoxing reports expr if storing it into dst boxes a concrete
// value into an interface.
func (h *hotPathChecker) checkBoxing(expr ast.Expr, dst types.Type, context string) {
	if !isInterface(dst) {
		return
	}
	tv, ok := h.pass.TypesInfo.Types[ast.Unparen(expr)]
	if !ok || tv.Type == nil {
		return
	}
	if isInterface(tv.Type) || tv.IsNil() {
		return
	}
	h.reportf(expr.Pos(), "%s boxes %s into interface %s", context, tv.Type, dst)
}

func isInterface(t types.Type) bool {
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Interface)
	return ok
}

// conversionAllocates reports string<->[]byte/[]rune conversions.
func conversionAllocates(dst, src types.Type) bool {
	return (isString(dst) && isByteOrRuneSlice(src)) || (isByteOrRuneSlice(dst) && isString(src))
}

func isString(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteOrRuneSlice(t types.Type) bool {
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Uint8 || b.Kind() == types.Int32)
}
