package lint_test

import (
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/lint"
	"repro/internal/lint/analysistest"
)

func testdataDir(t *testing.T) string {
	t.Helper()
	root, err := filepath.Abs("testdata")
	if err != nil {
		t.Fatal(err)
	}
	return root
}

func TestAtomicField(t *testing.T) {
	leftover := analysistest.Run(t, testdataDir(t), lint.AtomicField, "atomicfield")
	if len(leftover) != 0 {
		t.Errorf("diagnostics outside fixtures: %v", leftover)
	}
}

func TestHotPathAlloc(t *testing.T) {
	leftover := analysistest.Run(t, testdataDir(t), lint.HotPathAlloc, "hotpathalloc")
	if len(leftover) != 0 {
		t.Errorf("diagnostics outside fixtures: %v", leftover)
	}
}

func TestWireWidth(t *testing.T) {
	leftover := analysistest.Run(t, testdataDir(t), lint.WireWidth, "wirewidth", "repro/internal/wireproto")
	if len(leftover) != 0 {
		t.Errorf("diagnostics outside fixtures: %v", leftover)
	}
}

func TestCtxFlow(t *testing.T) {
	leftover := analysistest.Run(t, testdataDir(t), lint.CtxFlow, "repro/internal/fleet")
	if len(leftover) != 0 {
		t.Errorf("diagnostics outside fixtures: %v", leftover)
	}
}

func TestSnapErr(t *testing.T) {
	leftover := analysistest.Run(t, testdataDir(t), lint.SnapErr, "snaperr")
	if len(leftover) != 0 {
		t.Errorf("diagnostics outside fixtures: %v", leftover)
	}
}

func TestMetricName(t *testing.T) {
	old := lint.ReadmePath
	lint.ReadmePath = "" // naming rules only; the catalog test covers drift
	defer func() { lint.ReadmePath = old }()
	leftover := analysistest.Run(t, testdataDir(t), lint.MetricName, "metricname")
	if len(leftover) != 0 {
		t.Errorf("diagnostics outside fixtures: %v", leftover)
	}
}

// TestMetricNameCatalog checks both drift directions against the
// fixture README: a registered-but-undocumented metric is flagged at
// its registration (a want comment in the fixture), and a
// documented-but-unregistered one is flagged against the README —
// which sits outside the fixture src tree, so it comes back as a
// leftover asserted here.
func TestMetricNameCatalog(t *testing.T) {
	root := testdataDir(t)
	old := lint.ReadmePath
	lint.ReadmePath = filepath.Join(root, "README.md")
	defer func() { lint.ReadmePath = old }()
	leftover := analysistest.Run(t, root, lint.MetricName, "metriccatalog")
	if len(leftover) != 1 {
		t.Fatalf("want exactly one README-side drift finding, got %v", leftover)
	}
	if !strings.Contains(leftover[0].Message, `"reach_ghost_total"`) ||
		!strings.Contains(leftover[0].Message, "no code registers") {
		t.Errorf("unexpected README drift finding: %v", leftover[0])
	}
}
