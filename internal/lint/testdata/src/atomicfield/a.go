package atomicfield

import "sync/atomic"

type counter struct {
	n    int64 // accessed via sync/atomic in incr — every access must be
	safe int64 // never touched atomically — plain access is fine
}

func (c *counter) incr() {
	atomic.AddInt64(&c.n, 1)
}

func (c *counter) load() int64 {
	return atomic.LoadInt64(&c.n) // sanctioned: through the atomic API
}

func (c *counter) read() int64 {
	return c.n // want `plain read of field atomicfield\.n`
}

func (c *counter) reset() {
	c.n = 0 // want `plain write of field atomicfield\.n`
}

func (c *counter) plainOnly() int64 {
	c.safe++
	return c.safe
}

func fresh() *counter {
	return &counter{n: 1} // want `plain write of field atomicfield\.n`
}

func freshPositional() counter {
	return counter{2, 0} // want `plain write of field atomicfield\.n`
}
