package snaperr

import (
	"repro/internal/blockio"
	"repro/internal/graph"
)

func write(w *blockio.Writer, g *graph.Graph) error {
	w.Uint64(1)           // no error result; the writer latches internally
	graph.EncodeCSR(w, g) // want `error result of graph\.EncodeCSR is discarded`
	if err := graph.EncodeCSR(w, g); err != nil {
		return err
	}
	return w.Err()
}

func open(path string) {
	f, err := blockio.Open(path)
	if err != nil {
		return
	}
	f.Close()       // want `error result of blockio\.Close is discarded`
	_ = f.Close()   // the visible, greppable opt-out
	defer f.Close() // deferred cleanup is conventional; not flagged
}
