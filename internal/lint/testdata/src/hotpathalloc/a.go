package hotpathalloc

import "fmt"

type rec struct{ n int }

func sink(v any) { _ = v }

func helper() {}

//reach:hotpath
func bad(s string, xs []int, r rec) {
	fmt.Println(s)     // want `fmt call`
	_ = s + "!"        // want `non-constant string concatenation`
	_ = []int{1}       // want `slice literal allocates`
	_ = map[int]int{}  // want `map literal allocates`
	_ = &rec{}         // want `&composite literal escapes`
	_ = make([]int, 1) // want `make allocates`
	_ = new(rec)       // want `new allocates`
	_ = append(xs, 1)  // want `append may grow`
	_ = []byte(s)      // want `conversion string -> \[\]byte allocates`
	go helper()        // want `goroutine launch allocates`
	sink(r.n)          // want `argument to sink boxes int`
	var i any = r      // want `assignment boxes hotpathalloc\.rec`
	_ = i
	defer helper() // want `defer`
}

//reach:hotpath
func badClosure(k int) {
	f := func() int { return k } // want `function literal`
	_ = f
}

//reach:hotpath
func badReturn(x int) any {
	return x // want `return boxes int into interface`
}

// good stays within the contract: arithmetic, array (not slice)
// literals, struct values, calls to plain functions, constant strings.
//
//reach:hotpath
func good(a, b uint32, xs []uint32) uint32 {
	var buf [4]uint32
	buf[0] = a
	r := rec{n: int(b)}
	helper()
	const prefix = "x" + "y"
	_ = prefix
	for _, v := range xs {
		a += v + uint32(r.n)
	}
	_ = buf
	return a + b
}

// unannotated functions may allocate freely.
func unmarked(s string) []byte {
	fmt.Println(s)
	return []byte(s + "!")
}
