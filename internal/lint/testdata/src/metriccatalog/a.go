package metriccatalog

import "repro/internal/obs"

func register(r *obs.Registry) {
	r.Counter("reach_good_total", "Documented plainly.", nil)
	r.Counter("reach_extra_total", "Documented via a brace expansion.", nil)
	r.Histogram("reach_lookup_seconds", "Documented with a label spec.", nil)
	r.Counter("reach_undocumented_total", "Missing from the catalog.", nil) // want `not documented in the README metrics catalog`
}
