package wirewidth

import "encoding/binary"

// rec is fully fixed-width: fine on any architecture.
//
//reach:wire
type rec struct {
	A uint32
	B int64
	C [4]uint8
	D []float32
	E hdr
}

//reach:wire
type badRec struct {
	A int         // want `wire struct badRec: field type contains int`
	S string      // want `wire struct badRec: field type contains string`
	M map[int]int // want `wire struct badRec: field type contains map`
}

//reach:wire -- marked but not a struct
type alias int // want `alias is marked //reach:wire but is not a struct`

// outsideCodecScope shows a.go is not codec scope in this package: the
// binary.Write of a bare int goes unflagged without the directive or a
// codec.go filename.
func outsideCodecScope(n int) {
	_ = binary.Write(nil, binary.LittleEndian, n)
}
