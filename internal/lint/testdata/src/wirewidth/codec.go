package wirewidth

import (
	"encoding/binary"
	"io"
)

type hdr struct {
	N int64
	C uint32
}

type badHdr struct {
	N int // platform-width, smuggled inside a struct
}

func encode(w io.Writer, h hdr, b badHdr, n int, buf []byte) {
	_ = binary.Write(w, binary.LittleEndian, h)
	_ = binary.Write(w, binary.LittleEndian, int64(n))
	_ = binary.Write(w, binary.LittleEndian, n)  // want `platform-width int`
	_ = binary.Write(w, binary.LittleEndian, b)  // want `platform-width int`
	_ = binary.Write(w, binary.LittleEndian, &b) // want `platform-width int`
	_ = binary.PutVarint(buf, 5)                 // want `binary\.PutVarint is variable-width`
	_, _ = binary.Uvarint(buf)                   // want `binary\.Uvarint is variable-width`
}

func decode(r io.Reader, h *hdr, n *int) {
	_ = binary.Read(r, binary.LittleEndian, h)
	_ = binary.Read(r, binary.LittleEndian, n) // want `platform-width int`
}
