// Package fleet is a ctxflow fixture: its import path ends in
// internal/fleet, putting it inside the serving-stack scope.
package fleet

import (
	"context"
	"net/http"
)

func Probe(url string) error { // want `exported Probe calls into net/http .* but takes no context\.Context`
	resp, err := http.Get(url)
	if err != nil {
		return err
	}
	return resp.Body.Close()
}

func Detached(d int) {
	ctx := context.Background() // want `context\.Background\(\) detaches`
	_ = ctx
	ctx2 := context.TODO() // want `context\.TODO\(\) detaches`
	_ = ctx2
}

func Misordered(url string, ctx context.Context) error { // want `takes context\.Context as parameter 2; context goes first`
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return err
	}
	_ = req
	return nil
}

// Good threads the caller's context down to the wire.
func Good(ctx context.Context, client *http.Client, url string) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return err
	}
	resp, err := client.Do(req)
	if err != nil {
		return err
	}
	return resp.Body.Close()
}

type Handler struct{}

// ServeHTTP is pinned by http.Handler; the request carries the context.
func (Handler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	resp, err := http.Get("http://upstream.invalid/")
	if err == nil {
		resp.Body.Close()
	}
}

// Close is teardown: it legitimately runs without a caller context.
func (Handler) Close() error {
	resp, err := http.Get("http://upstream.invalid/drain")
	if err == nil {
		resp.Body.Close()
	}
	return nil
}

// unexportedProbe is out of scope for the signature rules.
func unexportedProbe(url string) {
	resp, err := http.Get(url)
	if err == nil {
		resp.Body.Close()
	}
}
