// Package wireproto is a wirewidth fixture: every file in the real
// repro/internal/wireproto is codec scope by package path, so a
// platform-width marshal or a varint is flagged without any directive
// or codec.go filename.
package wireproto

import (
	"encoding/binary"
	"io"
)

func encodeCount(w io.Writer, n int) error {
	return binary.Write(w, binary.LittleEndian, n) // want `binary.Write data contains platform-width int; marshal a fixed-width type instead`
}

func encodeVar(buf []byte, n uint64) int {
	return binary.PutUvarint(buf, n) // want `binary.PutUvarint is variable-width; the snapshot format is fixed-width little-endian blocks`
}

// encodeFixed is the shape the package is allowed to take: fixed-width
// little-endian fields only.
func encodeFixed(buf []byte, u, v uint32) {
	binary.LittleEndian.PutUint32(buf[0:4], u)
	binary.LittleEndian.PutUint32(buf[4:8], v)
}
