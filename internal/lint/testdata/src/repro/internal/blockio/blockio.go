// Package blockio is a fixture stub standing in for the real
// repro/internal/blockio: enough surface for the snaperr fixtures.
package blockio

type Writer struct{}

func (w *Writer) Uint64(v uint64) {}

func (w *Writer) Err() error { return nil }

type File struct{}

func (f *File) Close() error { return nil }

func Open(path string) (*File, error) { return &File{}, nil }
