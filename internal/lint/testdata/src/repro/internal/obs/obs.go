// Package obs is a fixture stub standing in for the real
// repro/internal/obs: just the Registry constructor surface the
// metricname analyzer matches on (by package-path suffix).
package obs

type Labels map[string]string

type Histogram struct{}

type Counter struct{}

func (c *Counter) Value() int64 { return 0 }

type Registry struct{}

func (r *Registry) Histogram(name, help string, labels Labels) *Histogram { return &Histogram{} }

func (r *Registry) Counter(name, help string, labels Labels) *Counter { return &Counter{} }

func (r *Registry) CounterFunc(name, help string, labels Labels, fn func() int64) {}

func (r *Registry) GaugeFunc(name, help string, labels Labels, fn func() float64) {}
