// Package graph is a fixture stub standing in for the real
// repro/internal/graph: one codec entry point for the snaperr fixtures.
package graph

import "repro/internal/blockio"

type Graph struct{}

func EncodeCSR(w *blockio.Writer, g *Graph) error { return nil }
