package metricname

import "repro/internal/obs"

const latency = "reach_lookup_seconds"

func register(r *obs.Registry, dyn string, fn func() int64) {
	r.Counter("reach_good_total", "Queries served.", nil)
	r.Histogram(latency, "Lookup latency.", nil)
	r.CounterFunc("reach_exported_total", "Exported from an atomic.", nil, fn)
	r.GaugeFunc("reach_depth", "Queue depth.", obs.Labels{"queue": "probe"}, nil)

	r.Counter("reach-dashes-total", "Bad.", nil) // want `violates the naming rule` `must end in _total`
	r.Counter("queries_total", "Bad.", nil)      // want `lacks the reach_ namespace prefix`
	r.Counter("reach_oops", "Bad.", nil)         // want `counter "reach_oops" must end in _total`
	r.Histogram("reach_lat_ms", "Bad.", nil)     // want `must end in _seconds`
	r.Counter(dyn, "Bad.", nil)                  // want `compile-time string constant`

	r.Counter("reach_good_total", "Queries served.", nil)                             // want `already registered`
	r.Counter("reach_good_total", "A different story.", obs.Labels{"tier": "router"}) // want `second help string`
	r.GaugeFunc("reach_bad_label", "Bad key.", obs.Labels{"Upper-Case": "v"}, nil)    // want `label key "Upper-Case" violates`
}
