// Package analysistest is the golden-file runner for the reachlint
// analyzers, mirroring golang.org/x/tools/go/analysis/analysistest on
// top of the in-tree framework: fixture packages live in GOPATH-style
// trees (testdata/src/<importpath>/*.go) and annotate the lines where
// diagnostics are expected with
//
//	// want `regexp`
//
// comments (several per line allowed, each matching one diagnostic).
// A diagnostic with no matching want, or a want with no matching
// diagnostic, fails the test.
package analysistest

import (
	"fmt"
	"go/token"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"repro/internal/lint/analysis"
	"repro/internal/lint/loader"
)

// Run loads the fixture packages under root (root/src/<pkgpath>),
// applies the analyzer, and checks every diagnostic positioned inside
// the fixture tree against the want comments. Diagnostics positioned
// elsewhere (e.g. a Finish hook reporting against a README) are
// returned for the caller to assert on.
func Run(t *testing.T, root string, a *analysis.Analyzer, pkgpaths ...string) []analysis.Diagnostic {
	t.Helper()
	prog, err := loader.LoadTestdata(root, pkgpaths...)
	if err != nil {
		t.Fatalf("loading fixtures: %v", err)
	}
	g := analysis.NewGlobal(prog.Fset)
	diags, err := analysis.Run(g, prog.Packages, []*analysis.Analyzer{a})
	if err != nil {
		t.Fatalf("running %s: %v", a.Name, err)
	}

	wants := collectWants(t, prog)

	type lineKey struct {
		file string
		line int
	}
	byLine := make(map[lineKey][]analysis.Diagnostic)
	var leftover []analysis.Diagnostic
	srcRoot := filepath.Join(root, "src")
	for _, d := range diags {
		if !underRoot(d.Pos.Filename, srcRoot) {
			leftover = append(leftover, d)
			continue
		}
		k := lineKey{d.Pos.Filename, d.Pos.Line}
		byLine[k] = append(byLine[k], d)
	}

	matched := make(map[lineKey][]bool)
	for k, ds := range byLine {
		matched[k] = make([]bool, len(ds))
	}
	for _, w := range wants {
		k := lineKey{w.file, w.line}
		ds := byLine[k]
		found := false
		for i, d := range ds {
			if !matched[k][i] && w.re.MatchString(d.Message) {
				matched[k][i] = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", w.file, w.line, w.re)
		}
	}
	for k, ds := range byLine {
		for i, d := range ds {
			if !matched[k][i] {
				t.Errorf("%s: unexpected diagnostic: %s", k.file, d)
			}
		}
	}
	return leftover
}

func underRoot(filename, root string) bool {
	return strings.HasPrefix(filename, root+"/") || strings.HasPrefix(filename, root+"\\")
}

type want struct {
	file string
	line int
	re   *regexp.Regexp
}

// collectWants scans the fixture files' comments for want annotations.
func collectWants(t *testing.T, prog *loader.Program) []want {
	t.Helper()
	var wants []want
	for _, pkg := range prog.Packages {
		for _, f := range pkg.Syntax {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					pos := prog.Fset.Position(c.Pos())
					ws, err := parseWant(c.Text, pos)
					if err != nil {
						t.Fatalf("%s: %v", pos, err)
					}
					wants = append(wants, ws...)
				}
			}
		}
	}
	return wants
}

// parseWant extracts the expectations from one comment. Expectation
// patterns are Go string literals — backquoted by convention, so regexp
// metacharacters survive unescaped.
func parseWant(text string, pos token.Position) ([]want, error) {
	i := strings.Index(text, "want ")
	if !strings.HasPrefix(text, "//") || i < 0 {
		return nil, nil
	}
	rest := strings.TrimSpace(text[i+len("want "):])
	var wants []want
	for rest != "" {
		lit, err := quotedPrefix(rest)
		if err != nil {
			return nil, fmt.Errorf("malformed want comment %q: %v", text, err)
		}
		pattern, err := strconv.Unquote(lit)
		if err != nil {
			return nil, fmt.Errorf("malformed want pattern %q: %v", lit, err)
		}
		re, err := regexp.Compile(pattern)
		if err != nil {
			return nil, fmt.Errorf("bad want regexp %q: %v", pattern, err)
		}
		wants = append(wants, want{file: pos.Filename, line: pos.Line, re: re})
		rest = strings.TrimSpace(rest[len(lit):])
	}
	return wants, nil
}

func quotedPrefix(s string) (string, error) {
	return strconv.QuotedPrefix(s)
}
