// Package loader turns Go packages into the type-checked form
// internal/lint/analysis consumes, without depending on
// golang.org/x/tools/go/packages. Two entry points:
//
//   - Load resolves package patterns through `go list -export -deps`,
//     parses each matched (non-test) package from source, and
//     type-checks it against the toolchain's export data — the same
//     data the compiler itself produces, so dependencies (stdlib and
//     in-module alike) cost an export-file read instead of a recursive
//     source type-check.
//   - LoadTestdata loads GOPATH-style fixture trees
//     (testdata/src/<importpath>/*.go) for the analysistest golden
//     runner, resolving fixture-to-fixture imports from source and
//     everything else through `go list -export` export data.
//
// Both produce packages sharing one token.FileSet so diagnostics from
// any package position correctly.
package loader

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"repro/internal/lint/analysis"
)

// Program is the result of one load: the target packages plus the
// module root (where README.md and friends live), all over one FileSet.
type Program struct {
	Fset *token.FileSet
	// Packages are the requested packages, in go list order (Load) or
	// dependency order (LoadTestdata).
	Packages []*analysis.Package
	// ModuleRoot is the directory of the enclosing module, "" when
	// unknown (testdata loads).
	ModuleRoot string
}

// listedPackage is the subset of `go list -json` output the loader reads.
type listedPackage struct {
	ImportPath string
	Dir        string
	Export     string
	GoFiles    []string
	Standard   bool
	DepOnly    bool
	Module     *struct{ Dir string }
	Error      *struct{ Err string }
}

// goList runs `go list -e -export -deps -json` in dir over patterns and
// decodes the stream. -export compiles (or reuses from the build cache)
// export data for every listed package; -e keeps broken packages in the
// output so errors can be attributed instead of aborting the listing.
func goList(dir string, patterns []string) ([]*listedPackage, error) {
	args := []string{
		"list", "-e", "-export", "-deps",
		"-json=ImportPath,Dir,Export,GoFiles,Standard,DepOnly,Module,Error",
	}
	args = append(args, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %s: %v\n%s", strings.Join(patterns, " "), err, stderr.String())
	}
	var pkgs []*listedPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		p := new(listedPackage)
		if err := dec.Decode(p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("decoding go list output: %w", err)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// exportImporter returns a types.Importer that resolves import paths
// through the given export-data files (as the gc compiler would).
func exportImporter(fset *token.FileSet, exports map[string]string) types.Importer {
	lookup := func(path string) (io.ReadCloser, error) {
		f, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(f)
	}
	return importer.ForCompiler(fset, "gc", lookup)
}

func newTypesInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
}

// parseFiles parses the named files (comments on — the analyzers read
// annotations) into fset.
func parseFiles(fset *token.FileSet, dir string, names []string) ([]*ast.File, error) {
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	return files, nil
}

// Load lists patterns (e.g. "./...") relative to dir and returns the
// matched packages parsed and type-checked. Test files are not loaded:
// the invariants reachlint enforces are production-code invariants, and
// tests legitimately do things the analyzers forbid (context.Background,
// ad-hoc metric names, allocation in wrapped hot paths).
func Load(dir string, patterns ...string) (*Program, error) {
	listed, err := goList(dir, patterns)
	if err != nil {
		return nil, err
	}
	exports := make(map[string]string, len(listed))
	var targets []*listedPackage
	moduleRoot := ""
	for _, p := range listed {
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if p.DepOnly || p.Standard {
			continue
		}
		if p.Error != nil {
			return nil, fmt.Errorf("%s: %s", p.ImportPath, p.Error.Err)
		}
		if len(p.GoFiles) == 0 {
			continue
		}
		if moduleRoot == "" && p.Module != nil {
			moduleRoot = p.Module.Dir
		}
		targets = append(targets, p)
	}
	fset := token.NewFileSet()
	imp := exportImporter(fset, exports)
	prog := &Program{Fset: fset, ModuleRoot: moduleRoot}
	for _, p := range targets {
		files, err := parseFiles(fset, p.Dir, p.GoFiles)
		if err != nil {
			return nil, err
		}
		info := newTypesInfo()
		conf := types.Config{Importer: imp}
		tpkg, err := conf.Check(p.ImportPath, fset, files, info)
		if err != nil {
			return nil, fmt.Errorf("type-checking %s: %w", p.ImportPath, err)
		}
		prog.Packages = append(prog.Packages, &analysis.Package{
			PkgPath: p.ImportPath, Dir: p.Dir,
			Syntax: files, Types: tpkg, TypesInfo: info,
		})
	}
	return prog, nil
}

// LoadTestdata loads fixture packages from a GOPATH-style tree: the
// sources of import path p live in root/src/p/*.go. Imports that
// resolve inside the tree are type-checked from fixture source
// (recursively, in dependency order); all other imports resolve through
// toolchain export data. Only the requested paths are returned as
// analysis targets — fixture dependencies (stub packages standing in
// for repro/internal/obs and friends) are loaded but not analyzed.
func LoadTestdata(root string, pkgpaths ...string) (*Program, error) {
	fset := token.NewFileSet()
	parsed := make(map[string]*fixture)
	// Parse the requested packages and, transitively, every import that
	// exists under root/src.
	var queue []string
	queue = append(queue, pkgpaths...)
	for len(queue) > 0 {
		path := queue[0]
		queue = queue[1:]
		if _, ok := parsed[path]; ok {
			continue
		}
		fx, err := parseFixture(fset, root, path)
		if err != nil {
			return nil, err
		}
		parsed[path] = fx
		for _, imp := range fx.imports {
			if _, ok := parsed[imp]; !ok && fixtureExists(root, imp) {
				queue = append(queue, imp)
			}
		}
	}
	// Everything imported but not present in the tree comes from the
	// toolchain; one `go list -export -deps` over that set yields export
	// data for it and its transitive dependencies.
	externalSet := make(map[string]bool)
	for _, fx := range parsed {
		for _, imp := range fx.imports {
			if _, ok := parsed[imp]; !ok && imp != "unsafe" {
				externalSet[imp] = true
			}
		}
	}
	exports := make(map[string]string)
	if len(externalSet) > 0 {
		external := make([]string, 0, len(externalSet))
		for p := range externalSet {
			external = append(external, p)
		}
		sort.Strings(external)
		listed, err := goList(root, external)
		if err != nil {
			return nil, err
		}
		for _, p := range listed {
			if p.Export != "" {
				exports[p.ImportPath] = p.Export
			}
		}
	}
	// Type-check fixtures in dependency order so fixture imports resolve
	// to already-checked fixture packages.
	checked := make(map[string]*analysis.Package)
	imp := &fixtureImporter{
		checked:  checked,
		fallback: exportImporter(fset, exports),
	}
	var check func(path string) error
	checking := make(map[string]bool)
	check = func(path string) error {
		if _, ok := checked[path]; ok {
			return nil
		}
		if checking[path] {
			return fmt.Errorf("import cycle through fixture %q", path)
		}
		checking[path] = true
		defer delete(checking, path)
		fx := parsed[path]
		for _, dep := range fx.imports {
			if _, ok := parsed[dep]; ok {
				if err := check(dep); err != nil {
					return err
				}
			}
		}
		info := newTypesInfo()
		conf := types.Config{Importer: imp}
		tpkg, err := conf.Check(path, fset, fx.files, info)
		if err != nil {
			return fmt.Errorf("type-checking fixture %s: %w", path, err)
		}
		checked[path] = &analysis.Package{
			PkgPath: path, Dir: fx.dir,
			Syntax: fx.files, Types: tpkg, TypesInfo: info,
		}
		return nil
	}
	prog := &Program{Fset: fset}
	for _, path := range pkgpaths {
		if err := check(path); err != nil {
			return nil, err
		}
		prog.Packages = append(prog.Packages, checked[path])
	}
	return prog, nil
}

// fixture is one parsed (not yet type-checked) testdata package.
type fixture struct {
	dir     string
	files   []*ast.File
	imports []string
}

func fixtureDir(root, path string) string {
	return filepath.Join(root, "src", filepath.FromSlash(path))
}

func fixtureExists(root, path string) bool {
	st, err := os.Stat(fixtureDir(root, path))
	return err == nil && st.IsDir()
}

func parseFixture(fset *token.FileSet, root, path string) (*fixture, error) {
	dir := fixtureDir(root, path)
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("fixture %s: %w", path, err)
	}
	fx := &fixture{dir: dir}
	seen := make(map[string]bool)
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		fx.files = append(fx.files, f)
		for _, spec := range f.Imports {
			p, err := strconv.Unquote(spec.Path.Value)
			if err != nil {
				continue
			}
			if !seen[p] {
				seen[p] = true
				fx.imports = append(fx.imports, p)
			}
		}
	}
	if len(fx.files) == 0 {
		return nil, fmt.Errorf("fixture %s: no Go files in %s", path, dir)
	}
	return fx, nil
}

// fixtureImporter resolves fixture packages from the checked set and
// everything else through export data.
type fixtureImporter struct {
	checked  map[string]*analysis.Package
	fallback types.Importer
}

func (fi *fixtureImporter) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if p, ok := fi.checked[path]; ok {
		return p.Types, nil
	}
	return fi.fallback.Import(path)
}
