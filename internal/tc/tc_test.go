package tc

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/gen"
	"repro/internal/graph"
)

func TestClosureDiamond(t *testing.T) {
	g := graph.MustFromEdges(4, [][2]graph.Vertex{{0, 1}, {0, 2}, {1, 3}, {2, 3}})
	closure := Closure(g)
	want := [][]int{
		{0, 1, 2, 3},
		{1, 3},
		{2, 3},
		{3},
	}
	for v, w := range want {
		if got := closure[v].Slice(); !reflect.DeepEqual(got, w) {
			t.Errorf("TC(%d) = %v, want %v", v, got, w)
		}
	}
	if CountPairs(g) != 5 {
		t.Errorf("CountPairs = %d, want 5", CountPairs(g))
	}
}

func TestClosureMatchesBFS(t *testing.T) {
	g := gen.UniformDAG(150, 400, 11)
	closure := Closure(g)
	vst := graph.NewVisitor(g.NumVertices())
	rng := rand.New(rand.NewSource(5))
	for q := 0; q < 500; q++ {
		u := graph.Vertex(rng.Intn(g.NumVertices()))
		v := graph.Vertex(rng.Intn(g.NumVertices()))
		if got, want := closure[u].Get(int(v)), vst.Reachable(g, u, v); got != want {
			t.Fatalf("TC(%d) contains %d = %v, BFS says %v", u, v, got, want)
		}
	}
}

func TestReverseClosure(t *testing.T) {
	g := graph.MustFromEdges(3, [][2]graph.Vertex{{0, 1}, {1, 2}})
	rc := ReverseClosure(g)
	if got := rc[2].Slice(); !reflect.DeepEqual(got, []int{0, 1, 2}) {
		t.Errorf("reverse TC(2) = %v", got)
	}
	if got := rc[0].Slice(); !reflect.DeepEqual(got, []int{0}) {
		t.Errorf("reverse TC(0) = %v", got)
	}
}

func TestEstimatePairsExactWhenFullSample(t *testing.T) {
	g := gen.TreeDAG(120, 0.1, 0, 3)
	exact := CountPairs(g)
	// Sampling every vertex... EstimatePairs samples with replacement, so use
	// a generous tolerance instead of equality.
	est := EstimatePairs(g, 120, 1)
	lo, hi := exact/2, exact*2
	if est < lo || est > hi {
		t.Errorf("estimate %d implausible vs exact %d", est, exact)
	}
	if EstimatePairs(graph.NewBuilder(0).MustBuild(), 5, 1) != 0 {
		t.Error("estimate on empty graph should be 0")
	}
}

func TestSamplePositivePair(t *testing.T) {
	g := gen.CitationDAG(300, 3, 0.5, 9)
	rng := rand.New(rand.NewSource(2))
	vst := graph.NewVisitor(g.NumVertices())
	check := graph.NewVisitor(g.NumVertices())
	for i := 0; i < 100; i++ {
		u, v, ok := SamplePositivePair(g, rng, vst)
		if !ok {
			t.Fatal("sampling failed on a graph with edges")
		}
		if u == v {
			t.Fatal("sampled a self pair")
		}
		if !check.Reachable(g, u, v) {
			t.Fatalf("sampled unreachable pair (%d,%d)", u, v)
		}
	}
}

func TestSamplePositivePairEdgeless(t *testing.T) {
	g := graph.NewBuilder(5).MustBuild()
	rng := rand.New(rand.NewSource(1))
	vst := graph.NewVisitor(5)
	if _, _, ok := SamplePositivePair(g, rng, vst); ok {
		t.Fatal("sampled a pair from an edgeless graph")
	}
}

func TestIntervalSetBasics(t *testing.T) {
	s := FromSortedValues([]uint32{1, 2, 3, 4, 8, 9, 10})
	want := IntervalSet{{1, 4}, {8, 10}}
	if !reflect.DeepEqual(s, want) {
		t.Fatalf("FromSortedValues = %v, want %v (the paper's §2.1 example)", s, want)
	}
	if s.Card() != 7 {
		t.Errorf("Card = %d, want 7", s.Card())
	}
	if s.SizeInts() != 4 {
		t.Errorf("SizeInts = %d, want 4", s.SizeInts())
	}
	for _, x := range []uint32{1, 2, 4, 8, 10} {
		if !s.Contains(x) {
			t.Errorf("Contains(%d) = false", x)
		}
	}
	for _, x := range []uint32{0, 5, 7, 11, 100} {
		if s.Contains(x) {
			t.Errorf("Contains(%d) = true", x)
		}
	}
}

func TestMergeIntervalSets(t *testing.T) {
	a := IntervalSet{{1, 3}, {10, 12}}
	b := IntervalSet{{4, 5}, {11, 20}}
	got := MergeIntervalSets(a, b)
	want := IntervalSet{{1, 5}, {10, 20}} // [1,3]+[4,5] adjacent-merge
	if !reflect.DeepEqual(got, want) {
		t.Errorf("merge = %v, want %v", got, want)
	}
	if MergeIntervalSets() != nil {
		t.Error("empty merge should be nil")
	}
	if got := MergeIntervalSets(nil, a); !reflect.DeepEqual(got, a) {
		t.Errorf("merge with nil = %v", got)
	}
}

func TestIntervalSetAddValue(t *testing.T) {
	s := IntervalSet{{5, 7}}
	s = s.AddValue(8) // adjacent: extends
	if !reflect.DeepEqual(s, IntervalSet{{5, 8}}) {
		t.Fatalf("AddValue(8) = %v", s)
	}
	s = s.AddValue(1)
	if !reflect.DeepEqual(s, IntervalSet{{1, 1}, {5, 8}}) {
		t.Fatalf("AddValue(1) = %v", s)
	}
}

func TestIntervalSetValuesRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		set := map[uint32]bool{}
		for i := 0; i < 80; i++ {
			set[uint32(rng.Intn(200))] = true
		}
		values := make([]uint32, 0, len(set))
		for x := uint32(0); x < 200; x++ {
			if set[x] {
				values = append(values, x)
			}
		}
		s := FromSortedValues(values)
		return reflect.DeepEqual(s.Values(), values)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: merged set contains exactly the union's members.
func TestMergeProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		mk := func() (IntervalSet, map[uint32]bool) {
			set := map[uint32]bool{}
			var vals []uint32
			for x := uint32(0); x < 150; x++ {
				if rng.Intn(3) == 0 {
					set[x] = true
					vals = append(vals, x)
				}
			}
			return FromSortedValues(vals), set
		}
		a, sa := mk()
		b, sb := mk()
		m := MergeIntervalSets(a, b)
		for x := uint32(0); x < 160; x++ {
			if m.Contains(x) != (sa[x] || sb[x]) {
				return false
			}
		}
		// Normalization: intervals strictly separated by at least one gap.
		for i := 1; i < len(m); i++ {
			if m[i].Lo <= m[i-1].Hi+1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
