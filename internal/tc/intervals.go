package tc

import (
	"sort"
	"unsafe"
)

// Interval is an inclusive range [Lo, Hi] of vertex numbers.
type Interval struct {
	Lo, Hi uint32
}

// IntervalSet is a sorted list of disjoint, non-adjacent inclusive
// intervals. It is the compressed representation used by the Nuutila
// interval index (INT) and the tree-cover family: any contiguous segment of
// a transitive closure collapses to one interval, e.g. {1,2,3,4,8,9,10}
// becomes [1,4],[8,10] (the paper's §2.1 example).
type IntervalSet []Interval

// Contains reports whether x lies in some interval, by binary search.
func (s IntervalSet) Contains(x uint32) bool {
	i := sort.Search(len(s), func(i int) bool { return s[i].Hi >= x })
	return i < len(s) && s[i].Lo <= x
}

// Card returns the number of integers covered.
func (s IntervalSet) Card() int64 {
	var total int64
	for _, iv := range s {
		total += int64(iv.Hi-iv.Lo) + 1
	}
	return total
}

// SizeInts returns the storage cost in 32-bit integers (two per interval),
// the metric used for index-size reporting.
func (s IntervalSet) SizeInts() int64 { return int64(len(s)) * 2 }

// FromSortedValues builds an IntervalSet from strictly increasing values,
// merging adjacent runs.
func FromSortedValues(values []uint32) IntervalSet {
	var out IntervalSet
	for i := 0; i < len(values); {
		j := i
		for j+1 < len(values) && values[j+1] == values[j]+1 {
			j++
		}
		out = append(out, Interval{Lo: values[i], Hi: values[j]})
		i = j + 1
	}
	return out
}

// MergeIntervalSets unions any number of interval sets into a normalized
// set (sorted, disjoint, non-adjacent merged). This is the inner loop of
// the Nuutila index construction, so it avoids per-element work: k-way
// concatenation, sort by Lo, then a single sweep.
func MergeIntervalSets(sets ...IntervalSet) IntervalSet {
	total := 0
	for _, s := range sets {
		total += len(s)
	}
	if total == 0 {
		return nil
	}
	all := make(IntervalSet, 0, total)
	for _, s := range sets {
		all = append(all, s...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i].Lo < all[j].Lo })
	out := all[:1]
	for _, iv := range all[1:] {
		last := &out[len(out)-1]
		overlapsOrAdjacent := iv.Lo <= last.Hi ||
			(last.Hi != ^uint32(0) && iv.Lo == last.Hi+1)
		if overlapsOrAdjacent {
			if iv.Hi > last.Hi {
				last.Hi = iv.Hi
			}
		} else {
			out = append(out, iv)
		}
	}
	return out
}

// IntervalsFromPairs reinterprets a flat [lo0, hi0, lo1, hi1, ...] array
// as an IntervalSet. On little-endian hosts with 4-byte-aligned input the
// result aliases pairs (Interval is exactly two uint32s), which is what
// lets a snapshot's interval sections decode zero-copy from an mmap'd
// file; otherwise it copies. The pair count must be even.
func IntervalsFromPairs(pairs []uint32) IntervalSet {
	if len(pairs) == 0 {
		return nil
	}
	if uintptr(unsafe.Pointer(&pairs[0]))&3 == 0 {
		return unsafe.Slice((*Interval)(unsafe.Pointer(&pairs[0])), len(pairs)/2)
	}
	out := make(IntervalSet, len(pairs)/2)
	for i := range out {
		out[i] = Interval{Lo: pairs[2*i], Hi: pairs[2*i+1]}
	}
	return out
}

// AppendPairs appends the set's intervals to dst as flat [lo, hi] pairs —
// the inverse of IntervalsFromPairs, used when encoding snapshots.
func (s IntervalSet) AppendPairs(dst []uint32) []uint32 {
	for _, iv := range s {
		dst = append(dst, iv.Lo, iv.Hi)
	}
	return dst
}

// AddValue returns s with the single value x included (normalized).
func (s IntervalSet) AddValue(x uint32) IntervalSet {
	return MergeIntervalSets(s, IntervalSet{{Lo: x, Hi: x}})
}

// Values expands the set to its member values in increasing order. For
// tests only; defeats the point of the compression otherwise.
func (s IntervalSet) Values() []uint32 {
	out := make([]uint32, 0, s.Card())
	for _, iv := range s {
		for x := iv.Lo; ; x++ {
			out = append(out, x)
			if x == iv.Hi {
				break
			}
		}
	}
	return out
}
