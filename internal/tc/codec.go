package tc

import (
	"fmt"

	"repro/internal/blockio"
)

// EncodeSets writes a (renumbering, per-vertex interval set) pair — the
// shared snapshot layout of the INT and TCOV indexes: the numbering
// array, a per-vertex interval-count offset array, and flat [lo, hi]
// pairs.
func EncodeSets(w *blockio.Writer, num []uint32, reach []IntervalSet) {
	w.Uint32s(num)
	off := make([]uint32, len(reach)+1)
	total := 0
	for v, s := range reach {
		total += len(s)
		off[v+1] = uint32(total)
	}
	w.Uint32s(off)
	flat := make([]uint32, 0, 2*total)
	for _, s := range reach {
		flat = s.AppendPairs(flat)
	}
	w.Uint32s(flat)
}

// DecodeSets reads the layout written by EncodeSets for an n-vertex
// graph, aliasing the flat pair array where the reader allows. The offset
// structure is fully validated so the per-vertex sets are always in
// bounds; interval bounds themselves are not range-checked (Contains only
// compares them, so arbitrary values are memory-safe).
func DecodeSets(r *blockio.Reader, n int) (num []uint32, reach []IntervalSet, err error) {
	if num, err = r.Uint32s(); err != nil {
		return nil, nil, err
	}
	if len(num) != n {
		return nil, nil, fmt.Errorf("tc: numbering has %d entries for %d vertices", len(num), n)
	}
	off, err := r.Uint32s()
	if err != nil {
		return nil, nil, err
	}
	if len(off) != n+1 || off[0] != 0 {
		return nil, nil, fmt.Errorf("tc: interval offsets have %d entries for %d vertices", len(off), n)
	}
	for v := 0; v < n; v++ {
		if off[v] > off[v+1] {
			return nil, nil, fmt.Errorf("tc: interval offsets not monotone at %d", v)
		}
	}
	flat, err := r.Uint32s()
	if err != nil {
		return nil, nil, err
	}
	if len(flat)%2 != 0 || int(off[n]) != len(flat)/2 {
		return nil, nil, fmt.Errorf("tc: interval offsets cover %d intervals but %d pair values present", off[n], len(flat))
	}
	all := IntervalsFromPairs(flat)
	reach = make([]IntervalSet, n)
	for v := 0; v < n; v++ {
		reach[v] = all[off[v]:off[v+1]]
	}
	return num, reach, nil
}
