// Package tc computes and represents transitive closures. Full closure
// materialization is what the paper's expensive baselines (2HOP, K-Reach,
// PW8, INT) need and what HL/DL avoid; this package provides it for those
// baselines, for ground truth in tests, and for positive-query sampling in
// the benchmark workload generator.
package tc

import (
	"math/rand"

	"repro/internal/bitset"
	"repro/internal/graph"
)

// Closure returns the full transitive closure of DAG g as one bitset per
// vertex; closure[u] contains v iff u reaches v (u itself included).
// Memory is O(n^2/64) — callers must budget-guard large graphs.
func Closure(g *graph.Graph) []*bitset.Bitset {
	n := g.NumVertices()
	order, ok := graph.TopoOrder(g)
	if !ok {
		panic("tc: Closure requires a DAG")
	}
	closure := make([]*bitset.Bitset, n)
	// Reverse topological order: successors are complete before
	// predecessors, so TC(u) = {u} ∪ ⋃ TC(succ).
	for i := len(order) - 1; i >= 0; i-- {
		u := order[i]
		b := bitset.New(n)
		b.Set(int(u))
		for _, w := range g.Out(u) {
			b.Or(closure[w])
		}
		closure[u] = b
	}
	return closure
}

// ReverseClosure returns, for each vertex v, the set of vertices that reach
// v (v itself included).
func ReverseClosure(g *graph.Graph) []*bitset.Bitset {
	return Closure(g.Reverse())
}

// CountPairs returns the number of ordered reachable pairs (u, v) with
// u != v, by materializing the closure. Only for graphs small enough for
// Closure.
func CountPairs(g *graph.Graph) int64 {
	closure := Closure(g)
	var total int64
	for _, b := range closure {
		total += int64(b.Count() - 1) // exclude the self pair
	}
	return total
}

// EstimatePairs estimates the number of ordered reachable pairs (u, v),
// u != v, by running forward BFS from `samples` uniformly random sources.
// Cost is O(samples * (n + m)); the estimate is unbiased.
func EstimatePairs(g *graph.Graph, samples int, seed int64) int64 {
	n := g.NumVertices()
	if n == 0 {
		return 0
	}
	if samples > n {
		samples = n
	}
	rng := rand.New(rand.NewSource(seed))
	vst := graph.NewVisitor(n)
	var total int64
	for i := 0; i < samples; i++ {
		u := graph.Vertex(rng.Intn(n))
		total += int64(vst.CountReachable(g, u) - 1)
	}
	return total * int64(n) / int64(samples)
}

// SamplePositivePair returns a uniformly-random-source reachable pair
// (u, v), u != v, or ok=false if none was found within a bounded number of
// attempts (e.g. on an edgeless graph). The paper's "equal" workload samples
// positive queries from the transitive closure; this does so without
// materializing it.
func SamplePositivePair(g *graph.Graph, rng *rand.Rand, vst *graph.Visitor) (u, v graph.Vertex, ok bool) {
	n := g.NumVertices()
	if n < 2 || g.NumEdges() == 0 {
		return 0, 0, false
	}
	var reach []graph.Vertex
	for attempt := 0; attempt < 64; attempt++ {
		src := graph.Vertex(rng.Intn(n))
		reach = reach[:0]
		vst.BFS(g, src, graph.Forward, func(w graph.Vertex, _ int32) bool {
			if w != src {
				reach = append(reach, w)
			}
			return true
		})
		if len(reach) > 0 {
			return src, reach[rng.Intn(len(reach))], true
		}
	}
	return 0, 0, false
}
