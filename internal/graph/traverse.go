package graph

// Direction selects forward (out-edge) or backward (in-edge) traversal.
type Direction int

const (
	// Forward follows out-edges.
	Forward Direction = iota
	// Backward follows in-edges.
	Backward
)

func (d Direction) String() string {
	if d == Forward {
		return "forward"
	}
	return "backward"
}

// adj returns the adjacency of v in direction d.
func (g *Graph) adj(v Vertex, d Direction) []uint32 {
	if d == Forward {
		return g.Out(v)
	}
	return g.In(v)
}

// Visitor holds reusable BFS state sized for one graph. The epoch trick
// (mark = current epoch number instead of a bool) makes successive
// traversals O(frontier) instead of O(n) to reset, which matters when a
// labeling algorithm runs n traversals.
type Visitor struct {
	mark  []uint32
	epoch uint32
	queue []Vertex
	dist  []int32
}

// NewVisitor returns traversal state for graphs with n vertices.
func NewVisitor(n int) *Visitor {
	return &Visitor{mark: make([]uint32, n), dist: make([]int32, n)}
}

// Reset invalidates all marks from prior traversals in O(1) (amortized; a
// full clear happens only on epoch wraparound, once per 2^32 traversals).
func (vst *Visitor) Reset() {
	vst.epoch++
	if vst.epoch == 0 { // wrapped: clear and restart
		for i := range vst.mark {
			vst.mark[i] = 0
		}
		vst.epoch = 1
	}
	vst.queue = vst.queue[:0]
}

// Visited reports whether v was marked in the current epoch.
func (vst *Visitor) Visited(v Vertex) bool { return vst.mark[v] == vst.epoch }

// Visit marks v in the current epoch; returns false if already marked.
func (vst *Visitor) Visit(v Vertex) bool {
	if vst.mark[v] == vst.epoch {
		return false
	}
	vst.mark[v] = vst.epoch
	return true
}

// BFS traverses g from src in direction dir, calling fn(v, dist) for every
// visited vertex including src (dist 0). Traversal expands v only if fn
// returns true, which is how labeling algorithms prune. The Visitor is Reset
// automatically.
func (vst *Visitor) BFS(g *Graph, src Vertex, dir Direction, fn func(v Vertex, dist int32) bool) {
	vst.Reset()
	vst.Visit(src)
	vst.dist[src] = 0
	vst.queue = append(vst.queue, src)
	for head := 0; head < len(vst.queue); head++ {
		v := vst.queue[head]
		d := vst.dist[v]
		if !fn(v, d) {
			continue // pruned: do not expand v
		}
		for _, w := range g.adj(v, dir) {
			if vst.Visit(w) {
				vst.dist[w] = d + 1
				vst.queue = append(vst.queue, w)
			}
		}
	}
}

// BoundedBFS traverses from src up to maxDist steps, calling fn for every
// visited vertex (including src at distance 0). Vertices at distance maxDist
// are reported but not expanded.
func (vst *Visitor) BoundedBFS(g *Graph, src Vertex, dir Direction, maxDist int32, fn func(v Vertex, dist int32)) {
	vst.BFS(g, src, dir, func(v Vertex, d int32) bool {
		fn(v, d)
		return d < maxDist
	})
}

// KNeighborhood returns all vertices within maxDist steps of src in
// direction dir, including src itself, in BFS order.
func (vst *Visitor) KNeighborhood(g *Graph, src Vertex, dir Direction, maxDist int32) []Vertex {
	var out []Vertex
	vst.BoundedBFS(g, src, dir, maxDist, func(v Vertex, _ int32) {
		out = append(out, v)
	})
	return out
}

// Reachable answers u -> v by plain forward BFS; the ground-truth oracle for
// tests and the "online search" reference point.
func (vst *Visitor) Reachable(g *Graph, u, v Vertex) bool {
	if u == v {
		return true
	}
	found := false
	vst.BFS(g, u, Forward, func(w Vertex, _ int32) bool {
		if w == v {
			found = true
		}
		return !found
	})
	return found
}

// CountReachable returns |TC(u)| including u itself.
func (vst *Visitor) CountReachable(g *Graph, u Vertex) int {
	count := 0
	vst.BFS(g, u, Forward, func(Vertex, int32) bool {
		count++
		return true
	})
	return count
}

// BiVisitor holds state for bidirectional BFS reachability: two Visitors,
// one per direction.
type BiVisitor struct {
	fwd, bwd *Visitor
}

// NewBiVisitor returns bidirectional traversal state for n-vertex graphs.
func NewBiVisitor(n int) *BiVisitor {
	return &BiVisitor{fwd: NewVisitor(n), bwd: NewVisitor(n)}
}

// Reachable answers u -> v by alternating forward search from u and backward
// search from v, expanding the smaller frontier first. On DAGs with small
// out- or in-neighborhoods this is often far faster than one-sided BFS.
func (bv *BiVisitor) Reachable(g *Graph, u, v Vertex) bool {
	if u == v {
		return true
	}
	f, b := bv.fwd, bv.bwd
	f.Reset()
	b.Reset()
	f.Visit(u)
	b.Visit(v)
	f.queue = append(f.queue, u)
	b.queue = append(b.queue, v)
	fHead, bHead := 0, 0
	for fHead < len(f.queue) || bHead < len(b.queue) {
		// Expand the side with the smaller remaining frontier.
		if fHead < len(f.queue) && (bHead >= len(b.queue) || len(f.queue)-fHead <= len(b.queue)-bHead) {
			w := f.queue[fHead]
			fHead++
			for _, x := range g.Out(w) {
				if b.Visited(x) {
					return true
				}
				if f.Visit(x) {
					f.queue = append(f.queue, x)
				}
			}
		} else {
			w := b.queue[bHead]
			bHead++
			for _, x := range g.In(w) {
				if f.Visited(x) {
					return true
				}
				if b.Visit(x) {
					b.queue = append(b.queue, x)
				}
			}
		}
	}
	return false
}

// Distance returns the shortest-path distance (in edges) from u to v
// following dir, or -1 if unreachable. Used by backbone construction and by
// tests of the one-side backbone property.
func (vst *Visitor) Distance(g *Graph, u, v Vertex, dir Direction) int32 {
	if u == v {
		return 0
	}
	res := int32(-1)
	vst.BFS(g, u, dir, func(w Vertex, d int32) bool {
		if w == v {
			res = d
			return false
		}
		return res < 0
	})
	return res
}
