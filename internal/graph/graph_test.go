package graph

import (
	"bytes"
	"math/rand"
	"reflect"
	"sort"
	"strings"
	"testing"
	"testing/quick"
)

// diamond returns the 4-vertex diamond DAG 0->1, 0->2, 1->3, 2->3.
func diamond(t *testing.T) *Graph {
	t.Helper()
	return MustFromEdges(4, [][2]Vertex{{0, 1}, {0, 2}, {1, 3}, {2, 3}})
}

// randomDigraph builds a random (possibly cyclic) digraph for property tests.
func randomDigraph(rng *rand.Rand, n, m int) *Graph {
	b := NewBuilder(n)
	for i := 0; i < m; i++ {
		u := Vertex(rng.Intn(n))
		v := Vertex(rng.Intn(n))
		if u != v {
			b.AddEdge(u, v)
		}
	}
	return b.MustBuild()
}

// randomDAG builds a random DAG: edges always go from lower to higher ID.
func randomDAG(rng *rand.Rand, n, m int) *Graph {
	b := NewBuilder(n)
	for i := 0; i < m; i++ {
		u := rng.Intn(n)
		v := rng.Intn(n)
		if u == v {
			continue
		}
		if u > v {
			u, v = v, u
		}
		b.AddEdge(Vertex(u), Vertex(v))
	}
	return b.MustBuild()
}

func TestBuilderBasics(t *testing.T) {
	g := diamond(t)
	if g.NumVertices() != 4 {
		t.Fatalf("NumVertices = %d, want 4", g.NumVertices())
	}
	if g.NumEdges() != 4 {
		t.Fatalf("NumEdges = %d, want 4", g.NumEdges())
	}
	if got := g.Out(0); !reflect.DeepEqual(got, []uint32{1, 2}) {
		t.Errorf("Out(0) = %v, want [1 2]", got)
	}
	if got := g.In(3); !reflect.DeepEqual(got, []uint32{1, 2}) {
		t.Errorf("In(3) = %v, want [1 2]", got)
	}
	if err := g.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
}

func TestBuilderDeduplicates(t *testing.T) {
	g := MustFromEdges(3, [][2]Vertex{{0, 1}, {0, 1}, {0, 1}, {1, 2}})
	if g.NumEdges() != 2 {
		t.Fatalf("NumEdges = %d, want 2 after dedup", g.NumEdges())
	}
}

func TestBuilderRejectsSelfLoop(t *testing.T) {
	b := NewBuilder(2)
	b.AddEdge(1, 1)
	if _, err := b.Build(); err == nil {
		t.Fatal("Build accepted a self-loop")
	}
}

func TestBuilderRejectsOutOfRange(t *testing.T) {
	b := NewBuilder(2)
	b.AddEdge(0, 5)
	if _, err := b.Build(); err == nil {
		t.Fatal("Build accepted an out-of-range endpoint")
	}
}

func TestEmptyGraph(t *testing.T) {
	g := NewBuilder(0).MustBuild()
	if g.NumVertices() != 0 || g.NumEdges() != 0 {
		t.Fatalf("empty graph has n=%d m=%d", g.NumVertices(), g.NumEdges())
	}
	if err := g.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
	if order, ok := TopoOrder(g); !ok || len(order) != 0 {
		t.Errorf("TopoOrder on empty graph = %v, %v", order, ok)
	}
}

func TestHasEdge(t *testing.T) {
	g := diamond(t)
	cases := []struct {
		u, v Vertex
		want bool
	}{
		{0, 1, true}, {0, 2, true}, {1, 3, true}, {2, 3, true},
		{0, 3, false}, {1, 2, false}, {3, 0, false}, {1, 0, false},
	}
	for _, c := range cases {
		if got := g.HasEdge(c.u, c.v); got != c.want {
			t.Errorf("HasEdge(%d,%d) = %v, want %v", c.u, c.v, got, c.want)
		}
	}
}

func TestReverse(t *testing.T) {
	g := diamond(t)
	r := g.Reverse()
	if !r.HasEdge(3, 1) || !r.HasEdge(1, 0) {
		t.Error("Reverse missing flipped edges")
	}
	if r.HasEdge(0, 1) {
		t.Error("Reverse kept original edge direction")
	}
	if err := r.Validate(); err != nil {
		t.Errorf("reverse Validate: %v", err)
	}
	// Reversing twice restores the original edge set.
	rr := r.Reverse()
	if !reflect.DeepEqual(rr.EdgeList(), g.EdgeList()) {
		t.Error("double Reverse != original")
	}
}

func TestRootsAndSinks(t *testing.T) {
	g := diamond(t)
	if got := g.Roots(); !reflect.DeepEqual(got, []Vertex{0}) {
		t.Errorf("Roots = %v, want [0]", got)
	}
	if got := g.Sinks(); !reflect.DeepEqual(got, []Vertex{3}) {
		t.Errorf("Sinks = %v, want [3]", got)
	}
}

func TestSubgraph(t *testing.T) {
	g := diamond(t)
	sub, orig := Subgraph(g, []Vertex{0, 1, 3})
	if sub.NumVertices() != 3 {
		t.Fatalf("sub n = %d, want 3", sub.NumVertices())
	}
	// Edges kept: 0->1 and 1->3 (which map to 0->1, 1->2 in the subgraph).
	if sub.NumEdges() != 2 || !sub.HasEdge(0, 1) || !sub.HasEdge(1, 2) {
		t.Errorf("sub edges wrong: %v", sub.EdgeList())
	}
	if !reflect.DeepEqual(orig, []Vertex{0, 1, 3}) {
		t.Errorf("orig = %v", orig)
	}
}

func TestTopoOrderDAG(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 20; trial++ {
		g := randomDAG(rng, 50, 120)
		order, ok := TopoOrder(g)
		if !ok {
			t.Fatal("random DAG reported cyclic")
		}
		pos := make([]int, g.NumVertices())
		for i, v := range order {
			pos[v] = i
		}
		g.Edges(func(u, v Vertex) bool {
			if pos[u] >= pos[v] {
				t.Errorf("topo order violated for edge (%d,%d)", u, v)
			}
			return true
		})
	}
}

func TestTopoOrderCycle(t *testing.T) {
	g := MustFromEdges(3, [][2]Vertex{{0, 1}, {1, 2}, {2, 0}})
	if _, ok := TopoOrder(g); ok {
		t.Fatal("cycle not detected")
	}
	if IsDAG(g) {
		t.Fatal("IsDAG true for a cycle")
	}
}

func TestTopoLevels(t *testing.T) {
	// Path 0->1->2 plus shortcut 0->2: level(2) = 2 (longest path).
	g := MustFromEdges(3, [][2]Vertex{{0, 1}, {1, 2}, {0, 2}})
	level, maxLevel := TopoLevels(g)
	if maxLevel != 2 {
		t.Fatalf("maxLevel = %d, want 2", maxLevel)
	}
	want := []int32{0, 1, 2}
	if !reflect.DeepEqual(level, want) {
		t.Errorf("levels = %v, want %v", level, want)
	}
	rlevel, _ := ReverseTopoLevels(g)
	if rlevel[0] != 2 || rlevel[2] != 0 {
		t.Errorf("reverse levels = %v", rlevel)
	}
}

func TestSCCSimple(t *testing.T) {
	// Two 2-cycles joined by one edge: {0,1} -> {2,3}.
	g := MustFromEdges(4, [][2]Vertex{{0, 1}, {1, 0}, {2, 3}, {3, 2}, {1, 2}})
	comp, k := SCC(g)
	if k != 2 {
		t.Fatalf("k = %d, want 2", k)
	}
	if comp[0] != comp[1] || comp[2] != comp[3] || comp[0] == comp[2] {
		t.Errorf("comp = %v", comp)
	}
}

func TestCondensePreservesReachability(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 15; trial++ {
		g := randomDigraph(rng, 40, 90)
		c := Condense(g)
		if !IsDAG(c.DAG) {
			t.Fatal("condensation is not a DAG")
		}
		vg := NewVisitor(g.NumVertices())
		vd := NewVisitor(c.DAG.NumVertices())
		for i := 0; i < 50; i++ {
			u := Vertex(rng.Intn(g.NumVertices()))
			v := Vertex(rng.Intn(g.NumVertices()))
			orig := vg.Reachable(g, u, v)
			cond := c.Comp[u] == c.Comp[v] || vd.Reachable(c.DAG, c.Comp[u], c.Comp[v])
			if orig != cond {
				t.Fatalf("trial %d: reach(%d,%d) = %v in g but %v in condensation", trial, u, v, orig, cond)
			}
		}
		// Members partition the vertex set.
		seen := 0
		for _, mem := range c.Members {
			seen += len(mem)
		}
		if seen != g.NumVertices() {
			t.Errorf("members cover %d of %d vertices", seen, g.NumVertices())
		}
	}
}

func TestCondenseAcyclicIsIdentitySized(t *testing.T) {
	g := diamond(t)
	c := Condense(g)
	if c.DAG.NumVertices() != 4 || c.DAG.NumEdges() != 4 {
		t.Errorf("condensing a DAG changed size: %v", c.DAG)
	}
}

func TestBFSForwardBackward(t *testing.T) {
	g := diamond(t)
	vst := NewVisitor(g.NumVertices())
	var fwd []Vertex
	vst.BFS(g, 0, Forward, func(v Vertex, _ int32) bool {
		fwd = append(fwd, v)
		return true
	})
	sort.Slice(fwd, func(i, j int) bool { return fwd[i] < fwd[j] })
	if !reflect.DeepEqual(fwd, []Vertex{0, 1, 2, 3}) {
		t.Errorf("forward BFS from 0 visited %v", fwd)
	}
	var bwd []Vertex
	vst.BFS(g, 3, Backward, func(v Vertex, _ int32) bool {
		bwd = append(bwd, v)
		return true
	})
	sort.Slice(bwd, func(i, j int) bool { return bwd[i] < bwd[j] })
	if !reflect.DeepEqual(bwd, []Vertex{0, 1, 2, 3}) {
		t.Errorf("backward BFS from 3 visited %v", bwd)
	}
}

func TestBFSPruning(t *testing.T) {
	// Chain 0->1->2->3; pruning at 1 must hide 2 and 3.
	g := MustFromEdges(4, [][2]Vertex{{0, 1}, {1, 2}, {2, 3}})
	vst := NewVisitor(4)
	var seen []Vertex
	vst.BFS(g, 0, Forward, func(v Vertex, _ int32) bool {
		seen = append(seen, v)
		return v != 1
	})
	if !reflect.DeepEqual(seen, []Vertex{0, 1}) {
		t.Errorf("pruned BFS visited %v, want [0 1]", seen)
	}
}

func TestBoundedBFSAndKNeighborhood(t *testing.T) {
	g := MustFromEdges(5, [][2]Vertex{{0, 1}, {1, 2}, {2, 3}, {3, 4}})
	vst := NewVisitor(5)
	n2 := vst.KNeighborhood(g, 0, Forward, 2)
	sort.Slice(n2, func(i, j int) bool { return n2[i] < n2[j] })
	if !reflect.DeepEqual(n2, []Vertex{0, 1, 2}) {
		t.Errorf("2-neighborhood of 0 = %v, want [0 1 2]", n2)
	}
	back := vst.KNeighborhood(g, 4, Backward, 1)
	sort.Slice(back, func(i, j int) bool { return back[i] < back[j] })
	if !reflect.DeepEqual(back, []Vertex{3, 4}) {
		t.Errorf("1-in-neighborhood of 4 = %v, want [3 4]", back)
	}
}

func TestVisitorEpochReuse(t *testing.T) {
	g := diamond(t)
	vst := NewVisitor(g.NumVertices())
	for i := 0; i < 1000; i++ {
		count := 0
		vst.BFS(g, 0, Forward, func(Vertex, int32) bool {
			count++
			return true
		})
		if count != 4 {
			t.Fatalf("iteration %d visited %d vertices, want 4", i, count)
		}
	}
}

func TestDistance(t *testing.T) {
	g := MustFromEdges(4, [][2]Vertex{{0, 1}, {1, 2}, {0, 2}, {2, 3}})
	vst := NewVisitor(4)
	cases := []struct {
		u, v Vertex
		d    int32
	}{
		{0, 0, 0}, {0, 1, 1}, {0, 2, 1}, {0, 3, 2}, {3, 0, -1}, {1, 3, 2},
	}
	for _, c := range cases {
		if got := vst.Distance(g, c.u, c.v, Forward); got != c.d {
			t.Errorf("Distance(%d,%d) = %d, want %d", c.u, c.v, got, c.d)
		}
	}
}

func TestBidirectionalMatchesBFS(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 10; trial++ {
		g := randomDAG(rng, 80, 200)
		vst := NewVisitor(g.NumVertices())
		bi := NewBiVisitor(g.NumVertices())
		for i := 0; i < 200; i++ {
			u := Vertex(rng.Intn(g.NumVertices()))
			v := Vertex(rng.Intn(g.NumVertices()))
			if got, want := bi.Reachable(g, u, v), vst.Reachable(g, u, v); got != want {
				t.Fatalf("bidirectional reach(%d,%d) = %v, BFS says %v", u, v, got, want)
			}
		}
	}
}

func TestEdgeListRoundTrip(t *testing.T) {
	g := diamond(t)
	var buf bytes.Buffer
	if err := WriteEdgeList(&buf, g); err != nil {
		t.Fatal(err)
	}
	g2, orig, err := ReadEdgeList(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumVertices() != 4 || g2.NumEdges() != 4 {
		t.Fatalf("round trip size mismatch: %v", g2)
	}
	_ = orig
}

func TestReadEdgeListCommentsAndSelfLoops(t *testing.T) {
	in := strings.NewReader("# header\n% another\n5 7\n7 5\n5 5\n\n9 5\n")
	g, orig, err := ReadEdgeList(in)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 3 {
		t.Fatalf("n = %d, want 3 (5,7,9 densified)", g.NumVertices())
	}
	if g.NumEdges() != 3 {
		t.Fatalf("m = %d, want 3 (self-loop dropped)", g.NumEdges())
	}
	if orig[0] != 5 || orig[1] != 7 || orig[2] != 9 {
		t.Errorf("orig = %v", orig)
	}
}

func TestReadEdgeListErrors(t *testing.T) {
	if _, _, err := ReadEdgeList(strings.NewReader("1\n")); err == nil {
		t.Error("single-field line accepted")
	}
	if _, _, err := ReadEdgeList(strings.NewReader("a b\n")); err == nil {
		t.Error("non-numeric vertex accepted")
	}
}

func TestBinaryRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g := randomDAG(rng, 200, 600)
	var buf bytes.Buffer
	if err := WriteBinary(&buf, g); err != nil {
		t.Fatal(err)
	}
	g2, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(g.EdgeList(), g2.EdgeList()) {
		t.Fatal("binary round trip changed edges")
	}
	if err := g2.Validate(); err != nil {
		t.Errorf("Validate after load: %v", err)
	}
}

func TestReadBinaryRejectsGarbage(t *testing.T) {
	if _, err := ReadBinary(strings.NewReader("not a graph file")); err == nil {
		t.Fatal("garbage accepted")
	}
}

func TestComputeStats(t *testing.T) {
	g := diamond(t)
	s := ComputeStats(g)
	if s.Vertices != 4 || s.Edges != 4 || s.Roots != 1 || s.Sinks != 1 || s.Depth != 2 || !s.IsDAG {
		t.Errorf("stats = %+v", s)
	}
	if s.String() == "" {
		t.Error("empty String()")
	}
	cyc := MustFromEdges(2, [][2]Vertex{{0, 1}, {1, 0}})
	if cs := ComputeStats(cyc); cs.IsDAG || cs.Depth != -1 {
		t.Errorf("cyclic stats = %+v", cs)
	}
}

// Property: SCC of a DAG yields n singleton components.
func TestSCCOnDAGProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomDAG(rng, 30, 60)
		_, k := SCC(g)
		return k == g.NumVertices()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// Property: in-degree sum equals out-degree sum equals edge count.
func TestDegreeSumProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomDigraph(rng, 25, 70)
		sumOut, sumIn := 0, 0
		for v := 0; v < g.NumVertices(); v++ {
			sumOut += g.OutDegree(Vertex(v))
			sumIn += g.InDegree(Vertex(v))
		}
		return sumOut == g.NumEdges() && sumIn == g.NumEdges()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// Property: Validate accepts everything the builder produces.
func TestBuilderAlwaysValidProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomDigraph(rng, 20, 50)
		return g.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
