package graph

// TopoOrder returns a topological order of g (vertices before their
// successors) using Kahn's algorithm, and whether g is acyclic. If g has a
// cycle the returned slice is the partial order over acyclic prefix
// vertices and ok is false.
func TopoOrder(g *Graph) (order []Vertex, ok bool) {
	n := g.NumVertices()
	indeg := make([]int32, n)
	for v := 0; v < n; v++ {
		indeg[v] = int32(g.InDegree(Vertex(v)))
	}
	queue := make([]Vertex, 0, n)
	for v := 0; v < n; v++ {
		if indeg[v] == 0 {
			queue = append(queue, Vertex(v))
		}
	}
	order = make([]Vertex, 0, n)
	for len(queue) > 0 {
		v := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		order = append(order, v)
		for _, w := range g.Out(v) {
			indeg[w]--
			if indeg[w] == 0 {
				queue = append(queue, w)
			}
		}
	}
	return order, len(order) == n
}

// TopoPosition returns pos such that pos[v] is v's position in a topological
// order. Panics if g is not a DAG (callers establish acyclicity first via
// Condense or IsDAG).
func TopoPosition(g *Graph) []int32 {
	order, ok := TopoOrder(g)
	if !ok {
		panic("graph: TopoPosition on cyclic graph")
	}
	pos := make([]int32, g.NumVertices())
	for i, v := range order {
		pos[v] = int32(i)
	}
	return pos
}

// TopoLevels returns, for each vertex, the length of the longest path from
// any root to it (roots have level 0), plus the maximum level. Used by GRAIL
// as a negative-query filter and by generators. Panics on cyclic input.
func TopoLevels(g *Graph) (level []int32, maxLevel int32) {
	order, ok := TopoOrder(g)
	if !ok {
		panic("graph: TopoLevels on cyclic graph")
	}
	level = make([]int32, g.NumVertices())
	for _, v := range order {
		for _, w := range g.Out(v) {
			if level[v]+1 > level[w] {
				level[w] = level[v] + 1
			}
		}
	}
	for _, l := range level {
		if l > maxLevel {
			maxLevel = l
		}
	}
	return level, maxLevel
}

// ReverseTopoLevels returns, for each vertex, the length of the longest path
// from it to any sink (sinks have level 0). Symmetric to TopoLevels.
func ReverseTopoLevels(g *Graph) (level []int32, maxLevel int32) {
	return TopoLevels(g.Reverse())
}

// PostOrder assigns DFS post-order numbers starting from the roots
// (children receive smaller numbers than parents; on trees, each subtree's
// numbers are contiguous). Transitive-closure compression indexes renumber
// vertices this way so reachable sets collapse into few runs.
func PostOrder(g *Graph) []uint32 {
	n := g.NumVertices()
	po := make([]uint32, n)
	visited := make([]bool, n)
	next := uint32(0)
	type frame struct {
		v  Vertex
		ei int
	}
	var stack []frame
	dfs := func(start Vertex) {
		if visited[start] {
			return
		}
		visited[start] = true
		stack = append(stack[:0], frame{v: start})
		for len(stack) > 0 {
			f := &stack[len(stack)-1]
			out := g.Out(f.v)
			if f.ei < len(out) {
				w := out[f.ei]
				f.ei++
				if !visited[w] {
					visited[w] = true
					stack = append(stack, frame{v: w})
				}
				continue
			}
			po[f.v] = next
			next++
			stack = stack[:len(stack)-1]
		}
	}
	for _, r := range g.Roots() {
		dfs(r)
	}
	for v := 0; v < n; v++ {
		dfs(Vertex(v)) // cyclic leftovers cannot occur in a DAG; guard anyway
	}
	return po
}
