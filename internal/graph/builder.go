package graph

import (
	"fmt"
	"sort"
)

// Builder accumulates edges and produces an immutable Graph. Duplicate edges
// are coalesced and self-loops are rejected at Build time (the reachability
// algorithms in this repository operate on DAGs; self-loops would be
// SCC-condensed away anyway and keeping them out simplifies invariants).
type Builder struct {
	n     int
	edges [][2]Vertex
}

// NewBuilder returns a Builder for a graph with n vertices.
func NewBuilder(n int) *Builder {
	return &Builder{n: n}
}

// AddEdge records the directed edge (u, v). Vertices must be < n.
func (b *Builder) AddEdge(u, v Vertex) {
	b.edges = append(b.edges, [2]Vertex{u, v})
}

// Grow raises the vertex count to at least n.
func (b *Builder) Grow(n int) {
	if n > b.n {
		b.n = n
	}
}

// NumVertices returns the current vertex count.
func (b *Builder) NumVertices() int { return b.n }

// NumEdges returns the number of edges recorded so far (before dedup).
func (b *Builder) NumEdges() int { return len(b.edges) }

// Build produces the immutable CSR graph. It sorts and deduplicates edges;
// it returns an error for out-of-range endpoints or self-loops.
func (b *Builder) Build() (*Graph, error) {
	for _, e := range b.edges {
		if int(e[0]) >= b.n || int(e[1]) >= b.n {
			return nil, fmt.Errorf("graph: edge (%d,%d) out of range for n=%d", e[0], e[1], b.n)
		}
		if e[0] == e[1] {
			return nil, fmt.Errorf("graph: self-loop at vertex %d", e[0])
		}
	}
	sort.Slice(b.edges, func(i, j int) bool {
		if b.edges[i][0] != b.edges[j][0] {
			return b.edges[i][0] < b.edges[j][0]
		}
		return b.edges[i][1] < b.edges[j][1]
	})
	// Deduplicate in place.
	dedup := b.edges[:0]
	for i, e := range b.edges {
		if i > 0 && e == b.edges[i-1] {
			continue
		}
		dedup = append(dedup, e)
	}
	b.edges = dedup

	g := &Graph{n: b.n}
	m := len(b.edges)
	g.outOff = make([]uint32, b.n+1)
	g.outAdj = make([]uint32, m)
	g.inOff = make([]uint32, b.n+1)
	g.inAdj = make([]uint32, m)

	for _, e := range b.edges {
		g.outOff[e[0]+1]++
		g.inOff[e[1]+1]++
	}
	for i := 0; i < b.n; i++ {
		g.outOff[i+1] += g.outOff[i]
		g.inOff[i+1] += g.inOff[i]
	}
	// Fill forward adjacency: edges are already sorted by (from, to), so a
	// single pass writes each out-list in sorted order.
	cursor := make([]uint32, b.n)
	copy(cursor, g.outOff[:b.n])
	for _, e := range b.edges {
		g.outAdj[cursor[e[0]]] = e[1]
		cursor[e[0]]++
	}
	// Fill reverse adjacency. Iterating edges in (from, to) order writes each
	// in-list in increasing source order, which keeps in-lists sorted too.
	copy(cursor, g.inOff[:b.n])
	for _, e := range b.edges {
		g.inAdj[cursor[e[1]]] = e[0]
		cursor[e[1]]++
	}
	return g, nil
}

// MustBuild is Build but panics on error; for tests and generators whose
// inputs are correct by construction.
func (b *Builder) MustBuild() *Graph {
	g, err := b.Build()
	if err != nil {
		panic(err)
	}
	return g
}

// FromEdges builds a graph directly from an edge list over n vertices.
func FromEdges(n int, edges [][2]Vertex) (*Graph, error) {
	b := NewBuilder(n)
	b.edges = append(b.edges, edges...)
	return b.Build()
}

// MustFromEdges is FromEdges but panics on error.
func MustFromEdges(n int, edges [][2]Vertex) *Graph {
	g, err := FromEdges(n, edges)
	if err != nil {
		panic(err)
	}
	return g
}

// Subgraph returns the induced subgraph on keep (which must contain no
// duplicates), along with the mapping from new vertex IDs to original IDs.
// New IDs follow the order of keep.
func Subgraph(g *Graph, keep []Vertex) (*Graph, []Vertex) {
	idx := make(map[Vertex]Vertex, len(keep))
	for i, v := range keep {
		idx[v] = Vertex(i)
	}
	b := NewBuilder(len(keep))
	for i, v := range keep {
		for _, w := range g.Out(v) {
			if j, ok := idx[w]; ok {
				b.AddEdge(Vertex(i), j)
			}
		}
	}
	sub := b.MustBuild()
	orig := make([]Vertex, len(keep))
	copy(orig, keep)
	return sub, orig
}
