// Package graph provides the directed-graph substrate used by every
// reachability index in this repository: a compact CSR (compressed sparse
// row) representation with both forward and reverse adjacency, strongly
// connected component condensation, topological ordering, and traversal
// primitives.
//
// Vertices are dense uint32 identifiers in [0, N). The representation is
// immutable after construction; all indexes share one *Graph.
package graph

import (
	"fmt"
	"sort"
)

// Vertex identifies a node of a Graph. Vertices are dense integers in
// [0, Graph.NumVertices()).
type Vertex = uint32

// Graph is an immutable directed graph in CSR form. Both the forward
// (out-edge) and reverse (in-edge) adjacency are materialized because
// reachability labeling algorithms traverse in both directions.
//
// The zero value is an empty graph with no vertices.
type Graph struct {
	n int

	// outOff has length n+1; out-neighbors of u are outAdj[outOff[u]:outOff[u+1]].
	outOff []uint32
	outAdj []uint32

	// inOff/inAdj mirror outOff/outAdj for incoming edges.
	inOff []uint32
	inAdj []uint32
}

// NumVertices returns the number of vertices N; valid vertices are [0, N).
func (g *Graph) NumVertices() int { return g.n }

// NumEdges returns the number of directed edges.
func (g *Graph) NumEdges() int { return len(g.outAdj) }

// Out returns the out-neighbors of u. The returned slice aliases internal
// storage and must not be modified.
func (g *Graph) Out(u Vertex) []uint32 { return g.outAdj[g.outOff[u]:g.outOff[u+1]] }

// In returns the in-neighbors of u. The returned slice aliases internal
// storage and must not be modified.
func (g *Graph) In(u Vertex) []uint32 { return g.inAdj[g.inOff[u]:g.inOff[u+1]] }

// OutDegree returns the number of out-edges of u.
func (g *Graph) OutDegree(u Vertex) int { return int(g.outOff[u+1] - g.outOff[u]) }

// InDegree returns the number of in-edges of u.
func (g *Graph) InDegree(u Vertex) int { return int(g.inOff[u+1] - g.inOff[u]) }

// HasEdge reports whether the edge (u, v) exists. Adjacency lists are sorted,
// so this is a binary search over Out(u) (or In(v), whichever is shorter).
func (g *Graph) HasEdge(u, v Vertex) bool {
	if g.OutDegree(u) <= g.InDegree(v) {
		adj := g.Out(u)
		i := sort.Search(len(adj), func(i int) bool { return adj[i] >= v })
		return i < len(adj) && adj[i] == v
	}
	adj := g.In(v)
	i := sort.Search(len(adj), func(i int) bool { return adj[i] >= u })
	return i < len(adj) && adj[i] == u
}

// Edges calls fn for every edge (u, v) in vertex order. It stops early if fn
// returns false.
func (g *Graph) Edges(fn func(u, v Vertex) bool) {
	for u := 0; u < g.n; u++ {
		for _, v := range g.Out(Vertex(u)) {
			if !fn(Vertex(u), v) {
				return
			}
		}
	}
}

// EdgeList returns all edges as a flat slice of (from, to) pairs. Intended
// for tests and serialization, not hot paths.
func (g *Graph) EdgeList() [][2]Vertex {
	edges := make([][2]Vertex, 0, g.NumEdges())
	g.Edges(func(u, v Vertex) bool {
		edges = append(edges, [2]Vertex{u, v})
		return true
	})
	return edges
}

// Roots returns all vertices with in-degree zero.
func (g *Graph) Roots() []Vertex {
	var roots []Vertex
	for u := 0; u < g.n; u++ {
		if g.InDegree(Vertex(u)) == 0 {
			roots = append(roots, Vertex(u))
		}
	}
	return roots
}

// Sinks returns all vertices with out-degree zero.
func (g *Graph) Sinks() []Vertex {
	var sinks []Vertex
	for u := 0; u < g.n; u++ {
		if g.OutDegree(Vertex(u)) == 0 {
			sinks = append(sinks, Vertex(u))
		}
	}
	return sinks
}

// Reverse returns a new graph with every edge direction flipped. The reverse
// shares no storage semantics with g (it is rebuilt), but because Graph
// already stores both directions this is a cheap slice swap plus copy.
func (g *Graph) Reverse() *Graph {
	return &Graph{
		n:      g.n,
		outOff: g.inOff, outAdj: g.inAdj,
		inOff: g.outOff, inAdj: g.outAdj,
	}
}

// String returns a short human-readable summary, e.g. "graph(n=10, m=14)".
func (g *Graph) String() string {
	return fmt.Sprintf("graph(n=%d, m=%d)", g.n, g.NumEdges())
}

// Validate checks internal invariants: offset monotonicity, neighbor range,
// sortedness, and forward/reverse consistency. It is used by tests and by
// deserialization; it costs O(n + m).
func (g *Graph) Validate() error {
	if err := g.validateStructure(); err != nil {
		return err
	}
	// Forward/reverse consistency: count of (u,v) in out must equal in.
	seen := make(map[uint64]int, len(g.outAdj))
	g.Edges(func(u, v Vertex) bool {
		seen[uint64(u)<<32|uint64(v)]++
		return true
	})
	for v := 0; v < g.n; v++ {
		for _, u := range g.In(Vertex(v)) {
			key := uint64(u)<<32 | uint64(v)
			seen[key]--
			if seen[key] == 0 {
				delete(seen, key)
			}
		}
	}
	if len(seen) != 0 {
		return fmt.Errorf("graph: forward and reverse adjacency disagree on %d edges", len(seen))
	}
	return nil
}
