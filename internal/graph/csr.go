package graph

import (
	"fmt"

	"repro/internal/blockio"
)

// EncodeCSR writes g's full CSR form — both adjacency directions — as
// snapshot blocks. Storing the reverse adjacency doubles the section size
// but is what makes snapshot load O(offsets) instead of O(edges): the
// alternative (rebuilding inAdj from outAdj) is a counting sort over every
// edge.
func EncodeCSR(w *blockio.Writer, g *Graph) {
	w.Uint64(uint64(g.n))
	w.Uint32s(g.outOff)
	w.Uint32s(g.outAdj)
	w.Uint32s(g.inOff)
	w.Uint32s(g.inAdj)
}

// DecodeCSR restores a graph written by EncodeCSR, aliasing the reader's
// backing buffer where possible (mmap). It performs the linear structural
// checks — offset monotonicity and coverage, neighbor range, strict
// sortedness — that make every Out/In/HasEdge call on the result
// memory-safe even if the file was corrupted; it does NOT re-verify that
// the forward and reverse adjacency describe the same edge multiset (an
// O(m) map-based check that belongs in Validate, not on the load path).
func DecodeCSR(r *blockio.Reader) (*Graph, error) {
	n64, err := r.Uint64()
	if err != nil {
		return nil, err
	}
	if n64 > 1<<31 {
		return nil, fmt.Errorf("graph: implausible vertex count %d", n64)
	}
	n := int(n64)
	outOff, err := r.Uint32s()
	if err != nil {
		return nil, err
	}
	outAdj, err := r.Uint32s()
	if err != nil {
		return nil, err
	}
	inOff, err := r.Uint32s()
	if err != nil {
		return nil, err
	}
	inAdj, err := r.Uint32s()
	if err != nil {
		return nil, err
	}
	g := &Graph{n: n, outOff: outOff, outAdj: outAdj, inOff: inOff, inAdj: inAdj}
	if err := g.validateStructure(); err != nil {
		return nil, err
	}
	return g, nil
}

// validateStructure runs the cheap linear-scan invariants shared by
// DecodeCSR and Validate.
func (g *Graph) validateStructure() error {
	if len(g.outOff) != g.n+1 || len(g.inOff) != g.n+1 {
		return fmt.Errorf("graph: offset arrays have wrong length (n=%d, |outOff|=%d, |inOff|=%d)",
			g.n, len(g.outOff), len(g.inOff))
	}
	if g.outOff[0] != 0 || g.inOff[0] != 0 {
		return fmt.Errorf("graph: offsets must start at 0")
	}
	if int(g.outOff[g.n]) != len(g.outAdj) || int(g.inOff[g.n]) != len(g.inAdj) {
		return fmt.Errorf("graph: final offsets do not match adjacency lengths")
	}
	if len(g.outAdj) != len(g.inAdj) {
		return fmt.Errorf("graph: forward edge count %d != reverse edge count %d", len(g.outAdj), len(g.inAdj))
	}
	// Prove every offset monotone (and therefore bounded by the final
	// offset, which matches the adjacency length) BEFORE slicing any
	// adjacency: with a corrupt non-monotone tail, an earlier offset can
	// exceed the array even though its own pair looks ordered.
	for u := 0; u < g.n; u++ {
		if g.outOff[u] > g.outOff[u+1] || g.inOff[u] > g.inOff[u+1] {
			return fmt.Errorf("graph: offsets not monotone at vertex %d", u)
		}
	}
	for u := 0; u < g.n; u++ {
		out := g.Out(Vertex(u))
		for i, v := range out {
			if int(v) >= g.n {
				return fmt.Errorf("graph: out-neighbor %d of %d out of range", v, u)
			}
			if i > 0 && out[i-1] >= v {
				return fmt.Errorf("graph: out-adjacency of %d not strictly sorted", u)
			}
		}
		in := g.In(Vertex(u))
		for i, v := range in {
			if int(v) >= g.n {
				return fmt.Errorf("graph: in-neighbor %d of %d out of range", v, u)
			}
			if i > 0 && in[i-1] >= v {
				return fmt.Errorf("graph: in-adjacency of %d not strictly sorted", u)
			}
		}
	}
	return nil
}

// Fingerprint returns an FNV-1a hash of the graph's structure (vertex
// count, edge count, offsets, adjacency). Two graphs with the same
// fingerprint are the same graph for snapshot-compatibility purposes; the
// snapshot header stores it so a daemon restart can refuse an index built
// from a different graph.
func (g *Graph) Fingerprint() uint64 {
	h := fnvInit()
	h = fnvUint64(h, uint64(g.n))
	h = fnvUint64(h, uint64(len(g.outAdj)))
	h = fnvUint32s(h, g.outOff)
	h = fnvUint32s(h, g.outAdj)
	return h
}

const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

func fnvInit() uint64 { return fnvOffset64 }

func fnvUint64(h, v uint64) uint64 {
	for i := 0; i < 8; i++ {
		h ^= v & 0xff
		h *= fnvPrime64
		v >>= 8
	}
	return h
}

func fnvUint32s(h uint64, a []uint32) uint64 {
	for _, v := range a {
		h ^= uint64(v & 0xff)
		h *= fnvPrime64
		h ^= uint64((v >> 8) & 0xff)
		h *= fnvPrime64
		h ^= uint64((v >> 16) & 0xff)
		h *= fnvPrime64
		h ^= uint64(v >> 24)
		h *= fnvPrime64
	}
	return h
}
