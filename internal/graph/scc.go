package graph

// SCC computes strongly connected components with an iterative Tarjan
// algorithm (explicit stack, so million-vertex graphs do not overflow the
// goroutine stack). It returns comp, the component ID of each vertex, and
// the number of components. Component IDs are assigned in reverse
// topological order of the condensation: if component a can reach component
// b (a != b), then comp id of a > comp id of b. This property lets Condense
// build the DAG without re-sorting.
func SCC(g *Graph) (comp []int32, numComp int) {
	n := g.NumVertices()
	comp = make([]int32, n)
	for i := range comp {
		comp[i] = -1
	}
	index := make([]int32, n)
	low := make([]int32, n)
	onStack := make([]bool, n)
	for i := range index {
		index[i] = -1
	}

	var stack []Vertex    // Tarjan's component stack
	var callVert []Vertex // explicit DFS stack: current vertex
	var callEdge []int32  // explicit DFS stack: next out-edge position
	next := int32(0)

	for s := 0; s < n; s++ {
		if index[s] != -1 {
			continue
		}
		callVert = append(callVert[:0], Vertex(s))
		callEdge = append(callEdge[:0], 0)
		index[s] = next
		low[s] = next
		next++
		stack = append(stack, Vertex(s))
		onStack[s] = true

		for len(callVert) > 0 {
			v := callVert[len(callVert)-1]
			ei := callEdge[len(callEdge)-1]
			out := g.Out(v)
			if int(ei) < len(out) {
				callEdge[len(callEdge)-1]++
				w := out[ei]
				if index[w] == -1 {
					index[w] = next
					low[w] = next
					next++
					stack = append(stack, w)
					onStack[w] = true
					callVert = append(callVert, w)
					callEdge = append(callEdge, 0)
				} else if onStack[w] && index[w] < low[v] {
					low[v] = index[w]
				}
				continue
			}
			// All edges of v explored: pop, maybe emit a component.
			callVert = callVert[:len(callVert)-1]
			callEdge = callEdge[:len(callEdge)-1]
			if len(callVert) > 0 {
				parent := callVert[len(callVert)-1]
				if low[v] < low[parent] {
					low[parent] = low[v]
				}
			}
			if low[v] == index[v] {
				for {
					w := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[w] = false
					comp[w] = int32(numComp)
					if w == v {
						break
					}
				}
				numComp++
			}
		}
	}
	return comp, numComp
}

// Condensation is the result of collapsing each strongly connected component
// of a digraph into a single vertex, yielding a DAG plus the vertex mapping.
type Condensation struct {
	// DAG is the condensed graph; vertex c of DAG corresponds to one SCC.
	DAG *Graph
	// Comp maps each original vertex to its DAG vertex.
	Comp []Vertex
	// Members lists the original vertices of each DAG vertex.
	Members [][]Vertex
}

// Condense collapses strongly connected components of g into single
// vertices and returns the resulting DAG with mappings in both directions.
// Reachability is preserved: u reaches v in g iff Comp[u] reaches Comp[v]
// in DAG (with u reaching v trivially when Comp[u] == Comp[v]).
func Condense(g *Graph) *Condensation {
	comp, k := SCC(g)
	// Tarjan assigns component IDs in reverse topological order; flip them so
	// the condensed DAG tends to have edges from low to high IDs (cheap
	// locality win; not relied upon for correctness).
	flip := make([]Vertex, k)
	for i := range flip {
		flip[i] = Vertex(k - 1 - i)
	}
	mapped := make([]Vertex, len(comp))
	for v, c := range comp {
		mapped[v] = flip[c]
	}

	b := NewBuilder(k)
	g.Edges(func(u, v Vertex) bool {
		cu, cv := mapped[u], mapped[v]
		if cu != cv {
			b.AddEdge(cu, cv)
		}
		return true
	})
	dag := b.MustBuild()

	members := make([][]Vertex, k)
	for v, c := range mapped {
		members[c] = append(members[c], Vertex(v))
	}
	return &Condensation{DAG: dag, Comp: mapped, Members: members}
}

// IsDAG reports whether g contains no directed cycle.
func IsDAG(g *Graph) bool {
	_, ok := TopoOrder(g)
	return ok
}
