package graph

import "fmt"

// Stats summarizes structural properties of a graph; the benchmark harness
// prints these for Table 1 and DESIGN.md's dataset inventory.
type Stats struct {
	Vertices     int
	Edges        int
	Roots        int
	Sinks        int
	MaxOutDegree int
	MaxInDegree  int
	AvgDegree    float64
	// Depth is the longest path length (only meaningful for DAGs; -1 if the
	// graph is cyclic).
	Depth int
	IsDAG bool
}

// ComputeStats gathers Stats for g in O(n + m).
func ComputeStats(g *Graph) Stats {
	s := Stats{Vertices: g.NumVertices(), Edges: g.NumEdges()}
	for v := 0; v < g.NumVertices(); v++ {
		od, id := g.OutDegree(Vertex(v)), g.InDegree(Vertex(v))
		if od == 0 {
			s.Sinks++
		}
		if id == 0 {
			s.Roots++
		}
		if od > s.MaxOutDegree {
			s.MaxOutDegree = od
		}
		if id > s.MaxInDegree {
			s.MaxInDegree = id
		}
	}
	if g.NumVertices() > 0 {
		s.AvgDegree = float64(g.NumEdges()) / float64(g.NumVertices())
	}
	if _, ok := TopoOrder(g); ok {
		s.IsDAG = true
		_, maxLevel := TopoLevels(g)
		s.Depth = int(maxLevel)
	} else {
		s.Depth = -1
	}
	return s
}

// String renders the stats on one line.
func (s Stats) String() string {
	return fmt.Sprintf("n=%d m=%d roots=%d sinks=%d depth=%d maxOut=%d maxIn=%d avgDeg=%.2f dag=%v",
		s.Vertices, s.Edges, s.Roots, s.Sinks, s.Depth, s.MaxOutDegree, s.MaxInDegree, s.AvgDegree, s.IsDAG)
}
