package graph

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// ReadEdgeList parses the whitespace-separated edge-list format used by the
// reachability literature's dataset dumps:
//
//	# comment lines start with '#' or '%'
//	<from> <to>
//
// Vertex IDs may be arbitrary non-negative integers; they are densified in
// first-appearance order. Returns the graph and the original IDs indexed by
// dense vertex.
func ReadEdgeList(r io.Reader) (*Graph, []int64, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	ids := make(map[int64]Vertex)
	var orig []int64
	intern := func(raw int64) Vertex {
		if v, ok := ids[raw]; ok {
			return v
		}
		v := Vertex(len(orig))
		ids[raw] = v
		orig = append(orig, raw)
		return v
	}
	var edges [][2]Vertex
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || line[0] == '#' || line[0] == '%' {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return nil, nil, fmt.Errorf("graph: line %d: want two fields, got %q", lineNo, line)
		}
		from, err := strconv.ParseInt(fields[0], 10, 64)
		if err != nil {
			return nil, nil, fmt.Errorf("graph: line %d: bad from-vertex: %v", lineNo, err)
		}
		to, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			return nil, nil, fmt.Errorf("graph: line %d: bad to-vertex: %v", lineNo, err)
		}
		u, v := intern(from), intern(to)
		if u == v {
			continue // drop self-loops on ingest
		}
		edges = append(edges, [2]Vertex{u, v})
	}
	if err := sc.Err(); err != nil {
		return nil, nil, fmt.Errorf("graph: reading edge list: %w", err)
	}
	g, err := FromEdges(len(orig), edges)
	if err != nil {
		return nil, nil, err
	}
	return g, orig, nil
}

// WriteEdgeList writes g in the plain "<from> <to>" text format.
func WriteEdgeList(w io.Writer, g *Graph) error {
	bw := bufio.NewWriter(w)
	var writeErr error
	g.Edges(func(u, v Vertex) bool {
		if _, err := fmt.Fprintf(bw, "%d %d\n", u, v); err != nil {
			writeErr = err
			return false
		}
		return true
	})
	if writeErr != nil {
		return writeErr
	}
	return bw.Flush()
}

// binaryMagic identifies the binary graph format ("RGF1": Reachability
// Graph Format v1).
const binaryMagic = "RGF1"

// WriteBinary serializes g in a compact little-endian binary format:
// magic, n, m, out offsets, out adjacency. The reverse adjacency is
// reconstructed on load.
func WriteBinary(w io.Writer, g *Graph) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(binaryMagic); err != nil {
		return err
	}
	hdr := [2]uint64{uint64(g.NumVertices()), uint64(g.NumEdges())}
	if err := binary.Write(bw, binary.LittleEndian, hdr[:]); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, g.outOff); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, g.outAdj); err != nil {
		return err
	}
	return bw.Flush()
}

// ReadBinary deserializes a graph written by WriteBinary and validates it.
func ReadBinary(r io.Reader) (*Graph, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, len(binaryMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("graph: reading magic: %w", err)
	}
	if string(magic) != binaryMagic {
		return nil, fmt.Errorf("graph: bad magic %q", magic)
	}
	var hdr [2]uint64
	if err := binary.Read(br, binary.LittleEndian, hdr[:]); err != nil {
		return nil, fmt.Errorf("graph: reading header: %w", err)
	}
	n, m := int(hdr[0]), int(hdr[1])
	if n < 0 || m < 0 || n > 1<<31 || m > 1<<33 {
		return nil, fmt.Errorf("graph: implausible header n=%d m=%d", n, m)
	}
	outOff := make([]uint32, n+1)
	if err := binary.Read(br, binary.LittleEndian, outOff); err != nil {
		return nil, fmt.Errorf("graph: reading offsets: %w", err)
	}
	outAdj := make([]uint32, m)
	if err := binary.Read(br, binary.LittleEndian, outAdj); err != nil {
		return nil, fmt.Errorf("graph: reading adjacency: %w", err)
	}
	// Rebuild via the builder so the reverse adjacency and all invariants are
	// re-derived rather than trusted.
	b := NewBuilder(n)
	for u := 0; u < n; u++ {
		if outOff[u] > outOff[u+1] || int(outOff[u+1]) > m {
			return nil, fmt.Errorf("graph: corrupt offsets at vertex %d", u)
		}
		for _, v := range outAdj[outOff[u]:outOff[u+1]] {
			b.AddEdge(Vertex(u), v)
		}
	}
	g, err := b.Build()
	if err != nil {
		return nil, err
	}
	if g.NumEdges() != m {
		return nil, fmt.Errorf("graph: edge count mismatch after load: %d != %d", g.NumEdges(), m)
	}
	return g, nil
}
