package plandmark

import (
	"fmt"

	"repro/internal/blockio"
	"repro/internal/graph"
	"repro/internal/index"
)

func init() {
	index.Register(index.Descriptor{
		Tag:  "PL",
		Rank: 9,
		Doc:  "pruned landmark distance labeling (Akiba et al.), answers distance too",
		Build: func(g *graph.Graph, _ index.BuildOptions) (index.Index, error) {
			return Build(g)
		},
		Encode: func(idx index.Index, w *blockio.Writer) error {
			pl, ok := idx.(*PL)
			if !ok {
				return fmt.Errorf("plandmark: codec got %T", idx)
			}
			w.Uint32s(pl.outOff)
			w.Uint32s(pl.outHop)
			w.Int32s(pl.outDist)
			w.Uint32s(pl.inOff)
			w.Uint32s(pl.inHop)
			w.Int32s(pl.inDist)
			return w.Err()
		},
		Decode: func(g *graph.Graph, r *blockio.Reader, _ index.BuildOptions) (index.Index, error) {
			n := g.NumVertices()
			pl := &PL{}
			var err error
			if pl.outOff, err = r.Uint32s(); err != nil {
				return nil, err
			}
			if pl.outHop, err = r.Uint32s(); err != nil {
				return nil, err
			}
			if pl.outDist, err = r.Int32s(); err != nil {
				return nil, err
			}
			if pl.inOff, err = r.Uint32s(); err != nil {
				return nil, err
			}
			if pl.inHop, err = r.Uint32s(); err != nil {
				return nil, err
			}
			if pl.inDist, err = r.Int32s(); err != nil {
				return nil, err
			}
			for _, side := range []struct {
				name     string
				off, hop []uint32
				dist     []int32
			}{
				{"out", pl.outOff, pl.outHop, pl.outDist},
				{"in", pl.inOff, pl.inHop, pl.inDist},
			} {
				if len(side.off) != n+1 || side.off[0] != 0 {
					return nil, fmt.Errorf("plandmark: %s offsets have %d entries for %d vertices", side.name, len(side.off), n)
				}
				for v := 0; v < n; v++ {
					if side.off[v] > side.off[v+1] {
						return nil, fmt.Errorf("plandmark: %s offsets not monotone at %d", side.name, v)
					}
				}
				if int(side.off[n]) != len(side.hop) || len(side.dist) != len(side.hop) {
					return nil, fmt.Errorf("plandmark: %s offsets cover %d labels but %d/%d present",
						side.name, side.off[n], len(side.hop), len(side.dist))
				}
			}
			return pl, nil
		},
	})
}
