package plandmark

import (
	"math/rand"
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/testutil"
)

func TestPLExhaustive(t *testing.T) {
	for name, g := range testutil.Families(37) {
		pl, err := Build(g)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		testutil.CheckExhaustive(t, name, g, pl)
	}
}

func TestPLDistancesExact(t *testing.T) {
	g := gen.UniformDAG(150, 400, 21)
	pl, err := Build(g)
	if err != nil {
		t.Fatal(err)
	}
	vst := graph.NewVisitor(g.NumVertices())
	rng := rand.New(rand.NewSource(2))
	for q := 0; q < 2000; q++ {
		u := graph.Vertex(rng.Intn(g.NumVertices()))
		v := graph.Vertex(rng.Intn(g.NumVertices()))
		want := vst.Distance(g, u, v, graph.Forward)
		if got := pl.Distance(uint32(u), uint32(v)); got != want {
			t.Fatalf("Distance(%d,%d) = %d, want %d", u, v, got, want)
		}
	}
}

func TestPLRejectsCycle(t *testing.T) {
	g := graph.MustFromEdges(2, [][2]graph.Vertex{{0, 1}, {1, 0}})
	if _, err := Build(g); err == nil {
		t.Fatal("cycle accepted")
	}
}

func TestPLSizeCountsDistances(t *testing.T) {
	g := gen.TreeDAG(500, 0.1, 0, 9)
	pl, err := Build(g)
	if err != nil {
		t.Fatal(err)
	}
	// Labels store hop+distance pairs: size must be even and at least two
	// entries (one per direction, each counting hop and distance) per
	// vertex... every vertex has at least its self entry in each side.
	if pl.SizeInts() < int64(4*g.NumVertices()) {
		t.Errorf("SizeInts = %d, implausibly small", pl.SizeInts())
	}
	if pl.SizeInts()%2 != 0 {
		t.Errorf("SizeInts = %d, want even (hop+dist pairs)", pl.SizeInts())
	}
}
