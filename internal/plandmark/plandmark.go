// Package plandmark implements Pruned Landmark Labeling (Akiba, Iwata &
// Yoshida, SIGMOD 2013) adapted to directed reachability — the paper's
// "PL" baseline. Each vertex stores (hop, distance) pairs in both
// directions; a query computes the exact shortest-path distance as
// min(d(u,h) + d(h,v)) over common hops and reports reachable iff the
// distance is finite.
//
// The paper's point in including PL: it answers a strictly harder query
// (distance), so its labels are larger — a hop is kept whenever it
// improves a distance even if reachability was already certified — and
// every query pays a full label merge with distance arithmetic instead of
// an early-exit intersection. That is why Tables 2-6 show PL close to
// GRAIL rather than to DL.
package plandmark

import (
	"fmt"
	"math"

	"repro/internal/graph"
	"repro/internal/order"
)

// PL is the pruned-landmark distance labeling index.
type PL struct {
	// CSR label arrays: hops are rank positions (so labels sort for free);
	// dist runs parallel to hops.
	outOff, inOff   []uint32
	outHop, inHop   []uint32
	outDist, inDist []int32
}

// Build constructs the PL index for DAG g, processing landmarks in
// degree-product order.
func Build(g *graph.Graph) (*PL, error) {
	if !graph.IsDAG(g) {
		return nil, fmt.Errorf("plandmark: input must be a DAG")
	}
	n := g.NumVertices()
	ord := order.ByDegreeProduct(g)

	outHop := make([][]uint32, n)
	outDist := make([][]int32, n)
	inHop := make([][]uint32, n)
	inDist := make([][]int32, n)

	// queryDist computes the current label-based distance upper bound
	// between u and v (forward: u -> v) by merging sorted hop lists.
	queryDist := func(u, v uint32) int32 {
		ho, do := outHop[u], outDist[u]
		hi, di := inHop[v], inDist[v]
		best := int32(math.MaxInt32)
		i, j := 0, 0
		for i < len(ho) && j < len(hi) {
			switch {
			case ho[i] < hi[j]:
				i++
			case ho[i] > hi[j]:
				j++
			default:
				if d := do[i] + di[j]; d < best {
					best = d
				}
				i++
				j++
			}
		}
		return best
	}

	vst := graph.NewVisitor(n)
	for i, vi := range ord {
		hop := uint32(i)
		// Reverse pruned BFS: label Lout of ancestors with d(u, vi).
		vst.BFS(g, vi, graph.Backward, func(u graph.Vertex, d int32) bool {
			if u != vi && queryDist(uint32(u), uint32(vi)) <= d {
				return false
			}
			outHop[u] = append(outHop[u], hop)
			outDist[u] = append(outDist[u], d)
			return true
		})
		// Forward pruned BFS: label Lin of descendants with d(vi, w).
		vst.BFS(g, vi, graph.Forward, func(w graph.Vertex, d int32) bool {
			if w != vi && queryDist(uint32(vi), uint32(w)) <= d {
				return false
			}
			inHop[w] = append(inHop[w], hop)
			inDist[w] = append(inDist[w], d)
			return true
		})
	}

	// Freeze into flat CSR arrays.
	pl := &PL{outOff: make([]uint32, n+1), inOff: make([]uint32, n+1)}
	var totalOut, totalIn int
	for v := 0; v < n; v++ {
		totalOut += len(outHop[v])
		totalIn += len(inHop[v])
	}
	pl.outHop = make([]uint32, 0, totalOut)
	pl.outDist = make([]int32, 0, totalOut)
	pl.inHop = make([]uint32, 0, totalIn)
	pl.inDist = make([]int32, 0, totalIn)
	for v := 0; v < n; v++ {
		pl.outHop = append(pl.outHop, outHop[v]...)
		pl.outDist = append(pl.outDist, outDist[v]...)
		pl.outOff[v+1] = uint32(len(pl.outHop))
		pl.inHop = append(pl.inHop, inHop[v]...)
		pl.inDist = append(pl.inDist, inDist[v]...)
		pl.inOff[v+1] = uint32(len(pl.inHop))
	}
	return pl, nil
}

// Distance returns the exact shortest-path distance from u to v in edges,
// or -1 if v is unreachable from u.
func (pl *PL) Distance(u, v uint32) int32 {
	if u == v {
		return 0
	}
	ho := pl.outHop[pl.outOff[u]:pl.outOff[u+1]]
	do := pl.outDist[pl.outOff[u]:pl.outOff[u+1]]
	hi := pl.inHop[pl.inOff[v]:pl.inOff[v+1]]
	di := pl.inDist[pl.inOff[v]:pl.inOff[v+1]]
	best := int32(math.MaxInt32)
	i, j := 0, 0
	for i < len(ho) && j < len(hi) {
		switch {
		case ho[i] < hi[j]:
			i++
		case ho[i] > hi[j]:
			j++
		default:
			if d := do[i] + di[j]; d < best {
				best = d
			}
			i++
			j++
		}
	}
	if best == math.MaxInt32 {
		return -1
	}
	return best
}

// Name implements index.Index.
func (pl *PL) Name() string { return "PL" }

// Reachable reports u -> v by computing the full distance (no early exit —
// deliberately, to reproduce the distance-labeling query cost the paper
// measures for PL).
func (pl *PL) Reachable(u, v uint32) bool { return pl.Distance(u, v) >= 0 }

// SizeInts counts hop and distance integers in both directions.
func (pl *PL) SizeInts() int64 {
	return int64(len(pl.outHop)+len(pl.inHop)) * 2
}
