// Package server is the reachd query-serving core: it wraps an immutable
// reach.Oracle with a sharded positive/negative query cache and a worker
// pool for batch execution, and exposes both over a small HTTP/JSON API
// (/v1/reachable, /v1/batch, /v1/stats, /v1/healthz).
//
// The layering mirrors O'Reach's observation that cheap caching/filter
// frontends multiply the real-world throughput of a microsecond-query
// oracle: the oracle answers anything, the cache shortcuts repeats, and
// the pool turns one HTTP round trip into many index probes. The serving
// layer also degrades gracefully under overload: a max-in-flight gate
// rejects excess requests with 429 instead of queueing unboundedly, and
// per-request deadlines stop batch work that nobody is waiting for.
package server

import (
	"context"
	"io"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	reach "repro"
	"repro/internal/obs"
)

// Config tunes the serving layer. The zero value picks sane defaults.
type Config struct {
	// Workers sizes the batch worker pool (default GOMAXPROCS).
	Workers int
	// CachePolicy selects the cache admission policy: PolicyS3FIFO
	// (default) or PolicyFIFO.
	CachePolicy string
	// CacheShards is the cache shard count (default 64).
	CacheShards int
	// CacheCapacity bounds total cached answers (default 1<<20).
	// Negative disables the cache entirely.
	CacheCapacity int
	// BatchChunk is how many pairs one worker task handles (default 256).
	BatchChunk int
	// MaxBatchPairs rejects oversized /v1/batch requests (default 1<<20).
	MaxBatchPairs int
	// RequestTimeout is the per-request deadline applied to the query
	// endpoints; a batch whose deadline expires stops dispatching chunks
	// and answers 503. Zero disables deadlines — unless MaxInFlight is
	// set, in which case DefaultGateTimeout applies: without a deadline,
	// stalled clients would pin gate slots forever and turn the gate
	// into a permanent 429.
	RequestTimeout time.Duration
	// MaxInFlight caps concurrently-served query requests; excess
	// requests are rejected immediately with 429 and a Retry-After
	// header instead of queueing. Zero means unlimited. /v1/healthz and
	// /v1/stats bypass the gate so monitoring works under overload.
	MaxInFlight int
	// OrigIDs, when set, makes the HTTP API speak the caller's original
	// vertex IDs instead of dense post-parse ones: OrigIDs[dense] = raw,
	// exactly as reach.ReadGraph returns. reachd always sets this so the
	// HTTP API and reachcli agree on what "vertex 3" means for the same
	// edge-list file.
	OrigIDs []int64
	// SlowQueryThreshold turns on the slow-query log: query requests
	// whose total handler time reaches it emit one JSON line (trace ID,
	// pair count, cache hits, per-stage timings) to SlowQueryWriter.
	// Zero disables the log.
	SlowQueryThreshold time.Duration
	// SlowQueryWriter receives slow-query JSON lines (default os.Stderr
	// when SlowQueryThreshold is set).
	SlowQueryWriter io.Writer
	// EnablePprof mounts net/http/pprof under /debug/pprof/ on the
	// Handler mux. Off by default: profiling endpoints are an
	// operational tool, not part of the query API.
	EnablePprof bool
	// DisableBinaryWire turns off the binary batch protocol on
	// /v1/batch: binary frames are answered with 415, and /v1/healthz
	// stops advertising the "wire" capability (making the replica
	// indistinguishable from a pre-binary one, so routers send it JSON).
	// Operational escape hatch — see docs/WIRE.md.
	DisableBinaryWire bool
	// MuxAddr is the host:port the replica's mux listener (the raw-TCP
	// stream transport, internal/mux) is bound to; /v1/healthz advertises
	// it so routers can upgrade from HTTP. Empty means no mux listener.
	// reachd binds the listener first and passes the resolved address, so
	// what healthz advertises is always dialable. Ignored (not
	// advertised) with DisableBinaryWire: the stream transport carries
	// the same binary frames.
	MuxAddr string
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.BatchChunk <= 0 {
		c.BatchChunk = 256
	}
	if c.MaxBatchPairs <= 0 {
		c.MaxBatchPairs = 1 << 20
	}
	if c.CachePolicy == "" {
		c.CachePolicy = PolicyS3FIFO
	}
	if c.SlowQueryThreshold > 0 && c.SlowQueryWriter == nil {
		c.SlowQueryWriter = os.Stderr
	}
	if c.MaxInFlight > 0 && c.RequestTimeout <= 0 {
		c.RequestTimeout = DefaultGateTimeout
	}
	return c
}

// DefaultGateTimeout is the request deadline imposed when MaxInFlight is
// set without a RequestTimeout. A gate without any deadline is a DoS
// hazard: clients that stall their request body (or stop reading their
// response) would hold slots forever, and the gate would answer 429 to
// everyone indefinitely. Generous enough that only genuinely stuck
// requests hit it.
const DefaultGateTimeout = 30 * time.Second

// Server answers reachability queries for one graph + oracle pair. It is
// safe for concurrent use; create with New and release the worker pool
// with Close when done.
type Server struct {
	g      *reach.Graph
	oracle *reach.Oracle
	cache  cache // nil when disabled
	met    *metrics
	cfg    Config

	// fingerprint is the graph's structural hash in hex, precomputed
	// because Graph.Fingerprint walks the condensation map (O(V)) and
	// /v1/healthz is probed every second by fleet routers.
	fingerprint string

	// gate is the admission-control semaphore: each in-flight query
	// request holds one slot. Nil when MaxInFlight is 0.
	gate chan struct{}

	// denseOf translates original vertex IDs to dense ones; nil when the
	// API already speaks dense IDs.
	denseOf map[int64]uint32

	jobs      chan func()
	workersWG sync.WaitGroup
	closeOnce sync.Once
	// closeMu makes job submission mutually exclusive with closing the
	// jobs channel: senders hold the read side, Close the write side, so
	// a send can never hit a just-closed channel.
	closeMu sync.RWMutex
	closed  bool
}

// New wires a server around an already-built oracle and starts its worker
// pool.
func New(g *reach.Graph, oracle *reach.Oracle, cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		g:           g,
		oracle:      oracle,
		met:         newMetrics(),
		cfg:         cfg,
		fingerprint: FingerprintString(g.Fingerprint()),
		jobs:        make(chan func(), 4*cfg.Workers),
	}
	s.met.slow = obs.NewSlowLog(cfg.SlowQueryWriter, cfg.SlowQueryThreshold)
	if cfg.CacheCapacity >= 0 {
		s.cache = newCache(cfg.CachePolicy, cfg.CacheShards, cfg.CacheCapacity)
	}
	if cfg.MaxInFlight > 0 {
		s.gate = make(chan struct{}, cfg.MaxInFlight)
	}
	if len(cfg.OrigIDs) > 0 {
		s.denseOf = make(map[int64]uint32, len(cfg.OrigIDs))
		for dense, raw := range cfg.OrigIDs {
			s.denseOf[raw] = uint32(dense)
		}
	}
	s.met.registerServer(s)
	s.workersWG.Add(cfg.Workers)
	for i := 0; i < cfg.Workers; i++ {
		go func() {
			defer s.workersWG.Done()
			for job := range s.jobs {
				job()
			}
		}()
	}
	return s
}

// Close stops the worker pool. In-flight batch requests finish; new ones
// fall back to inline execution.
func (s *Server) Close() {
	s.closeOnce.Do(func() {
		s.closeMu.Lock()
		s.closed = true
		close(s.jobs)
		s.closeMu.Unlock()
	})
	s.workersWG.Wait()
}

// submit hands job to the pool, or reports false if the pool is saturated
// or already closed (caller runs it inline).
func (s *Server) submit(job func()) bool {
	s.closeMu.RLock()
	defer s.closeMu.RUnlock()
	if s.closed {
		return false
	}
	select {
	case s.jobs <- job:
		return true
	default:
		return false
	}
}

// unknownVertex is the dense ID unknown API vertex IDs resolve to; it is
// out of range for every graph, so the oracle answers false.
const unknownVertex = ^uint32(0)

// resolve maps an API vertex ID (original when OrigIDs was configured,
// dense otherwise) to a dense vertex, reporting whether it names a vertex
// of the graph.
func (s *Server) resolve(raw uint64) (uint32, bool) {
	if s.denseOf == nil {
		if raw >= uint64(s.g.NumVertices()) {
			return unknownVertex, false
		}
		return uint32(raw), true
	}
	if raw > 1<<63-1 {
		return unknownVertex, false
	}
	dense, ok := s.denseOf[int64(raw)]
	if !ok {
		return unknownVertex, false
	}
	return dense, true
}

// queryTrace accumulates one request's per-stage totals for the
// Server-Timing response header and the slow-query log. Batch chunks
// run on multiple workers, so the fields are atomic; each chunk adds
// its locally-summed stage times once, not per pair.
type queryTrace struct {
	cacheNs   atomic.Int64
	probeNs   atomic.Int64
	cacheHits atomic.Int64
}

// chunkStats is one chunk's (or one single query's) local accumulator,
// folded into the request's queryTrace and the server counters when the
// chunk finishes. Batching the fold keeps the per-pair loop free of
// atomic traffic: three atomic adds per chunk instead of two per pair.
type chunkStats struct {
	cacheNs, probeNs, cacheHits int64
	queries, positive           int64
}

func (t *queryTrace) add(cs *chunkStats) {
	if t == nil {
		return
	}
	t.cacheNs.Add(cs.cacheNs)
	t.probeNs.Add(cs.probeNs)
	t.cacheHits.Add(cs.cacheHits)
}

// Reachable answers one query through the cache, reporting whether the
// answer was a cache hit. Unknown-vertex pairs (from /v1/batch, where
// they answer false instead of failing the batch) bypass the cache
// entirely: their garbage keys would pollute it and evict real entries.
func (s *Server) Reachable(u, v uint32) (reachable, cached bool) {
	var cs chunkStats
	reachable, cached = s.reachable(u, v, &cs)
	s.met.recordChunk(&cs)
	return reachable, cached
}

// stageSampleEvery is the per-pair stage-timing sample interval: pair
// 0, 16, 32, ... of each chunk pays the clock reads and histogram
// records, the rest skip them. Two time.Now calls per pair were ~20%
// of the batch hot path on the profile; sampling keeps the
// cache_lookup/index_probe histograms and the Server-Timing stage
// attribution (scaled back up, so they are estimates) at a sixteenth
// of the cost. Single queries start a fresh accumulator, land on phase
// zero, and therefore are always timed exactly. A power of two keeps
// the phase check a mask.
const stageSampleEvery = 16

// reachable is the per-pair hot path: cache lookup then index probe,
// sampled into the stage histograms and summed into cs.
func (s *Server) reachable(u, v uint32, cs *chunkStats) (reachable, cached bool) {
	if u == unknownVertex || v == unknownVertex {
		cs.queries++
		return false, false
	}
	sample := cs.queries&(stageSampleEvery-1) == 0
	cs.queries++
	if s.cache != nil {
		var t0 time.Time
		if sample {
			t0 = time.Now()
		}
		ans, ok := s.cache.get(u, v)
		if sample {
			cs.cacheNs += int64(s.met.cacheDur.RecordSince(t0)) * stageSampleEvery
		}
		if ok {
			cs.cacheHits++
			if ans {
				cs.positive++
			}
			return ans, true
		}
	}
	var t0 time.Time
	if sample {
		t0 = time.Now()
	}
	ans := s.oracle.Reachable(u, v)
	if sample {
		cs.probeNs += int64(s.met.probeDur.RecordSince(t0)) * stageSampleEvery
	}
	if s.cache != nil {
		s.cache.put(u, v, ans)
	}
	if ans {
		cs.positive++
	}
	return ans, false
}

// ReachableBatch answers pairs through the cache, splitting the work
// across the worker pool in BatchChunk-sized tasks. When ctx is
// cancelled (the request deadline expired or the client went away) it
// stops dispatching chunks, lets already-running ones finish, and
// returns ctx's error — the partial results are discarded because the
// caller can no longer use them.
func (s *Server) ReachableBatch(ctx context.Context, pairs [][2]uint32) ([]bool, error) {
	return s.reachableBatch(ctx, pairs, nil)
}

// reachableBatch is ReachableBatch with a per-request trace accumulator
// (nil when the caller doesn't want stage attribution).
func (s *Server) reachableBatch(ctx context.Context, pairs [][2]uint32, tr *queryTrace) ([]bool, error) {
	out := make([]bool, len(pairs))
	if err := s.reachableBatchInto(ctx, pairs, out, tr); err != nil {
		return nil, err
	}
	return out, nil
}

// reachableBatchInto is reachableBatch filling a caller-provided result
// slice (len(out) must equal len(pairs)) — the binary wire path reuses
// pooled buffers across requests, so the allocation is the caller's
// choice, not this function's.
func (s *Server) reachableBatchInto(ctx context.Context, pairs [][2]uint32, out []bool, tr *queryTrace) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	chunk := s.cfg.BatchChunk
	if len(pairs) <= chunk {
		s.runChunk(pairs, out, tr)
		return nil
	}
	var wg sync.WaitGroup
	for lo := 0; lo < len(pairs); lo += chunk {
		if ctx.Err() != nil {
			break // stop dispatching; queued chunks below also re-check
		}
		hi := lo + chunk
		if hi > len(pairs) {
			hi = len(pairs)
		}
		wg.Add(1)
		job := func() {
			defer wg.Done()
			if ctx.Err() != nil {
				return // cancelled while queued
			}
			s.runChunk(pairs[lo:hi], out[lo:hi], tr)
		}
		if !s.submit(job) {
			job() // pool saturated or shut down: run inline rather than block
		}
	}
	wg.Wait()
	return ctx.Err()
}

// runChunk answers one contiguous chunk, timing the whole dispatch into
// the chunk_dispatch stage histogram (queue wait is visible as the gap
// between a batch's request histogram and the sum of its chunks).
func (s *Server) runChunk(pairs [][2]uint32, out []bool, tr *queryTrace) {
	t0 := time.Now()
	var cs chunkStats
	for i, p := range pairs {
		out[i], _ = s.reachable(p[0], p[1], &cs)
	}
	s.met.chunkDur.RecordSince(t0)
	s.met.recordChunk(&cs)
	tr.add(&cs)
}

// GraphStats is the graph section of /v1/stats.
type GraphStats struct {
	Vertices    int `json:"vertices"`
	DAGVertices int `json:"dag_vertices"`
	DAGEdges    int `json:"dag_edges"`
}

// IndexStats is the index section of /v1/stats.
type IndexStats struct {
	Method   string `json:"method"`
	SizeInts int64  `json:"size_ints"`
	// Source is "snapshot" when the index was restored from a snapshot
	// file, "built" when it was constructed from the graph at startup.
	Source string `json:"source"`
	// Observers describes the fast path in front of the index; nil when
	// it is disabled (-observers=off).
	Observers *ObserverStats `json:"observers,omitempty"`
}

// ObserverStats is the observer fast-path segment of IndexStats: what
// the fast path costs (precompute time, resident and on-disk size) and
// what it delivers (per-observer decided-query counts).
type ObserverStats struct {
	Supportive int `json:"supportive_vertices"`
	// Source is "snapshot" when the stack was decoded from the snapshot's
	// observer section, "built" when it was constructed from the DAG.
	Source       string           `json:"source"`
	PrecomputeMS float64          `json:"precompute_ms"`
	SizeInts     int64            `json:"size_ints"`
	SectionBytes int64            `json:"section_bytes"`
	Hits         map[string]int64 `json:"hits"`
}

// Stats is the full /v1/stats payload.
type Stats struct {
	Graph  GraphStats  `json:"graph"`
	Index  IndexStats  `json:"index"`
	Cache  CacheStats  `json:"cache"`
	Server ServerStats `json:"server"`
}

func indexSource(o *reach.Oracle) string {
	if o.Loaded() {
		return "snapshot"
	}
	return "built"
}

// observerStats snapshots the oracle's observer stack for /v1/stats, or
// returns nil when observers are disabled.
func observerStats(o *reach.Oracle) *ObserverStats {
	st := o.Observers()
	if st == nil {
		return nil
	}
	source := "built"
	if st.FromSnapshot() {
		source = "snapshot"
	}
	return &ObserverStats{
		Supportive:   st.SupportiveCount(),
		Source:       source,
		PrecomputeMS: float64(st.PrecomputeTime().Microseconds()) / 1e3,
		SizeInts:     st.SizeInts(),
		SectionBytes: st.SectionBytes(),
		Hits:         st.HitsMap(),
	}
}

// Stats snapshots every layer's counters.
func (s *Server) Stats() Stats {
	var cs CacheStats
	if s.cache != nil {
		cs = s.cache.stats()
	}
	return Stats{
		Graph: GraphStats{
			Vertices:    s.g.NumVertices(),
			DAGVertices: s.g.DAGVertices(),
			DAGEdges:    s.g.DAGEdges(),
		},
		Index: IndexStats{
			Method:    s.oracle.Method(),
			SizeInts:  s.oracle.IndexSizeInts(),
			Source:    indexSource(s.oracle),
			Observers: observerStats(s.oracle),
		},
		Cache:  cs,
		Server: s.met.snapshot(s.cfg.Workers, len(s.gate), s.cfg.MaxInFlight),
	}
}
