package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
)

// Handler returns the HTTP mux serving the v1 API:
//
//	GET  /v1/healthz                liveness probe
//	GET  /v1/reachable?u=U&v=V      one query
//	POST /v1/batch                  {"pairs": [[u,v], ...]}
//	GET  /v1/stats                  graph + index + cache + server counters
//
// Vertex IDs are dense [0, vertices) IDs by default; with Config.OrigIDs
// set (as reachd does) they are the caller's original edge-list IDs.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/healthz", s.handleHealthz)
	mux.HandleFunc("GET /v1/reachable", s.handleReachable)
	mux.HandleFunc("POST /v1/batch", s.handleBatch)
	mux.HandleFunc("GET /v1/stats", s.handleStats)
	return mux
}

func (s *Server) writeJSON(w http.ResponseWriter, status int, body any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(body)
}

func (s *Server) fail(w http.ResponseWriter, status int, format string, args ...any) {
	s.met.errors.Add(1)
	s.writeJSON(w, status, map[string]string{"error": fmt.Sprintf(format, args...)})
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	s.writeJSON(w, http.StatusOK, map[string]any{
		"status":   "ok",
		"method":   s.oracle.Method(),
		"vertices": s.g.NumVertices(),
	})
}

// reachableResponse is the /v1/reachable payload; u and v echo the
// caller's IDs.
type reachableResponse struct {
	U         uint64 `json:"u"`
	V         uint64 `json:"v"`
	Reachable bool   `json:"reachable"`
	Cached    bool   `json:"cached"`
}

func (s *Server) handleReachable(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	u, errU := strconv.ParseUint(q.Get("u"), 10, 64)
	v, errV := strconv.ParseUint(q.Get("v"), 10, 64)
	if errU != nil || errV != nil {
		s.fail(w, http.StatusBadRequest, "u and v must be non-negative integer query parameters")
		return
	}
	du, okU := s.resolve(u)
	dv, okV := s.resolve(v)
	if !okU || !okV {
		bad := u
		if okU {
			bad = v
		}
		s.fail(w, http.StatusBadRequest, "vertex %d not in graph (%d vertices)", bad, s.g.NumVertices())
		return
	}
	ans, cached := s.Reachable(du, dv)
	s.writeJSON(w, http.StatusOK, reachableResponse{
		U: u, V: v, Reachable: ans, Cached: cached,
	})
}

// batchRequest is the /v1/batch input; pairs naming unknown vertices
// answer false rather than failing the whole batch.
type batchRequest struct {
	Pairs [][2]uint64 `json:"pairs"`
}

// batchResponse is the /v1/batch payload.
type batchResponse struct {
	Count   int    `json:"count"`
	Results []bool `json:"results"`
}

func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	// Cap body bytes before decoding so MaxBatchPairs bounds memory, not
	// just the decoded pair count. Worst case a compactly-encoded pair of
	// two 20-digit uint64 IDs plus JSON punctuation costs ~46 bytes; 48
	// covers it, so any compact batch within the pair-count limit also
	// fits the byte cap. Whitespace-heavy encodings (MarshalIndent) can
	// trip it earlier — the 413 body names the byte limit for that case.
	body := http.MaxBytesReader(w, r.Body, 48*int64(s.cfg.MaxBatchPairs)+4096)
	var req batchRequest
	dec := json.NewDecoder(body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			s.fail(w, http.StatusRequestEntityTooLarge,
				"batch body exceeds %d bytes", tooLarge.Limit)
			return
		}
		s.fail(w, http.StatusBadRequest, "bad batch body: %v", err)
		return
	}
	if len(req.Pairs) > s.cfg.MaxBatchPairs {
		s.fail(w, http.StatusRequestEntityTooLarge,
			"batch of %d pairs exceeds limit %d", len(req.Pairs), s.cfg.MaxBatchPairs)
		return
	}
	s.met.batchRequests.Add(1)
	dense := make([][2]uint32, len(req.Pairs))
	for i, p := range req.Pairs {
		du, _ := s.resolve(p[0]) // unknown IDs become unknownVertex → false
		dv, _ := s.resolve(p[1])
		dense[i] = [2]uint32{du, dv}
	}
	s.writeJSON(w, http.StatusOK, batchResponse{
		Count:   len(req.Pairs),
		Results: s.ReachableBatch(dense),
	})
}

func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	s.writeJSON(w, http.StatusOK, s.Stats())
}
