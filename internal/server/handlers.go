package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"strconv"
	"time"

	"repro/internal/obs"
)

// reqTrace is the per-request observability context: trace ID, start
// time, and the stage accumulator the query path fills in.
type reqTrace struct {
	id    string
	start time.Time
	qt    queryTrace
	// decode and resolve are single-goroutine stages recorded directly.
	decode, resolve time.Duration
}

// startTrace stamps the response with the request's trace ID (minting
// one when the client sent none) and starts the request clock.
func (s *Server) startTrace(w http.ResponseWriter, r *http.Request) *reqTrace {
	return &reqTrace{id: obs.EnsureTrace(w, r), start: time.Now()}
}

// finishTrace closes out a query request: sets the Server-Timing
// breakdown header (before the body is written), records the request
// histogram, and emits a slow-query record when the total crosses the
// configured threshold. pairs/status describe the request's outcome.
func (s *Server) finishTrace(w http.ResponseWriter, tr *reqTrace, hist *obs.Histogram, endpoint string, pairs int, status int) {
	total := time.Since(tr.start)
	cacheNs := tr.qt.cacheNs.Load()
	probeNs := tr.qt.probeNs.Load()
	stages := make([]obs.Stage, 0, 4)
	if tr.decode > 0 {
		stages = append(stages, obs.Stage{Name: "decode", D: tr.decode})
	}
	if tr.resolve > 0 {
		stages = append(stages, obs.Stage{Name: "resolve", D: tr.resolve})
	}
	stages = append(stages,
		obs.Stage{Name: "cache", D: time.Duration(cacheNs)},
		obs.Stage{Name: "probe", D: time.Duration(probeNs)},
		obs.Stage{Name: "total", D: total},
	)
	w.Header().Set(obs.ServerTimingHeader, obs.FormatServerTiming(stages))
	hist.RecordDuration(total)
	if s.met.slow.Slow(total) {
		rec := SlowQueryRecord{
			Time:       time.Now().UTC().Format(time.RFC3339Nano),
			Trace:      tr.id,
			Endpoint:   endpoint,
			Status:     status,
			DurationMS: float64(total) / 1e6,
			Pairs:      pairs,
			CacheHits:  tr.qt.cacheHits.Load(),
			StagesMS: map[string]float64{
				"decode":  float64(tr.decode) / 1e6,
				"resolve": float64(tr.resolve) / 1e6,
				"cache":   float64(cacheNs) / 1e6,
				"probe":   float64(probeNs) / 1e6,
			},
		}
		s.met.slow.Emit(rec)
	}
}

// SlowQueryRecord is one line of the slow-query log: everything needed
// to chase an outlier after the fact — when, which trace, how slow,
// how big, and where inside the server the time went.
type SlowQueryRecord struct {
	Time       string             `json:"time"`
	Trace      string             `json:"trace"`
	Endpoint   string             `json:"endpoint"`
	Status     int                `json:"status"`
	DurationMS float64            `json:"duration_ms"`
	Pairs      int                `json:"pairs"`
	CacheHits  int64              `json:"cache_hits"`
	StagesMS   map[string]float64 `json:"stages_ms"`
}

// Handler returns the HTTP mux serving the v1 API:
//
//	GET  /v1/healthz                liveness probe + serving identity + build info
//	GET  /v1/reachable?u=U&v=V      one query
//	POST /v1/batch                  {"pairs": [[u,v], ...]}
//	GET  /v1/stats                  graph + index + cache + server counters
//	GET  /metrics                   Prometheus text-format exposition
//
// With Config.EnablePprof, net/http/pprof is mounted under
// /debug/pprof/ as well.
//
// Vertex IDs are dense [0, vertices) IDs by default; with Config.OrigIDs
// set (as reachd does) they are the caller's original edge-list IDs.
//
// The query endpoints sit behind the overload guard: with MaxInFlight
// set, excess concurrent requests get an immediate 429 with Retry-After;
// with RequestTimeout set, requests that outlive their deadline get 503.
// /v1/healthz, /v1/stats and /metrics bypass the guard so monitoring
// keeps working while the server sheds query load.
//
// Every query response echoes the request's X-Reach-Trace ID (minting
// one when absent) and carries an X-Reach-Server-Timing header with the
// per-stage latency breakdown.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/healthz", s.handleHealthz)
	mux.HandleFunc("GET /v1/reachable", s.guard(s.handleReachable))
	mux.HandleFunc("POST /v1/batch", s.guard(s.handleBatch))
	mux.HandleFunc("GET /v1/stats", s.handleStats)
	mux.Handle("GET /metrics", s.met.reg.Handler())
	if s.cfg.EnablePprof {
		obs.RegisterPprof(mux)
	}
	return mux
}

// writeGrace is how long past its request deadline a response write may
// keep a connection (and its gate slot) busy before being cut. It keeps
// the total per-request hold bounded at RequestTimeout+writeGrace while
// leaving room to flush error responses and drain large batch payloads
// to slow readers.
const writeGrace = time.Second

// guard is the overload-protection middleware: admission control first
// (so a saturated server answers 429 in microseconds instead of
// queueing), then the per-request deadline.
func (s *Server) guard(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if s.gate != nil {
			select {
			case s.gate <- struct{}{}:
				defer func() { <-s.gate }()
			default:
				s.met.rejected.Add(1)
				// Retry-After is a hint, not a promise: in-flight
				// requests complete in well under a second unless the
				// server is badly oversubscribed.
				w.Header().Set("Retry-After", "1")
				msg := fmt.Sprintf("server at max in-flight requests (%d); retry later", s.cfg.MaxInFlight)
				if isBinaryBatch(r) {
					s.writeErrorFrame(w, http.StatusTooManyRequests, msg)
					return
				}
				s.writeJSON(w, http.StatusTooManyRequests, ErrorResponse{Error: msg})
				return
			}
		}
		if s.cfg.RequestTimeout > 0 {
			// One shared deadline bounds body reads and compute: a
			// client that trickles its body must not hold its gate slot
			// (and a handler goroutine) past the deadline while
			// dec.Decode waits on the socket. The write deadline gets a
			// grace period past the request deadline — it exists to
			// bound a client that stops reading its response (conn.Write
			// blocking forever on a full TCP send buffer), not to cut
			// the 503/error body a just-expired request still owes.
			// Set{Read,Write}Deadline can fail on exotic
			// ResponseWriters; the context still bounds compute then.
			// Neither deadline can leak onto later requests of a
			// keep-alive connection: conn.serve resets the read deadline
			// in readRequest and unconditionally clears the write
			// deadline after each request (net/http server.go, Go 1.24);
			// TestWriteDeadlineClearedBetweenRequests pins that.
			deadline := time.Now().Add(s.cfg.RequestTimeout)
			rc := http.NewResponseController(w)
			_ = rc.SetReadDeadline(deadline)
			_ = rc.SetWriteDeadline(deadline.Add(writeGrace))
			ctx, cancel := context.WithDeadline(r.Context(), deadline)
			defer cancel()
			r = r.WithContext(ctx)
		}
		h(w, r)
	}
}

func (s *Server) writeJSON(w http.ResponseWriter, status int, body any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(body)
}

func (s *Server) fail(w http.ResponseWriter, status int, format string, args ...any) {
	s.met.errors.Add(1)
	s.writeJSON(w, status, ErrorResponse{Error: fmt.Sprintf(format, args...)})
}

// failTimeout reports a request abandoned because its context ended:
// 503 so clients and load balancers read it as transient server
// pressure. Only a genuinely expired deadline counts as timed_out — a
// cancelled context means the client went away, which happens with or
// without RequestTimeout configured.
func (s *Server) failTimeout(w http.ResponseWriter, err error) {
	if errors.Is(err, context.DeadlineExceeded) {
		s.met.timedOut.Add(1)
	}
	s.fail(w, http.StatusServiceUnavailable, "request abandoned: %v", err)
}

// failUnknownVertex is the 400 for an ID that names no vertex. The valid
// ID space depends on the ID mode: dense mode accepts [0, N); original-ID
// mode accepts exactly the edge-list file's IDs, which need not be dense,
// so quoting the vertex count would mislead.
func (s *Server) failUnknownVertex(w http.ResponseWriter, bad uint64) {
	if s.denseOf != nil {
		s.fail(w, http.StatusBadRequest, "vertex %d is not an original vertex ID of the served graph", bad)
		return
	}
	s.fail(w, http.StatusBadRequest, "vertex %d not in graph (valid IDs are 0..%d)", bad, s.g.NumVertices()-1)
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	bi := obs.BuildInfo()
	// Wire advertises the batch encodings this replica accepts; routers
	// read it once at enrollment. With the binary path disabled the field
	// is omitted entirely, which is exactly what a pre-binary replica
	// sends — one "JSON only" signal, not two.
	var wire []string
	var muxAddr string
	if !s.cfg.DisableBinaryWire {
		wire = []string{"json", "binary"}
		// The mux transport carries the same binary frames, so disabling
		// the binary wire hides the mux listener too: a router must never
		// negotiate a transport the replica would refuse to decode.
		muxAddr = s.cfg.MuxAddr
	}
	s.writeJSON(w, http.StatusOK, HealthzResponse{
		Status:        "ok",
		Method:        s.oracle.Method(),
		Vertices:      s.g.NumVertices(),
		Fingerprint:   s.fingerprint,
		Source:        indexSource(s.oracle),
		GoVersion:     bi.GoVersion,
		Revision:      bi.Revision,
		UptimeSeconds: time.Since(s.met.start).Seconds(),
		Wire:          wire,
		Mux:           muxAddr,
	})
}

func (s *Server) handleReachable(w http.ResponseWriter, r *http.Request) {
	tr := s.startTrace(w, r)
	// done closes out the trace (Server-Timing header, request
	// histogram, slow-query log) and must run before any body write.
	done := func(status int) { s.finishTrace(w, tr, s.met.reqReachable, "reachable", 1, status) }
	q := r.URL.Query()
	u, errU := strconv.ParseUint(q.Get("u"), 10, 64)
	v, errV := strconv.ParseUint(q.Get("v"), 10, 64)
	if errU != nil || errV != nil {
		done(http.StatusBadRequest)
		s.fail(w, http.StatusBadRequest, "u and v must be non-negative integer query parameters")
		return
	}
	t0 := time.Now()
	du, okU := s.resolve(u)
	dv, okV := s.resolve(v)
	tr.resolve = time.Since(t0)
	if !okU || !okV {
		bad := u
		if okU {
			bad = v
		}
		done(http.StatusBadRequest)
		s.failUnknownVertex(w, bad)
		return
	}
	if err := r.Context().Err(); err != nil {
		done(http.StatusServiceUnavailable)
		s.failTimeout(w, err)
		return
	}
	var cs chunkStats
	ans, cached := s.reachable(du, dv, &cs)
	s.met.recordChunk(&cs)
	tr.qt.add(&cs)
	done(http.StatusOK)
	s.writeJSON(w, http.StatusOK, ReachableResponse{
		U: u, V: v, Reachable: ans, Cached: cached,
	})
}

func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	if isBinaryBatch(r) {
		s.handleBatchBinary(w, r)
		return
	}
	s.met.wireFramesJSON.Add(1)
	// Count JSON batch traffic the same way the binary path does, so the
	// reach_wire_bytes_total series compare like for like: rx is body
	// bytes actually read, tx is response-body bytes written.
	origW := w
	cw := &countingResponseWriter{ResponseWriter: w}
	w = cw
	tr := s.startTrace(w, r)
	done := func(pairs, status int) { s.finishTrace(w, tr, s.met.reqBatch, "batch", pairs, status) }
	// Cap body bytes before decoding so MaxBatchPairs bounds memory, not
	// just the decoded pair count. Worst case a compactly-encoded pair of
	// two 20-digit uint64 IDs plus JSON punctuation costs ~46 bytes; 48
	// covers it, so any compact batch within the pair-count limit also
	// fits the byte cap. Whitespace-heavy encodings (MarshalIndent) can
	// trip it earlier — the 413 body names the byte limit for that case.
	// MaxBytesReader gets the unwrapped writer so its too-large handling
	// still reaches the real connection.
	body := http.MaxBytesReader(origW, r.Body, 48*int64(s.cfg.MaxBatchPairs)+4096)
	cr := &countingReader{r: body}
	defer func() {
		s.met.wireRxJSON.Add(cr.n)
		s.met.wireTxJSON.Add(cw.n)
	}()
	var req BatchRequest
	dec := json.NewDecoder(cr)
	dec.DisallowUnknownFields()
	err := dec.Decode(&req)
	tr.decode = time.Since(tr.start)
	if err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			done(0, http.StatusRequestEntityTooLarge)
			s.fail(w, http.StatusRequestEntityTooLarge,
				"batch body exceeds %d bytes", tooLarge.Limit)
			return
		}
		// A read cut by the request deadline (guard sets a matching
		// socket read deadline) is overload shedding, not a bad request.
		// The socket deadline can fire a hair before the context's, so
		// classify the i/o timeout itself too.
		if errors.Is(err, os.ErrDeadlineExceeded) {
			done(0, http.StatusServiceUnavailable)
			s.failTimeout(w, context.DeadlineExceeded)
			return
		}
		if ctxErr := r.Context().Err(); ctxErr != nil {
			done(0, http.StatusServiceUnavailable)
			s.failTimeout(w, ctxErr)
			return
		}
		done(0, http.StatusBadRequest)
		s.fail(w, http.StatusBadRequest, "bad batch body: %v", err)
		return
	}
	if len(req.Pairs) > s.cfg.MaxBatchPairs {
		done(len(req.Pairs), http.StatusRequestEntityTooLarge)
		s.fail(w, http.StatusRequestEntityTooLarge,
			"batch of %d pairs exceeds limit %d", len(req.Pairs), s.cfg.MaxBatchPairs)
		return
	}
	s.met.batchRequests.Add(1)
	// Shed before resolving: a deadline that expired during body decode
	// must not pay O(pairs) ID translation just to answer 503.
	if err := r.Context().Err(); err != nil {
		done(len(req.Pairs), http.StatusServiceUnavailable)
		s.failTimeout(w, err)
		return
	}
	t0 := time.Now()
	dense := make([][2]uint32, len(req.Pairs))
	for i, p := range req.Pairs {
		du, _ := s.resolve(p[0]) // unknown IDs become unknownVertex → false
		dv, _ := s.resolve(p[1])
		dense[i] = [2]uint32{du, dv}
	}
	tr.resolve = time.Since(t0)
	results, err := s.reachableBatch(r.Context(), dense, &tr.qt)
	if err != nil {
		done(len(req.Pairs), http.StatusServiceUnavailable)
		s.failTimeout(w, err)
		return
	}
	done(len(req.Pairs), http.StatusOK)
	s.writeJSON(w, http.StatusOK, BatchResponse{
		Count:   len(req.Pairs),
		Results: results,
	})
}

func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	s.writeJSON(w, http.StatusOK, s.Stats())
}

// countingReader tallies bytes actually read from the request body, for
// the reach_wire_bytes_total{direction="rx"} accounting.
type countingReader struct {
	r io.Reader
	n int64
}

func (c *countingReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.n += int64(n)
	return n, err
}

// countingResponseWriter tallies response-body bytes for the
// reach_wire_bytes_total{direction="tx"} accounting.
type countingResponseWriter struct {
	http.ResponseWriter
	n int64
}

func (c *countingResponseWriter) Write(p []byte) (int, error) {
	n, err := c.ResponseWriter.Write(p)
	c.n += int64(n)
	return n, err
}
