package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"slices"
	"sync"
	"testing"

	reach "repro"
	"repro/internal/gen"
	"repro/internal/graph"
)

// fixture builds a citation-style DAG, its DL oracle, and a running test
// server.
func fixture(t testing.TB, cfg Config) (*reach.Graph, *Server, *httptest.Server) {
	t.Helper()
	raw := gen.CitationDAG(600, 3, 0.5, 42)
	edges := make([][2]uint32, 0, raw.NumEdges())
	raw.Edges(func(u, v graph.Vertex) bool {
		edges = append(edges, [2]uint32{uint32(u), uint32(v)})
		return true
	})
	g, err := reach.NewGraph(raw.NumVertices(), edges)
	if err != nil {
		t.Fatal(err)
	}
	oracle, err := reach.Build(g, reach.MethodDL, reach.Options{})
	if err != nil {
		t.Fatal(err)
	}
	s := New(g, oracle, cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return g, s, ts
}

func getJSON(t testing.TB, url string, into any) *http.Response {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if into != nil {
		if err := json.Unmarshal(body, into); err != nil {
			t.Fatalf("bad JSON %q: %v", body, err)
		}
	}
	return resp
}

func TestHealthz(t *testing.T) {
	g, _, ts := fixture(t, Config{})
	var got struct {
		Status   string `json:"status"`
		Method   string `json:"method"`
		Vertices int    `json:"vertices"`
	}
	resp := getJSON(t, ts.URL+"/v1/healthz", &got)
	if resp.StatusCode != http.StatusOK || got.Status != "ok" {
		t.Fatalf("healthz: status %d body %+v", resp.StatusCode, got)
	}
	if got.Method != "DL" || got.Vertices != g.NumVertices() {
		t.Fatalf("healthz reports %+v", got)
	}
}

func TestReachableEndpoint(t *testing.T) {
	g, _, ts := fixture(t, Config{})
	oracle, err := reach.Build(g, reach.MethodBFS, reach.Options{}) // ground truth
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	n := g.NumVertices()
	for i := 0; i < 200; i++ {
		u, v := rng.Intn(n), rng.Intn(n)
		var got reachableResponse
		resp := getJSON(t, fmt.Sprintf("%s/v1/reachable?u=%d&v=%d", ts.URL, u, v), &got)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("query (%d,%d): status %d", u, v, resp.StatusCode)
		}
		if want := oracle.Reachable(uint32(u), uint32(v)); got.Reachable != want {
			t.Fatalf("query (%d,%d): got %v want %v", u, v, got.Reachable, want)
		}
	}
	// A repeated query must come from the cache.
	getJSON(t, ts.URL+"/v1/reachable?u=0&v=1", nil)
	var got reachableResponse
	getJSON(t, ts.URL+"/v1/reachable?u=0&v=1", &got)
	if !got.Cached {
		t.Error("repeat query not served from cache")
	}
}

func TestReachableEndpointRejectsBadInput(t *testing.T) {
	g, _, ts := fixture(t, Config{})
	for _, q := range []string{
		"u=abc&v=1",
		"u=1",
		"",
		fmt.Sprintf("u=%d&v=0", g.NumVertices()),
		"u=0&v=4294967296",
	} {
		resp := getJSON(t, ts.URL+"/v1/reachable?"+q, nil)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("query %q: status %d, want 400", q, resp.StatusCode)
		}
	}
}

func postBatch(t testing.TB, url string, pairs [][2]uint64) (*http.Response, batchResponse) {
	t.Helper()
	body, err := json.Marshal(batchRequest{Pairs: pairs})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+"/v1/batch", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	var got batchResponse
	if resp.StatusCode == http.StatusOK {
		if err := json.Unmarshal(raw, &got); err != nil {
			t.Fatalf("bad batch JSON %q: %v", raw, err)
		}
	}
	return resp, got
}

func TestBatchEndpoint(t *testing.T) {
	g, _, ts := fixture(t, Config{Workers: 4, BatchChunk: 16})
	oracle, err := reach.Build(g, reach.MethodBFS, reach.Options{})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	n := uint64(g.NumVertices())
	pairs := make([][2]uint64, 1000)
	for i := range pairs {
		pairs[i] = [2]uint64{uint64(rng.Uint32()) % n, uint64(rng.Uint32()) % n}
	}
	pairs[17] = [2]uint64{n + 3, 0} // unknown vertex answers false, not 400

	resp, got := postBatch(t, ts.URL, pairs)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch: status %d", resp.StatusCode)
	}
	if got.Count != len(pairs) || len(got.Results) != len(pairs) {
		t.Fatalf("batch: count %d, %d results for %d pairs", got.Count, len(got.Results), len(pairs))
	}
	for i, p := range pairs {
		want := p[0] < n && p[1] < n && oracle.Reachable(uint32(p[0]), uint32(p[1]))
		if got.Results[i] != want {
			t.Fatalf("batch pair %d (%d,%d): got %v want %v", i, p[0], p[1], got.Results[i], want)
		}
	}
}

func TestBatchEndpointLimits(t *testing.T) {
	_, _, ts := fixture(t, Config{MaxBatchPairs: 8})
	resp, _ := postBatch(t, ts.URL, make([][2]uint64, 9))
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Errorf("oversized batch: status %d, want 413", resp.StatusCode)
	}
	r2, err := http.Post(ts.URL+"/v1/batch", "application/json", bytes.NewReader([]byte("{nope")))
	if err != nil {
		t.Fatal(err)
	}
	r2.Body.Close()
	if r2.StatusCode != http.StatusBadRequest {
		t.Errorf("malformed batch: status %d, want 400", r2.StatusCode)
	}
	// The byte cap must trip before the decoder buffers an oversized
	// body: valid JSON padded past 48*MaxBatchPairs+4096 bytes.
	huge := append([]byte(`{"pairs":[[1,2]]`), bytes.Repeat([]byte(" "), 8192)...)
	huge = append(huge, '}')
	r3, err := http.Post(ts.URL+"/v1/batch", "application/json", bytes.NewReader(huge))
	if err != nil {
		t.Fatal(err)
	}
	r3.Body.Close()
	if r3.StatusCode != http.StatusRequestEntityTooLarge {
		t.Errorf("oversized body: status %d, want 413", r3.StatusCode)
	}
}

func TestStatsEndpoint(t *testing.T) {
	g, _, ts := fixture(t, Config{})
	// Same query twice: one miss then one hit.
	getJSON(t, ts.URL+"/v1/reachable?u=1&v=2", nil)
	getJSON(t, ts.URL+"/v1/reachable?u=1&v=2", nil)

	var got Stats
	resp := getJSON(t, ts.URL+"/v1/stats", &got)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stats: status %d", resp.StatusCode)
	}
	if got.Graph.Vertices != g.NumVertices() || got.Graph.DAGEdges != g.DAGEdges() {
		t.Errorf("stats graph section: %+v", got.Graph)
	}
	if got.Index.Method != "DL" || got.Index.SizeInts <= 0 {
		t.Errorf("stats index section: %+v", got.Index)
	}
	if got.Cache.Hits < 1 || got.Cache.Misses < 1 || got.Cache.HitRate <= 0 {
		t.Errorf("stats cache section: %+v", got.Cache)
	}
	if got.Server.Queries < 2 || got.Server.Workers <= 0 {
		t.Errorf("stats server section: %+v", got.Server)
	}
}

// TestServerConcurrentHammer hits the HTTP API from many goroutines with
// mixed single and batch requests; run under -race it exercises the
// cache, the metrics, and the worker pool concurrently.
func TestServerConcurrentHammer(t *testing.T) {
	g, _, ts := fixture(t, Config{Workers: 4, BatchChunk: 32, CacheCapacity: 1 << 12})
	oracle, err := reach.Build(g, reach.MethodBFS, reach.Options{})
	if err != nil {
		t.Fatal(err)
	}
	n := uint32(g.NumVertices())

	const workers = 8
	var wg sync.WaitGroup
	errc := make(chan error, workers)
	client := ts.Client()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < 40; i++ {
				if i%4 == 0 { // one batch per few singles
					pairs := make([][2]uint32, 64)
					wire := make([][2]uint64, len(pairs))
					for j := range pairs {
						pairs[j] = [2]uint32{rng.Uint32() % n, rng.Uint32() % n}
						wire[j] = [2]uint64{uint64(pairs[j][0]), uint64(pairs[j][1])}
					}
					body, _ := json.Marshal(batchRequest{Pairs: wire})
					resp, err := client.Post(ts.URL+"/v1/batch", "application/json", bytes.NewReader(body))
					if err != nil {
						errc <- err
						return
					}
					var got batchResponse
					err = json.NewDecoder(resp.Body).Decode(&got)
					resp.Body.Close()
					if err != nil {
						errc <- err
						return
					}
					for j, p := range pairs {
						if got.Results[j] != oracle.Reachable(p[0], p[1]) {
							errc <- fmt.Errorf("batch pair (%d,%d) wrong under concurrency", p[0], p[1])
							return
						}
					}
					continue
				}
				u, v := rng.Uint32()%n, rng.Uint32()%n
				resp, err := client.Get(fmt.Sprintf("%s/v1/reachable?u=%d&v=%d", ts.URL, u, v))
				if err != nil {
					errc <- err
					return
				}
				var got reachableResponse
				err = json.NewDecoder(resp.Body).Decode(&got)
				resp.Body.Close()
				if err != nil {
					errc <- err
					return
				}
				if got.Reachable != oracle.Reachable(u, v) {
					errc <- fmt.Errorf("single query (%d,%d) wrong under concurrency", u, v)
					return
				}
			}
		}(int64(w) + 100)
	}
	wg.Wait()
	close(errc)
	if err := <-errc; err != nil {
		t.Fatal(err)
	}

	var st Stats
	getJSON(t, ts.URL+"/v1/stats", &st)
	if st.Server.Queries == 0 || st.Cache.Hits+st.Cache.Misses == 0 {
		t.Errorf("hammer left no trace in stats: %+v", st)
	}
}

// TestOrigIDMapping proves the API speaks the edge-list file's own IDs
// when OrigIDs is configured, as reachd does — the same IDs reachcli
// answers with.
func TestOrigIDMapping(t *testing.T) {
	// Raw IDs 100, 7, 42 densify (in order of appearance) to 0, 1, 2.
	g, orig, err := reach.ReadGraph(bytes.NewReader([]byte("100 7\n7 42\n")))
	if err != nil {
		t.Fatal(err)
	}
	oracle, err := reach.Build(g, reach.MethodDL, reach.Options{})
	if err != nil {
		t.Fatal(err)
	}
	s := New(g, oracle, Config{OrigIDs: orig})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	var got reachableResponse
	if resp := getJSON(t, ts.URL+"/v1/reachable?u=100&v=42", &got); resp.StatusCode != http.StatusOK {
		t.Fatalf("raw-ID query: status %d", resp.StatusCode)
	}
	if !got.Reachable || got.U != 100 || got.V != 42 {
		t.Fatalf("raw-ID query 100->42: %+v, want reachable with echoed raw IDs", got)
	}
	// Dense ID 0 is not a raw ID of this file: it must be rejected, not
	// silently treated as vertex 100.
	if resp := getJSON(t, ts.URL+"/v1/reachable?u=0&v=42", nil); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("dense ID leaked through raw-ID API: status %d", resp.StatusCode)
	}
	resp, batch := postBatch(t, ts.URL, [][2]uint64{{100, 42}, {42, 100}, {999, 42}})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("raw-ID batch: status %d", resp.StatusCode)
	}
	if want := []bool{true, false, false}; !slices.Equal(batch.Results, want) {
		t.Fatalf("raw-ID batch results = %v, want %v", batch.Results, want)
	}
}

// TestSnapshotRoundTripServing proves the reachd restart path: save the
// oracle snapshot, restore it, and serve identical answers — with
// /v1/stats reporting where each server's index came from.
func TestSnapshotRoundTripServing(t *testing.T) {
	g, _, ts := fixture(t, Config{})
	oracle, err := reach.Build(g, reach.MethodDL, reach.Options{})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := oracle.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := reach.LoadBytes(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	s2 := New(loaded.Graph(), loaded, Config{})
	defer s2.Close()
	ts2 := httptest.NewServer(s2.Handler())
	defer ts2.Close()

	var st, st2 Stats
	getJSON(t, ts.URL+"/v1/stats", &st)
	getJSON(t, ts2.URL+"/v1/stats", &st2)
	if st.Index.Source != "built" {
		t.Fatalf("built server reports source %q", st.Index.Source)
	}
	if st2.Index.Source != "snapshot" || st2.Index.Method != "DL" || st2.Index.SizeInts != oracle.IndexSizeInts() {
		t.Fatalf("snapshot server reports %+v", st2.Index)
	}

	rng := rand.New(rand.NewSource(5))
	n := g.NumVertices()
	for i := 0; i < 200; i++ {
		u, v := rng.Intn(n), rng.Intn(n)
		var a, b reachableResponse
		getJSON(t, fmt.Sprintf("%s/v1/reachable?u=%d&v=%d", ts.URL, u, v), &a)
		getJSON(t, fmt.Sprintf("%s/v1/reachable?u=%d&v=%d", ts2.URL, u, v), &b)
		if a.Reachable != b.Reachable {
			t.Fatalf("snapshot-loaded server disagrees on (%d,%d)", u, v)
		}
	}
}
