package server

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"net/http/httptest"
	"slices"
	"sync"
	"testing"
	"time"

	reach "repro"
	"repro/internal/gen"
	"repro/internal/graph"
)

// fixture builds a citation-style DAG, its DL oracle, and a running test
// server.
func fixture(t testing.TB, cfg Config) (*reach.Graph, *Server, *httptest.Server) {
	t.Helper()
	raw := gen.CitationDAG(600, 3, 0.5, 42)
	edges := make([][2]uint32, 0, raw.NumEdges())
	raw.Edges(func(u, v graph.Vertex) bool {
		edges = append(edges, [2]uint32{uint32(u), uint32(v)})
		return true
	})
	g, err := reach.NewGraph(raw.NumVertices(), edges)
	if err != nil {
		t.Fatal(err)
	}
	oracle, err := reach.Build(g, reach.MethodDL, reach.Options{})
	if err != nil {
		t.Fatal(err)
	}
	s := New(g, oracle, cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return g, s, ts
}

func getJSON(t testing.TB, url string, into any) *http.Response {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if into != nil {
		if err := json.Unmarshal(body, into); err != nil {
			t.Fatalf("bad JSON %q: %v", body, err)
		}
	}
	return resp
}

func TestHealthz(t *testing.T) {
	g, _, ts := fixture(t, Config{})
	var got HealthzResponse
	resp := getJSON(t, ts.URL+"/v1/healthz", &got)
	if resp.StatusCode != http.StatusOK || got.Status != "ok" {
		t.Fatalf("healthz: status %d body %+v", resp.StatusCode, got)
	}
	if got.Method != "DL" || got.Vertices != g.NumVertices() {
		t.Fatalf("healthz reports %+v", got)
	}
	if got.Fingerprint != FingerprintString(g.Fingerprint()) {
		t.Fatalf("healthz fingerprint %q, want %q", got.Fingerprint, FingerprintString(g.Fingerprint()))
	}
	if got.Source != "built" {
		t.Fatalf("healthz source %q, want built", got.Source)
	}
}

// TestHealthzIdentity pins the fleet-enrollment contract: every replica
// serving one snapshot reports the same fingerprint, a replica serving a
// different graph reports a different one, and a snapshot-loaded server
// reports the fingerprint of the graph it was saved from.
func TestHealthzIdentity(t *testing.T) {
	g, _, ts := fixture(t, Config{})
	var a HealthzResponse
	getJSON(t, ts.URL+"/v1/healthz", &a)
	if len(a.Fingerprint) != 16 {
		t.Fatalf("fingerprint %q is not fixed-width hex", a.Fingerprint)
	}

	// Same graph, snapshot-loaded: identical fingerprint, source=snapshot.
	oracle, err := reach.Build(g, reach.MethodDL, reach.Options{})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := oracle.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := reach.LoadBytes(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	s2 := New(loaded.Graph(), loaded, Config{})
	defer s2.Close()
	ts2 := httptest.NewServer(s2.Handler())
	defer ts2.Close()
	var b HealthzResponse
	getJSON(t, ts2.URL+"/v1/healthz", &b)
	if b.Fingerprint != a.Fingerprint {
		t.Fatalf("snapshot replica fingerprint %q != builder's %q", b.Fingerprint, a.Fingerprint)
	}
	if b.Source != "snapshot" {
		t.Fatalf("snapshot replica source %q, want snapshot", b.Source)
	}

	// Different graph: different fingerprint, so a router can refuse it.
	og, err := reach.NewGraph(4, [][2]uint32{{0, 1}, {1, 2}, {2, 3}})
	if err != nil {
		t.Fatal(err)
	}
	oo, err := reach.Build(og, reach.MethodDL, reach.Options{})
	if err != nil {
		t.Fatal(err)
	}
	s3 := New(og, oo, Config{})
	defer s3.Close()
	ts3 := httptest.NewServer(s3.Handler())
	defer ts3.Close()
	var c HealthzResponse
	getJSON(t, ts3.URL+"/v1/healthz", &c)
	if c.Fingerprint == a.Fingerprint {
		t.Fatal("different graphs share a fingerprint")
	}
}

func TestReachableEndpoint(t *testing.T) {
	g, _, ts := fixture(t, Config{})
	oracle, err := reach.Build(g, reach.MethodBFS, reach.Options{}) // ground truth
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	n := g.NumVertices()
	for i := 0; i < 200; i++ {
		u, v := rng.Intn(n), rng.Intn(n)
		var got ReachableResponse
		resp := getJSON(t, fmt.Sprintf("%s/v1/reachable?u=%d&v=%d", ts.URL, u, v), &got)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("query (%d,%d): status %d", u, v, resp.StatusCode)
		}
		if want := oracle.Reachable(uint32(u), uint32(v)); got.Reachable != want {
			t.Fatalf("query (%d,%d): got %v want %v", u, v, got.Reachable, want)
		}
	}
	// A repeated query must come from the cache.
	getJSON(t, ts.URL+"/v1/reachable?u=0&v=1", nil)
	var got ReachableResponse
	getJSON(t, ts.URL+"/v1/reachable?u=0&v=1", &got)
	if !got.Cached {
		t.Error("repeat query not served from cache")
	}
}

func TestReachableEndpointRejectsBadInput(t *testing.T) {
	g, _, ts := fixture(t, Config{})
	for _, q := range []string{
		"u=abc&v=1",
		"u=1",
		"",
		fmt.Sprintf("u=%d&v=0", g.NumVertices()),
		"u=0&v=4294967296",
	} {
		resp := getJSON(t, ts.URL+"/v1/reachable?"+q, nil)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("query %q: status %d, want 400", q, resp.StatusCode)
		}
	}
}

func postBatch(t testing.TB, url string, pairs [][2]uint64) (*http.Response, BatchResponse) {
	t.Helper()
	body, err := json.Marshal(BatchRequest{Pairs: pairs})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+"/v1/batch", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	var got BatchResponse
	if resp.StatusCode == http.StatusOK {
		if err := json.Unmarshal(raw, &got); err != nil {
			t.Fatalf("bad batch JSON %q: %v", raw, err)
		}
	}
	return resp, got
}

func TestBatchEndpoint(t *testing.T) {
	g, _, ts := fixture(t, Config{Workers: 4, BatchChunk: 16})
	oracle, err := reach.Build(g, reach.MethodBFS, reach.Options{})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	n := uint64(g.NumVertices())
	pairs := make([][2]uint64, 1000)
	for i := range pairs {
		pairs[i] = [2]uint64{uint64(rng.Uint32()) % n, uint64(rng.Uint32()) % n}
	}
	pairs[17] = [2]uint64{n + 3, 0} // unknown vertex answers false, not 400

	resp, got := postBatch(t, ts.URL, pairs)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch: status %d", resp.StatusCode)
	}
	if got.Count != len(pairs) || len(got.Results) != len(pairs) {
		t.Fatalf("batch: count %d, %d results for %d pairs", got.Count, len(got.Results), len(pairs))
	}
	for i, p := range pairs {
		want := p[0] < n && p[1] < n && oracle.Reachable(uint32(p[0]), uint32(p[1]))
		if got.Results[i] != want {
			t.Fatalf("batch pair %d (%d,%d): got %v want %v", i, p[0], p[1], got.Results[i], want)
		}
	}
}

func TestBatchEndpointLimits(t *testing.T) {
	_, _, ts := fixture(t, Config{MaxBatchPairs: 8})
	resp, _ := postBatch(t, ts.URL, make([][2]uint64, 9))
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Errorf("oversized batch: status %d, want 413", resp.StatusCode)
	}
	r2, err := http.Post(ts.URL+"/v1/batch", "application/json", bytes.NewReader([]byte("{nope")))
	if err != nil {
		t.Fatal(err)
	}
	r2.Body.Close()
	if r2.StatusCode != http.StatusBadRequest {
		t.Errorf("malformed batch: status %d, want 400", r2.StatusCode)
	}
	// The byte cap must trip before the decoder buffers an oversized
	// body: valid JSON padded past 48*MaxBatchPairs+4096 bytes.
	huge := append([]byte(`{"pairs":[[1,2]]`), bytes.Repeat([]byte(" "), 8192)...)
	huge = append(huge, '}')
	r3, err := http.Post(ts.URL+"/v1/batch", "application/json", bytes.NewReader(huge))
	if err != nil {
		t.Fatal(err)
	}
	r3.Body.Close()
	if r3.StatusCode != http.StatusRequestEntityTooLarge {
		t.Errorf("oversized body: status %d, want 413", r3.StatusCode)
	}
}

func TestStatsEndpoint(t *testing.T) {
	g, _, ts := fixture(t, Config{})
	// Same query twice: one miss then one hit.
	getJSON(t, ts.URL+"/v1/reachable?u=1&v=2", nil)
	getJSON(t, ts.URL+"/v1/reachable?u=1&v=2", nil)

	var got Stats
	resp := getJSON(t, ts.URL+"/v1/stats", &got)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stats: status %d", resp.StatusCode)
	}
	if got.Graph.Vertices != g.NumVertices() || got.Graph.DAGEdges != g.DAGEdges() {
		t.Errorf("stats graph section: %+v", got.Graph)
	}
	if got.Index.Method != "DL" || got.Index.SizeInts <= 0 {
		t.Errorf("stats index section: %+v", got.Index)
	}
	if got.Cache.Hits < 1 || got.Cache.Misses < 1 || got.Cache.HitRate <= 0 {
		t.Errorf("stats cache section: %+v", got.Cache)
	}
	if got.Server.Queries < 2 || got.Server.Workers <= 0 {
		t.Errorf("stats server section: %+v", got.Server)
	}
}

// TestUnknownVertexPairsNotCached pins the /v1/batch cache-pollution
// bugfix: pairs naming unknown vertices resolve to the unknownVertex
// sentinel and used to be cached under garbage (^uint32(0), v) keys,
// evicting real entries. They must bypass the cache entirely.
func TestUnknownVertexPairsNotCached(t *testing.T) {
	g, s, ts := fixture(t, Config{})
	n := uint64(g.NumVertices())
	pairs := make([][2]uint64, 50)
	for i := range pairs {
		pairs[i] = [2]uint64{n + uint64(i), uint64(i)} // unknown source vertex
	}
	resp, got := postBatch(t, ts.URL, pairs)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch: status %d", resp.StatusCode)
	}
	for i, r := range got.Results {
		if r {
			t.Fatalf("unknown-vertex pair %d answered true", i)
		}
	}
	cs := s.Stats().Cache
	if cs.Entries != 0 {
		t.Fatalf("unknown-vertex pairs left %d cache entries, want 0", cs.Entries)
	}
	if cs.Hits+cs.Misses != 0 {
		t.Fatalf("unknown-vertex pairs touched the cache counters: %+v", cs)
	}
	if q := s.Stats().Server.Queries; q != int64(len(pairs)) {
		t.Fatalf("queries counter = %d, want %d", q, len(pairs))
	}
}

// TestBatchStopsOnCancelledContext covers the deadline path below HTTP:
// a cancelled context stops chunk dispatch and surfaces the error.
func TestBatchStopsOnCancelledContext(t *testing.T) {
	g, s, _ := fixture(t, Config{Workers: 2, BatchChunk: 8})
	n := uint32(g.NumVertices())
	pairs := make([][2]uint32, 1024)
	for i := range pairs {
		pairs[i] = [2]uint32{uint32(i) % n, uint32(i+1) % n}
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	out, err := s.ReachableBatch(ctx, pairs)
	if !errors.Is(err, context.Canceled) || out != nil {
		t.Fatalf("cancelled batch returned (%v, %v), want (nil, context.Canceled)", out, err)
	}
	// An expired deadline behaves the same.
	dctx, dcancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer dcancel()
	if _, err := s.ReachableBatch(dctx, pairs); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("expired-deadline batch returned %v, want context.DeadlineExceeded", err)
	}
	// A live context still answers everything.
	out, err = s.ReachableBatch(context.Background(), pairs)
	if err != nil || len(out) != len(pairs) {
		t.Fatalf("live batch returned (%d results, %v)", len(out), err)
	}
}

// TestRequestDeadline proves an over-deadline request answers 503 and
// bumps the timed_out counter instead of running to completion.
func TestRequestDeadline(t *testing.T) {
	g, s, ts := fixture(t, Config{RequestTimeout: time.Nanosecond})
	n := uint64(g.NumVertices())
	pairs := make([][2]uint64, 4096)
	for i := range pairs {
		pairs[i] = [2]uint64{uint64(i) % n, uint64(i+1) % n}
	}
	resp, _ := postBatch(t, ts.URL, pairs)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("over-deadline batch: status %d, want 503", resp.StatusCode)
	}
	if resp := getJSON(t, ts.URL+"/v1/reachable?u=0&v=1", nil); resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("over-deadline single query: status %d, want 503", resp.StatusCode)
	}
	st := s.Stats().Server
	if st.TimedOut < 2 {
		t.Fatalf("timed_out counter = %d, want >= 2", st.TimedOut)
	}
	if st.Errors < st.TimedOut {
		t.Fatalf("timeouts not counted as errors: %+v", st)
	}
}

// TestSlowBodyCannotHoldGateSlot proves the request deadline bounds body
// reads: a client that sends headers and then trickles the batch body
// cannot hold its admission slot (and a handler goroutine) past the
// deadline — the read is cut and the slot freed.
func TestSlowBodyCannotHoldGateSlot(t *testing.T) {
	_, s, ts := fixture(t, Config{RequestTimeout: 200 * time.Millisecond, MaxInFlight: 1})

	// Raw connection: complete headers, then stall mid-body.
	conn, err := net.Dial("tcp", ts.Listener.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	fmt.Fprintf(conn, "POST /v1/batch HTTP/1.1\r\nHost: x\r\nContent-Type: application/json\r\nContent-Length: 1000\r\n\r\n{\"pairs\":[[")

	// The stalled request must release its gate slot at the deadline;
	// poll briefly, then a normal query must be admitted, not 429'd.
	deadline := time.Now().Add(5 * time.Second)
	for {
		resp := getJSON(t, ts.URL+"/v1/reachable?u=0&v=1", nil)
		if resp.StatusCode == http.StatusOK {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("gate still held %s after a %s deadline (last status %d)",
				time.Since(deadline.Add(-5*time.Second)), s.cfg.RequestTimeout, resp.StatusCode)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestWriteDeadlineClearedBetweenRequests pins keep-alive hygiene: the
// guard's per-request write deadline must not outlive its request. A
// leaked deadline would kill any later response on the same connection —
// including unguarded /v1/stats, breaking the "monitoring works under
// overload" guarantee. Today net/http itself clears the write deadline
// after every served request (conn.serve, Go 1.24); this test keeps the
// guarantee pinned against both guard changes and stdlib behavior
// changes.
func TestWriteDeadlineClearedBetweenRequests(t *testing.T) {
	_, _, ts := fixture(t, Config{RequestTimeout: 200 * time.Millisecond})
	conn, err := net.Dial("tcp", ts.Listener.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	br := bufio.NewReader(conn)
	send := func(path string) int {
		fmt.Fprintf(conn, "GET %s HTTP/1.1\r\nHost: x\r\n\r\n", path)
		resp, err := http.ReadResponse(br, nil)
		if err != nil {
			t.Fatalf("GET %s on keep-alive conn: %v", path, err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp.StatusCode
	}
	if code := send("/v1/reachable?u=0&v=1"); code != http.StatusOK {
		t.Fatalf("guarded request: status %d", code)
	}
	// Outlast the guarded request's write deadline (200ms + 1s grace),
	// then reuse the connection for an unguarded endpoint.
	time.Sleep(1500 * time.Millisecond)
	if code := send("/v1/stats"); code != http.StatusOK {
		t.Fatalf("stats after stale write deadline: status %d", code)
	}
}

// TestMaxInFlightGate proves admission control: with the gate full, query
// endpoints answer 429 + Retry-After immediately while healthz and stats
// stay reachable, and draining the gate restores service.
func TestMaxInFlightGate(t *testing.T) {
	_, s, ts := fixture(t, Config{MaxInFlight: 2})
	// A gate without a deadline could be pinned forever by stalled
	// clients; enabling it must imply one.
	if s.cfg.RequestTimeout != DefaultGateTimeout {
		t.Fatalf("gate without RequestTimeout got deadline %s, want %s",
			s.cfg.RequestTimeout, DefaultGateTimeout)
	}
	// Occupy both slots as two stuck in-flight requests would.
	s.gate <- struct{}{}
	s.gate <- struct{}{}

	start := time.Now()
	resp := getJSON(t, ts.URL+"/v1/reachable?u=0&v=1", nil)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("gated query: status %d, want 429", resp.StatusCode)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("429 took %s; overload rejection must not queue", elapsed)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" {
		t.Fatal("429 missing Retry-After header")
	}
	if resp, _ := postBatch(t, ts.URL, [][2]uint64{{0, 1}}); resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("gated batch: status %d, want 429", resp.StatusCode)
	}
	// Monitoring endpoints bypass the gate.
	if resp := getJSON(t, ts.URL+"/v1/healthz", nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz gated: status %d", resp.StatusCode)
	}
	var st Stats
	if resp := getJSON(t, ts.URL+"/v1/stats", &st); resp.StatusCode != http.StatusOK {
		t.Fatalf("stats gated: status %d", resp.StatusCode)
	}
	if st.Server.Rejected != 2 || st.Server.InFlight != 2 || st.Server.MaxInFlight != 2 {
		t.Fatalf("gate counters: %+v", st.Server)
	}
	// Rejections are load shedding, not errors.
	if st.Server.Errors != 0 {
		t.Fatalf("429s counted as errors: %+v", st.Server)
	}

	// Drain the gate: queries flow again.
	<-s.gate
	<-s.gate
	if resp := getJSON(t, ts.URL+"/v1/reachable?u=0&v=1", nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("post-drain query: status %d", resp.StatusCode)
	}
}

// TestUnknownVertexMessage pins the 400 body for both ID modes: dense
// mode names the valid range, original-ID mode must not (its ID space is
// the edge-list file's, not [0, N)).
func TestUnknownVertexMessage(t *testing.T) {
	g, _, ts := fixture(t, Config{})
	var dense struct {
		Error string `json:"error"`
	}
	url := fmt.Sprintf("%s/v1/reachable?u=%d&v=0", ts.URL, g.NumVertices())
	if resp := getJSON(t, url, &dense); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d, want 400", resp.StatusCode)
	}
	if want := fmt.Sprintf("valid IDs are 0..%d", g.NumVertices()-1); !bytes.Contains([]byte(dense.Error), []byte(want)) {
		t.Fatalf("dense-mode error %q does not name the range %q", dense.Error, want)
	}

	// Original-ID mode: IDs 100, 7, 42 — "(3 vertices)" would wrongly
	// suggest 0..2 are valid.
	og, orig, err := reach.ReadGraph(bytes.NewReader([]byte("100 7\n7 42\n")))
	if err != nil {
		t.Fatal(err)
	}
	oracle, err := reach.Build(og, reach.MethodDL, reach.Options{})
	if err != nil {
		t.Fatal(err)
	}
	s2 := New(og, oracle, Config{OrigIDs: orig})
	defer s2.Close()
	ts2 := httptest.NewServer(s2.Handler())
	defer ts2.Close()
	var raw struct {
		Error string `json:"error"`
	}
	if resp := getJSON(t, ts2.URL+"/v1/reachable?u=0&v=42", &raw); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d, want 400", resp.StatusCode)
	}
	if bytes.Contains([]byte(raw.Error), []byte("vertices)")) {
		t.Fatalf("orig-ID-mode error %q quotes the vertex count", raw.Error)
	}
	if !bytes.Contains([]byte(raw.Error), []byte("original")) {
		t.Fatalf("orig-ID-mode error %q does not explain the ID space", raw.Error)
	}
}

// TestServerConcurrentHammer hits the HTTP API from many goroutines with
// mixed single and batch requests; run under -race it exercises the
// cache, the metrics, and the worker pool concurrently.
func TestServerConcurrentHammer(t *testing.T) {
	g, _, ts := fixture(t, Config{Workers: 4, BatchChunk: 32, CacheCapacity: 1 << 12})
	oracle, err := reach.Build(g, reach.MethodBFS, reach.Options{})
	if err != nil {
		t.Fatal(err)
	}
	n := uint32(g.NumVertices())

	const workers = 8
	var wg sync.WaitGroup
	errc := make(chan error, workers)
	client := ts.Client()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < 40; i++ {
				if i%4 == 0 { // one batch per few singles
					pairs := make([][2]uint32, 64)
					wire := make([][2]uint64, len(pairs))
					for j := range pairs {
						pairs[j] = [2]uint32{rng.Uint32() % n, rng.Uint32() % n}
						wire[j] = [2]uint64{uint64(pairs[j][0]), uint64(pairs[j][1])}
					}
					body, _ := json.Marshal(BatchRequest{Pairs: wire})
					resp, err := client.Post(ts.URL+"/v1/batch", "application/json", bytes.NewReader(body))
					if err != nil {
						errc <- err
						return
					}
					var got BatchResponse
					err = json.NewDecoder(resp.Body).Decode(&got)
					resp.Body.Close()
					if err != nil {
						errc <- err
						return
					}
					for j, p := range pairs {
						if got.Results[j] != oracle.Reachable(p[0], p[1]) {
							errc <- fmt.Errorf("batch pair (%d,%d) wrong under concurrency", p[0], p[1])
							return
						}
					}
					continue
				}
				u, v := rng.Uint32()%n, rng.Uint32()%n
				resp, err := client.Get(fmt.Sprintf("%s/v1/reachable?u=%d&v=%d", ts.URL, u, v))
				if err != nil {
					errc <- err
					return
				}
				var got ReachableResponse
				err = json.NewDecoder(resp.Body).Decode(&got)
				resp.Body.Close()
				if err != nil {
					errc <- err
					return
				}
				if got.Reachable != oracle.Reachable(u, v) {
					errc <- fmt.Errorf("single query (%d,%d) wrong under concurrency", u, v)
					return
				}
			}
		}(int64(w) + 100)
	}
	wg.Wait()
	close(errc)
	if err := <-errc; err != nil {
		t.Fatal(err)
	}

	var st Stats
	getJSON(t, ts.URL+"/v1/stats", &st)
	if st.Server.Queries == 0 || st.Cache.Hits+st.Cache.Misses == 0 {
		t.Errorf("hammer left no trace in stats: %+v", st)
	}
}

// TestOrigIDMapping proves the API speaks the edge-list file's own IDs
// when OrigIDs is configured, as reachd does — the same IDs reachcli
// answers with.
func TestOrigIDMapping(t *testing.T) {
	// Raw IDs 100, 7, 42 densify (in order of appearance) to 0, 1, 2.
	g, orig, err := reach.ReadGraph(bytes.NewReader([]byte("100 7\n7 42\n")))
	if err != nil {
		t.Fatal(err)
	}
	oracle, err := reach.Build(g, reach.MethodDL, reach.Options{})
	if err != nil {
		t.Fatal(err)
	}
	s := New(g, oracle, Config{OrigIDs: orig})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	var got ReachableResponse
	if resp := getJSON(t, ts.URL+"/v1/reachable?u=100&v=42", &got); resp.StatusCode != http.StatusOK {
		t.Fatalf("raw-ID query: status %d", resp.StatusCode)
	}
	if !got.Reachable || got.U != 100 || got.V != 42 {
		t.Fatalf("raw-ID query 100->42: %+v, want reachable with echoed raw IDs", got)
	}
	// Dense ID 0 is not a raw ID of this file: it must be rejected, not
	// silently treated as vertex 100.
	if resp := getJSON(t, ts.URL+"/v1/reachable?u=0&v=42", nil); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("dense ID leaked through raw-ID API: status %d", resp.StatusCode)
	}
	resp, batch := postBatch(t, ts.URL, [][2]uint64{{100, 42}, {42, 100}, {999, 42}})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("raw-ID batch: status %d", resp.StatusCode)
	}
	if want := []bool{true, false, false}; !slices.Equal(batch.Results, want) {
		t.Fatalf("raw-ID batch results = %v, want %v", batch.Results, want)
	}
}

// TestSnapshotRoundTripServing proves the reachd restart path: save the
// oracle snapshot, restore it, and serve identical answers — with
// /v1/stats reporting where each server's index came from.
func TestSnapshotRoundTripServing(t *testing.T) {
	g, _, ts := fixture(t, Config{})
	oracle, err := reach.Build(g, reach.MethodDL, reach.Options{})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := oracle.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := reach.LoadBytes(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	s2 := New(loaded.Graph(), loaded, Config{})
	defer s2.Close()
	ts2 := httptest.NewServer(s2.Handler())
	defer ts2.Close()

	var st, st2 Stats
	getJSON(t, ts.URL+"/v1/stats", &st)
	getJSON(t, ts2.URL+"/v1/stats", &st2)
	if st.Index.Source != "built" {
		t.Fatalf("built server reports source %q", st.Index.Source)
	}
	if st2.Index.Source != "snapshot" || st2.Index.Method != "DL" || st2.Index.SizeInts != oracle.IndexSizeInts() {
		t.Fatalf("snapshot server reports %+v", st2.Index)
	}

	rng := rand.New(rand.NewSource(5))
	n := g.NumVertices()
	for i := 0; i < 200; i++ {
		u, v := rng.Intn(n), rng.Intn(n)
		var a, b ReachableResponse
		getJSON(t, fmt.Sprintf("%s/v1/reachable?u=%d&v=%d", ts.URL, u, v), &a)
		getJSON(t, fmt.Sprintf("%s/v1/reachable?u=%d&v=%d", ts2.URL, u, v), &b)
		if a.Reachable != b.Reachable {
			t.Fatalf("snapshot-loaded server disagrees on (%d,%d)", u, v)
		}
	}
}
