package server

// The binary batch path: /v1/batch spoken in wireproto frames instead of
// JSON. Same endpoint, same semantics (results[i] answers pairs[i],
// unknown vertices answer false), same limits and overload behavior —
// only the encoding differs, selected per request by Content-Type so a
// mixed fleet needs no second port. The handler allocates nothing per
// request in steady state: frame, pair and result buffers come from a
// pool and the codec fills them in place. docs/WIRE.md is the normative
// frame spec.

import (
	"context"
	"errors"
	"io"
	"mime"
	"net/http"
	"os"
	"strconv"
	"sync"
	"time"

	"repro/internal/wireproto"
)

// isBinaryBatch reports whether a /v1/batch request negotiated the
// binary frame protocol via its Content-Type.
func isBinaryBatch(r *http.Request) bool {
	mt, _, err := mime.ParseMediaType(r.Header.Get("Content-Type"))
	return err == nil && mt == wireproto.ContentType
}

// wireScratch is one binary request's worth of reusable buffers. frame
// holds the request frame and is reused for the (never larger) response
// frame; pairs and out are the decoded batch and its answers.
type wireScratch struct {
	frame []byte
	pairs [][2]uint32
	out   []bool
}

var wireScratchPool = sync.Pool{New: func() any { return new(wireScratch) }}

// writeErrorFrame answers a binary-mode request with a wireproto error
// frame: a binary peer never has to parse JSON to learn why a batch
// failed. The sole exception is the 415 negotiation failure, which stays
// JSON by design (it means "I don't speak these frames at all").
func (s *Server) writeErrorFrame(w http.ResponseWriter, status int, msg string) {
	buf := make([]byte, wireproto.ErrorSize(len(msg)))
	n := wireproto.EncodeError(buf, status, msg)
	w.Header().Set("Content-Type", wireproto.ContentType)
	w.Header().Set("Content-Length", strconv.Itoa(n))
	w.WriteHeader(status)
	w.Write(buf[:n])
	s.met.wireTxBinary.Add(int64(n))
}

// failBinary is writeErrorFrame plus the error-counter bump — the
// binary-path sibling of fail. (The gate's 429 uses writeErrorFrame
// directly: rejections are counted in rejected, not errors, on both
// encodings.)
func (s *Server) failBinary(w http.ResponseWriter, status int, msg string) {
	s.met.errors.Add(1)
	s.writeErrorFrame(w, status, msg)
}

// failBinaryTimeout is failTimeout for the binary path: 503 as an error
// frame, with the same timed_out accounting.
func (s *Server) failBinaryTimeout(w http.ResponseWriter, err error) {
	if errors.Is(err, context.DeadlineExceeded) {
		s.met.timedOut.Add(1)
	}
	s.failBinary(w, http.StatusServiceUnavailable, "request abandoned: "+err.Error())
}

// handleBatchBinary serves one wireproto request frame. The body is read
// in two steps — header first, then exactly the payload the header's
// count implies — so a hostile count never sizes a buffer before the
// length arithmetic has bounded it against MaxBatchPairs.
func (s *Server) handleBatchBinary(w http.ResponseWriter, r *http.Request) {
	tr := s.startTrace(w, r)
	done := func(pairs, status int) { s.finishTrace(w, tr, s.met.reqBatch, "batch", pairs, status) }
	s.met.wireFramesBinary.Add(1)
	if s.cfg.DisableBinaryWire {
		done(0, http.StatusUnsupportedMediaType)
		s.fail(w, http.StatusUnsupportedMediaType,
			"binary batch frames are disabled on this replica; send application/json")
		return
	}

	// +1 so a body one byte past the largest legal frame reads as
	// "too large" rather than truncating silently at the limit.
	body := http.MaxBytesReader(w, r.Body, int64(wireproto.RequestSize(s.cfg.MaxBatchPairs))+1)
	sc := wireScratchPool.Get().(*wireScratch)
	defer wireScratchPool.Put(sc)

	if cap(sc.frame) < wireproto.HeaderSize {
		sc.frame = make([]byte, wireproto.RequestSize(1024))
	}
	if _, err := io.ReadFull(body, sc.frame[:wireproto.HeaderSize]); err != nil {
		s.failBinaryRead(w, r, done, err)
		return
	}
	h, err := wireproto.ParseHeader(sc.frame[:wireproto.HeaderSize])
	if err != nil {
		done(0, http.StatusBadRequest)
		s.failBinary(w, http.StatusBadRequest, "bad batch frame: "+err.Error())
		return
	}
	if h.Flags != 0 {
		done(0, http.StatusBadRequest)
		s.failBinary(w, http.StatusBadRequest, "bad batch frame: not a request frame")
		return
	}
	count := int(h.Count)
	if count > s.cfg.MaxBatchPairs {
		done(count, http.StatusRequestEntityTooLarge)
		s.failBinary(w, http.StatusRequestEntityTooLarge,
			"batch of "+strconv.Itoa(count)+" pairs exceeds limit "+strconv.Itoa(s.cfg.MaxBatchPairs))
		return
	}
	size := wireproto.RequestSize(count)
	if cap(sc.frame) < size {
		grown := make([]byte, size)
		copy(grown, sc.frame[:wireproto.HeaderSize])
		sc.frame = grown
	}
	frame := sc.frame[:size]
	if _, err := io.ReadFull(body, frame[wireproto.HeaderSize:]); err != nil {
		s.failBinaryRead(w, r, done, err)
		return
	}
	// One frame per body: trailing bytes mean a confused (or hostile)
	// sender, and silently ignoring them would desync a reused connection.
	var trailer [1]byte
	if n, _ := body.Read(trailer[:]); n != 0 {
		done(count, http.StatusBadRequest)
		s.failBinary(w, http.StatusBadRequest, "bad batch frame: trailing bytes after frame")
		return
	}
	s.met.wireRxBinary.Add(int64(size))
	tr.decode = time.Since(tr.start)

	if cap(sc.pairs) < count {
		sc.pairs = make([][2]uint32, count)
	}
	pairs := sc.pairs[:count]
	if err := wireproto.DecodeRequest(frame, pairs); err != nil {
		done(count, http.StatusBadRequest)
		s.failBinary(w, http.StatusBadRequest, "bad batch frame: "+err.Error())
		return
	}
	s.met.batchRequests.Add(1)
	if err := r.Context().Err(); err != nil {
		done(count, http.StatusServiceUnavailable)
		s.failBinaryTimeout(w, err)
		return
	}
	// Resolve in place: wire IDs are uint32 by construction (clients with
	// wider IDs fall back to JSON), unknown IDs answer false like the
	// JSON batch path.
	t0 := time.Now()
	for i := range pairs {
		du, _ := s.resolve(uint64(pairs[i][0]))
		dv, _ := s.resolve(uint64(pairs[i][1]))
		pairs[i][0], pairs[i][1] = du, dv
	}
	tr.resolve = time.Since(t0)

	if cap(sc.out) < count {
		sc.out = make([]bool, count)
	}
	out := sc.out[:count]
	if err := s.reachableBatchInto(r.Context(), pairs, out, &tr.qt); err != nil {
		done(count, http.StatusServiceUnavailable)
		s.failBinaryTimeout(w, err)
		return
	}
	// The response reuses the request's frame buffer: ResponseSize(n) is
	// never larger than RequestSize(n) (results are bit-packed).
	respLen := wireproto.EncodeResponse(frame, out)
	done(count, http.StatusOK)
	w.Header().Set("Content-Type", wireproto.ContentType)
	w.Header().Set("Content-Length", strconv.Itoa(respLen))
	w.WriteHeader(http.StatusOK)
	w.Write(frame[:respLen])
	s.met.wireTxBinary.Add(int64(respLen))
}

// failBinaryRead classifies a body-read failure the same way the JSON
// batch handler does: over the byte cap → 413, cut by the request
// deadline → 503, anything else → 400 truncated frame.
func (s *Server) failBinaryRead(w http.ResponseWriter, r *http.Request, done func(int, int), err error) {
	var tooLarge *http.MaxBytesError
	if errors.As(err, &tooLarge) {
		done(0, http.StatusRequestEntityTooLarge)
		s.failBinary(w, http.StatusRequestEntityTooLarge,
			"batch body exceeds "+strconv.FormatInt(tooLarge.Limit, 10)+" bytes")
		return
	}
	if errors.Is(err, os.ErrDeadlineExceeded) {
		done(0, http.StatusServiceUnavailable)
		s.failBinaryTimeout(w, context.DeadlineExceeded)
		return
	}
	if ctxErr := r.Context().Err(); ctxErr != nil {
		done(0, http.StatusServiceUnavailable)
		s.failBinaryTimeout(w, ctxErr)
		return
	}
	done(0, http.StatusBadRequest)
	s.failBinary(w, http.StatusBadRequest, "bad batch frame: body truncated")
}
