package server

import (
	"math/rand"
	"sync"
	"testing"
)

// bothPolicies runs a subtest against each cache policy; the behaviors
// under test (get/put, bounds, stats counters) are policy-independent.
func bothPolicies(t *testing.T, f func(t *testing.T, policy string)) {
	for _, policy := range []string{PolicyFIFO, PolicyS3FIFO} {
		t.Run(policy, func(t *testing.T) { f(t, policy) })
	}
}

func TestCacheGetPut(t *testing.T) {
	bothPolicies(t, func(t *testing.T, policy string) {
		c := newCache(policy, 4, 1024)
		if _, ok := c.get(1, 2); ok {
			t.Fatal("empty cache reported a hit")
		}
		c.put(1, 2, true)
		c.put(2, 1, false) // asymmetric pair must not collide
		if ans, ok := c.get(1, 2); !ok || !ans {
			t.Fatalf("get(1,2) = %v, %v", ans, ok)
		}
		if ans, ok := c.get(2, 1); !ok || ans {
			t.Fatalf("get(2,1) = %v, %v", ans, ok)
		}
		st := c.stats()
		if st.Hits != 2 || st.Misses != 1 || st.Entries != 2 {
			t.Fatalf("stats = %+v", st)
		}
		if st.HitRate < 0.66 || st.HitRate > 0.67 {
			t.Fatalf("hit rate = %v, want 2/3", st.HitRate)
		}
		if st.Policy != policy {
			t.Fatalf("stats report policy %q, want %q", st.Policy, policy)
		}
	})
}

func TestCacheOverwrite(t *testing.T) {
	bothPolicies(t, func(t *testing.T, policy string) {
		c := newCache(policy, 1, 8)
		c.put(3, 4, false)
		c.put(3, 4, true)
		if ans, ok := c.get(3, 4); !ok || !ans {
			t.Fatalf("overwrite lost: %v, %v", ans, ok)
		}
		if n := c.len(); n != 1 {
			t.Fatalf("len = %d after overwrite, want 1", n)
		}
	})
}

func TestCacheEvictionBoundsCapacity(t *testing.T) {
	bothPolicies(t, func(t *testing.T, policy string) {
		const capacity = 128
		c := newCache(policy, 4, capacity)
		for i := uint32(0); i < 10*capacity; i++ {
			c.put(i, i+1, i%2 == 0)
		}
		if n := c.len(); n > capacity {
			t.Fatalf("cache holds %d entries, capacity %d", n, capacity)
		}
		// A pure one-shot insert scan keeps the most recent insertions
		// resident under both policies (FIFO by definition; S3-FIFO
		// because nothing earns promotion, so small cycles FIFO-style).
		last := uint32(10*capacity - 1)
		if _, ok := c.get(last, last+1); !ok {
			t.Error("most recent entry was evicted")
		}
	})
}

// TestCacheCapacityExact pins the remainder-distribution bugfix: a
// capacity that doesn't divide the shard count must neither shrink
// (capacity/shards*shards, the old bug: 100 across 64 shards bounded 64)
// nor inflate, and stats must report the real bound.
func TestCacheCapacityExact(t *testing.T) {
	bothPolicies(t, func(t *testing.T, policy string) {
		for _, tc := range []struct{ shards, capacity int }{
			{64, 100}, {64, 1000}, {4, 7}, {8, 129}, {1, 3},
		} {
			c := newCache(policy, tc.shards, tc.capacity)
			if got := c.stats().Capacity; got != tc.capacity {
				t.Errorf("%s shards=%d capacity=%d: stats report capacity %d",
					policy, tc.shards, tc.capacity, got)
			}
			for i := uint32(0); i < uint32(20*tc.capacity); i++ {
				c.put(i, i, true)
			}
			if n := c.len(); n > tc.capacity {
				t.Errorf("%s shards=%d capacity=%d: holds %d entries",
					policy, tc.shards, tc.capacity, n)
			}
		}
	})
}

func TestCacheShardRounding(t *testing.T) {
	c := newCache(PolicyFIFO, 5, 100)
	if st := c.stats(); st.Shards != 8 {
		t.Fatalf("5 shards rounded to %d, want 8", st.Shards)
	}
	if got := c.stats().Capacity; got != 100 {
		t.Fatalf("capacity = %d, want the configured 100", got)
	}
	// A capacity below the shard count shrinks the shard count; the
	// configured bound is an upper bound, never inflated.
	small := newCache(PolicyS3FIFO, 64, 10)
	if got := small.stats().Capacity; got != 10 {
		t.Fatalf("capacity 10 with 64 shards yields %d, want 10", got)
	}
	for i := uint32(0); i < 100; i++ {
		small.put(i, i, true)
	}
	if n := small.len(); n > 10 {
		t.Fatalf("small cache holds %d entries, bound 10", n)
	}
}

// TestS3FIFOGhostResurrection exercises the admission path that makes
// S3-FIFO scan-resistant: a key evicted from the small probationary
// queue is remembered in the ghost set, and its next insertion goes
// straight to the main queue, where a cold scan cannot displace it.
func TestS3FIFOGhostResurrection(t *testing.T) {
	// One shard, capacity 20 → small 2, main 18.
	c := newS3FIFOCache(1, 20)
	c.put(1, 1, true)
	// Push enough one-shot keys through small to evict (1,1) to ghost.
	for i := uint32(100); i < 104; i++ {
		c.put(i, i, false)
	}
	if _, ok := c.get(1, 1); ok {
		t.Fatal("(1,1) should have been evicted from the small queue")
	}
	if g := c.stats().Ghost; g == 0 {
		t.Fatal("eviction from small left no ghost entry")
	}
	// Reinsert: the ghost set routes it to main.
	c.put(1, 1, true)
	if m := c.stats().Main; m != 1 {
		t.Fatalf("resurrected key not in main queue (main=%d)", m)
	}
	// A long cold scan only churns the small queue; (1,1) survives in main.
	for i := uint32(1000); i < 1200; i++ {
		c.put(i, i, false)
	}
	if ans, ok := c.get(1, 1); !ok || !ans {
		t.Fatalf("main-queue entry lost to a cold scan: %v, %v", ans, ok)
	}
}

// TestS3FIFOPromotionOnHit checks the other admission path: a small-queue
// entry that gets hit while probationary is promoted to main at eviction
// time instead of dropping to the ghost set.
func TestS3FIFOPromotionOnHit(t *testing.T) {
	c := newS3FIFOCache(1, 20) // small 2, main 18
	c.put(1, 1, true)
	c.get(1, 1) // hit while probationary → promotion-worthy
	for i := uint32(100); i < 110; i++ {
		c.put(i, i, false) // evictions promote (1,1) rather than dropping it
	}
	if ans, ok := c.get(1, 1); !ok || !ans {
		t.Fatalf("hit entry was not promoted: %v, %v", ans, ok)
	}
	st := c.stats()
	if st.Main == 0 {
		t.Fatalf("promotion left main queue empty: %+v", st)
	}
}

// TestS3FIFOGhostSequenceProtectsFreshMemory pins the stale-slot fix: a
// key that is remembered, resurrected, and remembered again leaves a
// stale older ring slot behind; aging that stale slot out must not erase
// the key's fresh ghost-set memory.
func TestS3FIFOGhostSequenceProtectsFreshMemory(t *testing.T) {
	c := newS3FIFOCache(1, 20)
	sh := &c.shards[0]
	sh.ghostAdd(7)
	delete(sh.ghost, 7) // what resurrection to main does
	sh.ghostAdd(7)      // fresh memory under a newer slot
	// Fill the ring, then push once more so the stale slot for key 7 pops.
	for k := uint64(100); sh.ghostFIFO.n < len(sh.ghostFIFO.buf); k++ {
		sh.ghostAdd(k)
	}
	sh.ghostAdd(999)
	if _, ok := sh.ghost[7]; !ok {
		t.Fatal("aging out a stale ghost slot erased the fresh memory of key 7")
	}
}

// TestZipfS3FIFOBeatsFIFO is the hit-rate regression gate: on the same
// Zipfian trace at the same capacity, the S3-FIFO policy must meet or
// beat plain FIFO. BenchmarkCacheHitRateZipf reports the absolute
// numbers; this test keeps the ordering from silently regressing.
func TestZipfS3FIFOBeatsFIFO(t *testing.T) {
	const (
		universe = 1 << 14
		capacity = universe / 8
		queries  = 1 << 17
	)
	trace := zipfPairs(1<<30, universe, queries, 1.07, 41)
	rate := func(c cache) float64 {
		for _, p := range trace {
			if _, ok := c.get(p[0], p[1]); !ok {
				c.put(p[0], p[1], p[0] < p[1])
			}
		}
		return c.stats().HitRate
	}
	fifo := rate(newFIFOCache(DefaultCacheShards, capacity))
	s3 := rate(newS3FIFOCache(DefaultCacheShards, capacity))
	t.Logf("zipf s=1.07 universe=%d capacity=%d: fifo=%.4f s3fifo=%.4f", universe, capacity, fifo, s3)
	if s3 < fifo {
		t.Fatalf("s3fifo hit rate %.4f below fifo baseline %.4f at equal capacity", s3, fifo)
	}
}

func TestCacheConcurrent(t *testing.T) {
	bothPolicies(t, func(t *testing.T, policy string) {
		c := newCache(policy, 64, 1<<12)
		var wg sync.WaitGroup
		for w := 0; w < 8; w++ {
			wg.Add(1)
			go func(seed int64) {
				defer wg.Done()
				rng := rand.New(rand.NewSource(seed))
				for i := 0; i < 5000; i++ {
					u, v := rng.Uint32()%512, rng.Uint32()%512
					// The invariant under concurrency: an entry for (u,v) always
					// holds the deterministic answer u < v, no matter which
					// goroutine wrote it.
					if ans, ok := c.get(u, v); ok && ans != (u < v) {
						t.Error("cache returned a value nobody wrote")
						return
					}
					c.put(u, v, u < v)
				}
			}(int64(w))
		}
		wg.Wait()
		if st := c.stats(); st.Hits+st.Misses != 8*5000 {
			t.Fatalf("counter total = %d, want %d", st.Hits+st.Misses, 8*5000)
		}
	})
}

// TestCacheGetZeroAlloc pins the //reach:hotpath contract reachlint
// enforces statically: the shard lookup — hit or miss, either policy —
// must not allocate.
func TestCacheGetZeroAlloc(t *testing.T) {
	bothPolicies(t, func(t *testing.T, policy string) {
		c := newCache(policy, 4, 1024)
		c.put(1, 2, true)
		c.put(3, 4, false)
		allocs := testing.AllocsPerRun(1000, func() {
			c.get(1, 2)
			c.get(3, 4)
			c.get(9, 9) // miss
		})
		if allocs != 0 {
			t.Fatalf("get allocated %v times per run; the hot path must be allocation-free", allocs)
		}
	})
}
