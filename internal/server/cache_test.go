package server

import (
	"math/rand"
	"sync"
	"testing"
)

func TestCacheGetPut(t *testing.T) {
	c := newQueryCache(4, 1024)
	if _, ok := c.get(1, 2); ok {
		t.Fatal("empty cache reported a hit")
	}
	c.put(1, 2, true)
	c.put(2, 1, false) // asymmetric pair must not collide
	if ans, ok := c.get(1, 2); !ok || !ans {
		t.Fatalf("get(1,2) = %v, %v", ans, ok)
	}
	if ans, ok := c.get(2, 1); !ok || ans {
		t.Fatalf("get(2,1) = %v, %v", ans, ok)
	}
	st := c.stats()
	if st.Hits != 2 || st.Misses != 1 || st.Entries != 2 {
		t.Fatalf("stats = %+v", st)
	}
	if st.HitRate < 0.66 || st.HitRate > 0.67 {
		t.Fatalf("hit rate = %v, want 2/3", st.HitRate)
	}
}

func TestCacheOverwrite(t *testing.T) {
	c := newQueryCache(1, 8)
	c.put(3, 4, false)
	c.put(3, 4, true)
	if ans, ok := c.get(3, 4); !ok || !ans {
		t.Fatalf("overwrite lost: %v, %v", ans, ok)
	}
	if n := c.len(); n != 1 {
		t.Fatalf("len = %d after overwrite, want 1", n)
	}
}

func TestCacheEvictionBoundsCapacity(t *testing.T) {
	const capacity = 128
	c := newQueryCache(4, capacity)
	for i := uint32(0); i < 10*capacity; i++ {
		c.put(i, i+1, i%2 == 0)
	}
	if n := c.len(); n > capacity {
		t.Fatalf("cache holds %d entries, capacity %d", n, capacity)
	}
	// The most recent insertions survive FIFO eviction.
	last := uint32(10*capacity - 1)
	if _, ok := c.get(last, last+1); !ok {
		t.Error("most recent entry was evicted")
	}
}

func TestCacheShardRounding(t *testing.T) {
	c := newQueryCache(5, 100)
	if len(c.shards) != 8 {
		t.Fatalf("5 shards rounded to %d, want 8", len(c.shards))
	}
	if c.stats().Capacity != 8*(100/8) {
		t.Fatalf("capacity = %d", c.stats().Capacity)
	}
	// A capacity below the shard count shrinks the shard count; the
	// configured bound is an upper bound, never inflated.
	small := newQueryCache(64, 10)
	if got := small.stats().Capacity; got > 10 || got < 1 {
		t.Fatalf("capacity 10 with 64 shards yields %d, want 1..10", got)
	}
	for i := uint32(0); i < 100; i++ {
		small.put(i, i, true)
	}
	if n := small.len(); n > 10 {
		t.Fatalf("small cache holds %d entries, bound 10", n)
	}
}

func TestCacheConcurrent(t *testing.T) {
	c := newQueryCache(64, 1<<12)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < 5000; i++ {
				u, v := rng.Uint32()%512, rng.Uint32()%512
				// The invariant under concurrency: an entry for (u,v) always
				// holds the deterministic answer u < v, no matter which
				// goroutine wrote it.
				if ans, ok := c.get(u, v); ok && ans != (u < v) {
					t.Error("cache returned a value nobody wrote")
					return
				}
				c.put(u, v, u < v)
			}
		}(int64(w))
	}
	wg.Wait()
	if st := c.stats(); st.Hits+st.Misses != 8*5000 {
		t.Fatalf("counter total = %d, want %d", st.Hits+st.Misses, 8*5000)
	}
}
