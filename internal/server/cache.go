package server

import "sync"

// Cache defaults; Config leaves them overridable per daemon.
const (
	// DefaultCacheShards is the shard count (rounded up to a power of
	// two). 64 ways keeps lock contention negligible at the concurrency
	// levels a single reachd serves.
	DefaultCacheShards = 64
	// DefaultCacheCapacity bounds total cached (u,v) answers. At one map
	// entry plus one ring slot per answer this is a few tens of MiB.
	DefaultCacheCapacity = 1 << 20
)

// Cache admission policies selectable via Config.CachePolicy.
const (
	// PolicyS3FIFO is the default: a small probationary FIFO in front of
	// a main FIFO with a ghost set remembering recent evictions, so
	// one-hit wonders wash out of the small queue without displacing the
	// hot working set. See s3fifo.go.
	PolicyS3FIFO = "s3fifo"
	// PolicyFIFO is the original single-queue FIFO, retained for
	// comparison (BenchmarkCacheHitRateZipf sweeps both).
	PolicyFIFO = "fifo"
)

// cache is what the server needs from a query cache; fifoCache and
// s3fifoCache implement it. Both cache positive and negative answers:
// the oracle is immutable, so entries never go stale and eviction exists
// only to bound memory.
type cache interface {
	get(u, v uint32) (answer, ok bool)
	put(u, v uint32, answer bool)
	len() int
	stats() CacheStats
}

// newCache builds the cache for the given policy; any policy other than
// PolicyFIFO gets the S3-FIFO default (reachd validates the flag value,
// so an unknown string here only arises from library misuse).
func newCache(policy string, shards, capacity int) cache {
	if policy == PolicyFIFO {
		return newFIFOCache(shards, capacity)
	}
	return newS3FIFOCache(shards, capacity)
}

// shardLayout normalizes a (shards, capacity) request: the shard count
// rounds up to a power of two, then shrinks while the capacity is
// smaller than the shard count so the configured capacity stays an upper
// bound. The per-shard capacities distribute the remainder so they sum
// to exactly the configured capacity — CacheStats.Capacity must report
// the real bound, not capacity/shards*shards.
func shardLayout(shards, capacity int) (pow int, caps []int) {
	if shards <= 0 {
		shards = DefaultCacheShards
	}
	pow = 1
	for pow < shards {
		pow <<= 1
	}
	if capacity <= 0 {
		capacity = DefaultCacheCapacity
	}
	for pow > 1 && capacity < pow {
		pow >>= 1
	}
	caps = make([]int, pow)
	base, extra := capacity/pow, capacity%pow
	for i := range caps {
		caps[i] = base
		if i < extra {
			caps[i]++
		}
	}
	return pow, caps
}

func pairKey(u, v uint32) uint64 { return uint64(u)<<32 | uint64(v) }

// shardIndex mixes the packed key (Murmur3's 64-bit finalizer: full
// avalanche, so dense nearby pair keys still spread) and keeps the low
// bits as the shard index. Two multiplies flat, against the eight-round
// byte loop of the FNV-1a it replaced — the hash runs once per query on
// the hot path, where the loop showed up on profiles.
func shardIndex(k uint64, mask uint32) uint32 {
	k ^= k >> 33
	k *= 0xff51afd7ed558ccd
	k ^= k >> 33
	k *= 0xc4ceb9fe1a85ec53
	k ^= k >> 33
	return uint32(k) & mask
}

// fifoCache is a sharded, fixed-capacity map from query pair to answer.
// Shard selection hashes the packed pair so hot vertices spread across
// shards; within a shard, eviction is FIFO via a ring of inserted keys.
type fifoCache struct {
	shards []fifoShard
	mask   uint32
}

type fifoShard struct {
	mu   sync.Mutex
	m    map[uint64]bool
	ring []uint64 // insertion order, for FIFO eviction
	pos  int
	cap  int
	// hit/miss counters live per shard, inside the padded struct and
	// bumped under the shard mutex, so the hot path never touches a
	// cache line shared across shards.
	hits, misses int64
	// pad the shard to its own cache lines so neighboring locks don't
	// false-share.
	_ [64]byte
}

func newFIFOCache(shards, capacity int) *fifoCache {
	pow, caps := shardLayout(shards, capacity)
	c := &fifoCache{shards: make([]fifoShard, pow), mask: uint32(pow - 1)}
	for i := range c.shards {
		c.shards[i].cap = caps[i]
		// Sized lazily for the same reason as s3fifoShard.m: a
		// capacity-sized table keeps small working sets DRAM-sparse.
		c.shards[i].m = make(map[uint64]bool)
		c.shards[i].ring = make([]uint64, 0, caps[i])
	}
	return c
}

// get returns the cached answer for (u, v) and whether one was present,
// bumping the shard's hit or miss counter.
//
//reach:hotpath
func (c *fifoCache) get(u, v uint32) (answer, ok bool) {
	k := pairKey(u, v)
	sh := &c.shards[shardIndex(k, c.mask)]
	sh.mu.Lock()
	answer, ok = sh.m[k]
	if ok {
		sh.hits++
	} else {
		sh.misses++
	}
	sh.mu.Unlock()
	return answer, ok
}

// put stores the answer for (u, v), evicting the shard's oldest entry
// once the shard is full.
func (c *fifoCache) put(u, v uint32, answer bool) {
	k := pairKey(u, v)
	sh := &c.shards[shardIndex(k, c.mask)]
	sh.mu.Lock()
	if _, exists := sh.m[k]; !exists {
		// shardLayout guarantees cap >= 1, so the ring is never empty
		// at replacement time.
		if len(sh.ring) < sh.cap {
			sh.ring = append(sh.ring, k)
		} else {
			delete(sh.m, sh.ring[sh.pos])
			sh.ring[sh.pos] = k
			sh.pos++
			if sh.pos == sh.cap {
				sh.pos = 0
			}
		}
	}
	sh.m[k] = answer
	sh.mu.Unlock()
}

// len counts cached entries across all shards.
func (c *fifoCache) len() int {
	total := 0
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		total += len(sh.m)
		sh.mu.Unlock()
	}
	return total
}

// CacheStats is the cache section of /v1/stats. Small, Main and Ghost
// report the S3-FIFO segment sizes; they are always present (zero is a
// meaningful segment size on an idle server) and stay zero under the
// FIFO policy.
type CacheStats struct {
	Policy   string  `json:"policy"`
	Shards   int     `json:"shards"`
	Capacity int     `json:"capacity"`
	Entries  int     `json:"entries"`
	Small    int     `json:"small"`
	Main     int     `json:"main"`
	Ghost    int     `json:"ghost"`
	Hits     int64   `json:"hits"`
	Misses   int64   `json:"misses"`
	HitRate  float64 `json:"hit_rate"`
}

func (c *fifoCache) stats() CacheStats {
	s := CacheStats{Policy: PolicyFIFO, Shards: len(c.shards)}
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		s.Capacity += sh.cap
		s.Entries += len(sh.m)
		s.Hits += sh.hits
		s.Misses += sh.misses
		sh.mu.Unlock()
	}
	if total := s.Hits + s.Misses; total > 0 {
		s.HitRate = float64(s.Hits) / float64(total)
	}
	return s
}
