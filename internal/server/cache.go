package server

import "sync"

// Cache defaults; Config leaves them overridable per daemon.
const (
	// DefaultCacheShards is the shard count (rounded up to a power of
	// two). 64 ways keeps lock contention negligible at the concurrency
	// levels a single reachd serves.
	DefaultCacheShards = 64
	// DefaultCacheCapacity bounds total cached (u,v) answers. At one map
	// entry plus one ring slot per answer this is a few tens of MiB.
	DefaultCacheCapacity = 1 << 20
)

// queryCache is a sharded, fixed-capacity map from query pair to answer.
// Both positive and negative answers are cached: the oracle is immutable,
// so entries never go stale and eviction exists only to bound memory.
// Shard selection is by FNV-1a hash of the packed pair so hot vertices
// spread across shards; within a shard, eviction is FIFO via a ring of
// inserted keys.
type queryCache struct {
	shards []cacheShard
	mask   uint32
}

type cacheShard struct {
	mu   sync.Mutex
	m    map[uint64]bool
	ring []uint64 // insertion order, for FIFO eviction
	pos  int
	cap  int
	// hit/miss counters live per shard, inside the padded struct and
	// bumped under the shard mutex, so the hot path never touches a
	// cache line shared across shards.
	hits, misses int64
	// pad the shard to its own cache lines so neighboring locks don't
	// false-share.
	_ [64]byte
}

// newQueryCache builds a cache with the given shard count (rounded up to
// a power of two) and total entry capacity split evenly across shards.
// The configured capacity is an upper bound: when it is smaller than the
// shard count, the shard count shrinks rather than the bound inflating.
func newQueryCache(shards, capacity int) *queryCache {
	if shards <= 0 {
		shards = DefaultCacheShards
	}
	pow := 1
	for pow < shards {
		pow <<= 1
	}
	if capacity <= 0 {
		capacity = DefaultCacheCapacity
	}
	for pow > 1 && capacity < pow {
		pow >>= 1
	}
	perShard := capacity / pow
	c := &queryCache{shards: make([]cacheShard, pow), mask: uint32(pow - 1)}
	for i := range c.shards {
		c.shards[i].cap = perShard
		c.shards[i].m = make(map[uint64]bool, perShard)
		c.shards[i].ring = make([]uint64, 0, perShard)
	}
	return c
}

func pairKey(u, v uint32) uint64 { return uint64(u)<<32 | uint64(v) }

// fnvShard hashes the packed key with FNV-1a; the low bits pick a shard.
func (c *queryCache) fnvShard(k uint64) *cacheShard {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < 8; i++ {
		h ^= k & 0xff
		h *= prime64
		k >>= 8
	}
	return &c.shards[uint32(h)&c.mask]
}

// get returns the cached answer for (u, v) and whether one was present,
// bumping the shard's hit or miss counter.
func (c *queryCache) get(u, v uint32) (answer, ok bool) {
	k := pairKey(u, v)
	sh := c.fnvShard(k)
	sh.mu.Lock()
	answer, ok = sh.m[k]
	if ok {
		sh.hits++
	} else {
		sh.misses++
	}
	sh.mu.Unlock()
	return answer, ok
}

// put stores the answer for (u, v), evicting the shard's oldest entry
// once the shard is full.
func (c *queryCache) put(u, v uint32, answer bool) {
	k := pairKey(u, v)
	sh := c.fnvShard(k)
	sh.mu.Lock()
	if _, exists := sh.m[k]; !exists {
		if len(sh.ring) < sh.cap {
			sh.ring = append(sh.ring, k)
		} else {
			delete(sh.m, sh.ring[sh.pos])
			sh.ring[sh.pos] = k
			sh.pos++
			if sh.pos == sh.cap {
				sh.pos = 0
			}
		}
	}
	sh.m[k] = answer
	sh.mu.Unlock()
}

// len counts cached entries across all shards.
func (c *queryCache) len() int {
	total := 0
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		total += len(sh.m)
		sh.mu.Unlock()
	}
	return total
}

// CacheStats is the cache section of /v1/stats.
type CacheStats struct {
	Shards   int     `json:"shards"`
	Capacity int     `json:"capacity"`
	Entries  int     `json:"entries"`
	Hits     int64   `json:"hits"`
	Misses   int64   `json:"misses"`
	HitRate  float64 `json:"hit_rate"`
}

func (c *queryCache) stats() CacheStats {
	if c == nil {
		return CacheStats{}
	}
	s := CacheStats{
		Shards:   len(c.shards),
		Capacity: len(c.shards) * c.shards[0].cap,
	}
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		s.Entries += len(sh.m)
		s.Hits += sh.hits
		s.Misses += sh.misses
		sh.mu.Unlock()
	}
	if total := s.Hits + s.Misses; total > 0 {
		s.HitRate = float64(s.Hits) / float64(total)
	}
	return s
}
