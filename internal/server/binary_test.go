package server

import (
	"bytes"
	"io"
	"net/http"
	"strings"
	"testing"

	"repro/internal/wireproto"
)

// postBinary sends one wireproto request frame to a test server's
// /v1/batch and returns the response status, content type and body.
func postBinary(t testing.TB, url string, frame []byte) (int, string, []byte) {
	t.Helper()
	resp, err := http.Post(url+"/v1/batch", wireproto.ContentType, bytes.NewReader(frame))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, resp.Header.Get("Content-Type"), body
}

func encodeRequestFrame(pairs [][2]uint32) []byte {
	frame := make([]byte, wireproto.RequestSize(len(pairs)))
	wireproto.EncodeRequest(frame, pairs)
	return frame
}

// TestBinaryBatch round-trips a binary batch against the JSON path's
// answers for the same pairs: two encodings, one semantics.
func TestBinaryBatch(t *testing.T) {
	g, s, ts := fixture(t, Config{})
	pairs := make([][2]uint32, 300)
	for i := range pairs {
		pairs[i] = [2]uint32{uint32(i % g.NumVertices()), uint32((i * 7) % g.NumVertices())}
	}
	status, ct, body := postBinary(t, ts.URL, encodeRequestFrame(pairs))
	if status != http.StatusOK || ct != wireproto.ContentType {
		t.Fatalf("binary batch: status %d content type %q body %q", status, ct, body)
	}
	n, err := wireproto.ResponseCount(body)
	if err != nil || n != len(pairs) {
		t.Fatalf("ResponseCount = %d, %v", n, err)
	}
	got := make([]bool, n)
	if err := wireproto.DecodeResponse(body, got); err != nil {
		t.Fatal(err)
	}
	for i, p := range pairs {
		want, _ := s.Reachable(p[0], p[1])
		if got[i] != want {
			t.Fatalf("pair %d (%d,%d): binary says %v, oracle says %v", i, p[0], p[1], got[i], want)
		}
	}
}

// TestBinaryBatchUnknownVertices: out-of-range IDs answer false, exactly
// like the JSON batch path, instead of failing the batch.
func TestBinaryBatchUnknownVertices(t *testing.T) {
	g, _, ts := fixture(t, Config{})
	huge := uint32(g.NumVertices() + 1000)
	status, _, body := postBinary(t, ts.URL, encodeRequestFrame([][2]uint32{{huge, 0}, {0, huge}}))
	if status != http.StatusOK {
		t.Fatalf("status %d body %q", status, body)
	}
	got := make([]bool, 2)
	if err := wireproto.DecodeResponse(body, got); err != nil {
		t.Fatal(err)
	}
	if got[0] || got[1] {
		t.Fatalf("unknown-vertex pairs answered %v, want false,false", got)
	}
}

// TestBinaryBatchRejections drives every malformed-frame branch and
// checks each comes back as a wireproto error frame with the right
// status, both in the HTTP status line and in-band.
func TestBinaryBatchRejections(t *testing.T) {
	_, _, ts := fixture(t, Config{MaxBatchPairs: 100})
	valid := encodeRequestFrame([][2]uint32{{1, 2}})
	badMagic := bytes.Clone(valid)
	badMagic[0] = 'X'
	errorKind := make([]byte, wireproto.ErrorSize(2))
	wireproto.EncodeError(errorKind, 400, "hi")
	big := make([]byte, wireproto.HeaderSize)
	wireproto.EncodeRequest(big, nil)
	big[8] = 101 // count 101 > MaxBatchPairs 100, no payload needed

	cases := []struct {
		name   string
		frame  []byte
		status int
		substr string
	}{
		{"truncated header", valid[:8], http.StatusBadRequest, "truncated"},
		{"truncated payload", valid[:len(valid)-3], http.StatusBadRequest, "truncated"},
		{"trailing bytes", append(bytes.Clone(valid), 0xEE), http.StatusBadRequest, "trailing"},
		{"bad magic", badMagic, http.StatusBadRequest, "magic"},
		{"error frame as request", errorKind, http.StatusBadRequest, "not a request"},
		{"over pair limit", big, http.StatusRequestEntityTooLarge, "exceeds limit"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			status, ct, body := postBinary(t, ts.URL, tc.frame)
			if status != tc.status {
				t.Fatalf("status %d, want %d (body %q)", status, tc.status, body)
			}
			if ct != wireproto.ContentType {
				t.Fatalf("error answered with content type %q, want an error frame", ct)
			}
			inband, msg, err := wireproto.DecodeError(body)
			if err != nil {
				t.Fatalf("response is not a valid error frame: %v (% x)", err, body)
			}
			if inband != tc.status || !strings.Contains(msg, tc.substr) {
				t.Fatalf("error frame (%d, %q), want status %d with %q", inband, msg, tc.status, tc.substr)
			}
		})
	}
}

// TestBinaryWireDisabled: -wire=json replicas answer binary frames with
// a JSON 415 (the "I don't speak this" negotiation signal) and stop
// advertising the wire capability on healthz.
func TestBinaryWireDisabled(t *testing.T) {
	_, _, ts := fixture(t, Config{DisableBinaryWire: true})
	status, ct, body := postBinary(t, ts.URL, encodeRequestFrame([][2]uint32{{1, 2}}))
	if status != http.StatusUnsupportedMediaType {
		t.Fatalf("disabled replica answered %d (body %q), want 415", status, body)
	}
	if ct != "application/json" {
		t.Fatalf("415 content type %q, want application/json (the negotiation failure stays JSON)", ct)
	}
	var hz HealthzResponse
	getJSON(t, ts.URL+"/v1/healthz", &hz)
	if hz.Wire != nil {
		t.Fatalf("disabled replica advertises wire capability %v", hz.Wire)
	}
}

// TestHealthzAdvertisesWire: the default server advertises both
// encodings; the order is part of nothing, the set is.
func TestHealthzAdvertisesWire(t *testing.T) {
	_, _, ts := fixture(t, Config{})
	var hz HealthzResponse
	getJSON(t, ts.URL+"/v1/healthz", &hz)
	want := map[string]bool{"json": true, "binary": true}
	if len(hz.Wire) != 2 || !want[hz.Wire[0]] || !want[hz.Wire[1]] || hz.Wire[0] == hz.Wire[1] {
		t.Fatalf("healthz wire = %v, want json+binary", hz.Wire)
	}
}

// TestWireMetrics: both encodings bump their frame and byte counters,
// visible in /v1/stats-free form on /metrics.
func TestWireMetrics(t *testing.T) {
	_, _, ts := fixture(t, Config{})
	// One binary batch, one JSON batch.
	if status, _, _ := postBinary(t, ts.URL, encodeRequestFrame([][2]uint32{{1, 2}})); status != http.StatusOK {
		t.Fatalf("binary batch status %d", status)
	}
	resp, err := http.Post(ts.URL+"/v1/batch", "application/json", strings.NewReader(`{"pairs":[[1,2]]}`))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()

	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	page, _ := io.ReadAll(mresp.Body)
	for _, want := range []string{
		`reach_wire_frames_total{encoding="binary"} 1`,
		`reach_wire_frames_total{encoding="json"} 1`,
		`reach_wire_bytes_total{direction="rx",encoding="binary"} 20`, // 12 header + 1 pair
		`reach_wire_bytes_total{direction="tx",encoding="binary"} 20`, // 12 header + 1 word
		`reach_wire_bytes_total{direction="rx",encoding="json"} 17`,   // {"pairs":[[1,2]]}
	} {
		if !strings.Contains(string(page), want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
	// The JSON tx byte count depends on encoding details; just demand
	// it is a positive series.
	if !strings.Contains(string(page), `reach_wire_bytes_total{direction="tx",encoding="json"}`) {
		t.Errorf("/metrics missing JSON tx byte series")
	}
}
