package server

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/obs"
)

// syncBuffer is a goroutine-safe bytes.Buffer for slow-log capture.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

func TestMetricsEndpoint(t *testing.T) {
	_, _, ts := fixture(t, Config{})
	// Drive known traffic: 5 single queries and one 8-pair batch.
	for i := 0; i < 5; i++ {
		resp, err := http.Get(ts.URL + fmt.Sprintf("/v1/reachable?u=%d&v=%d", i, i+1))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}
	pairs := make([][2]uint64, 8)
	for i := range pairs {
		pairs[i] = [2]uint64{uint64(i), uint64(i + 2)}
	}
	body, _ := json.Marshal(BatchRequest{Pairs: pairs})
	resp, err := http.Post(ts.URL+"/v1/batch", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()

	resp, err = http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics HTTP %d", resp.StatusCode)
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	text := string(raw)
	// One histogram per serving stage, with _bucket series.
	for _, series := range []string{
		`reach_http_request_seconds_bucket{endpoint="reachable",le=`,
		`reach_http_request_seconds_bucket{endpoint="batch",le=`,
		`reach_stage_seconds_bucket{stage="cache_lookup",le=`,
		`reach_stage_seconds_bucket{stage="index_probe",le=`,
		`reach_stage_seconds_bucket{stage="chunk_dispatch",le=`,
	} {
		if !strings.Contains(text, series) {
			t.Fatalf("/metrics missing %s:\n%s", series, text)
		}
	}
	// Histogram counts must match the traffic: 5 reachable requests, 1
	// batch request, 13 pair-queries total.
	for _, want := range []string{
		`reach_http_request_seconds_count{endpoint="reachable"} 5`,
		`reach_http_request_seconds_count{endpoint="batch"} 1`,
		"reach_queries_total 13",
		"reach_batch_requests_total 1",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("/metrics missing %q:\n%s", want, text)
		}
	}
	// Build info must carry the running Go version.
	if !strings.Contains(text, `reach_build_info{go_version="`+runtime.Version()+`"`) {
		t.Fatalf("/metrics missing build info for %s", runtime.Version())
	}
	// The scrape must round-trip through the shared parser.
	h, err := obs.ParseHistogram(bytes.NewReader(raw), "reach_http_request_seconds",
		obs.Labels{"endpoint": "reachable"})
	if err != nil {
		t.Fatal(err)
	}
	if h.Count != 5 {
		t.Fatalf("parsed count %d, want 5", h.Count)
	}
	if q := h.Quantile(0.5); q <= 0 || q > 10 {
		t.Fatalf("parsed p50 %g out of range", q)
	}
}

func TestTraceEchoAndServerTiming(t *testing.T) {
	_, _, ts := fixture(t, Config{})
	// A client-supplied trace ID must be echoed verbatim.
	req, _ := http.NewRequest("GET", ts.URL+"/v1/reachable?u=1&v=2", nil)
	req.Header.Set(obs.TraceHeader, "client-supplied-id")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if got := resp.Header.Get(obs.TraceHeader); got != "client-supplied-id" {
		t.Fatalf("trace echo: %q, want client-supplied-id", got)
	}
	st := resp.Header.Get(obs.ServerTimingHeader)
	for _, stage := range []string{"cache;dur=", "probe;dur=", "total;dur="} {
		if !strings.Contains(st, stage) {
			t.Fatalf("server timing %q missing stage %s", st, stage)
		}
	}

	// Without a client ID the server must mint one.
	resp, err = http.Get(ts.URL + "/v1/reachable?u=1&v=2")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if got := resp.Header.Get(obs.TraceHeader); len(got) != 16 {
		t.Fatalf("minted trace ID %q, want 16 hex chars", got)
	}

	// Batch responses carry the decode stage too.
	body, _ := json.Marshal(BatchRequest{Pairs: [][2]uint64{{0, 1}, {2, 3}}})
	breq, _ := http.NewRequest("POST", ts.URL+"/v1/batch", bytes.NewReader(body))
	breq.Header.Set(obs.TraceHeader, "batch-trace")
	resp, err = http.DefaultClient.Do(breq)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if got := resp.Header.Get(obs.TraceHeader); got != "batch-trace" {
		t.Fatalf("batch trace echo: %q", got)
	}
	if st := resp.Header.Get(obs.ServerTimingHeader); !strings.Contains(st, "decode;dur=") {
		t.Fatalf("batch server timing %q missing decode stage", st)
	}
}

func TestSlowQueryLogEmission(t *testing.T) {
	// A 1 ns threshold makes every query "slow", standing in for an
	// injected-latency handler without wall-clock flakiness; the
	// injected-latency variant (a replica that really sleeps) lives in
	// the fleet package's slow-log test.
	var buf syncBuffer
	_, _, ts := fixture(t, Config{
		SlowQueryThreshold: time.Nanosecond,
		SlowQueryWriter:    &buf,
	})
	req, _ := http.NewRequest("GET", ts.URL+"/v1/reachable?u=3&v=4", nil)
	req.Header.Set(obs.TraceHeader, "slow-trace-1")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()

	body, _ := json.Marshal(BatchRequest{Pairs: [][2]uint64{{0, 1}, {2, 3}, {4, 5}}})
	resp, err = http.Post(ts.URL+"/v1/batch", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()

	var recs []SlowQueryRecord
	sc := bufio.NewScanner(strings.NewReader(buf.String()))
	for sc.Scan() {
		var rec SlowQueryRecord
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			t.Fatalf("bad slow-log line %q: %v", sc.Text(), err)
		}
		recs = append(recs, rec)
	}
	if len(recs) != 2 {
		t.Fatalf("%d slow records, want 2:\n%s", len(recs), buf.String())
	}
	single, batch := recs[0], recs[1]
	if single.Trace != "slow-trace-1" || single.Endpoint != "reachable" || single.Pairs != 1 {
		t.Fatalf("single record: %+v", single)
	}
	if batch.Endpoint != "batch" || batch.Pairs != 3 || len(batch.Trace) != 16 {
		t.Fatalf("batch record: %+v", batch)
	}
	for _, rec := range recs {
		if rec.Status != http.StatusOK || rec.DurationMS <= 0 || rec.Time == "" {
			t.Fatalf("record missing basics: %+v", rec)
		}
		for _, stage := range []string{"cache", "probe", "decode", "resolve"} {
			if _, ok := rec.StagesMS[stage]; !ok {
				t.Fatalf("record missing stage %s: %+v", stage, rec)
			}
		}
	}

	// A threshold far above any test-box latency must log nothing.
	var quiet syncBuffer
	_, _, ts2 := fixture(t, Config{
		SlowQueryThreshold: time.Hour,
		SlowQueryWriter:    &quiet,
	})
	resp, err = http.Get(ts2.URL + "/v1/reachable?u=1&v=2")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if quiet.String() != "" {
		t.Fatalf("hour-threshold log emitted: %q", quiet.String())
	}
}

func TestHealthzBuildInfo(t *testing.T) {
	_, _, ts := fixture(t, Config{})
	resp, err := http.Get(ts.URL + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var hz HealthzResponse
	if err := json.NewDecoder(resp.Body).Decode(&hz); err != nil {
		t.Fatal(err)
	}
	if hz.GoVersion != runtime.Version() {
		t.Fatalf("go_version %q, want %q", hz.GoVersion, runtime.Version())
	}
	if hz.Revision == "" {
		t.Fatal("revision empty; want a VCS revision or \"unknown\"")
	}
	if hz.UptimeSeconds <= 0 {
		t.Fatalf("uptime %g, want > 0", hz.UptimeSeconds)
	}
}

func TestPprofGatedByConfig(t *testing.T) {
	_, _, off := fixture(t, Config{})
	resp, err := http.Get(off.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("pprof without EnablePprof: HTTP %d, want 404", resp.StatusCode)
	}
	_, _, on := fixture(t, Config{EnablePprof: true})
	resp, err = http.Get(on.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !bytes.Contains(body, []byte("goroutine")) {
		t.Fatalf("pprof index: HTTP %d body %q", resp.StatusCode, body[:min(len(body), 200)])
	}
}
