package server

import "fmt"

// Wire types of the v1 HTTP API. They are exported so other processes
// speaking the protocol — the fleet router's replica client, load
// generators, operational tooling — marshal exactly what the handlers
// unmarshal instead of keeping parallel struct definitions.

// HealthzResponse is the /v1/healthz payload. Beyond liveness it carries
// the serving identity: the index method tag and the snapshot/graph
// fingerprint, so a router (or an operator) can detect a replica that is
// alive but serving the wrong graph before enrolling it in a fleet.
type HealthzResponse struct {
	Status   string `json:"status"`
	Method   string `json:"method"`
	Vertices int    `json:"vertices"`
	// Fingerprint is the graph's structural hash (Graph.Fingerprint) in
	// fixed-width hex — the same value snapshots embed, so every replica
	// that mmap'd one snapshot file reports one fingerprint.
	Fingerprint string `json:"fingerprint"`
	// Source is "snapshot" when the index was loaded from a snapshot
	// file, "built" when constructed at startup.
	Source string `json:"source"`
	// Build identity and uptime, so a fleet operator can spot a replica
	// running stale code or one that just restarted. GoVersion and
	// Revision come from the binary's embedded build info.
	GoVersion     string  `json:"go_version,omitempty"`
	Revision      string  `json:"revision,omitempty"`
	UptimeSeconds float64 `json:"uptime_seconds,omitempty"`
	// Wire lists the batch encodings this replica accepts on /v1/batch
	// ("json", "binary"). Routers read it once at enrollment to decide
	// the scatter encoding; absent (pre-binary replicas, or -wire=json)
	// means JSON only. See docs/WIRE.md.
	Wire []string `json:"wire,omitempty"`
	// Mux is the host:port of this replica's raw-TCP stream-transport
	// listener (docs/WIRE.md, "Stream transport"). Routers that speak the
	// mux protocol dial it and pipeline batches over a few persistent
	// connections instead of one HTTP request per batch. Absent means
	// HTTP only.
	Mux string `json:"mux,omitempty"`
}

// ReachableResponse is the /v1/reachable payload; U and V echo the
// caller's IDs.
type ReachableResponse struct {
	U         uint64 `json:"u"`
	V         uint64 `json:"v"`
	Reachable bool   `json:"reachable"`
	Cached    bool   `json:"cached"`
}

// BatchRequest is the /v1/batch input; pairs naming unknown vertices
// answer false rather than failing the whole batch.
type BatchRequest struct {
	Pairs [][2]uint64 `json:"pairs"`
}

// BatchResponse is the /v1/batch payload; Results[i] answers Pairs[i].
type BatchResponse struct {
	Count   int    `json:"count"`
	Results []bool `json:"results"`
}

// ErrorResponse is the body of every non-2xx answer.
type ErrorResponse struct {
	Error string `json:"error"`
}

// FingerprintString renders a graph fingerprint the way the wire
// protocol carries it: fixed-width lowercase hex. JSON numbers lose
// precision above 2^53 in many decoders, so the hash travels as text.
func FingerprintString(fp uint64) string {
	return fmt.Sprintf("%016x", fp)
}
