package server

import "sync"

// s3fifoCache is the S3-FIFO admission cache (Yang et al., "FIFO queues
// are all you need for cache eviction", SOSP 2023), sharded exactly like
// fifoCache. Each shard splits its capacity into a small probationary
// FIFO (~10%) and a main FIFO (~90%), plus a ghost set that remembers
// keys recently evicted from the small queue:
//
//   - a new key enters the small queue — unless the ghost set remembers
//     it, in which case it goes straight to main (its quick return is
//     the evidence it belongs there);
//   - eviction from small promotes entries that were hit at least once
//     and demotes the rest to the ghost set, so one-hit wonders never
//     displace the main queue;
//   - eviction from main gives entries with hits a second chance
//     (reinsert with the counter decremented) before dropping them.
//
// All state is per shard under the shard mutex; the hot path cost over
// plain FIFO is one uint8 frequency bump.
type s3fifoCache struct {
	shards []s3fifoShard
	mask   uint32
}

// s3freqMax caps the per-entry access counter; 3 is the paper's choice
// and bounds main-queue second chances.
const s3freqMax = 3

type s3entry struct {
	answer bool
	freq   uint8
}

type s3fifoShard struct {
	mu sync.Mutex
	// m holds live entries (small or main) by value: a 2-byte s3entry in
	// a flat map costs no per-entry allocation and nothing for the GC to
	// chase — at the default 1<<20 capacity a pointer map would mean a
	// million tiny heap objects. All mutation happens under mu, so
	// freq/answer updates just re-store the value.
	m     map[uint64]s3entry
	small keyRing
	main  keyRing
	// ghost maps remembered evictions to the sequence number of their
	// newest ring slot; ghostFIFO bounds the memory in insertion order.
	// A key's set entry can outlive resurrection-and-re-eviction cycles,
	// leaving stale older slots in the ring — the stored sequence lets
	// eviction tell a stale slot from the live one, so popping a stale
	// slot never erases a fresher memory of the same key.
	ghost     map[uint64]uint64
	ghostFIFO keyRing
	ghostSeqs keyRing // parallel to ghostFIFO: slot sequence numbers
	ghostSeq  uint64
	smallCap  int
	mainCap   int
	// hit/miss counters live per shard, inside the padded struct and
	// bumped under the shard mutex, so the hot path never touches a
	// cache line shared across shards.
	hits, misses int64
	// pad the shard to its own cache lines so neighboring locks don't
	// false-share.
	_ [64]byte
}

// keyRing is a fixed-capacity FIFO of packed pair keys. Callers never
// push into a full ring: every push is preceded by an eviction that
// frees a slot.
type keyRing struct {
	buf  []uint64
	head int
	n    int
}

func newKeyRing(capacity int) keyRing { return keyRing{buf: make([]uint64, capacity)} }

func (r *keyRing) push(k uint64) {
	r.buf[(r.head+r.n)%len(r.buf)] = k
	r.n++
}

func (r *keyRing) pop() uint64 {
	k := r.buf[r.head]
	r.head++
	if r.head == len(r.buf) {
		r.head = 0
	}
	r.n--
	return k
}

func newS3FIFOCache(shards, capacity int) *s3fifoCache {
	pow, caps := shardLayout(shards, capacity)
	c := &s3fifoCache{shards: make([]s3fifoShard, pow), mask: uint32(pow - 1)}
	for i := range c.shards {
		sh := &c.shards[i]
		// ~10% probationary queue, at least one slot; the rest is main.
		// A one-entry shard has no main queue — everything lives and
		// dies in small, with the ghost set still granting no admission
		// benefit (mainCap 0 disables resurrection).
		sh.smallCap = caps[i] / 10
		if sh.smallCap == 0 {
			sh.smallCap = 1
		}
		sh.mainCap = caps[i] - sh.smallCap
		if sh.mainCap < 0 {
			sh.mainCap = 0
		}
		ghostCap := sh.mainCap
		if ghostCap == 0 {
			ghostCap = 1
		}
		// Sized lazily, NOT pre-sized to capacity: a capacity hint
		// spreads a small working set over a worst-case table (~10 MiB
		// across shards at the defaults), turning every hit into a DRAM
		// stall — profiled at ~23% of the batch hot path. Growing on
		// demand keeps small working sets cache-resident and costs only
		// amortized incremental rehashes on the fill path.
		sh.m = make(map[uint64]s3entry)
		sh.small = newKeyRing(sh.smallCap)
		sh.main = newKeyRing(sh.mainCap)
		sh.ghost = make(map[uint64]uint64)
		sh.ghostFIFO = newKeyRing(ghostCap)
		sh.ghostSeqs = newKeyRing(ghostCap)
	}
	return c
}

//reach:hotpath
func (c *s3fifoCache) get(u, v uint32) (answer, ok bool) {
	k := pairKey(u, v)
	sh := &c.shards[shardIndex(k, c.mask)]
	sh.mu.Lock()
	e, ok := sh.m[k]
	if ok {
		if e.freq < s3freqMax {
			e.freq++
			sh.m[k] = e
		}
		sh.hits++
		answer = e.answer
	} else {
		sh.misses++
	}
	sh.mu.Unlock()
	return answer, ok
}

func (c *s3fifoCache) put(u, v uint32, answer bool) {
	k := pairKey(u, v)
	sh := &c.shards[shardIndex(k, c.mask)]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if e, ok := sh.m[k]; ok {
		// Concurrent misses can race to put the same pair; the oracle is
		// immutable so the answers agree and no queue movement is needed.
		e.answer = answer
		sh.m[k] = e
		return
	}
	if _, ghosted := sh.ghost[k]; ghosted && sh.mainCap > 0 {
		delete(sh.ghost, k)
		if sh.main.n >= sh.mainCap {
			sh.evictMain()
		}
		sh.main.push(k)
	} else {
		if sh.small.n >= sh.smallCap {
			sh.evictSmall()
		}
		sh.small.push(k)
	}
	sh.m[k] = s3entry{answer: answer}
}

// evictSmall pops the oldest small-queue entry, promoting it to main if
// it was hit while probationary and otherwise dropping it to the ghost
// set. Always frees exactly one small slot.
func (sh *s3fifoShard) evictSmall() {
	k := sh.small.pop()
	e := sh.m[k]
	if e.freq > 0 && sh.mainCap > 0 {
		if sh.main.n >= sh.mainCap {
			sh.evictMain()
		}
		e.freq = 0 // main residency restarts the clock
		sh.m[k] = e
		sh.main.push(k)
		return
	}
	delete(sh.m, k)
	sh.ghostAdd(k)
}

// evictMain drops the oldest main-queue entry without hits, giving hit
// entries a second chance (decrement and reinsert). Terminates because
// every pass over a surviving entry decrements its bounded counter.
func (sh *s3fifoShard) evictMain() {
	for sh.main.n > 0 {
		k := sh.main.pop()
		e := sh.m[k]
		if e.freq > 0 {
			e.freq--
			sh.m[k] = e
			sh.main.push(k)
			continue
		}
		delete(sh.m, k)
		return
	}
}

// ghostAdd remembers an eviction, aging out the oldest slot once the
// ghost ring is full. The set entry stores the slot's sequence number,
// so a popped slot only erases the memory it created — a stale slot
// (the key was resurrected, or re-remembered under a newer slot) ages
// out without touching the live entry.
func (sh *s3fifoShard) ghostAdd(k uint64) {
	if sh.ghostFIFO.n >= len(sh.ghostFIFO.buf) {
		oldK, oldSeq := sh.ghostFIFO.pop(), sh.ghostSeqs.pop()
		if sh.ghost[oldK] == oldSeq {
			delete(sh.ghost, oldK)
		}
	}
	sh.ghostSeq++
	sh.ghostFIFO.push(k)
	sh.ghostSeqs.push(sh.ghostSeq)
	sh.ghost[k] = sh.ghostSeq
}

func (c *s3fifoCache) len() int {
	total := 0
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		total += len(sh.m)
		sh.mu.Unlock()
	}
	return total
}

func (c *s3fifoCache) stats() CacheStats {
	s := CacheStats{Policy: PolicyS3FIFO, Shards: len(c.shards)}
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		s.Capacity += sh.smallCap + sh.mainCap
		s.Entries += len(sh.m)
		s.Small += sh.small.n
		s.Main += sh.main.n
		s.Ghost += len(sh.ghost)
		s.Hits += sh.hits
		s.Misses += sh.misses
		sh.mu.Unlock()
	}
	if total := s.Hits + s.Misses; total > 0 {
		s.HitRate = float64(s.Hits) / float64(total)
	}
	return s
}
