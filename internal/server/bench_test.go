package server

import (
	"math/rand"
	"testing"

	reach "repro"
	"repro/internal/gen"
	"repro/internal/graph"
)

func benchFixture(b *testing.B, cfg Config) (*Server, [][2]uint32) {
	b.Helper()
	raw := gen.CitationDAG(20000, 4, 0.5, 9)
	edges := make([][2]uint32, 0, raw.NumEdges())
	raw.Edges(func(u, v graph.Vertex) bool {
		edges = append(edges, [2]uint32{uint32(u), uint32(v)})
		return true
	})
	g, err := reach.NewGraph(raw.NumVertices(), edges)
	if err != nil {
		b.Fatal(err)
	}
	oracle, err := reach.Build(g, reach.MethodDL, reach.Options{})
	if err != nil {
		b.Fatal(err)
	}
	s := New(g, oracle, cfg)
	b.Cleanup(s.Close)

	rng := rand.New(rand.NewSource(33))
	n := uint32(g.NumVertices())
	pairs := make([][2]uint32, 1<<14)
	for i := range pairs {
		pairs[i] = [2]uint32{rng.Uint32() % n, rng.Uint32() % n}
	}
	return s, pairs
}

// BenchmarkServerBatch measures throughput of the batch path — cache +
// worker pool — the baseline later scaling PRs must beat.
func BenchmarkServerBatch(b *testing.B) {
	s, pairs := benchFixture(b, Config{})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.ReachableBatch(pairs)
	}
	b.StopTimer()
	qps := float64(b.N) * float64(len(pairs)) / b.Elapsed().Seconds()
	b.ReportMetric(qps, "queries/sec")
}

// BenchmarkCachedReachable measures the fully cache-hit single-query
// path: one warmup pass populates every pair, then all queries hit.
func BenchmarkCachedReachable(b *testing.B) {
	s, pairs := benchFixture(b, Config{})
	for _, p := range pairs {
		s.Reachable(p[0], p[1]) // warm the cache
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := pairs[i&(len(pairs)-1)]
		s.Reachable(p[0], p[1])
	}
	b.StopTimer()
	qps := float64(b.N) / b.Elapsed().Seconds()
	b.ReportMetric(qps, "queries/sec")
}

// BenchmarkUncachedReachable is the same path with the cache disabled —
// the spread between this and BenchmarkCachedReachable is what the cache
// buys on repeat-heavy workloads.
func BenchmarkUncachedReachable(b *testing.B) {
	s, pairs := benchFixture(b, Config{CacheCapacity: -1})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := pairs[i&(len(pairs)-1)]
		s.Reachable(p[0], p[1])
	}
	b.StopTimer()
	qps := float64(b.N) / b.Elapsed().Seconds()
	b.ReportMetric(qps, "queries/sec")
}
