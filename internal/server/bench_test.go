package server

import (
	"context"
	"fmt"
	"math/rand"
	"testing"

	reach "repro"
	"repro/internal/gen"
	"repro/internal/graph"
)

func benchFixture(b *testing.B, cfg Config) (*Server, [][2]uint32) {
	b.Helper()
	raw := gen.CitationDAG(20000, 4, 0.5, 9)
	edges := make([][2]uint32, 0, raw.NumEdges())
	raw.Edges(func(u, v graph.Vertex) bool {
		edges = append(edges, [2]uint32{uint32(u), uint32(v)})
		return true
	})
	g, err := reach.NewGraph(raw.NumVertices(), edges)
	if err != nil {
		b.Fatal(err)
	}
	oracle, err := reach.Build(g, reach.MethodDL, reach.Options{})
	if err != nil {
		b.Fatal(err)
	}
	s := New(g, oracle, cfg)
	b.Cleanup(s.Close)

	rng := rand.New(rand.NewSource(33))
	n := uint32(g.NumVertices())
	pairs := make([][2]uint32, 1<<14)
	for i := range pairs {
		pairs[i] = [2]uint32{rng.Uint32() % n, rng.Uint32() % n}
	}
	return s, pairs
}

// BenchmarkServerBatch measures throughput of the batch path — cache +
// worker pool — the baseline later scaling PRs must beat.
func BenchmarkServerBatch(b *testing.B) {
	s, pairs := benchFixture(b, Config{})
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.ReachableBatch(ctx, pairs)
	}
	b.StopTimer()
	qps := float64(b.N) * float64(len(pairs)) / b.Elapsed().Seconds()
	b.ReportMetric(qps, "queries/sec")
}

// BenchmarkCachedReachable measures the fully cache-hit single-query
// path: one warmup pass populates every pair, then all queries hit.
func BenchmarkCachedReachable(b *testing.B) {
	s, pairs := benchFixture(b, Config{})
	for _, p := range pairs {
		s.Reachable(p[0], p[1]) // warm the cache
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := pairs[i&(len(pairs)-1)]
		s.Reachable(p[0], p[1])
	}
	b.StopTimer()
	qps := float64(b.N) / b.Elapsed().Seconds()
	b.ReportMetric(qps, "queries/sec")
}

// zipfPairs draws a query stream whose pair popularity follows a Zipf
// distribution with exponent s over a universe of distinct pairs — the
// canonical model of the skewed, repeat-heavy traffic a public oracle
// endpoint sees, and the workload a cache admission policy is judged on.
func zipfPairs(n uint32, universe, count int, s float64, seed int64) [][2]uint32 {
	rng := rand.New(rand.NewSource(seed))
	distinct := make([][2]uint32, universe)
	for i := range distinct {
		distinct[i] = [2]uint32{rng.Uint32() % n, rng.Uint32() % n}
	}
	z := rand.NewZipf(rng, s, 1, uint64(universe-1))
	out := make([][2]uint32, count)
	for i := range out {
		out[i] = distinct[z.Uint64()]
	}
	return out
}

// BenchmarkCacheHitRateZipf measures each cache policy's steady-state
// hit rate under Zipfian traffic, at a cache an order of magnitude
// smaller than the distinct-pair universe so admission policy matters.
// The FIFO rows are the PR 1 baseline; the s3fifo rows are the policy
// reachd now defaults to, and TestZipfS3FIFOBeatsFIFO pins their
// ordering. queries/sec is the end-to-end throughput at that hit rate.
func BenchmarkCacheHitRateZipf(b *testing.B) {
	for _, policy := range []string{PolicyFIFO, PolicyS3FIFO} {
		for _, zs := range []float64{1.07, 1.5} {
			b.Run(fmt.Sprintf("policy=%s/s=%.2f", policy, zs), func(b *testing.B) {
				const universe = 1 << 16
				s, _ := benchFixture(b, Config{CachePolicy: policy, CacheCapacity: universe / 8})
				pairs := zipfPairs(uint32(s.g.NumVertices()), universe, 1<<17, zs, 41)
				// Warm to steady state, then measure from clean counters.
				for _, p := range pairs {
					s.Reachable(p[0], p[1])
				}
				before := s.Stats().Cache
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					p := pairs[i%len(pairs)]
					s.Reachable(p[0], p[1])
				}
				b.StopTimer()
				after := s.Stats().Cache
				if total := (after.Hits + after.Misses) - (before.Hits + before.Misses); total > 0 {
					rate := float64(after.Hits-before.Hits) / float64(total)
					b.ReportMetric(rate*100, "hit%")
				}
				b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "queries/sec")
			})
		}
	}
}

// BenchmarkUncachedReachable is the same path with the cache disabled —
// the spread between this and BenchmarkCachedReachable is what the cache
// buys on repeat-heavy workloads.
func BenchmarkUncachedReachable(b *testing.B) {
	s, pairs := benchFixture(b, Config{CacheCapacity: -1})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := pairs[i&(len(pairs)-1)]
		s.Reachable(p[0], p[1])
	}
	b.StopTimer()
	qps := float64(b.N) / b.Elapsed().Seconds()
	b.ReportMetric(qps, "queries/sec")
}
