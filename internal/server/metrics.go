package server

import (
	"sync/atomic"
	"time"

	"repro/internal/mux"
	"repro/internal/obs"
	"repro/internal/observe"
)

// metrics aggregates serving counters with lock-free atomics and
// per-stage latency histograms; every handler goroutine bumps them
// concurrently. The histograms answer the question the paper's claims
// hinge on — where do the microseconds go — stage by stage: whole
// request, cache lookup, index probe, batch chunk dispatch.
type metrics struct {
	start         time.Time
	queries       atomic.Int64 // pair-queries answered (single + batch)
	batchRequests atomic.Int64
	positive      atomic.Int64
	negative      atomic.Int64
	errors        atomic.Int64 // requests rejected with 4xx/5xx
	rejected      atomic.Int64 // 429s from the max-in-flight gate (not in errors)
	timedOut      atomic.Int64 // requests abandoned at their deadline (also in errors)

	// Wire-level batch traffic accounting, split by encoding so a -wire
	// ablation (or a mixed fleet) shows up directly in /metrics. rx is
	// request-body bytes read, tx response-body bytes written.
	wireFramesJSON   atomic.Int64
	wireFramesBinary atomic.Int64
	wireRxJSON       atomic.Int64
	wireTxJSON       atomic.Int64
	wireRxBinary     atomic.Int64
	wireTxBinary     atomic.Int64

	reg *obs.Registry
	// Request-level histograms, one per query endpoint. reqMux is the
	// batch endpoint served over the stream transport; its clock starts
	// at batch-function entry (the transport decoded the frame already),
	// the others at HTTP handler entry.
	reqReachable *obs.Histogram
	reqBatch     *obs.Histogram
	reqMux       *obs.Histogram
	// Stage histograms, recorded per pair (cache/probe) or per chunk.
	cacheDur *obs.Histogram
	probeDur *obs.Histogram
	chunkDur *obs.Histogram

	slow *obs.SlowLog
}

func newMetrics() *metrics {
	m := &metrics{start: time.Now(), reg: obs.NewRegistry()}
	m.reqReachable = m.reg.Histogram("reach_http_request_seconds",
		"End-to-end latency of query requests, from handler entry to response write.",
		obs.Labels{"endpoint": "reachable"})
	m.reqBatch = m.reg.Histogram("reach_http_request_seconds",
		"End-to-end latency of query requests, from handler entry to response write.",
		obs.Labels{"endpoint": "batch"})
	m.reqMux = m.reg.Histogram("reach_http_request_seconds",
		"End-to-end latency of query requests, from handler entry to response write.",
		obs.Labels{"endpoint": "mux"})
	m.cacheDur = m.reg.Histogram("reach_stage_seconds",
		"Per-stage serving latency: cache_lookup and index_probe per pair, chunk_dispatch per batch chunk.",
		obs.Labels{"stage": "cache_lookup"})
	m.probeDur = m.reg.Histogram("reach_stage_seconds",
		"Per-stage serving latency: cache_lookup and index_probe per pair, chunk_dispatch per batch chunk.",
		obs.Labels{"stage": "index_probe"})
	m.chunkDur = m.reg.Histogram("reach_stage_seconds",
		"Per-stage serving latency: cache_lookup and index_probe per pair, chunk_dispatch per batch chunk.",
		obs.Labels{"stage": "chunk_dispatch"})
	m.reg.CounterFunc("reach_queries_total", "Pair queries answered (single and batch).", nil, m.queries.Load)
	m.reg.CounterFunc("reach_positive_total", "Pair queries answered reachable.", nil, m.positive.Load)
	m.reg.CounterFunc("reach_negative_total", "Pair queries answered unreachable.", nil, m.negative.Load)
	m.reg.CounterFunc("reach_batch_requests_total", "POST /v1/batch requests accepted.", nil, m.batchRequests.Load)
	m.reg.CounterFunc("reach_errors_total", "Requests answered 4xx/5xx.", nil, m.errors.Load)
	m.reg.CounterFunc("reach_rejected_total", "Requests shed with 429 by the max-in-flight gate.", nil, m.rejected.Load)
	m.reg.CounterFunc("reach_timed_out_total", "Requests abandoned at their deadline.", nil, m.timedOut.Load)
	m.reg.CounterFunc("reach_wire_frames_total", "Batch frames handled on /v1/batch, by encoding.",
		obs.Labels{"encoding": "json"}, m.wireFramesJSON.Load)
	m.reg.CounterFunc("reach_wire_frames_total", "Batch frames handled on /v1/batch, by encoding.",
		obs.Labels{"encoding": "binary"}, m.wireFramesBinary.Load)
	m.reg.CounterFunc("reach_wire_bytes_total", "Batch body bytes on /v1/batch, by direction (rx = requests read, tx = responses written) and encoding.",
		obs.Labels{"direction": "rx", "encoding": "json"}, m.wireRxJSON.Load)
	m.reg.CounterFunc("reach_wire_bytes_total", "Batch body bytes on /v1/batch, by direction (rx = requests read, tx = responses written) and encoding.",
		obs.Labels{"direction": "tx", "encoding": "json"}, m.wireTxJSON.Load)
	m.reg.CounterFunc("reach_wire_bytes_total", "Batch body bytes on /v1/batch, by direction (rx = requests read, tx = responses written) and encoding.",
		obs.Labels{"direction": "rx", "encoding": "binary"}, m.wireRxBinary.Load)
	m.reg.CounterFunc("reach_wire_bytes_total", "Batch body bytes on /v1/batch, by direction (rx = requests read, tx = responses written) and encoding.",
		obs.Labels{"direction": "tx", "encoding": "binary"}, m.wireTxBinary.Load)
	// m.slow is assigned after newMetrics returns; the closure (unlike a
	// method value) picks up the final pointer at scrape time.
	m.reg.CounterFunc("reach_slow_queries_total", "Requests recorded in the slow-query log.", nil,
		func() int64 { return m.slow.Emitted() })
	m.reg.GaugeFunc("reach_uptime_seconds", "Seconds since the server was created.", nil,
		func() float64 { return time.Since(m.start).Seconds() })
	bi := obs.BuildInfo()
	m.reg.GaugeFunc("reach_build_info", "Build metadata carried as labels; the value is fixed at 1.",
		obs.Labels{"go_version": bi.GoVersion, "revision": bi.Revision}, func() float64 { return 1 })
	return m
}

// registerServer adds the gauges that need the fully-wired Server: the
// cache, the admission gate and the index exist only after New finishes
// its setup.
func (m *metrics) registerServer(s *Server) {
	if s.cache != nil {
		m.reg.CounterFunc("reach_cache_hits_total", "Query cache hits.", nil,
			func() int64 { return s.cache.stats().Hits })
		m.reg.CounterFunc("reach_cache_misses_total", "Query cache misses.", nil,
			func() int64 { return s.cache.stats().Misses })
		m.reg.GaugeFunc("reach_cache_entries", "Entries resident in the query cache.", nil,
			func() float64 { return float64(s.cache.stats().Entries) })
	}
	if s.gate != nil {
		m.reg.GaugeFunc("reach_in_flight", "Query requests currently holding a gate slot.", nil,
			func() float64 { return float64(len(s.gate)) })
	}
	m.reg.GaugeFunc("reach_index_size_ints", "Index size in integers.",
		obs.Labels{"method": s.oracle.Method()},
		func() float64 { return float64(s.oracle.IndexSizeInts()) })
	// One counter per observer kind, even with observers disabled: the
	// closures read through the oracle at scrape time, so the series
	// simply stay at 0 (and spring to life if a future oracle re-enables
	// the stack) rather than appearing and disappearing.
	for _, kind := range observe.Kinds() {
		kind := kind
		m.reg.CounterFunc("reach_observer_hits_total",
			"Pair queries decided by the observer fast path, by observer.",
			obs.Labels{"observer": kind.String()},
			func() int64 {
				if st := s.oracle.Observers(); st != nil {
					return st.Hits(kind)
				}
				return 0
			})
	}
}

// registerMux adds the stream-transport (internal/mux) series. Called
// from NewMuxServer rather than newMetrics: without a mux listener the
// series don't exist, matching how healthz omits the "mux" field.
func (m *metrics) registerMux(ms *mux.Server) {
	t := ms.Traffic()
	m.reg.GaugeFunc("reach_mux_conns", "Open stream-transport (mux) connections.", nil,
		func() float64 { return float64(ms.OpenConns()) })
	m.reg.CounterFunc("reach_mux_frames_total", "Stream-transport frames, by direction (rx = requests read, tx = responses written).",
		obs.Labels{"direction": "rx"}, t.FramesRx.Load)
	m.reg.CounterFunc("reach_mux_frames_total", "Stream-transport frames, by direction (rx = requests read, tx = responses written).",
		obs.Labels{"direction": "tx"}, t.FramesTx.Load)
	m.reg.CounterFunc("reach_mux_bytes_total", "Stream-transport bytes on the wire, by direction (rx = read, tx = written), envelopes and trace fields included.",
		obs.Labels{"direction": "rx"}, t.BytesRx.Load)
	m.reg.CounterFunc("reach_mux_bytes_total", "Stream-transport bytes on the wire, by direction (rx = read, tx = written), envelopes and trace fields included.",
		obs.Labels{"direction": "tx"}, t.BytesTx.Load)
}

// record tallies one answered pair-query.
// recordChunk folds one chunk's (or one single query's) local query
// counters into the server-wide atomics in one shot, keeping atomic
// traffic out of the per-pair loop.
func (m *metrics) recordChunk(cs *chunkStats) {
	m.queries.Add(cs.queries)
	m.positive.Add(cs.positive)
	m.negative.Add(cs.queries - cs.positive)
}

// ServerStats is the server section of /v1/stats.
type ServerStats struct {
	Queries       int64   `json:"queries"`
	BatchRequests int64   `json:"batch_requests"`
	Positive      int64   `json:"positive"`
	Negative      int64   `json:"negative"`
	Errors        int64   `json:"errors"`
	Rejected      int64   `json:"rejected"`
	TimedOut      int64   `json:"timed_out"`
	SlowQueries   int64   `json:"slow_queries"`
	InFlight      int     `json:"in_flight"`
	MaxInFlight   int     `json:"max_in_flight"`
	Workers       int     `json:"workers"`
	UptimeSeconds float64 `json:"uptime_seconds"`
}

func (m *metrics) snapshot(workers, inFlight, maxInFlight int) ServerStats {
	return ServerStats{
		Queries:       m.queries.Load(),
		BatchRequests: m.batchRequests.Load(),
		Positive:      m.positive.Load(),
		Negative:      m.negative.Load(),
		Errors:        m.errors.Load(),
		Rejected:      m.rejected.Load(),
		TimedOut:      m.timedOut.Load(),
		SlowQueries:   m.slow.Emitted(),
		InFlight:      inFlight,
		MaxInFlight:   maxInFlight,
		Workers:       workers,
		UptimeSeconds: time.Since(m.start).Seconds(),
	}
}
