package server

import (
	"sync/atomic"
	"time"
)

// metrics aggregates serving counters with lock-free atomics; every
// handler goroutine bumps them concurrently.
type metrics struct {
	start         time.Time
	queries       atomic.Int64 // pair-queries answered (single + batch)
	batchRequests atomic.Int64
	positive      atomic.Int64
	negative      atomic.Int64
	errors        atomic.Int64 // requests rejected with 4xx/5xx
	rejected      atomic.Int64 // 429s from the max-in-flight gate (not in errors)
	timedOut      atomic.Int64 // requests abandoned at their deadline (also in errors)
}

func newMetrics() *metrics { return &metrics{start: time.Now()} }

// record tallies one answered pair-query.
func (m *metrics) record(reachable bool) {
	m.queries.Add(1)
	if reachable {
		m.positive.Add(1)
	} else {
		m.negative.Add(1)
	}
}

// ServerStats is the server section of /v1/stats.
type ServerStats struct {
	Queries       int64   `json:"queries"`
	BatchRequests int64   `json:"batch_requests"`
	Positive      int64   `json:"positive"`
	Negative      int64   `json:"negative"`
	Errors        int64   `json:"errors"`
	Rejected      int64   `json:"rejected"`
	TimedOut      int64   `json:"timed_out"`
	InFlight      int     `json:"in_flight"`
	MaxInFlight   int     `json:"max_in_flight"`
	Workers       int     `json:"workers"`
	UptimeSeconds float64 `json:"uptime_seconds"`
}

func (m *metrics) snapshot(workers, inFlight, maxInFlight int) ServerStats {
	return ServerStats{
		Queries:       m.queries.Load(),
		BatchRequests: m.batchRequests.Load(),
		Positive:      m.positive.Load(),
		Negative:      m.negative.Load(),
		Errors:        m.errors.Load(),
		Rejected:      m.rejected.Load(),
		TimedOut:      m.timedOut.Load(),
		InFlight:      inFlight,
		MaxInFlight:   maxInFlight,
		Workers:       workers,
		UptimeSeconds: time.Since(m.start).Seconds(),
	}
}
