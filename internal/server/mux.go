package server

// The mux batch path: the same batch semantics as /v1/batch — results[i]
// answers pairs[i], unknown vertices answer false, same limits and
// overload behavior — served over the persistent raw-TCP stream
// transport (internal/mux) instead of HTTP. The transport owns framing,
// pipelining and connection state; this file supplies the batch
// semantics behind it and keeps the serving counters, histograms and
// slow-query log identical across transports, so /metrics reads the
// same whichever path a router negotiated. docs/WIRE.md ("Stream
// transport") is the normative protocol spec.

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"sync"
	"time"

	"repro/internal/mux"
)

// NewMuxServer builds the stream-transport front end for this server:
// handshakes carry the serving fingerprint (so enrollment-grade identity
// checks survive reconnects), batch frames run through the same gate,
// cache and worker pool as HTTP requests, and the reach_mux_* metrics
// are registered on the server's /metrics registry. The caller owns the
// listener and lifecycle: bind, pass the resolved address as
// Config.MuxAddr, then Serve and Shutdown the returned server.
func (s *Server) NewMuxServer(logf func(string, ...any)) *mux.Server {
	ms := mux.NewServer(mux.ServerConfig{
		Batch:         s.muxBatch,
		Fingerprint:   s.fingerprint,
		MaxBatchPairs: s.cfg.MaxBatchPairs,
		Logf:          logf,
	})
	s.met.registerMux(ms)
	return ms
}

// muxTracePool recycles per-batch stage accumulators: the struct is all
// atomics, so reuse is three stores, and the steady-state mux path stays
// allocation-free end to end.
var muxTracePool = sync.Pool{New: func() any { return new(queryTrace) }}

// muxBatch is the mux.BatchFunc behind the stream transport — the
// transport-independent core of handleBatchBinary. Failures return
// *mux.Fail with the HTTP status the equivalent HTTP request would have
// gotten, so router-side error handling is transport-agnostic.
func (s *Server) muxBatch(ctx context.Context, trace string, pairs [][2]uint32, out []bool) error {
	// Admission control first, exactly like the HTTP guard: a saturated
	// server answers in microseconds instead of queueing frames. 429s
	// count as rejected, not errors, on both transports.
	if s.gate != nil {
		select {
		case s.gate <- struct{}{}:
			defer func() { <-s.gate }()
		default:
			s.met.rejected.Add(1)
			return &mux.Fail{Status: http.StatusTooManyRequests,
				Msg: fmt.Sprintf("server at max in-flight requests (%d); retry later", s.cfg.MaxInFlight)}
		}
	}
	if s.cfg.RequestTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.cfg.RequestTimeout)
		defer cancel()
	}
	start := time.Now()
	tr := muxTracePool.Get().(*queryTrace)
	tr.cacheNs.Store(0)
	tr.probeNs.Store(0)
	tr.cacheHits.Store(0)
	defer muxTracePool.Put(tr)

	s.met.batchRequests.Add(1)
	// Resolve in place, like the binary HTTP path: stream-transport IDs
	// are uint32 by construction (routers with wider IDs fall back to
	// JSON over HTTP), unknown IDs answer false.
	t0 := time.Now()
	for i := range pairs {
		du, _ := s.resolve(uint64(pairs[i][0]))
		dv, _ := s.resolve(uint64(pairs[i][1]))
		pairs[i][0], pairs[i][1] = du, dv
	}
	resolve := time.Since(t0)

	err := s.reachableBatchInto(ctx, pairs, out, tr)
	total := time.Since(start)
	s.met.reqMux.RecordDuration(total)
	status := http.StatusOK
	var ret error
	if err != nil {
		status = http.StatusServiceUnavailable
		ret = s.muxAbandoned(err)
	}
	if s.met.slow.Slow(total) {
		cacheNs := tr.cacheNs.Load()
		probeNs := tr.probeNs.Load()
		s.met.slow.Emit(SlowQueryRecord{
			Time:       time.Now().UTC().Format(time.RFC3339Nano),
			Trace:      trace,
			Endpoint:   "mux",
			Status:     status,
			DurationMS: float64(total) / 1e6,
			Pairs:      len(pairs),
			CacheHits:  tr.cacheHits.Load(),
			StagesMS: map[string]float64{
				"resolve": float64(resolve) / 1e6,
				"cache":   float64(cacheNs) / 1e6,
				"probe":   float64(probeNs) / 1e6,
			},
		})
	}
	return ret
}

// muxAbandoned is failTimeout for the stream transport: the batch's
// context ended, answer 503 so routers read it as transient pressure,
// with the same timed_out/errors accounting as HTTP.
func (s *Server) muxAbandoned(err error) error {
	if errors.Is(err, context.DeadlineExceeded) {
		s.met.timedOut.Add(1)
	}
	s.met.errors.Add(1)
	return &mux.Fail{Status: http.StatusServiceUnavailable, Msg: "request abandoned: " + err.Error()}
}
