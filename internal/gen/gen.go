// Package gen produces synthetic directed acyclic graphs from several
// structural families. The reachability literature's benchmark datasets
// (Table 1 of Jin & Wang, VLDB 2013) are not redistributable, so
// internal/dataset maps each of them to one of these generators with a
// matching vertex/edge budget; the families below control exactly the
// properties the compared algorithms are sensitive to (density, depth,
// degree skew, transitive-closure size).
//
// All generators are deterministic given a seed and always return a DAG
// whose vertex IDs are NOT aligned with a topological order (a hidden random
// permutation decides edge orientation), so indexes cannot accidentally
// exploit ID ordering.
package gen

import (
	"math"
	"math/rand"

	"repro/internal/graph"
)

// permOrient returns an orientation function over a hidden random
// permutation: edges always go from lower to higher permutation rank,
// guaranteeing acyclicity without correlating vertex IDs with depth.
func permOrient(rng *rand.Rand, n int) func(u, v graph.Vertex) (graph.Vertex, graph.Vertex) {
	pos := rng.Perm(n)
	return func(u, v graph.Vertex) (graph.Vertex, graph.Vertex) {
		if pos[u] > pos[v] {
			return v, u
		}
		return u, v
	}
}

// UniformDAG returns a DAG with n vertices and about m uniformly random
// edges (duplicates are coalesced, so the realized count can be slightly
// lower). Models unstructured sparse graphs such as p2p.
func UniformDAG(n, m int, seed int64) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	orient := permOrient(rng, n)
	b := graph.NewBuilder(n)
	for i := 0; i < m; i++ {
		u := graph.Vertex(rng.Intn(n))
		v := graph.Vertex(rng.Intn(n))
		if u == v {
			continue
		}
		u, v = orient(u, v)
		b.AddEdge(u, v)
	}
	return b.MustBuild()
}

// TreeDAG returns a random rooted tree (every vertex except the root has
// exactly one parent chosen among earlier vertices) plus extra*n additional
// forward edges. extra = 0.05 reproduces the sparse metabolic/bio DAGs
// (agrocyc, ecoo, human, ...) whose edge counts are just above their vertex
// counts. A locality parameter concentrates parents among recent vertices,
// producing the deep, narrow shape of those datasets.
func TreeDAG(n int, extra float64, locality int, seed int64) *graph.Graph {
	if n == 0 {
		return graph.NewBuilder(0).MustBuild()
	}
	rng := rand.New(rand.NewSource(seed))
	perm := rng.Perm(n) // perm[i] = vertex label of the i-th generated node
	b := graph.NewBuilder(n)
	for i := 1; i < n; i++ {
		lo := 0
		if locality > 0 && i > locality {
			lo = i - locality
		}
		p := lo + rng.Intn(i-lo)
		b.AddEdge(graph.Vertex(perm[p]), graph.Vertex(perm[i]))
	}
	nExtra := int(extra * float64(n))
	for e := 0; e < nExtra; e++ {
		i := rng.Intn(n)
		j := rng.Intn(n)
		if i == j {
			continue
		}
		if i > j {
			i, j = j, i
		}
		b.AddEdge(graph.Vertex(perm[i]), graph.Vertex(perm[j]))
	}
	return b.MustBuild()
}

// CitationDAG models citation networks (arxiv, citeseer, cit-Patents):
// vertices arrive over time and cite earlier vertices, mixing recency bias
// with preferential attachment. avgRefs is the mean out-degree; pref in
// [0,1] is the fraction of citations chosen preferentially by in-degree.
func CitationDAG(n int, avgRefs float64, pref float64, seed int64) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	perm := rng.Perm(n)
	b := graph.NewBuilder(n)
	// endpoints receives one entry per citation target, so sampling from it
	// is sampling proportional to (in-degree + implicit smoothing).
	endpoints := make([]int, 0, int(avgRefs*float64(n)))
	for i := 1; i < n; i++ {
		refs := poisson(rng, avgRefs)
		if refs < 1 {
			refs = 1
		}
		for r := 0; r < refs; r++ {
			var tgt int
			if len(endpoints) > 0 && rng.Float64() < pref {
				tgt = endpoints[rng.Intn(len(endpoints))]
			} else {
				// Recency bias: quadratic skew toward recent vertices.
				f := rng.Float64()
				tgt = int(float64(i) * (1 - f*f))
				if tgt >= i {
					tgt = i - 1
				}
			}
			// The citing vertex is newer: edge newer -> older.
			b.AddEdge(graph.Vertex(perm[i]), graph.Vertex(perm[tgt]))
			endpoints = append(endpoints, tgt)
		}
	}
	return b.MustBuild()
}

// PowerLawDAG returns a DAG with n vertices, about m edges, and Zipf-skewed
// degree distribution with exponent s (heavier skew for smaller s close to
// 1). Models web/wiki/social graphs after SCC condensation.
func PowerLawDAG(n, m int, s float64, seed int64) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	if s <= 1.0 {
		s = 1.01
	}
	zipf := rand.NewZipf(rng, s, 1, uint64(n-1))
	orient := permOrient(rng, n)
	// Random relabeling so the hubs are not the same vertices as the Zipf
	// ranks (which would correlate with nothing, but mirrors real data).
	relabel := rng.Perm(n)
	b := graph.NewBuilder(n)
	for i := 0; i < m; i++ {
		u := graph.Vertex(relabel[int(zipf.Uint64())])
		v := graph.Vertex(rng.Intn(n))
		if u == v {
			continue
		}
		u, v = orient(u, v)
		b.AddEdge(u, v)
	}
	return b.MustBuild()
}

// ForestDAG returns a forest of numTrees random trees covering n vertices
// (m = n - numTrees). Models the uniprotenc family, whose edge counts are
// exactly |V| - 2: gigantic near-forests that are trivial for interval
// indexes but stress construction scalability.
func ForestDAG(n, numTrees int, seed int64) *graph.Graph {
	if numTrees < 1 {
		numTrees = 1
	}
	if numTrees > n {
		numTrees = n
	}
	rng := rand.New(rand.NewSource(seed))
	perm := rng.Perm(n)
	b := graph.NewBuilder(n)
	for i := numTrees; i < n; i++ {
		// Parent uniform among earlier generated vertices, skewed toward
		// recent ones half the time to vary tree shapes.
		var p int
		if rng.Intn(2) == 0 && i > 16 {
			p = i - 1 - rng.Intn(16)
		} else {
			p = rng.Intn(i)
		}
		b.AddEdge(graph.Vertex(perm[p]), graph.Vertex(perm[i]))
	}
	return b.MustBuild()
}

// XMLDAG models XML/document datasets (xmark, nasa): a wide shallow tree
// (fanout between 2 and maxFanout) plus idrefFrac*n cross-reference edges.
func XMLDAG(n int, maxFanout int, idrefFrac float64, seed int64) *graph.Graph {
	if maxFanout < 2 {
		maxFanout = 2
	}
	rng := rand.New(rand.NewSource(seed))
	perm := rng.Perm(n)
	b := graph.NewBuilder(n)
	next := 1
	for parent := 0; parent < n && next < n; parent++ {
		fanout := 2 + rng.Intn(maxFanout-1)
		for c := 0; c < fanout && next < n; c++ {
			b.AddEdge(graph.Vertex(perm[parent]), graph.Vertex(perm[next]))
			next++
		}
	}
	nRef := int(idrefFrac * float64(n))
	for e := 0; e < nRef; e++ {
		i := rng.Intn(n)
		j := rng.Intn(n)
		if i == j {
			continue
		}
		if i > j {
			i, j = j, i
		}
		b.AddEdge(graph.Vertex(perm[i]), graph.Vertex(perm[j]))
	}
	return b.MustBuild()
}

// ChainDAG models metabolic-pathway graphs (kegg, amaze): many long chains
// (pathways) with occasional branch and merge edges, giving diameter much
// larger than random graphs of the same size.
func ChainDAG(n, numChains int, crossFrac float64, seed int64) *graph.Graph {
	if numChains < 1 {
		numChains = 1
	}
	rng := rand.New(rand.NewSource(seed))
	perm := rng.Perm(n)
	b := graph.NewBuilder(n)
	chainOf := make([]int, n)
	posInChain := make([]int, n)
	chainLen := n / numChains
	if chainLen < 2 {
		chainLen = 2
	}
	for i := 0; i < n; i++ {
		chainOf[i] = i / chainLen
		posInChain[i] = i % chainLen
		if posInChain[i] > 0 {
			b.AddEdge(graph.Vertex(perm[i-1]), graph.Vertex(perm[i]))
		}
	}
	// Cross edges: connect a vertex to a vertex in another chain at a
	// strictly larger in-chain position, oriented by generation index so the
	// result stays acyclic.
	nCross := int(crossFrac * float64(n))
	for e := 0; e < nCross; e++ {
		i := rng.Intn(n)
		j := rng.Intn(n)
		if i == j || chainOf[i] == chainOf[j] {
			continue
		}
		if i > j {
			i, j = j, i
		}
		b.AddEdge(graph.Vertex(perm[i]), graph.Vertex(perm[j]))
	}
	return b.MustBuild()
}

// LayeredDAG returns a DAG organized in layers (like circuit or workflow
// graphs): n vertices split into layers, edges only between consecutive
// layers. Used by tests that need controllable depth.
func LayeredDAG(n, layers, avgOut int, seed int64) *graph.Graph {
	if layers < 1 {
		layers = 1
	}
	rng := rand.New(rand.NewSource(seed))
	perm := rng.Perm(n)
	per := n / layers
	if per < 1 {
		per = 1
	}
	layerOf := func(i int) int {
		l := i / per
		if l >= layers {
			l = layers - 1
		}
		return l
	}
	b := graph.NewBuilder(n)
	for i := 0; i < n; i++ {
		l := layerOf(i)
		if l+1 >= layers {
			continue
		}
		lo := (l + 1) * per
		hi := (l + 2) * per
		if hi > n {
			hi = n
		}
		if lo >= n {
			continue
		}
		for e := 0; e < avgOut; e++ {
			j := lo + rng.Intn(hi-lo)
			b.AddEdge(graph.Vertex(perm[i]), graph.Vertex(perm[j]))
		}
	}
	return b.MustBuild()
}

// poisson samples a Poisson variate with mean lambda (Knuth's method; fine
// for the small lambdas used here).
func poisson(rng *rand.Rand, lambda float64) int {
	if lambda <= 0 {
		return 0
	}
	L := math.Exp(-lambda)
	k, p := 0, 1.0
	for {
		k++
		p *= rng.Float64()
		if p <= L {
			return k - 1
		}
	}
}
