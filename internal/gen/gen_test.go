package gen

import (
	"testing"
	"testing/quick"

	"repro/internal/graph"
)

// checkDAG asserts g is a valid acyclic graph with roughly the requested
// size.
func checkDAG(t *testing.T, g *graph.Graph, wantN int, minM, maxM int) {
	t.Helper()
	if err := g.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if !graph.IsDAG(g) {
		t.Fatal("generator produced a cycle")
	}
	if g.NumVertices() != wantN {
		t.Fatalf("n = %d, want %d", g.NumVertices(), wantN)
	}
	if g.NumEdges() < minM || g.NumEdges() > maxM {
		t.Fatalf("m = %d, want in [%d, %d]", g.NumEdges(), minM, maxM)
	}
}

func TestUniformDAG(t *testing.T) {
	g := UniformDAG(500, 1500, 1)
	checkDAG(t, g, 500, 1200, 1500)
}

func TestUniformDAGDeterministic(t *testing.T) {
	a := UniformDAG(300, 900, 42)
	b := UniformDAG(300, 900, 42)
	ae, be := a.EdgeList(), b.EdgeList()
	if len(ae) != len(be) {
		t.Fatal("same seed produced different edge counts")
	}
	for i := range ae {
		if ae[i] != be[i] {
			t.Fatal("same seed produced different edges")
		}
	}
	c := UniformDAG(300, 900, 43)
	if len(c.EdgeList()) == len(ae) {
		same := true
		ce := c.EdgeList()
		for i := range ae {
			if ae[i] != ce[i] {
				same = false
				break
			}
		}
		if same {
			t.Fatal("different seeds produced identical graphs")
		}
	}
}

func TestTreeDAG(t *testing.T) {
	g := TreeDAG(1000, 0.05, 0, 2)
	checkDAG(t, g, 1000, 999, 1049)
	// A tree with few extras must have exactly one root-ish component: the
	// underlying tree guarantees every non-root vertex has an ancestor path.
	if roots := g.Roots(); len(roots) != 1 {
		t.Errorf("TreeDAG has %d roots, want 1", len(roots))
	}
}

func TestTreeDAGLocalityDeepens(t *testing.T) {
	shallow := graph.ComputeStats(TreeDAG(2000, 0, 0, 3))
	deep := graph.ComputeStats(TreeDAG(2000, 0, 8, 3))
	if deep.Depth <= shallow.Depth {
		t.Errorf("locality did not deepen the tree: shallow=%d deep=%d", shallow.Depth, deep.Depth)
	}
}

func TestCitationDAG(t *testing.T) {
	g := CitationDAG(2000, 4.0, 0.5, 4)
	checkDAG(t, g, 2000, 2000, 12000)
	s := graph.ComputeStats(g)
	if s.AvgDegree < 2.0 {
		t.Errorf("citation graph too sparse: %v", s)
	}
}

func TestPowerLawDAGSkew(t *testing.T) {
	g := PowerLawDAG(3000, 9000, 1.3, 5)
	checkDAG(t, g, 3000, 4000, 9000)
	s := graph.ComputeStats(g)
	// Power-law graphs have hub vertices with degree far above average.
	if float64(s.MaxOutDegree) < 8*s.AvgDegree {
		t.Errorf("no hubs: maxOut=%d avg=%.2f", s.MaxOutDegree, s.AvgDegree)
	}
}

func TestForestDAG(t *testing.T) {
	g := ForestDAG(5000, 3, 6)
	checkDAG(t, g, 5000, 4997, 4997)
	if roots := g.Roots(); len(roots) != 3 {
		t.Errorf("forest has %d roots, want 3", len(roots))
	}
	// Every non-root vertex has exactly one parent.
	for v := 0; v < g.NumVertices(); v++ {
		if d := g.InDegree(graph.Vertex(v)); d > 1 {
			t.Fatalf("vertex %d has in-degree %d in a forest", v, d)
		}
	}
}

func TestXMLDAG(t *testing.T) {
	g := XMLDAG(3000, 6, 0.15, 7)
	checkDAG(t, g, 3000, 2999, 3449)
}

func TestChainDAGDeep(t *testing.T) {
	g := ChainDAG(2000, 10, 0.1, 8)
	checkDAG(t, g, 2000, 1900, 2190)
	s := graph.ComputeStats(g)
	if s.Depth < 150 {
		t.Errorf("chain graph not deep: depth=%d", s.Depth)
	}
}

func TestLayeredDAG(t *testing.T) {
	g := LayeredDAG(1000, 10, 3, 9)
	checkDAG(t, g, 1000, 500, 2700)
	s := graph.ComputeStats(g)
	if s.Depth >= 10 {
		t.Errorf("layered depth %d, want < layers", s.Depth)
	}
}

func TestGeneratorsSmallSizes(t *testing.T) {
	// Degenerate sizes must not panic or cycle.
	gens := []*graph.Graph{
		UniformDAG(1, 5, 1), UniformDAG(2, 3, 1),
		TreeDAG(0, 0.1, 0, 1), TreeDAG(1, 0.1, 0, 1), TreeDAG(2, 1.0, 1, 1),
		CitationDAG(2, 3, 0.9, 1), PowerLawDAG(3, 5, 1.5, 1),
		ForestDAG(1, 1, 1), ForestDAG(4, 9, 1),
		XMLDAG(2, 2, 0.5, 1), ChainDAG(3, 5, 0.5, 1), LayeredDAG(5, 20, 2, 1),
	}
	for i, g := range gens {
		if err := g.Validate(); err != nil {
			t.Errorf("generator %d: %v", i, err)
		}
		if !graph.IsDAG(g) {
			t.Errorf("generator %d produced a cycle", i)
		}
	}
}

// Property: every family is acyclic for arbitrary seeds.
func TestAllFamiliesAcyclicProperty(t *testing.T) {
	f := func(seed int64) bool {
		return graph.IsDAG(UniformDAG(60, 150, seed)) &&
			graph.IsDAG(TreeDAG(60, 0.2, 4, seed)) &&
			graph.IsDAG(CitationDAG(60, 3, 0.5, seed)) &&
			graph.IsDAG(PowerLawDAG(60, 150, 1.4, seed)) &&
			graph.IsDAG(ForestDAG(60, 2, seed)) &&
			graph.IsDAG(XMLDAG(60, 4, 0.2, seed)) &&
			graph.IsDAG(ChainDAG(60, 4, 0.2, seed)) &&
			graph.IsDAG(LayeredDAG(60, 5, 2, seed))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}
