package pwahidx

import (
	"fmt"

	"repro/internal/blockio"
	"repro/internal/graph"
	"repro/internal/index"
	"repro/internal/pwah"
)

func init() {
	index.Register(index.Descriptor{
		Tag:  "PW8",
		Rank: 4,
		Doc:  "PWAH-8 compressed-bitvector transitive closure (van Schaik & de Moor)",
		Build: func(g *graph.Graph, _ index.BuildOptions) (index.Index, error) {
			return Build(g), nil
		},
		Encode: func(idx index.Index, w *blockio.Writer) error {
			p, ok := idx.(*PWAH)
			if !ok {
				return fmt.Errorf("pwahidx: codec got %T", idx)
			}
			w.Uint32s(p.po)
			off := make([]uint32, len(p.reach)+1)
			parts := make([]uint32, len(p.reach))
			total := 0
			for v, vec := range p.reach {
				total += vec.Words()
				off[v+1] = uint32(total)
				parts[v] = uint32(vec.Parts())
			}
			w.Uint32s(off)
			w.Uint32s(parts)
			flat := make([]uint64, 0, total)
			for _, vec := range p.reach {
				flat = append(flat, vec.RawWords()...)
			}
			w.Uint64s(flat)
			return w.Err()
		},
		Decode: func(g *graph.Graph, r *blockio.Reader, _ index.BuildOptions) (index.Index, error) {
			n := g.NumVertices()
			po, err := r.Uint32s()
			if err != nil {
				return nil, err
			}
			if len(po) != n {
				return nil, fmt.Errorf("pwahidx: numbering has %d entries for %d vertices", len(po), n)
			}
			off, err := r.Uint32s()
			if err != nil {
				return nil, err
			}
			if len(off) != n+1 || off[0] != 0 {
				return nil, fmt.Errorf("pwahidx: word offsets have %d entries for %d vertices", len(off), n)
			}
			for v := 0; v < n; v++ {
				if off[v] > off[v+1] {
					return nil, fmt.Errorf("pwahidx: word offsets not monotone at %d", v)
				}
			}
			parts, err := r.Uint32s()
			if err != nil {
				return nil, err
			}
			if len(parts) != n {
				return nil, fmt.Errorf("pwahidx: partition counts have %d entries for %d vertices", len(parts), n)
			}
			flat, err := r.Uint64s()
			if err != nil {
				return nil, err
			}
			if int(off[n]) != len(flat) {
				return nil, fmt.Errorf("pwahidx: word offsets cover %d words but %d present", off[n], len(flat))
			}
			idx := &PWAH{po: po, reach: make([]*pwah.Vector, n)}
			for v := 0; v < n; v++ {
				// FromEncoded clamps an oversized partition count, so a
				// corrupt parts[v] cannot push the scan past its words.
				idx.reach[v] = pwah.FromEncoded(flat[off[v]:off[v+1]], int(parts[v]))
			}
			return idx, nil
		},
	})
}
