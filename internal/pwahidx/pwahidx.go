// Package pwahidx implements the PWAH-8 compressed-bitvector transitive
// closure index of van Schaik & de Moor (SIGMOD 2011) — the "PW8" baseline.
// TC(v) is a PWAH-8 compressed bitvector over DFS post-order vertex
// numbers, built by compressed-domain ORs in reverse topological order;
// membership queries scan the compressed words sequentially (the access
// pattern whose cost the paper's query tables expose on large graphs).
package pwahidx

import (
	"repro/internal/graph"
	"repro/internal/pwah"
)

// PWAH is the PW8 reachability index.
type PWAH struct {
	po    []uint32
	reach []*pwah.Vector
}

// Build constructs the PW8 index for DAG g.
func Build(g *graph.Graph) *PWAH {
	n := g.NumVertices()
	idx := &PWAH{po: make([]uint32, n), reach: make([]*pwah.Vector, n)}
	// Reuse the same post-order renumbering trick as the interval index:
	// contiguous descendant runs compress into fills.
	idx.po = graph.PostOrder(g)
	order, ok := graph.TopoOrder(g)
	if !ok {
		panic("pwahidx: input must be a DAG")
	}
	for i := len(order) - 1; i >= 0; i-- {
		v := order[i]
		vec := pwah.FromSorted([]uint32{idx.po[v]})
		for _, w := range g.Out(v) {
			vec = pwah.Or(vec, idx.reach[w])
		}
		idx.reach[v] = vec
	}
	return idx
}

// Name implements index.Index.
func (idx *PWAH) Name() string { return "PW8" }

// Reachable reports u -> v by scanning TC(u)'s compressed bitvector.
func (idx *PWAH) Reachable(u, v uint32) bool {
	if u == v {
		return true
	}
	return idx.reach[u].Contains(idx.po[v])
}

// SizeInts counts compressed words (two 32-bit integers each) plus the
// renumbering array.
func (idx *PWAH) SizeInts() int64 {
	total := int64(len(idx.po))
	for _, vec := range idx.reach {
		total += vec.SizeInts()
	}
	return total
}
