package pwahidx

import (
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/intervalidx"
	"repro/internal/testutil"
)

func TestPWAHExhaustive(t *testing.T) {
	for name, g := range testutil.Families(19) {
		testutil.CheckExhaustive(t, name, g, Build(g))
	}
}

func TestPWAHCompressesTrees(t *testing.T) {
	g := gen.ForestDAG(4000, 1, 3)
	idx := Build(g)
	// Postorder renumbering turns subtree closures into single fills:
	// expect a handful of words per vertex.
	if idx.SizeInts() > int64(8*g.NumVertices()) {
		t.Errorf("tree index size %d not near-linear (n=%d)", idx.SizeInts(), g.NumVertices())
	}
	testutil.CheckRandom(t, "forest", g, idx, 600, 2)
}

func TestPWAHSmallerThanIntervalOnScatteredClosures(t *testing.T) {
	// On dense graphs with scattered reachable sets, bit-packed literals
	// beat two-integer intervals — the memory argument of the PWAH paper.
	g := gen.CitationDAG(1500, 5, 0.6, 9)
	pw := Build(g)
	iv := intervalidx.Build(g)
	if pw.SizeInts() >= iv.SizeInts() {
		t.Errorf("PW8 (%d ints) not smaller than INT (%d ints) on dense graph",
			pw.SizeInts(), iv.SizeInts())
	}
}

func TestPWAHPanicsOnCycle(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic on cyclic input")
		}
	}()
	Build(graph.MustFromEdges(2, [][2]graph.Vertex{{0, 1}, {1, 0}}))
}
