// Package observe implements the nanosecond fast path that sits in front
// of every reachability index: a stack of O(1) "observers" in the style
// of O'Reach (Hanauer, Schulz & Trobst, SEA 2022) that decide most
// queries before the index is touched, with the full oracle as fallback.
//
// Three observers, tried cheapest first:
//
//  1. Degenerate short-circuits — a source with out-degree 0 or a target
//     with in-degree 0 cannot participate in any non-trivial path. In a
//     topological order out-degree 0 is exactly fmax[v] = pos[v] (and
//     in-degree 0 is bmin[v] = pos[v]), so the check costs two equality
//     tests on values the next observer loads anyway — no CSR access.
//  2. Topological interval pruning — pos[v] is v's position in one fixed
//     topological order of the condensation DAG; fmax[v] is the maximum
//     position over everything v reaches, bmin[v] the minimum position
//     over everything that reaches v. s can only reach t when
//     pos[s] < pos[t] ≤ fmax[s] and bmin[t] ≤ pos[s]: any query outside
//     those intervals is definitely unreachable. Four array loads.
//  3. Supportive vertices — k ≈ O(log n) high-coverage vertices (the
//     degree-product rank of internal/order, the same importance measure
//     the paper's Distribution-Labeling hops on) whose full forward and
//     backward reachability is precomputed with internal/bitset BFS
//     sweeps and then transposed into two per-vertex k-bit masks:
//     fwd[v] bit i ⇔ sup[i] reaches v, bwd[v] bit i ⇔ v reaches sup[i].
//     One AND answers both directions of certificate:
//     bwd[s] & fwd[t] ≠ 0       ⇒ s → sup[i] → t, definitely reachable;
//     fwd[s] &^ fwd[t] ≠ 0      ⇒ sup[i] reaches s but not t, so s
//     cannot reach t (else sup[i] would reach t through s);
//     bwd[t] &^ bwd[s] ≠ 0      ⇒ t reaches sup[i] but s does not,
//     symmetric negative certificate.
//
// The execution order deviates from the conceptual presentation
// (topological, supportive, degenerate) because cost ranks the other
// way — and because the degenerate check is subsumed by the interval
// bounds (out-degree 0 forces fmax[s] = pos[s]), so running it last
// would make it dead code rather than the cheapest first exit.
//
// Query reads nothing but two entries of one interleaved per-vertex
// record array (32 bytes each, two per cache line): the whole stack
// costs at most two cache misses per query, which is what keeps the
// fast path profitable even in front of sub-100ns label indexes. The
// parallel column slices are kept as the canonical (and snapshot-
// encoded) form; the record array is derived from them after Build or
// DecodeSection.
//
// A Stack is immutable after Build/DecodeSection and safe for concurrent
// use; the per-observer hit counters are relaxed atomics (see bump),
// incremented once per decided query (fallthroughs bump nothing, so the
// fall-through count is total queries minus the sum of hits).
package observe

import (
	"math/bits"
	"sync/atomic"
	"time"

	"repro/internal/bitset"
	"repro/internal/graph"
	"repro/internal/order"
)

// Verdict is an observer decision: a definite answer, or Unknown when
// the query must fall through to the index.
type Verdict int8

const (
	// Unknown means no observer could decide; ask the index.
	Unknown Verdict = iota
	// Positive means s definitely reaches t.
	Positive
	// Negative means s definitely does not reach t.
	Negative
)

// Kind identifies one observer for hit accounting.
type Kind uint8

const (
	// Degenerate is the out-degree-0 source / in-degree-0 target check.
	Degenerate Kind = iota
	// TopoInterval is topological position + reachable-interval pruning.
	TopoInterval
	// SupportivePositive is a supportive-vertex s→w→t certificate.
	SupportivePositive
	// SupportiveNegative is a supportive-vertex unreachability certificate.
	SupportiveNegative

	numKinds
)

// String returns the metric label for the observer
// (reach_observer_hits_total{observer=...}).
func (k Kind) String() string {
	switch k {
	case Degenerate:
		return "degenerate"
	case TopoInterval:
		return "topo_interval"
	case SupportivePositive:
		return "supportive_positive"
	case SupportiveNegative:
		return "supportive_negative"
	default:
		return "unknown"
	}
}

// Kinds lists every observer in execution order.
func Kinds() []Kind {
	return []Kind{Degenerate, TopoInterval, SupportivePositive, SupportiveNegative}
}

// MaxSupportive caps the supportive-vertex count: the per-vertex masks
// are single uint64 words, which is exactly what makes the supportive
// check a handful of ALU ops regardless of k.
const MaxSupportive = 64

// Config tunes Build. The zero value is the default configuration.
type Config struct {
	// Supportive is the number of supportive vertices to precompute
	// (0 = automatic ≈ 2·log₂(n), capped at MaxSupportive).
	Supportive int
}

// Stack is the precomputed observer state for one DAG. Immutable after
// construction; all methods are safe for concurrent use.
type Stack struct {
	// pos[v] is v's position in one fixed topological order.
	pos []int32
	// fmax[v] is the maximum pos over the forward-reachable set of v
	// (including v itself).
	fmax []int32
	// bmin[v] is the minimum pos over the backward-reachable set of v.
	bmin []int32
	// sup lists the supportive vertices; bit i of the masks below refers
	// to sup[i].
	sup []uint32
	// fwd[v] bit i ⇔ sup[i] reaches v. bwd[v] bit i ⇔ v reaches sup[i].
	fwd []uint64
	bwd []uint64

	// rec is the query-time form of the five per-vertex columns above,
	// interleaved so one endpoint costs one cache line instead of five.
	rec []vrec

	hits [numKinds]atomic.Int64

	// precompute is how long Build (or DecodeSection) took — the cost an
	// operator pays for the fast path, surfaced in /v1/stats.
	precompute time.Duration
	// fromSnapshot records that the stack was decoded rather than built.
	fromSnapshot bool
}

// vrec packs one vertex's observer state into 32 bytes — half a cache
// line, so a query's two endpoint loads touch at most two lines.
//
//reach:wire
type vrec struct {
	pos, fmax, bmin int32
	_               int32 // pad to a power-of-two size
	fwd, bwd        uint64
}

// buildRec derives the interleaved query array from the column slices;
// called once at the end of Build and DecodeSection.
func (st *Stack) buildRec() {
	st.rec = make([]vrec, len(st.pos))
	for i := range st.rec {
		st.rec[i] = vrec{
			pos: st.pos[i], fmax: st.fmax[i], bmin: st.bmin[i],
			fwd: st.fwd[i], bwd: st.bwd[i],
		}
	}
}

// autoSupportive picks the default supportive-vertex count for an
// n-vertex DAG: about four per doubling of the graph — twice the
// ~O(log n) budget O'Reach found sufficient — because the per-vertex
// masks are fixed 64-bit words no matter how many bits are used, so
// extra supportive vertices cost build-time sweeps only, and their
// positive coverage is what keeps positive-heavy workloads off the
// index.
func autoSupportive(n int) int {
	if n <= 1 {
		return 0
	}
	k := 4 * bits.Len(uint(n-1)) // 4·⌈log₂ n⌉
	if k < 4 {
		k = 4
	}
	if k > MaxSupportive {
		k = MaxSupportive
	}
	return k
}

// Build precomputes the observer stack for a DAG. Cost is one
// topological sweep plus 2k BFS traversals — O((k+1)(n+m)) — against
// which every future query gets its nanosecond exit.
func Build(g *graph.Graph, cfg Config) *Stack {
	start := time.Now()
	n := g.NumVertices()
	st := &Stack{}

	topo := order.ByStrategy(g, order.Topo, 0)
	st.pos = order.PositionOf(topo)
	st.fmax = make([]int32, n)
	st.bmin = make([]int32, n)
	// fmax in reverse topological order: a vertex's interval is its own
	// position merged with its successors' intervals.
	for i := n - 1; i >= 0; i-- {
		v := topo[i]
		m := st.pos[v]
		for _, w := range g.Out(v) {
			if st.fmax[w] > m {
				m = st.fmax[w]
			}
		}
		st.fmax[v] = m
	}
	// bmin in topological order, symmetrically over predecessors.
	for i := 0; i < n; i++ {
		v := topo[i]
		m := st.pos[v]
		for _, u := range g.In(v) {
			if st.bmin[u] < m {
				m = st.bmin[u]
			}
		}
		st.bmin[v] = m
	}

	k := cfg.Supportive
	if k <= 0 {
		k = autoSupportive(n)
	}
	if k > MaxSupportive {
		k = MaxSupportive
	}
	if k > n {
		k = n
	}
	// Highest degree-product rank first: (|Nout|+1)(|Nin|+1) counts the
	// 2-hop pairs a vertex covers, a cheap deterministic proxy for the
	// reachability coverage that makes a supportive vertex useful.
	if k > 0 {
		ranked := order.ByDegreeProduct(g)
		st.sup = make([]uint32, k)
		for i := 0; i < k; i++ {
			st.sup[i] = uint32(ranked[i])
		}
	}
	st.fwd = make([]uint64, n)
	st.bwd = make([]uint64, n)
	visited := bitset.New(n)
	queue := make([]uint32, 0, n)
	for i, w := range st.sup {
		bit := uint64(1) << uint(i)
		sweep(g, w, visited, queue, true, func(v uint32) { st.fwd[v] |= bit })
		sweep(g, w, visited, queue, false, func(v uint32) { st.bwd[v] |= bit })
	}

	st.buildRec()
	st.precompute = time.Since(start)
	return st
}

// sweep runs one BFS from src (forward when out is true, backward
// otherwise), calling mark for every visited vertex including src.
func sweep(g *graph.Graph, src uint32, visited *bitset.Bitset, queue []uint32, out bool, mark func(uint32)) {
	visited.Reset()
	visited.Set(int(src))
	mark(src)
	queue = append(queue[:0], src)
	for len(queue) > 0 {
		v := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		var adj []uint32
		if out {
			adj = g.Out(v)
		} else {
			adj = g.In(v)
		}
		for _, w := range adj {
			if !visited.Get(int(w)) {
				visited.Set(int(w))
				mark(w)
				queue = append(queue, w)
			}
		}
	}
}

// Query runs the observer stack on one DAG-vertex pair. The caller
// guarantees s ≠ t (same-SCC queries are answered before the stack) and
// both in range. Returns Positive/Negative with the deciding observer's
// counter bumped, or Unknown (no counter) when the index must answer.
//
//reach:hotpath
func (st *Stack) Query(s, t uint32) Verdict {
	rs, rt := &st.rec[s], &st.rec[t]
	ps, pt := rs.pos, rt.pos
	if rs.fmax == ps || rt.bmin == pt {
		// Out-degree-0 source / in-degree-0 target, read off the interval
		// bounds (topo order puts every successor strictly after v, so
		// fmax[v] = pos[v] ⇔ v has no successors, symmetrically bmin).
		st.bump(Degenerate)
		return Negative
	}
	if ps > pt || pt > rs.fmax || ps < rt.bmin {
		st.bump(TopoInterval)
		return Negative
	}
	if rs.bwd&rt.fwd != 0 {
		st.bump(SupportivePositive)
		return Positive
	}
	if rs.fwd&^rt.fwd != 0 || rt.bwd&^rs.bwd != 0 {
		st.bump(SupportiveNegative)
		return Negative
	}
	return Unknown
}

// bump counts a decided query with a relaxed load+store instead of a
// lock-prefixed Add: the read-modify-write fence costs about as much as
// the rest of Query combined, and the hit counters are operator
// statistics, not accounting — an increment occasionally lost under
// concurrent decide storms is an acceptable trade for keeping the fast
// path at two cache lines of work. Single-goroutine callers (and the
// soundness tests) still observe exact counts; readers always see a
// torn-free monotonic value because loads and stores stay atomic.
//
//reach:hotpath
func (st *Stack) bump(k Kind) {
	c := &st.hits[k]
	c.Store(c.Load() + 1)
}

// Hits returns how many queries observer k has decided.
func (st *Stack) Hits(k Kind) int64 { return st.hits[k].Load() }

// HitsMap snapshots every observer's hit counter keyed by metric label.
func (st *Stack) HitsMap() map[string]int64 {
	out := make(map[string]int64, int(numKinds))
	for _, k := range Kinds() {
		out[k.String()] = st.hits[k].Load()
	}
	return out
}

// SupportiveCount returns the number of supportive vertices.
func (st *Stack) SupportiveCount() int { return len(st.sup) }

// Supportive returns the supportive DAG vertices (shared storage, do not
// modify).
func (st *Stack) Supportive() []uint32 { return st.sup }

// PrecomputeTime is how long the stack took to build (or, for a
// snapshot-decoded stack, to decode and verify).
func (st *Stack) PrecomputeTime() time.Duration { return st.precompute }

// FromSnapshot reports whether the stack was decoded from a snapshot
// section rather than built from the graph.
func (st *Stack) FromSnapshot() bool { return st.fromSnapshot }

// SizeInts is the stack's resident size in 32-bit integers, comparable
// to Index.SizeInts. The interleaved query records double-count the
// columns deliberately: both forms are resident.
func (st *Stack) SizeInts() int64 {
	n := int64(len(st.pos))
	cols := 3*n + 4*n + int64(len(st.sup)) // pos+fmax+bmin + fwd+bwd(×2 each) + sup
	return cols + 8*n                      // + 32-byte query records
}

// SectionBytes is the exact encoded size of the stack's snapshot
// section — the bytes EncodeSection writes — so operators can see what
// the fast path costs on disk next to the index payload.
func (st *Stack) SectionBytes() int64 {
	pad8 := func(b int64) int64 { return (b + 7) &^ 7 }
	n := int64(len(st.pos))
	var total int64
	total += 16                             // version + checksum
	total += 8 + pad8(4*int64(len(st.sup))) // sup
	total += 3 * (8 + pad8(4*n))            // pos, fmax, bmin
	total += 2 * (8 + 8*n)                  // fwd, bwd
	return total
}
