package observe

import (
	"bytes"
	"math/rand"
	"testing"

	"repro/internal/blockio"
	"repro/internal/graph"
)

// randomDAG builds a DAG with n vertices where each forward pair (u, v)
// with u < v gets an edge with probability p. Vertex IDs are already a
// topological order, so no cycles are possible.
func randomDAG(t testing.TB, n int, p float64, seed int64) *graph.Graph {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	b := graph.NewBuilder(n)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if rng.Float64() < p {
				b.AddEdge(graph.Vertex(u), graph.Vertex(v))
			}
		}
	}
	g, err := b.Build()
	if err != nil {
		t.Fatalf("building random DAG: %v", err)
	}
	return g
}

// bruteReach computes the full transitive closure by BFS from every
// vertex — the ground truth the observers must never contradict.
func bruteReach(g *graph.Graph) [][]bool {
	n := g.NumVertices()
	reach := make([][]bool, n)
	for s := 0; s < n; s++ {
		reach[s] = make([]bool, n)
		stack := []uint32{uint32(s)}
		reach[s][s] = true
		for len(stack) > 0 {
			v := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, w := range g.Out(v) {
				if !reach[s][w] {
					reach[s][w] = true
					stack = append(stack, w)
				}
			}
		}
	}
	return reach
}

// TestQuerySoundness is the core property: on every pair of every graph,
// a Positive verdict implies reachable and a Negative verdict implies
// unreachable. Unknown is always allowed.
func TestQuerySoundness(t *testing.T) {
	graphs := map[string]*graph.Graph{
		"sparse":    randomDAG(t, 120, 0.02, 1),
		"medium":    randomDAG(t, 120, 0.08, 2),
		"dense":     randomDAG(t, 80, 0.3, 3),
		"edgeless":  randomDAG(t, 30, 0, 4),
		"singleton": randomDAG(t, 1, 0, 5),
		"chain": graph.MustFromEdges(6, [][2]graph.Vertex{
			{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5},
		}),
	}
	for name, g := range graphs {
		for _, k := range []int{0, 1, 64} { // 0 = auto
			st := Build(g, Config{Supportive: k})
			truth := bruteReach(g)
			n := g.NumVertices()
			decided, total := 0, 0
			for s := 0; s < n; s++ {
				for u := 0; u < n; u++ {
					if s == u {
						continue // callers answer same-vertex before the stack
					}
					total++
					switch v := st.Query(uint32(s), uint32(u)); v {
					case Positive:
						decided++
						if !truth[s][u] {
							t.Fatalf("%s k=%d: Query(%d,%d)=Positive but unreachable", name, k, s, u)
						}
					case Negative:
						decided++
						if truth[s][u] {
							t.Fatalf("%s k=%d: Query(%d,%d)=Negative but reachable", name, k, s, u)
						}
					case Unknown:
					default:
						t.Fatalf("%s k=%d: Query(%d,%d) returned invalid verdict %d", name, k, s, u, v)
					}
				}
			}
			var hits int64
			for _, kind := range Kinds() {
				hits += st.Hits(kind)
			}
			if hits != int64(decided) {
				t.Fatalf("%s k=%d: %d decided queries but %d counter hits", name, k, decided, hits)
			}
			if total > 0 {
				t.Logf("%s k=%d: decided %d/%d (%.0f%%)", name, k, decided, total, 100*float64(decided)/float64(total))
			}
		}
	}
}

// TestObserverKindsFire pins that each observer actually decides queries
// on a graph shaped to exercise it — a counter that can never fire would
// make the stats lie.
func TestObserverKindsFire(t *testing.T) {
	//      0 → 1 → 2 → 3      (a chain: 1,2 are high-coverage)
	//      4                  (isolated: degenerate)
	g := graph.MustFromEdges(5, [][2]graph.Vertex{{0, 1}, {1, 2}, {2, 3}})
	st := Build(g, Config{Supportive: 2})

	if v := st.Query(4, 0); v != Negative {
		t.Fatalf("Query(isolated, 0) = %d, want Negative", v)
	}
	if st.Hits(Degenerate) == 0 {
		t.Error("degenerate observer did not fire on an out-degree-0 source")
	}
	if v := st.Query(3, 0); v != Negative {
		t.Fatalf("Query(3, 0) = %d, want Negative", v)
	}
	// (3, 0) is degenerate twice over (out-degree-0 source, in-degree-0
	// target); (2, 1) goes backward in topo order with both endpoints
	// non-degenerate, so the interval observer must decide it.
	if v := st.Query(2, 1); v != Negative {
		t.Fatalf("Query(2, 1) = %d, want Negative", v)
	}
	if st.Hits(TopoInterval) == 0 {
		t.Error("topo-interval observer did not fire on a backward query")
	}
	// Supportive vertices on this graph are the chain's middle (degree
	// product ranks 1 and 2 highest); 0→3 passes through both.
	if v := st.Query(0, 3); v != Positive {
		t.Fatalf("Query(0, 3) = %d, want Positive", v)
	}
	if st.Hits(SupportivePositive) == 0 {
		t.Error("supportive-positive observer did not fire on a through-hub pair")
	}
}

// TestSupportiveNegativeFires builds a graph where the interval test
// passes but a supportive certificate proves unreachability: two
// chains interleaved in topological order, queried across.
func TestSupportiveNegativeFires(t *testing.T) {
	//        0            With this package's LIFO Kahn order
	//      / | \          (0,3,5,2,1,4,6), querying (3, 4):
	//     1  2  3         pos 1 < 5 ≤ fmax[3]=pos[6]=6 and
	//      \ |   \        bmin[4]=pos[0]=0 ≤ 1, so intervals pass and
	//        4    5       neither endpoint is degenerate. Supportive
	//         \  /        vertices (top degree products) are 4 and 0;
	//          6          4 reaches itself but 3 never reaches 4, so
	//                     bwd[4] &^ bwd[3] ≠ 0 refutes the pair.
	g := graph.MustFromEdges(7, [][2]graph.Vertex{
		{0, 1}, {0, 2}, {0, 3}, {1, 4}, {2, 4}, {3, 5}, {4, 6}, {5, 6},
	})
	st := Build(g, Config{Supportive: 2})

	if v := st.Query(3, 4); v != Negative {
		t.Fatalf("Query(3, 4) = %d, want Negative", v)
	}
	if st.Hits(SupportiveNegative) == 0 {
		t.Fatalf("supportive-negative observer did not decide the cross-chain pair (hits: %v)", st.HitsMap())
	}
}

// TestBuildDeterminism pins that two builds over the same graph produce
// identical precomputed state (the snapshot section depends on it).
func TestBuildDeterminism(t *testing.T) {
	g := randomDAG(t, 200, 0.05, 42)
	a, b := Build(g, Config{}), Build(g, Config{})
	var bufA, bufB bytes.Buffer
	if err := EncodeSection(a, blockio.NewWriter(&bufA)); err != nil {
		t.Fatal(err)
	}
	if err := EncodeSection(b, blockio.NewWriter(&bufB)); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(bufA.Bytes(), bufB.Bytes()) {
		t.Fatal("two builds of the same graph encoded differently")
	}
}

// TestAutoSupportive pins the automatic budget: ~4·log₂ n, floored at 4,
// capped at 64 and at n.
func TestAutoSupportive(t *testing.T) {
	cases := []struct{ n, want int }{
		{0, 0}, {1, 0}, {2, 4}, {10, 16}, {1 << 10, 40}, {1 << 20, 64}, {1 << 31, 64},
	}
	for _, c := range cases {
		if got := autoSupportive(c.n); got != c.want {
			t.Errorf("autoSupportive(%d) = %d, want %d", c.n, got, c.want)
		}
	}
	g := randomDAG(t, 3, 0.5, 7)
	if st := Build(g, Config{}); st.SupportiveCount() > 3 {
		t.Errorf("%d supportive vertices on a 3-vertex graph", st.SupportiveCount())
	}
	if st := Build(g, Config{Supportive: 100}); st.SupportiveCount() > 3 {
		t.Errorf("Supportive=100 not capped: got %d on a 3-vertex graph", st.SupportiveCount())
	}
}

func encodeStack(t *testing.T, st *Stack) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := EncodeSection(st, blockio.NewWriter(&buf)); err != nil {
		t.Fatalf("encoding section: %v", err)
	}
	return buf.Bytes()
}

// sameState compares everything DecodeSection restores.
func sameState(a, b *Stack) bool {
	if len(a.pos) != len(b.pos) || len(a.sup) != len(b.sup) {
		return false
	}
	for i := range a.sup {
		if a.sup[i] != b.sup[i] {
			return false
		}
	}
	for i := range a.pos {
		if a.pos[i] != b.pos[i] || a.fmax[i] != b.fmax[i] || a.bmin[i] != b.bmin[i] ||
			a.fwd[i] != b.fwd[i] || a.bwd[i] != b.bwd[i] {
			return false
		}
	}
	return true
}

// TestSectionRoundTrip covers both reader backends: the copying stream
// reader and the zero-copy slice reader (the mmap path).
func TestSectionRoundTrip(t *testing.T) {
	g := randomDAG(t, 150, 0.04, 9)
	st := Build(g, Config{})
	raw := encodeStack(t, st)

	if want := st.SectionBytes(); int64(len(raw)) != want {
		t.Fatalf("SectionBytes() = %d but encoded %d bytes", want, len(raw))
	}

	for name, r := range map[string]*blockio.Reader{
		"stream": blockio.NewStreamReader(bytes.NewReader(raw)),
		"slice":  blockio.NewSliceReader(raw),
	} {
		dec, err := DecodeSection(g, r)
		if err != nil {
			t.Fatalf("%s decode: %v", name, err)
		}
		if !sameState(st, dec) {
			t.Fatalf("%s decode: state differs from encoded stack", name)
		}
		if !dec.FromSnapshot() {
			t.Errorf("%s decode: FromSnapshot() = false", name)
		}
		if dec.SizeInts() != st.SizeInts() {
			t.Errorf("%s decode: SizeInts %d != %d", name, dec.SizeInts(), st.SizeInts())
		}
	}
}

// TestSectionCorruption is the deterministic sweep the ISSUE asks for at
// the section level: every truncation length and every single-byte flip
// must either fail to decode or decode to exactly the encoded state —
// never to a stack that would answer differently.
func TestSectionCorruption(t *testing.T) {
	g := randomDAG(t, 40, 0.1, 11)
	st := Build(g, Config{})
	raw := encodeStack(t, st)

	for cut := 0; cut < len(raw); cut++ {
		if _, err := DecodeSection(g, blockio.NewSliceReader(raw[:cut])); err == nil {
			t.Fatalf("decode of %d/%d-byte truncation succeeded", cut, len(raw))
		}
	}
	for off := 0; off < len(raw); off++ {
		for _, bit := range []byte{0x01, 0x80} {
			mut := bytes.Clone(raw)
			mut[off] ^= bit
			dec, err := DecodeSection(g, blockio.NewSliceReader(mut))
			if err != nil {
				continue
			}
			if !sameState(st, dec) {
				t.Fatalf("flip of bit %#x at offset %d decoded to different state with no error", bit, off)
			}
		}
	}
}

// TestSectionWrongGraph pins that a section saved for one graph refuses
// to decode against a structurally different one.
func TestSectionWrongGraph(t *testing.T) {
	g1 := randomDAG(t, 60, 0.1, 20)
	g2 := randomDAG(t, 61, 0.1, 21)
	raw := encodeStack(t, Build(g1, Config{}))
	if _, err := DecodeSection(g2, blockio.NewSliceReader(raw)); err == nil {
		t.Fatal("section for a 60-vertex graph decoded against a 61-vertex graph")
	}
}

// TestSectionVersionRejected pins forward compatibility: a future
// section version must error, not misparse.
func TestSectionVersionRejected(t *testing.T) {
	g := randomDAG(t, 10, 0.2, 30)
	raw := encodeStack(t, Build(g, Config{}))
	raw[0] = sectionVersion + 1 // version is the first little-endian word
	if _, err := DecodeSection(g, blockio.NewSliceReader(raw)); err == nil {
		t.Fatal("unknown section version decoded without error")
	}
}

// TestHitsMapLabels pins the metric label set.
func TestHitsMapLabels(t *testing.T) {
	st := Build(randomDAG(t, 10, 0.2, 40), Config{})
	m := st.HitsMap()
	for _, want := range []string{"degenerate", "topo_interval", "supportive_positive", "supportive_negative"} {
		if _, ok := m[want]; !ok {
			t.Errorf("HitsMap missing label %q", want)
		}
	}
	if len(m) != 4 {
		t.Errorf("HitsMap has %d entries, want 4", len(m))
	}
}

// TestQueryZeroAlloc pins the //reach:hotpath contract reachlint
// enforces statically: the observer fast path answers without touching
// the heap, whichever branch decides.
func TestQueryZeroAlloc(t *testing.T) {
	g := randomDAG(t, 200, 0.05, 9)
	st := Build(g, Config{})
	allocs := testing.AllocsPerRun(1000, func() {
		st.Query(1, 7)
		st.Query(7, 1)
		st.Query(3, 199)
		st.Query(199, 3)
	})
	if allocs != 0 {
		t.Fatalf("Query allocated %v times per run; the hot path must be allocation-free", allocs)
	}
}
