// Snapshot section codec for the observer stack. The section is a
// sequence of blockio blocks — version, checksum, then the six
// precomputed arrays — so an mmap'd snapshot hands the stack out as
// zero-copy views of the mapping, same as the index payload. The
// checksum makes the section self-validating: flipped bits anywhere in
// the arrays are caught at decode time instead of silently steering
// queries to wrong certificates.
package observe

import (
	"fmt"
	"time"

	"repro/internal/blockio"
	"repro/internal/graph"
)

// sectionVersion is bumped when the section layout changes; decoders
// reject versions they do not understand (the caller then rebuilds the
// stack from the graph instead).
const sectionVersion = 1

// EncodeSection writes the stack's precomputed state as one snapshot
// section.
func EncodeSection(st *Stack, w *blockio.Writer) error {
	w.Uint64(sectionVersion)
	w.Uint64(st.checksum())
	w.Uint32s(st.sup)
	w.Int32s(st.pos)
	w.Int32s(st.fmax)
	w.Int32s(st.bmin)
	w.Uint64s(st.fwd)
	w.Uint64s(st.bwd)
	return w.Err()
}

// DecodeSection reads an observer section written by EncodeSection and
// validates it against g — array lengths, supportive-vertex bounds, and
// the content checksum all have to line up, so a truncated or
// bit-flipped section returns an error rather than a stack that lies.
func DecodeSection(g *graph.Graph, r *blockio.Reader) (*Stack, error) {
	start := time.Now()
	version, err := r.Uint64()
	if err != nil {
		return nil, fmt.Errorf("observe: reading section version: %w", err)
	}
	if version != sectionVersion {
		return nil, fmt.Errorf("observe: unsupported section version %d (want %d)", version, sectionVersion)
	}
	sum, err := r.Uint64()
	if err != nil {
		return nil, fmt.Errorf("observe: reading section checksum: %w", err)
	}
	st := &Stack{fromSnapshot: true}
	if st.sup, err = r.Uint32s(); err != nil {
		return nil, fmt.Errorf("observe: reading supportive vertices: %w", err)
	}
	if st.pos, err = r.Int32s(); err != nil {
		return nil, fmt.Errorf("observe: reading topo positions: %w", err)
	}
	if st.fmax, err = r.Int32s(); err != nil {
		return nil, fmt.Errorf("observe: reading forward bounds: %w", err)
	}
	if st.bmin, err = r.Int32s(); err != nil {
		return nil, fmt.Errorf("observe: reading backward bounds: %w", err)
	}
	if st.fwd, err = r.Uint64s(); err != nil {
		return nil, fmt.Errorf("observe: reading forward masks: %w", err)
	}
	if st.bwd, err = r.Uint64s(); err != nil {
		return nil, fmt.Errorf("observe: reading backward masks: %w", err)
	}
	n := g.NumVertices()
	for name, l := range map[string]int{
		"topo positions": len(st.pos), "forward bounds": len(st.fmax),
		"backward bounds": len(st.bmin), "forward masks": len(st.fwd),
		"backward masks": len(st.bwd),
	} {
		if l != n {
			return nil, fmt.Errorf("observe: %s array has %d entries for %d vertices", name, l, n)
		}
	}
	if len(st.sup) > MaxSupportive {
		return nil, fmt.Errorf("observe: %d supportive vertices exceeds the %d-bit mask width", len(st.sup), MaxSupportive)
	}
	for i, w := range st.sup {
		if int(w) >= n {
			return nil, fmt.Errorf("observe: supportive vertex %d is %d, beyond %d vertices", i, w, n)
		}
	}
	if got := st.checksum(); got != sum {
		return nil, fmt.Errorf("observe: section checksum mismatch (stored %#x, computed %#x): snapshot corrupt", sum, got)
	}
	st.buildRec()
	st.precompute = time.Since(start)
	return st, nil
}

// checksum is FNV-1a over every array's length and contents, in the
// section's field order.
func (st *Stack) checksum() uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	mix := func(v uint64) {
		for i := 0; i < 8; i++ {
			h ^= v & 0xff
			h *= prime64
			v >>= 8
		}
	}
	mix(uint64(len(st.sup)))
	for _, v := range st.sup {
		mix(uint64(v))
	}
	for _, a := range [][]int32{st.pos, st.fmax, st.bmin} {
		mix(uint64(len(a)))
		for _, v := range a {
			mix(uint64(uint32(v)))
		}
	}
	for _, a := range [][]uint64{st.fwd, st.bwd} {
		mix(uint64(len(a)))
		for _, v := range a {
			mix(v)
		}
	}
	return h
}
