// Stream transport layer: the envelope and handshake frames that let
// wireproto batch frames travel over a persistent multiplexed TCP
// connection (internal/mux) instead of one HTTP exchange per batch.
//
// Every frame on a stream connection is preceded by a fixed 12-byte
// envelope naming the stream it belongs to, so many batches can be in
// flight on one connection and responses can return in any order. The
// first frame in each direction is a handshake carrying a capability
// mask and the snapshot fingerprint, so the enrollment-grade identity
// check the router performs over HTTP survives raw-TCP reconnects.
//
// The byte-level layout is specified normatively in docs/WIRE.md
// ("Stream transport") and pinned by TestWireSpecInSync.
package wireproto

import (
	"encoding/binary"
	"errors"
)

// Stream envelope geometry. All integers little-endian, like frames.
const (
	// EnvelopeSize is the fixed prefix before every frame on a stream
	// connection: 4 stream-ID bytes, 4 envelope-flag bytes, 4 frame
	// byte-length bytes.
	EnvelopeSize = 12

	// traceLenBytes is the length prefix of the optional trace field.
	traceLenBytes = 4

	// MaxTraceBytes caps the optional trace field. Trace IDs are
	// 16 bytes when minted in-process; the headroom admits longer
	// client-supplied IDs without letting the field become a payload.
	MaxTraceBytes = 128

	// MaxFingerprint caps a handshake frame's fingerprint length
	// (in-process fingerprints are 16 hex bytes).
	MaxFingerprint = 64

	// handshakeCapBytes is the capability mask field of a handshake
	// frame's payload.
	handshakeCapBytes = 4
)

// Envelope flags (bits of the envelope's flags field). Unknown bits are
// a decode error, mirroring the frame-header rule.
const (
	// EnvFlagTrace marks an envelope followed by a trace field (u32
	// byte length + that many trace-ID bytes) before the frame.
	EnvFlagTrace uint32 = 1 << 0

	// envKnownFlags masks the envelope flag bits this Version defines.
	envKnownFlags = EnvFlagTrace
)

// Handshake capability bits, exchanged in both directions; the
// connection's effective capabilities are the intersection.
const (
	// CapTrace: the peer accepts EnvFlagTrace envelopes.
	CapTrace uint32 = 1 << 0
)

// Stream decode errors — sentinels, like the frame-level ones.
var (
	// ErrEnvFlags: the envelope flags field has undefined bits set.
	ErrEnvFlags = errors.New("wireproto: unknown stream envelope flag bits")
	// ErrEnvLength: the envelope's frame length is shorter than a frame
	// header or longer than the receiver's configured maximum.
	ErrEnvLength = errors.New("wireproto: stream envelope frame length out of range")
	// ErrTraceLen: the trace field's length prefix exceeds MaxTraceBytes.
	ErrTraceLen = errors.New("wireproto: stream trace field too long")
)

// PutEnvelope writes the 12-byte stream envelope into buf: the stream
// ID the frame belongs to, the envelope flags, and the byte length of
// the frame that follows (after the optional trace field).
//
//reach:hotpath
func PutEnvelope(buf []byte, stream, flags, frameLen uint32) {
	binary.LittleEndian.PutUint32(buf[0:4], stream)
	binary.LittleEndian.PutUint32(buf[4:8], flags)
	binary.LittleEndian.PutUint32(buf[8:12], frameLen)
}

// ParseEnvelope validates a 12-byte stream envelope: undefined flag
// bits are ErrEnvFlags, a frame length below HeaderSize or above
// maxFrame is ErrEnvLength. maxFrame is the receiver's own bound
// (derived from its batch-size limit), checked here so a hostile
// length never sizes a read.
//
//reach:hotpath
func ParseEnvelope(buf []byte, maxFrame int) (stream, flags, frameLen uint32, err error) {
	if len(buf) < EnvelopeSize {
		return 0, 0, 0, ErrTruncated
	}
	stream = binary.LittleEndian.Uint32(buf[0:4])
	flags = binary.LittleEndian.Uint32(buf[4:8])
	frameLen = binary.LittleEndian.Uint32(buf[8:12])
	if flags&^uint32(envKnownFlags) != 0 {
		return 0, 0, 0, ErrEnvFlags
	}
	if frameLen < HeaderSize || int64(frameLen) > int64(maxFrame) {
		return 0, 0, 0, ErrEnvLength
	}
	return stream, flags, frameLen, nil
}

// TraceSize returns the byte length of the optional trace field for a
// trace ID of traceLen bytes.
func TraceSize(traceLen int) int { return traceLenBytes + traceLen }

// PutTrace writes the optional trace field (length prefix + ID bytes)
// into buf and returns its byte length. The caller guarantees
// len(trace) <= MaxTraceBytes.
//
//reach:hotpath
func PutTrace(buf []byte, trace string) int {
	binary.LittleEndian.PutUint32(buf[0:traceLenBytes], uint32(len(trace)))
	copy(buf[traceLenBytes:], trace)
	return traceLenBytes + len(trace)
}

// ParseTraceLen validates the 4-byte trace length prefix and returns
// the number of trace-ID bytes that follow.
//
//reach:hotpath
func ParseTraceLen(buf []byte) (int, error) {
	if len(buf) < traceLenBytes {
		return 0, ErrTruncated
	}
	n := binary.LittleEndian.Uint32(buf[0:traceLenBytes])
	if n > MaxTraceBytes {
		return 0, ErrTraceLen
	}
	return int(n), nil
}

// HandshakeSize returns the byte length of a handshake frame whose
// fingerprint is fpLen bytes.
func HandshakeSize(fpLen int) int { return HeaderSize + handshakeCapBytes + fpLen }

// EncodeHandshake writes a handshake frame into buf and returns the
// frame length: caps is the sender's capability mask, fingerprint the
// snapshot fingerprint it serves (or expects; empty skips the check).
// buf must be at least HandshakeSize(len(fingerprint)) bytes and
// len(fingerprint) must not exceed MaxFingerprint. Handshakes happen
// once per connection, off the hot path.
func EncodeHandshake(buf []byte, caps uint32, fingerprint string) int {
	putHeader(buf, FlagHandshake, uint32(len(fingerprint)))
	binary.LittleEndian.PutUint32(buf[HeaderSize:], caps)
	copy(buf[HeaderSize+handshakeCapBytes:], fingerprint)
	return HandshakeSize(len(fingerprint))
}

// DecodeHandshake validates frame as a handshake and returns the
// peer's capability mask and fingerprint. A count past MaxFingerprint
// is ErrMsgLen, rejected before any length arithmetic trusts it.
func DecodeHandshake(frame []byte) (caps uint32, fingerprint string, err error) {
	h, err := ParseHeader(frame)
	if err != nil {
		return 0, "", err
	}
	if h.Flags != FlagHandshake {
		return 0, "", ErrFrameKind
	}
	if h.Count > MaxFingerprint {
		return 0, "", ErrMsgLen
	}
	if len(frame) != HandshakeSize(int(h.Count)) {
		if len(frame) < HandshakeSize(int(h.Count)) {
			return 0, "", ErrTruncated
		}
		return 0, "", ErrLength
	}
	caps = binary.LittleEndian.Uint32(frame[HeaderSize:])
	fingerprint = string(frame[HeaderSize+handshakeCapBytes:])
	return caps, fingerprint, nil
}
