package wireproto

import (
	"strings"
	"testing"
)

func TestEnvelopeRoundTrip(t *testing.T) {
	buf := make([]byte, EnvelopeSize)
	PutEnvelope(buf, 7, EnvFlagTrace, 4108)
	stream, flags, frameLen, err := ParseEnvelope(buf, 1<<20)
	if err != nil {
		t.Fatalf("ParseEnvelope: %v", err)
	}
	if stream != 7 || flags != EnvFlagTrace || frameLen != 4108 {
		t.Fatalf("round trip = (%d, %#x, %d), want (7, %#x, 4108)", stream, flags, frameLen, EnvFlagTrace)
	}
}

func TestEnvelopeValidation(t *testing.T) {
	buf := make([]byte, EnvelopeSize)

	if _, _, _, err := ParseEnvelope(buf[:EnvelopeSize-1], 1<<20); err != ErrTruncated {
		t.Fatalf("short envelope: %v, want ErrTruncated", err)
	}

	PutEnvelope(buf, 1, 1<<7, HeaderSize) // undefined envelope flag bit
	if _, _, _, err := ParseEnvelope(buf, 1<<20); err != ErrEnvFlags {
		t.Fatalf("unknown env flag: %v, want ErrEnvFlags", err)
	}

	PutEnvelope(buf, 1, 0, HeaderSize-1) // shorter than any frame
	if _, _, _, err := ParseEnvelope(buf, 1<<20); err != ErrEnvLength {
		t.Fatalf("undersized frame length: %v, want ErrEnvLength", err)
	}

	PutEnvelope(buf, 1, 0, 1<<20+1) // past the receiver's bound
	if _, _, _, err := ParseEnvelope(buf, 1<<20); err != ErrEnvLength {
		t.Fatalf("oversized frame length: %v, want ErrEnvLength", err)
	}

	PutEnvelope(buf, 1, 0, 1<<20) // exactly at the bound is fine
	if _, _, _, err := ParseEnvelope(buf, 1<<20); err != nil {
		t.Fatalf("frame length at bound: %v, want nil", err)
	}
}

func TestTraceFieldRoundTrip(t *testing.T) {
	const trace = "8f14e45fceea167a"
	buf := make([]byte, TraceSize(len(trace)))
	if n := PutTrace(buf, trace); n != TraceSize(len(trace)) {
		t.Fatalf("PutTrace wrote %d bytes, want %d", n, TraceSize(len(trace)))
	}
	n, err := ParseTraceLen(buf)
	if err != nil || n != len(trace) {
		t.Fatalf("ParseTraceLen = %d, %v; want %d, nil", n, err, len(trace))
	}
	if got := string(buf[TraceSize(0) : TraceSize(0)+n]); got != trace {
		t.Fatalf("trace bytes = %q, want %q", got, trace)
	}

	if _, err := ParseTraceLen(buf[:2]); err != ErrTruncated {
		t.Fatalf("short trace prefix: %v, want ErrTruncated", err)
	}
	long := make([]byte, TraceSize(MaxTraceBytes+1))
	PutTrace(long, strings.Repeat("t", MaxTraceBytes+1))
	if _, err := ParseTraceLen(long); err != ErrTraceLen {
		t.Fatalf("oversized trace: %v, want ErrTraceLen", err)
	}
}

func TestHandshakeRoundTrip(t *testing.T) {
	const fp = "00000000deadbeef"
	buf := make([]byte, HandshakeSize(len(fp)))
	if n := EncodeHandshake(buf, CapTrace, fp); n != len(buf) {
		t.Fatalf("EncodeHandshake wrote %d bytes, want %d", n, len(buf))
	}
	caps, got, err := DecodeHandshake(buf)
	if err != nil {
		t.Fatalf("DecodeHandshake: %v", err)
	}
	if caps != CapTrace || got != fp {
		t.Fatalf("round trip = (%#x, %q), want (%#x, %q)", caps, got, CapTrace, fp)
	}

	// An empty fingerprint (peer skips the identity check) is legal.
	empty := make([]byte, HandshakeSize(0))
	EncodeHandshake(empty, 0, "")
	if caps, got, err := DecodeHandshake(empty); err != nil || caps != 0 || got != "" {
		t.Fatalf("empty handshake = (%#x, %q, %v)", caps, got, err)
	}

	// Handshakes are their own kind: batch decoders must reject them
	// and DecodeHandshake must reject batch frames.
	if _, err := RequestCount(buf); err != ErrFrameKind {
		t.Fatalf("RequestCount(handshake) = %v, want ErrFrameKind", err)
	}
	if _, err := ResponseCount(buf); err != ErrFrameKind {
		t.Fatalf("ResponseCount(handshake) = %v, want ErrFrameKind", err)
	}
	if _, _, err := DecodeError(buf); err != ErrFrameKind {
		t.Fatalf("DecodeError(handshake) = %v, want ErrFrameKind", err)
	}
	req := make([]byte, RequestSize(1))
	EncodeRequest(req, [][2]uint32{{1, 2}})
	if _, _, err := DecodeHandshake(req); err != ErrFrameKind {
		t.Fatalf("DecodeHandshake(request) = %v, want ErrFrameKind", err)
	}
}
