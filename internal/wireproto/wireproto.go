// Package wireproto is the binary batch protocol spoken between the
// fleet router and reachd replicas on /v1/batch: length-prefixed frames
// of fixed-width little-endian integers — the blockio snapshot idiom
// applied to the wire. A 512-pair request is 4108 bytes instead of
// ~7 KB of JSON, and neither side allocates to encode or decode it.
//
// The byte-level layout is specified normatively in docs/WIRE.md;
// TestWireSpecInSync round-trips the spec's example frames through this
// codec so the document cannot drift from the code. The wirewidth
// analyzer covers this package, so platform-width integers and varints
// cannot creep into the format.
//
// The codec never allocates: encoders write into caller-provided
// buffers sized with RequestSize/ResponseSize/ErrorSize, and decoders
// fill caller-provided slices sized from RequestCount/ResponseCount.
// Decode functions never panic on hostile input — every length is
// checked before it is trusted (FuzzWireDecode and the corruption sweep
// in corruption_test.go pin that).
package wireproto

import (
	"encoding/binary"
	"errors"
)

// ContentType is the negotiated media type of binary batch frames on
// POST /v1/batch. Requests carrying any other Content-Type take the
// JSON path; replicas that do not speak the protocol answer it with
// 415, which clients treat as "fall back to JSON".
const ContentType = "application/x-reach-batch"

// Frame geometry. All integers on the wire are little-endian.
const (
	// Version is the protocol revision carried in every frame's fourth
	// byte. A receiver rejects frames with any other value.
	Version = 1

	// HeaderSize is the fixed prefix every frame starts with: 3 magic
	// bytes, 1 version byte, 4 flag bytes, 4 count bytes.
	HeaderSize = 12

	// pairBytes is one request pair record: u uint32, v uint32.
	pairBytes = 8

	// wordBytes is one response result word: 64 answers, bit-packed.
	wordBytes = 8

	// errorStatusBytes is the status field of an error frame's payload.
	errorStatusBytes = 4

	// MaxCount caps the header's count field: 2^28 pairs is a 2 GiB
	// request frame, far beyond any configured batch limit, so larger
	// counts can only be garbage (and must be rejected before they size
	// a buffer).
	MaxCount = 1 << 28

	// MaxErrorMsg caps an error frame's message length. Real error
	// messages are one line; a count past this is garbage, and the cap
	// keeps a hostile frame from making DecodeError build a huge string.
	// 4096 matches the body cap HTTP clients already apply when reading
	// error responses.
	MaxErrorMsg = 4096
)

// Frame flags (bits of the header's flags field). Unknown bits are a
// decode error, so future flags cannot be silently ignored by old code.
const (
	// FlagError marks an error frame: count is the message byte length
	// and the payload is a status code plus the message.
	FlagError uint32 = 1 << 0

	// FlagHandshake marks a stream-transport handshake frame: count is
	// the fingerprint byte length and the payload is a capability mask
	// plus the snapshot fingerprint (see stream.go and docs/WIRE.md).
	FlagHandshake uint32 = 1 << 1

	// knownFlags masks the flag bits this Version defines.
	knownFlags = FlagError | FlagHandshake
)

// Magic is the 3-byte frame signature: ASCII "RWB" (reach wire batch).
var Magic = [3]byte{'R', 'W', 'B'}

// Decode errors. All are sentinels so hot-path decoders return them
// without allocating.
var (
	// ErrTruncated: the frame ends before its header or declared payload.
	ErrTruncated = errors.New("wireproto: truncated frame")
	// ErrMagic: the first three bytes are not "RWB".
	ErrMagic = errors.New("wireproto: bad magic (not a reach wire frame)")
	// ErrVersion: the version byte is not a revision this code speaks.
	ErrVersion = errors.New("wireproto: unsupported frame version")
	// ErrFlags: the flags field has bits set that this version does not define.
	ErrFlags = errors.New("wireproto: unknown flag bits set")
	// ErrCount: the count field exceeds MaxCount.
	ErrCount = errors.New("wireproto: frame count out of range")
	// ErrLength: the frame's byte length disagrees with its count field.
	ErrLength = errors.New("wireproto: frame length disagrees with count")
	// ErrPadding: a response frame's trailing padding bits are not zero.
	ErrPadding = errors.New("wireproto: nonzero padding bits in response")
	// ErrFrameKind: the frame's flags name a different kind than the
	// decoder called (e.g. DecodeError on a non-error frame).
	ErrFrameKind = errors.New("wireproto: frame is not of the requested kind")
	// ErrBuffer: the caller-provided destination slice does not match
	// the frame's count (size it with RequestCount/ResponseCount first).
	ErrBuffer = errors.New("wireproto: destination buffer length does not match frame count")
	// ErrMsgLen: a variable-length text field (error message, handshake
	// fingerprint) exceeds its cap (MaxErrorMsg / MaxFingerprint) — the
	// count is rejected before it sizes anything.
	ErrMsgLen = errors.New("wireproto: text field exceeds length cap")
)

// Header is the fixed 12-byte prefix every frame starts with. The field
// order is the wire order; every field is fixed-width so the layout
// means the same thing on every architecture.
//
//reach:wire
type Header struct {
	Magic   [3]uint8 // "RWB"
	Version uint8    // Version
	Flags   uint32   // LE; see FlagError
	Count   uint32   // LE; pairs (request), results (response), message bytes (error)
}

// ParseHeader validates the shared frame prefix and returns it. It
// checks magic, version, flag bits and the count bound — everything
// except the kind-specific length arithmetic, which RequestCount,
// ResponseCount and DecodeError add.
func ParseHeader(frame []byte) (Header, error) {
	var h Header
	if len(frame) < HeaderSize {
		return h, ErrTruncated
	}
	if frame[0] != Magic[0] || frame[1] != Magic[1] || frame[2] != Magic[2] {
		return h, ErrMagic
	}
	if frame[3] != Version {
		return h, ErrVersion
	}
	h.Magic = Magic
	h.Version = frame[3]
	h.Flags = binary.LittleEndian.Uint32(frame[4:8])
	h.Count = binary.LittleEndian.Uint32(frame[8:12])
	if h.Flags&^uint32(knownFlags) != 0 {
		return h, ErrFlags
	}
	if h.Count > MaxCount {
		return h, ErrCount
	}
	return h, nil
}

// RequestSize returns the byte length of a request frame carrying n
// pairs.
func RequestSize(n int) int { return HeaderSize + pairBytes*n }

// ResponseSize returns the byte length of a response frame carrying n
// results. Results are bit-packed into uint64 words, so a response is
// ~64x smaller than its request.
func ResponseSize(n int) int { return HeaderSize + wordBytes*((n+63)/64) }

// ErrorSize returns the byte length of an error frame whose message is
// msgLen bytes.
func ErrorSize(msgLen int) int { return HeaderSize + errorStatusBytes + msgLen }

// putHeader writes the shared frame prefix.
//
//reach:hotpath
func putHeader(buf []byte, flags, count uint32) {
	buf[0], buf[1], buf[2] = Magic[0], Magic[1], Magic[2]
	buf[3] = Version
	binary.LittleEndian.PutUint32(buf[4:8], flags)
	binary.LittleEndian.PutUint32(buf[8:12], count)
}

// EncodeRequest writes a request frame for pairs into buf and returns
// the frame length. buf must be at least RequestSize(len(pairs)) bytes
// (a short buffer panics — this is the programmer's error, not the
// peer's); len(pairs) must not exceed MaxCount.
//
//reach:hotpath
func EncodeRequest(buf []byte, pairs [][2]uint32) int {
	putHeader(buf, 0, uint32(len(pairs)))
	off := HeaderSize
	for i := range pairs {
		binary.LittleEndian.PutUint32(buf[off:], pairs[i][0])
		binary.LittleEndian.PutUint32(buf[off+4:], pairs[i][1])
		off += pairBytes
	}
	return off
}

// RequestCount fully validates frame as a request and returns its pair
// count. After it succeeds, DecodeRequest into a slice of exactly that
// length cannot fail.
func RequestCount(frame []byte) (int, error) {
	h, err := ParseHeader(frame)
	if err != nil {
		return 0, err
	}
	if h.Flags != 0 {
		return 0, ErrFrameKind
	}
	if len(frame) != RequestSize(int(h.Count)) {
		if len(frame) < RequestSize(int(h.Count)) {
			return 0, ErrTruncated
		}
		return 0, ErrLength
	}
	return int(h.Count), nil
}

// DecodeRequest fills pairs from a request frame previously validated
// with RequestCount; len(pairs) must equal the validated count.
//
//reach:hotpath
func DecodeRequest(frame []byte, pairs [][2]uint32) error {
	if len(frame) != RequestSize(len(pairs)) ||
		binary.LittleEndian.Uint32(frame[8:12]) != uint32(len(pairs)) {
		return ErrBuffer
	}
	off := HeaderSize
	for i := range pairs {
		pairs[i][0] = binary.LittleEndian.Uint32(frame[off:])
		pairs[i][1] = binary.LittleEndian.Uint32(frame[off+4:])
		off += pairBytes
	}
	return nil
}

// EncodeResponse writes a response frame for results into buf and
// returns the frame length. Results are packed LSB-first: result i is
// bit i%64 of word i/64; padding bits of the last word are zero. buf
// must be at least ResponseSize(len(results)) bytes.
//
//reach:hotpath
func EncodeResponse(buf []byte, results []bool) int {
	putHeader(buf, 0, uint32(len(results)))
	off := HeaderSize
	var word uint64
	for i := range results {
		if results[i] {
			word |= 1 << (uint(i) & 63)
		}
		if i&63 == 63 {
			binary.LittleEndian.PutUint64(buf[off:], word)
			off += wordBytes
			word = 0
		}
	}
	if len(results)&63 != 0 {
		binary.LittleEndian.PutUint64(buf[off:], word)
		off += wordBytes
	}
	return off
}

// ResponseCount fully validates frame as a response and returns its
// result count. Padding bits past the count in the final word must be
// zero — a frame violating that is corrupt, not merely sloppy, because
// encoders never produce it. After ResponseCount succeeds,
// DecodeResponse into a slice of exactly that length cannot fail.
func ResponseCount(frame []byte) (int, error) {
	h, err := ParseHeader(frame)
	if err != nil {
		return 0, err
	}
	if h.Flags != 0 {
		return 0, ErrFrameKind
	}
	n := int(h.Count)
	if len(frame) != ResponseSize(n) {
		if len(frame) < ResponseSize(n) {
			return 0, ErrTruncated
		}
		return 0, ErrLength
	}
	if n%64 != 0 {
		last := binary.LittleEndian.Uint64(frame[len(frame)-wordBytes:])
		if last>>(uint(n)%64) != 0 {
			return 0, ErrPadding
		}
	}
	return n, nil
}

// DecodeResponse fills results from a response frame previously
// validated with ResponseCount; len(results) must equal the validated
// count.
//
//reach:hotpath
func DecodeResponse(frame []byte, results []bool) error {
	// ResponseSize is not injective (3 and 64 results round to whole
	// words the same way), so the frame's own count field is the check
	// that catches a mis-sized destination.
	if len(frame) != ResponseSize(len(results)) ||
		binary.LittleEndian.Uint32(frame[8:12]) != uint32(len(results)) {
		return ErrBuffer
	}
	off := HeaderSize
	var word uint64
	for i := range results {
		if i&63 == 0 {
			word = binary.LittleEndian.Uint64(frame[off:])
			off += wordBytes
		}
		results[i] = word&1 != 0
		word >>= 1
	}
	return nil
}

// EncodeError writes an error frame into buf and returns the frame
// length: status is the HTTP-shaped status code the peer should act on
// (carried in-band so the frame is self-contained on non-HTTP
// transports), msg a human-readable reason. buf must be at least
// ErrorSize(len(msg)) bytes. Error frames are off the hot path — they
// exist so a binary-mode peer never has to parse JSON to learn why a
// batch failed.
func EncodeError(buf []byte, status int, msg string) int {
	putHeader(buf, FlagError, uint32(len(msg)))
	binary.LittleEndian.PutUint32(buf[HeaderSize:], uint32(status))
	copy(buf[HeaderSize+errorStatusBytes:], msg)
	return ErrorSize(len(msg))
}

// IsError reports whether frame is (at least headerwise) a valid error
// frame, without validating its payload length. The flags must be
// exactly FlagError: a frame mixing error with other kind bits is
// corrupt, because encoders never produce one.
func IsError(frame []byte) bool {
	h, err := ParseHeader(frame)
	return err == nil && h.Flags == FlagError
}

// DecodeError validates frame as an error frame and returns its status
// code and message. A count past MaxErrorMsg is rejected (ErrMsgLen)
// before any length arithmetic or string building trusts it.
func DecodeError(frame []byte) (status int, msg string, err error) {
	h, err := ParseHeader(frame)
	if err != nil {
		return 0, "", err
	}
	if h.Flags != FlagError {
		return 0, "", ErrFrameKind
	}
	if h.Count > MaxErrorMsg {
		return 0, "", ErrMsgLen
	}
	if len(frame) != ErrorSize(int(h.Count)) {
		if len(frame) < ErrorSize(int(h.Count)) {
			return 0, "", ErrTruncated
		}
		return 0, "", ErrLength
	}
	status = int(binary.LittleEndian.Uint32(frame[HeaderSize:]))
	msg = string(frame[HeaderSize+errorStatusBytes:])
	return status, msg, nil
}
