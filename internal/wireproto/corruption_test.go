package wireproto

import (
	"bytes"
	"strings"
	"testing"
)

// decodeAny runs every decoder over frame the way a receiver would,
// returning whether any of them accepted it. Used by the fuzzer and the
// deterministic corruption sweep: the only requirement on hostile input
// is "error out, never panic, and stay self-consistent".
func decodeAny(t testing.TB, frame []byte) {
	t.Helper()
	if n, err := RequestCount(frame); err == nil {
		pairs := make([][2]uint32, n)
		if err := DecodeRequest(frame, pairs); err != nil {
			t.Fatalf("RequestCount accepted a frame DecodeRequest rejects: %v", err)
		}
		re := make([]byte, RequestSize(n))
		if EncodeRequest(re, pairs); !bytes.Equal(re, frame) {
			t.Fatalf("request round trip not byte-identical:\n got %x\nwant %x", re, frame)
		}
	}
	if n, err := ResponseCount(frame); err == nil {
		results := make([]bool, n)
		if err := DecodeResponse(frame, results); err != nil {
			t.Fatalf("ResponseCount accepted a frame DecodeResponse rejects: %v", err)
		}
		re := make([]byte, ResponseSize(n))
		if EncodeResponse(re, results); !bytes.Equal(re, frame) {
			t.Fatalf("response round trip not byte-identical:\n got %x\nwant %x", re, frame)
		}
	}
	if status, msg, err := DecodeError(frame); err == nil {
		re := make([]byte, ErrorSize(len(msg)))
		if EncodeError(re, status, msg); !bytes.Equal(re, frame) {
			t.Fatalf("error round trip not byte-identical:\n got %x\nwant %x", re, frame)
		}
	}
	if caps, fp, err := DecodeHandshake(frame); err == nil {
		re := make([]byte, HandshakeSize(len(fp)))
		if EncodeHandshake(re, caps, fp); !bytes.Equal(re, frame) {
			t.Fatalf("handshake round trip not byte-identical:\n got %x\nwant %x", re, frame)
		}
	}
	IsError(frame)
	ParseHeader(frame)
}

// seedFrames builds one valid frame of each kind, the same set the
// checked-in fuzz corpus and the corruption sweep mutate.
func seedFrames() [][]byte {
	req := make([]byte, RequestSize(3))
	EncodeRequest(req, [][2]uint32{{0, 3}, {7, 2}, {1 << 20, 5}})
	resp := make([]byte, ResponseSize(67)) // crosses a word boundary
	results := make([]bool, 67)
	for i := range results {
		results[i] = i%3 == 0
	}
	EncodeResponse(resp, results)
	errf := make([]byte, ErrorSize(len("replica overloaded")))
	EncodeError(errf, 429, "replica overloaded")
	hs := make([]byte, HandshakeSize(16))
	EncodeHandshake(hs, CapTrace, "8f14e45fceea167a")
	return [][]byte{req, resp, errf, hs}
}

// TestWireCorruptionReturnsErrors mirrors the snapshot corruption
// tests: every truncation of every valid frame kind must decode to an
// error, and every single-bit flip must either decode to an error or
// yield values that re-encode to exactly the mutated bytes (flips in
// pair/result payload change data, not framing — that is the
// application's checksum problem, not the codec's).
func TestWireCorruptionReturnsErrors(t *testing.T) {
	for _, frame := range seedFrames() {
		for cut := 0; cut < len(frame); cut++ {
			trunc := frame[:cut]
			// No truncation of these seeds can be a valid shorter frame:
			// the header still declares the full count, so the length
			// check fails before any payload is trusted.
			if _, err := RequestCount(trunc); err == nil {
				t.Fatalf("truncation to %d bytes decoded as a request", cut)
			}
			if _, err := ResponseCount(trunc); err == nil {
				t.Fatalf("truncation to %d bytes decoded as a response", cut)
			}
			if _, _, err := DecodeError(trunc); err == nil {
				t.Fatalf("truncation to %d bytes decoded as an error frame", cut)
			}
			if _, _, err := DecodeHandshake(trunc); err == nil {
				t.Fatalf("truncation to %d bytes decoded as a handshake", cut)
			}
			decodeAny(t, trunc)
		}
		for off := 0; off < len(frame); off++ {
			for _, bit := range []byte{0x01, 0x80} {
				mut := bytes.Clone(frame)
				mut[off] ^= bit
				decodeAny(t, mut)
			}
		}
	}
}

// TestOversizedTextFieldRejected pins the text-field caps: a frame
// whose count claims more message/fingerprint bytes than the cap must
// be rejected with ErrMsgLen before the count sizes anything — even
// when the frame really is that long, and even when it is only a bare
// header (the cap fires before the length arithmetic, so a hostile
// 12-byte header cannot make a receiver expect a giant payload).
func TestOversizedTextFieldRejected(t *testing.T) {
	long := strings.Repeat("x", MaxErrorMsg+1)
	big := make([]byte, ErrorSize(len(long)))
	EncodeError(big, 500, long)
	if _, _, err := DecodeError(big); err != ErrMsgLen {
		t.Fatalf("DecodeError(oversized msg) = %v, want ErrMsgLen", err)
	}
	hdr := make([]byte, HeaderSize)
	putHeader(hdr, FlagError, MaxErrorMsg+1)
	if _, _, err := DecodeError(hdr); err != ErrMsgLen {
		t.Fatalf("DecodeError(bare oversized header) = %v, want ErrMsgLen", err)
	}
	atCap := strings.Repeat("x", MaxErrorMsg)
	ok := make([]byte, ErrorSize(len(atCap)))
	EncodeError(ok, 500, atCap)
	if _, msg, err := DecodeError(ok); err != nil || msg != atCap {
		t.Fatalf("DecodeError(msg at cap) = %d bytes, %v; want the full message", len(msg), err)
	}

	longFP := strings.Repeat("f", MaxFingerprint+1)
	hs := make([]byte, HandshakeSize(len(longFP)))
	EncodeHandshake(hs, 0, longFP)
	if _, _, err := DecodeHandshake(hs); err != ErrMsgLen {
		t.Fatalf("DecodeHandshake(oversized fingerprint) = %v, want ErrMsgLen", err)
	}
}

// FuzzWireDecode throws arbitrary bytes at every decoder. The invariant
// is decodeAny's: no panic on any input, and any accepted frame must
// re-encode byte-identically (so the decoders can never "repair"
// hostile input into something the encoders would not produce).
func FuzzWireDecode(f *testing.F) {
	for _, frame := range seedFrames() {
		f.Add(frame)
		f.Add(frame[:len(frame)/2])
		f.Add(frame[:len(frame)-1])
		flipped := bytes.Clone(frame)
		flipped[4] ^= 0x02 // mutate the kind: handshake bit on, or off on the handshake seed
		f.Add(flipped)
	}
	f.Add([]byte{})
	f.Add([]byte("RWB"))
	// A bare header claiming an enormous error message: the text-field
	// cap must reject the count before anything allocates for it.
	oversized := make([]byte, HeaderSize)
	putHeader(oversized, FlagError, MaxErrorMsg+1)
	f.Add(oversized)
	f.Fuzz(func(t *testing.T, frame []byte) {
		decodeAny(t, frame)
	})
}
