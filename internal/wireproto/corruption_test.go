package wireproto

import (
	"bytes"
	"testing"
)

// decodeAny runs every decoder over frame the way a receiver would,
// returning whether any of them accepted it. Used by the fuzzer and the
// deterministic corruption sweep: the only requirement on hostile input
// is "error out, never panic, and stay self-consistent".
func decodeAny(t testing.TB, frame []byte) {
	t.Helper()
	if n, err := RequestCount(frame); err == nil {
		pairs := make([][2]uint32, n)
		if err := DecodeRequest(frame, pairs); err != nil {
			t.Fatalf("RequestCount accepted a frame DecodeRequest rejects: %v", err)
		}
		re := make([]byte, RequestSize(n))
		if EncodeRequest(re, pairs); !bytes.Equal(re, frame) {
			t.Fatalf("request round trip not byte-identical:\n got %x\nwant %x", re, frame)
		}
	}
	if n, err := ResponseCount(frame); err == nil {
		results := make([]bool, n)
		if err := DecodeResponse(frame, results); err != nil {
			t.Fatalf("ResponseCount accepted a frame DecodeResponse rejects: %v", err)
		}
		re := make([]byte, ResponseSize(n))
		if EncodeResponse(re, results); !bytes.Equal(re, frame) {
			t.Fatalf("response round trip not byte-identical:\n got %x\nwant %x", re, frame)
		}
	}
	if status, msg, err := DecodeError(frame); err == nil {
		re := make([]byte, ErrorSize(len(msg)))
		if EncodeError(re, status, msg); !bytes.Equal(re, frame) {
			t.Fatalf("error round trip not byte-identical:\n got %x\nwant %x", re, frame)
		}
	}
	IsError(frame)
	ParseHeader(frame)
}

// seedFrames builds one valid frame of each kind, the same trio the
// checked-in fuzz corpus and the corruption sweep mutate.
func seedFrames() [][]byte {
	req := make([]byte, RequestSize(3))
	EncodeRequest(req, [][2]uint32{{0, 3}, {7, 2}, {1 << 20, 5}})
	resp := make([]byte, ResponseSize(67)) // crosses a word boundary
	results := make([]bool, 67)
	for i := range results {
		results[i] = i%3 == 0
	}
	EncodeResponse(resp, results)
	errf := make([]byte, ErrorSize(len("replica overloaded")))
	EncodeError(errf, 429, "replica overloaded")
	return [][]byte{req, resp, errf}
}

// TestWireCorruptionReturnsErrors mirrors the snapshot corruption
// tests: every truncation of every valid frame kind must decode to an
// error, and every single-bit flip must either decode to an error or
// yield values that re-encode to exactly the mutated bytes (flips in
// pair/result payload change data, not framing — that is the
// application's checksum problem, not the codec's).
func TestWireCorruptionReturnsErrors(t *testing.T) {
	for _, frame := range seedFrames() {
		for cut := 0; cut < len(frame); cut++ {
			trunc := frame[:cut]
			// No truncation of these seeds can be a valid shorter frame:
			// the header still declares the full count, so the length
			// check fails before any payload is trusted.
			if _, err := RequestCount(trunc); err == nil {
				t.Fatalf("truncation to %d bytes decoded as a request", cut)
			}
			if _, err := ResponseCount(trunc); err == nil {
				t.Fatalf("truncation to %d bytes decoded as a response", cut)
			}
			if _, _, err := DecodeError(trunc); err == nil {
				t.Fatalf("truncation to %d bytes decoded as an error frame", cut)
			}
			decodeAny(t, trunc)
		}
		for off := 0; off < len(frame); off++ {
			for _, bit := range []byte{0x01, 0x80} {
				mut := bytes.Clone(frame)
				mut[off] ^= bit
				decodeAny(t, mut)
			}
		}
	}
}

// FuzzWireDecode throws arbitrary bytes at every decoder. The invariant
// is decodeAny's: no panic on any input, and any accepted frame must
// re-encode byte-identically (so the decoders can never "repair"
// hostile input into something the encoders would not produce).
func FuzzWireDecode(f *testing.F) {
	for _, frame := range seedFrames() {
		f.Add(frame)
		f.Add(frame[:len(frame)/2])
		f.Add(frame[:len(frame)-1])
		flipped := bytes.Clone(frame)
		flipped[4] ^= 0x02 // undefined flag bit
		f.Add(flipped)
	}
	f.Add([]byte{})
	f.Add([]byte("RWB"))
	f.Fuzz(func(t *testing.T, frame []byte) {
		decodeAny(t, frame)
	})
}
