package wireproto

import (
	"encoding/json"
	"testing"
)

// jsonBatchRequest/jsonBatchResponse mirror the server package's JSON
// wire shapes (importing internal/server here would be an import cycle
// once the server speaks this protocol).
type jsonBatchRequest struct {
	Pairs [][2]uint64 `json:"pairs"`
}

type jsonBatchResponse struct {
	Count   int    `json:"count"`
	Results []bool `json:"results"`
}

const benchBatch = 512

// BenchmarkWireBatch is the codec-level hot path, gated by the CI perf
// regression gate: encode+decode of one 512-pair request and its
// response, exactly the per-sub-batch work a router and replica pay on
// the binary path. Zero allocs/op on every sub-benchmark.
func BenchmarkWireBatch(b *testing.B) {
	pairs := testPairs(benchBatch)
	results := testResults(benchBatch)
	reqBuf := make([]byte, RequestSize(benchBatch))
	respBuf := make([]byte, ResponseSize(benchBatch))
	decPairs := make([][2]uint32, benchBatch)
	decResults := make([]bool, benchBatch)
	reqLen := EncodeRequest(reqBuf, pairs)
	respLen := EncodeResponse(respBuf, results)

	b.Run("encode", func(b *testing.B) {
		b.SetBytes(int64(reqLen + respLen))
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			EncodeRequest(reqBuf, pairs)
			EncodeResponse(respBuf, results)
		}
	})
	b.Run("decode", func(b *testing.B) {
		b.SetBytes(int64(reqLen + respLen))
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			n, err := RequestCount(reqBuf)
			if err != nil {
				b.Fatal(err)
			}
			if err := DecodeRequest(reqBuf, decPairs[:n]); err != nil {
				b.Fatal(err)
			}
			m, err := ResponseCount(respBuf)
			if err != nil {
				b.Fatal(err)
			}
			if err := DecodeResponse(respBuf, decResults[:m]); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkWireBatchJSON is the same 512-pair batch through
// encoding/json — the ablation baseline the binary protocol replaces.
// Not gated: the stdlib's speed is not this repo's regression to catch.
func BenchmarkWireBatchJSON(b *testing.B) {
	pairs32 := testPairs(benchBatch)
	pairs := make([][2]uint64, benchBatch)
	for i, p := range pairs32 {
		pairs[i] = [2]uint64{uint64(p[0]), uint64(p[1])}
	}
	results := testResults(benchBatch)
	reqBody, err := json.Marshal(jsonBatchRequest{Pairs: pairs})
	if err != nil {
		b.Fatal(err)
	}
	respBody, err := json.Marshal(jsonBatchResponse{Count: benchBatch, Results: results})
	if err != nil {
		b.Fatal(err)
	}

	b.Run("encode", func(b *testing.B) {
		b.SetBytes(int64(len(reqBody) + len(respBody)))
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := json.Marshal(jsonBatchRequest{Pairs: pairs}); err != nil {
				b.Fatal(err)
			}
			if _, err := json.Marshal(jsonBatchResponse{Count: benchBatch, Results: results}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("decode", func(b *testing.B) {
		b.SetBytes(int64(len(reqBody) + len(respBody)))
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			var req jsonBatchRequest
			if err := json.Unmarshal(reqBody, &req); err != nil {
				b.Fatal(err)
			}
			var resp jsonBatchResponse
			if err := json.Unmarshal(respBody, &resp); err != nil {
				b.Fatal(err)
			}
		}
	})
}
