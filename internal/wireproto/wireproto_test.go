package wireproto

import (
	"bytes"
	"encoding/binary"
	"errors"
	"math/rand"
	"testing"
)

func testPairs(n int) [][2]uint32 {
	rng := rand.New(rand.NewSource(9))
	pairs := make([][2]uint32, n)
	for i := range pairs {
		pairs[i] = [2]uint32{rng.Uint32(), rng.Uint32()}
	}
	return pairs
}

func testResults(n int) []bool {
	rng := rand.New(rand.NewSource(11))
	res := make([]bool, n)
	for i := range res {
		res[i] = rng.Intn(2) == 1
	}
	return res
}

func TestRequestRoundTrip(t *testing.T) {
	for _, n := range []int{0, 1, 2, 63, 64, 65, 512, 4096} {
		pairs := testPairs(n)
		buf := make([]byte, RequestSize(n))
		if got := EncodeRequest(buf, pairs); got != RequestSize(n) {
			t.Fatalf("n=%d: EncodeRequest wrote %d bytes, want %d", n, got, RequestSize(n))
		}
		count, err := RequestCount(buf)
		if err != nil || count != n {
			t.Fatalf("n=%d: RequestCount = %d, %v", n, count, err)
		}
		dec := make([][2]uint32, count)
		if err := DecodeRequest(buf, dec); err != nil {
			t.Fatalf("n=%d: DecodeRequest: %v", n, err)
		}
		for i := range pairs {
			if dec[i] != pairs[i] {
				t.Fatalf("n=%d: pair %d decoded %v, want %v", n, i, dec[i], pairs[i])
			}
		}
	}
}

func TestResponseRoundTrip(t *testing.T) {
	for _, n := range []int{0, 1, 2, 63, 64, 65, 127, 128, 512, 4097} {
		results := testResults(n)
		buf := make([]byte, ResponseSize(n))
		if got := EncodeResponse(buf, results); got != ResponseSize(n) {
			t.Fatalf("n=%d: EncodeResponse wrote %d bytes, want %d", n, got, ResponseSize(n))
		}
		count, err := ResponseCount(buf)
		if err != nil || count != n {
			t.Fatalf("n=%d: ResponseCount = %d, %v", n, count, err)
		}
		dec := make([]bool, count)
		if err := DecodeResponse(buf, dec); err != nil {
			t.Fatalf("n=%d: DecodeResponse: %v", n, err)
		}
		for i := range results {
			if dec[i] != results[i] {
				t.Fatalf("n=%d: result %d decoded %v, want %v", n, i, dec[i], results[i])
			}
		}
	}
}

func TestErrorFrameRoundTrip(t *testing.T) {
	const status = 503
	const msg = "request abandoned: context deadline exceeded"
	buf := make([]byte, ErrorSize(len(msg)))
	n := EncodeError(buf, status, msg)
	if n != ErrorSize(len(msg)) {
		t.Fatalf("EncodeError wrote %d bytes, want %d", n, ErrorSize(len(msg)))
	}
	if !IsError(buf) {
		t.Fatal("IsError = false on an error frame")
	}
	gotStatus, gotMsg, err := DecodeError(buf)
	if err != nil {
		t.Fatalf("DecodeError: %v", err)
	}
	if gotStatus != status || gotMsg != msg {
		t.Fatalf("DecodeError = (%d, %q), want (%d, %q)", gotStatus, gotMsg, status, msg)
	}

	// Error decoders must reject the other frame kinds and vice versa.
	req := make([]byte, RequestSize(1))
	EncodeRequest(req, [][2]uint32{{1, 2}})
	if IsError(req) {
		t.Fatal("IsError = true on a request frame")
	}
	if _, _, err := DecodeError(req); !errors.Is(err, ErrFrameKind) {
		t.Fatalf("DecodeError(request) = %v, want ErrFrameKind", err)
	}
	if _, err := RequestCount(buf); !errors.Is(err, ErrFrameKind) {
		t.Fatalf("RequestCount(error frame) = %v, want ErrFrameKind", err)
	}
	if _, err := ResponseCount(buf); !errors.Is(err, ErrFrameKind) {
		t.Fatalf("ResponseCount(error frame) = %v, want ErrFrameKind", err)
	}
}

func TestParseHeaderRejections(t *testing.T) {
	valid := make([]byte, RequestSize(2))
	EncodeRequest(valid, [][2]uint32{{1, 2}, {3, 4}})

	mutate := func(f func(b []byte)) []byte {
		b := bytes.Clone(valid)
		f(b)
		return b
	}
	cases := []struct {
		name  string
		frame []byte
		want  error
	}{
		{"empty", nil, ErrTruncated},
		{"short header", valid[:HeaderSize-1], ErrTruncated},
		{"bad magic", mutate(func(b []byte) { b[0] = 'X' }), ErrMagic},
		{"bad version", mutate(func(b []byte) { b[3] = 2 }), ErrVersion},
		{"unknown flags", mutate(func(b []byte) { b[4] = 0x80 }), ErrFlags},
		{"count too large", mutate(func(b []byte) {
			binary.LittleEndian.PutUint32(b[8:12], MaxCount+1)
		}), ErrCount},
	}
	for _, tc := range cases {
		if _, err := ParseHeader(tc.frame); !errors.Is(err, tc.want) {
			t.Errorf("%s: ParseHeader = %v, want %v", tc.name, err, tc.want)
		}
	}
}

func TestLengthMismatches(t *testing.T) {
	req := make([]byte, RequestSize(2))
	EncodeRequest(req, [][2]uint32{{1, 2}, {3, 4}})
	if _, err := RequestCount(req[:len(req)-1]); !errors.Is(err, ErrTruncated) {
		t.Fatalf("truncated request: %v, want ErrTruncated", err)
	}
	if _, err := RequestCount(append(bytes.Clone(req), 0)); !errors.Is(err, ErrLength) {
		t.Fatalf("overlong request: %v, want ErrLength", err)
	}
	if err := DecodeRequest(req, make([][2]uint32, 3)); !errors.Is(err, ErrBuffer) {
		t.Fatalf("mis-sized decode buffer: %v, want ErrBuffer", err)
	}

	resp := make([]byte, ResponseSize(3))
	EncodeResponse(resp, []bool{true, false, true})
	if _, err := ResponseCount(resp[:len(resp)-1]); !errors.Is(err, ErrTruncated) {
		t.Fatalf("truncated response: %v, want ErrTruncated", err)
	}
	if err := DecodeResponse(resp, make([]bool, 4)); !errors.Is(err, ErrBuffer) {
		t.Fatalf("mis-sized response buffer: %v, want ErrBuffer", err)
	}

	// Padding bits past the result count must be zero.
	dirty := bytes.Clone(resp)
	dirty[len(dirty)-1] |= 0x80 // bit 63 of the only word; count is 3
	if _, err := ResponseCount(dirty); !errors.Is(err, ErrPadding) {
		t.Fatalf("dirty padding: %v, want ErrPadding", err)
	}
}

// TestCodecZeroAlloc pins the //reach:hotpath contract: encoding and
// decoding a batch allocates nothing on either side. The hotpathalloc
// analyzer rejects allocating constructs line-by-line; this pins the
// whole-function truth.
func TestCodecZeroAlloc(t *testing.T) {
	const n = 512
	pairs := testPairs(n)
	results := testResults(n)
	reqBuf := make([]byte, RequestSize(n))
	respBuf := make([]byte, ResponseSize(n))
	decPairs := make([][2]uint32, n)
	decResults := make([]bool, n)
	EncodeRequest(reqBuf, pairs)
	EncodeResponse(respBuf, results)

	pin := func(name string, f func()) {
		t.Helper()
		if allocs := testing.AllocsPerRun(100, f); allocs != 0 {
			t.Errorf("%s allocates %.1f times per op, want 0", name, allocs)
		}
	}
	pin("EncodeRequest", func() { EncodeRequest(reqBuf, pairs) })
	pin("DecodeRequest", func() {
		if _, err := RequestCount(reqBuf); err != nil {
			t.Fatal(err)
		}
		if err := DecodeRequest(reqBuf, decPairs); err != nil {
			t.Fatal(err)
		}
	})
	pin("EncodeResponse", func() { EncodeResponse(respBuf, results) })
	pin("DecodeResponse", func() {
		if _, err := ResponseCount(respBuf); err != nil {
			t.Fatal(err)
		}
		if err := DecodeResponse(respBuf, decResults); err != nil {
			t.Fatal(err)
		}
	})
}
