package wireproto

import (
	"bufio"
	"bytes"
	"fmt"
	"os"
	"strings"
	"testing"
)

const specPath = "../../docs/WIRE.md"

// specFrames extracts the example frames from docs/WIRE.md. A frame
// block is a fenced code block whose info string is "frame:<name>";
// inside it, each line's leading whitespace-separated two-hex-digit
// tokens are frame bytes and everything from the first non-hex token on
// is commentary.
func specFrames(t *testing.T) map[string][]byte {
	t.Helper()
	f, err := os.Open(specPath)
	if err != nil {
		t.Fatalf("reading the wire spec: %v", err)
	}
	defer f.Close()

	frames := make(map[string][]byte)
	var name string // current block, "" outside one
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case name == "" && strings.HasPrefix(line, "```frame:"):
			name = strings.TrimPrefix(line, "```frame:")
			if _, dup := frames[name]; dup {
				t.Fatalf("duplicate example frame %q in %s", name, specPath)
			}
			frames[name] = nil
		case name != "" && strings.HasPrefix(line, "```"):
			name = ""
		case name != "":
			for _, tok := range strings.Fields(line) {
				var b byte
				if len(tok) != 2 {
					break
				}
				if _, err := fmt.Sscanf(tok, "%02x", &b); err != nil {
					break
				}
				frames[name] = append(frames[name], b)
			}
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if name != "" {
		t.Fatalf("unterminated frame block %q in %s", name, specPath)
	}
	return frames
}

// TestWireSpecInSync round-trips every example frame documented in
// docs/WIRE.md through the real codec: the documented bytes must be
// exactly what the encoder produces for the documented meaning, and
// the decoder must read the documented meaning back out. Editing the
// spec or the codec without the other fails here.
func TestWireSpecInSync(t *testing.T) {
	frames := specFrames(t)

	check := func(name string, want []byte, encode func(buf []byte) int) []byte {
		t.Helper()
		doc, ok := frames[name]
		if !ok {
			t.Fatalf("spec has no ```frame:%s example", name)
		}
		got := make([]byte, len(want))
		if n := encode(got); n != len(want) {
			t.Fatalf("%s: encoder wrote %d bytes, spec documents %d", name, n, len(want))
		}
		if !bytes.Equal(got, doc) {
			t.Fatalf("%s: spec and codec disagree\n spec:  %x\n codec: %x", name, doc, got)
		}
		delete(frames, name)
		return doc
	}

	reqPairs := [][2]uint32{{0, 3}, {7, 2}, {5, 5}}
	doc := check("request", make([]byte, RequestSize(3)), func(buf []byte) int {
		return EncodeRequest(buf, reqPairs)
	})
	n, err := RequestCount(doc)
	if err != nil || n != len(reqPairs) {
		t.Fatalf("request: RequestCount = %d, %v", n, err)
	}
	dec := make([][2]uint32, n)
	if err := DecodeRequest(doc, dec); err != nil {
		t.Fatal(err)
	}
	for i := range reqPairs {
		if dec[i] != reqPairs[i] {
			t.Fatalf("request: pair %d decodes to %v, spec documents %v", i, dec[i], reqPairs[i])
		}
	}

	check("request-empty", make([]byte, RequestSize(0)), func(buf []byte) int {
		return EncodeRequest(buf, nil)
	})

	respResults := []bool{true, false, true}
	doc = check("response", make([]byte, ResponseSize(3)), func(buf []byte) int {
		return EncodeResponse(buf, respResults)
	})
	if n, err := ResponseCount(doc); err != nil || n != 3 {
		t.Fatalf("response: ResponseCount = %d, %v", n, err)
	}
	got3 := make([]bool, 3)
	if err := DecodeResponse(doc, got3); err != nil {
		t.Fatal(err)
	}
	for i := range respResults {
		if got3[i] != respResults[i] {
			t.Fatalf("response: result %d decodes to %v, spec documents %v", i, got3[i], respResults[i])
		}
	}

	multi := make([]bool, 65)
	multi[0], multi[64] = true, true
	doc = check("response-multiword", make([]byte, ResponseSize(65)), func(buf []byte) int {
		return EncodeResponse(buf, multi)
	})
	got65 := make([]bool, 65)
	if err := DecodeResponse(doc, got65); err != nil {
		t.Fatal(err)
	}
	for i := range multi {
		if got65[i] != multi[i] {
			t.Fatalf("response-multiword: result %d decodes to %v, spec documents %v", i, got65[i], multi[i])
		}
	}

	const errStatus, errMsg = 429, "replica overloaded"
	doc = check("error", make([]byte, ErrorSize(len(errMsg))), func(buf []byte) int {
		return EncodeError(buf, errStatus, errMsg)
	})
	status, msg, err := DecodeError(doc)
	if err != nil || status != errStatus || msg != errMsg {
		t.Fatalf("error: DecodeError = (%d, %q, %v), spec documents (%d, %q)", status, msg, err, errStatus, errMsg)
	}

	doc = check("stream-envelope", make([]byte, EnvelopeSize), func(buf []byte) int {
		PutEnvelope(buf, 7, 0, 36)
		return EnvelopeSize
	})
	if stream, flags, frameLen, err := ParseEnvelope(doc, 1<<20); err != nil || stream != 7 || flags != 0 || frameLen != 36 {
		t.Fatalf("stream-envelope: ParseEnvelope = (%d, %d, %d, %v), spec documents (7, 0, 36)",
			stream, flags, frameLen, err)
	}

	const envTrace = "ab12"
	doc = check("stream-envelope-trace", make([]byte, EnvelopeSize+TraceSize(len(envTrace))), func(buf []byte) int {
		PutEnvelope(buf, 8, EnvFlagTrace, HeaderSize)
		return EnvelopeSize + PutTrace(buf[EnvelopeSize:], envTrace)
	})
	stream, flags, frameLen, err := ParseEnvelope(doc, 1<<20)
	if err != nil || stream != 8 || flags != EnvFlagTrace || frameLen != HeaderSize {
		t.Fatalf("stream-envelope-trace: ParseEnvelope = (%d, %d, %d, %v), spec documents (8, %d, %d)",
			stream, flags, frameLen, err, EnvFlagTrace, HeaderSize)
	}
	tn, err := ParseTraceLen(doc[EnvelopeSize:])
	if err != nil || tn != len(envTrace) {
		t.Fatalf("stream-envelope-trace: ParseTraceLen = (%d, %v), spec documents %d", tn, err, len(envTrace))
	}
	if got := string(doc[EnvelopeSize+4 : EnvelopeSize+4+tn]); got != envTrace {
		t.Fatalf("stream-envelope-trace: trace ID %q, spec documents %q", got, envTrace)
	}

	const hsFP = "a1b2c3d4e5f60718"
	doc = check("handshake", make([]byte, HandshakeSize(len(hsFP))), func(buf []byte) int {
		return EncodeHandshake(buf, CapTrace, hsFP)
	})
	caps, fp, err := DecodeHandshake(doc)
	if err != nil || caps != CapTrace || fp != hsFP {
		t.Fatalf("handshake: DecodeHandshake = (%d, %q, %v), spec documents (%d, %q)", caps, fp, err, CapTrace, hsFP)
	}

	// Every example in the spec must be exercised above — an example
	// this test does not know about is an example nothing keeps honest.
	for name := range frames {
		t.Errorf("spec documents ```frame:%s but TestWireSpecInSync does not verify it", name)
	}
}
