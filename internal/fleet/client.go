package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net"
	"net/http"
	"net/url"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/mux"
	"repro/internal/obs"
	"repro/internal/server"
	"repro/internal/wireproto"
)

// wireCounters tallies batch traffic by encoding from the sender's
// perspective: tx is request-body bytes sent to replicas, rx is
// response-body bytes read back. The router shares one instance across
// its replica clients and exposes it as reach_wire_frames_total /
// reach_wire_bytes_total.
type wireCounters struct {
	framesJSON   atomic.Int64
	framesBinary atomic.Int64
	txJSON       atomic.Int64
	rxJSON       atomic.Int64
	txBinary     atomic.Int64
	rxBinary     atomic.Int64
}

// Client speaks the reachd v1 wire protocol to one replica. It reuses
// the server package's exported wire types, so the router can never
// drift from what the replicas actually serve.
type Client struct {
	base string
	hc   *http.Client

	// binaryWire selects wireproto frames for Batch. The router sets it
	// from the replica's healthz "wire" capability at every probe; the
	// client clears it itself on a 415 (the replica's definitive "I
	// don't speak binary") and retries the batch as JSON.
	binaryWire atomic.Bool

	// muxPool, when set, is the persistent stream-transport connection
	// pool to this replica (internal/mux): Batch tries it before HTTP and
	// falls back per batch when no connection is available. The router
	// installs it via UseMux from the replica's healthz "mux"
	// advertisement and tears it down when the advertisement disappears.
	muxPool atomic.Pointer[mux.Pool]

	// counters receives this client's batch traffic accounting; NewClient
	// allocates a private set, the router repoints it at a shared one.
	// muxCounters is the stream-transport equivalent (set before UseMux;
	// nil gives each pool a private set).
	counters    *wireCounters
	muxCounters *mux.Counters
}

// NewClient returns a client for the replica at base (e.g.
// "http://10.0.0.3:8080"). timeout bounds each request end-to-end; zero
// means no timeout. Batches go as JSON until UseBinaryWire(true).
func NewClient(base string, timeout time.Duration) *Client {
	return &Client{base: base, hc: &http.Client{Timeout: timeout}, counters: &wireCounters{}}
}

// UseBinaryWire switches Batch between wireproto frames and JSON. Turn
// it on only for replicas whose healthz advertises the "binary" wire
// capability; the client demotes itself back to JSON if the replica
// answers 415 anyway (e.g. restarted with -wire=json between probes).
func (c *Client) UseBinaryWire(on bool) { c.binaryWire.Store(on) }

// BinaryWire reports whether Batch currently encodes wireproto frames.
func (c *Client) BinaryWire() bool { return c.binaryWire.Load() }

// UseMux points Batch at the replica's stream-transport listener:
// subsequent batches go over persistent mux connections (dialed lazily,
// fingerprint-checked in the handshake) with per-batch HTTP fallback.
// An empty addr tears the pool down — the replica stopped advertising
// the capability. Idempotent per (addr, fingerprint), so the router can
// call it on every probe; a changed address or fingerprint replaces the
// pool (closing the old one) so stale connections can't outlive what
// healthz now claims.
func (c *Client) UseMux(addr, fingerprint string) {
	old := c.muxPool.Load()
	if addr == "" {
		if old != nil && c.muxPool.CompareAndSwap(old, nil) {
			old.Close()
		}
		return
	}
	if old != nil && old.Addr() == addr && old.Fingerprint() == fingerprint {
		return
	}
	p := mux.NewPool(addr, mux.DefaultConnsPerReplica, mux.ClientConfig{
		Fingerprint: fingerprint,
		Counters:    c.muxCounters,
	})
	if c.muxPool.CompareAndSwap(old, p) {
		if old != nil {
			old.Close()
		}
	} else {
		p.Close() // lost a race with a concurrent UseMux; keep the winner
	}
}

// MuxActive reports whether Batch currently tries the stream transport
// first — the per-replica "transport" truth /v1/stats exposes.
func (c *Client) MuxActive() bool { return c.muxPool.Load() != nil }

// MuxOpenConns reports the pool's currently open connections (0 with no
// pool), feeding the router's reach_mux_conns gauge.
func (c *Client) MuxOpenConns() int {
	if p := c.muxPool.Load(); p != nil {
		return p.OpenConns()
	}
	return 0
}

// Base returns the replica's base URL.
func (c *Client) Base() string { return c.base }

// StatusError is a non-2xx reply from a replica. The router decides per
// status what to do: 429 and 5xx are retryable on another replica, other
// 4xx are the caller's fault and pass through unchanged.
type StatusError struct {
	Status int
	Body   string // replica's ErrorResponse body, best-effort decoded
	// RetryAfter is the parsed Retry-After header in seconds (0 when
	// absent); only meaningful on 429.
	RetryAfter int
}

func (e *StatusError) Error() string {
	if e.Body != "" {
		return fmt.Sprintf("replica answered HTTP %d: %s", e.Status, e.Body)
	}
	return fmt.Sprintf("replica answered HTTP %d", e.Status)
}

// Retryable reports whether another replica might answer where this one
// refused: overload (429) and server-side errors (5xx) are worth a
// failover, caller errors (other 4xx) are not.
func (e *StatusError) Retryable() bool {
	return e.Status == http.StatusTooManyRequests || e.Status >= 500
}

// do issues the request and decodes a 2xx JSON body into out. Non-2xx
// replies become *StatusError; transport failures are returned as-is so
// the router can treat them as replica death. A trace ID carried by the
// request's context propagates to the replica as X-Reach-Trace, so one
// ID follows a query through router and replica logs.
func (c *Client) do(req *http.Request, out any) error {
	return c.doCount(req, out, nil)
}

// doCount is do with optional response-byte accounting: when rx is
// non-nil it receives the body bytes read (decode and drain both count),
// feeding the reach_wire_bytes_total{direction="rx"} series.
func (c *Client) doCount(req *http.Request, out any, rx *atomic.Int64) error {
	if id := obs.TraceFrom(req.Context()); id != "" {
		req.Header.Set(obs.TraceHeader, id)
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	body := &countingReader{r: resp.Body}
	defer func() {
		io.Copy(io.Discard, body) // drain so keep-alive can reuse the conn
		resp.Body.Close()
		if rx != nil {
			rx.Add(body.n)
		}
	}()
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		se := &StatusError{Status: resp.StatusCode}
		var eresp server.ErrorResponse
		if raw, err := io.ReadAll(io.LimitReader(body, 4096)); err == nil {
			if json.Unmarshal(raw, &eresp) == nil && eresp.Error != "" {
				se.Body = eresp.Error
			} else {
				se.Body = string(bytes.TrimSpace(raw))
			}
		}
		if ra, err := strconv.Atoi(resp.Header.Get("Retry-After")); err == nil && ra > 0 {
			se.RetryAfter = ra
		}
		return se
	}
	if out == nil {
		return nil
	}
	return json.NewDecoder(body).Decode(out)
}

// countingReader tallies bytes read through it.
type countingReader struct {
	r io.Reader
	n int64
}

func (c *countingReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.n += int64(n)
	return n, err
}

func (c *Client) get(ctx context.Context, path string, out any) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+path, nil)
	if err != nil {
		return err
	}
	return c.do(req, out)
}

// Healthz probes the replica's liveness and serving identity.
func (c *Client) Healthz(ctx context.Context) (server.HealthzResponse, error) {
	var hz server.HealthzResponse
	err := c.get(ctx, "/v1/healthz", &hz)
	return hz, err
}

// Stats fetches the replica's full /v1/stats counters.
func (c *Client) Stats(ctx context.Context) (server.Stats, error) {
	var st server.Stats
	err := c.get(ctx, "/v1/stats", &st)
	return st, err
}

// Reachable asks the replica one query.
func (c *Client) Reachable(ctx context.Context, u, v uint64) (server.ReachableResponse, error) {
	var rr server.ReachableResponse
	err := c.get(ctx, fmt.Sprintf("/v1/reachable?u=%d&v=%d", u, v), &rr)
	return rr, err
}

// Batch sends pairs to the replica's /v1/batch and returns the in-order
// results. A reply whose result count does not match the pair count is a
// protocol violation and is reported as an error rather than silently
// misaligned.
//
// With the binary wire negotiated (see UseBinaryWire), pairs go as one
// wireproto frame; JSON remains the fallback for replicas that answer
// 415 and for batches whose IDs exceed the frame format's uint32 range.
//
// With a mux pool installed on top (see UseMux), the frame goes over a
// persistent stream-transport connection instead of an HTTP request;
// when no connection is available (dial failure, backoff window, a
// connection that just died) the batch falls back to HTTP binary — the
// fallback is per batch, so the transport self-heals without the router
// noticing.
func (c *Client) Batch(ctx context.Context, pairs [][2]uint64) ([]bool, error) {
	if c.binaryWire.Load() {
		if p := c.muxPool.Load(); p != nil {
			results, ok, err := c.batchMux(ctx, p, pairs)
			if err != nil {
				return nil, err
			}
			if ok {
				return results, nil
			}
			// Fell through: no usable connection or wide IDs — try HTTP.
		}
		results, ok, err := c.batchBinary(ctx, pairs)
		if err != nil {
			return nil, err
		}
		if ok {
			return results, nil
		}
		// Fell through: wide IDs (this batch only) or a 415 (the client
		// demoted itself to JSON for good).
	}
	return c.batchJSON(ctx, pairs)
}

// batchMux sends pairs over the stream transport. ok=false with a nil
// error means "try HTTP instead, this batch": the pool has no usable
// connection right now (it redials in the background), the connection
// died mid-flight (a transport error, not a replica verdict), or the
// batch carries IDs wider than the frame format's uint32. Replica
// verdicts — error frames — surface as *StatusError exactly like HTTP
// statuses, so the router's retry/failover policy is transport-blind.
func (c *Client) batchMux(ctx context.Context, p *mux.Pool, pairs [][2]uint64) (results []bool, ok bool, err error) {
	for _, pr := range pairs {
		if pr[0] > math.MaxUint32 || pr[1] > math.MaxUint32 {
			return nil, false, nil
		}
	}
	cn, err := p.Get(ctx)
	if err != nil {
		if ctxErr := ctx.Err(); ctxErr != nil {
			return nil, false, ctxErr
		}
		return nil, false, nil // no connection: backoff window or dial failure
	}
	n := len(pairs)
	sc := clientScratchPool.Get().(*clientScratch)
	defer clientScratchPool.Put(sc)
	if cap(sc.pairs) < n {
		sc.pairs = make([][2]uint32, n)
	}
	p32 := sc.pairs[:n]
	for i, pr := range pairs {
		p32[i] = [2]uint32{uint32(pr[0]), uint32(pr[1])}
	}
	out := make([]bool, n)
	if err := cn.Batch(ctx, p32, out, obs.TraceFrom(ctx)); err != nil {
		var f *mux.Fail
		if errors.As(err, &f) {
			// The replica answered and refused — same verdict it would
			// have given over HTTP, so same error shape.
			return nil, false, &StatusError{Status: f.Status, Body: f.Msg}
		}
		if ctxErr := ctx.Err(); ctxErr != nil {
			return nil, false, ctxErr
		}
		// Transport failure: the connection is dead (the pool replaces it
		// on a later Get). The replica may be fine — let HTTP decide.
		return nil, false, nil
	}
	return out, true, nil
}

// resolveMuxAddr turns a replica's advertised mux address into a
// dialable one. Replicas advertise whatever their listener bound; a
// wildcard host (":9090", "0.0.0.0:9090", "[::]:9090") names every
// interface and none, so the router substitutes the host it already
// reaches the replica's HTTP API on. Returns "" for an unparseable
// advertisement — the router then just stays on HTTP.
func resolveMuxAddr(base, adv string) string {
	host, port, err := net.SplitHostPort(adv)
	if err != nil || port == "" {
		return ""
	}
	if host == "" || host == "0.0.0.0" || host == "::" {
		u, err := url.Parse(base)
		if err != nil || u.Hostname() == "" {
			return ""
		}
		host = u.Hostname()
	}
	return net.JoinHostPort(host, port)
}

func (c *Client) batchJSON(ctx context.Context, pairs [][2]uint64) ([]bool, error) {
	body, err := json.Marshal(server.BatchRequest{Pairs: pairs})
	if err != nil {
		return nil, err
	}
	c.counters.framesJSON.Add(1)
	c.counters.txJSON.Add(int64(len(body)))
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+"/v1/batch", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	var br server.BatchResponse
	if err := c.doCount(req, &br, &c.counters.rxJSON); err != nil {
		return nil, err
	}
	if len(br.Results) != len(pairs) {
		return nil, fmt.Errorf("replica answered %d results for %d pairs", len(br.Results), len(pairs))
	}
	return br.Results, nil
}

// clientScratch is one binary batch's worth of reusable buffers: the
// request frame (reused to read the smaller response frame back) and the
// narrowed pairs.
type clientScratch struct {
	frame []byte
	pairs [][2]uint32
}

var clientScratchPool = sync.Pool{New: func() any { return new(clientScratch) }}

// batchBinary sends pairs as one wireproto request frame. ok=false with
// a nil error means "send this (and maybe every future) batch as JSON
// instead": the batch carries IDs wider than the frame format's uint32,
// or the replica answered 415 and the client demoted itself.
func (c *Client) batchBinary(ctx context.Context, pairs [][2]uint64) (results []bool, ok bool, err error) {
	for _, p := range pairs {
		if p[0] > math.MaxUint32 || p[1] > math.MaxUint32 {
			return nil, false, nil
		}
	}
	n := len(pairs)
	sc := clientScratchPool.Get().(*clientScratch)
	defer clientScratchPool.Put(sc)
	if cap(sc.pairs) < n {
		sc.pairs = make([][2]uint32, n)
	}
	p32 := sc.pairs[:n]
	for i, p := range pairs {
		p32[i] = [2]uint32{uint32(p[0]), uint32(p[1])}
	}
	size := wireproto.RequestSize(n)
	if cap(sc.frame) < size {
		sc.frame = make([]byte, size)
	}
	frame := sc.frame[:size]
	wireproto.EncodeRequest(frame, p32)

	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+"/v1/batch", bytes.NewReader(frame))
	if err != nil {
		return nil, false, err
	}
	req.Header.Set("Content-Type", wireproto.ContentType)
	if id := obs.TraceFrom(ctx); id != "" {
		req.Header.Set(obs.TraceHeader, id)
	}
	c.counters.framesBinary.Add(1)
	c.counters.txBinary.Add(int64(size))
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, false, err
	}
	defer func() {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}()

	if resp.StatusCode == http.StatusUnsupportedMediaType {
		// The replica does not speak these frames (restarted with
		// -wire=json between probes, or an older build). Demote to JSON
		// until a probe re-advertises the capability.
		c.binaryWire.Store(false)
		return nil, false, nil
	}
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		se := &StatusError{Status: resp.StatusCode}
		if raw, rerr := io.ReadAll(io.LimitReader(resp.Body, 4096)); rerr == nil {
			c.counters.rxBinary.Add(int64(len(raw)))
			if _, msg, derr := wireproto.DecodeError(raw); derr == nil {
				se.Body = msg
			} else {
				// Not an error frame — a proxy or mux answered. Keep the
				// same best-effort body decoding the JSON path uses.
				var eresp server.ErrorResponse
				if json.Unmarshal(raw, &eresp) == nil && eresp.Error != "" {
					se.Body = eresp.Error
				} else {
					se.Body = string(bytes.TrimSpace(raw))
				}
			}
		}
		if ra, aerr := strconv.Atoi(resp.Header.Get("Retry-After")); aerr == nil && ra > 0 {
			se.RetryAfter = ra
		}
		return nil, false, se
	}

	// Success: the response frame is exactly ResponseSize(n) bytes and
	// fits in the request's buffer (results are bit-packed).
	rsize := wireproto.ResponseSize(n)
	rframe := sc.frame[:rsize]
	if _, err := io.ReadFull(resp.Body, rframe); err != nil {
		return nil, false, fmt.Errorf("reading response frame: %w", err)
	}
	var trailer [1]byte
	if extra, _ := resp.Body.Read(trailer[:]); extra != 0 {
		return nil, false, fmt.Errorf("replica sent trailing bytes after response frame")
	}
	c.counters.rxBinary.Add(int64(rsize))
	m, err := wireproto.ResponseCount(rframe)
	if err != nil {
		return nil, false, fmt.Errorf("bad response frame: %w", err)
	}
	if m != n {
		return nil, false, fmt.Errorf("replica answered %d results for %d pairs", m, n)
	}
	results = make([]bool, n)
	if err := wireproto.DecodeResponse(rframe, results); err != nil {
		return nil, false, fmt.Errorf("bad response frame: %w", err)
	}
	return results, true, nil
}

// CloseIdleConnections releases the client's pooled keep-alive
// connections — HTTP keep-alives and the mux pool both.
func (c *Client) CloseIdleConnections() {
	c.hc.CloseIdleConnections()
	if old := c.muxPool.Load(); old != nil && c.muxPool.CompareAndSwap(old, nil) {
		old.Close()
	}
}
