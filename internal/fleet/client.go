package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"

	"repro/internal/obs"
	"repro/internal/server"
)

// Client speaks the reachd v1 wire protocol to one replica. It reuses
// the server package's exported wire types, so the router can never
// drift from what the replicas actually serve.
type Client struct {
	base string
	hc   *http.Client
}

// NewClient returns a client for the replica at base (e.g.
// "http://10.0.0.3:8080"). timeout bounds each request end-to-end; zero
// means no timeout.
func NewClient(base string, timeout time.Duration) *Client {
	return &Client{base: base, hc: &http.Client{Timeout: timeout}}
}

// Base returns the replica's base URL.
func (c *Client) Base() string { return c.base }

// StatusError is a non-2xx reply from a replica. The router decides per
// status what to do: 429 and 5xx are retryable on another replica, other
// 4xx are the caller's fault and pass through unchanged.
type StatusError struct {
	Status int
	Body   string // replica's ErrorResponse body, best-effort decoded
	// RetryAfter is the parsed Retry-After header in seconds (0 when
	// absent); only meaningful on 429.
	RetryAfter int
}

func (e *StatusError) Error() string {
	if e.Body != "" {
		return fmt.Sprintf("replica answered HTTP %d: %s", e.Status, e.Body)
	}
	return fmt.Sprintf("replica answered HTTP %d", e.Status)
}

// Retryable reports whether another replica might answer where this one
// refused: overload (429) and server-side errors (5xx) are worth a
// failover, caller errors (other 4xx) are not.
func (e *StatusError) Retryable() bool {
	return e.Status == http.StatusTooManyRequests || e.Status >= 500
}

// do issues the request and decodes a 2xx JSON body into out. Non-2xx
// replies become *StatusError; transport failures are returned as-is so
// the router can treat them as replica death. A trace ID carried by the
// request's context propagates to the replica as X-Reach-Trace, so one
// ID follows a query through router and replica logs.
func (c *Client) do(req *http.Request, out any) error {
	if id := obs.TraceFrom(req.Context()); id != "" {
		req.Header.Set(obs.TraceHeader, id)
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	defer func() {
		io.Copy(io.Discard, resp.Body) // drain so keep-alive can reuse the conn
		resp.Body.Close()
	}()
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		se := &StatusError{Status: resp.StatusCode}
		var eresp server.ErrorResponse
		if body, err := io.ReadAll(io.LimitReader(resp.Body, 4096)); err == nil {
			if json.Unmarshal(body, &eresp) == nil && eresp.Error != "" {
				se.Body = eresp.Error
			} else {
				se.Body = string(bytes.TrimSpace(body))
			}
		}
		if ra, err := strconv.Atoi(resp.Header.Get("Retry-After")); err == nil && ra > 0 {
			se.RetryAfter = ra
		}
		return se
	}
	if out == nil {
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

func (c *Client) get(ctx context.Context, path string, out any) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+path, nil)
	if err != nil {
		return err
	}
	return c.do(req, out)
}

// Healthz probes the replica's liveness and serving identity.
func (c *Client) Healthz(ctx context.Context) (server.HealthzResponse, error) {
	var hz server.HealthzResponse
	err := c.get(ctx, "/v1/healthz", &hz)
	return hz, err
}

// Stats fetches the replica's full /v1/stats counters.
func (c *Client) Stats(ctx context.Context) (server.Stats, error) {
	var st server.Stats
	err := c.get(ctx, "/v1/stats", &st)
	return st, err
}

// Reachable asks the replica one query.
func (c *Client) Reachable(ctx context.Context, u, v uint64) (server.ReachableResponse, error) {
	var rr server.ReachableResponse
	err := c.get(ctx, fmt.Sprintf("/v1/reachable?u=%d&v=%d", u, v), &rr)
	return rr, err
}

// Batch sends pairs to the replica's /v1/batch and returns the in-order
// results. A reply whose result count does not match the pair count is a
// protocol violation and is reported as an error rather than silently
// misaligned.
func (c *Client) Batch(ctx context.Context, pairs [][2]uint64) ([]bool, error) {
	body, err := json.Marshal(server.BatchRequest{Pairs: pairs})
	if err != nil {
		return nil, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+"/v1/batch", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	var br server.BatchResponse
	if err := c.do(req, &br); err != nil {
		return nil, err
	}
	if len(br.Results) != len(pairs) {
		return nil, fmt.Errorf("replica answered %d results for %d pairs", len(br.Results), len(pairs))
	}
	return br.Results, nil
}

// CloseIdleConnections releases the client's pooled keep-alive
// connections.
func (c *Client) CloseIdleConnections() { c.hc.CloseIdleConnections() }
