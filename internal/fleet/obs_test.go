package fleet

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/server"
)

// logBuffer is a goroutine-safe bytes.Buffer for slow-log capture.
type logBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *logBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *logBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// TestTracePropagationE2E drives a query through the full chain — client
// sets X-Reach-Trace, router forwards it to the replica it picks, and
// the router's response echoes it — so one grep of any tier's logs
// follows the request.
func TestTracePropagationE2E(t *testing.T) {
	f := newFakeReplica("fp-trace", xorAnswer)
	base := f.start(t)
	rt := newTestRouter(t, silentCfg(base))
	waitState(t, rt, base, stateHealthy)
	ts := httptest.NewServer(rt.Handler())
	defer ts.Close()

	req, _ := http.NewRequest("GET", ts.URL+"/v1/reachable?u=3&v=9", nil)
	req.Header.Set(obs.TraceHeader, "e2e-trace-42")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if got := resp.Header.Get(obs.TraceHeader); got != "e2e-trace-42" {
		t.Fatalf("router trace echo: %q, want e2e-trace-42", got)
	}
	if got, _ := f.lastTrace.Load().(string); got != "e2e-trace-42" {
		t.Fatalf("replica received trace %q, want e2e-trace-42", got)
	}
	st := resp.Header.Get(obs.ServerTimingHeader)
	for _, stage := range []string{"route;dur=", "total;dur="} {
		if !strings.Contains(st, stage) {
			t.Fatalf("router server timing %q missing %s", st, stage)
		}
	}

	// Without a client ID the router mints one and still forwards it.
	resp, err = http.Get(ts.URL + "/v1/reachable?u=1&v=2")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	minted := resp.Header.Get(obs.TraceHeader)
	if len(minted) != 16 {
		t.Fatalf("minted trace ID %q, want 16 hex chars", minted)
	}
	if got, _ := f.lastTrace.Load().(string); got != minted {
		t.Fatalf("replica received trace %q, router minted %q", got, minted)
	}

	// Batches propagate the same way.
	body, _ := json.Marshal(server.BatchRequest{Pairs: [][2]uint64{{1, 2}, {3, 4}}})
	breq, _ := http.NewRequest("POST", ts.URL+"/v1/batch", bytes.NewReader(body))
	breq.Header.Set(obs.TraceHeader, "e2e-batch-trace")
	resp, err = http.DefaultClient.Do(breq)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if got, _ := f.lastTrace.Load().(string); got != "e2e-batch-trace" {
		t.Fatalf("replica received batch trace %q, want e2e-batch-trace", got)
	}
}

func TestRouterMetricsEndpoint(t *testing.T) {
	f1 := newFakeReplica("fp-met", xorAnswer)
	f2 := newFakeReplica("fp-met", xorAnswer)
	b1, b2 := f1.start(t), f2.start(t)
	rt := newTestRouter(t, silentCfg(b1, b2))
	waitState(t, rt, b1, stateHealthy)
	waitState(t, rt, b2, stateHealthy)
	ts := httptest.NewServer(rt.Handler())
	defer ts.Close()

	for i := 0; i < 7; i++ {
		resp, err := http.Get(ts.URL + fmt.Sprintf("/v1/reachable?u=%d&v=%d", i, i+1))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}
	body, _ := json.Marshal(server.BatchRequest{Pairs: [][2]uint64{{0, 1}, {2, 3}}})
	resp, err := http.Post(ts.URL+"/v1/batch", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()

	resp, err = http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	text := string(raw)
	for _, want := range []string{
		`reach_http_request_seconds_count{endpoint="reachable"} 7`,
		`reach_http_request_seconds_count{endpoint="batch"} 1`,
		"reach_router_requests_total 7",
		"reach_router_batch_requests_total 1",
		"reach_router_replicas_healthy 2",
		"reach_router_replicas_total 2",
		"reach_router_scatter_seconds_count 1",
		`reach_build_info{go_version="` + runtime.Version() + `"`,
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("router /metrics missing %q:\n%s", want, text)
		}
	}
	// Per-replica RTT histograms exist for both backends, and together
	// they account for every routed call (7 singles + 1 sub-batch).
	var rttTotal int64
	for _, base := range []string{b1, b2} {
		h, err := obs.ParseHistogram(bytes.NewReader(raw), "reach_router_upstream_seconds",
			obs.Labels{"replica": base})
		if err != nil {
			t.Fatalf("upstream histogram for %s: %v", base, err)
		}
		rttTotal += h.Count
	}
	if rttTotal != 8 {
		t.Fatalf("upstream RTT samples %d, want 8", rttTotal)
	}
	if !strings.Contains(text, "reach_router_probes_total") {
		t.Fatal("router /metrics missing probe counter")
	}
}

// TestRouterSlowQueryLog injects real latency at a replica and checks
// the router's slow-query log catches the request that crossed the
// threshold, carrying its trace ID and route timing.
func TestRouterSlowQueryLog(t *testing.T) {
	f := newFakeReplica("fp-slow", xorAnswer)
	f.delay = 30 * time.Millisecond
	base := f.start(t)
	var buf logBuffer
	cfg := silentCfg(base)
	cfg.SlowQueryThreshold = 5 * time.Millisecond
	cfg.SlowQueryWriter = &buf
	rt := newTestRouter(t, cfg)
	waitState(t, rt, base, stateHealthy)
	ts := httptest.NewServer(rt.Handler())
	defer ts.Close()

	req, _ := http.NewRequest("GET", ts.URL+"/v1/reachable?u=5&v=6", nil)
	req.Header.Set(obs.TraceHeader, "slow-route-trace")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()

	var recs []server.SlowQueryRecord
	sc := bufio.NewScanner(strings.NewReader(buf.String()))
	for sc.Scan() {
		var rec server.SlowQueryRecord
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			t.Fatalf("bad slow-log line %q: %v", sc.Text(), err)
		}
		recs = append(recs, rec)
	}
	if len(recs) != 1 {
		t.Fatalf("%d slow records, want 1:\n%s", len(recs), buf.String())
	}
	rec := recs[0]
	if rec.Trace != "slow-route-trace" || rec.Endpoint != "reachable" || rec.Status != http.StatusOK {
		t.Fatalf("slow record: %+v", rec)
	}
	if rec.DurationMS < 25 {
		t.Fatalf("slow record duration %.1fms, want >= 25ms (injected 30ms)", rec.DurationMS)
	}
	if rec.StagesMS["route"] <= 0 {
		t.Fatalf("slow record missing route stage: %+v", rec)
	}
	if rt.met.slow.Emitted() != 1 {
		t.Fatalf("slow counter %d, want 1", rt.met.slow.Emitted())
	}
}

// TestRouterHealthzBuildInfo checks the router reports its own build
// identity and that replica build info (when the replica reports any)
// lands in per-replica stats.
func TestRouterHealthzBuildInfo(t *testing.T) {
	f := newFakeReplica("fp-build", xorAnswer)
	base := f.start(t)
	rt := newTestRouter(t, silentCfg(base))
	waitState(t, rt, base, stateHealthy)
	ts := httptest.NewServer(rt.Handler())
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var hz RouterHealthz
	if err := json.NewDecoder(resp.Body).Decode(&hz); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if hz.GoVersion != runtime.Version() {
		t.Fatalf("router go_version %q, want %q", hz.GoVersion, runtime.Version())
	}
	if hz.UptimeSeconds <= 0 {
		t.Fatalf("router uptime %g, want > 0", hz.UptimeSeconds)
	}
}
