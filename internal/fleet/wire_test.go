package fleet

import (
	"context"
	"math"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	reach "repro"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/server"
)

// realOracle builds a small graph + DL oracle for wire tests.
func realOracle(t *testing.T) (*reach.Graph, *reach.Oracle) {
	t.Helper()
	raw := gen.CitationDAG(400, 3, 0.5, 23)
	edges := make([][2]uint32, 0, raw.NumEdges())
	raw.Edges(func(u, v graph.Vertex) bool {
		edges = append(edges, [2]uint32{uint32(u), uint32(v)})
		return true
	})
	g, err := reach.NewGraph(raw.NumVertices(), edges)
	if err != nil {
		t.Fatal(err)
	}
	oracle, err := reach.Build(g, reach.MethodDL, reach.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return g, oracle
}

// startReplica serves one real replica over g/oracle and returns its base URL.
func startReplica(t *testing.T, g *reach.Graph, oracle *reach.Oracle, cfg server.Config) string {
	t.Helper()
	s := server.New(g, oracle, cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() { ts.Close(); s.Close() })
	return ts.URL
}

// replicaStatsByBase indexes a router's stats rows by replica base URL.
func replicaStatsByBase(t *testing.T, rt *Router) map[string]ReplicaStats {
	t.Helper()
	st := rt.Stats(context.Background())
	out := make(map[string]ReplicaStats, len(st.Replicas))
	for _, r := range st.Replicas {
		out[r.Base] = r
	}
	return out
}

// TestWireNegotiationMixedFleet: a binary-capable replica and a
// -wire=json one behind the same router. The router must speak binary to
// the first, JSON to the second, report that split in its stats, and
// still merge correct answers out of the mixed scatter.
func TestWireNegotiationMixedFleet(t *testing.T) {
	g, oracle := realOracle(t)
	binBase := startReplica(t, g, oracle, server.Config{})
	jsonBase := startReplica(t, g, oracle, server.Config{DisableBinaryWire: true})

	cfg := silentCfg(binBase, jsonBase)
	cfg.MinSubBatch = 16
	rt := newTestRouter(t, cfg)

	byBase := replicaStatsByBase(t, rt)
	if got := byBase[binBase].Wire; got != WireBinary {
		t.Fatalf("binary-capable replica negotiated %q, want %q", got, WireBinary)
	}
	if got := byBase[jsonBase].Wire; got != WireJSON {
		t.Fatalf("-wire=json replica negotiated %q, want %q", got, WireJSON)
	}

	// Scatter enough pairs that both replicas serve sub-batches; repeat
	// so power-of-two-choices is virtually certain to have used both.
	rng := rand.New(rand.NewSource(5))
	n := g.NumVertices()
	for round := 0; round < 8; round++ {
		pairs := make([][2]uint64, 200)
		for i := range pairs {
			pairs[i] = [2]uint64{uint64(rng.Intn(n)), uint64(rng.Intn(n))}
		}
		res, err := rt.Batch(context.Background(), pairs)
		if err != nil {
			t.Fatal(err)
		}
		for i, p := range pairs {
			if res[i] != oracle.Reachable(uint32(p[0]), uint32(p[1])) {
				t.Fatalf("round %d: mixed-fleet batch result %d disagrees with oracle", round, i)
			}
		}
	}
	if rt.met.wire.framesBinary.Load() == 0 {
		t.Fatal("mixed fleet routed no binary frames")
	}
	if rt.met.wire.framesJSON.Load() == 0 {
		t.Fatal("mixed fleet routed no JSON batches")
	}
	if rt.met.wire.txBinary.Load() == 0 || rt.met.wire.rxBinary.Load() == 0 {
		t.Fatalf("binary byte counters tx=%d rx=%d, want both positive",
			rt.met.wire.txBinary.Load(), rt.met.wire.rxBinary.Load())
	}
}

// TestWireJSONForcesJSONEverywhere: Config.Wire=WireJSON is the ablation
// switch — binary-capable replicas still get JSON.
func TestWireJSONForcesJSONEverywhere(t *testing.T) {
	g, oracle := realOracle(t)
	base := startReplica(t, g, oracle, server.Config{})
	cfg := silentCfg(base)
	cfg.Wire = WireJSON
	rt := newTestRouter(t, cfg)

	if got := replicaStatsByBase(t, rt)[base].Wire; got != WireJSON {
		t.Fatalf("forced-JSON router negotiated %q", got)
	}
	if _, err := rt.Batch(context.Background(), [][2]uint64{{1, 2}, {3, 4}}); err != nil {
		t.Fatal(err)
	}
	if got := rt.met.wire.framesBinary.Load(); got != 0 {
		t.Fatalf("forced-JSON router sent %d binary frames", got)
	}
	if rt.met.wire.framesJSON.Load() == 0 {
		t.Fatal("forced-JSON router sent no JSON batches")
	}
}

// TestWireConfigRejected: an unknown Config.Wire value is a construction
// error, not a silent default.
func TestWireConfigRejected(t *testing.T) {
	_, err := New(context.Background(), Config{Replicas: []string{"http://x"}, Wire: "protobuf"})
	if err == nil {
		t.Fatal("New accepted Wire=protobuf")
	}
}

// TestClientDemotesOn415: a client that believes a replica speaks binary
// (stale negotiation — the replica restarted with -wire=json between
// probes) gets a 415, transparently retries as JSON, and stays JSON.
func TestClientDemotesOn415(t *testing.T) {
	g, oracle := realOracle(t)
	base := startReplica(t, g, oracle, server.Config{DisableBinaryWire: true})
	c := NewClient(base, time.Second)
	c.UseBinaryWire(true)

	res, err := c.Batch(context.Background(), [][2]uint64{{1, 2}, {2, 1}})
	if err != nil {
		t.Fatalf("batch against stale-negotiated replica: %v", err)
	}
	if len(res) != 2 || res[0] != oracle.Reachable(1, 2) || res[1] != oracle.Reachable(2, 1) {
		t.Fatalf("fallback batch answered %v", res)
	}
	if c.BinaryWire() {
		t.Fatal("client still believes the replica speaks binary after a 415")
	}
	if c.counters.framesBinary.Load() != 1 || c.counters.framesJSON.Load() != 1 {
		t.Fatalf("counters binary=%d json=%d, want 1 and 1 (one rejected frame, one JSON retry)",
			c.counters.framesBinary.Load(), c.counters.framesJSON.Load())
	}
}

// TestClientStaysDemotedUntilReEnrollment walks the whole demotion
// lifecycle through a router: a binary-negotiated client that gets a 415
// demotes itself to JSON, sends no further binary frames no matter how
// many batches follow — even after the replica starts speaking binary
// again — and is only re-promoted when a health probe re-negotiates from
// a healthz that advertises the capability. That is the contract: the
// 415 is the replica's word until enrollment says otherwise.
func TestClientStaysDemotedUntilReEnrollment(t *testing.T) {
	g, oracle := realOracle(t)
	// One address, two personalities: the replica starts JSON-only (the
	// stale-negotiation scenario a -wire=json restart produces) and later
	// "restarts" as binary-capable behind the same URL.
	sJSON := server.New(g, oracle, server.Config{DisableBinaryWire: true})
	sBin := server.New(g, oracle, server.Config{})
	t.Cleanup(func() { sJSON.Close(); sBin.Close() })
	hJSON, hBin := sJSON.Handler(), sBin.Handler()
	var current atomic.Pointer[http.Handler]
	current.Store(&hJSON)
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		(*current.Load()).ServeHTTP(w, r)
	}))
	t.Cleanup(ts.Close)

	// A probe interval long enough that only probes this test triggers
	// run: re-promotion must be observably tied to a probe, not a timer.
	cfg := silentCfg(ts.URL)
	cfg.ProbeInterval = time.Hour
	rt := newTestRouter(t, cfg)
	r := rt.replicas[0]
	c := r.client

	// The initial probe saw a JSON-only healthz; plant the stale binary
	// belief the demotion path exists to correct.
	c.UseBinaryWire(true)
	for i := 0; i < 3; i++ {
		if _, err := c.Batch(context.Background(), [][2]uint64{{1, 2}}); err != nil {
			t.Fatalf("batch %d: %v", i, err)
		}
		if c.BinaryWire() {
			t.Fatalf("batch %d: client not demoted after the 415", i)
		}
	}
	if got := c.counters.framesBinary.Load(); got != 1 {
		t.Fatalf("demoted client sent %d binary frames, want exactly 1 (the rejected one)", got)
	}

	// The replica "restarts" binary-capable. With no probe yet, the
	// demotion must hold: the client has no business retrying binary on
	// its own.
	current.Store(&hBin)
	if _, err := c.Batch(context.Background(), [][2]uint64{{1, 2}}); err != nil {
		t.Fatal(err)
	}
	if c.BinaryWire() || c.counters.framesBinary.Load() != 1 {
		t.Fatalf("client re-promoted itself without a probe (binary=%v frames=%d)",
			c.BinaryWire(), c.counters.framesBinary.Load())
	}

	// Re-enrollment: one probe against the binary-capable healthz. (The
	// background loop ticks at ProbeInterval/4 — 15 minutes here — so this
	// is the only prober.)
	rt.probe(r)
	if !c.BinaryWire() {
		t.Fatal("probe against binary-advertising healthz did not re-promote the client")
	}
	if _, err := c.Batch(context.Background(), [][2]uint64{{1, 2}}); err != nil {
		t.Fatal(err)
	}
	if got := c.counters.framesBinary.Load(); got != 2 {
		t.Fatalf("re-promoted client sent %d binary frames total, want 2", got)
	}
}

// TestClientWideIDsFallBackToJSON: vertex IDs beyond uint32 cannot ride
// the binary frame; those batches silently take the JSON path per batch
// without demoting the connection.
func TestClientWideIDsFallBackToJSON(t *testing.T) {
	raw := gen.CitationDAG(50, 2, 0.5, 3)
	edges := make([][2]uint32, 0, raw.NumEdges())
	raw.Edges(func(u, v graph.Vertex) bool {
		edges = append(edges, [2]uint32{uint32(u), uint32(v)})
		return true
	})
	g, err := reach.NewGraph(raw.NumVertices(), edges)
	if err != nil {
		t.Fatal(err)
	}
	oracle, err := reach.Build(g, reach.MethodDL, reach.Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Original-ID mode with one ID off the uint32 end of the space.
	wide := int64(math.MaxUint32) + 7
	orig := make([]int64, g.NumVertices())
	for i := range orig {
		orig[i] = int64(i)
	}
	orig[1] = wide
	base := startReplica(t, g, oracle, server.Config{OrigIDs: orig})
	c := NewClient(base, time.Second)
	c.UseBinaryWire(true)

	res, err := c.Batch(context.Background(), [][2]uint64{{uint64(wide), 2}, {0, 2}})
	if err != nil {
		t.Fatal(err)
	}
	if res[0] != oracle.Reachable(1, 2) || res[1] != oracle.Reachable(0, 2) {
		t.Fatalf("wide-ID batch answered %v", res)
	}
	if !c.BinaryWire() {
		t.Fatal("wide-ID fallback must not demote the client: the replica does speak binary")
	}
	if c.counters.framesBinary.Load() != 0 || c.counters.framesJSON.Load() != 1 {
		t.Fatalf("counters binary=%d json=%d, want 0 and 1",
			c.counters.framesBinary.Load(), c.counters.framesJSON.Load())
	}

	// A batch whose IDs all fit goes binary against the same replica.
	if _, err := c.Batch(context.Background(), [][2]uint64{{0, 2}}); err != nil {
		t.Fatal(err)
	}
	if c.counters.framesBinary.Load() != 1 {
		t.Fatalf("narrow batch after wide one did not go binary (binary=%d)", c.counters.framesBinary.Load())
	}
}

// TestClientBinaryErrorFrame: a binary-mode error (batch over the
// replica's limit) comes back as a wireproto error frame and surfaces as
// the same *StatusError the JSON path produces.
func TestClientBinaryErrorFrame(t *testing.T) {
	g, oracle := realOracle(t)
	base := startReplica(t, g, oracle, server.Config{MaxBatchPairs: 4})
	c := NewClient(base, time.Second)
	c.UseBinaryWire(true)

	pairs := make([][2]uint64, 10)
	_, err := c.Batch(context.Background(), pairs)
	se, ok := err.(*StatusError)
	if !ok {
		t.Fatalf("over-limit binary batch returned %v, want *StatusError", err)
	}
	if se.Status != 413 || se.Body == "" {
		t.Fatalf("status error %+v, want 413 with the frame's in-band message", se)
	}
}
