package fleet

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/server"
)

// Handler returns the router's HTTP mux. It serves the same v1 surface
// as a single reachd — /v1/healthz, /v1/reachable, /v1/batch, /v1/stats,
// /metrics — so clients, load balancers and the reachbench load
// generator cannot tell a fleet from a single node (except that
// /v1/stats grows fleet and per-replica sections, and /metrics carries
// reach_router_* series instead of serving-stage ones). With
// Config.EnablePprof, net/http/pprof is mounted under /debug/pprof/.
func (rt *Router) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/healthz", rt.handleHealthz)
	mux.HandleFunc("GET /v1/reachable", rt.handleReachable)
	mux.HandleFunc("POST /v1/batch", rt.handleBatch)
	mux.HandleFunc("GET /v1/stats", rt.handleStats)
	mux.Handle("GET /metrics", rt.met.reg.Handler())
	if rt.cfg.EnablePprof {
		obs.RegisterPprof(mux)
	}
	return mux
}

// finishTrace closes out a routed request: sets the Server-Timing
// header (route = time inside the routing layer, scatter to gather),
// records the request histogram, and emits a slow-query record when the
// total crosses the configured threshold.
func (rt *Router) finishTrace(w http.ResponseWriter, traceID string, start time.Time, routeD time.Duration, hist *obs.Histogram, endpoint string, pairs, status int) {
	total := time.Since(start)
	w.Header().Set(obs.ServerTimingHeader, obs.FormatServerTiming([]obs.Stage{
		{Name: "route", D: routeD},
		{Name: "total", D: total},
	}))
	hist.RecordDuration(total)
	if rt.met.slow.Slow(total) {
		rt.met.slow.Emit(server.SlowQueryRecord{
			Time:       time.Now().UTC().Format(time.RFC3339Nano),
			Trace:      traceID,
			Endpoint:   endpoint,
			Status:     status,
			DurationMS: float64(total) / 1e6,
			Pairs:      pairs,
			StagesMS: map[string]float64{
				"route": float64(routeD) / 1e6,
			},
		})
	}
}

func writeJSON(w http.ResponseWriter, status int, body any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(body)
}

func (rt *Router) failf(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, server.ErrorResponse{Error: fmt.Sprintf(format, args...)})
}

// writeRouteError maps a routing failure onto the client-facing status:
// no fleet → 503, every replica overloaded → 429 with the largest
// Retry-After hint, a non-retryable upstream 4xx → passed through
// verbatim, anything else → 502.
func (rt *Router) writeRouteError(w http.ResponseWriter, err error) {
	var se *StatusError
	switch {
	case errors.Is(err, ErrNoReplicas):
		rt.failf(w, http.StatusServiceUnavailable,
			"no healthy replicas in fleet (%d/%d enrolled); retry later",
			len(rt.healthy(nil)), len(rt.replicas))
	case errors.As(err, &se):
		if se.Status == http.StatusTooManyRequests {
			ra := se.RetryAfter
			if ra <= 0 {
				ra = 1
			}
			w.Header().Set("Retry-After", strconv.Itoa(ra))
			rt.failf(w, http.StatusTooManyRequests,
				"every healthy replica is at capacity; retry later")
			return
		}
		if se.Status >= 400 && se.Status < 500 {
			// The replica judged the request itself bad (e.g. an unknown
			// vertex ID); relay its verdict unchanged.
			writeJSON(w, se.Status, server.ErrorResponse{Error: se.Body})
			return
		}
		rt.failf(w, http.StatusBadGateway, "replica error after retries: %v", err)
	case errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled):
		rt.failf(w, http.StatusServiceUnavailable, "request abandoned: %v", err)
	default:
		rt.failf(w, http.StatusBadGateway, "fleet request failed: %v", err)
	}
}

func (rt *Router) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	id := rt.FleetIdentity()
	healthy := len(rt.healthy(nil))
	bi := obs.BuildInfo()
	hz := RouterHealthz{
		HealthzResponse: server.HealthzResponse{
			Status:        "ok",
			Method:        id.Method,
			Vertices:      id.Vertices,
			Fingerprint:   id.Fingerprint,
			Source:        "fleet",
			GoVersion:     bi.GoVersion,
			Revision:      bi.Revision,
			UptimeSeconds: rt.met.uptimeSeconds(),
		},
		ReplicasHealthy: healthy,
		ReplicasTotal:   len(rt.replicas),
	}
	if healthy == 0 {
		// A router with no fleet cannot serve; tell the layer above (a
		// load balancer, the CI readiness poll) with a 503, same as a
		// dead reachd would.
		hz.Status = "no healthy replicas"
		writeJSON(w, http.StatusServiceUnavailable, hz)
		return
	}
	writeJSON(w, http.StatusOK, hz)
}

// RouterHealthz is the router's /v1/healthz payload: a replica-shaped
// identity (so routers can be health-checked — or even enrolled —
// exactly like replicas) plus fleet occupancy.
type RouterHealthz struct {
	server.HealthzResponse
	ReplicasHealthy int `json:"replicas_healthy"`
	ReplicasTotal   int `json:"replicas_total"`
}

func (rt *Router) handleReachable(w http.ResponseWriter, r *http.Request) {
	traceID := obs.EnsureTrace(w, r)
	start := time.Now()
	q := r.URL.Query()
	u, errU := strconv.ParseUint(q.Get("u"), 10, 64)
	v, errV := strconv.ParseUint(q.Get("v"), 10, 64)
	if errU != nil || errV != nil {
		rt.finishTrace(w, traceID, start, 0, rt.met.reqReachable, "reachable", 1, http.StatusBadRequest)
		rt.failf(w, http.StatusBadRequest, "u and v must be non-negative integer query parameters")
		return
	}
	t0 := time.Now()
	resp, err := rt.Reachable(obs.WithTrace(r.Context(), traceID), u, v)
	routeD := time.Since(t0)
	if err != nil {
		rt.finishTrace(w, traceID, start, routeD, rt.met.reqReachable, "reachable", 1, routeErrorStatus(err))
		rt.writeRouteError(w, err)
		return
	}
	rt.finishTrace(w, traceID, start, routeD, rt.met.reqReachable, "reachable", 1, http.StatusOK)
	writeJSON(w, http.StatusOK, resp)
}

// routeErrorStatus mirrors writeRouteError's status mapping for the
// slow-query log and metrics without writing anything.
func routeErrorStatus(err error) int {
	var se *StatusError
	switch {
	case errors.Is(err, ErrNoReplicas):
		return http.StatusServiceUnavailable
	case errors.As(err, &se):
		if se.Status == http.StatusTooManyRequests || (se.Status >= 400 && se.Status < 500) {
			return se.Status
		}
		return http.StatusBadGateway
	case errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled):
		return http.StatusServiceUnavailable
	default:
		return http.StatusBadGateway
	}
}

func (rt *Router) handleBatch(w http.ResponseWriter, r *http.Request) {
	traceID := obs.EnsureTrace(w, r)
	start := time.Now()
	done := func(routeD time.Duration, pairs, status int) {
		rt.finishTrace(w, traceID, start, routeD, rt.met.reqBatch, "batch", pairs, status)
	}
	// Same byte-cap rationale as reachd's /v1/batch: bound memory before
	// decoding, ~48 bytes covers any compactly-encoded pair.
	body := http.MaxBytesReader(w, r.Body, 48*int64(rt.cfg.MaxBatchPairs)+4096)
	var req server.BatchRequest
	dec := json.NewDecoder(body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			done(0, 0, http.StatusRequestEntityTooLarge)
			rt.failf(w, http.StatusRequestEntityTooLarge, "batch body exceeds %d bytes", tooLarge.Limit)
			return
		}
		done(0, 0, http.StatusBadRequest)
		rt.failf(w, http.StatusBadRequest, "bad batch body: %v", err)
		return
	}
	if len(req.Pairs) > rt.cfg.MaxBatchPairs {
		done(0, len(req.Pairs), http.StatusRequestEntityTooLarge)
		rt.failf(w, http.StatusRequestEntityTooLarge,
			"batch of %d pairs exceeds limit %d", len(req.Pairs), rt.cfg.MaxBatchPairs)
		return
	}
	t0 := time.Now()
	results, err := rt.Batch(obs.WithTrace(r.Context(), traceID), req.Pairs)
	routeD := time.Since(t0)
	if err != nil {
		done(routeD, len(req.Pairs), routeErrorStatus(err))
		rt.writeRouteError(w, err)
		return
	}
	done(routeD, len(req.Pairs), http.StatusOK)
	writeJSON(w, http.StatusOK, server.BatchResponse{Count: len(req.Pairs), Results: results})
}

// ReplicaStats is one replica's row in the router's /v1/stats.
type ReplicaStats struct {
	Base        string `json:"base"`
	State       string `json:"state"`
	Fingerprint string `json:"fingerprint,omitempty"`
	Method      string `json:"method,omitempty"`
	// Build identity the replica reported on its last successful probe,
	// so one router stats read spots a replica running stale code.
	GoVersion string `json:"go_version,omitempty"`
	Revision  string `json:"revision,omitempty"`
	// Wire is the batch encoding this router currently sends the
	// replica ("binary" or "json"), as negotiated from its healthz wire
	// capability — the observable truth of a mixed fleet.
	Wire string `json:"wire"`
	// Transport is how batches currently travel: "mux" when the router
	// negotiated the persistent stream transport from the replica's
	// healthz advertisement, "http" otherwise. (A mux replica still
	// falls back to HTTP per batch when no connection is up; Transport
	// reports the negotiation, which is deterministic, not the last
	// batch's route, which is not.)
	Transport string `json:"transport"`
	// Capabilities is the replica's advertised wire capability list,
	// sorted at enrollment so stats reads are deterministic no matter
	// what order the replica's healthz listed them in.
	Capabilities []string `json:"capabilities,omitempty"`
	InFlight     int64    `json:"in_flight"`
	// Requests/Errors/Rejected count what THIS router sent the replica;
	// the replica's own lifetime counters are under Upstream.
	Requests int64 `json:"requests"`
	Errors   int64 `json:"errors"`
	Rejected int64 `json:"rejected_429"`
	// Upstream is the replica's own /v1/stats, fetched live for healthy
	// replicas when the router's stats are read.
	Upstream *server.Stats `json:"upstream,omitempty"`
}

// FleetStats aggregates the router's routing counters and the summed
// upstream counters of the currently healthy replicas.
type FleetStats struct {
	Fingerprint     string  `json:"fingerprint"`
	Method          string  `json:"method"`
	ReplicasHealthy int     `json:"replicas_healthy"`
	ReplicasTotal   int     `json:"replicas_total"`
	Requests        int64   `json:"requests"`
	BatchRequests   int64   `json:"batch_requests"`
	SubBatches      int64   `json:"sub_batches"`
	Retries         int64   `json:"retries"`
	Upstream429     int64   `json:"upstream_429"`
	Failovers       int64   `json:"failovers"`
	NoReplicaErrors int64   `json:"no_replica_errors"`
	Probes          int64   `json:"probes"`
	SlowQueries     int64   `json:"slow_queries"`
	UptimeSeconds   float64 `json:"uptime_seconds"`
	// Summed over healthy replicas' live /v1/stats:
	UpstreamQueries int64 `json:"upstream_queries"`
	// UpstreamObserverHits sums the replicas' observer fast-path decides
	// across all observer kinds — how much of the fleet's query volume
	// never touched an index.
	UpstreamObserverHits int64 `json:"upstream_observer_hits"`
}

// cacheAggregate mirrors the hits/misses/hit_rate keys of a replica's
// cache section so tools built for reachd stats (reachbench -serve's
// per-run cache report) read a router identically.
type cacheAggregate struct {
	Hits    int64   `json:"hits"`
	Misses  int64   `json:"misses"`
	HitRate float64 `json:"hit_rate"`
}

// RouterStats is the router's /v1/stats payload. Graph and Cache mirror
// the single-node layout (filled from the fleet) so existing tooling
// works unchanged; Fleet and Replicas are the router-specific truth.
type RouterStats struct {
	Graph    server.GraphStats `json:"graph"`
	Cache    cacheAggregate    `json:"cache"`
	Fleet    FleetStats        `json:"fleet"`
	Replicas []ReplicaStats    `json:"replicas"`
}

// Stats snapshots the router and, for healthy replicas, their live
// upstream counters (each fetch bounded by ProbeTimeout).
func (rt *Router) Stats(ctx context.Context) RouterStats {
	id := rt.FleetIdentity()
	out := RouterStats{
		Graph: server.GraphStats{Vertices: id.Vertices},
		Fleet: FleetStats{
			Fingerprint:     id.Fingerprint,
			Method:          id.Method,
			ReplicasTotal:   len(rt.replicas),
			Requests:        rt.met.requests.Load(),
			BatchRequests:   rt.met.batchRequests.Load(),
			SubBatches:      rt.met.subBatches.Load(),
			Retries:         rt.met.retries.Load(),
			Upstream429:     rt.met.upstream429.Load(),
			Failovers:       rt.met.failovers.Load(),
			NoReplicaErrors: rt.met.noReplicas.Load(),
			Probes:          rt.met.probes.Load(),
			SlowQueries:     rt.met.slow.Emitted(),
			UptimeSeconds:   rt.met.uptimeSeconds(),
		},
		Replicas: make([]ReplicaStats, len(rt.replicas)),
	}
	var wg sync.WaitGroup
	for i, r := range rt.replicas {
		wire := WireJSON
		if r.client.BinaryWire() {
			wire = WireBinary
		}
		transport := "http"
		if r.client.MuxActive() {
			transport = "mux"
		}
		st := ReplicaStats{
			Base:      r.base,
			State:     stateName(r.state.Load()),
			Wire:      wire,
			Transport: transport,
			InFlight:  r.inflight.Load(),
			Requests:  r.requests.Load(),
			Errors:    r.errors.Load(),
			Rejected:  r.rejected.Load(),
		}
		if id := r.ident.Load(); id != nil {
			st.Fingerprint = id.Fingerprint
			st.Method = id.Method
			st.GoVersion = id.GoVersion
			st.Revision = id.Revision
			st.Capabilities = id.Capabilities
		}
		out.Replicas[i] = st
		if st.State != "healthy" {
			continue
		}
		out.Fleet.ReplicasHealthy++
		wg.Add(1)
		go func(i int, r *replica) {
			defer wg.Done()
			sctx, cancel := context.WithTimeout(ctx, rt.cfg.ProbeTimeout)
			defer cancel()
			up, err := r.client.Stats(sctx)
			if err != nil {
				return // stats are best-effort; the probe loop handles health
			}
			out.Replicas[i].Upstream = &up
		}(i, r)
	}
	wg.Wait()
	for i := range out.Replicas {
		if up := out.Replicas[i].Upstream; up != nil {
			out.Fleet.UpstreamQueries += up.Server.Queries
			if o := up.Index.Observers; o != nil {
				for _, hits := range o.Hits {
					out.Fleet.UpstreamObserverHits += hits
				}
			}
			out.Cache.Hits += up.Cache.Hits
			out.Cache.Misses += up.Cache.Misses
			if out.Graph.DAGVertices == 0 {
				out.Graph = up.Graph // full graph shape from any live replica
			}
		}
	}
	if t := out.Cache.Hits + out.Cache.Misses; t > 0 {
		out.Cache.HitRate = float64(out.Cache.Hits) / float64(t)
	}
	return out
}

func (rt *Router) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, rt.Stats(r.Context()))
}
