package fleet

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"sync"

	"repro/internal/server"
)

// Handler returns the router's HTTP mux. It serves the same v1 surface
// as a single reachd — /v1/healthz, /v1/reachable, /v1/batch, /v1/stats
// — so clients, load balancers and the reachbench load generator cannot
// tell a fleet from a single node (except that /v1/stats grows fleet and
// per-replica sections).
func (rt *Router) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/healthz", rt.handleHealthz)
	mux.HandleFunc("GET /v1/reachable", rt.handleReachable)
	mux.HandleFunc("POST /v1/batch", rt.handleBatch)
	mux.HandleFunc("GET /v1/stats", rt.handleStats)
	return mux
}

func writeJSON(w http.ResponseWriter, status int, body any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(body)
}

func (rt *Router) failf(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, server.ErrorResponse{Error: fmt.Sprintf(format, args...)})
}

// writeRouteError maps a routing failure onto the client-facing status:
// no fleet → 503, every replica overloaded → 429 with the largest
// Retry-After hint, a non-retryable upstream 4xx → passed through
// verbatim, anything else → 502.
func (rt *Router) writeRouteError(w http.ResponseWriter, err error) {
	var se *StatusError
	switch {
	case errors.Is(err, ErrNoReplicas):
		rt.failf(w, http.StatusServiceUnavailable,
			"no healthy replicas in fleet (%d/%d enrolled); retry later",
			len(rt.healthy(nil)), len(rt.replicas))
	case errors.As(err, &se):
		if se.Status == http.StatusTooManyRequests {
			ra := se.RetryAfter
			if ra <= 0 {
				ra = 1
			}
			w.Header().Set("Retry-After", strconv.Itoa(ra))
			rt.failf(w, http.StatusTooManyRequests,
				"every healthy replica is at capacity; retry later")
			return
		}
		if se.Status >= 400 && se.Status < 500 {
			// The replica judged the request itself bad (e.g. an unknown
			// vertex ID); relay its verdict unchanged.
			writeJSON(w, se.Status, server.ErrorResponse{Error: se.Body})
			return
		}
		rt.failf(w, http.StatusBadGateway, "replica error after retries: %v", err)
	case errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled):
		rt.failf(w, http.StatusServiceUnavailable, "request abandoned: %v", err)
	default:
		rt.failf(w, http.StatusBadGateway, "fleet request failed: %v", err)
	}
}

func (rt *Router) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	id := rt.FleetIdentity()
	healthy := len(rt.healthy(nil))
	hz := RouterHealthz{
		HealthzResponse: server.HealthzResponse{
			Status:      "ok",
			Method:      id.Method,
			Vertices:    id.Vertices,
			Fingerprint: id.Fingerprint,
			Source:      "fleet",
		},
		ReplicasHealthy: healthy,
		ReplicasTotal:   len(rt.replicas),
	}
	if healthy == 0 {
		// A router with no fleet cannot serve; tell the layer above (a
		// load balancer, the CI readiness poll) with a 503, same as a
		// dead reachd would.
		hz.Status = "no healthy replicas"
		writeJSON(w, http.StatusServiceUnavailable, hz)
		return
	}
	writeJSON(w, http.StatusOK, hz)
}

// RouterHealthz is the router's /v1/healthz payload: a replica-shaped
// identity (so routers can be health-checked — or even enrolled —
// exactly like replicas) plus fleet occupancy.
type RouterHealthz struct {
	server.HealthzResponse
	ReplicasHealthy int `json:"replicas_healthy"`
	ReplicasTotal   int `json:"replicas_total"`
}

func (rt *Router) handleReachable(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	u, errU := strconv.ParseUint(q.Get("u"), 10, 64)
	v, errV := strconv.ParseUint(q.Get("v"), 10, 64)
	if errU != nil || errV != nil {
		rt.failf(w, http.StatusBadRequest, "u and v must be non-negative integer query parameters")
		return
	}
	resp, err := rt.Reachable(r.Context(), u, v)
	if err != nil {
		rt.writeRouteError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

func (rt *Router) handleBatch(w http.ResponseWriter, r *http.Request) {
	// Same byte-cap rationale as reachd's /v1/batch: bound memory before
	// decoding, ~48 bytes covers any compactly-encoded pair.
	body := http.MaxBytesReader(w, r.Body, 48*int64(rt.cfg.MaxBatchPairs)+4096)
	var req server.BatchRequest
	dec := json.NewDecoder(body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			rt.failf(w, http.StatusRequestEntityTooLarge, "batch body exceeds %d bytes", tooLarge.Limit)
			return
		}
		rt.failf(w, http.StatusBadRequest, "bad batch body: %v", err)
		return
	}
	if len(req.Pairs) > rt.cfg.MaxBatchPairs {
		rt.failf(w, http.StatusRequestEntityTooLarge,
			"batch of %d pairs exceeds limit %d", len(req.Pairs), rt.cfg.MaxBatchPairs)
		return
	}
	results, err := rt.Batch(r.Context(), req.Pairs)
	if err != nil {
		rt.writeRouteError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, server.BatchResponse{Count: len(req.Pairs), Results: results})
}

// ReplicaStats is one replica's row in the router's /v1/stats.
type ReplicaStats struct {
	Base        string `json:"base"`
	State       string `json:"state"`
	Fingerprint string `json:"fingerprint,omitempty"`
	Method      string `json:"method,omitempty"`
	InFlight    int64  `json:"in_flight"`
	// Requests/Errors/Rejected count what THIS router sent the replica;
	// the replica's own lifetime counters are under Upstream.
	Requests int64 `json:"requests"`
	Errors   int64 `json:"errors"`
	Rejected int64 `json:"rejected_429"`
	// Upstream is the replica's own /v1/stats, fetched live for healthy
	// replicas when the router's stats are read.
	Upstream *server.Stats `json:"upstream,omitempty"`
}

// FleetStats aggregates the router's routing counters and the summed
// upstream counters of the currently healthy replicas.
type FleetStats struct {
	Fingerprint     string  `json:"fingerprint"`
	Method          string  `json:"method"`
	ReplicasHealthy int     `json:"replicas_healthy"`
	ReplicasTotal   int     `json:"replicas_total"`
	Requests        int64   `json:"requests"`
	BatchRequests   int64   `json:"batch_requests"`
	SubBatches      int64   `json:"sub_batches"`
	Retries         int64   `json:"retries"`
	Upstream429     int64   `json:"upstream_429"`
	Failovers       int64   `json:"failovers"`
	NoReplicaErrors int64   `json:"no_replica_errors"`
	UptimeSeconds   float64 `json:"uptime_seconds"`
	// Summed over healthy replicas' live /v1/stats:
	UpstreamQueries int64 `json:"upstream_queries"`
}

// cacheAggregate mirrors the hits/misses/hit_rate keys of a replica's
// cache section so tools built for reachd stats (reachbench -serve's
// per-run cache report) read a router identically.
type cacheAggregate struct {
	Hits    int64   `json:"hits"`
	Misses  int64   `json:"misses"`
	HitRate float64 `json:"hit_rate"`
}

// RouterStats is the router's /v1/stats payload. Graph and Cache mirror
// the single-node layout (filled from the fleet) so existing tooling
// works unchanged; Fleet and Replicas are the router-specific truth.
type RouterStats struct {
	Graph    server.GraphStats `json:"graph"`
	Cache    cacheAggregate    `json:"cache"`
	Fleet    FleetStats        `json:"fleet"`
	Replicas []ReplicaStats    `json:"replicas"`
}

// Stats snapshots the router and, for healthy replicas, their live
// upstream counters (each fetch bounded by ProbeTimeout).
func (rt *Router) Stats(ctx context.Context) RouterStats {
	id := rt.FleetIdentity()
	out := RouterStats{
		Graph: server.GraphStats{Vertices: id.Vertices},
		Fleet: FleetStats{
			Fingerprint:     id.Fingerprint,
			Method:          id.Method,
			ReplicasTotal:   len(rt.replicas),
			Requests:        rt.met.requests.Load(),
			BatchRequests:   rt.met.batchRequests.Load(),
			SubBatches:      rt.met.subBatches.Load(),
			Retries:         rt.met.retries.Load(),
			Upstream429:     rt.met.upstream429.Load(),
			Failovers:       rt.met.failovers.Load(),
			NoReplicaErrors: rt.met.noReplicas.Load(),
			UptimeSeconds:   rt.met.uptimeSeconds(),
		},
		Replicas: make([]ReplicaStats, len(rt.replicas)),
	}
	var wg sync.WaitGroup
	for i, r := range rt.replicas {
		st := ReplicaStats{
			Base:     r.base,
			State:    stateName(r.state.Load()),
			InFlight: r.inflight.Load(),
			Requests: r.requests.Load(),
			Errors:   r.errors.Load(),
			Rejected: r.rejected.Load(),
		}
		if id := r.ident.Load(); id != nil {
			st.Fingerprint = id.Fingerprint
			st.Method = id.Method
		}
		out.Replicas[i] = st
		if st.State != "healthy" {
			continue
		}
		out.Fleet.ReplicasHealthy++
		wg.Add(1)
		go func(i int, r *replica) {
			defer wg.Done()
			sctx, cancel := context.WithTimeout(ctx, rt.cfg.ProbeTimeout)
			defer cancel()
			up, err := r.client.Stats(sctx)
			if err != nil {
				return // stats are best-effort; the probe loop handles health
			}
			out.Replicas[i].Upstream = &up
		}(i, r)
	}
	wg.Wait()
	for i := range out.Replicas {
		if up := out.Replicas[i].Upstream; up != nil {
			out.Fleet.UpstreamQueries += up.Server.Queries
			out.Cache.Hits += up.Cache.Hits
			out.Cache.Misses += up.Cache.Misses
			if out.Graph.DAGVertices == 0 {
				out.Graph = up.Graph // full graph shape from any live replica
			}
		}
	}
	if t := out.Cache.Hits + out.Cache.Misses; t > 0 {
		out.Cache.HitRate = float64(out.Cache.Hits) / float64(t)
	}
	return out
}

func (rt *Router) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, rt.Stats(r.Context()))
}
