package fleet

import (
	"context"
	"fmt"
	"math/rand"
	"net"
	"net/http/httptest"
	"testing"

	reach "repro"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/server"
)

// benchWireMux is the stream-transport dimension of the wire benchmarks:
// binary frames over persistent mux connections instead of HTTP requests.
const benchWireMux = "mux"

// benchFleet stands up n real replicas (shared immutable oracle, the
// same thing N mmaps of one snapshot give) and a router over them
// speaking the given wire encoding to replicas; benchWireMux gives each
// replica a stream-transport listener and lets the router negotiate it
// from healthz, exactly as a production fleet would.
func benchFleet(b *testing.B, n int, wire string) (*Router, *reach.Graph) {
	b.Helper()
	useMux := wire == benchWireMux
	if useMux {
		wire = WireBinary
	}
	raw := gen.CitationDAG(5000, 4, 0.5, 3)
	edges := make([][2]uint32, 0, raw.NumEdges())
	raw.Edges(func(u, v graph.Vertex) bool {
		edges = append(edges, [2]uint32{uint32(u), uint32(v)})
		return true
	})
	g, err := reach.NewGraph(raw.NumVertices(), edges)
	if err != nil {
		b.Fatal(err)
	}
	oracle, err := reach.Build(g, reach.MethodDL, reach.Options{})
	if err != nil {
		b.Fatal(err)
	}
	var bases []string
	for i := 0; i < n; i++ {
		scfg := server.Config{}
		var muxLn net.Listener
		if useMux {
			muxLn, err = net.Listen("tcp", "127.0.0.1:0")
			if err != nil {
				b.Fatal(err)
			}
			scfg.MuxAddr = muxLn.Addr().String()
		}
		s := server.New(g, oracle, scfg)
		if muxLn != nil {
			ms := s.NewMuxServer(func(string, ...any) {})
			go ms.Serve(muxLn)
			b.Cleanup(func() {
				ctx, cancel := context.WithCancel(context.Background())
				cancel() // force-close; the router is gone by cleanup time
				ms.Shutdown(ctx)
			})
		}
		ts := httptest.NewServer(s.Handler())
		b.Cleanup(func() { ts.Close(); s.Close() })
		bases = append(bases, ts.URL)
	}
	cfg := Config{Replicas: bases, Wire: wire, DisableMux: !useMux, Logf: func(string, ...any) {}}
	rt, err := New(context.Background(), cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(rt.Close)
	return rt, g
}

func benchPairs(g *reach.Graph, size int) [][2]uint64 {
	rng := rand.New(rand.NewSource(77))
	n := g.NumVertices()
	pairs := make([][2]uint64, size)
	for i := range pairs {
		pairs[i] = [2]uint64{uint64(rng.Intn(n)), uint64(rng.Intn(n))}
	}
	return pairs
}

// BenchmarkRouterBatch measures the scatter-gather fan-out overhead: one
// batch through a router fronting 1 vs 3 replicas, on every wire
// encoding, with the pairs/op rate making throughput comparable to the
// single-node BenchmarkServerBatch. replicas=1 isolates the router's own
// hop (proxy + merge cost); replicas=3 adds the scatter across the
// fleet; wire=json vs wire=binary is the encoding ablation the binary
// protocol exists for, and wire=mux sends the same binary frames over
// persistent stream-transport connections — the transport ablation on
// top. The two batch sizes separate the regimes: at 512 pairs the
// per-request transport overhead dominates (where mux earns its keep),
// at 4096 the replica's serving compute does (where the transports
// converge). One untimed priming batch warms the replica caches (and,
// for mux, dials the connection pool) so the loop measures steady-state
// serving, not oracle warmup — the wire comparison is meaningless if
// iteration one buries both encodings under index probes.
func BenchmarkRouterBatch(b *testing.B) {
	for _, n := range []int{1, 3} {
		for _, wire := range []string{benchWireMux, WireBinary, WireJSON} {
			for _, batch := range []int{512, 4096} {
				b.Run(fmt.Sprintf("replicas=%d/wire=%s/batch=%d", n, wire, batch), func(b *testing.B) {
					rt, g := benchFleet(b, n, wire)
					pairs := benchPairs(g, batch)
					ctx := context.Background()
					// Priming, repeated enough times that every replica's
					// caches are warm and (for mux) every pool connection
					// has been round-robin'd to and dialed.
					for range 4 {
						if _, err := rt.Batch(ctx, pairs); err != nil {
							b.Fatal(err)
						}
					}
					b.ResetTimer()
					for i := 0; i < b.N; i++ {
						if _, err := rt.Batch(ctx, pairs); err != nil {
							b.Fatal(err)
						}
					}
					b.StopTimer()
					b.ReportMetric(float64(batch*b.N)/b.Elapsed().Seconds(), "pairs/sec")
				})
			}
		}
	}
}

// BenchmarkDirectBatch is the no-router baseline: the same 4096-pair
// batch straight to one replica over the same client code path, cache
// primed like BenchmarkRouterBatch. The delta to
// BenchmarkRouterBatch/replicas=1 is the router's added hop.
func BenchmarkDirectBatch(b *testing.B) {
	const batch = 4096
	for _, wire := range []string{benchWireMux, WireBinary, WireJSON} {
		b.Run("wire="+wire, func(b *testing.B) {
			rt, g := benchFleet(b, 1, wire)
			pairs := benchPairs(g, batch)
			c := rt.replicas[0].client
			ctx := context.Background()
			if _, err := c.Batch(ctx, pairs); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := c.Batch(ctx, pairs); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			b.ReportMetric(float64(batch*b.N)/b.Elapsed().Seconds(), "pairs/sec")
		})
	}
}
