// Package fleet is the horizontal-scaling layer above reachd: a thin
// scatter-gather router in front of N replicas that all mmap-serve the
// same snapshot. The oracle index is an immutable, tiny artifact —
// exactly the thing you replicate rather than recompute — so the router
// needs no graph, no index and no cache of its own: it health-checks
// replicas by snapshot fingerprint (refusing to enroll one serving a
// different graph), balances single queries with power-of-two-choices on
// in-flight counts, splits batches into per-replica sub-batches merged
// back in pair order, retries 429s and replica failures on another
// replica, and ejects dead replicas until a backoff probe re-admits
// them.
package fleet

import (
	"context"
	"errors"
	"fmt"
	"io"
	"log"
	"math/rand/v2"
	"net/http"
	"os"
	"slices"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/mux"
	"repro/internal/obs"
	"repro/internal/server"
)

// Defaults for Config's zero values.
const (
	DefaultProbeInterval   = time.Second
	DefaultProbeTimeout    = 2 * time.Second
	DefaultMaxProbeBackoff = 30 * time.Second
	DefaultMaxAttempts     = 3
	DefaultMinSubBatch     = 64
	DefaultMaxBatchPairs   = 1 << 20
)

// Config tunes the router. Replicas is required; every other zero value
// picks the package default.
type Config struct {
	// Replicas are the base URLs of the reachd replicas to front.
	Replicas []string
	// ProbeInterval is the health-check cadence for enrolled replicas.
	ProbeInterval time.Duration
	// ProbeTimeout bounds one health probe.
	ProbeTimeout time.Duration
	// MaxProbeBackoff caps the exponential backoff between re-probes of
	// a dead replica (backoff starts at ProbeInterval and doubles per
	// consecutive failure).
	MaxProbeBackoff time.Duration
	// MaxAttempts is how many distinct replicas one query or sub-batch
	// may be tried on before the router gives up.
	MaxAttempts int
	// MinSubBatch is the smallest sub-batch worth dispatching: a batch
	// splits across at most floor(len/MinSubBatch) replicas, so every
	// sub-batch carries at least MinSubBatch pairs and batches below
	// 2*MinSubBatch skip fan-out entirely.
	MinSubBatch int
	// MaxBatchPairs rejects oversized /v1/batch requests before they
	// are scattered (default 1<<20, matching reachd).
	MaxBatchPairs int
	// UpstreamTimeout bounds each request the router sends a replica
	// (default none — the caller's own deadline governs).
	UpstreamTimeout time.Duration
	// Logf receives operational events (enrollment, ejection,
	// mismatches). Defaults to log.Printf; tests silence it.
	Logf func(format string, args ...any)
	// SlowQueryThreshold enables the slow-query log: routed requests
	// slower than this emit one JSON line to SlowQueryWriter. Zero
	// disables it.
	SlowQueryThreshold time.Duration
	// SlowQueryWriter receives slow-query JSON lines (default os.Stderr
	// when SlowQueryThreshold is set).
	SlowQueryWriter io.Writer
	// EnablePprof mounts net/http/pprof under /debug/pprof/ on the
	// router's mux.
	EnablePprof bool
	// Wire selects the router→replica batch encoding: WireBinary (the
	// default) sends wireproto frames to replicas whose healthz
	// advertises the capability and JSON to the rest; WireJSON forces
	// JSON everywhere (ablation / escape hatch). See docs/WIRE.md.
	Wire string
	// DisableMux keeps all batches on HTTP even when a replica's healthz
	// advertises a stream-transport listener (ablation / escape hatch;
	// WireJSON implies it, since the mux transport carries binary
	// frames). Off by default: replicas that advertise "mux" get
	// persistent pipelined connections, the rest stay on HTTP.
	DisableMux bool
}

// Config.Wire values.
const (
	WireBinary = "binary"
	WireJSON   = "json"
)

func (c Config) withDefaults() Config {
	if c.ProbeInterval <= 0 {
		c.ProbeInterval = DefaultProbeInterval
	}
	if c.ProbeTimeout <= 0 {
		c.ProbeTimeout = DefaultProbeTimeout
	}
	if c.MaxProbeBackoff <= 0 {
		c.MaxProbeBackoff = DefaultMaxProbeBackoff
	}
	if c.MaxAttempts <= 0 {
		c.MaxAttempts = DefaultMaxAttempts
	}
	if c.MinSubBatch <= 0 {
		c.MinSubBatch = DefaultMinSubBatch
	}
	if c.MaxBatchPairs <= 0 {
		c.MaxBatchPairs = DefaultMaxBatchPairs
	}
	if c.Logf == nil {
		c.Logf = log.Printf
	}
	if c.Wire == "" {
		c.Wire = WireBinary
	}
	if c.SlowQueryThreshold > 0 && c.SlowQueryWriter == nil {
		c.SlowQueryWriter = os.Stderr
	}
	return c
}

// ErrNoReplicas means no healthy replica is enrolled right now; the HTTP
// layer maps it to 503.
var ErrNoReplicas = errors.New("no healthy replicas")

// Replica lifecycle states.
const (
	stateProbing    int32 = iota // never successfully probed yet
	stateHealthy                 // enrolled and serving
	stateDown                    // unreachable; re-probed with backoff
	stateMismatched              // alive but serving a different graph
)

func stateName(s int32) string {
	switch s {
	case stateHealthy:
		return "healthy"
	case stateDown:
		return "down"
	case stateMismatched:
		return "mismatched"
	default:
		return "probing"
	}
}

// identity is what a replica's /v1/healthz claims it serves, plus the
// build identity of the binary serving it.
type identity struct {
	Fingerprint string
	Method      string
	Vertices    int
	GoVersion   string
	Revision    string
	// Capabilities is the replica's advertised wire capability list,
	// sorted once at enrollment: healthz order is not part of the
	// contract (negotiation matches by membership, not position), and
	// sorting here keeps every downstream read — /v1/stats rows, logs,
	// e2e asserts — deterministic regardless of what the replica sent.
	Capabilities []string
	// Mux is the replica's advertised stream-transport listener ("" when
	// it offers none).
	Mux string
}

// replica is the router's view of one backend.
type replica struct {
	base   string
	client *Client

	state    atomic.Int32
	inflight atomic.Int64
	ident    atomic.Pointer[identity] // last successful probe's claim

	// Router-side counters (what this router sent, not what the replica
	// served overall).
	requests atomic.Int64
	errors   atomic.Int64
	rejected atomic.Int64 // 429s received from this replica

	// rtt tracks this replica's upstream round-trip latency as measured
	// by the router (one sample per routed call, failures included).
	rtt *obs.Histogram

	// Probe bookkeeping, guarded by mu.
	mu          sync.Mutex
	consecFails int
	nextProbe   time.Time
	probing     bool // a probe is in flight; don't start a second
}

// Router fans queries out over the fleet. Create with New, release with
// Close.
type Router struct {
	cfg      Config
	replicas []*replica

	// baseCtx parents every probe context, so probes observe the
	// caller's cancellation (shutdown) instead of running detached.
	baseCtx context.Context

	// identMu guards fleetIdent, the fleet's established serving
	// identity: the first successfully probed replica defines it and
	// later replicas must match its fingerprint to enroll.
	identMu    sync.Mutex
	fleetIdent *identity

	met routerMetrics

	stop     chan struct{}
	probesWG sync.WaitGroup
}

type routerMetrics struct {
	start         time.Time
	requests      atomic.Int64 // single queries routed
	batchRequests atomic.Int64
	subBatches    atomic.Int64 // sub-batches scattered (retried dispatches count under retries)
	retries       atomic.Int64 // extra attempts after a failed/refused one
	upstream429   atomic.Int64 // 429s absorbed by failover
	failovers     atomic.Int64 // transport failures that ejected a replica
	noReplicas    atomic.Int64 // requests failed for want of any replica
	probes        atomic.Int64 // health probes issued (successful or not)

	reg *obs.Registry
	// Request-level histograms, intentionally named the same as reachd's
	// (reach_http_request_seconds{endpoint=...}) so one scrape query
	// covers both tiers; the router's samples include scatter, upstream
	// round trips and gather.
	reqReachable *obs.Histogram
	reqBatch     *obs.Histogram
	// Scatter/gather stage histograms for batches.
	scatterDur *obs.Histogram

	// wire tallies batch traffic to replicas by encoding, shared across
	// every replica client; same series names as the replicas' own, so
	// one scrape query shows both tiers (tx here is rx there).
	wire wireCounters
	// muxTraffic is the stream-transport sibling of wire, shared across
	// every replica client's mux pool; exposed as reach_mux_frames_total
	// / reach_mux_bytes_total, again mirroring the replicas' own series
	// (tx here is rx there).
	muxTraffic mux.Counters

	slow *obs.SlowLog
}

func (m *routerMetrics) uptimeSeconds() float64 { return time.Since(m.start).Seconds() }

// init builds the registry and registers everything derivable from the
// metrics struct itself; per-replica and fleet-level series are added in
// New once the replica set exists.
func (m *routerMetrics) init() {
	m.start = time.Now()
	m.reg = obs.NewRegistry()
	m.reqReachable = m.reg.Histogram("reach_http_request_seconds",
		"End-to-end latency of routed query requests, including scatter, upstream round trips and gather.",
		obs.Labels{"endpoint": "reachable"})
	m.reqBatch = m.reg.Histogram("reach_http_request_seconds",
		"End-to-end latency of routed query requests, including scatter, upstream round trips and gather.",
		obs.Labels{"endpoint": "batch"})
	m.scatterDur = m.reg.Histogram("reach_router_scatter_seconds",
		"Latency of one scatter/gather round: splitting a batch, dispatching sub-batches and merging answers.",
		nil)
	m.reg.CounterFunc("reach_router_requests_total", "Single queries routed.", nil, m.requests.Load)
	m.reg.CounterFunc("reach_router_batch_requests_total", "Batch requests routed.", nil, m.batchRequests.Load)
	m.reg.CounterFunc("reach_router_sub_batches_total", "Sub-batches scattered to replicas.", nil, m.subBatches.Load)
	m.reg.CounterFunc("reach_router_retries_total", "Extra routing attempts after a failed or refused one.", nil, m.retries.Load)
	m.reg.CounterFunc("reach_router_upstream_429_total", "429 responses absorbed by failover.", nil, m.upstream429.Load)
	m.reg.CounterFunc("reach_router_failovers_total", "Transport failures that ejected a replica.", nil, m.failovers.Load)
	m.reg.CounterFunc("reach_router_no_replica_errors_total", "Requests failed for want of any healthy replica.", nil, m.noReplicas.Load)
	m.reg.CounterFunc("reach_router_probes_total", "Health probes issued to replicas.", nil, m.probes.Load)
	m.reg.CounterFunc("reach_wire_frames_total", "Sub-batches sent to replicas, by encoding.",
		obs.Labels{"encoding": "json"}, m.wire.framesJSON.Load)
	m.reg.CounterFunc("reach_wire_frames_total", "Sub-batches sent to replicas, by encoding.",
		obs.Labels{"encoding": "binary"}, m.wire.framesBinary.Load)
	m.reg.CounterFunc("reach_wire_bytes_total", "Batch body bytes exchanged with replicas, by direction (tx = requests sent, rx = responses read) and encoding.",
		obs.Labels{"direction": "rx", "encoding": "json"}, m.wire.rxJSON.Load)
	m.reg.CounterFunc("reach_wire_bytes_total", "Batch body bytes exchanged with replicas, by direction (tx = requests sent, rx = responses read) and encoding.",
		obs.Labels{"direction": "tx", "encoding": "json"}, m.wire.txJSON.Load)
	m.reg.CounterFunc("reach_wire_bytes_total", "Batch body bytes exchanged with replicas, by direction (tx = requests sent, rx = responses read) and encoding.",
		obs.Labels{"direction": "rx", "encoding": "binary"}, m.wire.rxBinary.Load)
	m.reg.CounterFunc("reach_wire_bytes_total", "Batch body bytes exchanged with replicas, by direction (tx = requests sent, rx = responses read) and encoding.",
		obs.Labels{"direction": "tx", "encoding": "binary"}, m.wire.txBinary.Load)
	m.reg.CounterFunc("reach_mux_frames_total", "Stream-transport frames exchanged with replicas, by direction (tx = requests sent, rx = responses read).",
		obs.Labels{"direction": "tx"}, m.muxTraffic.FramesTx.Load)
	m.reg.CounterFunc("reach_mux_frames_total", "Stream-transport frames exchanged with replicas, by direction (tx = requests sent, rx = responses read).",
		obs.Labels{"direction": "rx"}, m.muxTraffic.FramesRx.Load)
	m.reg.CounterFunc("reach_mux_bytes_total", "Stream-transport bytes exchanged with replicas, by direction (tx = sent, rx = read), envelopes and trace fields included.",
		obs.Labels{"direction": "tx"}, m.muxTraffic.BytesTx.Load)
	m.reg.CounterFunc("reach_mux_bytes_total", "Stream-transport bytes exchanged with replicas, by direction (tx = sent, rx = read), envelopes and trace fields included.",
		obs.Labels{"direction": "rx"}, m.muxTraffic.BytesRx.Load)
	// m.slow is assigned after init returns; the closure (unlike a method
	// value) picks up the final pointer at scrape time.
	m.reg.CounterFunc("reach_router_slow_queries_total", "Routed requests recorded in the slow-query log.", nil,
		func() int64 { return m.slow.Emitted() })
	m.reg.GaugeFunc("reach_uptime_seconds", "Seconds since the router was created.", nil,
		func() float64 { return time.Since(m.start).Seconds() })
	bi := obs.BuildInfo()
	m.reg.GaugeFunc("reach_build_info", "Build metadata carried as labels; the value is fixed at 1.",
		obs.Labels{"go_version": bi.GoVersion, "revision": bi.Revision}, func() float64 { return 1 })
}

// New builds a router over cfg.Replicas, runs one synchronous probe
// round so an immediately following query finds whatever is already up,
// and starts the background probe loop. It does not require any replica
// to be alive yet — a router may legitimately start before its fleet.
//
// ctx parents every background probe: cancelling it stops in-flight
// health checks (Close still stops the probe loop itself).
func New(ctx context.Context, cfg Config) (*Router, error) {
	cfg = cfg.withDefaults()
	if len(cfg.Replicas) == 0 {
		return nil, errors.New("fleet: no replicas configured")
	}
	if cfg.Wire != WireBinary && cfg.Wire != WireJSON {
		return nil, fmt.Errorf("fleet: unknown wire encoding %q (want %q or %q)", cfg.Wire, WireBinary, WireJSON)
	}
	if ctx == nil {
		return nil, errors.New("fleet: nil base context")
	}
	seen := make(map[string]bool, len(cfg.Replicas))
	rt := &Router{cfg: cfg, baseCtx: ctx, stop: make(chan struct{})}
	rt.met.init()
	rt.met.slow = obs.NewSlowLog(cfg.SlowQueryWriter, cfg.SlowQueryThreshold)
	for _, base := range cfg.Replicas {
		if base == "" || seen[base] {
			return nil, errors.New("fleet: replica URLs must be non-empty and unique")
		}
		seen[base] = true
		client := NewClient(base, cfg.UpstreamTimeout)
		// All replica clients account into the router's shared wire and
		// mux traffic counters instead of their private ones.
		client.counters = &rt.met.wire
		client.muxCounters = &rt.met.muxTraffic
		rt.replicas = append(rt.replicas, &replica{
			base:   base,
			client: client,
			rtt: rt.met.reg.Histogram("reach_router_upstream_seconds",
				"Round-trip latency of one routed call to a replica, as measured by the router.",
				obs.Labels{"replica": base}),
		})
	}
	rt.met.reg.GaugeFunc("reach_router_replicas_healthy", "Replicas currently enrolled and serving.", nil,
		func() float64 { return float64(len(rt.healthy(nil))) })
	rt.met.reg.GaugeFunc("reach_router_replicas_total", "Replicas configured, healthy or not.", nil,
		func() float64 { return float64(len(rt.replicas)) })
	rt.met.reg.GaugeFunc("reach_mux_conns", "Open stream-transport (mux) connections across all replicas.", nil,
		func() float64 {
			n := 0
			for _, r := range rt.replicas {
				n += r.client.MuxOpenConns()
			}
			return float64(n)
		})
	var wg sync.WaitGroup
	for _, r := range rt.replicas {
		wg.Add(1)
		go func(r *replica) {
			defer wg.Done()
			rt.probe(r)
		}(r)
	}
	wg.Wait()
	rt.probesWG.Add(1)
	go rt.probeLoop()
	return rt, nil
}

// Close stops the probe loop and releases pooled connections.
func (rt *Router) Close() {
	close(rt.stop)
	rt.probesWG.Wait()
	for _, r := range rt.replicas {
		r.client.CloseIdleConnections()
	}
}

// probeLoop re-checks replicas forever: healthy ones every
// ProbeInterval, dead ones per their backoff schedule. Ticking at a
// fraction of the interval keeps backoff wake-ups reasonably on time
// without busy-polling.
func (rt *Router) probeLoop() {
	defer rt.probesWG.Done()
	tick := rt.cfg.ProbeInterval / 4
	if tick < 5*time.Millisecond {
		tick = 5 * time.Millisecond
	}
	t := time.NewTicker(tick)
	defer t.Stop()
	for {
		select {
		case <-rt.stop:
			return
		case <-t.C:
		}
		now := time.Now()
		for _, r := range rt.replicas {
			r.mu.Lock()
			due := !r.probing && !now.Before(r.nextProbe)
			if due {
				r.probing = true
			}
			r.mu.Unlock()
			if due {
				rt.probesWG.Add(1)
				go func(r *replica) {
					defer rt.probesWG.Done()
					rt.probe(r)
				}(r)
			}
		}
	}
}

// probe health-checks one replica and moves it through the lifecycle:
// healthy on a fingerprint match, mismatched on a conflicting claim,
// down (with exponential re-probe backoff) when unreachable.
func (rt *Router) probe(r *replica) {
	rt.met.probes.Add(1)
	ctx, cancel := context.WithTimeout(rt.baseCtx, rt.cfg.ProbeTimeout)
	hz, err := r.client.Healthz(ctx)
	cancel()

	r.mu.Lock()
	defer func() {
		r.probing = false
		r.mu.Unlock()
	}()
	if err != nil {
		r.consecFails++
		backoff := rt.cfg.ProbeInterval << (r.consecFails - 1)
		if backoff > rt.cfg.MaxProbeBackoff || backoff <= 0 {
			backoff = rt.cfg.MaxProbeBackoff
		}
		r.nextProbe = time.Now().Add(backoff)
		if prev := r.state.Swap(stateDown); prev == stateHealthy {
			rt.cfg.Logf("fleet: replica %s down (%v); next probe in %s", r.base, err, backoff)
		}
		return
	}
	caps := slices.Clone(hz.Wire)
	slices.Sort(caps)
	id := identity{
		Fingerprint: hz.Fingerprint, Method: hz.Method, Vertices: hz.Vertices,
		GoVersion: hz.GoVersion, Revision: hz.Revision,
		Capabilities: caps, Mux: hz.Mux,
	}
	r.ident.Store(&id)
	// Wire negotiation, re-decided at every probe: binary only when the
	// router wants it AND the replica's healthz advertises it (matched by
	// membership — advertisement order carries no meaning). A healthz
	// without the capability (pre-binary build, or -wire=json) gets JSON.
	useBinary := rt.cfg.Wire == WireBinary && slices.Contains(hz.Wire, "binary")
	r.client.UseBinaryWire(useBinary)
	// Transport negotiation rides on top: a binary-speaking replica that
	// advertises a mux listener gets the persistent stream transport,
	// re-decided (and torn down when the advertisement disappears — say a
	// replica restarted without -mux-addr) at every probe.
	muxAddr := ""
	if useBinary && !rt.cfg.DisableMux && hz.Mux != "" {
		muxAddr = resolveMuxAddr(r.base, hz.Mux)
	}
	r.client.UseMux(muxAddr, hz.Fingerprint)
	r.consecFails = 0
	r.nextProbe = time.Now().Add(rt.cfg.ProbeInterval)
	if !rt.enroll(&id) {
		if prev := r.state.Swap(stateMismatched); prev != stateMismatched {
			rt.cfg.Logf("fleet: REFUSING replica %s: it serves fingerprint %s, fleet serves %s — mixed-graph fleets return wrong answers",
				r.base, id.Fingerprint, rt.FleetIdentity().Fingerprint)
		}
		return
	}
	if prev := r.state.Swap(stateHealthy); prev != stateHealthy {
		rt.cfg.Logf("fleet: replica %s enrolled (%s index, %d vertices, fingerprint %s)",
			r.base, id.Method, id.Vertices, id.Fingerprint)
	}
}

// enroll checks id against the fleet identity, establishing it from the
// first successful probe. Only the fingerprint gates enrollment: two
// replicas serving the same graph through different index methods answer
// identically, just at different speeds.
func (rt *Router) enroll(id *identity) bool {
	rt.identMu.Lock()
	defer rt.identMu.Unlock()
	if rt.fleetIdent == nil {
		rt.fleetIdent = id
		return true
	}
	return rt.fleetIdent.Fingerprint == id.Fingerprint
}

// FleetIdentity returns the established serving identity (zero until any
// replica has been successfully probed).
func (rt *Router) FleetIdentity() identity {
	rt.identMu.Lock()
	defer rt.identMu.Unlock()
	if rt.fleetIdent == nil {
		return identity{}
	}
	return *rt.fleetIdent
}

// markDown ejects a replica after a failed request and schedules a quick
// re-probe; the probe loop takes over the backoff from there.
func (rt *Router) markDown(r *replica) {
	if r.state.CompareAndSwap(stateHealthy, stateDown) {
		rt.met.failovers.Add(1)
		rt.cfg.Logf("fleet: replica %s ejected after request failure", r.base)
	}
	r.mu.Lock()
	if r.consecFails == 0 {
		r.consecFails = 1
	}
	r.nextProbe = time.Now()
	r.mu.Unlock()
}

// healthy returns the currently enrolled replicas, excluding skip.
func (rt *Router) healthy(skip map[*replica]bool) []*replica {
	out := make([]*replica, 0, len(rt.replicas))
	for _, r := range rt.replicas {
		if r.state.Load() == stateHealthy && !skip[r] {
			out = append(out, r)
		}
	}
	return out
}

// pick chooses a replica by power-of-two-choices: sample two distinct
// candidates uniformly and take the one with fewer in-flight requests.
// That is within a constant factor of ideal least-loaded balancing
// without any shared counter contention or O(N) scan coordination.
// math/rand/v2's top-level generators are per-thread (no global mutex),
// so concurrent picks don't serialize the hot path.
func (rt *Router) pick(skip map[*replica]bool) *replica {
	cands := rt.healthy(skip)
	switch len(cands) {
	case 0:
		return nil
	case 1:
		return cands[0]
	}
	i := rand.IntN(len(cands))
	j := rand.IntN(len(cands) - 1)
	if j >= i {
		j++
	}
	if cands[i].inflight.Load() <= cands[j].inflight.Load() {
		return cands[i]
	}
	return cands[j]
}

// route runs call against up to MaxAttempts distinct replicas, ejecting
// ones that fail at the transport level and moving past 429/5xx answers.
// Non-retryable upstream statuses (a 400 for a bad vertex ID) and the
// caller's own context ending stop the loop immediately.
func route[T any](rt *Router, ctx context.Context, call func(context.Context, *Client) (T, error)) (T, error) {
	var zero T
	var lastErr error
	maxRetryAfter := 0 // largest Retry-After hint seen across 429s
	skip := make(map[*replica]bool, rt.cfg.MaxAttempts)
	for attempt := 0; attempt < rt.cfg.MaxAttempts; attempt++ {
		if err := ctx.Err(); err != nil {
			return zero, err
		}
		r := rt.pick(skip)
		if r == nil {
			break // nothing (left) to try
		}
		if attempt > 0 {
			rt.met.retries.Add(1)
		}
		skip[r] = true
		r.requests.Add(1)
		r.inflight.Add(1)
		t0 := time.Now()
		res, err := call(ctx, r.client)
		r.rtt.RecordSince(t0)
		r.inflight.Add(-1)
		if err == nil {
			return res, nil
		}
		lastErr = err
		var se *StatusError
		switch {
		case errors.As(err, &se):
			if se.Status == http.StatusTooManyRequests {
				// The replica shed load; another may have room right
				// now, so failing over beats honoring Retry-After by
				// sleeping. Only when every replica refuses does the
				// router relay the 429 (with the largest hint) upward.
				r.rejected.Add(1)
				rt.met.upstream429.Add(1)
				if se.RetryAfter > maxRetryAfter {
					maxRetryAfter = se.RetryAfter
				}
				continue
			}
			r.errors.Add(1)
			if !se.Retryable() {
				return zero, err
			}
		case ctx.Err() != nil:
			// The transport error is our own deadline/cancellation
			// surfacing, not replica death — don't eject anyone.
			return zero, ctx.Err()
		default:
			// Transport failure: treat the replica as dead and fail over.
			r.errors.Add(1)
			rt.markDown(r)
		}
	}
	if lastErr == nil {
		rt.met.noReplicas.Add(1)
		return zero, ErrNoReplicas
	}
	// When the final verdict is "every replica shed", surface the most
	// conservative backoff hint any of them gave, not the last one's.
	var se *StatusError
	if errors.As(lastErr, &se) && se.Status == http.StatusTooManyRequests && maxRetryAfter > se.RetryAfter {
		se.RetryAfter = maxRetryAfter
	}
	return zero, lastErr
}

// Reachable routes one query to some healthy replica.
func (rt *Router) Reachable(ctx context.Context, u, v uint64) (server.ReachableResponse, error) {
	rt.met.requests.Add(1)
	return route(rt, ctx, func(ctx context.Context, c *Client) (server.ReachableResponse, error) {
		return c.Reachable(ctx, u, v)
	})
}

// Batch scatters pairs over the healthy replicas as contiguous
// sub-batches and gathers the answers back into pair order. Results[i]
// always answers pairs[i]: each sub-batch owns a fixed [lo,hi) window of
// the result slice, so merge order is positional and immune to the
// completion order of replicas. A sub-batch whose replica fails is
// retried on another (bounded by MaxAttempts); if any sub-batch
// ultimately fails the whole batch errors, because a partial answer
// misaligned with its pairs is worse than none.
func (rt *Router) Batch(ctx context.Context, pairs [][2]uint64) ([]bool, error) {
	rt.met.batchRequests.Add(1)
	t0 := time.Now()
	defer rt.met.scatterDur.RecordSince(t0)
	n := len(pairs)
	if n == 0 {
		return []bool{}, nil
	}
	// Floor division: a batch only scatters into sub-batches that are
	// each at least MinSubBatch pairs, so small batches skip fan-out
	// entirely instead of paying several round trips for slivers.
	chunks := n / rt.cfg.MinSubBatch
	if chunks < 1 {
		chunks = 1
	}
	h := len(rt.healthy(nil))
	if h == 0 {
		rt.met.noReplicas.Add(1)
		return nil, ErrNoReplicas
	}
	if chunks > h {
		chunks = h
	}
	sendOne := func(ctx context.Context, sub [][2]uint64) ([]bool, error) {
		rt.met.subBatches.Add(1)
		return route(rt, ctx, func(ctx context.Context, c *Client) ([]bool, error) {
			return c.Batch(ctx, sub)
		})
	}
	if chunks == 1 {
		return sendOne(ctx, pairs)
	}

	out := make([]bool, n)
	per := (n + chunks - 1) / chunks
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	var (
		wg      sync.WaitGroup
		errMu   sync.Mutex
		gathErr error
	)
	for lo := 0; lo < n; lo += per {
		hi := lo + per
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			res, err := sendOne(ctx, pairs[lo:hi])
			if err != nil {
				errMu.Lock()
				if gathErr == nil {
					gathErr = err
				}
				errMu.Unlock()
				cancel() // sibling sub-batches are wasted work now
				return
			}
			copy(out[lo:hi], res)
		}(lo, hi)
	}
	wg.Wait()
	if gathErr != nil {
		return nil, gathErr
	}
	return out, nil
}
