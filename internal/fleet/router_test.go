package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	reach "repro"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/obs"
	"repro/internal/server"
)

// Fake replica behavior modes.
const (
	modeOK int32 = iota
	mode429
	mode500
)

// fakeReplica is a scripted reachd stand-in: it answers the v1 wire
// protocol from a pure function and can be told to shed (429), fail
// (500), delay, or die and come back on the same address.
type fakeReplica struct {
	fingerprint string
	answer      func(u, v uint64) bool
	mode        atomic.Int32
	batchMode   atomic.Int32 // overrides mode for /v1/batch when set
	delay       time.Duration
	retryAfter  int

	queries    atomic.Int64 // pairs answered (single + batch)
	batchCalls atomic.Int64
	lastTrace  atomic.Value // X-Reach-Trace header of the last query received

	addr string
	srv  *http.Server
}

func newFakeReplica(fingerprint string, answer func(u, v uint64) bool) *fakeReplica {
	return &fakeReplica{fingerprint: fingerprint, answer: answer, retryAfter: 1}
}

// start begins serving; on the first call it binds a fresh loopback
// port, later calls rebind the same address so re-enrollment after a
// "crash" can be tested.
func (f *fakeReplica) start(t *testing.T) string {
	t.Helper()
	addr := f.addr
	if addr == "" {
		addr = "127.0.0.1:0"
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		t.Fatalf("fake replica listen %s: %v", addr, err)
	}
	f.addr = ln.Addr().String()
	f.srv = &http.Server{Handler: f.handler()}
	go f.srv.Serve(ln)
	t.Cleanup(func() { f.srv.Close() })
	return "http://" + f.addr
}

// stop kills the fake abruptly: the listener and every open connection
// close, as SIGKILL on a real replica would.
func (f *fakeReplica) stop() { f.srv.Close() }

// shed reports whether the current mode hijacked the response.
func (f *fakeReplica) shed(w http.ResponseWriter, mode int32) bool {
	switch mode {
	case mode429:
		w.Header().Set("Retry-After", strconv.Itoa(f.retryAfter))
		w.WriteHeader(http.StatusTooManyRequests)
		json.NewEncoder(w).Encode(server.ErrorResponse{Error: "shedding"})
		return true
	case mode500:
		w.WriteHeader(http.StatusInternalServerError)
		json.NewEncoder(w).Encode(server.ErrorResponse{Error: "injected failure"})
		return true
	}
	return false
}

func (f *fakeReplica) handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/healthz", func(w http.ResponseWriter, _ *http.Request) {
		json.NewEncoder(w).Encode(server.HealthzResponse{
			Status: "ok", Method: "FAKE", Vertices: 1000,
			Fingerprint: f.fingerprint, Source: "snapshot",
		})
	})
	mux.HandleFunc("GET /v1/reachable", func(w http.ResponseWriter, r *http.Request) {
		f.lastTrace.Store(r.Header.Get(obs.TraceHeader))
		if f.delay > 0 {
			time.Sleep(f.delay)
		}
		if f.shed(w, f.mode.Load()) {
			return
		}
		u, _ := strconv.ParseUint(r.URL.Query().Get("u"), 10, 64)
		v, _ := strconv.ParseUint(r.URL.Query().Get("v"), 10, 64)
		f.queries.Add(1)
		json.NewEncoder(w).Encode(server.ReachableResponse{U: u, V: v, Reachable: f.answer(u, v)})
	})
	mux.HandleFunc("POST /v1/batch", func(w http.ResponseWriter, r *http.Request) {
		f.lastTrace.Store(r.Header.Get(obs.TraceHeader))
		f.batchCalls.Add(1)
		if f.delay > 0 {
			// Shuffled completion: each sub-batch takes a random slice of
			// the configured delay, so gather order != dispatch order.
			time.Sleep(time.Duration(rand.Int63n(int64(f.delay))))
		}
		mode := f.batchMode.Load()
		if mode == modeOK {
			mode = f.mode.Load()
		}
		if f.shed(w, mode) {
			return
		}
		var req server.BatchRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			w.WriteHeader(http.StatusBadRequest)
			return
		}
		results := make([]bool, len(req.Pairs))
		for i, p := range req.Pairs {
			results[i] = f.answer(p[0], p[1])
		}
		f.queries.Add(int64(len(req.Pairs)))
		json.NewEncoder(w).Encode(server.BatchResponse{Count: len(results), Results: results})
	})
	mux.HandleFunc("GET /v1/stats", func(w http.ResponseWriter, _ *http.Request) {
		var st server.Stats
		st.Graph.Vertices = 1000
		st.Server.Queries = f.queries.Load()
		json.NewEncoder(w).Encode(st)
	})
	return mux
}

// silentCfg keeps test logs quiet and probe cycles fast.
func silentCfg(replicas ...string) Config {
	return Config{
		Replicas:      replicas,
		ProbeInterval: 20 * time.Millisecond,
		ProbeTimeout:  time.Second,
		MaxAttempts:   3,
		Logf:          func(string, ...any) {},
	}
}

func newTestRouter(t *testing.T, cfg Config) *Router {
	t.Helper()
	rt, err := New(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(rt.Close)
	return rt
}

// waitState polls until the replica at base reaches the wanted state.
func waitState(t *testing.T, rt *Router, base string, want int32) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		for _, r := range rt.replicas {
			if r.base == base && r.state.Load() == want {
				return
			}
		}
		if time.Now().After(deadline) {
			for _, r := range rt.replicas {
				t.Logf("replica %s state=%s", r.base, stateName(r.state.Load()))
			}
			t.Fatalf("replica %s never reached state %s", base, stateName(want))
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func xorAnswer(u, v uint64) bool { return (u^v)%3 == 0 }

func TestRouterSingleAndBatch(t *testing.T) {
	a := newFakeReplica("f1", xorAnswer)
	b := newFakeReplica("f1", xorAnswer)
	c := newFakeReplica("f1", xorAnswer)
	rt := newTestRouter(t, silentCfg(a.start(t), b.start(t), c.start(t)))

	for i := uint64(0); i < 50; i++ {
		got, err := rt.Reachable(context.Background(), i, i*7)
		if err != nil {
			t.Fatalf("query %d: %v", i, err)
		}
		if got.Reachable != xorAnswer(i, i*7) || got.U != i {
			t.Fatalf("query %d: wrong answer %+v", i, got)
		}
	}
	pairs := make([][2]uint64, 500)
	for i := range pairs {
		pairs[i] = [2]uint64{uint64(i), uint64(3 * i)}
	}
	res, err := rt.Batch(context.Background(), pairs)
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range pairs {
		if res[i] != xorAnswer(p[0], p[1]) {
			t.Fatalf("batch pair %d wrong", i)
		}
	}
	// All three replicas should have seen work (the batch scatters, and
	// 50 singles under p2c cannot all land on one node).
	if a.queries.Load() == 0 || b.queries.Load() == 0 || c.queries.Load() == 0 {
		t.Errorf("load not spread: a=%d b=%d c=%d",
			a.queries.Load(), b.queries.Load(), c.queries.Load())
	}
}

// TestRouterOrderPreservingMerge forces scatter with a tiny MinSubBatch
// and random per-sub-batch delays, so sub-batches complete in shuffled
// order; every result must still answer its own pair.
func TestRouterOrderPreservingMerge(t *testing.T) {
	answer := func(u, v uint64) bool { return u%2 == 0 && v%5 != 0 }
	var fakes []*fakeReplica
	var bases []string
	for i := 0; i < 3; i++ {
		f := newFakeReplica("f1", answer)
		f.delay = 30 * time.Millisecond
		fakes = append(fakes, f)
		bases = append(bases, f.start(t))
	}
	cfg := silentCfg(bases...)
	cfg.MinSubBatch = 1
	rt := newTestRouter(t, cfg)

	pairs := make([][2]uint64, 300)
	for i := range pairs {
		pairs[i] = [2]uint64{uint64(i), uint64(i * i % 97)}
	}
	res, err := rt.Batch(context.Background(), pairs)
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range pairs {
		if res[i] != answer(p[0], p[1]) {
			t.Fatalf("result %d misaligned after shuffled gather", i)
		}
	}
	if rt.met.subBatches.Load() < 3 {
		t.Fatalf("batch did not scatter: %d sub-batches", rt.met.subBatches.Load())
	}
	// p2c picks each sub-batch independently, so one replica may by
	// chance get nothing — but a 3-way scatter must use at least two.
	spread := 0
	for _, f := range fakes {
		if f.batchCalls.Load() > 0 {
			spread++
		}
	}
	if spread < 2 {
		t.Fatalf("3 sub-batches all landed on one replica")
	}
}

func TestRouterAllReplicasDown(t *testing.T) {
	a := newFakeReplica("f1", xorAnswer)
	b := newFakeReplica("f1", xorAnswer)
	baseA, baseB := a.start(t), b.start(t)
	rt := newTestRouter(t, silentCfg(baseA, baseB))
	a.stop()
	b.stop()
	waitState(t, rt, baseA, stateDown)
	waitState(t, rt, baseB, stateDown)

	if _, err := rt.Reachable(context.Background(), 1, 2); !errors.Is(err, ErrNoReplicas) {
		t.Fatalf("query with dead fleet: %v, want ErrNoReplicas", err)
	}
	if _, err := rt.Batch(context.Background(), [][2]uint64{{1, 2}}); !errors.Is(err, ErrNoReplicas) {
		t.Fatalf("batch with dead fleet: %v, want ErrNoReplicas", err)
	}

	// Through HTTP: a clear 503 naming the fleet occupancy.
	ts := httptest.NewServer(rt.Handler())
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/v1/reachable?u=1&v=2")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503", resp.StatusCode)
	}
	var e server.ErrorResponse
	if err := json.NewDecoder(resp.Body).Decode(&e); err != nil {
		t.Fatal(err)
	}
	if want := "no healthy replicas in fleet (0/2 enrolled)"; !strings.Contains(e.Error, want) {
		t.Fatalf("503 body %q does not explain the outage (want %q)", e.Error, want)
	}
	// Healthz must also tell the layer above.
	hz, err := http.Get(ts.URL + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hz.Body.Close()
	if hz.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("healthz with dead fleet: status %d, want 503", hz.StatusCode)
	}
}

// TestRouterHonors429 proves overload failover: a shedding replica's
// 429s are absorbed by retrying another replica, and only when every
// replica sheds does the client see a 429 — carrying the upstream
// Retry-After hint.
func TestRouterHonors429(t *testing.T) {
	a := newFakeReplica("f1", xorAnswer)
	a.retryAfter = 9
	b := newFakeReplica("f1", xorAnswer)
	rt := newTestRouter(t, silentCfg(a.start(t), b.start(t)))
	a.mode.Store(mode429)

	for i := uint64(0); i < 40; i++ {
		got, err := rt.Reachable(context.Background(), i, i+1)
		if err != nil {
			t.Fatalf("query %d should have failed over past the 429: %v", i, err)
		}
		if got.Reachable != xorAnswer(i, i+1) {
			t.Fatalf("query %d wrong answer", i)
		}
	}
	if rt.met.upstream429.Load() == 0 {
		t.Fatal("40 queries against a half-shedding fleet absorbed no 429s")
	}
	for _, r := range rt.replicas {
		if r.base == "http://"+a.addr && r.rejected.Load() == 0 {
			t.Fatal("shedding replica's rejected counter never moved")
		}
	}

	// Both shedding with different hints: the client's 429 must carry
	// the most conservative (largest) Retry-After the fleet gave, no
	// matter which replica was tried last.
	b.mode.Store(mode429)
	b.retryAfter = 1
	ts := httptest.NewServer(rt.Handler())
	defer ts.Close()
	for i := 0; i < 10; i++ {
		resp, err := http.Get(ts.URL + "/v1/reachable?u=1&v=2")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusTooManyRequests {
			t.Fatalf("all-shedding fleet: status %d, want 429", resp.StatusCode)
		}
		if ra := resp.Header.Get("Retry-After"); ra != "9" {
			t.Fatalf("Retry-After %q, want the largest upstream hint 9", ra)
		}
	}
}

// TestRouterPartialSubBatchFailure: a replica that fails batches with
// 500 must cost at most a bounded retry — the sub-batch lands on another
// replica and the merged result is still correct and complete.
func TestRouterPartialSubBatchFailure(t *testing.T) {
	a := newFakeReplica("f1", xorAnswer)
	bad := newFakeReplica("f1", xorAnswer)
	c := newFakeReplica("f1", xorAnswer)
	cfg := silentCfg(a.start(t), bad.start(t), c.start(t))
	cfg.MinSubBatch = 1
	rt := newTestRouter(t, cfg)
	bad.batchMode.Store(mode500)

	pairs := make([][2]uint64, 90)
	for i := range pairs {
		pairs[i] = [2]uint64{uint64(i), uint64(i + 13)}
	}
	for round := 0; round < 20; round++ {
		res, err := rt.Batch(context.Background(), pairs)
		if err != nil {
			t.Fatalf("round %d: batch failed despite two healthy replicas: %v", round, err)
		}
		for i, p := range pairs {
			if res[i] != xorAnswer(p[0], p[1]) {
				t.Fatalf("round %d: result %d wrong after sub-batch retry", round, i)
			}
		}
	}
	if bad.batchCalls.Load() == 0 {
		t.Skip("failing replica was never picked (vanishingly unlikely)")
	}
	if rt.met.retries.Load() == 0 {
		t.Fatal("sub-batches failed on a replica but the retry counter never moved")
	}
}

// TestRouterBoundedRetryThenError: when every replica fails batches, the
// router must give up after MaxAttempts distinct replicas, not loop.
func TestRouterBoundedRetryThenError(t *testing.T) {
	var fakes []*fakeReplica
	var bases []string
	for i := 0; i < 3; i++ {
		f := newFakeReplica("f1", xorAnswer)
		fakes = append(fakes, f)
		bases = append(bases, f.start(t))
	}
	cfg := silentCfg(bases...)
	cfg.MaxAttempts = 3
	rt := newTestRouter(t, cfg)
	for _, f := range fakes {
		f.batchMode.Store(mode500)
	}

	before := int64(0)
	for _, f := range fakes {
		before += f.batchCalls.Load()
	}
	_, err := rt.Batch(context.Background(), [][2]uint64{{1, 2}, {3, 4}})
	var se *StatusError
	if !errors.As(err, &se) || se.Status != http.StatusInternalServerError {
		t.Fatalf("all-failing batch returned %v, want upstream 500 StatusError", err)
	}
	attempts := int64(0)
	for _, f := range fakes {
		attempts += f.batchCalls.Load()
	}
	if attempts-before != 3 {
		t.Fatalf("failed batch cost %d upstream attempts, want exactly MaxAttempts=3", attempts-before)
	}

	// Through HTTP this is a 502, not a hang or a 200 with garbage.
	ts := httptest.NewServer(rt.Handler())
	defer ts.Close()
	resp, _ := postBatch(t, ts.URL, [][2]uint64{{1, 2}})
	if resp.StatusCode != http.StatusBadGateway {
		t.Fatalf("all-failing batch over HTTP: status %d, want 502", resp.StatusCode)
	}
}

func postBatch(t *testing.T, base string, pairs [][2]uint64) (*http.Response, server.BatchResponse) {
	t.Helper()
	body, _ := json.Marshal(server.BatchRequest{Pairs: pairs})
	resp, err := http.Post(base+"/v1/batch", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var br server.BatchResponse
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&br); err != nil {
			t.Fatal(err)
		}
	}
	return resp, br
}

// TestRouterRefusesMismatchedFingerprint: a replica serving a different
// graph must never be enrolled, and queries must never reach it.
func TestRouterRefusesMismatchedFingerprint(t *testing.T) {
	a := newFakeReplica("fleet-fp", xorAnswer)
	b := newFakeReplica("fleet-fp", xorAnswer)
	wrong := newFakeReplica("OTHER-fp", func(u, v uint64) bool { return true }) // would corrupt answers

	baseA, baseB := a.start(t), b.start(t)
	// The mismatched replica starts dead so A or B deterministically
	// establishes the fleet identity first.
	wrongAddr := func() string {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		addr := ln.Addr().String()
		ln.Close()
		return addr
	}()
	wrong.addr = wrongAddr
	rt := newTestRouter(t, silentCfg(baseA, baseB, "http://"+wrongAddr))
	waitState(t, rt, baseA, stateHealthy)
	waitState(t, rt, baseB, stateHealthy)

	baseWrong := wrong.start(t)
	waitState(t, rt, baseWrong, stateMismatched)

	for i := uint64(0); i < 60; i++ {
		got, err := rt.Reachable(context.Background(), i, i)
		if err != nil {
			t.Fatal(err)
		}
		if got.Reachable != xorAnswer(i, i) {
			t.Fatalf("query %d answered by the wrong-graph replica", i)
		}
	}
	if wrong.queries.Load() != 0 {
		t.Fatalf("mismatched replica served %d queries; it must be excluded", wrong.queries.Load())
	}
	st := rt.Stats(context.Background())
	found := false
	for _, r := range st.Replicas {
		if r.Base == baseWrong {
			found = true
			if r.State != "mismatched" {
				t.Fatalf("stats report mismatched replica as %q", r.State)
			}
		}
	}
	if !found {
		t.Fatal("mismatched replica missing from stats")
	}
	if st.Fleet.ReplicasHealthy != 2 || st.Fleet.ReplicasTotal != 3 {
		t.Fatalf("fleet occupancy %d/%d, want 2/3", st.Fleet.ReplicasHealthy, st.Fleet.ReplicasTotal)
	}
}

// TestRouterFailoverAndReprobe: killing a replica mid-traffic must not
// fail a single query, and restarting it on the same address must
// re-enroll it via the backoff prober.
func TestRouterFailoverAndReprobe(t *testing.T) {
	a := newFakeReplica("f1", xorAnswer)
	b := newFakeReplica("f1", xorAnswer)
	baseA, baseB := a.start(t), b.start(t)
	cfg := silentCfg(baseA, baseB)
	cfg.MaxProbeBackoff = 100 * time.Millisecond
	rt := newTestRouter(t, cfg)
	waitState(t, rt, baseA, stateHealthy)
	waitState(t, rt, baseB, stateHealthy)

	b.stop() // SIGKILL-like: listener and conns die instantly
	for i := uint64(0); i < 50; i++ {
		got, err := rt.Reachable(context.Background(), i, i+3)
		if err != nil {
			t.Fatalf("query %d failed during failover: %v", i, err)
		}
		if got.Reachable != xorAnswer(i, i+3) {
			t.Fatalf("query %d wrong during failover", i)
		}
	}
	waitState(t, rt, baseB, stateDown)

	if restarted := b.start(t); restarted != baseB {
		t.Fatalf("fake restarted on %s, want %s", restarted, baseB)
	}
	waitState(t, rt, baseB, stateHealthy)
	if rt.met.failovers.Load() == 0 {
		t.Fatal("failover counter never moved")
	}
}

// TestPickPowerOfTwoChoices: with exactly two candidates both are always
// sampled, so the pick must deterministically be the less-loaded one.
func TestPickPowerOfTwoChoices(t *testing.T) {
	a := newFakeReplica("f1", xorAnswer)
	b := newFakeReplica("f1", xorAnswer)
	rt := newTestRouter(t, silentCfg(a.start(t), b.start(t)))
	ra, rb := rt.replicas[0], rt.replicas[1]
	ra.inflight.Store(100)
	for i := 0; i < 50; i++ {
		if got := rt.pick(nil); got != rb {
			t.Fatalf("pick chose the loaded replica (inflight 100 vs 0)")
		}
	}
	ra.inflight.Store(0)
	rb.inflight.Store(100)
	for i := 0; i < 50; i++ {
		if got := rt.pick(nil); got != ra {
			t.Fatalf("pick chose the loaded replica after load flipped")
		}
	}
}

// TestRouterAgainstRealServers is the integration seam: three real
// server.Server replicas (same graph, shared immutable oracle), a real
// router, and answers checked against the oracle itself.
func TestRouterAgainstRealServers(t *testing.T) {
	raw := gen.CitationDAG(500, 3, 0.5, 11)
	edges := make([][2]uint32, 0, raw.NumEdges())
	raw.Edges(func(u, v graph.Vertex) bool {
		edges = append(edges, [2]uint32{uint32(u), uint32(v)})
		return true
	})
	g, err := reach.NewGraph(raw.NumVertices(), edges)
	if err != nil {
		t.Fatal(err)
	}
	oracle, err := reach.Build(g, reach.MethodDL, reach.Options{})
	if err != nil {
		t.Fatal(err)
	}
	var bases []string
	for i := 0; i < 3; i++ {
		s := server.New(g, oracle, server.Config{})
		ts := httptest.NewServer(s.Handler())
		t.Cleanup(func() { ts.Close(); s.Close() })
		bases = append(bases, ts.URL)
	}
	cfg := silentCfg(bases...)
	cfg.MinSubBatch = 16
	rt := newTestRouter(t, cfg)

	id := rt.FleetIdentity()
	if id.Fingerprint != server.FingerprintString(g.Fingerprint()) {
		t.Fatalf("fleet fingerprint %q != graph's %q", id.Fingerprint, server.FingerprintString(g.Fingerprint()))
	}
	if id.Method != "DL" || id.Vertices != g.NumVertices() {
		t.Fatalf("fleet identity %+v", id)
	}

	rng := rand.New(rand.NewSource(9))
	n := uint64(g.NumVertices())
	for i := 0; i < 100; i++ {
		u, v := uint64(rng.Intn(int(n))), uint64(rng.Intn(int(n)))
		got, err := rt.Reachable(context.Background(), u, v)
		if err != nil {
			t.Fatal(err)
		}
		if got.Reachable != oracle.Reachable(uint32(u), uint32(v)) {
			t.Fatalf("router disagrees with oracle on (%d,%d)", u, v)
		}
	}
	pairs := make([][2]uint64, 400)
	for i := range pairs {
		pairs[i] = [2]uint64{uint64(rng.Intn(int(n))), uint64(rng.Intn(int(n)))}
	}
	res, err := rt.Batch(context.Background(), pairs)
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range pairs {
		if res[i] != oracle.Reachable(uint32(p[0]), uint32(p[1])) {
			t.Fatalf("batch result %d disagrees with oracle", i)
		}
	}

	// The aggregated stats must add up across the fleet.
	st := rt.Stats(context.Background())
	if st.Fleet.ReplicasHealthy != 3 {
		t.Fatalf("fleet reports %d healthy, want 3", st.Fleet.ReplicasHealthy)
	}
	if st.Fleet.UpstreamQueries < int64(len(pairs)) {
		t.Fatalf("aggregated upstream queries %d < %d pairs served", st.Fleet.UpstreamQueries, len(pairs))
	}
	if st.Graph.Vertices != g.NumVertices() || st.Graph.DAGEdges != g.DAGEdges() {
		t.Fatalf("router graph section %+v does not mirror the replicas'", st.Graph)
	}
	if st.Cache.Hits+st.Cache.Misses == 0 {
		t.Fatal("aggregated cache counters empty after 500 queries")
	}

	// An unknown-vertex 400 passes through with the replica's verdict.
	ts := httptest.NewServer(rt.Handler())
	defer ts.Close()
	resp, err := http.Get(fmt.Sprintf("%s/v1/reachable?u=%d&v=0", ts.URL, n+10))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown vertex through router: status %d, want 400", resp.StatusCode)
	}
	var e server.ErrorResponse
	if json.NewDecoder(resp.Body).Decode(&e) != nil || e.Error == "" {
		t.Fatalf("router 400 lost the replica's error body")
	}
}
