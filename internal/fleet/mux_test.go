package fleet

import (
	"context"
	"math/rand"
	"net"
	"net/http/httptest"
	"slices"
	"testing"

	reach "repro"
	"repro/internal/server"
)

// startMuxReplica is startReplica plus a stream-transport listener: the
// kernel-assigned mux address goes into server.Config before server.New
// so healthz advertises it, mirroring reachd -mux-addr.
func startMuxReplica(t *testing.T, g *reach.Graph, oracle *reach.Oracle) string {
	t.Helper()
	muxLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	s := server.New(g, oracle, server.Config{MuxAddr: muxLn.Addr().String()})
	ms := s.NewMuxServer(func(string, ...any) {})
	go ms.Serve(muxLn)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithCancel(context.Background())
		cancel() // force-close; clients are gone by cleanup time
		ms.Shutdown(ctx)
		s.Close()
	})
	return ts.URL
}

// TestMuxNegotiation: a mux-advertising replica and an HTTP-only one
// behind the same router. The router must open the stream transport to
// the first (and report it in /v1/stats), keep plain HTTP to the second,
// and merge correct answers out of the mixed scatter with batch traffic
// actually flowing over mux frames.
func TestMuxNegotiation(t *testing.T) {
	g, oracle := realOracle(t)
	muxBase := startMuxReplica(t, g, oracle)
	httpBase := startReplica(t, g, oracle, server.Config{})

	cfg := silentCfg(muxBase, httpBase)
	cfg.MinSubBatch = 16
	rt := newTestRouter(t, cfg)

	byBase := replicaStatsByBase(t, rt)
	if got := byBase[muxBase].Transport; got != "mux" {
		t.Fatalf("mux-advertising replica negotiated transport %q, want \"mux\"", got)
	}
	if got := byBase[httpBase].Transport; got != "http" {
		t.Fatalf("HTTP-only replica negotiated transport %q, want \"http\"", got)
	}

	rng := rand.New(rand.NewSource(11))
	n := g.NumVertices()
	for round := 0; round < 8; round++ {
		pairs := make([][2]uint64, 200)
		for i := range pairs {
			pairs[i] = [2]uint64{uint64(rng.Intn(n)), uint64(rng.Intn(n))}
		}
		res, err := rt.Batch(context.Background(), pairs)
		if err != nil {
			t.Fatal(err)
		}
		for i, p := range pairs {
			if res[i] != oracle.Reachable(uint32(p[0]), uint32(p[1])) {
				t.Fatalf("round %d: mixed-transport batch result %d disagrees with oracle", round, i)
			}
		}
	}
	if tx, rx := rt.met.muxTraffic.FramesTx.Load(), rt.met.muxTraffic.FramesRx.Load(); tx == 0 || rx == 0 {
		t.Fatalf("mux frame counters tx=%d rx=%d, want both positive", tx, rx)
	}
	if tx, rx := rt.met.muxTraffic.BytesTx.Load(), rt.met.muxTraffic.BytesRx.Load(); tx == 0 || rx == 0 {
		t.Fatalf("mux byte counters tx=%d rx=%d, want both positive", tx, rx)
	}
	if rt.replicas[0].client.MuxOpenConns()+rt.replicas[1].client.MuxOpenConns() == 0 {
		t.Fatal("no open mux connections after mux-routed batches")
	}
}

// TestMuxDisabled: Config.DisableMux is the ablation switch — a replica
// may advertise the stream transport all it wants, every batch stays on
// HTTP.
func TestMuxDisabled(t *testing.T) {
	g, oracle := realOracle(t)
	base := startMuxReplica(t, g, oracle)
	cfg := silentCfg(base)
	cfg.DisableMux = true
	rt := newTestRouter(t, cfg)

	if got := replicaStatsByBase(t, rt)[base].Transport; got != "http" {
		t.Fatalf("DisableMux router negotiated transport %q, want \"http\"", got)
	}
	if _, err := rt.Batch(context.Background(), [][2]uint64{{1, 2}}); err != nil {
		t.Fatal(err)
	}
	if n := rt.met.muxTraffic.FramesTx.Load(); n != 0 {
		t.Fatalf("DisableMux router sent %d mux frames, want 0", n)
	}
	if rt.met.wire.framesBinary.Load() == 0 {
		t.Fatal("DisableMux must still use binary over HTTP, not fall to JSON")
	}
}

// TestMuxFallbackToHTTP: when every stream-transport connection is
// refused (the advertised listener is gone but the replica's HTTP side
// is alive — say the mux port got firewalled), batches must degrade to
// HTTP per batch without ejecting the replica or surfacing an error.
func TestMuxFallbackToHTTP(t *testing.T) {
	g, oracle := realOracle(t)
	// A listener bound and immediately closed: a dialable-looking
	// advertisement with nothing behind it.
	deadLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	deadAddr := deadLn.Addr().String()
	deadLn.Close()
	base := startReplica(t, g, oracle, server.Config{MuxAddr: deadAddr})

	cfg := silentCfg(base)
	rt := newTestRouter(t, cfg)

	// Negotiation believes the advertisement (the pool dials lazily)...
	if got := replicaStatsByBase(t, rt)[base].Transport; got != "mux" {
		t.Fatalf("negotiated transport %q, want \"mux\" (advertisement taken at face value)", got)
	}
	// ...but batches must still come back right, over HTTP.
	res, err := rt.Batch(context.Background(), [][2]uint64{{1, 2}, {3, 4}})
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range [][2]uint64{{1, 2}, {3, 4}} {
		if res[i] != oracle.Reachable(uint32(p[0]), uint32(p[1])) {
			t.Fatalf("fallback batch result %d disagrees with oracle", i)
		}
	}
	if rt.met.muxTraffic.FramesTx.Load() != 0 {
		t.Fatal("dead mux listener cannot have carried frames")
	}
	if rt.met.wire.framesBinary.Load() == 0 {
		t.Fatal("fallback batch did not go over HTTP binary")
	}
	// The replica must still be enrolled: mux trouble is a transport
	// detail, not a health signal — HTTP liveness decides ejection.
	if got := len(rt.healthy(nil)); got != 1 {
		t.Fatalf("%d healthy replicas after mux fallback, want 1", got)
	}
}

// TestStatsCapabilitiesSorted: /v1/stats must report each replica's
// advertised wire capabilities sorted, whatever order healthz listed
// them in — row content must not depend on replica build quirks.
func TestStatsCapabilitiesSorted(t *testing.T) {
	g, oracle := realOracle(t)
	base := startReplica(t, g, oracle, server.Config{})
	rt := newTestRouter(t, silentCfg(base))

	caps := replicaStatsByBase(t, rt)[base].Capabilities
	if len(caps) == 0 {
		t.Fatal("binary-capable replica reported no capabilities")
	}
	if !slices.IsSorted(caps) {
		t.Fatalf("capabilities %v not sorted", caps)
	}
	if !slices.Contains(caps, "binary") || !slices.Contains(caps, "json") {
		t.Fatalf("capabilities %v missing binary/json", caps)
	}
}

// TestResolveMuxAddr: wildcard advertised hosts (a reachd bound to
// ":7071" advertises what it heard) must be re-hosted onto the replica's
// known-good HTTP hostname; concrete hosts pass through; garbage yields
// "" (no mux rather than a bad dial target).
func TestResolveMuxAddr(t *testing.T) {
	cases := []struct {
		base, adv, want string
	}{
		{"http://10.1.2.3:8080", "10.1.2.3:7071", "10.1.2.3:7071"},
		{"http://10.1.2.3:8080", "0.0.0.0:7071", "10.1.2.3:7071"},
		{"http://10.1.2.3:8080", ":7071", "10.1.2.3:7071"},
		{"http://replica-7.prod:8080", "[::]:7071", "replica-7.prod:7071"},
		{"http://10.1.2.3:8080", "not an addr", ""},
		{"::not a url::", "0.0.0.0:7071", ""},
	}
	for _, c := range cases {
		if got := resolveMuxAddr(c.base, c.adv); got != c.want {
			t.Errorf("resolveMuxAddr(%q, %q) = %q, want %q", c.base, c.adv, got, c.want)
		}
	}
}
