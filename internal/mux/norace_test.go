//go:build !race

package mux

const raceEnabled = false
