package mux

import (
	"context"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/wireproto"
)

// ClientConfig configures dialed connections (and the Pool that owns
// them).
type ClientConfig struct {
	// Fingerprint is the snapshot fingerprint this client expects the
	// replica to serve, learned at HTTP enrollment. Empty skips the
	// check.
	Fingerprint string

	// Window is the number of concurrent streams per connection.
	// Defaults to DefaultWindow.
	Window int

	// MaxBatchPairs bounds batches this client sends (and therefore
	// the responses it accepts). Defaults to DefaultMaxBatchPairs.
	MaxBatchPairs int

	// Counters receives traffic counts; nil uses a private set.
	Counters *Counters

	// DialTimeout bounds the TCP dial (the handshake has its own
	// timeout on top). Defaults to handshakeTimeout.
	DialTimeout time.Duration
}

func (cfg *ClientConfig) defaults() {
	if cfg.Window <= 0 {
		cfg.Window = DefaultWindow
	}
	if cfg.MaxBatchPairs <= 0 {
		cfg.MaxBatchPairs = DefaultMaxBatchPairs
	}
	if cfg.Counters == nil {
		cfg.Counters = &Counters{}
	}
	if cfg.DialTimeout <= 0 {
		cfg.DialTimeout = handshakeTimeout
	}
}

// slot is one stream's state. The stream ID is the slot index, so
// dispatching a response is an array index — no map, no allocation.
// state moves free → waiting → (done | abandoned): abandoned marks a
// slot whose Batch caller gave up (ctx cancelled) while the response
// was still in flight; the reader reclaims it when the response (for
// the abandoned request) finally lands, so a late frame can never be
// mistaken for the answer to a newer batch.
type slot struct {
	state atomic.Int32
	done  chan struct{} // cap 1, signaled by the reader exactly once per waiting round
	err   error         // valid after done; nil = resp holds a frame
	req   []byte
	resp  []byte
	respN int
}

const (
	slotFree int32 = iota
	slotWaiting
	slotDone
	slotAbandoned
)

// Conn is one multiplexed client connection. Batch is safe for
// concurrent use; up to Window batches are in flight at once and
// excess callers queue on the free-slot channel.
type Conn struct {
	c        net.Conn
	caps     uint32 // negotiated: ours AND the server's
	serverFP string
	window   int
	maxFrame int
	counters *Counters

	wmu   sync.Mutex // serializes writes; each request is one contiguous Write
	slots []slot
	free  chan uint32

	dead       atomic.Bool
	failMu     sync.Mutex
	failed     bool
	firstErr   error
	readerDone chan struct{}
}

// Dial connects, handshakes (sending cfg.Fingerprint as the expected
// snapshot identity) and starts the reader. A server refusing the
// fingerprint yields an error wrapping ErrFingerprint.
func Dial(ctx context.Context, addr string, cfg ClientConfig) (*Conn, error) {
	cfg.defaults()
	d := net.Dialer{Timeout: cfg.DialTimeout}
	nc, err := d.DialContext(ctx, "tcp", addr)
	if err != nil {
		return nil, err
	}
	nc.SetDeadline(time.Now().Add(handshakeTimeout))
	hs := make([]byte, wireproto.EnvelopeSize+wireproto.HandshakeSize(len(cfg.Fingerprint)))
	n := wireproto.EncodeHandshake(hs[wireproto.EnvelopeSize:], wireproto.CapTrace, cfg.Fingerprint)
	wireproto.PutEnvelope(hs, 0, 0, uint32(n))
	if _, err := nc.Write(hs[:wireproto.EnvelopeSize+n]); err != nil {
		nc.Close()
		return nil, err
	}
	maxReply := maxEnvelopedResponse(cfg.MaxBatchPairs)
	var hdr [wireproto.EnvelopeSize]byte
	if _, err := io.ReadFull(nc, hdr[:]); err != nil {
		nc.Close()
		return nil, err
	}
	_, flags, frameLen, err := wireproto.ParseEnvelope(hdr[:], maxReply)
	if err != nil || flags != 0 {
		nc.Close()
		if err == nil {
			err = errProtocol
		}
		return nil, err
	}
	frame := make([]byte, frameLen)
	if _, err := io.ReadFull(nc, frame); err != nil {
		nc.Close()
		return nil, err
	}
	if wireproto.IsError(frame) {
		status, msg, derr := wireproto.DecodeError(frame)
		nc.Close()
		if derr != nil {
			return nil, derr
		}
		if status == 409 {
			return nil, fmt.Errorf("%w: %s", ErrFingerprint, msg)
		}
		return nil, &Fail{Status: status, Msg: msg}
	}
	caps, serverFP, err := wireproto.DecodeHandshake(frame)
	if err != nil {
		nc.Close()
		return nil, err
	}
	if cfg.Fingerprint != "" && serverFP != "" && serverFP != cfg.Fingerprint {
		nc.Close()
		return nil, fmt.Errorf("%w: replica serves %s", ErrFingerprint, serverFP)
	}
	nc.SetDeadline(time.Time{})

	cn := &Conn{
		c:          nc,
		caps:       caps & wireproto.CapTrace,
		serverFP:   serverFP,
		window:     cfg.Window,
		maxFrame:   maxReply,
		counters:   cfg.Counters,
		slots:      make([]slot, cfg.Window),
		free:       make(chan uint32, cfg.Window),
		readerDone: make(chan struct{}),
	}
	for i := range cn.slots {
		cn.slots[i].done = make(chan struct{}, 1)
		cn.free <- uint32(i)
	}
	go cn.reader()
	return cn, nil
}

// Dead reports whether the connection has failed; a dead Conn fails
// every Batch immediately and the pool redials past it.
func (cn *Conn) Dead() bool { return cn.dead.Load() }

// ServerFingerprint returns the fingerprint the server reported in its
// handshake.
func (cn *Conn) ServerFingerprint() string { return cn.serverFP }

// Close tears the connection down; in-flight batches fail with
// ErrClosed.
func (cn *Conn) Close() error {
	cn.fail(ErrClosed)
	<-cn.readerDone
	return nil
}

// fail marks the connection dead exactly once, recording the first
// error and closing the socket (which unblocks the reader).
func (cn *Conn) fail(err error) {
	cn.failMu.Lock()
	if !cn.failed {
		cn.failed = true
		cn.firstErr = err
		cn.dead.Store(true)
		cn.c.Close()
	}
	cn.failMu.Unlock()
}

func (cn *Conn) failErr() error {
	cn.failMu.Lock()
	defer cn.failMu.Unlock()
	if cn.firstErr == nil {
		return ErrClosed
	}
	return cn.firstErr
}

// Batch sends pairs and fills out with the replica's answers;
// len(out) must equal len(pairs). trace rides along when nonempty and
// the connection negotiated CapTrace. The steady state allocates
// nothing: the request is encoded into the slot's reusable buffer, the
// response decoded straight into out.
func (cn *Conn) Batch(ctx context.Context, pairs [][2]uint32, out []bool, trace string) error {
	if len(out) != len(pairs) {
		return wireproto.ErrBuffer
	}
	if cn.dead.Load() {
		return cn.failErr()
	}
	var id uint32
	select {
	case id = <-cn.free:
	case <-ctx.Done():
		return ctx.Err()
	case <-cn.readerDone:
		return cn.failErr()
	}
	sl := &cn.slots[id]

	useTrace := trace != "" && cn.caps&wireproto.CapTrace != 0 && len(trace) <= wireproto.MaxTraceBytes
	pre := wireproto.EnvelopeSize
	if useTrace {
		pre += wireproto.TraceSize(len(trace))
	}
	size := pre + wireproto.RequestSize(len(pairs))
	if cap(sl.req) < size {
		sl.req = make([]byte, size)
	}
	sl.req = sl.req[:size]
	buildRequest(sl.req, id, pairs, trace, useTrace)

	sl.state.Store(slotWaiting)
	if cn.dead.Load() {
		// The reader may have exited before it could see this slot;
		// reclaim it ourselves unless failAll got there first.
		if sl.state.CompareAndSwap(slotWaiting, slotFree) {
			return cn.failErr()
		}
	} else {
		cn.wmu.Lock()
		_, werr := cn.c.Write(sl.req)
		cn.wmu.Unlock()
		if werr != nil {
			cn.fail(werr)
			// The slot is waiting; the reader's failAll signals it.
		} else {
			cn.counters.FramesTx.Add(1)
			cn.counters.BytesTx.Add(int64(size))
		}
	}

	select {
	case <-sl.done:
	case <-ctx.Done():
		if sl.state.CompareAndSwap(slotWaiting, slotAbandoned) {
			return ctx.Err() // the reader reclaims the slot when the late response lands
		}
		<-sl.done // lost the race: a signal is already in flight
		cn.release(id, sl)
		return ctx.Err()
	}
	if sl.err != nil {
		err := sl.err
		cn.release(id, sl)
		return err
	}
	resp := sl.resp[:sl.respN]
	if wireproto.IsError(resp) {
		status, msg, derr := wireproto.DecodeError(resp)
		cn.release(id, sl)
		if derr != nil {
			cn.fail(derr)
			return derr
		}
		return &Fail{Status: status, Msg: msg}
	}
	m, err := wireproto.ResponseCount(resp)
	if err == nil && m != len(pairs) {
		err = errProtocol
	}
	if err != nil {
		cn.release(id, sl)
		cn.fail(err)
		return err
	}
	wireproto.DecodeResponse(resp, out)
	cn.release(id, sl)
	return nil
}

// buildRequest stages one request into buf: envelope, optional trace
// field, frame. buf is pre-sized by the caller.
//
//reach:hotpath
func buildRequest(buf []byte, stream uint32, pairs [][2]uint32, trace string, useTrace bool) {
	off := wireproto.EnvelopeSize
	var flags uint32
	if useTrace {
		flags = wireproto.EnvFlagTrace
		off += wireproto.PutTrace(buf[wireproto.EnvelopeSize:], trace)
	}
	n := wireproto.EncodeRequest(buf[off:], pairs)
	wireproto.PutEnvelope(buf, stream, flags, uint32(n))
}

// release returns a slot to the free list.
func (cn *Conn) release(id uint32, sl *slot) {
	sl.state.Store(slotFree)
	cn.free <- id
}

// reader dispatches response frames to their slots by stream ID until
// the connection dies, then fails every waiting slot.
func (cn *Conn) reader() {
	var err error
	var hdr [wireproto.EnvelopeSize]byte
	for {
		if _, e := io.ReadFull(cn.c, hdr[:]); e != nil {
			err = e
			break
		}
		stream, flags, frameLen, e := wireproto.ParseEnvelope(hdr[:], cn.maxFrame)
		if e != nil {
			err = e
			break
		}
		if flags != 0 || int(stream) >= len(cn.slots) {
			err = errProtocol
			break
		}
		sl := &cn.slots[stream]
		if cap(sl.resp) < int(frameLen) {
			sl.resp = make([]byte, frameLen)
		}
		sl.resp = sl.resp[:frameLen]
		if _, e := io.ReadFull(cn.c, sl.resp); e != nil {
			err = e
			break
		}
		cn.counters.FramesRx.Add(1)
		cn.counters.BytesRx.Add(int64(wireproto.EnvelopeSize + int(frameLen)))
		sl.respN = int(frameLen)
		if sl.state.CompareAndSwap(slotWaiting, slotDone) {
			sl.err = nil
			sl.done <- struct{}{}
		} else if sl.state.CompareAndSwap(slotAbandoned, slotFree) {
			cn.free <- stream // late response for an abandoned batch: slot is safe to reuse now
		} else {
			err = errProtocol // response for a stream nobody is waiting on
			break
		}
	}
	cn.fail(err)
	ferr := cn.failErr()
	for i := range cn.slots {
		sl := &cn.slots[i]
		if sl.state.CompareAndSwap(slotWaiting, slotDone) {
			sl.err = ferr
			sl.done <- struct{}{}
		}
	}
	close(cn.readerDone)
}
