//go:build race

package mux

// raceEnabled lets allocation pins skip under -race: the race runtime
// allocates on channel and goroutine handoffs, so AllocsPerRun over a
// cross-goroutine round trip measures the detector, not the code.
const raceEnabled = true
