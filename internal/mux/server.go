package mux

import (
	"bufio"
	"context"
	"errors"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/wireproto"
)

// BatchFunc answers one batch: fill out[i] with the answer for
// pairs[i]. trace is the propagated trace ID ("" when the client sent
// none). pairs and out are scratch owned by the transport — valid only
// until the call returns. Returning *Fail sends that status in-band;
// any other error becomes a 500 (or 503 when ctx is done).
type BatchFunc func(ctx context.Context, trace string, pairs [][2]uint32, out []bool) error

// ServerConfig configures a mux Server. Batch is required.
type ServerConfig struct {
	Batch BatchFunc

	// Fingerprint is the snapshot fingerprint this server serves; a
	// client handshake naming a different one is refused with an
	// in-band 409. Empty disables the check (tests).
	Fingerprint string

	// MaxBatchPairs bounds one request frame, mirroring the HTTP
	// path's batch limit. Defaults to DefaultMaxBatchPairs.
	MaxBatchPairs int

	// Window bounds in-flight batches per connection; a client that
	// pipelines past it is throttled by TCP backpressure, not errors.
	// Defaults to DefaultWindow.
	Window int

	// IdleTimeout closes connections with no traffic and nothing in
	// flight; clients redial transparently. 0 means
	// DefaultIdleTimeout; negative disables.
	IdleTimeout time.Duration

	// Logf, when set, receives connection-level events (handshake
	// refusals, protocol errors). Per-batch errors travel in-band.
	Logf func(format string, args ...any)
}

// Server accepts mux connections and answers batch frames over them.
// Zero or one Serve loop per listener; Shutdown drains gracefully.
type Server struct {
	cfg      ServerConfig
	maxFrame int
	traffic  Counters

	mu       sync.Mutex
	ln       net.Listener
	conns    map[*serverConn]struct{}
	draining bool
	connWG   sync.WaitGroup
	open     int
}

// NewServer validates cfg, applies defaults and returns a Server ready
// to Serve.
func NewServer(cfg ServerConfig) *Server {
	if cfg.Batch == nil {
		panic("mux: ServerConfig.Batch is required")
	}
	if cfg.MaxBatchPairs <= 0 {
		cfg.MaxBatchPairs = DefaultMaxBatchPairs
	}
	if cfg.Window <= 0 {
		cfg.Window = DefaultWindow
	}
	if cfg.IdleTimeout == 0 {
		cfg.IdleTimeout = DefaultIdleTimeout
	}
	return &Server{
		cfg:      cfg,
		maxFrame: wireproto.RequestSize(cfg.MaxBatchPairs),
		conns:    make(map[*serverConn]struct{}),
	}
}

// OpenConns returns the number of live connections (the
// reach_mux_conns gauge).
func (s *Server) OpenConns() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.open
}

// Traffic exposes the server's transport counters for metrics.
func (s *Server) Traffic() *Counters { return &s.traffic }

// Serve accepts connections on ln until it is closed or Shutdown is
// called; it returns nil on graceful shutdown.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		ln.Close()
		return ErrClosed
	}
	s.ln = ln
	s.mu.Unlock()
	for {
		c, err := ln.Accept()
		if err != nil {
			s.mu.Lock()
			draining := s.draining
			s.mu.Unlock()
			if draining {
				return nil
			}
			return err
		}
		sc := s.newConn(c)
		s.mu.Lock()
		if s.draining {
			s.mu.Unlock()
			c.Close()
			return nil
		}
		s.conns[sc] = struct{}{}
		s.open++
		s.connWG.Add(1)
		s.mu.Unlock()
		go sc.run()
	}
}

// Shutdown drains gracefully: stop accepting, let every in-flight
// batch finish and flush, then close. Connections still open when ctx
// expires are force-closed.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	s.draining = true
	ln := s.ln
	conns := make([]*serverConn, 0, len(s.conns))
	for sc := range s.conns {
		conns = append(conns, sc)
	}
	s.mu.Unlock()
	if ln != nil {
		ln.Close()
	}
	kick := time.Unix(1, 0) // long past: unblocks readers immediately
	for _, sc := range conns {
		sc.drainkick.Store(true)
		sc.c.SetReadDeadline(kick)
	}
	done := make(chan struct{})
	go func() {
		s.connWG.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		s.mu.Lock()
		for sc := range s.conns {
			sc.cancel()
			sc.c.Close()
		}
		s.mu.Unlock()
		<-done
		return ctx.Err()
	}
}

func (s *Server) logf(format string, args ...any) {
	if s.cfg.Logf != nil {
		s.cfg.Logf(format, args...)
	}
}

// srvScratch is everything one in-flight batch needs, pooled so the
// steady state allocates nothing: buf holds envelope+frame in both
// directions (a response frame never outgrows the request frame it
// reuses), pairs/out are the decoded batch, trace the raw trace bytes.
type srvScratch struct {
	stream   uint32
	n        int // response bytes staged in buf
	buf      []byte
	pairs    [][2]uint32
	out      []bool
	trace    []byte
	traceStr string
}

var srvScratchPool = sync.Pool{New: func() any { return new(srvScratch) }}

// serverConn is one accepted connection: a reader goroutine frames
// requests into a bounded window, workers answer them, one writer
// coalesces responses back out.
type serverConn struct {
	srv    *Server
	c      net.Conn
	ctx    context.Context
	cancel context.CancelFunc

	work      chan *srvScratch
	writeq    chan *srvScratch
	window    chan struct{}
	inflight  atomic.Int64
	drainkick atomic.Bool
	caps      uint32
}

func (s *Server) newConn(c net.Conn) *serverConn {
	ctx, cancel := context.WithCancel(context.Background())
	w := s.cfg.Window
	return &serverConn{
		srv:    s,
		c:      c,
		ctx:    ctx,
		cancel: cancel,
		work:   make(chan *srvScratch, w),
		writeq: make(chan *srvScratch, w),
		window: make(chan struct{}, w),
	}
}

func (sc *serverConn) run() {
	defer func() {
		sc.cancel()
		sc.c.Close()
		sc.srv.removeConn(sc)
	}()
	if err := sc.handshake(); err != nil {
		sc.srv.logf("mux: handshake from %s: %v", sc.c.RemoteAddr(), err)
		return
	}
	var writerWG, workerWG sync.WaitGroup
	writerWG.Add(1)
	go func() {
		defer writerWG.Done()
		sc.writer()
	}()
	workers := min(4, sc.srv.cfg.Window)
	for range workers {
		workerWG.Add(1)
		go func() {
			defer workerWG.Done()
			for w := range sc.work {
				sc.handle(w)
				sc.writeq <- w
			}
		}()
	}
	err := sc.reader()
	// The reader is done, so no new work arrives: let in-flight
	// batches finish, flush their responses, then close. This IS the
	// graceful drain — the same sequence serves EOF, error and
	// shutdown exits.
	close(sc.work)
	workerWG.Wait()
	close(sc.writeq)
	writerWG.Wait()
	if err != nil {
		sc.srv.logf("mux: conn %s: %v", sc.c.RemoteAddr(), err)
	}
}

func (s *Server) removeConn(sc *serverConn) {
	s.mu.Lock()
	delete(s.conns, sc)
	s.open--
	s.mu.Unlock()
	s.connWG.Done()
}

// handshake runs the one blocking exchange on a fresh connection:
// read the client's handshake frame, enforce the snapshot fingerprint
// (refusal is an in-band 409 error frame, so the client can tell
// identity mismatch from transport failure), and reply with this
// server's capabilities and fingerprint.
func (sc *serverConn) handshake() error {
	c := sc.c
	c.SetDeadline(time.Now().Add(handshakeTimeout))
	defer c.SetDeadline(time.Time{})

	maxHS := wireproto.HandshakeSize(wireproto.MaxFingerprint)
	buf := make([]byte, wireproto.EnvelopeSize+maxHS)
	if _, err := io.ReadFull(c, buf[:wireproto.EnvelopeSize]); err != nil {
		return err
	}
	stream, flags, frameLen, err := wireproto.ParseEnvelope(buf[:wireproto.EnvelopeSize], maxHS)
	if err != nil {
		return err
	}
	if flags != 0 {
		return errProtocol
	}
	frame := buf[:frameLen]
	if _, err := io.ReadFull(c, frame); err != nil {
		return err
	}
	caps, fp, err := wireproto.DecodeHandshake(frame)
	if err != nil {
		return err
	}
	want := sc.srv.cfg.Fingerprint
	if want != "" && fp != "" && fp != want {
		// Refuse in-band on the client's handshake stream, then close.
		out := make([]byte, wireproto.EnvelopeSize+wireproto.ErrorSize(len("snapshot fingerprint mismatch")))
		n := wireproto.EncodeError(out[wireproto.EnvelopeSize:], 409, "snapshot fingerprint mismatch")
		wireproto.PutEnvelope(out, stream, 0, uint32(n))
		c.Write(out[:wireproto.EnvelopeSize+n])
		return ErrFingerprint
	}
	sc.caps = caps & wireproto.CapTrace
	out := make([]byte, wireproto.EnvelopeSize+wireproto.HandshakeSize(len(want)))
	n := wireproto.EncodeHandshake(out[wireproto.EnvelopeSize:], wireproto.CapTrace, want)
	wireproto.PutEnvelope(out, stream, 0, uint32(n))
	_, err = c.Write(out[:wireproto.EnvelopeSize+n])
	return err
}

// reader frames requests off the connection into the work queue. A nil
// return is a clean exit (EOF, idle close, drain); anything else is a
// protocol or transport error worth logging.
func (sc *serverConn) reader() error {
	var hdr [wireproto.EnvelopeSize + 4]byte
	idle := sc.srv.cfg.IdleTimeout
	for {
		if sc.drainkick.Load() {
			return nil
		}
		if idle > 0 {
			sc.c.SetReadDeadline(time.Now().Add(idle))
		}
		if sc.drainkick.Load() { // drain raced the deadline write above
			return nil
		}
		nr, err := io.ReadFull(sc.c, hdr[:wireproto.EnvelopeSize])
		if err != nil {
			if errors.Is(err, io.EOF) {
				return nil
			}
			var ne net.Error
			if errors.As(err, &ne) && ne.Timeout() &&
				(sc.drainkick.Load() || (nr == 0 && sc.inflight.Load() == 0)) {
				return nil // drain kick, or idle with nothing in flight
			}
			return err
		}
		stream, flags, frameLen, err := wireproto.ParseEnvelope(hdr[:wireproto.EnvelopeSize], sc.srv.maxFrame)
		if err != nil {
			return err
		}
		traceLen := 0
		if flags&wireproto.EnvFlagTrace != 0 {
			if _, err := io.ReadFull(sc.c, hdr[wireproto.EnvelopeSize:]); err != nil {
				return err
			}
			if traceLen, err = wireproto.ParseTraceLen(hdr[wireproto.EnvelopeSize:]); err != nil {
				return err
			}
		}
		w := srvScratchPool.Get().(*srvScratch)
		w.stream = stream
		if cap(w.buf) < wireproto.EnvelopeSize+int(frameLen) {
			w.buf = make([]byte, wireproto.EnvelopeSize+int(frameLen))
		}
		w.buf = w.buf[:wireproto.EnvelopeSize+int(frameLen)]
		w.traceStr = ""
		if traceLen > 0 {
			if cap(w.trace) < traceLen {
				w.trace = make([]byte, traceLen)
			}
			if _, err := io.ReadFull(sc.c, w.trace[:traceLen]); err != nil {
				srvScratchPool.Put(w)
				return err
			}
			w.traceStr = string(w.trace[:traceLen])
		}
		if _, err := io.ReadFull(sc.c, w.buf[wireproto.EnvelopeSize:]); err != nil {
			srvScratchPool.Put(w)
			return err
		}
		sc.srv.traffic.FramesRx.Add(1)
		sc.srv.traffic.BytesRx.Add(int64(wireproto.EnvelopeSize + traceLen + int(frameLen)))
		// The window bounds in-flight batches: when it is full the
		// reader stops here and TCP backpressure throttles the peer.
		select {
		case sc.window <- struct{}{}:
		case <-sc.ctx.Done():
			srvScratchPool.Put(w)
			return ErrClosed
		}
		sc.inflight.Add(1)
		sc.work <- w
	}
}

// handle answers one request frame in place: the response (or error
// frame) is staged back into w.buf behind a fresh envelope.
func (sc *serverConn) handle(w *srvScratch) {
	frame := w.buf[wireproto.EnvelopeSize:]
	n, err := wireproto.RequestCount(frame)
	if err != nil {
		sc.fail(w, 400, "malformed batch frame")
		return
	}
	if cap(w.pairs) < n {
		w.pairs = make([][2]uint32, n)
	}
	w.pairs = w.pairs[:n]
	if cap(w.out) < n {
		w.out = make([]bool, n)
	}
	w.out = w.out[:n]
	wireproto.DecodeRequest(frame, w.pairs)
	if err := sc.srv.cfg.Batch(sc.ctx, w.traceStr, w.pairs, w.out); err != nil {
		var f *Fail
		switch {
		case errors.As(err, &f):
			sc.fail(w, f.Status, f.Msg)
		case sc.ctx.Err() != nil || errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled):
			sc.fail(w, 503, "batch timed out or server draining")
		default:
			sc.fail(w, 500, err.Error())
		}
		return
	}
	m := wireproto.EncodeResponse(frame, w.out)
	wireproto.PutEnvelope(w.buf, w.stream, 0, uint32(m))
	w.n = wireproto.EnvelopeSize + m
}

// fail stages an in-band error frame as the stream's response.
func (sc *serverConn) fail(w *srvScratch, status int, msg string) {
	need := wireproto.EnvelopeSize + wireproto.ErrorSize(len(msg))
	if cap(w.buf) < need {
		buf := make([]byte, need)
		w.buf = buf
	}
	w.buf = w.buf[:need]
	n := wireproto.EncodeError(w.buf[wireproto.EnvelopeSize:], status, msg)
	wireproto.PutEnvelope(w.buf, w.stream, 0, uint32(n))
	w.n = wireproto.EnvelopeSize + n
}

// writer is the only goroutine touching the connection's write side:
// it streams staged responses out through one buffered writer,
// flushing when the queue runs dry — batched syscalls under pipelined
// load, prompt delivery when idle.
func (sc *serverConn) writer() {
	bw := bufio.NewWriterSize(sc.c, 32<<10)
	broken := false
	for w := range sc.writeq {
		if !broken {
			if _, err := bw.Write(w.buf[:w.n]); err != nil {
				broken = true
				sc.cancel()
				sc.c.Close()
			}
		}
		sc.srv.traffic.FramesTx.Add(1)
		sc.srv.traffic.BytesTx.Add(int64(w.n))
		sc.inflight.Add(-1)
		<-sc.window
		srvScratchPool.Put(w)
		if !broken && len(sc.writeq) == 0 {
			if err := bw.Flush(); err != nil {
				broken = true
				sc.cancel()
				sc.c.Close()
			}
		}
	}
	if !broken {
		bw.Flush()
	}
}
