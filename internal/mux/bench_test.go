package mux

import (
	"context"
	"fmt"
	"net"
	"testing"
)

// BenchmarkMuxBatch measures one client round trip over a real
// loopback TCP connection — envelope+frame encode, write, server
// decode/answer/encode, read, decode — with a trivial batch function
// so the number is the transport, not the oracle. This is the raw-TCP
// counterpart of the HTTP hop inside BenchmarkRouterBatch; the CI perf
// gate pins it.
func BenchmarkMuxBatch(b *testing.B) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	s := NewServer(ServerConfig{Batch: echoBenchBatch})
	go s.Serve(ln)
	defer func() {
		ctx, cancel := context.WithCancel(context.Background())
		cancel() // force-close: nothing in flight when the bench ends
		s.Shutdown(ctx)
	}()
	cn, err := Dial(context.Background(), ln.Addr().String(), ClientConfig{})
	if err != nil {
		b.Fatal(err)
	}
	defer cn.Close()

	for _, n := range []int{64, 512} {
		b.Run(fmt.Sprintf("pairs=%d", n), func(b *testing.B) {
			pairs, _ := benchPairs(n)
			out := make([]bool, n)
			ctx := context.Background()
			for range 20 { // warm slot buffers and server scratch
				if err := cn.Batch(ctx, pairs, out, ""); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := cn.Batch(ctx, pairs, out, ""); err != nil {
					b.Fatal(err)
				}
			}
			b.SetBytes(int64(n * 8))
		})
	}
}

func echoBenchBatch(_ context.Context, _ string, pairs [][2]uint32, out []bool) error {
	for i, p := range pairs {
		out[i] = p[0] <= p[1]
	}
	return nil
}

func benchPairs(n int) ([][2]uint32, []bool) {
	pairs := make([][2]uint32, n)
	want := make([]bool, n)
	s := uint32(12345)
	for i := range pairs {
		s = s*1664525 + 1013904223
		u := s % (1 << 20)
		s = s*1664525 + 1013904223
		v := s % (1 << 20)
		pairs[i] = [2]uint32{u, v}
		want[i] = u <= v
	}
	return pairs, want
}
