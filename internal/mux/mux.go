// Package mux is the persistent multiplexed raw-TCP transport for
// router↔replica batch traffic: wireproto frames prefixed with a small
// stream envelope travel over a few long-lived connections per replica,
// so the fleet router pipelines many in-flight batches without paying
// HTTP/1.1 header parsing or per-request connection bookkeeping on
// every call. PR 9 made the framing free; this makes the transport
// around it (nearly) free too.
//
// The first frame in each direction is a handshake carrying a
// capability mask and the snapshot fingerprint, so the enrollment-grade
// identity check the router performs over HTTP survives raw-TCP
// reconnects: a replica restarted onto a different snapshot refuses the
// connection with an in-band 409 error frame and the client falls back
// to HTTP (where the probe loop will notice the fingerprint change).
//
// The transport is strictly an optimization: every failure — dial
// refused, handshake mismatch, connection death mid-batch — degrades to
// the negotiated HTTP path, never to a wrong answer. Steady-state send
// and receive allocate nothing on either side (AllocsPerRun-pinned).
package mux

import (
	"errors"
	"fmt"
	"sync/atomic"
	"time"

	"repro/internal/wireproto"
)

// Defaults. Window bounds in-flight batches per connection (the
// dispatch tables are sized by it); ConnsPerReplica is how many
// connections a client pool keeps toward one replica.
const (
	DefaultWindow          = 32
	DefaultConnsPerReplica = 2
	DefaultIdleTimeout     = 2 * time.Minute
	DefaultMaxBatchPairs   = 1 << 20

	// handshakeTimeout bounds the one blocking exchange a connection
	// performs; everything after it is pipelined.
	handshakeTimeout = 5 * time.Second
)

// Client/server errors.
var (
	// ErrClosed: the connection or pool has been closed (or died).
	ErrClosed = errors.New("mux: connection closed")
	// ErrNoConn: the pool has no live connection and will not dial now
	// (backoff, or another goroutine is already dialing). Callers fall
	// back to HTTP for this batch.
	ErrNoConn = errors.New("mux: no connection available")
	// ErrFingerprint: the peer serves a different snapshot than this
	// side expects — the raw-TCP analogue of refusing enrollment.
	ErrFingerprint = errors.New("mux: snapshot fingerprint mismatch")
	// errProtocol: the peer violated the stream framing rules; the
	// connection is unusable and is torn down.
	errProtocol = errors.New("mux: stream protocol violation")
)

// Fail is an in-band error frame surfaced as a Go error: the
// HTTP-shaped status and message a replica sent instead of a response
// frame. It mirrors the semantics of an HTTP error on the fallback
// path, so the fleet client maps both to the same handling (429 fails
// over, 5xx retries elsewhere, and so on).
type Fail struct {
	Status int
	Msg    string
}

func (f *Fail) Error() string {
	return fmt.Sprintf("mux: upstream status %d: %s", f.Status, f.Msg)
}

// Counters aggregates transport traffic across connections sharing
// them (a server, or every pool one fleet client owns). Updated with
// relaxed atomics on the hot path, read by metrics exposition.
type Counters struct {
	FramesTx atomic.Int64
	FramesRx atomic.Int64
	BytesTx  atomic.Int64
	BytesRx  atomic.Int64
}

// maxEnvelopedResponse is the largest frame a client accepts in an
// envelope: the response to its largest allowed request, or the
// largest error/handshake frame a server may send.
func maxEnvelopedResponse(maxPairs int) int {
	m := wireproto.ResponseSize(maxPairs)
	if e := wireproto.ErrorSize(wireproto.MaxErrorMsg); e > m {
		m = e
	}
	if h := wireproto.HandshakeSize(wireproto.MaxFingerprint); h > m {
		m = h
	}
	return m
}
