package mux

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// echoBatch answers u<=v — trivially checkable from the pairs alone.
func echoBatch(_ context.Context, _ string, pairs [][2]uint32, out []bool) error {
	for i, p := range pairs {
		out[i] = p[0] <= p[1]
	}
	return nil
}

// startServer brings up a mux server on a loopback listener and
// returns its address plus a shutdown func.
func startServer(t *testing.T, cfg ServerConfig) (*Server, string) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	s := NewServer(cfg)
	go s.Serve(ln)
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		s.Shutdown(ctx)
	})
	return s, ln.Addr().String()
}

func testPairs(n, seed int) ([][2]uint32, []bool) {
	pairs := make([][2]uint32, n)
	want := make([]bool, n)
	s := uint32(seed)*2654435761 + 1
	for i := range pairs {
		s = s*1664525 + 1013904223
		u := s % 100000
		s = s*1664525 + 1013904223
		v := s % 100000
		pairs[i] = [2]uint32{u, v}
		want[i] = u <= v
	}
	return pairs, want
}

func TestMuxRoundTrip(t *testing.T) {
	srv, addr := startServer(t, ServerConfig{Batch: echoBatch, Fingerprint: "00000000deadbeef"})
	cn, err := Dial(context.Background(), addr, ClientConfig{Fingerprint: "00000000deadbeef"})
	if err != nil {
		t.Fatal(err)
	}
	defer cn.Close()
	if got := cn.ServerFingerprint(); got != "00000000deadbeef" {
		t.Fatalf("server fingerprint = %q", got)
	}
	for _, n := range []int{1, 3, 64, 65, 512} {
		pairs, want := testPairs(n, n)
		out := make([]bool, n)
		if err := cn.Batch(context.Background(), pairs, out, ""); err != nil {
			t.Fatalf("Batch(%d): %v", n, err)
		}
		for i := range out {
			if out[i] != want[i] {
				t.Fatalf("Batch(%d): out[%d] = %v, want %v", n, i, out[i], want[i])
			}
		}
	}
	if got := srv.OpenConns(); got != 1 {
		t.Fatalf("OpenConns = %d, want 1", got)
	}
	tr := srv.Traffic()
	if tr.FramesRx.Load() == 0 || tr.FramesTx.Load() == 0 || tr.BytesRx.Load() == 0 || tr.BytesTx.Load() == 0 {
		t.Fatalf("server traffic counters not all advancing: %+v", tr)
	}
}

// TestMuxPipelining hammers one connection from many goroutines: every
// batch must come back positionally correct even though responses
// interleave across streams.
func TestMuxPipelining(t *testing.T) {
	_, addr := startServer(t, ServerConfig{Batch: echoBatch, Window: 8})
	cn, err := Dial(context.Background(), addr, ClientConfig{Window: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer cn.Close()
	var wg sync.WaitGroup
	errc := make(chan error, 32)
	for g := range 32 { // 4x the window: excess callers queue on the free list
		wg.Add(1)
		go func() {
			defer wg.Done()
			for round := range 50 {
				n := 1 + (g*50+round)%200
				pairs, want := testPairs(n, g*1000+round)
				out := make([]bool, n)
				if err := cn.Batch(context.Background(), pairs, out, ""); err != nil {
					errc <- err
					return
				}
				for i := range out {
					if out[i] != want[i] {
						errc <- fmt.Errorf("goroutine %d round %d: out[%d] = %v, want %v", g, round, i, out[i], want[i])
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	close(errc)
	if err := <-errc; err != nil {
		t.Fatal(err)
	}
}

func TestMuxTracePropagation(t *testing.T) {
	var seen atomic.Value
	batch := func(_ context.Context, trace string, pairs [][2]uint32, out []bool) error {
		seen.Store(trace)
		return echoBatch(context.Background(), trace, pairs, out)
	}
	_, addr := startServer(t, ServerConfig{Batch: batch})
	cn, err := Dial(context.Background(), addr, ClientConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer cn.Close()
	pairs, _ := testPairs(4, 1)
	out := make([]bool, 4)
	if err := cn.Batch(context.Background(), pairs, out, "trace-abc-123"); err != nil {
		t.Fatal(err)
	}
	if got, _ := seen.Load().(string); got != "trace-abc-123" {
		t.Fatalf("server saw trace %q, want %q", got, "trace-abc-123")
	}
	// And the traceless steady state stays traceless.
	if err := cn.Batch(context.Background(), pairs, out, ""); err != nil {
		t.Fatal(err)
	}
	if got, _ := seen.Load().(string); got != "" {
		t.Fatalf("server saw trace %q for a traceless batch", got)
	}
}

func TestMuxFingerprintMismatch(t *testing.T) {
	_, addr := startServer(t, ServerConfig{Batch: echoBatch, Fingerprint: "00000000deadbeef"})
	_, err := Dial(context.Background(), addr, ClientConfig{Fingerprint: "ffffffff00000000"})
	if !errors.Is(err, ErrFingerprint) {
		t.Fatalf("Dial with wrong fingerprint: %v, want ErrFingerprint", err)
	}
	// An empty client fingerprint skips the check (the caller opted out).
	cn, err := Dial(context.Background(), addr, ClientConfig{})
	if err != nil {
		t.Fatalf("Dial without fingerprint: %v", err)
	}
	cn.Close()
}

func TestMuxErrorFrame(t *testing.T) {
	batch := func(_ context.Context, _ string, pairs [][2]uint32, _ []bool) error {
		return &Fail{Status: 429, Msg: "replica overloaded"}
	}
	_, addr := startServer(t, ServerConfig{Batch: batch})
	cn, err := Dial(context.Background(), addr, ClientConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer cn.Close()
	pairs, _ := testPairs(8, 1)
	out := make([]bool, 8)
	err = cn.Batch(context.Background(), pairs, out, "")
	var f *Fail
	if !errors.As(err, &f) || f.Status != 429 || f.Msg != "replica overloaded" {
		t.Fatalf("Batch = %v, want Fail{429, replica overloaded}", err)
	}
	// The error is per-batch, not per-connection: the conn stays usable.
	if cn.Dead() {
		t.Fatal("conn marked dead after an in-band error frame")
	}
}

func TestMuxIdleTimeout(t *testing.T) {
	_, addr := startServer(t, ServerConfig{Batch: echoBatch, IdleTimeout: 50 * time.Millisecond})
	cn, err := Dial(context.Background(), addr, ClientConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer cn.Close()
	pairs, _ := testPairs(4, 1)
	out := make([]bool, 4)
	if err := cn.Batch(context.Background(), pairs, out, ""); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for !cn.Dead() {
		if time.Now().After(deadline) {
			t.Fatal("idle server never closed the connection")
		}
		time.Sleep(10 * time.Millisecond)
	}
	if err := cn.Batch(context.Background(), pairs, out, ""); err == nil {
		t.Fatal("Batch on an idle-closed conn succeeded")
	}
}

// TestMuxGracefulDrain: a batch in flight when Shutdown starts must
// still be answered; new connections are refused afterwards.
func TestMuxGracefulDrain(t *testing.T) {
	release := make(chan struct{})
	batch := func(ctx context.Context, trace string, pairs [][2]uint32, out []bool) error {
		<-release
		return echoBatch(ctx, trace, pairs, out)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	s := NewServer(ServerConfig{Batch: batch})
	go s.Serve(ln)
	cn, err := Dial(context.Background(), ln.Addr().String(), ClientConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer cn.Close()

	pairs, want := testPairs(16, 9)
	out := make([]bool, 16)
	batchErr := make(chan error, 1)
	go func() {
		batchErr <- cn.Batch(context.Background(), pairs, out, "")
	}()
	// Wait until the batch is in flight server-side, then drain.
	deadline := time.Now().Add(5 * time.Second)
	for s.Traffic().FramesRx.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("batch never reached the server")
		}
		time.Sleep(time.Millisecond)
	}
	shutdownDone := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		shutdownDone <- s.Shutdown(ctx)
	}()
	time.Sleep(20 * time.Millisecond) // let the drain kick land first
	close(release)
	if err := <-batchErr; err != nil {
		t.Fatalf("in-flight batch failed during drain: %v", err)
	}
	for i := range out {
		if out[i] != want[i] {
			t.Fatalf("drained batch answer wrong at %d", i)
		}
	}
	if err := <-shutdownDone; err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	if _, err := Dial(context.Background(), ln.Addr().String(), ClientConfig{}); err == nil {
		t.Fatal("Dial succeeded after Shutdown")
	}
}

// TestPoolReconnect: kill the server under a pool, restart it on the
// same address, and the pool must come back without external help.
func TestPoolReconnect(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	s1 := NewServer(ServerConfig{Batch: echoBatch})
	go s1.Serve(ln)

	p := NewPool(addr, 2, ClientConfig{})
	defer p.Close()
	ctx := context.Background()
	cn, err := p.Get(ctx)
	if err != nil {
		t.Fatal(err)
	}
	pairs, want := testPairs(8, 3)
	out := make([]bool, 8)
	if err := cn.Batch(ctx, pairs, out, ""); err != nil {
		t.Fatal(err)
	}

	sctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	s1.Shutdown(sctx)
	cancel()

	// The old conns die; Get redials (the first attempt may race the
	// restart, so allow the backoff to retry for a while).
	ln2, err := net.Listen("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	s2 := NewServer(ServerConfig{Batch: echoBatch})
	go s2.Serve(ln2)
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		s2.Shutdown(ctx)
	}()

	deadline := time.Now().Add(10 * time.Second)
	for {
		cn, err = p.Get(ctx)
		if err == nil && !cn.Dead() {
			if err := cn.Batch(ctx, pairs, out, ""); err == nil {
				break
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("pool never reconnected: %v", err)
		}
		time.Sleep(20 * time.Millisecond)
	}
	for i := range out {
		if out[i] != want[i] {
			t.Fatalf("post-reconnect answer wrong at %d", i)
		}
	}
	if n := p.OpenConns(); n < 1 {
		t.Fatalf("OpenConns = %d after reconnect", n)
	}
}

// TestMuxBatchCtxCancel: a caller abandoning a batch mid-flight gets
// ctx.Err() and the stream slot is reclaimed when the late response
// lands — later batches on the same conn stay correct.
func TestMuxBatchCtxCancel(t *testing.T) {
	release := make(chan struct{})
	var calls atomic.Int64
	batch := func(ctx context.Context, trace string, pairs [][2]uint32, out []bool) error {
		if calls.Add(1) == 1 {
			<-release
		}
		return echoBatch(ctx, trace, pairs, out)
	}
	_, addr := startServer(t, ServerConfig{Batch: batch, Window: 1})
	cn, err := Dial(context.Background(), addr, ClientConfig{Window: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer cn.Close()

	pairs, want := testPairs(8, 5)
	out := make([]bool, 8)
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(30 * time.Millisecond)
		cancel()
	}()
	if err := cn.Batch(ctx, pairs, out, ""); !errors.Is(err, context.Canceled) {
		t.Fatalf("abandoned batch = %v, want context.Canceled", err)
	}
	close(release) // the stuck batch answers; its slot must recycle

	// Window is 1: this batch needs the abandoned slot back.
	done := make(chan error, 1)
	go func() {
		done <- cn.Batch(context.Background(), pairs, out, "")
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("batch after abandonment: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("abandoned slot never reclaimed: follow-up batch hung")
	}
	for i := range out {
		if out[i] != want[i] {
			t.Fatalf("post-abandon answer wrong at %d", i)
		}
	}
}

// TestMuxZeroAllocSteadyState is the acceptance pin: once warmed, a
// full client round trip (encode, write, read, decode) plus the
// server's answer path allocates nothing on either side.
// AllocsPerRun counts mallocs process-wide, so the server goroutines
// are inside the measurement too.
func TestMuxZeroAllocSteadyState(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates on goroutine handoffs")
	}
	_, addr := startServer(t, ServerConfig{Batch: echoBatch})
	cn, err := Dial(context.Background(), addr, ClientConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer cn.Close()
	pairs, _ := testPairs(512, 7)
	out := make([]bool, 512)
	ctx := context.Background()
	for range 100 { // warm every buffer and pool on both sides
		if err := cn.Batch(ctx, pairs, out, ""); err != nil {
			t.Fatal(err)
		}
	}
	allocs := testing.AllocsPerRun(300, func() {
		if err := cn.Batch(ctx, pairs, out, ""); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 0.1 {
		t.Fatalf("steady-state Batch allocates %.2f times per op, want 0", allocs)
	}
}
