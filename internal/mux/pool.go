package mux

import (
	"context"
	"sync"
	"sync/atomic"
	"time"
)

// Dial backoff after a failed attempt: exponential from 250ms to 15s.
// A connection that dies after working redials immediately (backoff
// only punishes failed dials, not lost connections).
const (
	dialBackoffMin = 250 * time.Millisecond
	dialBackoffMax = 15 * time.Second
)

// Pool keeps a small fixed set of connections toward one replica's mux
// listener and hands them out round-robin. Dials happen lazily on Get,
// at most one per slot at a time; while a slot is backing off or being
// dialed, Get returns ErrNoConn and the caller sends that batch over
// HTTP instead — the transport never adds latency it was built to
// remove.
type Pool struct {
	addr string
	cfg  ClientConfig
	size int
	rr   atomic.Uint32

	mu      sync.Mutex
	conns   []*Conn
	dialing []bool
	next    []time.Time
	backoff []time.Duration
	closed  bool
}

// NewPool builds a pool of size connections toward addr. cfg carries
// the expected fingerprint, window and shared counters.
func NewPool(addr string, size int, cfg ClientConfig) *Pool {
	if size <= 0 {
		size = DefaultConnsPerReplica
	}
	cfg.defaults()
	return &Pool{
		addr:    addr,
		cfg:     cfg,
		size:    size,
		conns:   make([]*Conn, size),
		dialing: make([]bool, size),
		next:    make([]time.Time, size),
		backoff: make([]time.Duration, size),
	}
}

// Addr returns the address this pool dials.
func (p *Pool) Addr() string { return p.addr }

// Fingerprint returns the snapshot fingerprint this pool expects.
func (p *Pool) Fingerprint() string { return p.cfg.Fingerprint }

// Get returns a live connection, dialing one synchronously if its slot
// is idle and not backing off. ErrNoConn means "not now, use HTTP";
// any other error is the dial's (also a fallback signal, but worth
// surfacing to logs).
func (p *Pool) Get(ctx context.Context) (*Conn, error) {
	i := int(p.rr.Add(1)) % p.size
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil, ErrClosed
	}
	if cn := p.conns[i]; cn != nil && !cn.Dead() {
		p.mu.Unlock()
		return cn, nil
	}
	if p.dialing[i] || time.Now().Before(p.next[i]) {
		p.mu.Unlock()
		return nil, ErrNoConn
	}
	p.dialing[i] = true
	p.mu.Unlock()

	cn, err := Dial(ctx, p.addr, p.cfg)

	p.mu.Lock()
	p.dialing[i] = false
	if err != nil {
		if p.backoff[i] == 0 {
			p.backoff[i] = dialBackoffMin
		} else if p.backoff[i] < dialBackoffMax {
			p.backoff[i] *= 2
		}
		p.next[i] = time.Now().Add(p.backoff[i])
		p.mu.Unlock()
		return nil, err
	}
	p.backoff[i] = 0
	p.next[i] = time.Time{}
	if p.closed {
		p.mu.Unlock()
		cn.Close()
		return nil, ErrClosed
	}
	if old := p.conns[i]; old != nil {
		old.fail(ErrClosed)
	}
	p.conns[i] = cn
	p.mu.Unlock()
	return cn, nil
}

// OpenConns counts live connections (feeds the reach_mux_conns gauge).
func (p *Pool) OpenConns() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	n := 0
	for _, cn := range p.conns {
		if cn != nil && !cn.Dead() {
			n++
		}
	}
	return n
}

// Close tears down every connection; subsequent Gets fail with
// ErrClosed.
func (p *Pool) Close() {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	p.closed = true
	conns := make([]*Conn, len(p.conns))
	copy(conns, p.conns)
	p.mu.Unlock()
	for _, cn := range conns {
		if cn != nil {
			cn.Close()
		}
	}
}
