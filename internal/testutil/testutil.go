// Package testutil provides shared correctness-checking helpers for the
// reachability index test suites: representative graph families and
// exhaustive comparison against materialized-closure ground truth.
package testutil

import (
	"math/rand"
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/tc"
)

// Queryable is the minimal query surface shared by every index.
type Queryable interface {
	Reachable(u, v uint32) bool
	Name() string
}

// Families returns one small DAG per structural family, keyed by name.
func Families(seed int64) map[string]*graph.Graph {
	return map[string]*graph.Graph{
		"uniform":  gen.UniformDAG(120, 320, seed),
		"tree":     gen.TreeDAG(120, 0.15, 0, seed),
		"citation": gen.CitationDAG(120, 3, 0.5, seed),
		"chain":    gen.ChainDAG(120, 5, 0.2, seed),
		"xml":      gen.XMLDAG(120, 4, 0.2, seed),
		"forest":   gen.ForestDAG(120, 2, seed),
		"powerlaw": gen.PowerLawDAG(120, 320, 1.4, seed),
	}
}

// CheckExhaustive compares q against BFS ground truth on every ordered
// vertex pair of g.
func CheckExhaustive(t *testing.T, tag string, g *graph.Graph, q Queryable) {
	t.Helper()
	closure := tc.Closure(g)
	n := g.NumVertices()
	for u := 0; u < n; u++ {
		for v := 0; v < n; v++ {
			want := closure[u].Get(v)
			if got := q.Reachable(uint32(u), uint32(v)); got != want {
				t.Fatalf("%s/%s: Reachable(%d,%d) = %v, want %v", tag, q.Name(), u, v, got, want)
			}
		}
	}
}

// CheckRandom compares q against BFS ground truth on `queries` random
// pairs; for graphs too large for exhaustive checking.
func CheckRandom(t *testing.T, tag string, g *graph.Graph, q Queryable, queries int, seed int64) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	vst := graph.NewVisitor(g.NumVertices())
	n := g.NumVertices()
	for i := 0; i < queries; i++ {
		u := graph.Vertex(rng.Intn(n))
		v := graph.Vertex(rng.Intn(n))
		want := vst.Reachable(g, u, v)
		if got := q.Reachable(uint32(u), uint32(v)); got != want {
			t.Fatalf("%s/%s: Reachable(%d,%d) = %v, want %v", tag, q.Name(), u, v, got, want)
		}
	}
	// Bias toward positives: random pairs on sparse DAGs are mostly
	// negative, so also sample known-reachable pairs.
	for i := 0; i < queries/2; i++ {
		u, v, ok := tc.SamplePositivePair(g, rng, vst)
		if !ok {
			return
		}
		if !q.Reachable(uint32(u), uint32(v)) {
			t.Fatalf("%s/%s: known-positive pair (%d,%d) reported unreachable", tag, q.Name(), u, v)
		}
	}
}
