package tflabel

import (
	"fmt"

	"repro/internal/blockio"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/index"
)

func init() {
	index.Register(index.Descriptor{
		Tag:  "TF",
		Rank: 8,
		Doc:  "TF-label (Cheng et al.): the ε = 1 special case of HL",
		Build: func(g *graph.Graph, opts index.BuildOptions) (index.Index, error) {
			return Build(g, Options{CoreLimit: opts.CoreLimit})
		},
		Encode: func(idx index.Index, w *blockio.Writer) error {
			t, ok := idx.(*TF)
			if !ok {
				return fmt.Errorf("tflabel: codec got %T", idx)
			}
			return core.EncodeHL(t.hl, w)
		},
		Decode: func(g *graph.Graph, r *blockio.Reader, _ index.BuildOptions) (index.Index, error) {
			hl, err := core.DecodeHL(g, r)
			if err != nil {
				return nil, err
			}
			return &TF{hl: hl}, nil
		},
	})
}
