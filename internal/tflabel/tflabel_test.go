package tflabel

import (
	"testing"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/testutil"
)

func TestTFExhaustive(t *testing.T) {
	for name, g := range testutil.Families(43) {
		tf, err := Build(g, Options{CoreLimit: 16})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		testutil.CheckExhaustive(t, name, g, tf)
	}
}

func TestTFBuildsFoldingHierarchy(t *testing.T) {
	g := gen.TreeDAG(3000, 0.1, 0, 2)
	tf, err := Build(g, Options{CoreLimit: 64})
	if err != nil {
		t.Fatal(err)
	}
	if tf.Levels() < 2 {
		t.Errorf("no folding hierarchy: %d levels", tf.Levels())
	}
	testutil.CheckRandom(t, "tree3k", g, tf, 500, 3)
}

// TestTFVsHL2LabelSizes reflects the paper's Figure 3 observation: the
// ε = 2 backbone hierarchy (HL) tends to produce labels no larger than the
// ε = 1 folding hierarchy (TF) — allow generous slack, just guard against
// inversion by a large factor.
func TestTFVsHL2LabelSizes(t *testing.T) {
	g := gen.CitationDAG(1000, 3, 0.5, 7)
	tf, err := Build(g, Options{CoreLimit: 64})
	if err != nil {
		t.Fatal(err)
	}
	hl, err := core.BuildHL(g, core.HLOptions{Epsilon: 2, CoreLimit: 64})
	if err != nil {
		t.Fatal(err)
	}
	if hl.SizeInts() > 3*tf.SizeInts() {
		t.Errorf("HL labels (%d) much larger than TF labels (%d)", hl.SizeInts(), tf.SizeInts())
	}
}
