// Package tflabel implements TF-label (Cheng et al., SIGMOD 2013) — the
// "TF" baseline — via the equivalence the paper itself establishes (§2.4,
// §4): TF-label's topological-folding hierarchy is the ε = 1 special case
// of Hierarchical-Labeling, where each hierarchy level is an ε = 1
// one-side reachability backbone (the vertex-cover construction of
// Example 4.1). Building HL with Epsilon = 1 therefore exercises exactly
// the structural distinction (vertex cover vs ε = 2 backbone) whose effect
// the paper's tables measure.
package tflabel

import (
	"repro/internal/core"
	"repro/internal/graph"
)

// TF is the TF-label reachability oracle.
type TF struct {
	hl *core.HL
}

// Options configures TF-label construction.
type Options struct {
	// CoreLimit stops the folding hierarchy at this core size (default
	// matches HL's default).
	CoreLimit int
	// MaxLevels bounds the folding depth.
	MaxLevels int
}

// Build constructs the TF-label oracle for DAG g.
func Build(g *graph.Graph, opts Options) (*TF, error) {
	hl, err := core.BuildHL(g, core.HLOptions{
		Epsilon:   1,
		CoreLimit: opts.CoreLimit,
		MaxLevels: opts.MaxLevels,
	})
	if err != nil {
		return nil, err
	}
	return &TF{hl: hl}, nil
}

// Name implements index.Index.
func (t *TF) Name() string { return "TF" }

// Reachable answers u -> v by label intersection.
func (t *TF) Reachable(u, v uint32) bool { return t.hl.Reachable(u, v) }

// SizeInts returns the total label size in 32-bit integers.
func (t *TF) SizeInts() int64 { return t.hl.SizeInts() }

// Levels reports the folding-hierarchy height.
func (t *TF) Levels() int { return t.hl.Levels() }
