package search

import (
	"testing"

	"repro/internal/testutil"
)

func TestSearchersExhaustive(t *testing.T) {
	for name, g := range testutil.Families(3) {
		testutil.CheckExhaustive(t, name, g, NewBFS(g))
		testutil.CheckExhaustive(t, name, g, NewDFS(g))
		testutil.CheckExhaustive(t, name, g, NewBidirectional(g))
	}
}

func TestSearchersReportZeroSize(t *testing.T) {
	g := testutil.Families(1)["tree"]
	for _, s := range []interface {
		SizeInts() int64
		Name() string
	}{NewBFS(g), NewDFS(g), NewBidirectional(g)} {
		if s.SizeInts() != 0 {
			t.Errorf("%s: SizeInts = %d, want 0", s.Name(), s.SizeInts())
		}
	}
}
