package search

import (
	"repro/internal/blockio"
	"repro/internal/graph"
	"repro/internal/index"
)

// The online searchers are index-free: their only state is the graph the
// snapshot already carries, so their codecs are pure rebuild — Encode
// writes nothing and Decode reconstructs from the graph.
func init() {
	index.Register(index.Descriptor{
		Tag:     "BFS",
		Rank:    12,
		Doc:     "index-free online breadth-first search",
		Rebuild: true,
		Build: func(g *graph.Graph, _ index.BuildOptions) (index.Index, error) {
			return NewBFS(g), nil
		},
		Encode: func(_ index.Index, _ *blockio.Writer) error { return nil },
		Decode: func(g *graph.Graph, _ *blockio.Reader, _ index.BuildOptions) (index.Index, error) {
			return NewBFS(g), nil
		},
	})
	index.Register(index.Descriptor{
		Tag:     "BiBFS",
		Rank:    13,
		Doc:     "index-free bidirectional search, smaller-frontier-first",
		Rebuild: true,
		Build: func(g *graph.Graph, _ index.BuildOptions) (index.Index, error) {
			return NewBidirectional(g), nil
		},
		Encode: func(_ index.Index, _ *blockio.Writer) error { return nil },
		Decode: func(g *graph.Graph, _ *blockio.Reader, _ index.BuildOptions) (index.Index, error) {
			return NewBidirectional(g), nil
		},
	})
}
