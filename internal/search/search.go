// Package search provides index-free online reachability: plain BFS, DFS
// and bidirectional BFS. These are the "no precomputation" reference
// points of the paper's taxonomy (§2.1) and the ground truth for every
// correctness test in this repository.
package search

import "repro/internal/graph"

// BFS answers queries by forward breadth-first search.
type BFS struct {
	g   *graph.Graph
	vst *graph.Visitor
}

// NewBFS returns a BFS searcher over g.
func NewBFS(g *graph.Graph) *BFS {
	return &BFS{g: g, vst: graph.NewVisitor(g.NumVertices())}
}

// Name implements index.Index.
func (b *BFS) Name() string { return "BFS" }

// Reachable reports whether u reaches v.
func (b *BFS) Reachable(u, v uint32) bool { return b.vst.Reachable(b.g, u, v) }

// SizeInts is zero: online search stores no index.
func (b *BFS) SizeInts() int64 { return 0 }

// Bidirectional answers queries by alternating forward/backward BFS,
// expanding the smaller frontier.
type Bidirectional struct {
	g  *graph.Graph
	bi *graph.BiVisitor
}

// NewBidirectional returns a bidirectional searcher over g.
func NewBidirectional(g *graph.Graph) *Bidirectional {
	return &Bidirectional{g: g, bi: graph.NewBiVisitor(g.NumVertices())}
}

// Name implements index.Index.
func (b *Bidirectional) Name() string { return "BiBFS" }

// Reachable reports whether u reaches v.
func (b *Bidirectional) Reachable(u, v uint32) bool { return b.bi.Reachable(b.g, u, v) }

// SizeInts is zero: online search stores no index.
func (b *Bidirectional) SizeInts() int64 { return 0 }

// DFS answers queries by iterative depth-first search. Included because
// the paper's online-search discussion covers both BFS and DFS; DFS can
// differ wildly in visit order and stack behaviour.
type DFS struct {
	g     *graph.Graph
	vst   *graph.Visitor
	stack []graph.Vertex
}

// NewDFS returns a DFS searcher over g.
func NewDFS(g *graph.Graph) *DFS {
	return &DFS{g: g, vst: graph.NewVisitor(g.NumVertices())}
}

// Name implements index.Index.
func (d *DFS) Name() string { return "DFS" }

// Reachable reports whether u reaches v.
func (d *DFS) Reachable(u, v uint32) bool {
	if u == v {
		return true
	}
	d.vst.Reset()
	d.vst.Visit(u)
	d.stack = append(d.stack[:0], u)
	for len(d.stack) > 0 {
		x := d.stack[len(d.stack)-1]
		d.stack = d.stack[:len(d.stack)-1]
		for _, w := range d.g.Out(x) {
			if w == v {
				return true
			}
			if d.vst.Visit(w) {
				d.stack = append(d.stack, w)
			}
		}
	}
	return false
}

// SizeInts is zero: online search stores no index.
func (d *DFS) SizeInts() int64 { return 0 }
