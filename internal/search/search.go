// Package search provides index-free online reachability: plain BFS, DFS
// and bidirectional BFS. These are the "no precomputation" reference
// points of the paper's taxonomy (§2.1) and the ground truth for every
// correctness test in this repository.
//
// All searchers keep their traversal scratch in a sync.Pool, so a single
// instance may serve Reachable from many goroutines at once.
package search

import (
	"sync"

	"repro/internal/graph"
)

// BFS answers queries by forward breadth-first search.
type BFS struct {
	g    *graph.Graph
	pool sync.Pool // *graph.Visitor
}

// NewBFS returns a BFS searcher over g.
func NewBFS(g *graph.Graph) *BFS {
	n := g.NumVertices()
	return &BFS{g: g, pool: sync.Pool{New: func() any { return graph.NewVisitor(n) }}}
}

// Name implements index.Index.
func (b *BFS) Name() string { return "BFS" }

// Reachable reports whether u reaches v. Safe for concurrent use.
func (b *BFS) Reachable(u, v uint32) bool {
	vst := b.pool.Get().(*graph.Visitor)
	ok := vst.Reachable(b.g, u, v)
	b.pool.Put(vst)
	return ok
}

// SizeInts is zero: online search stores no index.
func (b *BFS) SizeInts() int64 { return 0 }

// Bidirectional answers queries by alternating forward/backward BFS,
// expanding the smaller frontier.
type Bidirectional struct {
	g    *graph.Graph
	pool sync.Pool // *graph.BiVisitor
}

// NewBidirectional returns a bidirectional searcher over g.
func NewBidirectional(g *graph.Graph) *Bidirectional {
	n := g.NumVertices()
	return &Bidirectional{g: g, pool: sync.Pool{New: func() any { return graph.NewBiVisitor(n) }}}
}

// Name implements index.Index.
func (b *Bidirectional) Name() string { return "BiBFS" }

// Reachable reports whether u reaches v. Safe for concurrent use.
func (b *Bidirectional) Reachable(u, v uint32) bool {
	bi := b.pool.Get().(*graph.BiVisitor)
	ok := bi.Reachable(b.g, u, v)
	b.pool.Put(bi)
	return ok
}

// SizeInts is zero: online search stores no index.
func (b *Bidirectional) SizeInts() int64 { return 0 }

// DFS answers queries by iterative depth-first search. Included because
// the paper's online-search discussion covers both BFS and DFS; DFS can
// differ wildly in visit order and stack behaviour.
type DFS struct {
	g    *graph.Graph
	pool sync.Pool // *dfsScratch
}

type dfsScratch struct {
	vst   *graph.Visitor
	stack []graph.Vertex
}

// NewDFS returns a DFS searcher over g.
func NewDFS(g *graph.Graph) *DFS {
	n := g.NumVertices()
	return &DFS{g: g, pool: sync.Pool{New: func() any {
		return &dfsScratch{vst: graph.NewVisitor(n), stack: make([]graph.Vertex, 0, 64)}
	}}}
}

// Name implements index.Index.
func (d *DFS) Name() string { return "DFS" }

// Reachable reports whether u reaches v. Safe for concurrent use.
func (d *DFS) Reachable(u, v uint32) bool {
	if u == v {
		return true
	}
	s := d.pool.Get().(*dfsScratch)
	defer d.pool.Put(s)
	s.vst.Reset()
	s.vst.Visit(u)
	s.stack = append(s.stack[:0], u)
	for len(s.stack) > 0 {
		x := s.stack[len(s.stack)-1]
		s.stack = s.stack[:len(s.stack)-1]
		for _, w := range d.g.Out(x) {
			if w == v {
				return true
			}
			if s.vst.Visit(w) {
				s.stack = append(s.stack, w)
			}
		}
	}
	return false
}

// SizeInts is zero: online search stores no index.
func (d *DFS) SizeInts() int64 { return 0 }
