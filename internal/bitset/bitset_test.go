package bitset

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestSetGetClear(t *testing.T) {
	b := New(130)
	for _, i := range []int{0, 1, 63, 64, 65, 127, 128, 129} {
		if b.Get(i) {
			t.Fatalf("fresh set contains %d", i)
		}
		b.Set(i)
		if !b.Get(i) {
			t.Fatalf("Set(%d) not visible", i)
		}
	}
	if b.Count() != 8 {
		t.Fatalf("Count = %d, want 8", b.Count())
	}
	b.Clear(64)
	if b.Get(64) || b.Count() != 7 {
		t.Fatal("Clear(64) failed")
	}
	b.Reset()
	if b.Count() != 0 {
		t.Fatal("Reset left elements")
	}
}

func TestOrAndIntersects(t *testing.T) {
	a, b := New(100), New(100)
	a.Set(3)
	a.Set(70)
	b.Set(70)
	b.Set(99)
	if !a.Intersects(b) {
		t.Error("Intersects false, want true")
	}
	c := a.Clone()
	c.Or(b)
	if got := c.Slice(); !reflect.DeepEqual(got, []int{3, 70, 99}) {
		t.Errorf("Or slice = %v", got)
	}
	d := a.Clone()
	d.And(b)
	if got := d.Slice(); !reflect.DeepEqual(got, []int{70}) {
		t.Errorf("And slice = %v", got)
	}
	e := New(100)
	e.Set(1)
	if a.Intersects(e) {
		t.Error("disjoint sets reported intersecting")
	}
}

func TestNextSet(t *testing.T) {
	b := New(200)
	b.Set(5)
	b.Set(64)
	b.Set(199)
	cases := []struct{ from, want int }{
		{0, 5}, {5, 5}, {6, 64}, {64, 64}, {65, 199}, {199, 199}, {200, -1},
	}
	for _, c := range cases {
		if got := b.NextSet(c.from); got != c.want {
			t.Errorf("NextSet(%d) = %d, want %d", c.from, got, c.want)
		}
	}
	empty := New(10)
	if empty.NextSet(0) != -1 {
		t.Error("NextSet on empty should be -1")
	}
}

func TestForEachOrder(t *testing.T) {
	b := New(300)
	want := []int{0, 63, 64, 128, 255, 299}
	for _, i := range want {
		b.Set(i)
	}
	if got := b.Slice(); !reflect.DeepEqual(got, want) {
		t.Errorf("Slice = %v, want %v", got, want)
	}
	got32 := b.Slice32()
	for i, v := range want {
		if got32[i] != uint32(v) {
			t.Errorf("Slice32[%d] = %d, want %d", i, got32[i], v)
		}
	}
}

// Property: Slice after random Sets matches a map-based model.
func TestAgainstMapModel(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(500)
		b := New(n)
		model := map[int]bool{}
		for op := 0; op < 200; op++ {
			i := rng.Intn(n)
			switch rng.Intn(3) {
			case 0:
				b.Set(i)
				model[i] = true
			case 1:
				b.Clear(i)
				delete(model, i)
			case 2:
				if b.Get(i) != model[i] {
					return false
				}
			}
		}
		if b.Count() != len(model) {
			return false
		}
		for _, v := range b.Slice() {
			if !model[v] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: Or is commutative and its count is |a ∪ b|.
func TestOrProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 64 + rng.Intn(256)
		a, b := New(n), New(n)
		union := map[int]bool{}
		for i := 0; i < 100; i++ {
			x := rng.Intn(n)
			if rng.Intn(2) == 0 {
				a.Set(x)
			} else {
				b.Set(x)
			}
			union[x] = true
		}
		ab := a.Clone()
		ab.Or(b)
		ba := b.Clone()
		ba.Or(a)
		return ab.Count() == len(union) && reflect.DeepEqual(ab.Slice(), ba.Slice())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
