// Package bitset implements a dense fixed-size bitset used by transitive
// closure computation, K-Reach cover reachability, and tests. It is a thin,
// allocation-conscious wrapper over []uint64.
package bitset

import "math/bits"

// Bitset is a fixed-capacity set of small non-negative integers.
type Bitset struct {
	words []uint64
	n     int
}

// New returns a bitset able to hold values in [0, n).
func New(n int) *Bitset {
	return &Bitset{words: make([]uint64, (n+63)/64), n: n}
}

// FromWords reassembles a bitset from its raw storage (see Words). The
// words slice is aliased, not copied; it must hold exactly ⌈n/64⌉ words,
// or FromWords returns nil — callers deserializing untrusted data treat
// that as corruption.
func FromWords(words []uint64, n int) *Bitset {
	if n < 0 || len(words) != (n+63)/64 {
		return nil
	}
	return &Bitset{words: words, n: n}
}

// Len returns the capacity n the set was created with.
func (b *Bitset) Len() int { return b.n }

// Set adds i to the set.
func (b *Bitset) Set(i int) { b.words[i>>6] |= 1 << (uint(i) & 63) }

// Clear removes i from the set.
func (b *Bitset) Clear(i int) { b.words[i>>6] &^= 1 << (uint(i) & 63) }

// Get reports whether i is in the set.
func (b *Bitset) Get(i int) bool { return b.words[i>>6]&(1<<(uint(i)&63)) != 0 }

// Reset removes all elements, keeping capacity.
func (b *Bitset) Reset() {
	for i := range b.words {
		b.words[i] = 0
	}
}

// Or sets b to b | other. Both sets must have the same capacity.
func (b *Bitset) Or(other *Bitset) {
	for i, w := range other.words {
		b.words[i] |= w
	}
}

// And sets b to b & other. Both sets must have the same capacity.
func (b *Bitset) And(other *Bitset) {
	for i, w := range other.words {
		b.words[i] &= w
	}
}

// Intersects reports whether b and other share any element without
// materializing the intersection.
func (b *Bitset) Intersects(other *Bitset) bool {
	for i, w := range other.words {
		if b.words[i]&w != 0 {
			return true
		}
	}
	return false
}

// Count returns the number of elements in the set.
func (b *Bitset) Count() int {
	c := 0
	for _, w := range b.words {
		c += bits.OnesCount64(w)
	}
	return c
}

// Clone returns a copy of b.
func (b *Bitset) Clone() *Bitset {
	c := &Bitset{words: make([]uint64, len(b.words)), n: b.n}
	copy(c.words, b.words)
	return c
}

// ForEach calls fn for every element in increasing order.
func (b *Bitset) ForEach(fn func(i int)) {
	for wi, w := range b.words {
		for w != 0 {
			tz := bits.TrailingZeros64(w)
			fn(wi<<6 + tz)
			w &= w - 1
		}
	}
}

// Slice returns the elements in increasing order.
func (b *Bitset) Slice() []int {
	out := make([]int, 0, b.Count())
	b.ForEach(func(i int) { out = append(out, i) })
	return out
}

// Slice32 returns the elements as uint32s in increasing order.
func (b *Bitset) Slice32() []uint32 {
	out := make([]uint32, 0, b.Count())
	b.ForEach(func(i int) { out = append(out, uint32(i)) })
	return out
}

// NextSet returns the smallest element >= i, or -1 if none exists.
func (b *Bitset) NextSet(i int) int {
	if i >= b.n {
		return -1
	}
	wi := i >> 6
	w := b.words[wi] >> (uint(i) & 63)
	if w != 0 {
		return i + bits.TrailingZeros64(w)
	}
	for wi++; wi < len(b.words); wi++ {
		if b.words[wi] != 0 {
			return wi<<6 + bits.TrailingZeros64(b.words[wi])
		}
	}
	return -1
}

// Words exposes the underlying storage for bulk operations (read-only use).
func (b *Bitset) Words() []uint64 { return b.words }

// CountAnd returns |a ∩ b| without materializing the intersection.
func CountAnd(a, b *Bitset) int {
	c := 0
	for i, w := range a.words {
		c += bits.OnesCount64(w & b.words[i])
	}
	return c
}

// OrAnd sets dst to dst | (a & b) in one pass. All three sets must share
// the same capacity.
func (dst *Bitset) OrAnd(a, b *Bitset) {
	for i := range dst.words {
		dst.words[i] |= a.words[i] & b.words[i]
	}
}

// AndNot sets b to b &^ other (set difference).
func (b *Bitset) AndNot(other *Bitset) {
	for i, w := range other.words {
		b.words[i] &^= w
	}
}
