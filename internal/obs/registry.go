package obs

import (
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing count. Use Registry.Counter for
// a fresh one, or Registry.CounterFunc to expose an atomic the caller
// already maintains.
type Counter struct{ v atomic.Int64 }

// Add increments the counter by n.
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Labels name one series of a metric family, e.g.
// Labels{"endpoint": "batch"}. Rendered sorted by key so exposition is
// deterministic.
type Labels map[string]string

func (l Labels) render() string {
	if len(l) == 0 {
		return ""
	}
	keys := make([]string, 0, len(l))
	for k := range l {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(k)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(l[k]))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// escapeLabel applies the Prometheus label-value escaping rules.
func escapeLabel(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

// exportBounds are the `le` bucket edges (in seconds) that histograms
// expose. The fine log-linear buckets are coarsened onto these at scrape
// time: every fine bucket's count is attributed to the first bound not
// below its upper edge, so cumulative counts stay exact ("N observations
// ≤ le" never undercounts against the fine data). Spanning 100 ns to
// 10 s covers a cache hit through a timed-out request.
var exportBounds = []float64{
	100e-9, 250e-9, 500e-9,
	1e-6, 2.5e-6, 5e-6, 10e-6, 25e-6, 50e-6, 100e-6, 250e-6, 500e-6,
	1e-3, 2.5e-3, 5e-3, 10e-3, 25e-3, 50e-3, 100e-3, 250e-3, 500e-3,
	1, 2.5, 5, 10,
}

type series struct {
	labels  string // pre-rendered {k="v",...} or ""
	hist    *Histogram
	counter func() int64
	gauge   func() float64
}

type family struct {
	name, help, typ string
	series          []*series
}

// Registry holds one process's metric families and serves them in
// Prometheus text format. Create with NewRegistry; registration is
// cheap and typically happens once at startup. Metric families keep
// registration order; series within a family keep theirs.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
	order    []string
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

func (r *Registry) add(name, help, typ string, s *series) {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.families[name]
	if f == nil {
		f = &family{name: name, help: help, typ: typ}
		r.families[name] = f
		r.order = append(r.order, name)
	}
	f.series = append(f.series, s)
}

// Histogram registers (or extends) a histogram family and returns the
// live histogram for this label set. Values are recorded in nanoseconds
// and exposed in seconds, per Prometheus convention for _seconds
// metrics.
func (r *Registry) Histogram(name, help string, labels Labels) *Histogram {
	h := &Histogram{}
	r.add(name, help, "histogram", &series{labels: labels.render(), hist: h})
	return h
}

// Counter registers a fresh counter.
func (r *Registry) Counter(name, help string, labels Labels) *Counter {
	c := &Counter{}
	r.CounterFunc(name, help, labels, c.Value)
	return c
}

// CounterFunc exposes an existing monotonically-increasing value — the
// serving layers already keep lock-free atomic counters, and exposing
// them through a closure beats double bookkeeping on the hot path.
func (r *Registry) CounterFunc(name, help string, labels Labels, fn func() int64) {
	r.add(name, help, "counter", &series{labels: labels.render(), counter: fn})
}

// GaugeFunc exposes a value that can go up and down (queue depths,
// uptime, cache occupancy), sampled at scrape time.
func (r *Registry) GaugeFunc(name, help string, labels Labels, fn func() float64) {
	r.add(name, help, "gauge", &series{labels: labels.render(), gauge: fn})
}

// WritePrometheus renders every registered family in the Prometheus
// text exposition format (version 0.0.4).
func (r *Registry) WritePrometheus(w io.Writer) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, name := range r.order {
		f := r.families[name]
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", f.name, f.help, f.name, f.typ)
		for _, s := range f.series {
			switch {
			case s.counter != nil:
				fmt.Fprintf(w, "%s%s %d\n", f.name, s.labels, s.counter())
			case s.gauge != nil:
				fmt.Fprintf(w, "%s%s %s\n", f.name, s.labels, formatFloat(s.gauge()))
			case s.hist != nil:
				writeHistogram(w, f.name, s.labels, s.hist.Snapshot())
			}
		}
	}
}

// writeHistogram coarsens a snapshot onto exportBounds and emits the
// cumulative _bucket series plus _sum and _count.
func writeHistogram(w io.Writer, name, labels string, snap *HistSnapshot) {
	perBound := make([]int64, len(exportBounds)+1) // +1 for +Inf
	for i, n := range snap.Buckets {
		if n == 0 {
			continue
		}
		upper := float64(bucketUpper(i)) / 1e9
		b := sort.SearchFloat64s(exportBounds, upper)
		perBound[b] += n
	}
	var cum int64
	for b, bound := range exportBounds {
		cum += perBound[b]
		fmt.Fprintf(w, "%s_bucket%s %d\n", name, histLabels(labels, formatFloat(bound)), cum)
	}
	fmt.Fprintf(w, "%s_bucket%s %d\n", name, histLabels(labels, "+Inf"), snap.Count)
	fmt.Fprintf(w, "%s_sum%s %s\n", name, labels, formatFloat(float64(snap.Sum)/1e9))
	fmt.Fprintf(w, "%s_count%s %d\n", name, labels, snap.Count)
}

// histLabels splices the le label into an already-rendered label set.
func histLabels(labels, le string) string {
	if labels == "" {
		return `{le="` + le + `"}`
	}
	return labels[:len(labels)-1] + `,le="` + le + `"}`
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// Handler serves GET /metrics scrapes of this registry.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WritePrometheus(w)
	})
}
