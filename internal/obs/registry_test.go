package obs

import (
	"bytes"
	"flag"
	"net/http/httptest"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
	"time"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite testdata golden files")

// goldenRegistry builds a registry with fully deterministic contents.
func goldenRegistry() *Registry {
	reg := NewRegistry()
	reg.CounterFunc("reach_queries_total", "Pair queries answered.", nil, func() int64 { return 1234 })
	c := reg.Counter("reach_rejected_total", "Requests shed by the admission gate.", nil)
	c.Add(7)
	reg.GaugeFunc("reach_in_flight", "Currently served query requests.", nil, func() float64 { return 3 })
	reg.GaugeFunc("reach_build_info", "Build metadata as labels, value fixed at 1.",
		Labels{"go_version": "go1.24.0", "revision": "deadbeefcafe"}, func() float64 { return 1 })
	h := reg.Histogram("reach_http_request_seconds", "End-to-end request latency.",
		Labels{"endpoint": "batch"})
	for _, d := range []time.Duration{
		120 * time.Nanosecond, 900 * time.Nanosecond, 4 * time.Microsecond,
		75 * time.Microsecond, 300 * time.Microsecond, 2 * time.Millisecond,
		2 * time.Millisecond, 40 * time.Millisecond, 1200 * time.Millisecond,
	} {
		h.RecordDuration(d)
	}
	// A second series of the same family, and an empty histogram: both
	// must render (empty series still advertise their existence).
	reg.Histogram("reach_http_request_seconds", "End-to-end request latency.",
		Labels{"endpoint": "reachable"})
	return reg
}

func TestWritePrometheusGolden(t *testing.T) {
	var buf bytes.Buffer
	goldenRegistry().WritePrometheus(&buf)
	golden := filepath.Join("testdata", "exposition.golden")
	if *updateGolden {
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update-golden to regenerate)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("exposition drifted from golden file:\n--- got ---\n%s\n--- want ---\n%s", buf.Bytes(), want)
	}
}

// Every non-comment line must be `name value` or `name{k="v",...} value`
// — the grammar Prometheus scrapers require.
var expositionLine = regexp.MustCompile(
	`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[a-zA-Z_][a-zA-Z0-9_]*="(\\.|[^"\\])*"(,[a-zA-Z_][a-zA-Z0-9_]*="(\\.|[^"\\])*")*\})? [-+0-9.eE]+(e[-+]?[0-9]+)?$|^[a-zA-Z_:][a-zA-Z0-9_:]*(\{.*\})? \+Inf$`)

func TestWritePrometheusIsWellFormed(t *testing.T) {
	var buf bytes.Buffer
	goldenRegistry().WritePrometheus(&buf)
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	sawHelp, sawType, sawBucket, sawInf := false, false, false, false
	for _, line := range lines {
		if strings.HasPrefix(line, "# HELP") {
			sawHelp = true
			continue
		}
		if strings.HasPrefix(line, "# TYPE") {
			sawType = true
			continue
		}
		if !expositionLine.MatchString(line) {
			t.Fatalf("malformed exposition line: %q", line)
		}
		if strings.Contains(line, "_bucket{") {
			sawBucket = true
		}
		if strings.Contains(line, `le="+Inf"`) {
			sawInf = true
		}
	}
	if !sawHelp || !sawType || !sawBucket || !sawInf {
		t.Fatalf("exposition missing required elements: HELP=%v TYPE=%v bucket=%v +Inf=%v",
			sawHelp, sawType, sawBucket, sawInf)
	}
}

func TestHistogramBucketsAreCumulative(t *testing.T) {
	var buf bytes.Buffer
	goldenRegistry().WritePrometheus(&buf)
	scraped, err := ParseHistogram(bytes.NewReader(buf.Bytes()),
		"reach_http_request_seconds", Labels{"endpoint": "batch"})
	if err != nil {
		t.Fatal(err)
	}
	var prev int64 = -1
	for i, c := range scraped.Cum {
		if c < prev {
			t.Fatalf("bucket %d count %d below previous %d — buckets must be cumulative", i, c, prev)
		}
		prev = c
	}
	if scraped.Cum[len(scraped.Cum)-1] != scraped.Count {
		t.Fatalf("+Inf bucket %d != count %d", scraped.Cum[len(scraped.Cum)-1], scraped.Count)
	}
	if scraped.Count != 9 {
		t.Fatalf("count %d, want the 9 recorded observations", scraped.Count)
	}
}

func TestRegistryHandler(t *testing.T) {
	reg := goldenRegistry()
	rec := httptest.NewRecorder()
	reg.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if rec.Code != 200 {
		t.Fatalf("HTTP %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("Content-Type %q", ct)
	}
	if !strings.Contains(rec.Body.String(), "reach_queries_total 1234") {
		t.Fatalf("scrape missing counter:\n%s", rec.Body.String())
	}
}

func TestLabelEscaping(t *testing.T) {
	reg := NewRegistry()
	reg.GaugeFunc("weird", "h", Labels{"path": "a\"b\\c\nd"}, func() float64 { return 1 })
	var buf bytes.Buffer
	reg.WritePrometheus(&buf)
	if !strings.Contains(buf.String(), `path="a\"b\\c\nd"`) {
		t.Fatalf("label not escaped: %s", buf.String())
	}
	// And the scraper must invert it.
	_, labels, _, ok := parseLine(`weird{path="a\"b\\c\nd"} 1`)
	if !ok || labels["path"] != "a\"b\\c\nd" {
		t.Fatalf("parseLine round-trip: ok=%v labels=%q", ok, labels["path"])
	}
}
