package obs

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// ScrapedHist is a histogram reconstructed from Prometheus text
// exposition — what reachbench reads back from /metrics to put
// server-side quantiles next to its own client-side ones. Counts are
// cumulative per bound, exactly as exposed.
type ScrapedHist struct {
	Bounds []float64 // ascending upper edges in seconds; +Inf last
	Cum    []int64   // cumulative count of observations ≤ Bounds[i]
	Count  int64
	Sum    float64 // seconds
}

// ParseHistogram extracts the histogram series of metric whose labels
// include match (subset match, so {endpoint="batch"} finds the series
// regardless of other labels). Returns an error when no _bucket line of
// the metric matches.
func ParseHistogram(r io.Reader, metric string, match Labels) (*ScrapedHist, error) {
	h := &ScrapedHist{}
	type bound struct {
		le  float64
		cum int64
	}
	var bounds []bound
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		name, labels, value, ok := parseLine(line)
		if !ok || !strings.HasPrefix(name, metric) {
			continue
		}
		if !labelsMatch(labels, match) {
			continue
		}
		switch name[len(metric):] {
		case "_bucket":
			le, err := parseLe(labels["le"])
			if err != nil {
				continue
			}
			n, err := strconv.ParseInt(value, 10, 64)
			if err != nil {
				continue
			}
			bounds = append(bounds, bound{le: le, cum: n})
		case "_sum":
			h.Sum, _ = strconv.ParseFloat(value, 64)
		case "_count":
			h.Count, _ = strconv.ParseInt(value, 10, 64)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(bounds) == 0 {
		return nil, fmt.Errorf("no %s_bucket series matching %v in scrape", metric, match)
	}
	sort.Slice(bounds, func(i, j int) bool { return bounds[i].le < bounds[j].le })
	for _, b := range bounds {
		h.Bounds = append(h.Bounds, b.le)
		h.Cum = append(h.Cum, b.cum)
	}
	return h, nil
}

func parseLe(s string) (float64, error) {
	if s == "+Inf" {
		return math.Inf(1), nil
	}
	return strconv.ParseFloat(s, 64)
}

// parseLine splits `name{k="v",...} value` (labels optional).
func parseLine(line string) (name string, labels Labels, value string, ok bool) {
	labels = Labels{}
	brace := strings.IndexByte(line, '{')
	if brace < 0 {
		sp := strings.IndexByte(line, ' ')
		if sp < 0 {
			return "", nil, "", false
		}
		return line[:sp], labels, strings.TrimSpace(line[sp+1:]), true
	}
	name = line[:brace]
	i := brace + 1
	for i < len(line) && line[i] != '}' {
		eq := strings.IndexByte(line[i:], '=')
		if eq < 0 {
			return "", nil, "", false
		}
		key := strings.TrimSpace(line[i : i+eq])
		i += eq + 1
		if i >= len(line) || line[i] != '"' {
			return "", nil, "", false
		}
		i++
		var val strings.Builder
		for i < len(line) && line[i] != '"' {
			c := line[i]
			if c == '\\' && i+1 < len(line) {
				i++
				switch line[i] {
				case 'n':
					c = '\n'
				default:
					c = line[i]
				}
			}
			val.WriteByte(c)
			i++
		}
		if i >= len(line) {
			return "", nil, "", false
		}
		i++ // closing quote
		labels[key] = val.String()
		if i < len(line) && line[i] == ',' {
			i++
		}
	}
	if i >= len(line) {
		return "", nil, "", false
	}
	return name, labels, strings.TrimSpace(line[i+1:]), true
}

func labelsMatch(have, want Labels) bool {
	for k, v := range want {
		if have[k] != v {
			return false
		}
	}
	return true
}

// Sub subtracts an earlier scrape of the same series, leaving the
// histogram of just the interval between the two — how reachbench
// isolates one run's server-side latency from the daemon's lifetime
// counters. Mismatched bounds (a different server version) return an
// error rather than nonsense.
func (h *ScrapedHist) Sub(prev *ScrapedHist) error {
	if len(prev.Bounds) != len(h.Bounds) {
		return fmt.Errorf("scrape bound mismatch: %d vs %d buckets", len(h.Bounds), len(prev.Bounds))
	}
	for i := range h.Cum {
		if h.Bounds[i] != prev.Bounds[i] {
			return fmt.Errorf("scrape bound mismatch at %d: %g vs %g", i, h.Bounds[i], prev.Bounds[i])
		}
		h.Cum[i] -= prev.Cum[i]
	}
	h.Count -= prev.Count
	h.Sum -= prev.Sum
	return nil
}

// Quantile returns the q-th quantile in seconds: the upper bound of the
// bucket holding the target rank (the bound below +Inf caps the answer,
// since +Inf carries no magnitude).
func (h *ScrapedHist) Quantile(q float64) float64 {
	if h.Count == 0 || len(h.Bounds) == 0 {
		return 0
	}
	rank := int64(q * float64(h.Count))
	if float64(rank) < q*float64(h.Count) || rank == 0 {
		rank++
	}
	for i, c := range h.Cum {
		if c >= rank {
			if math.IsInf(h.Bounds[i], 1) && i > 0 {
				return h.Bounds[i-1]
			}
			return h.Bounds[i]
		}
	}
	return h.Bounds[len(h.Bounds)-1]
}
