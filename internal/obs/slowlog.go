package obs

import (
	"encoding/json"
	"io"
	"sync"
	"sync/atomic"
	"time"
)

// SlowLog emits one JSON line per request that outlived a threshold —
// the outlier forensics channel. Histograms say *that* p99 moved; the
// slow-query log says *which* requests moved it, with their trace IDs
// and per-stage timings, greppable and machine-parseable.
//
// A nil *SlowLog is valid and disabled, so call sites never branch on
// configuration.
type SlowLog struct {
	threshold time.Duration
	emitted   atomic.Int64

	mu  sync.Mutex
	enc *json.Encoder
	w   io.Writer
}

// NewSlowLog logs requests slower than threshold to w as JSON lines.
// Returns nil (disabled) when threshold is zero/negative or w is nil.
func NewSlowLog(w io.Writer, threshold time.Duration) *SlowLog {
	if w == nil || threshold <= 0 {
		return nil
	}
	return &SlowLog{threshold: threshold, w: w, enc: json.NewEncoder(w)}
}

// Slow reports whether a request of duration d should be logged.
func (l *SlowLog) Slow(d time.Duration) bool {
	return l != nil && d >= l.threshold
}

// Emit writes one record as a JSON line. Callers gate with Slow first;
// Emit on a nil or disabled log is a no-op. Encoding happens under a
// mutex so concurrent slow requests never interleave bytes.
func (l *SlowLog) Emit(record any) {
	if l == nil {
		return
	}
	l.mu.Lock()
	err := l.enc.Encode(record)
	l.mu.Unlock()
	if err == nil {
		l.emitted.Add(1)
	}
}

// Emitted returns how many records were successfully written, exposed
// as a counter so a scrape can tell the log is actually flowing.
func (l *SlowLog) Emitted() int64 {
	if l == nil {
		return 0
	}
	return l.emitted.Load()
}
