package obs

import (
	"math"
	"math/rand/v2"
	"sort"
	"sync"
	"testing"
	"time"
)

// refQuantile is the reference implementation the histogram is checked
// against: sort everything and index — exact, unmergeable, O(n) memory.
func refQuantile(sorted []int64, q float64) int64 {
	rank := int64(q * float64(len(sorted)))
	if float64(rank) < q*float64(len(sorted)) || rank == 0 {
		rank++
	}
	return sorted[rank-1]
}

// maxRelErr is the histogram's guaranteed relative quantile error: one
// part in 2^subBits (bucket width / bucket value).
const maxRelErr = 1.0 / subCount

func TestBucketIndexRoundTrip(t *testing.T) {
	// Exhaustive near the linear/log seam, then randomized over the range.
	check := func(v int64) {
		t.Helper()
		i := bucketIndex(v)
		if i < 0 || i >= numBuckets {
			t.Fatalf("bucketIndex(%d) = %d out of range", v, i)
		}
		if u := bucketUpper(i); v > u {
			t.Fatalf("value %d above its bucket %d upper edge %d", v, i, u)
		}
		if i > 0 {
			if lowEdge := bucketUpper(i - 1); v <= lowEdge {
				t.Fatalf("value %d at or below previous bucket's upper edge %d (bucket %d)", v, lowEdge, i)
			}
		}
	}
	for v := int64(0); v < 4*subCount; v++ {
		check(v)
	}
	rng := rand.New(rand.NewPCG(1, 2))
	for i := 0; i < 100000; i++ {
		check(int64(rng.Uint64() >> 1))
	}
	check(math.MaxInt64)
	// Every bucket's upper edge must map back to that bucket, and the
	// next value to the next bucket.
	for i := 0; i < numBuckets; i++ {
		u := bucketUpper(i)
		if got := bucketIndex(u); got != i {
			t.Fatalf("bucketIndex(bucketUpper(%d)=%d) = %d", i, u, got)
		}
		if u < math.MaxInt64 && i+1 < numBuckets {
			if got := bucketIndex(u + 1); got != i+1 {
				t.Fatalf("bucketIndex(%d) = %d, want %d", u+1, got, i+1)
			}
		}
	}
}

func TestHistogramQuantilesVsReference(t *testing.T) {
	for _, tc := range []struct {
		name string
		gen  func(rng *rand.Rand, i int) int64
	}{
		{"uniform_wide", func(rng *rand.Rand, _ int) int64 { return int64(rng.Uint64N(50_000_000)) }},
		{"lognormal_latency", func(rng *rand.Rand, _ int) int64 {
			return int64(1000 * math.Exp(rng.NormFloat64()*1.5+3))
		}},
		{"bimodal_cache", func(rng *rand.Rand, i int) int64 {
			if i%10 < 9 {
				return 80 + int64(rng.Uint64N(40)) // cache hit ~100ns
			}
			return 900_000 + int64(rng.Uint64N(400_000)) // miss ~1ms
		}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			rng := rand.New(rand.NewPCG(7, 11))
			h := &Histogram{}
			vals := make([]int64, 50000)
			for i := range vals {
				v := tc.gen(rng, i)
				vals[i] = v
				h.Record(v)
			}
			sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
			snap := h.Snapshot()
			if snap.Count != int64(len(vals)) {
				t.Fatalf("count %d, want %d", snap.Count, len(vals))
			}
			if snap.Max != vals[len(vals)-1] {
				t.Fatalf("max %d, want exact %d", snap.Max, vals[len(vals)-1])
			}
			var sum int64
			for _, v := range vals {
				sum += v
			}
			if snap.Sum != sum {
				t.Fatalf("sum %d, want %d", snap.Sum, sum)
			}
			for _, q := range []float64{0.5, 0.9, 0.99, 0.999, 1.0} {
				got := snap.Quantile(q)
				ref := refQuantile(vals, q)
				if got < ref {
					t.Fatalf("q%g: histogram %d below reference %d — quantile must be an upper bound", q*100, got, ref)
				}
				if ref > 0 && float64(got-ref)/float64(ref) > maxRelErr {
					t.Fatalf("q%g: histogram %d vs reference %d exceeds relative error %g",
						q*100, got, ref, maxRelErr)
				}
			}
		})
	}
}

func TestHistogramLinearRegionExact(t *testing.T) {
	h := &Histogram{}
	for v := int64(0); v < subCount; v++ {
		h.Record(v)
	}
	snap := h.Snapshot()
	for _, q := range []float64{0.25, 0.5, 0.75, 1.0} {
		vals := make([]int64, subCount)
		for i := range vals {
			vals[i] = int64(i)
		}
		if got, ref := snap.Quantile(q), refQuantile(vals, q); got != ref {
			t.Fatalf("q%g: %d, want exact %d below 2^subBits", q*100, got, ref)
		}
	}
}

func TestHistogramMergeExact(t *testing.T) {
	// Merging two snapshots must equal one histogram fed both streams —
	// bucket for bucket, not just approximately.
	rng := rand.New(rand.NewPCG(3, 5))
	a, b, both := &Histogram{}, &Histogram{}, &Histogram{}
	for i := 0; i < 20000; i++ {
		v := int64(rng.Uint64N(1e9))
		both.Record(v)
		if i%2 == 0 {
			a.Record(v)
		} else {
			b.Record(v)
		}
	}
	merged := a.Snapshot()
	merged.Merge(b.Snapshot())
	want := both.Snapshot()
	if merged.Count != want.Count || merged.Sum != want.Sum || merged.Max != want.Max {
		t.Fatalf("merged count/sum/max = %d/%d/%d, want %d/%d/%d",
			merged.Count, merged.Sum, merged.Max, want.Count, want.Sum, want.Max)
	}
	for i := range merged.Buckets {
		if merged.Buckets[i] != want.Buckets[i] {
			t.Fatalf("bucket %d: merged %d, combined %d", i, merged.Buckets[i], want.Buckets[i])
		}
	}
}

func TestHistogramNegativeClampsAndEmpty(t *testing.T) {
	h := &Histogram{}
	if q := h.Snapshot().Quantile(0.5); q != 0 {
		t.Fatalf("empty histogram quantile = %d, want 0", q)
	}
	h.Record(-5)
	snap := h.Snapshot()
	if snap.Count != 1 || snap.Buckets[0] != 1 || snap.Sum != 0 {
		t.Fatalf("negative record: count=%d bucket0=%d sum=%d, want 1/1/0",
			snap.Count, snap.Buckets[0], snap.Sum)
	}
}

func TestHistogramConcurrentRecord(t *testing.T) {
	h := &Histogram{}
	const goroutines, per = 8, 10000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			rng := rand.New(rand.NewPCG(seed, 99))
			for i := 0; i < per; i++ {
				h.Record(int64(rng.Uint64N(1e7)))
			}
		}(uint64(g))
	}
	wg.Wait()
	if got := h.Snapshot().Count; got != goroutines*per {
		t.Fatalf("concurrent count %d, want %d", got, goroutines*per)
	}
}

func TestRecordSinceAndDuration(t *testing.T) {
	h := &Histogram{}
	h.RecordDuration(3 * time.Millisecond)
	d := h.RecordSince(time.Now().Add(-2 * time.Millisecond))
	if d < 2*time.Millisecond {
		t.Fatalf("RecordSince returned %v, want ≥ 2ms", d)
	}
	if got := h.Snapshot().Count; got != 2 {
		t.Fatalf("count %d, want 2", got)
	}
}

// BenchmarkHistogramRecord is the instrumentation-overhead gate: the
// serving layer records several histogram points per query, so Record
// must stay allocation-free and well under 50 ns.
func BenchmarkHistogramRecord(b *testing.B) {
	h := &Histogram{}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Record(int64(i) & 0xFFFFF)
	}
}

func BenchmarkHistogramSnapshotQuantile(b *testing.B) {
	h := &Histogram{}
	rng := rand.New(rand.NewPCG(1, 1))
	for i := 0; i < 100000; i++ {
		h.Record(int64(rng.Uint64N(1e9)))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		snap := h.Snapshot()
		_ = snap.Quantile(0.99)
	}
}

// TestRecordZeroAlloc pins the //reach:hotpath contract reachlint
// enforces statically: Record is on every request several times over
// and must never allocate.
func TestRecordZeroAlloc(t *testing.T) {
	h := &Histogram{}
	allocs := testing.AllocsPerRun(1000, func() {
		h.Record(17)
		h.Record(1 << 30)
		h.Record(-3)
	})
	if allocs != 0 {
		t.Fatalf("Record allocated %v times per run; the hot path must be allocation-free", allocs)
	}
}
