package obs

import (
	"context"
	"encoding/hex"
	"math/rand/v2"
	"net/http"
	"strconv"
	"strings"
	"time"
)

// Trace propagation headers. The router stamps every request with a
// trace ID; replicas echo it back and attach a Server-Timing-style
// per-stage breakdown, so one slow answer can be followed from the
// client through the router to the replica stage that cost the time.
const (
	// TraceHeader carries the request's trace ID end to end.
	TraceHeader = "X-Reach-Trace"
	// ServerTimingHeader carries the per-stage latency breakdown in
	// Server-Timing syntax: `stage;dur=1.234` (milliseconds), comma-
	// separated, in execution order.
	ServerTimingHeader = "X-Reach-Server-Timing"
)

// NewTraceID returns a 16-hex-char random trace ID. math/rand/v2's
// top-level generator is per-thread and seeded from the OS, which is
// plenty for correlating log lines — this is not a security token.
func NewTraceID() string {
	var b [8]byte
	v := rand.Uint64()
	for i := range b {
		b[i] = byte(v >> (8 * i))
	}
	return hex.EncodeToString(b[:])
}

// EnsureTrace extracts the request's trace ID, minting one if the
// client did not send one, and echoes it on the response so the caller
// can correlate. Returns the ID.
func EnsureTrace(w http.ResponseWriter, r *http.Request) string {
	id := r.Header.Get(TraceHeader)
	if id == "" {
		id = NewTraceID()
	}
	w.Header().Set(TraceHeader, id)
	return id
}

type traceKey struct{}

// WithTrace attaches a trace ID to ctx for downstream clients to
// forward.
func WithTrace(ctx context.Context, id string) context.Context {
	return context.WithValue(ctx, traceKey{}, id)
}

// TraceFrom returns the trace ID attached to ctx, or "".
func TraceFrom(ctx context.Context) string {
	id, _ := ctx.Value(traceKey{}).(string)
	return id
}

// Stage is one named timing in a Server-Timing breakdown.
type Stage struct {
	Name string
	D    time.Duration
}

// FormatServerTiming renders stages as Server-Timing syntax:
// `parse;dur=0.041, query;dur=1.234`. Durations are milliseconds with
// microsecond precision — the resolution that matters for a
// microsecond-query oracle.
func FormatServerTiming(stages []Stage) string {
	var b strings.Builder
	for i, s := range stages {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(s.Name)
		b.WriteString(";dur=")
		b.WriteString(strconv.FormatFloat(float64(s.D)/1e6, 'f', 3, 64))
	}
	return b.String()
}
