package obs

import (
	"bytes"
	"math/rand/v2"
	"testing"
	"time"
)

// The scrape parser must invert WritePrometheus closely enough that
// reachbench's server-side quantiles agree with the live histogram's
// own, up to export-bound coarsening.
func TestScrapeRoundTripQuantiles(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("reach_http_request_seconds", "latency", Labels{"endpoint": "batch"})
	rng := rand.New(rand.NewPCG(11, 13))
	for i := 0; i < 30000; i++ {
		// Latency-shaped: 50µs..5ms bulk with a 100ms tail.
		d := time.Duration(50_000 + rng.Uint64N(5_000_000))
		if i%100 == 0 {
			d = time.Duration(100_000_000 + rng.Uint64N(50_000_000))
		}
		h.RecordDuration(d)
	}
	var buf bytes.Buffer
	reg.WritePrometheus(&buf)
	scraped, err := ParseHistogram(bytes.NewReader(buf.Bytes()),
		"reach_http_request_seconds", Labels{"endpoint": "batch"})
	if err != nil {
		t.Fatal(err)
	}
	snap := h.Snapshot()
	if scraped.Count != snap.Count {
		t.Fatalf("scraped count %d, live %d", scraped.Count, snap.Count)
	}
	for _, q := range []float64{0.5, 0.99} {
		live := float64(snap.Quantile(q)) / 1e9
		got := scraped.Quantile(q)
		// The scraped answer sits on an export bound at or above the
		// fine-grained one, and export bounds are ≤2.5x apart.
		if got < live || got > live*2.5 {
			t.Fatalf("q%g: scraped %g vs live %g out of coarsening bounds", q*100, got, live)
		}
	}
}

func TestScrapeSubIsolatesInterval(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("m_seconds", "x", nil)
	scrape := func() *ScrapedHist {
		var buf bytes.Buffer
		reg.WritePrometheus(&buf)
		s, err := ParseHistogram(bytes.NewReader(buf.Bytes()), "m_seconds", nil)
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	for i := 0; i < 100; i++ {
		h.RecordDuration(time.Millisecond)
	}
	before := scrape()
	for i := 0; i < 40; i++ {
		h.RecordDuration(2 * time.Second)
	}
	after := scrape()
	if err := after.Sub(before); err != nil {
		t.Fatal(err)
	}
	if after.Count != 40 {
		t.Fatalf("interval count %d, want 40", after.Count)
	}
	// Every interval observation was 2s, so p50 must land on an export
	// bound ≥ 2s, not on the pre-existing 1ms bulk.
	if q := after.Quantile(0.5); q < 2 {
		t.Fatalf("interval p50 %g, want ≥ 2s", q)
	}
	if after.Sum < 79 || after.Sum > 81 {
		t.Fatalf("interval sum %g, want ~80s", after.Sum)
	}
}

func TestScrapeMissingMetric(t *testing.T) {
	if _, err := ParseHistogram(bytes.NewReader([]byte("other_total 5\n")), "m_seconds", nil); err == nil {
		t.Fatal("want error for missing metric")
	}
}

func TestSlowLogEmit(t *testing.T) {
	var buf bytes.Buffer
	l := NewSlowLog(&buf, 10*time.Millisecond)
	if l.Slow(5 * time.Millisecond) {
		t.Fatal("5ms must not be slow at a 10ms threshold")
	}
	if !l.Slow(10 * time.Millisecond) {
		t.Fatal("10ms must be slow at a 10ms threshold")
	}
	l.Emit(map[string]any{"trace": "abc", "duration_ms": 12.5})
	if l.Emitted() != 1 {
		t.Fatalf("emitted %d, want 1", l.Emitted())
	}
	if got := buf.String(); got != `{"duration_ms":12.5,"trace":"abc"}`+"\n" {
		t.Fatalf("unexpected JSON line: %q", got)
	}
	var nilLog *SlowLog
	if nilLog.Slow(time.Hour) || nilLog.Emitted() != 0 {
		t.Fatal("nil SlowLog must be disabled")
	}
	nilLog.Emit("ignored")
	if NewSlowLog(nil, time.Second) != nil || NewSlowLog(&buf, 0) != nil {
		t.Fatal("nil writer or zero threshold must disable the log")
	}
}

func TestTraceHelpers(t *testing.T) {
	a, b := NewTraceID(), NewTraceID()
	if len(a) != 16 || len(b) != 16 || a == b {
		t.Fatalf("trace IDs: %q %q", a, b)
	}
	ctx := WithTrace(t.Context(), a)
	if TraceFrom(ctx) != a {
		t.Fatal("trace did not round-trip through context")
	}
	if TraceFrom(t.Context()) != "" {
		t.Fatal("empty context must have no trace")
	}
	st := FormatServerTiming([]Stage{
		{Name: "cache", D: 1500 * time.Microsecond},
		{Name: "probe", D: 42 * time.Microsecond},
	})
	if st != "cache;dur=1.500, probe;dur=0.042" {
		t.Fatalf("server timing: %q", st)
	}
}
