package obs

import (
	"net/http"
	"net/http/pprof"
	"runtime"
	"runtime/debug"
	"sync"
)

// Build identifies the running binary: which Go built it and which VCS
// revision it came from. Surfaced on /v1/healthz and as a build_info
// gauge so a fleet operator can spot a replica running stale code.
type Build struct {
	GoVersion string
	Revision  string // short VCS revision, "unknown" outside a VCS build
	Modified  bool   // the working tree was dirty at build time
}

var (
	buildOnce sync.Once
	buildInfo Build
)

// BuildInfo reads the binary's embedded build metadata once and caches
// it; /v1/healthz is probed every second by fleet routers.
func BuildInfo() Build {
	buildOnce.Do(func() {
		buildInfo = Build{GoVersion: runtime.Version(), Revision: "unknown"}
		bi, ok := debug.ReadBuildInfo()
		if !ok {
			return
		}
		for _, s := range bi.Settings {
			switch s.Key {
			case "vcs.revision":
				rev := s.Value
				if len(rev) > 12 {
					rev = rev[:12]
				}
				buildInfo.Revision = rev
			case "vcs.modified":
				buildInfo.Modified = s.Value == "true"
			}
		}
	})
	return buildInfo
}

// RegisterPprof mounts net/http/pprof's handlers on mux under
// /debug/pprof/, for muxes that are not http.DefaultServeMux. Gated
// behind a -pprof flag in the binaries: profiling endpoints expose
// internals and cost CPU while sampling, so they are opt-in.
func RegisterPprof(mux *http.ServeMux) {
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
}
