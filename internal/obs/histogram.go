// Package obs is the dependency-free observability core shared by reachd
// and reachrouter: lock-free counters, gauges and log-linear latency
// histograms with mergeable snapshots, a metric registry with Prometheus
// text-format exposition, trace-ID propagation helpers, a structured
// slow-query log, and pprof registration.
//
// The paper's claims are latency claims — hop labeling wins because a
// query costs microseconds — so the serving stack must be able to say
// where nanoseconds go without distorting them. Everything on the hot
// path here is allocation-free and a handful of uncontended atomics.
package obs

import (
	"math/bits"
	"sync/atomic"
	"time"
)

// The histogram is log-linear (HDR-style): values below 2^subBits get
// one bucket each (exact); above that, every power-of-two octave splits
// into 2^subBits linear sub-buckets, so any recorded value lands in a
// bucket whose width is at most value/2^subBits — a guaranteed relative
// quantile error of 1/32 with subBits=5, over the full int64 range,
// from a fixed 1888-slot array. No allocation, no locking, no dynamic
// resizing: Record is three uncontended atomic ops.
const (
	subBits    = 5
	subCount   = 1 << subBits
	subMask    = subCount - 1
	numBuckets = (64 - subBits) << subBits
)

// Histogram is a concurrent log-linear histogram of int64 values
// (conventionally nanoseconds). The zero value is NOT usable on its own
// only because histograms are meant to live in a Registry; structurally
// the zero value is ready to Record into.
type Histogram struct {
	sum     atomic.Int64
	max     atomic.Int64
	buckets [numBuckets]atomic.Int64
}

// bucketIndex maps a non-negative value to its bucket.
func bucketIndex(v int64) int {
	if v < subCount {
		return int(v)
	}
	exp := bits.Len64(uint64(v)) - 1 // v ∈ [2^exp, 2^(exp+1))
	return int(uint64(exp-subBits+1)<<subBits | (uint64(v)>>uint(exp-subBits))&subMask)
}

// bucketUpper is the largest value that maps to bucket i — the bucket's
// inclusive upper edge, used for quantiles and exposition bounds.
func bucketUpper(i int) int64 {
	if i < subCount {
		return int64(i)
	}
	exp := i>>subBits + subBits - 1
	return (int64(subCount+i&subMask)+1)<<uint(exp-subBits) - 1
}

// Record adds one observation. Negative values clamp to zero. It is
// safe for any number of concurrent callers and never allocates.
//
//reach:hotpath
func (h *Histogram) Record(v int64) {
	if v < 0 {
		v = 0
	}
	h.buckets[bucketIndex(v)].Add(1)
	h.sum.Add(v)
	for {
		cur := h.max.Load()
		if v <= cur || h.max.CompareAndSwap(cur, v) {
			return
		}
	}
}

// RecordDuration records d in nanoseconds.
func (h *Histogram) RecordDuration(d time.Duration) { h.Record(int64(d)) }

// RecordSince records the time elapsed since t and returns it, so call
// sites can time a stage and keep the measured value in one expression.
func (h *Histogram) RecordSince(t time.Time) time.Duration {
	d := time.Since(t)
	h.Record(int64(d))
	return d
}

// HistSnapshot is a point-in-time copy of a Histogram, safe to read,
// merge and quantile without further coordination.
type HistSnapshot struct {
	Count   int64
	Sum     int64
	Max     int64
	Buckets []int64 // len numBuckets, same indexing as the live histogram
}

// Snapshot copies the histogram's state. Concurrent Records during the
// copy may land in either the snapshot or the next one — each bucket is
// read atomically, so the snapshot is always internally consistent
// enough for monitoring (counts never tear).
func (h *Histogram) Snapshot() *HistSnapshot {
	s := &HistSnapshot{
		Sum:     h.sum.Load(),
		Max:     h.max.Load(),
		Buckets: make([]int64, numBuckets),
	}
	for i := range h.buckets {
		if n := h.buckets[i].Load(); n != 0 {
			s.Buckets[i] = n
			s.Count += n
		}
	}
	return s
}

// Merge folds other into s. Snapshots from different histograms (or
// different processes, decoded from exposition) merge exactly: buckets
// add, max takes the larger.
func (s *HistSnapshot) Merge(other *HistSnapshot) {
	s.Count += other.Count
	s.Sum += other.Sum
	if other.Max > s.Max {
		s.Max = other.Max
	}
	for i, n := range other.Buckets {
		s.Buckets[i] += n
	}
}

// Quantile returns the value at quantile q ∈ [0, 1]: an upper bound on
// the q-th smallest recorded value, within a relative error of
// 1/2^subBits (exact below 2^subBits). q ≥ 1 returns the exact maximum;
// an empty snapshot returns 0.
func (s *HistSnapshot) Quantile(q float64) int64 {
	if s.Count == 0 {
		return 0
	}
	if q >= 1 {
		return s.Max
	}
	if q < 0 {
		q = 0
	}
	// Rank of the target observation, 1-based: ceil(q * count), at least 1.
	rank := int64(q * float64(s.Count))
	if float64(rank) < q*float64(s.Count) || rank == 0 {
		rank++
	}
	var cum int64
	for i, n := range s.Buckets {
		if n == 0 {
			continue
		}
		cum += n
		if cum >= rank {
			u := bucketUpper(i)
			if u > s.Max {
				return s.Max // the top occupied bucket can't exceed the exact max
			}
			return u
		}
	}
	return s.Max
}

// Mean returns the average recorded value, 0 when empty.
func (s *HistSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.Sum) / float64(s.Count)
}
