package pathtree

import (
	"fmt"

	"repro/internal/blockio"
	"repro/internal/graph"
	"repro/internal/index"
)

func init() {
	index.Register(index.Descriptor{
		Tag:  "PT",
		Rank: 5,
		Doc:  "path-decomposition transitive-closure compression (Path-Tree lineage)",
		Build: func(g *graph.Graph, opts index.BuildOptions) (index.Index, error) {
			return Build(g, Options{MaxEntries: opts.MaxPTEntries})
		},
		Encode: func(idx index.Index, w *blockio.Writer) error {
			pt, ok := idx.(*PathTree)
			if !ok {
				return fmt.Errorf("pathtree: codec got %T", idx)
			}
			w.Uint64(uint64(pt.numPaths))
			w.Uint32s(pt.pathOf)
			w.Uint32s(pt.posOf)
			w.Uint32s(pt.off)
			w.Uint32s(pt.paths)
			w.Uint32s(pt.minPo)
			return w.Err()
		},
		Decode: func(g *graph.Graph, r *blockio.Reader, _ index.BuildOptions) (index.Index, error) {
			n := g.NumVertices()
			numPaths, err := r.Uint64()
			if err != nil {
				return nil, err
			}
			if numPaths > uint64(n) {
				return nil, fmt.Errorf("pathtree: %d paths for %d vertices", numPaths, n)
			}
			pt := &PathTree{numPaths: int(numPaths)}
			if pt.pathOf, err = r.Uint32s(); err != nil {
				return nil, err
			}
			if pt.posOf, err = r.Uint32s(); err != nil {
				return nil, err
			}
			if pt.off, err = r.Uint32s(); err != nil {
				return nil, err
			}
			if pt.paths, err = r.Uint32s(); err != nil {
				return nil, err
			}
			if pt.minPo, err = r.Uint32s(); err != nil {
				return nil, err
			}
			if len(pt.pathOf) != n || len(pt.posOf) != n {
				return nil, fmt.Errorf("pathtree: vertex arrays have %d/%d entries for %d vertices", len(pt.pathOf), len(pt.posOf), n)
			}
			if len(pt.off) != n+1 || pt.off[0] != 0 {
				return nil, fmt.Errorf("pathtree: reach offsets have %d entries for %d vertices", len(pt.off), n)
			}
			for v := 0; v < n; v++ {
				if pt.off[v] > pt.off[v+1] {
					return nil, fmt.Errorf("pathtree: reach offsets not monotone at %d", v)
				}
			}
			if int(pt.off[n]) != len(pt.paths) || len(pt.minPo) != len(pt.paths) {
				return nil, fmt.Errorf("pathtree: reach offsets cover %d entries but %d/%d present", pt.off[n], len(pt.paths), len(pt.minPo))
			}
			return pt, nil
		},
	})
}
