// Package pathtree implements the "PT" baseline: transitive-closure
// compression over a path decomposition of the DAG, in the lineage of
// Jagadish's chain cover (TODS 1990) and Jin et al.'s Path-Tree
// (SIGMOD 2008), which generalizes it.
//
// The DAG is greedily decomposed into vertex-disjoint paths; because a
// path's edges all point forward, "u reaches position i of path P" implies
// u reaches every later position too. TC(u) therefore compresses to one
// (path, minimum position) pair per reachable path, built bottom-up in
// reverse topological order by k-way merging successor lists. A query is a
// binary search for path(v) in u's list plus one position comparison —
// the O(log #paths) lookup that makes PT the fastest method on the paper's
// small graphs (Table 2), while the per-vertex lists of up to #paths
// entries are exactly what makes it run out of memory on the large ones
// (Tables 5-7).
//
// Substitution note (documented in DESIGN.md): the original Path-Tree also
// overlays a spanning tree on the path-level graph to merge entries of
// tree-related paths. We keep the decomposition + compressed-closure core,
// which preserves the query/size behaviour the evaluation measures.
package pathtree

import (
	"fmt"
	"sort"

	"repro/internal/graph"
)

// Options bounds construction so the harness can reproduce the paper's
// "—" entries for PT on large graphs.
type Options struct {
	// MaxEntries aborts construction if the total number of (path, pos)
	// entries exceeds this bound (0 = 400 million, ≈ 3.2 GB).
	MaxEntries int64
}

func (o Options) withDefaults() Options {
	if o.MaxEntries == 0 {
		o.MaxEntries = 400_000_000
	}
	return o
}

// ErrTooLarge reports that the compressed closure exceeded the memory
// budget — the equivalent of the paper's "—" entries for PT.
var ErrTooLarge = fmt.Errorf("pathtree: compressed closure exceeds budget")

// PathTree is the path-decomposition reachability index.
type PathTree struct {
	// pathOf[v], posOf[v]: v's path ID and position along it.
	pathOf []uint32
	posOf  []uint32
	// CSR of per-vertex reach lists, sorted by path ID.
	off      []uint32
	paths    []uint32
	minPo    []uint32
	numPaths int
}

// Build constructs the PT index for DAG g.
func Build(g *graph.Graph, opts Options) (*PathTree, error) {
	opts = opts.withDefaults()
	n := g.NumVertices()
	order, ok := graph.TopoOrder(g)
	if !ok {
		return nil, fmt.Errorf("pathtree: input must be a DAG")
	}

	pt := &PathTree{pathOf: make([]uint32, n), posOf: make([]uint32, n)}
	pt.decompose(g, order)

	// entry is one (path, minPos) element of a reach list.
	type entry struct {
		path, pos uint32
	}
	lists := make([][]entry, n)
	var total int64

	// Reverse topological order: successors' lists are final first.
	for i := n - 1; i >= 0; i-- {
		v := order[i]
		// Merge successor lists plus v's own (path, pos).
		merged := map[uint32]uint32{pt.pathOf[v]: pt.posOf[v]}
		for _, w := range g.Out(v) {
			for _, e := range lists[w] {
				if cur, ok := merged[e.path]; !ok || e.pos < cur {
					merged[e.path] = e.pos
				}
			}
		}
		list := make([]entry, 0, len(merged))
		for p, pos := range merged {
			list = append(list, entry{path: p, pos: pos})
		}
		sort.Slice(list, func(a, b int) bool { return list[a].path < list[b].path })
		lists[v] = list
		total += int64(len(list))
		if total > opts.MaxEntries {
			return nil, ErrTooLarge
		}
	}

	// Freeze to CSR.
	pt.off = make([]uint32, n+1)
	pt.paths = make([]uint32, 0, total)
	pt.minPo = make([]uint32, 0, total)
	for v := 0; v < n; v++ {
		for _, e := range lists[v] {
			pt.paths = append(pt.paths, e.path)
			pt.minPo = append(pt.minPo, e.pos)
		}
		pt.off[v+1] = uint32(len(pt.paths))
		lists[v] = nil
	}
	return pt, nil
}

// decompose greedily splits the DAG into vertex-disjoint paths: process
// vertices in topological order; each unassigned vertex starts a path that
// is extended along unassigned out-neighbors (preferring the neighbor with
// the fewest unassigned in-edges, which empirically yields fewer paths).
func (pt *PathTree) decompose(g *graph.Graph, order []graph.Vertex) {
	n := g.NumVertices()
	assigned := make([]bool, n)
	for i := range pt.pathOf {
		pt.pathOf[i] = ^uint32(0)
	}
	nextPath := uint32(0)
	for _, start := range order {
		if assigned[start] {
			continue
		}
		pos := uint32(0)
		v := start
		for {
			assigned[v] = true
			pt.pathOf[v] = nextPath
			pt.posOf[v] = pos
			pos++
			// Extend: pick the unassigned out-neighbor with minimal
			// in-degree (a cheap head-off against stranding vertices that
			// only this path could absorb).
			next := graph.Vertex(0)
			found := false
			bestDeg := 1 << 30
			for _, w := range g.Out(v) {
				if assigned[w] {
					continue
				}
				if d := g.InDegree(w); d < bestDeg {
					bestDeg = d
					next = w
					found = true
				}
			}
			if !found {
				break
			}
			v = next
		}
		nextPath++
	}
	pt.numPaths = int(nextPath)
}

// Name implements index.Index.
func (pt *PathTree) Name() string { return "PT" }

// Reachable reports u -> v by binary search for v's path in u's list.
func (pt *PathTree) Reachable(u, v uint32) bool {
	if u == v {
		return true
	}
	p := pt.pathOf[v]
	lo, hi := pt.off[u], pt.off[u+1]
	span := pt.paths[lo:hi]
	i := sort.Search(len(span), func(i int) bool { return span[i] >= p })
	if i >= len(span) || span[i] != p {
		return false
	}
	return pt.minPo[lo+uint32(i)] <= pt.posOf[v]
}

// NumPaths returns the size of the path decomposition.
func (pt *PathTree) NumPaths() int { return pt.numPaths }

// SizeInts counts two integers per reach entry plus the per-vertex
// path/position arrays.
func (pt *PathTree) SizeInts() int64 {
	return int64(len(pt.paths))*2 + int64(len(pt.pathOf))*2
}
