package pathtree

import (
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/testutil"
)

func TestPathTreeExhaustive(t *testing.T) {
	for name, g := range testutil.Families(53) {
		pt, err := Build(g, Options{})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		testutil.CheckExhaustive(t, name, g, pt)
	}
}

func TestDecompositionIsPartitionOfPaths(t *testing.T) {
	g := gen.CitationDAG(400, 3, 0.5, 3)
	pt, err := Build(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Each (path, pos) must be unique and positions contiguous from 0.
	maxPos := map[uint32]uint32{}
	seen := map[[2]uint32]bool{}
	for v := 0; v < g.NumVertices(); v++ {
		key := [2]uint32{pt.pathOf[v], pt.posOf[v]}
		if seen[key] {
			t.Fatalf("duplicate path slot %v", key)
		}
		seen[key] = true
		if cur, ok := maxPos[pt.pathOf[v]]; !ok || pt.posOf[v] > cur {
			maxPos[pt.pathOf[v]] = pt.posOf[v]
		}
	}
	if len(maxPos) != pt.NumPaths() {
		t.Fatalf("NumPaths = %d but %d distinct path IDs", pt.NumPaths(), len(maxPos))
	}
	// Consecutive positions on a path must be connected by an edge.
	onPath := make(map[[2]uint32]graph.Vertex)
	for v := 0; v < g.NumVertices(); v++ {
		onPath[[2]uint32{pt.pathOf[v], pt.posOf[v]}] = graph.Vertex(v)
	}
	for v := 0; v < g.NumVertices(); v++ {
		if pt.posOf[v] == 0 {
			continue
		}
		prev := onPath[[2]uint32{pt.pathOf[v], pt.posOf[v] - 1}]
		if !g.HasEdge(prev, graph.Vertex(v)) {
			t.Fatalf("path %d: no edge between consecutive members %d -> %d",
				pt.pathOf[v], prev, v)
		}
	}
}

func TestPathTreeChainFriendly(t *testing.T) {
	// A graph made of chains decomposes into few paths, and index size is
	// then near-linear — PT's sweet spot.
	g := gen.ChainDAG(3000, 8, 0.05, 6)
	pt, err := Build(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if pt.NumPaths() > 400 {
		t.Errorf("chain graph decomposed into %d paths", pt.NumPaths())
	}
	testutil.CheckRandom(t, "chain3k", g, pt, 600, 7)
}

func TestPathTreeBudget(t *testing.T) {
	g := gen.CitationDAG(2000, 4, 0.5, 8)
	if _, err := Build(g, Options{MaxEntries: 100}); err != ErrTooLarge {
		t.Fatalf("budget not enforced: %v", err)
	}
}

func TestPathTreeRejectsCycle(t *testing.T) {
	g := graph.MustFromEdges(2, [][2]graph.Vertex{{0, 1}, {1, 0}})
	if _, err := Build(g, Options{}); err == nil {
		t.Fatal("cycle accepted")
	}
}
