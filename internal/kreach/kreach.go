// Package kreach implements K-Reach (Cheng et al., PVLDB 2012) specialized
// to basic reachability (k = ∞), the paper's "KR" baseline: compute a
// vertex cover, materialize pairwise reachability among cover vertices,
// and answer queries through at most one cover hop on each side. Because
// the cover's pairwise closure is materialized as bitsets, the index is
// fast but its size grows quadratically in the cover — the reason KR shows
// "—" on every large graph in Tables 5-7.
package kreach

import (
	"container/heap"
	"fmt"
	"math"

	"repro/internal/bitset"
	"repro/internal/graph"
)

// KReach is the K-Reach (k = ∞) index.
type KReach struct {
	g *graph.Graph
	// coverID[v] is v's dense index within the cover, or -1.
	coverID []int32
	cover   []graph.Vertex
	// reach[i] holds the cover vertices reachable from cover vertex i
	// (itself included), as a bitset over cover indices.
	reach []*bitset.Bitset
}

// Options bounds the cover-closure materialization so the harness can
// reproduce the paper's "—" entries for KR on large graphs.
type Options struct {
	// MaxCoverBits aborts when |C|^2 bits exceed this budget
	// (0 = 4 billion bits ≈ 512 MB).
	MaxCoverBits int64
}

// ErrTooLarge reports that the vertex-cover closure exceeds the budget.
var ErrTooLarge = fmt.Errorf("kreach: cover closure exceeds budget")

// Build constructs the K-Reach index for DAG g.
func Build(g *graph.Graph) *KReach {
	k, err := BuildWithOptions(g, Options{MaxCoverBits: int64(math.MaxInt64)})
	if err != nil {
		panic(err) // unreachable with an unlimited budget
	}
	return k
}

// BuildWithOptions constructs the index under a memory budget.
func BuildWithOptions(g *graph.Graph, opts Options) (*KReach, error) {
	if opts.MaxCoverBits == 0 {
		opts.MaxCoverBits = 4_000_000_000
	}
	k := &KReach{g: g}
	k.selectCover()
	c := int64(len(k.cover))
	if c*c > opts.MaxCoverBits {
		return nil, ErrTooLarge
	}
	k.materializeCoverClosure()
	return k, nil
}

// degItem is a lazy-heap entry for greedy vertex cover.
type degItem struct {
	v   graph.Vertex
	deg int32
}

type degHeap []degItem

func (h degHeap) Len() int            { return len(h) }
func (h degHeap) Less(i, j int) bool  { return h[i].deg > h[j].deg }
func (h degHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *degHeap) Push(x interface{}) { *h = append(*h, x.(degItem)) }
func (h *degHeap) Pop() interface{} {
	old := *h
	it := old[len(old)-1]
	*h = old[:len(old)-1]
	return it
}

// selectCover computes a greedy vertex cover: repeatedly take the vertex
// covering the most uncovered edges (lazy-decrement heap).
func (k *KReach) selectCover() {
	g := k.g
	n := g.NumVertices()
	k.coverID = make([]int32, n)
	for i := range k.coverID {
		k.coverID[i] = -1
	}
	uncovered := make([]int32, n) // uncovered incident edges per vertex
	for v := 0; v < n; v++ {
		uncovered[v] = int32(g.OutDegree(graph.Vertex(v)) + g.InDegree(graph.Vertex(v)))
	}
	inCover := make([]bool, n)
	h := make(degHeap, 0, n)
	for v := 0; v < n; v++ {
		if uncovered[v] > 0 {
			h = append(h, degItem{v: graph.Vertex(v), deg: uncovered[v]})
		}
	}
	heap.Init(&h)
	remaining := g.NumEdges()
	for remaining > 0 && h.Len() > 0 {
		top := heap.Pop(&h).(degItem)
		if inCover[top.v] {
			continue
		}
		if top.deg != uncovered[top.v] {
			if uncovered[top.v] > 0 {
				top.deg = uncovered[top.v]
				heap.Push(&h, top)
			}
			continue
		}
		if top.deg == 0 {
			break
		}
		inCover[top.v] = true
		// Each incident edge with a not-in-cover partner becomes covered.
		for _, w := range g.Out(top.v) {
			if !inCover[w] {
				remaining--
				uncovered[w]--
			}
		}
		for _, w := range g.In(top.v) {
			if !inCover[w] {
				remaining--
				uncovered[w]--
			}
		}
		uncovered[top.v] = 0
	}
	for v := 0; v < n; v++ {
		if inCover[v] {
			k.coverID[v] = int32(len(k.cover))
			k.cover = append(k.cover, graph.Vertex(v))
		}
	}
}

// materializeCoverClosure BFSes from every cover vertex, recording which
// cover vertices it reaches.
func (k *KReach) materializeCoverClosure() {
	c := len(k.cover)
	k.reach = make([]*bitset.Bitset, c)
	vst := graph.NewVisitor(k.g.NumVertices())
	for i, src := range k.cover {
		b := bitset.New(c)
		vst.BFS(k.g, src, graph.Forward, func(w graph.Vertex, _ int32) bool {
			if id := k.coverID[w]; id >= 0 {
				b.Set(int(id))
			}
			return true
		})
		k.reach[i] = b
	}
}

// coverReach answers reachability between two cover vertices.
func (k *KReach) coverReach(a, b int32) bool {
	return k.reach[a].Get(int(b))
}

// Name implements index.Index.
func (k *KReach) Name() string { return "KR" }

// Reachable answers u -> v via the cover. Every edge has an endpoint in
// the cover, so if u is not covered all its out-neighbors are, and if v is
// not covered all its in-neighbors are; any u-v path of length ≥ 2
// therefore passes through cover vertices adjacent to u and v.
func (k *KReach) Reachable(u, v uint32) bool {
	if u == v {
		return true
	}
	if k.g.HasEdge(u, v) {
		return true
	}
	var entries, exits []int32
	if id := k.coverID[u]; id >= 0 {
		entries = append(entries, id)
	} else {
		for _, w := range k.g.Out(u) {
			entries = append(entries, k.coverID[w]) // w must be covered
		}
	}
	if id := k.coverID[v]; id >= 0 {
		exits = append(exits, id)
	} else {
		for _, w := range k.g.In(v) {
			exits = append(exits, k.coverID[w])
		}
	}
	for _, a := range entries {
		for _, b := range exits {
			if k.coverReach(a, b) {
				return true
			}
		}
	}
	return false
}

// CoverSize returns |C|, the vertex-cover size.
func (k *KReach) CoverSize() int { return len(k.cover) }

// SizeInts counts the cover closure bitsets (two 32-bit integers per
// 64-bit word) plus the cover-ID array.
func (k *KReach) SizeInts() int64 {
	total := int64(len(k.coverID))
	for _, b := range k.reach {
		total += int64(len(b.Words())) * 2
	}
	return total
}
