package kreach

import (
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/testutil"
)

func TestKReachExhaustive(t *testing.T) {
	for name, g := range testutil.Families(29) {
		testutil.CheckExhaustive(t, name, g, Build(g))
	}
}

func TestCoverIsVertexCover(t *testing.T) {
	for name, g := range testutil.Families(31) {
		k := Build(g)
		g.Edges(func(u, v graph.Vertex) bool {
			if k.coverID[u] < 0 && k.coverID[v] < 0 {
				t.Errorf("%s: edge (%d,%d) uncovered", name, u, v)
			}
			return true
		})
	}
}

func TestCoverSizeReasonable(t *testing.T) {
	// Greedy cover should not exceed the trivial bound (all non-isolated
	// vertices) and should beat it substantially on stars.
	b := graph.NewBuilder(51)
	for i := 1; i <= 50; i++ {
		b.AddEdge(0, graph.Vertex(i))
	}
	g := b.MustBuild()
	k := Build(g)
	if k.CoverSize() != 1 {
		t.Errorf("star cover size = %d, want 1", k.CoverSize())
	}
}

func TestKReachQuadraticSize(t *testing.T) {
	// The cover closure is |C|^2 bits: confirm superlinear growth — the
	// reason KR fails on all large graphs in the paper.
	small := Build(gen.UniformDAG(500, 1500, 3))
	large := Build(gen.UniformDAG(2000, 6000, 3))
	ratio := float64(large.SizeInts()) / float64(small.SizeInts())
	if ratio < 6 { // 4x vertices should give ≳ 16x bitset growth; allow slack
		t.Errorf("size grew only %.1fx for 4x vertices (%d -> %d ints)",
			ratio, small.SizeInts(), large.SizeInts())
	}
}

func TestKReachLargerRandom(t *testing.T) {
	g := gen.XMLDAG(2500, 5, 0.2, 12)
	testutil.CheckRandom(t, "xml", g, Build(g), 600, 4)
}

func TestKReachBudgetGuard(t *testing.T) {
	g := gen.UniformDAG(1000, 3000, 7)
	if _, err := BuildWithOptions(g, Options{MaxCoverBits: 100}); err != ErrTooLarge {
		t.Fatalf("budget not enforced: %v", err)
	}
	k, err := BuildWithOptions(g, Options{})
	if err != nil {
		t.Fatalf("default budget rejected a small graph: %v", err)
	}
	testutil.CheckRandom(t, "uniform1k", g, k, 400, 8)
}
