package kreach

import (
	"fmt"

	"repro/internal/bitset"
	"repro/internal/blockio"
	"repro/internal/graph"
	"repro/internal/index"
)

func init() {
	index.Register(index.Descriptor{
		Tag:  "KR",
		Rank: 6,
		Doc:  "K-Reach (k = ∞): vertex cover + materialized cover closure",
		Build: func(g *graph.Graph, opts index.BuildOptions) (index.Index, error) {
			return BuildWithOptions(g, Options{MaxCoverBits: opts.MaxCoverBits})
		},
		Encode: func(idx index.Index, w *blockio.Writer) error {
			k, ok := idx.(*KReach)
			if !ok {
				return fmt.Errorf("kreach: codec got %T", idx)
			}
			w.Int32s(k.coverID)
			w.Uint32s(k.cover)
			c := len(k.cover)
			flat := make([]uint64, 0, c*((c+63)/64))
			for _, b := range k.reach {
				flat = append(flat, b.Words()...)
			}
			w.Uint64s(flat)
			return w.Err()
		},
		Decode: func(g *graph.Graph, r *blockio.Reader, _ index.BuildOptions) (index.Index, error) {
			n := g.NumVertices()
			coverID, err := r.Int32s()
			if err != nil {
				return nil, err
			}
			if len(coverID) != n {
				return nil, fmt.Errorf("kreach: cover-ID array has %d entries for %d vertices", len(coverID), n)
			}
			cover, err := r.Uint32s()
			if err != nil {
				return nil, err
			}
			c := len(cover)
			if c > n {
				return nil, fmt.Errorf("kreach: cover of %d vertices exceeds graph size %d", c, n)
			}
			for v, id := range coverID {
				if id < -1 || int(id) >= c {
					return nil, fmt.Errorf("kreach: cover ID %d of vertex %d out of range [-1, %d)", id, v, c)
				}
			}
			flat, err := r.Uint64s()
			if err != nil {
				return nil, err
			}
			wps := (c + 63) / 64
			if len(flat) != c*wps {
				return nil, fmt.Errorf("kreach: closure has %d words, want %d", len(flat), c*wps)
			}
			k := &KReach{g: g, coverID: coverID, cover: cover, reach: make([]*bitset.Bitset, c)}
			for i := 0; i < c; i++ {
				k.reach[i] = bitset.FromWords(flat[i*wps:(i+1)*wps], c)
			}
			// The query path relies on the cover property — every edge has a
			// covered endpoint — to look up coverID of a neighbor without
			// checking for -1. Verify it holds before trusting the file.
			violated := false
			g.Edges(func(u, v graph.Vertex) bool {
				if coverID[u] < 0 && coverID[v] < 0 {
					violated = true
					return false
				}
				return true
			})
			if violated {
				return nil, fmt.Errorf("kreach: snapshot cover does not cover every edge of the graph")
			}
			return k, nil
		},
	})
}
