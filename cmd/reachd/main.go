// Command reachd serves reachability queries over HTTP: it loads an
// edge-list graph, builds (or snapshot-loads) a reachability index, and
// answers single, batch and stats requests through a sharded query cache
// and a worker pool.
//
// Usage:
//
//	reachd -graph g.txt [-method DL] [-addr :8080] [-snapshot dl.labels]
//	       [-workers N] [-cache-capacity 1048576] [-cache-shards 64]
//
// If -snapshot names an existing file, the labeling is loaded from it and
// the indexing pass is skipped (labeling methods only: DL, HL, 2HOP);
// otherwise the index is built and, when -snapshot is set, written there
// so the next start is instant.
//
// Endpoints:
//
//	GET  /v1/healthz
//	GET  /v1/reachable?u=U&v=V
//	POST /v1/batch          {"pairs": [[u,v], ...]}
//	GET  /v1/stats
//
// Vertex IDs in queries are the original IDs from the edge-list file —
// the same IDs reachcli answers with for the same graph.
package main

import (
	"bufio"
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	reach "repro"
	"repro/internal/server"
)

func main() {
	var (
		graphPath = flag.String("graph", "", "edge-list file (required)")
		method    = flag.String("method", "DL", "index method (DL, HL, GRAIL, ...)")
		addr      = flag.String("addr", ":8080", "listen address")
		snapshot  = flag.String("snapshot", "", "labeling snapshot path: load if present, else build and save")
		workers   = flag.Int("workers", 0, "batch worker pool size (default GOMAXPROCS)")
		cacheCap  = flag.Int("cache-capacity", server.DefaultCacheCapacity, "query cache entries (negative disables)")
		shards    = flag.Int("cache-shards", server.DefaultCacheShards, "query cache shard count")
		maxBatch  = flag.Int("max-batch", 0, "max pairs per /v1/batch request (default 1<<20)")
	)
	flag.Parse()
	if err := run(*graphPath, *method, *addr, *snapshot, server.Config{
		Workers:       *workers,
		CacheShards:   *shards,
		CacheCapacity: *cacheCap,
		MaxBatchPairs: *maxBatch,
	}); err != nil {
		fmt.Fprintf(os.Stderr, "reachd: %v\n", err)
		os.Exit(1)
	}
}

func run(graphPath, method, addr, snapshot string, cfg server.Config) error {
	if graphPath == "" {
		return fmt.Errorf("-graph is required")
	}
	f, err := os.Open(graphPath)
	if err != nil {
		return err
	}
	g, orig, err := reach.ReadGraph(f)
	f.Close()
	if err != nil {
		return err
	}
	cfg.OrigIDs = orig // HTTP API speaks the file's own vertex IDs
	log.Printf("graph: %d vertices (%d after condensation), %d DAG edges",
		g.NumVertices(), g.DAGVertices(), g.DAGEdges())

	oracle, err := loadOrBuild(g, reach.Method(method), snapshot)
	if err != nil {
		return err
	}

	s := server.New(g, oracle, cfg)
	httpSrv := &http.Server{Addr: addr, Handler: s.Handler()}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() {
		log.Printf("serving %s index on %s", oracle.Method(), addr)
		errc <- httpSrv.ListenAndServe()
	}()

	select {
	case err := <-errc:
		s.Close()
		return err
	case <-ctx.Done():
	}
	log.Print("shutting down")
	shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	err = httpSrv.Shutdown(shutCtx)
	s.Close()
	if errors.Is(err, context.DeadlineExceeded) {
		return fmt.Errorf("shutdown timed out")
	}
	return err
}

// snapshotMagic versions reachd's snapshot container: a one-line header
// carrying a graph fingerprint and the method tag, then the raw labeling.
// The fingerprint is what lets a restart refuse a snapshot that was built
// from a different graph — the labeling alone only records a vertex
// count, and two unrelated graphs can easily share one.
const snapshotMagic = "reachd-snapshot-v1"

func snapshotHeader(g *reach.Graph, method string) string {
	return fmt.Sprintf("%s n=%d dagv=%d dage=%d method=%s\n",
		snapshotMagic, g.NumVertices(), g.DAGVertices(), g.DAGEdges(), method)
}

// loadSnapshot restores an oracle from a reachd snapshot, verifying the
// header's graph fingerprint against g.
func loadSnapshot(g *reach.Graph, f *os.File) (*reach.Oracle, error) {
	rd := bufio.NewReader(f)
	header, err := rd.ReadString('\n')
	if err != nil {
		return nil, fmt.Errorf("reading header: %w", err)
	}
	var magic, method string
	var n, dagv, dage int
	if _, err := fmt.Sscanf(header, "%s n=%d dagv=%d dage=%d method=%s",
		&magic, &n, &dagv, &dage, &method); err != nil || magic != snapshotMagic {
		return nil, fmt.Errorf("not a reachd snapshot (header %q)", strings.TrimSpace(header))
	}
	if n != g.NumVertices() || dagv != g.DAGVertices() || dage != g.DAGEdges() {
		return nil, fmt.Errorf("snapshot was built from a different graph (%d/%d/%d vs %d/%d/%d vertices/DAG-vertices/DAG-edges)",
			n, dagv, dage, g.NumVertices(), g.DAGVertices(), g.DAGEdges())
	}
	return reach.LoadOracleNamed(g, rd, method)
}

// loadOrBuild restores the oracle from an existing snapshot, or builds it
// and saves the labeling for the next restart.
func loadOrBuild(g *reach.Graph, method reach.Method, snapshot string) (*reach.Oracle, error) {
	if snapshot != "" {
		if f, err := os.Open(snapshot); err == nil {
			start := time.Now()
			oracle, err := loadSnapshot(g, f)
			f.Close()
			if err == nil && oracle.Method() != string(method) {
				err = fmt.Errorf("snapshot holds a %s labeling but -method is %s", oracle.Method(), method)
			}
			if err == nil {
				log.Printf("index: loaded %s snapshot %s (%d ints) in %s",
					oracle.Method(), snapshot, oracle.IndexSizeInts(), time.Since(start).Round(time.Millisecond))
				return oracle, nil
			}
			// A corrupt or mismatched snapshot must not brick startup:
			// rebuild (and overwrite it below) instead.
			log.Printf("warning: snapshot %s unusable (%v); rebuilding index", snapshot, err)
		} else if !os.IsNotExist(err) {
			return nil, err
		}
	}
	start := time.Now()
	oracle, err := reach.Build(g, method, reach.Options{})
	if err != nil {
		return nil, err
	}
	log.Printf("index: built %s (%d ints) in %s",
		oracle.Method(), oracle.IndexSizeInts(), time.Since(start).Round(time.Millisecond))
	if snapshot != "" {
		if err := saveSnapshot(g, oracle, snapshot); err != nil {
			// A failed save must not stop serving; the build already succeeded.
			log.Printf("warning: saving snapshot %s: %v", snapshot, err)
		} else {
			log.Printf("index: saved snapshot to %s", snapshot)
		}
	}
	return oracle, nil
}

func saveSnapshot(g *reach.Graph, oracle *reach.Oracle, path string) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if _, err := f.WriteString(snapshotHeader(g, oracle.Method())); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := oracle.WriteLabeling(f); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	// Flush data blocks before the rename so a crash cannot leave a
	// durable rename pointing at a truncated snapshot.
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, path)
}
