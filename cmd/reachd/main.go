// Command reachd serves reachability queries over HTTP: it loads an
// edge-list graph, builds (or snapshot-loads) a reachability index, and
// answers single, batch and stats requests through a sharded query cache
// and a worker pool.
//
// Usage:
//
//	reachd -graph g.txt [-method DL] [-addr :8080] [-snapshot g.snap]
//	       [-workers N] [-cache-policy s3fifo] [-cache-capacity 1048576]
//	       [-cache-shards 64] [-request-timeout 0] [-max-inflight 0]
//	       [-slow-query-log 50ms] [-pprof] [-observers on] [-mux-addr :9090]
//
// -mux-addr additionally listens for the raw-TCP stream transport
// (docs/WIRE.md, "Stream transport"): routers that learn the address
// from /v1/healthz pipeline batches over a few persistent connections
// instead of one HTTP request each. Requires -wire=binary (the default).
//
// If -snapshot names an existing snapshot of the same graph and method,
// it is memory-mapped and serving starts in milliseconds — the snapshot
// carries the graph's condensation and original vertex IDs, so with a
// valid snapshot -graph may be omitted entirely. Otherwise the index is
// built and, when -snapshot is set, saved there so the next start is
// instant. Any method in Methods() can be snapshotted, not just the hop
// labelings.
//
// Endpoints:
//
//	GET  /v1/healthz
//	GET  /v1/reachable?u=U&v=V
//	POST /v1/batch          {"pairs": [[u,v], ...]}
//	GET  /v1/stats
//	GET  /metrics           Prometheus text-format exposition
//
// Vertex IDs in queries are the original IDs from the edge-list file —
// the same IDs reachcli answers with for the same graph.
//
// Observability: every query response echoes an X-Reach-Trace ID and an
// X-Reach-Server-Timing per-stage breakdown; -slow-query-log T writes a
// JSON line to stderr for each request slower than T; -pprof mounts
// net/http/pprof under /debug/pprof/.
//
// Overload protection: -request-timeout puts a deadline on every query
// request (an expired batch stops mid-dispatch and answers 503), and
// -max-inflight caps concurrently-served query requests — excess
// requests answer 429 with Retry-After instead of queueing unboundedly.
// /v1/healthz and /v1/stats bypass the gate so monitoring keeps working
// under overload.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	reach "repro"
	"repro/internal/mux"
	"repro/internal/server"
)

func main() {
	var (
		graphPath = flag.String("graph", "", "edge-list file (optional when -snapshot holds a usable snapshot)")
		method    = flag.String("method", "DL", fmt.Sprintf("index method %v", reach.Methods()))
		addr      = flag.String("addr", ":8080", "listen address")
		snapshot  = flag.String("snapshot", "", "snapshot path: mmap-load if present, else build and save")
		workers   = flag.Int("workers", 0, "batch worker pool size (default GOMAXPROCS)")
		policy    = flag.String("cache-policy", server.PolicyS3FIFO, "query cache admission policy: s3fifo or fifo")
		cacheCap  = flag.Int("cache-capacity", server.DefaultCacheCapacity, "query cache entries (negative disables)")
		shards    = flag.Int("cache-shards", server.DefaultCacheShards, "query cache shard count")
		maxBatch  = flag.Int("max-batch", 0, "max pairs per /v1/batch request (default 1<<20)")
		reqTO     = flag.Duration("request-timeout", 0, "per-request deadline; expired requests answer 503 (0 disables; defaults to 30s when -max-inflight is set)")
		inflight  = flag.Int("max-inflight", 0, "max concurrent query requests before answering 429 (0 = unlimited)")
		slowTO    = flag.Duration("slow-query-log", 0, "log queries slower than this as JSON lines on stderr (0 disables)")
		pprof     = flag.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/")
		observers = flag.String("observers", "on", "observer fast path in front of the index: on or off")
		wire      = flag.String("wire", "binary", "accept binary batch frames on /v1/batch: binary (JSON still accepted) or json (binary answered 415)")
		muxAddr   = flag.String("mux-addr", "", "listen address for the raw-TCP stream transport (e.g. :9090); advertised via /v1/healthz, empty disables")
	)
	flag.Parse()
	if *muxAddr != "" && *wire == "json" {
		// The stream transport carries binary frames; offering it while
		// refusing the encoding would advertise a listener that rejects
		// every batch.
		fmt.Fprintf(os.Stderr, "reachd: -mux-addr requires -wire=binary\n")
		os.Exit(1)
	}
	if *observers != "on" && *observers != "off" {
		fmt.Fprintf(os.Stderr, "reachd: unknown -observers %q (want on or off)\n", *observers)
		os.Exit(1)
	}
	if *wire != "binary" && *wire != "json" {
		fmt.Fprintf(os.Stderr, "reachd: unknown -wire %q (want binary or json)\n", *wire)
		os.Exit(1)
	}
	if *policy != server.PolicyS3FIFO && *policy != server.PolicyFIFO {
		fmt.Fprintf(os.Stderr, "reachd: unknown -cache-policy %q (want %s or %s)\n",
			*policy, server.PolicyS3FIFO, server.PolicyFIFO)
		os.Exit(1)
	}
	// An unset -method means "whatever the snapshot holds" when loading,
	// and DL when building; only an explicit -method constrains a load.
	methodSet := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == "method" {
			methodSet = true
		}
	})
	if err := run(*graphPath, *method, methodSet, *addr, *snapshot, *muxAddr, *observers == "off", server.Config{
		Workers:            *workers,
		CachePolicy:        *policy,
		CacheShards:        *shards,
		CacheCapacity:      *cacheCap,
		MaxBatchPairs:      *maxBatch,
		RequestTimeout:     *reqTO,
		MaxInFlight:        *inflight,
		SlowQueryThreshold: *slowTO,
		EnablePprof:        *pprof,
		DisableBinaryWire:  *wire == "json",
	}); err != nil {
		fmt.Fprintf(os.Stderr, "reachd: %v\n", err)
		os.Exit(1)
	}
}

func run(graphPath, method string, methodSet bool, addr, snapshot, muxAddr string, noObservers bool, cfg server.Config) error {
	if graphPath == "" && snapshot == "" {
		return fmt.Errorf("-graph or -snapshot is required")
	}
	var g *reach.Graph
	if graphPath != "" {
		f, err := os.Open(graphPath)
		if err != nil {
			return err
		}
		var parseErr error
		g, _, parseErr = reach.ReadGraph(f)
		f.Close()
		if parseErr != nil {
			return parseErr
		}
		log.Printf("graph: %d vertices (%d after condensation), %d DAG edges",
			g.NumVertices(), g.DAGVertices(), g.DAGEdges())
	}

	oracle, err := loadOrBuild(g, reach.Method(method), methodSet, snapshot, noObservers)
	if err != nil {
		return err
	}
	defer oracle.Close()
	if g == nil {
		// Snapshot-only start: the graph (and its original IDs) come from
		// the snapshot. When -graph was parsed too, keep it — the
		// fingerprint check proved them equivalent, and the parsed graph
		// always carries the file's IDs.
		g = oracle.Graph()
	}
	cfg.OrigIDs = g.OrigIDs()

	// Bind the stream-transport listener before building the server, so
	// healthz advertises the address the kernel actually assigned (":0"
	// and wildcard hosts resolve here) rather than the flag's wish.
	var muxLn net.Listener
	if muxAddr != "" {
		muxLn, err = net.Listen("tcp", muxAddr)
		if err != nil {
			return fmt.Errorf("mux listener: %w", err)
		}
		cfg.MuxAddr = muxLn.Addr().String()
	}

	s := server.New(g, oracle, cfg)
	// ReadHeaderTimeout bounds header trickling independently of
	// -request-timeout (which covers the body and the query itself), so
	// idle half-open connections can't pile up goroutines.
	httpSrv := &http.Server{Addr: addr, Handler: s.Handler(), ReadHeaderTimeout: 10 * time.Second}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	var muxSrv *mux.Server
	if muxLn != nil {
		muxSrv = s.NewMuxServer(log.Printf)
		go func() {
			log.Printf("serving stream transport on %s", muxLn.Addr())
			if serr := muxSrv.Serve(muxLn); serr != nil {
				errc <- fmt.Errorf("mux: %w", serr)
			}
		}()
	}
	go func() {
		log.Printf("serving %s index on %s", oracle.Method(), addr)
		errc <- httpSrv.ListenAndServe()
	}()

	shutdownMux := func(ctx context.Context) {
		if muxSrv != nil {
			if merr := muxSrv.Shutdown(ctx); merr != nil {
				log.Printf("warning: mux shutdown: %v", merr)
			}
		}
	}
	select {
	case err := <-errc:
		closeCtx, cancel := context.WithTimeout(context.Background(), time.Second)
		shutdownMux(closeCtx)
		cancel()
		s.Close()
		return err
	case <-ctx.Done():
	}
	log.Print("shutting down")
	shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	err = httpSrv.Shutdown(shutCtx)
	shutdownMux(shutCtx)
	s.Close()
	if errors.Is(err, context.DeadlineExceeded) {
		return fmt.Errorf("shutdown timed out")
	}
	return err
}

// loadSnapshot memory-maps the snapshot and verifies it matches the
// parsed graph (when one was parsed) and the requested method (when
// -method was given explicitly).
func loadSnapshot(g *reach.Graph, method reach.Method, methodSet bool, path string) (*reach.Oracle, error) {
	oracle, err := reach.Load(path)
	if err != nil {
		return nil, err
	}
	if g != nil && oracle.Graph().Fingerprint() != g.Fingerprint() {
		oracle.Close()
		return nil, fmt.Errorf("snapshot was built from a different graph (fingerprint mismatch)")
	}
	if methodSet && oracle.Method() != string(method) {
		m := oracle.Method()
		oracle.Close()
		return nil, fmt.Errorf("snapshot holds a %s index but -method is %s", m, method)
	}
	return oracle, nil
}

// loadOrBuild restores the oracle from an existing snapshot, or builds it
// and saves a snapshot for the next restart. g may be nil when only a
// snapshot was given; building then is impossible and load errors are
// fatal rather than recoverable. noObservers strips the observer fast
// path (-observers=off) — after a load, because the snapshot may carry
// (or trigger on-the-fly construction of) an observer section.
func loadOrBuild(g *reach.Graph, method reach.Method, methodSet bool, snapshot string, noObservers bool) (*reach.Oracle, error) {
	if snapshot != "" {
		if _, err := os.Stat(snapshot); err == nil {
			start := time.Now()
			oracle, err := loadSnapshot(g, method, methodSet, snapshot)
			if err == nil {
				if noObservers {
					oracle.DisableObservers()
				}
				log.Printf("index: loaded %s snapshot %s (%d ints) in %s",
					oracle.Method(), snapshot, oracle.IndexSizeInts(), time.Since(start).Round(time.Millisecond))
				return oracle, nil
			}
			if g == nil {
				return nil, fmt.Errorf("snapshot %s unusable and no -graph to rebuild from: %w", snapshot, err)
			}
			// A corrupt or mismatched snapshot must not brick startup:
			// rebuild (and overwrite it below) instead.
			log.Printf("warning: snapshot %s unusable (%v); rebuilding index", snapshot, err)
		} else if !os.IsNotExist(err) {
			return nil, err
		} else if g == nil {
			return nil, fmt.Errorf("snapshot %s does not exist and no -graph to build from", snapshot)
		}
	}
	start := time.Now()
	oracle, err := reach.Build(g, method, reach.Options{NoObservers: noObservers})
	if err != nil {
		return nil, err
	}
	log.Printf("index: built %s (%d ints) in %s",
		oracle.Method(), oracle.IndexSizeInts(), time.Since(start).Round(time.Millisecond))
	if snapshot != "" {
		if err := oracle.SaveFile(snapshot); err != nil {
			// A failed save must not stop serving; the build already succeeded.
			log.Printf("warning: saving snapshot %s: %v", snapshot, err)
		} else {
			log.Printf("index: saved snapshot to %s", snapshot)
		}
	}
	return oracle, nil
}
