// Command reachcli builds a reachability oracle for an edge-list file and
// answers queries.
//
// Usage:
//
//	reachcli -graph g.txt -method DL [-stats] [-save g.snap] [u v]...
//	reachcli -load g.snap [-stats] [u v]...
//	echo "3 17" | reachcli -graph g.txt -method HL
//
// -save writes the built oracle (graph condensation + index) to a
// snapshot file; -load memory-maps one instead of parsing and rebuilding,
// which is instant regardless of graph size. Queries are "u v" vertex
// pairs (original IDs from the input file), either as trailing arguments
// (pairs of integers) or one per line on stdin. Output is "u v
// true|false".
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strconv"
	"time"

	reach "repro"
)

func main() {
	var (
		graphPath = flag.String("graph", "", "edge-list file (required unless -load)")
		method    = flag.String("method", "DL", fmt.Sprintf("index method %v", reach.Methods()))
		stats     = flag.Bool("stats", false, "print graph and index statistics")
		save      = flag.String("save", "", "write the built oracle to this snapshot file")
		load      = flag.String("load", "", "load the oracle from this snapshot file instead of building")
	)
	flag.Parse()
	methodSet := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == "method" {
			methodSet = true
		}
	})
	if err := run(*graphPath, *method, methodSet, *stats, *save, *load, flag.Args()); err != nil {
		fmt.Fprintf(os.Stderr, "reachcli: %v\n", err)
		os.Exit(1)
	}
}

func run(graphPath, method string, methodSet bool, stats bool, save, load string, args []string) error {
	var (
		oracle  *reach.Oracle
		g       *reach.Graph
		orig    []int64
		elapsed time.Duration
		verb    string
	)
	switch {
	case load != "":
		if graphPath != "" {
			return fmt.Errorf("-graph and -load are mutually exclusive (the snapshot carries the graph)")
		}
		start := time.Now()
		var err error
		oracle, err = reach.Load(load)
		if err != nil {
			return err
		}
		defer oracle.Close()
		if methodSet && oracle.Method() != method {
			return fmt.Errorf("snapshot %s holds a %s index but -method is %s (omit -method to use the snapshot's)",
				load, oracle.Method(), method)
		}
		elapsed, verb = time.Since(start), "load"
		g = oracle.Graph()
		orig = g.OrigIDs()
	case graphPath != "":
		f, err := os.Open(graphPath)
		if err != nil {
			return err
		}
		g, orig, err = reach.ReadGraph(f)
		f.Close()
		if err != nil {
			return err
		}
		start := time.Now()
		oracle, err = reach.Build(g, reach.Method(method), reach.Options{})
		if err != nil {
			return err
		}
		elapsed, verb = time.Since(start), "build"
	default:
		return fmt.Errorf("-graph or -load is required")
	}

	if save != "" {
		if err := oracle.SaveFile(save); err != nil {
			return fmt.Errorf("saving snapshot: %w", err)
		}
		fmt.Fprintf(os.Stderr, "saved %s snapshot to %s\n", oracle.Method(), save)
	}

	// Map original file IDs to dense vertex numbers. Snapshots of graphs
	// built without an edge-list source carry no IDs; queries are then the
	// dense vertex numbers themselves.
	denseOf := make(map[int64]uint32, len(orig))
	for dense, raw := range orig {
		denseOf[raw] = uint32(dense)
	}
	if orig == nil {
		for v := 0; v < g.NumVertices(); v++ {
			denseOf[int64(v)] = uint32(v)
		}
	}

	if stats {
		fmt.Printf("graph: %d vertices (%d after condensation), %d DAG edges\n",
			g.NumVertices(), g.DAGVertices(), g.DAGEdges())
		fmt.Printf("index: method=%s size=%d ints %s=%s\n",
			oracle.Method(), oracle.IndexSizeInts(), verb, elapsed)
		if ls, err := oracle.LabelStats(); err == nil {
			fmt.Printf("labels: avg|Lout|=%.2f avg|Lin|=%.2f max|Lout|=%d max|Lin|=%d\n",
				ls.AvgOut, ls.AvgIn, ls.MaxOut, ls.MaxIn)
		}
	}

	answer := func(rawU, rawV int64) error {
		u, okU := denseOf[rawU]
		v, okV := denseOf[rawV]
		if !okU || !okV {
			return fmt.Errorf("query (%d,%d): vertex not in graph", rawU, rawV)
		}
		fmt.Printf("%d %d %v\n", rawU, rawV, oracle.Reachable(u, v))
		return nil
	}

	if len(args) > 0 {
		if len(args)%2 != 0 {
			return fmt.Errorf("query arguments must come in pairs")
		}
		for i := 0; i < len(args); i += 2 {
			u, err := strconv.ParseInt(args[i], 10, 64)
			if err != nil {
				return fmt.Errorf("bad vertex %q: %v", args[i], err)
			}
			v, err := strconv.ParseInt(args[i+1], 10, 64)
			if err != nil {
				return fmt.Errorf("bad vertex %q: %v", args[i+1], err)
			}
			if err := answer(u, v); err != nil {
				return err
			}
		}
		return nil
	}

	sc := bufio.NewScanner(os.Stdin)
	for sc.Scan() {
		var u, v int64
		if _, err := fmt.Sscan(sc.Text(), &u, &v); err != nil {
			return fmt.Errorf("bad query line %q: %v", sc.Text(), err)
		}
		if err := answer(u, v); err != nil {
			return err
		}
	}
	return sc.Err()
}
