// Command reachcli builds a reachability oracle for an edge-list file and
// answers queries.
//
// Usage:
//
//	reachcli -graph g.txt -method DL [-stats] [u v]...
//	echo "3 17" | reachcli -graph g.txt -method HL
//
// Queries are "u v" vertex pairs (original IDs from the input file),
// either as trailing arguments (pairs of integers) or one per line on
// stdin. Output is "u v true|false".
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strconv"
	"time"

	reach "repro"
)

func main() {
	var (
		graphPath = flag.String("graph", "", "edge-list file (required)")
		method    = flag.String("method", "DL", "index method (DL, HL, GRAIL, INT, PW8, PT, KR, 2HOP, TF, PL, GL*, PT*, BFS)")
		stats     = flag.Bool("stats", false, "print graph and index statistics")
	)
	flag.Parse()
	if err := run(*graphPath, *method, *stats, flag.Args()); err != nil {
		fmt.Fprintf(os.Stderr, "reachcli: %v\n", err)
		os.Exit(1)
	}
}

func run(graphPath, method string, stats bool, args []string) error {
	if graphPath == "" {
		return fmt.Errorf("-graph is required")
	}
	f, err := os.Open(graphPath)
	if err != nil {
		return err
	}
	defer f.Close()

	g, orig, err := reach.ReadGraph(f)
	if err != nil {
		return err
	}
	// Map original file IDs to dense vertex numbers.
	denseOf := make(map[int64]uint32, len(orig))
	for dense, raw := range orig {
		denseOf[raw] = uint32(dense)
	}

	start := time.Now()
	oracle, err := reach.Build(g, reach.Method(method), reach.Options{})
	if err != nil {
		return err
	}
	buildTime := time.Since(start)

	if stats {
		fmt.Printf("graph: %d vertices (%d after condensation), %d DAG edges\n",
			g.NumVertices(), g.DAGVertices(), g.DAGEdges())
		fmt.Printf("index: method=%s size=%d ints build=%s\n",
			oracle.Method(), oracle.IndexSizeInts(), buildTime)
		if ls, err := oracle.LabelStats(); err == nil {
			fmt.Printf("labels: avg|Lout|=%.2f avg|Lin|=%.2f max|Lout|=%d max|Lin|=%d\n",
				ls.AvgOut, ls.AvgIn, ls.MaxOut, ls.MaxIn)
		}
	}

	answer := func(rawU, rawV int64) error {
		u, okU := denseOf[rawU]
		v, okV := denseOf[rawV]
		if !okU || !okV {
			return fmt.Errorf("query (%d,%d): vertex not in graph", rawU, rawV)
		}
		fmt.Printf("%d %d %v\n", rawU, rawV, oracle.Reachable(u, v))
		return nil
	}

	if len(args) > 0 {
		if len(args)%2 != 0 {
			return fmt.Errorf("query arguments must come in pairs")
		}
		for i := 0; i < len(args); i += 2 {
			u, err := strconv.ParseInt(args[i], 10, 64)
			if err != nil {
				return fmt.Errorf("bad vertex %q: %v", args[i], err)
			}
			v, err := strconv.ParseInt(args[i+1], 10, 64)
			if err != nil {
				return fmt.Errorf("bad vertex %q: %v", args[i+1], err)
			}
			if err := answer(u, v); err != nil {
				return err
			}
		}
		return nil
	}

	sc := bufio.NewScanner(os.Stdin)
	for sc.Scan() {
		var u, v int64
		if _, err := fmt.Sscan(sc.Text(), &u, &v); err != nil {
			return fmt.Errorf("bad query line %q: %v", sc.Text(), err)
		}
		if err := answer(u, v); err != nil {
			return err
		}
	}
	return sc.Err()
}
