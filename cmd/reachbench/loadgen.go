package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"math/rand"
	"net/http"
	"os"
	"slices"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	reach "repro"
	"repro/internal/obs"
	"repro/internal/wireproto"
)

// loadGen drives a running reachd in a closed loop: each client POSTs a
// random batch, waits for the answer, and immediately posts the next.
// Closed-loop throughput is the number later scaling PRs must move.
type loadGen struct {
	base     string
	graph    string // edge-list file to sample real vertex IDs from
	clients  int
	batch    int
	duration time.Duration
	seed     int64
	// wire is the requested batch encoding ("binary" or "json");
	// negotiateWire resolves it down to JSON when the target doesn't
	// advertise binary frames or the ID universe doesn't fit uint32.
	wire string
}

type statsPayload struct {
	Graph struct {
		Vertices int `json:"vertices"`
	} `json:"graph"`
	Index struct {
		Method string `json:"method"`
	} `json:"index"`
	// Fleet is present when the target is a reachrouter rather than a
	// single reachd; its method fills in for the absent index section.
	Fleet struct {
		Method          string `json:"method"`
		ReplicasHealthy int    `json:"replicas_healthy"`
	} `json:"fleet"`
	Cache struct {
		Hits    int64   `json:"hits"`
		Misses  int64   `json:"misses"`
		HitRate float64 `json:"hit_rate"`
	} `json:"cache"`
}

// scrapeBatchHist reads the target's server-side batch-request latency
// histogram from /metrics. Best-effort: a target without /metrics (or
// an unparsable exposition) just returns nil and the run reports
// client-side latency only.
func (lg *loadGen) scrapeBatchHist() *obs.ScrapedHist {
	resp, err := http.Get(lg.base + "/metrics")
	if err != nil {
		return nil
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body)
		return nil
	}
	h, err := obs.ParseHistogram(resp.Body, "reach_http_request_seconds", obs.Labels{"endpoint": "batch"})
	if err != nil {
		return nil
	}
	return h
}

func (lg *loadGen) fetchStats() (statsPayload, error) {
	var st statsPayload
	resp, err := http.Get(lg.base + "/v1/stats")
	if err != nil {
		return st, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return st, fmt.Errorf("/v1/stats: HTTP %d", resp.StatusCode)
	}
	return st, json.NewDecoder(resp.Body).Decode(&st)
}

// vertexIDs returns the ID universe to query. reachd's API speaks the
// edge-list file's original IDs, so with -graph the exact IDs are
// sampled from the file; without it, dense 0..n-1 is assumed, which
// only matches files whose IDs are already dense.
func (lg *loadGen) vertexIDs(vertices int) ([]uint64, error) {
	if lg.graph == "" {
		fmt.Println("note: no -graph given; assuming vertex IDs are dense 0..n-1")
		ids := make([]uint64, vertices)
		for i := range ids {
			ids[i] = uint64(i)
		}
		return ids, nil
	}
	f, err := os.Open(lg.graph)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	_, orig, err := reach.ReadGraph(f)
	if err != nil {
		return nil, err
	}
	if len(orig) != vertices {
		return nil, fmt.Errorf("%s has %d vertices but the server reports %d — different graph?",
			lg.graph, len(orig), vertices)
	}
	ids := make([]uint64, len(orig))
	for i, raw := range orig {
		ids[i] = uint64(raw)
	}
	return ids, nil
}

// negotiateWire decides the encoding this run actually uses: binary only
// when it was requested, every sampled ID fits the frame's uint32 fields,
// and the target's /v1/healthz advertises "binary" in its wire list — the
// same capability handshake reachrouter performs at enrollment. A router
// target never advertises it (the binary protocol is router↔replica
// interior traffic; the edge stays JSON), so fleet runs fall back here
// with a note rather than a failed request.
func (lg *loadGen) negotiateWire(ids []uint64) string {
	if lg.wire != "binary" {
		return "json"
	}
	for _, id := range ids {
		if id > math.MaxUint32 {
			fmt.Println("note: vertex IDs exceed uint32; binary frames cannot carry them — using JSON batches")
			return "json"
		}
	}
	resp, err := http.Get(lg.base + "/v1/healthz")
	if err != nil {
		fmt.Println("note: healthz probe failed; using JSON batches")
		return "json"
	}
	defer resp.Body.Close()
	var hz struct {
		Wire []string `json:"wire"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&hz); err == nil && slices.Contains(hz.Wire, "binary") {
		return "binary"
	}
	fmt.Println("note: target does not advertise binary batch frames; using JSON batches")
	return "json"
}

func (lg *loadGen) run() error {
	st, err := lg.fetchStats()
	if err != nil {
		return fmt.Errorf("probing server: %w", err)
	}
	if st.Graph.Vertices == 0 {
		return fmt.Errorf("server reports an empty graph")
	}
	ids, err := lg.vertexIDs(st.Graph.Vertices)
	if err != nil {
		return err
	}
	// Sampled IDs must name real vertices; if the server rejects one, the
	// assumed ID space is wrong (pass -graph) and a run would measure
	// only the unknown-vertex short-circuit. Probe both ends of the
	// assumed range: a sparse ID set can contain 0 yet not n-1.
	for _, id := range []uint64{ids[0], ids[len(ids)-1]} {
		probe, err := http.Get(fmt.Sprintf("%s/v1/reachable?u=%d&v=%d", lg.base, id, id))
		if err != nil {
			return fmt.Errorf("probing sampled vertex ID: %w", err)
		}
		io.Copy(io.Discard, probe.Body)
		probe.Body.Close()
		if probe.StatusCode != http.StatusOK {
			return fmt.Errorf("server rejected sampled vertex ID %d (HTTP %d): the graph's IDs are not dense — pass -graph with the served edge-list file", id, probe.StatusCode)
		}
	}
	method := st.Index.Method
	target := "single node"
	if method == "" && st.Fleet.Method != "" {
		method = st.Fleet.Method
		target = fmt.Sprintf("fleet of %d", st.Fleet.ReplicasHealthy)
	}
	wire := lg.negotiateWire(ids)
	fmt.Printf("load-generating against %s (%s): method=%s vertices=%d clients=%d batch=%d duration=%s wire=%s\n",
		lg.base, target, method, st.Graph.Vertices, lg.clients, lg.batch, lg.duration, wire)

	var (
		queries  atomic.Int64
		requests atomic.Int64
		rejected atomic.Int64 // 429s from the server's admission gate
		failures atomic.Int64
		bytesOut atomic.Int64 // request-body bytes sent, either encoding
		bytesIn  atomic.Int64 // response-body bytes drained, either encoding
		wg       sync.WaitGroup
	)
	// One shared lock-free histogram of successful request latencies: a
	// few KB of fixed memory no matter how long the soak runs, every
	// sample counted (no reservoir sampling), and quantiles within ~3%
	// relative error — the same structure the server itself records into,
	// so client-side and server-side percentiles are comparable.
	var lat obs.Histogram
	// Server-side view of the same window, scraped from /metrics before
	// and after the run and differenced (nil if the target has none).
	serverStart := lg.scrapeBatchHist()
	deadline := time.Now().Add(lg.duration)
	start := time.Now()
	for c := 0; c < lg.clients; c++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			client := &http.Client{Timeout: 30 * time.Second}
			pairs := make([][2]uint64, lg.batch)
			// Binary-mode buffers, reused across requests: the narrowed
			// pairs and one frame sized for the whole batch.
			var frame []byte
			var p32 [][2]uint32
			if wire == "binary" {
				frame = make([]byte, wireproto.RequestSize(lg.batch))
				p32 = make([][2]uint32, lg.batch)
			}
			// Drain before closing so the transport can reuse the
			// connection (otherwise every request pays a TCP handshake),
			// counting the drained bytes as response traffic.
			drain := func(resp *http.Response) {
				n, _ := io.Copy(io.Discard, resp.Body)
				bytesIn.Add(n)
				resp.Body.Close()
			}
			for time.Now().Before(deadline) {
				for i := range pairs {
					pairs[i] = [2]uint64{ids[rng.Intn(len(ids))], ids[rng.Intn(len(ids))]}
				}
				var resp *http.Response
				var err error
				var reqStart time.Time
				if wire == "binary" {
					for i, p := range pairs {
						p32[i] = [2]uint32{uint32(p[0]), uint32(p[1])}
					}
					n := wireproto.EncodeRequest(frame, p32)
					bytesOut.Add(int64(n))
					reqStart = time.Now()
					resp, err = client.Post(lg.base+"/v1/batch", wireproto.ContentType, bytes.NewReader(frame[:n]))
				} else {
					payload, _ := json.Marshal(struct {
						Pairs [][2]uint64 `json:"pairs"`
					}{pairs})
					bytesOut.Add(int64(len(payload)))
					reqStart = time.Now()
					resp, err = client.Post(lg.base+"/v1/batch", "application/json", bytes.NewReader(payload))
				}
				if err != nil {
					failures.Add(1)
					// Back off instead of busy-looping on a dead server.
					time.Sleep(100 * time.Millisecond)
					continue
				}
				switch resp.StatusCode {
				case http.StatusOK:
					lat.RecordSince(reqStart)
					queries.Add(int64(lg.batch))
					requests.Add(1)
				case http.StatusTooManyRequests:
					// The admission gate shed this request; back off so a
					// closed loop doesn't hammer an overloaded server. A
					// Retry-After hint raises the backoff to a bounded
					// second (the header is whole seconds, so any valid
					// hint caps there).
					rejected.Add(1)
					backoff := 10 * time.Millisecond
					if ra, err := strconv.Atoi(resp.Header.Get("Retry-After")); err == nil && ra > 0 {
						backoff = time.Second
					}
					drain(resp)
					time.Sleep(backoff)
					continue
				default:
					failures.Add(1)
				}
				drain(resp)
			}
		}(lg.seed + int64(c))
	}
	wg.Wait()
	elapsed := time.Since(start)

	fmt.Printf("done: %d requests, %d queries, %d rejected (429), %d failures in %s\n",
		requests.Load(), queries.Load(), rejected.Load(), failures.Load(), elapsed.Round(time.Millisecond))
	fmt.Printf("throughput: %.0f queries/sec (%.1f requests/sec)\n",
		float64(queries.Load())/elapsed.Seconds(),
		float64(requests.Load())/elapsed.Seconds())
	// Wire cost per request, both directions — the number the binary
	// encoding exists to shrink (compare a -wire=json run).
	if attempts := requests.Load() + rejected.Load() + failures.Load(); attempts > 0 {
		fmt.Printf("wire: %s — %d bytes/op sent, %d bytes/op received\n",
			wire, bytesOut.Load()/attempts, bytesIn.Load()/attempts)
	}
	if snap := lat.Snapshot(); snap.Count > 0 {
		q := func(p float64) time.Duration {
			return time.Duration(snap.Quantile(p)).Round(time.Microsecond)
		}
		fmt.Printf("latency (client):  p50 %s  p99 %s  max %s (%d samples)\n",
			q(0.50), q(0.99), time.Duration(snap.Max).Round(time.Microsecond), snap.Count)
		// Server-side percentiles for the same window: the difference of
		// the /metrics batch-request histogram across the run. The gap
		// between the two rows is what the wire (and the client's own
		// scheduling) costs.
		if end := lg.scrapeBatchHist(); end != nil && serverStart != nil {
			if err := end.Sub(serverStart); err == nil && end.Count > 0 {
				sq := func(p float64) time.Duration {
					return time.Duration(end.Quantile(p) * float64(time.Second)).Round(time.Microsecond)
				}
				fmt.Printf("latency (server):  p50 %s  p99 %s  (%d requests, from /metrics)\n",
					sq(0.50), sq(0.99), end.Count)
			}
		}
	}
	if attempts := requests.Load() + rejected.Load() + failures.Load(); attempts > 0 && rejected.Load() > 0 {
		fmt.Printf("rejection rate: %.1f%% of attempts shed by the admission gate\n",
			100*float64(rejected.Load())/float64(attempts))
	}
	// Report this run's cache behaviour, not the daemon's lifetime
	// counters: diff against the snapshot taken before the run.
	if end, err := lg.fetchStats(); err == nil {
		hits := end.Cache.Hits - st.Cache.Hits
		misses := end.Cache.Misses - st.Cache.Misses
		rate := 0.0
		if hits+misses > 0 {
			rate = float64(hits) / float64(hits+misses)
		}
		fmt.Printf("server cache this run: %d hits, %d misses, hit rate %.1f%%\n",
			hits, misses, 100*rate)
	}
	if failures.Load() > 0 {
		return fmt.Errorf("%d requests failed", failures.Load())
	}
	return nil
}
