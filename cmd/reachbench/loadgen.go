package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	reach "repro"
)

// loadGen drives a running reachd in a closed loop: each client POSTs a
// random batch, waits for the answer, and immediately posts the next.
// Closed-loop throughput is the number later scaling PRs must move.
type loadGen struct {
	base     string
	graph    string // edge-list file to sample real vertex IDs from
	clients  int
	batch    int
	duration time.Duration
	seed     int64
}

type statsPayload struct {
	Graph struct {
		Vertices int `json:"vertices"`
	} `json:"graph"`
	Index struct {
		Method string `json:"method"`
	} `json:"index"`
	// Fleet is present when the target is a reachrouter rather than a
	// single reachd; its method fills in for the absent index section.
	Fleet struct {
		Method          string `json:"method"`
		ReplicasHealthy int    `json:"replicas_healthy"`
	} `json:"fleet"`
	Cache struct {
		Hits    int64   `json:"hits"`
		Misses  int64   `json:"misses"`
		HitRate float64 `json:"hit_rate"`
	} `json:"cache"`
}

func (lg *loadGen) fetchStats() (statsPayload, error) {
	var st statsPayload
	resp, err := http.Get(lg.base + "/v1/stats")
	if err != nil {
		return st, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return st, fmt.Errorf("/v1/stats: HTTP %d", resp.StatusCode)
	}
	return st, json.NewDecoder(resp.Body).Decode(&st)
}

// vertexIDs returns the ID universe to query. reachd's API speaks the
// edge-list file's original IDs, so with -graph the exact IDs are
// sampled from the file; without it, dense 0..n-1 is assumed, which
// only matches files whose IDs are already dense.
func (lg *loadGen) vertexIDs(vertices int) ([]uint64, error) {
	if lg.graph == "" {
		fmt.Println("note: no -graph given; assuming vertex IDs are dense 0..n-1")
		ids := make([]uint64, vertices)
		for i := range ids {
			ids[i] = uint64(i)
		}
		return ids, nil
	}
	f, err := os.Open(lg.graph)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	_, orig, err := reach.ReadGraph(f)
	if err != nil {
		return nil, err
	}
	if len(orig) != vertices {
		return nil, fmt.Errorf("%s has %d vertices but the server reports %d — different graph?",
			lg.graph, len(orig), vertices)
	}
	ids := make([]uint64, len(orig))
	for i, raw := range orig {
		ids[i] = uint64(raw)
	}
	return ids, nil
}

func (lg *loadGen) run() error {
	st, err := lg.fetchStats()
	if err != nil {
		return fmt.Errorf("probing server: %w", err)
	}
	if st.Graph.Vertices == 0 {
		return fmt.Errorf("server reports an empty graph")
	}
	ids, err := lg.vertexIDs(st.Graph.Vertices)
	if err != nil {
		return err
	}
	// Sampled IDs must name real vertices; if the server rejects one, the
	// assumed ID space is wrong (pass -graph) and a run would measure
	// only the unknown-vertex short-circuit. Probe both ends of the
	// assumed range: a sparse ID set can contain 0 yet not n-1.
	for _, id := range []uint64{ids[0], ids[len(ids)-1]} {
		probe, err := http.Get(fmt.Sprintf("%s/v1/reachable?u=%d&v=%d", lg.base, id, id))
		if err != nil {
			return fmt.Errorf("probing sampled vertex ID: %w", err)
		}
		io.Copy(io.Discard, probe.Body)
		probe.Body.Close()
		if probe.StatusCode != http.StatusOK {
			return fmt.Errorf("server rejected sampled vertex ID %d (HTTP %d): the graph's IDs are not dense — pass -graph with the served edge-list file", id, probe.StatusCode)
		}
	}
	method := st.Index.Method
	target := "single node"
	if method == "" && st.Fleet.Method != "" {
		method = st.Fleet.Method
		target = fmt.Sprintf("fleet of %d", st.Fleet.ReplicasHealthy)
	}
	fmt.Printf("load-generating against %s (%s): method=%s vertices=%d clients=%d batch=%d duration=%s\n",
		lg.base, target, method, st.Graph.Vertices, lg.clients, lg.batch, lg.duration)

	var (
		queries  atomic.Int64
		requests atomic.Int64
		rejected atomic.Int64 // 429s from the server's admission gate
		failures atomic.Int64
		wg       sync.WaitGroup
	)
	// Per-client latency reservoirs of successful requests, merged after
	// the run for p50/p99; only the owning goroutine writes its slot.
	// Reservoir sampling (algorithm R) caps memory on long soak runs —
	// an hour at 10k req/s would otherwise accumulate hundreds of MB of
	// samples inside the tool that is supposed to be measuring the box.
	const maxSamplesPerClient = 1 << 16
	latencies := make([][]time.Duration, lg.clients)
	deadline := time.Now().Add(lg.duration)
	start := time.Now()
	for c := 0; c < lg.clients; c++ {
		wg.Add(1)
		go func(c int, seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			client := &http.Client{Timeout: 30 * time.Second}
			pairs := make([][2]uint64, lg.batch)
			sampled := 0
			recordLatency := func(d time.Duration) {
				sampled++
				if len(latencies[c]) < maxSamplesPerClient {
					latencies[c] = append(latencies[c], d)
				} else if j := rng.Intn(sampled); j < maxSamplesPerClient {
					latencies[c][j] = d
				}
			}
			for time.Now().Before(deadline) {
				for i := range pairs {
					pairs[i] = [2]uint64{ids[rng.Intn(len(ids))], ids[rng.Intn(len(ids))]}
				}
				payload, _ := json.Marshal(struct {
					Pairs [][2]uint64 `json:"pairs"`
				}{pairs})
				reqStart := time.Now()
				resp, err := client.Post(lg.base+"/v1/batch", "application/json", bytes.NewReader(payload))
				if err != nil {
					failures.Add(1)
					// Back off instead of busy-looping on a dead server.
					time.Sleep(100 * time.Millisecond)
					continue
				}
				switch resp.StatusCode {
				case http.StatusOK:
					recordLatency(time.Since(reqStart))
					queries.Add(int64(lg.batch))
					requests.Add(1)
				case http.StatusTooManyRequests:
					// The admission gate shed this request; back off so a
					// closed loop doesn't hammer an overloaded server. A
					// Retry-After hint raises the backoff to a bounded
					// second (the header is whole seconds, so any valid
					// hint caps there).
					rejected.Add(1)
					backoff := 10 * time.Millisecond
					if ra, err := strconv.Atoi(resp.Header.Get("Retry-After")); err == nil && ra > 0 {
						backoff = time.Second
					}
					io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
					time.Sleep(backoff)
					continue
				default:
					failures.Add(1)
				}
				// Drain before closing so the transport can reuse the
				// connection; otherwise every request pays a TCP handshake.
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
		}(c, lg.seed+int64(c))
	}
	wg.Wait()
	elapsed := time.Since(start)

	fmt.Printf("done: %d requests, %d queries, %d rejected (429), %d failures in %s\n",
		requests.Load(), queries.Load(), rejected.Load(), failures.Load(), elapsed.Round(time.Millisecond))
	fmt.Printf("throughput: %.0f queries/sec (%.1f requests/sec)\n",
		float64(queries.Load())/elapsed.Seconds(),
		float64(requests.Load())/elapsed.Seconds())
	var all []time.Duration
	for _, ls := range latencies {
		all = append(all, ls...)
	}
	if len(all) > 0 {
		sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
		quantile := func(q float64) time.Duration {
			i := int(q * float64(len(all)-1))
			return all[i]
		}
		fmt.Printf("latency: p50 %s  p99 %s  max %s (%d samples)\n",
			quantile(0.50).Round(time.Microsecond),
			quantile(0.99).Round(time.Microsecond),
			all[len(all)-1].Round(time.Microsecond), len(all))
	}
	if attempts := requests.Load() + rejected.Load() + failures.Load(); attempts > 0 && rejected.Load() > 0 {
		fmt.Printf("rejection rate: %.1f%% of attempts shed by the admission gate\n",
			100*float64(rejected.Load())/float64(attempts))
	}
	// Report this run's cache behaviour, not the daemon's lifetime
	// counters: diff against the snapshot taken before the run.
	if end, err := lg.fetchStats(); err == nil {
		hits := end.Cache.Hits - st.Cache.Hits
		misses := end.Cache.Misses - st.Cache.Misses
		rate := 0.0
		if hits+misses > 0 {
			rate = float64(hits) / float64(hits+misses)
		}
		fmt.Printf("server cache this run: %d hits, %d misses, hit rate %.1f%%\n",
			hits, misses, 100*rate)
	}
	if failures.Load() > 0 {
		return fmt.Errorf("%d requests failed", failures.Load())
	}
	return nil
}
